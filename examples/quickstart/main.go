// Quickstart: build a 4×4 Wisconsin Multicube, run real Go functions as
// programs on its simulated processors, watch the coherence protocol move
// a line around the grid, and print machine metrics.
package main

import (
	"fmt"

	"multicube/internal/core"
	"multicube/internal/sim"
)

func main() {
	// A 4×4 grid: 16 processors, 4 row buses, 4 column buses, memory
	// interleaved across the columns. Unbounded snooping caches — the
	// paper's "very large (DRAM) cache" assumption.
	m := core.MustNew(core.Config{N: 4, BlockWords: 16})

	// Seed a little shared data.
	const data = core.Addr(0)
	const flag = core.Addr(256)
	m.SeedMemory(data, []uint64{10, 20, 30, 40})

	// Processor 0 (top-left) updates the data, then raises a flag.
	m.Spawn(0, func(c *core.Ctx) {
		sum := uint64(0)
		for i := core.Addr(0); i < 4; i++ {
			sum += c.Load(data + i)
		}
		c.Store(data+4, sum) // a write: the line migrates to processor 0
		c.Store(flag, 1)
		fmt.Printf("[%v] cpu %d wrote sum %d\n", c.Now(), c.ID(), sum)
	})

	// Processor 15 (bottom-right corner, three bus hops away) polls the
	// flag and reads the result: the coherence protocol routes the
	// modified lines across the grid of buses.
	m.Spawn(15, func(c *core.Ctx) {
		for c.Load(flag) == 0 {
			c.Sleep(2 * sim.Microsecond)
		}
		got := c.Load(data + 4)
		fmt.Printf("[%v] cpu %d read sum %d through the grid\n", c.Now(), c.ID(), got)
	})

	m.Run()

	fmt.Println()
	fmt.Print(m.Metrics())

	if errs := m.CheckInvariants(); len(errs) == 0 {
		fmt.Println("\ncoherence invariants: ok")
	} else {
		for _, err := range errs {
			fmt.Println("invariant violation:", err)
		}
	}
}
