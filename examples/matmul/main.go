// Matmul: a parallel matrix multiply on the simulated shared memory —
// the "host of numerical methods" workload class the paper targets. Rows
// of the output are divided among all processors; the ALLOCATE hint is
// used for the fully-overwritten output blocks, exactly the case Section
// 3 designs it for ("loaders, and memory allocators ... entire blocks are
// to be written").
package main

import (
	"fmt"

	"multicube/internal/core"
	"multicube/internal/sim"
	"multicube/internal/workload"
)

func main() {
	m := core.MustNew(core.Config{N: 4, BlockWords: 16})
	l := workload.MatMulLayout{
		Dim:     16,
		ABase:   0,
		BBase:   4096,
		CBase:   8192,
		MACTime: 100 * sim.Nanosecond, // the processor's compute cost
	}
	workload.SeedMatrices(m, l)

	workers := m.Processors()
	for id := 0; id < workers; id++ {
		id := id
		m.Spawn(id, func(c *core.Ctx) {
			workload.MatMulWorker(c, l, id, workers)
		})
	}
	elapsed := m.Run()

	if bad := workload.CheckMatMul(m, l); bad != 0 {
		fmt.Printf("FAILED: %d wrong elements\n", bad)
		return
	}
	fmt.Printf("C = A×B (%d×%d) verified on %d processors in %v simulated time\n\n",
		l.Dim, l.Dim, workers, elapsed)
	fmt.Print(m.Metrics())

	// The same multiply on one processor, for a crude speedup figure.
	single := core.MustNew(core.Config{N: 4, BlockWords: 16})
	workload.SeedMatrices(single, l)
	single.Spawn(0, func(c *core.Ctx) { workload.MatMulWorker(c, l, 0, 1) })
	serial := single.Run()
	fmt.Printf("\nserial time %v, parallel time %v, speedup %.1f× on %d processors\n",
		serial, elapsed, float64(serial)/float64(elapsed), workers)
}
