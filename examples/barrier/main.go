// Barrier: an iterative 1-D stencil (Jacobi smoothing) with barrier
// synchronization between sweeps — the paper's "large-scale simulation
// models" workload class, and a demonstration of the Section 4 barrier
// built on the SYNC distributed queue: the arrival counter travels around
// the queue of arrivals by cache-to-cache handoff, and only the final
// sense flip costs an invalidation broadcast.
package main

import (
	"fmt"

	"multicube/internal/core"
	"multicube/internal/syncprim"
	"multicube/internal/workload"
)

func main() {
	m := core.MustNew(core.Config{N: 3, BlockWords: 16})

	l := workload.StencilLayout{
		Cells:      256,
		SrcBase:    0,
		DstBase:    4096,
		LockAddr:   8192,
		CountAddr:  8194, // same line as the lock: travels with it
		SenseAddr:  8448, // its own line: flipping it broadcasts
		Iterations: 10,
	}
	// A hot spike in the middle of the rod; watch it diffuse.
	m.SeedMemory(l.SrcBase+128, []uint64{90000})

	barrier := &syncprim.Barrier{
		Lock:      &syncprim.QueueLock{Addr: l.LockAddr},
		CountAddr: l.CountAddr,
		SenseAddr: l.SenseAddr,
		N:         m.Processors(),
	}
	workers := m.Processors()
	for id := 0; id < workers; id++ {
		id := id
		m.Spawn(id, func(c *core.Ctx) {
			workload.StencilWorker(c, l, id, workers, barrier)
		})
	}
	elapsed := m.Run()

	// After an even number of iterations the current state is in SrcBase.
	fmt.Printf("%d stencil iterations over %d cells on %d processors in %v\n\n",
		l.Iterations, l.Cells, workers, elapsed)
	fmt.Println("temperature profile around the spike (cells 120..136):")
	for i := 120; i <= 136; i += 2 {
		fmt.Printf("  cell %3d: %6d\n", i, m.ReadCoherent(l.SrcBase+core.Addr(i)))
	}

	fmt.Println()
	fmt.Print(m.Metrics())
	if errs := m.CheckInvariants(); len(errs) == 0 {
		fmt.Println("\ncoherence invariants: ok")
	} else {
		for _, err := range errs {
			fmt.Println("invariant violation:", err)
		}
	}
}
