// Bank: a miniature transaction-processing system — the paper's
// "high-transaction database systems" workload class. Each account lives
// on its own coherency block, with the lock word and the balance sharing
// the line so that acquiring the lock also delivers the data (the paper's
// SYNC design: the protected datum travels with the lock line from cache
// to cache). Transfers lock the two accounts in address order (so the
// system is deadlock-free) and move money; the invariant is conservation
// of the total balance.
package main

import (
	"fmt"

	"multicube/internal/core"
	"multicube/internal/sim"
	"multicube/internal/syncprim"
	"multicube/internal/workload"
)

const (
	accounts       = 32
	initialBalance = 1000
	transfersEach  = 25
	balanceWord    = 2 // words 0,1 of the lock line are lock and link
)

func accountAddr(m *core.Machine, i int) core.Addr {
	return core.Addr(i * m.BlockWords())
}

func main() {
	m := core.MustNew(core.Config{N: 4, BlockWords: 16})

	// Open the accounts.
	for i := 0; i < accounts; i++ {
		m.SeedMemory(accountAddr(m, i)+balanceWord, []uint64{initialBalance})
	}
	locks := make([]*syncprim.QueueLock, accounts)
	for i := range locks {
		locks[i] = &syncprim.QueueLock{Addr: accountAddr(m, i)}
	}

	committed := 0
	m.SpawnAll(func(c *core.Ctx) {
		rng := workload.NewRand(uint64(c.ID()) + 42)
		for t := 0; t < transfersEach; t++ {
			from, to := rng.Intn(accounts), rng.Intn(accounts)
			if from == to {
				to = (to + 1) % accounts
			}
			// Lock in address order: no deadlock.
			lo, hi := from, to
			if lo > hi {
				lo, hi = hi, lo
			}
			locks[lo].Lock(c)
			locks[hi].Lock(c)

			amount := uint64(rng.Intn(50) + 1)
			fromBal := c.Load(accountAddr(c.Machine(), from) + balanceWord)
			if fromBal >= amount {
				c.Store(accountAddr(c.Machine(), from)+balanceWord, fromBal-amount)
				toBal := c.Load(accountAddr(c.Machine(), to) + balanceWord)
				c.Store(accountAddr(c.Machine(), to)+balanceWord, toBal+amount)
				committed++
			}

			locks[hi].Unlock(c)
			locks[lo].Unlock(c)
			c.Sleep(2 * sim.Microsecond) // think between transactions
		}
	})
	elapsed := m.Run()

	total := uint64(0)
	for i := 0; i < accounts; i++ {
		total += m.ReadCoherent(accountAddr(m, i) + balanceWord)
	}
	want := uint64(accounts * initialBalance)
	fmt.Printf("%d transfers committed by %d processors in %v simulated time\n",
		committed, m.Processors(), elapsed)
	fmt.Printf("total balance %d (expected %d): ", total, want)
	if total == want {
		fmt.Println("conserved ✔")
	} else {
		fmt.Println("VIOLATED ✘")
	}
	tps := float64(committed) / (float64(elapsed) / float64(sim.Second))
	fmt.Printf("throughput: %.0f transactions/second of simulated time\n\n", tps)
	fmt.Print(m.Metrics())

	if errs := m.CheckInvariants(); len(errs) == 0 {
		fmt.Println("\ncoherence invariants: ok")
	} else {
		for _, err := range errs {
			fmt.Println("invariant violation:", err)
		}
	}
}
