// Workqueue: a high-contention producer/consumer system — the paper's
// "high-transaction database systems" workload class. A shared FIFO work
// queue is protected by the SYNC distributed queue lock of Section 4:
// contending processors enqueue themselves with a single bus transaction
// and receive the lock line by direct cache-to-cache handoff, in FIFO
// order, instead of hammering the buses with test-and-set retries.
package main

import (
	"fmt"

	"multicube/internal/core"
	"multicube/internal/sim"
	"multicube/internal/workload"
)

func main() {
	m := core.MustNew(core.Config{N: 4, BlockWords: 16})
	q := workload.NewWorkQueue(0 /* lock line */, 1024 /* slots */, 64)

	const producers = 4
	const tasksPerProducer = 32
	const totalTasks = producers * tasksPerProducer

	// Producers: processors 0..3 push transactions into the queue.
	for id := 0; id < producers; id++ {
		id := id
		m.Spawn(id, func(c *core.Ctx) {
			for i := 0; i < tasksPerProducer; i++ {
				task := uint64(id*1000 + i)
				q.Push(c, task)
				c.Sleep(3 * sim.Microsecond) // produce the next transaction
			}
		})
	}

	// Consumers: the remaining 12 processors drain it.
	done := 0
	perConsumer := make([]int, m.Processors())
	for id := producers; id < m.Processors(); id++ {
		id := id
		m.Spawn(id, func(c *core.Ctx) {
			idle := 0
			for done < totalTasks && idle < 400 {
				if _, ok := q.Pop(c); ok {
					done++
					perConsumer[id]++
					idle = 0
					c.Sleep(5 * sim.Microsecond) // execute the transaction
				} else {
					idle++
					c.Sleep(1 * sim.Microsecond)
				}
			}
		})
	}

	elapsed := m.Run()
	fmt.Printf("processed %d/%d tasks in %v simulated time\n", done, totalTasks, elapsed)
	busy := 0
	for id := producers; id < m.Processors(); id++ {
		if perConsumer[id] > 0 {
			busy++
		}
	}
	fmt.Printf("%d consumers did work; queue-lock fallbacks to test-and-set: ", busy)
	_, fallbacks := q.Lock.Stats()
	fmt.Println(fallbacks)

	fmt.Println()
	fmt.Print(m.Metrics())
	if errs := m.CheckInvariants(); len(errs) == 0 {
		fmt.Println("\ncoherence invariants: ok")
	} else {
		for _, err := range errs {
			fmt.Println("invariant violation:", err)
		}
	}
}
