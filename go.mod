module multicube

go 1.22
