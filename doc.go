// Package multicube is a complete Go reproduction of "The Wisconsin
// Multicube: A New Large-Scale Cache-Coherent Multiprocessor" (Goodman &
// Woest, ISCA 1988): a deterministic simulator of the grid-of-buses
// machine and its snooping cache consistency protocol, the single-bus
// multi baseline, the Section 4 synchronization primitives, the
// analytical model behind the paper's Figures 2–4, and a benchmark
// harness regenerating every table and figure of the evaluation.
//
// The library lives under internal/; start with internal/core (the
// assembled machine and its programming model), DESIGN.md (system
// inventory and experiment index) and EXPERIMENTS.md (paper-versus-
// measured results). The root package holds the benchmark entry points.
package multicube
