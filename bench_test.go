// Benchmarks regenerating the paper's evaluation: one benchmark per table
// and figure (see DESIGN.md's experiment index and EXPERIMENTS.md for the
// paper-versus-measured record). Each iteration rebuilds the experiment
// from scratch, so the reported ns/op is the cost of regenerating the
// entire table or figure. Run with:
//
//	go test -bench=. -benchmem
//
// The same outputs are printed by cmd/multicube-bench.
package multicube

import (
	"testing"

	"multicube/internal/experiments"
	"multicube/internal/mva"
)

// sink defeats dead-code elimination.
var sink int

// BenchmarkFigure2 regenerates Figure 2 (efficiency vs. processors per
// row) from the analytical model.
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink = len(experiments.Figure2().Render())
	}
}

// BenchmarkFigure2Sim regenerates Figure 2's simulator cross-check: the
// discrete-event machine under an organic shared-data workload.
func BenchmarkFigure2Sim(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink = len(experiments.Figure2Sim([]int{4, 8}, 100).Render())
	}
}

// BenchmarkFigure3 regenerates Figure 3 (effect of invalidations).
func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink = len(experiments.Figure3().Render())
	}
}

// BenchmarkFigure4 regenerates Figure 4 (effect of block size).
func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink = len(experiments.Figure4().Render())
	}
}

// BenchmarkFigure4Tradeoff regenerates Figure 4's dashed-line block-size
// versus request-rate coupling analysis.
func BenchmarkFigure4Tradeoff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink = len(experiments.BlockTradeoff().Render())
	}
}

// BenchmarkLatencyTechniques regenerates the Section 5 latency ablation
// (cut-through, word-first, small transfer blocks).
func BenchmarkLatencyTechniques(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink = len(experiments.Latency().Render())
	}
}

// BenchmarkOpsTable regenerates the bus-operations-per-transaction table
// (the Section 3/6 operation-count claims), measured on the simulator.
func BenchmarkOpsTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink = len(experiments.Ops().Render())
	}
}

// BenchmarkScaleTable regenerates the Section 6 Multicube scaling table.
func BenchmarkScaleTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink = len(experiments.Scale().Render())
	}
}

// BenchmarkMultiVsMulticube regenerates the single-bus-multi versus
// Multicube comparison (the paper's motivating claim).
func BenchmarkMultiVsMulticube(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink = len(experiments.MultiVsMulticube(60).Render())
	}
}

// BenchmarkSyncPrimitives regenerates the Section 4 lock comparison
// (test-and-set vs. test-and-test-and-set vs. the SYNC queue lock).
func BenchmarkSyncPrimitives(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink = len(experiments.Sync(6).Render())
	}
}

// BenchmarkDimensionSweep regenerates the Section 6 dimensionality
// analysis with the generalized k-dimensional model.
func BenchmarkDimensionSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink = len(experiments.Dimensions().Render())
	}
}

// BenchmarkSnarfAblation regenerates the Section 3 snarf ablation.
func BenchmarkSnarfAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink = len(experiments.Snarf(100).Render())
	}
}

// BenchmarkMLTSizing regenerates the footnote-7 modified-line-table
// sizing sweep.
func BenchmarkMLTSizing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink = len(experiments.MLTSize(100).Render())
	}
}

// BenchmarkFalseSharing regenerates the Section 5 false-sharing ablation.
func BenchmarkFalseSharing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink = len(experiments.FalseSharing(40).Render())
	}
}

// BenchmarkArbitration regenerates the bus-arbitration policy comparison.
func BenchmarkArbitration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink = len(experiments.Arbitration(80).Render())
	}
}

// BenchmarkSyncScaling regenerates the lock-contention scaling table.
func BenchmarkSyncScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink = len(experiments.SyncScaling(4).Render())
	}
}

// BenchmarkMVASolve measures a single analytical-model evaluation at the
// paper's 1K-processor design point.
func BenchmarkMVASolve(b *testing.B) {
	p := mva.Defaults(32)
	for i := 0; i < b.N; i++ {
		r := mva.MustSolve(p)
		sink = int(r.Efficiency * 1000)
	}
}
