// Command multicube-vet runs the repository's invariant suite — genbump,
// detmap, nowallclock, chooserseam, nolockstep — over the given package patterns
// (default ./...). It exits 0 when clean, 1 with findings, 2 on errors,
// mirroring go vet. See internal/analysis and each pass's package
// documentation for the enforced invariants and the //multicube:
// directive syntax.
//
// Usage:
//
//	go run ./cmd/multicube-vet ./...
//	go run ./cmd/multicube-vet -only=genbump -time ./internal/coherence
package main

import (
	"os"

	"multicube/internal/analysis/multichecker"
)

func main() {
	os.Exit(multichecker.Run("", os.Stdout, os.Args[1:]))
}
