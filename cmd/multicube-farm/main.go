// Command multicube-farm is the simulation-job farm: `serve` runs the
// fingerprint-cached HTTP job server over the repo's engines (timed
// simulator, model checker, litmus harness, swarm fuzzer), and `load`
// is the companion load generator that hammers a farm with a
// configurable duplicate ratio and reports throughput and latency
// percentiles.
//
//	multicube-farm serve -listen :8344 -cache-dir /var/lib/multicube-farm
//	multicube-farm load -addr http://localhost:8344 -duration 10s -dup 0.9
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"multicube/internal/farm"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "serve":
		err = serveMain(os.Args[2:])
	case "load":
		err = loadMain(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "multicube-farm: unknown command %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "multicube-farm:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  multicube-farm serve [flags]   run the job server
  multicube-farm load  [flags]   run the load generator against a server

Run "multicube-farm <command> -h" for per-command flags.
`)
}

func serveMain(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	listen := fs.String("listen", ":8344", "address to listen on")
	workers := fs.Int("workers", 4, "job worker pool size")
	queueDepth := fs.Int("queue", 64, "max queued jobs before 429 backpressure")
	cacheDir := fs.String("cache-dir", "", "on-disk result cache directory (empty: memory only)")
	cacheMem := fs.Int("cache-mem", 256, "in-memory cache entries")
	jobTimeout := fs.Duration("job-timeout", 2*time.Minute, "per-job execution ceiling")
	mcWorkers := fs.Int("mc-workers", 1, "explorer parallelism per mc job")
	rate := fs.Float64("rate", 50, "per-client requests/sec (0 disables limiting)")
	burst := fs.Int("burst", 100, "per-client burst allowance")
	drain := fs.Duration("drain", 30*time.Second, "graceful shutdown drain budget")
	fs.Parse(args)

	srv, err := farm.New(farm.Config{
		Workers:         *workers,
		QueueDepth:      *queueDepth,
		CacheDir:        *cacheDir,
		CacheMemEntries: *cacheMem,
		JobTimeout:      *jobTimeout,
		MCWorkers:       *mcWorkers,
		RatePerSec:      *rate,
		RateBurst:       *burst,
	})
	if err != nil {
		return err
	}
	hs := &http.Server{Addr: *listen, Handler: srv.Handler()}

	// SIGTERM/SIGINT: stop accepting, drain the queue, then exit. Jobs
	// still running when the drain budget expires are canceled via their
	// contexts and marked, not lost.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "multicube-farm: serving on %s (%d workers, queue %d)\n", *listen, *workers, *queueDepth)

	select {
	case err := <-serveErr:
		return err
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "multicube-farm: %v: draining (budget %s)\n", sig, *drain)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	closeErr := srv.Close(ctx)
	hs.Shutdown(ctx)
	if closeErr != nil {
		return fmt.Errorf("drain: %w", closeErr)
	}
	fmt.Fprintln(os.Stderr, "multicube-farm: drained cleanly")
	return nil
}

// loadStats accumulates per-request observations across client
// goroutines.
type loadStats struct {
	mu        sync.Mutex
	latencies []time.Duration

	requests atomic.Uint64
	cached   atomic.Uint64
	deduped  atomic.Uint64
	queued   atomic.Uint64
	rejected atomic.Uint64 // 429s: rate limit or queue full
	errors   atomic.Uint64
}

func (st *loadStats) observe(d time.Duration) {
	st.mu.Lock()
	st.latencies = append(st.latencies, d)
	st.mu.Unlock()
}

func (st *loadStats) percentile(p float64) time.Duration {
	st.mu.Lock()
	defer st.mu.Unlock()
	if len(st.latencies) == 0 {
		return 0
	}
	sort.Slice(st.latencies, func(i, j int) bool { return st.latencies[i] < st.latencies[j] })
	idx := int(p * float64(len(st.latencies)-1))
	return st.latencies[idx]
}

// loadReport is the machine-readable outcome, merged into BENCH_mc.json
// under "farm" when -bench is given.
type loadReport struct {
	Date          string  `json:"date"`
	DurationSec   float64 `json:"duration_sec"`
	Concurrency   int     `json:"concurrency"`
	DupRatio      float64 `json:"dup_ratio"`
	Requests      uint64  `json:"requests"`
	Throughput    float64 `json:"throughput_req_per_sec"`
	P50MS         float64 `json:"p50_ms"`
	P90MS         float64 `json:"p90_ms"`
	P99MS         float64 `json:"p99_ms"`
	CacheHits     uint64  `json:"cache_hits"`
	DedupHits     uint64  `json:"dedup_hits"`
	JobsQueued    uint64  `json:"jobs_queued"`
	Rejected      uint64  `json:"rejected_429"`
	Errors        uint64  `json:"errors"`
	CacheHitRatio float64 `json:"cache_hit_ratio"`
	JobLosses     uint64  `json:"job_losses"`
}

func loadMain(args []string) error {
	fs := flag.NewFlagSet("load", flag.ExitOnError)
	addr := fs.String("addr", "http://localhost:8344", "farm base URL")
	duration := fs.Duration("duration", 10*time.Second, "load duration")
	conc := fs.Int("c", 8, "concurrent clients")
	dup := fs.Float64("dup", 0.9, "probability a request reuses an already-sent spec")
	uniq := fs.Int("uniq", 64, "unique spec pool size")
	seed := fs.Int64("seed", 1, "client RNG seed")
	jsonOut := fs.Bool("json", false, "emit the report as JSON on stdout")
	benchFile := fs.String("bench", "", "merge the report into this BENCH_mc.json under \"farm\"")
	fs.Parse(args)

	// The unique pool is cheap swarm singletons: each explores a couple
	// of small scenarios, so a miss costs milliseconds and the farm's
	// caching — not raw engine speed — dominates what we measure.
	specs := make([][]byte, *uniq)
	for i := range specs {
		specs[i] = []byte(fmt.Sprintf(
			`{"kind":"swarm","swarm":{"base_seed":%d,"count":1,"machines":"multicube","max_states":1500}}`, 1000+i))
	}

	client := &http.Client{Timeout: 30 * time.Second}
	var st loadStats
	jobIDs := make(chan string, 1<<16)
	ctx, cancel := context.WithTimeout(context.Background(), *duration)
	defer cancel()

	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(w)))
			sent := []int{}
			for ctx.Err() == nil {
				var idx int
				if len(sent) > 0 && rng.Float64() < *dup {
					idx = sent[rng.Intn(len(sent))]
				} else {
					idx = rng.Intn(len(specs))
					sent = append(sent, idx)
				}
				t0 := time.Now()
				resp, err := client.Post(*addr+"/jobs", "application/json", bytes.NewReader(specs[idx]))
				lat := time.Since(t0)
				if err != nil {
					if ctx.Err() != nil {
						return
					}
					st.errors.Add(1)
					continue
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				st.requests.Add(1)
				st.observe(lat)
				switch resp.StatusCode {
				case http.StatusOK, http.StatusAccepted:
					var r struct {
						JobID   string `json:"job_id"`
						Cached  bool   `json:"cached"`
						Deduped bool   `json:"deduped"`
					}
					if json.Unmarshal(body, &r) != nil {
						st.errors.Add(1)
						continue
					}
					switch {
					case r.Cached:
						st.cached.Add(1)
					case r.Deduped:
						st.deduped.Add(1)
					default:
						st.queued.Add(1)
						select {
						case jobIDs <- r.JobID:
						default:
						}
					}
				case http.StatusTooManyRequests:
					st.rejected.Add(1)
					time.Sleep(50 * time.Millisecond)
				default:
					st.errors.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(jobIDs)

	// Loss audit: every job the farm accepted must reach a terminal
	// state. A job that never finishes is a loss — the acceptance bar
	// is zero.
	var losses uint64
	deadline := time.Now().Add(60 * time.Second)
	for id := range jobIDs {
		for {
			resp, err := client.Get(*addr + "/jobs/" + id)
			if err != nil {
				losses++
				break
			}
			var r struct {
				Status string `json:"status"`
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			json.Unmarshal(body, &r)
			if r.Status == farm.StateDone || r.Status == farm.StateFailed || r.Status == farm.StateCanceled {
				break
			}
			if time.Now().After(deadline) {
				losses++
				break
			}
			time.Sleep(100 * time.Millisecond)
		}
	}

	reqs := st.requests.Load()
	hits := st.cached.Load() + st.deduped.Load()
	hitRatio := 0.0
	if reqs > 0 {
		hitRatio = float64(hits) / float64(reqs)
	}
	rep := loadReport{
		Date:          time.Now().Format("2006-01-02"),
		DurationSec:   elapsed.Seconds(),
		Concurrency:   *conc,
		DupRatio:      *dup,
		Requests:      reqs,
		Throughput:    float64(reqs) / elapsed.Seconds(),
		P50MS:         float64(st.percentile(0.50)) / 1e6,
		P90MS:         float64(st.percentile(0.90)) / 1e6,
		P99MS:         float64(st.percentile(0.99)) / 1e6,
		CacheHits:     st.cached.Load(),
		DedupHits:     st.deduped.Load(),
		JobsQueued:    st.queued.Load(),
		Rejected:      st.rejected.Load(),
		Errors:        st.errors.Load(),
		CacheHitRatio: hitRatio,
		JobLosses:     losses,
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", " ")
		enc.Encode(rep)
	} else {
		fmt.Printf("requests   %d in %.1fs  (%.1f req/s)\n", rep.Requests, rep.DurationSec, rep.Throughput)
		fmt.Printf("latency    p50 %.2fms  p90 %.2fms  p99 %.2fms\n", rep.P50MS, rep.P90MS, rep.P99MS)
		fmt.Printf("cache      %d hits, %d dedup, %d executed  (hit ratio %.2f)\n",
			rep.CacheHits, rep.DedupHits, rep.JobsQueued, rep.CacheHitRatio)
		fmt.Printf("pressure   %d rejected (429), %d errors, %d losses\n", rep.Rejected, rep.Errors, rep.JobLosses)
	}
	if *benchFile != "" {
		if err := mergeBench(*benchFile, rep); err != nil {
			return fmt.Errorf("bench merge: %w", err)
		}
	}
	if losses > 0 {
		return fmt.Errorf("%d jobs lost", losses)
	}
	return nil
}

// mergeBench rewrites path with a "farm" key holding rep, preserving
// every other top-level field.
func mergeBench(path string, rep loadReport) error {
	doc := map[string]json.RawMessage{}
	if b, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(b, &doc); err != nil {
			return err
		}
	}
	b, err := json.Marshal(rep)
	if err != nil {
		return err
	}
	doc["farm"] = b
	out, err := json.MarshalIndent(doc, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
