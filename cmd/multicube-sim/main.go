// Command multicube-sim runs one simulation of the Wisconsin Multicube
// under the synthetic reference workload and prints machine metrics.
//
// Usage:
//
//	multicube-sim [-n 8] [-block 16] [-requests 200] [-think 10us]
//	              [-pshared 0.5] [-pwrite 0.3] [-shared-lines 64]
//	              [-cache-lines 0] [-mlt 0] [-snarf] [-seed 1]
//	              [-workers 0] [-arb fcfs]
//
// With -workers N (N > 0), the timed simulation runs on the conservative
// parallel engine with N worker goroutines — one partition per machine
// column — and prints the wall-clock event rate. Results are identical
// to the sequential default. -arb selects the bus service discipline
// (fcfs, rr, priority) for the arbitration ablation.
//
// With -trace-out, the generated reference stream is also written as a
// text trace replayable by multicube-sim -trace-in.
//
// With -memmodel, the simulator instead runs the litmus tests as timed
// DES stress programs (see internal/workload.RunLitmus) across a sweep
// of jitter seeds and judges every captured history with the
// sequential-consistency checker, exiting nonzero on any violation:
//
//	multicube-sim -memmodel [-litmus all] [-n 2] [-seeds 8] [-rounds 4]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"multicube/internal/bus"
	"multicube/internal/core"
	"multicube/internal/memmodel"
	"multicube/internal/sim"
	"multicube/internal/trace"
	"multicube/internal/workload"
)

func main() {
	n := flag.Int("n", 8, "processors per bus (machine is n×n)")
	block := flag.Int("block", 16, "coherency block size in bus words")
	requests := flag.Int("requests", 200, "references per processor")
	think := flag.Duration("think", 10*time.Microsecond, "mean think time")
	exponential := flag.Bool("exponential", true, "exponential think times")
	pshared := flag.Float64("pshared", 0.5, "probability of a shared reference")
	pwrite := flag.Float64("pwrite", 0.3, "probability of a write")
	sharedLines := flag.Int("shared-lines", 64, "shared hot-set size in lines")
	cacheLines := flag.Int("cache-lines", 0, "snooping cache capacity (0 = unbounded)")
	mlt := flag.Int("mlt", 0, "modified line table entries (0 = unbounded)")
	snarf := flag.Bool("snarf", false, "enable retained-tag snarfing")
	seed := flag.Uint64("seed", 1, "workload seed")
	workers := flag.Int("workers", 0, "parallel engine workers (0 = sequential kernel)")
	arbName := flag.String("arb", "fcfs", "bus arbitration: fcfs, rr, or priority")
	traceIn := flag.String("trace-in", "", "replay a text trace instead of the generator")
	traceOut := flag.String("trace-out", "", "write the generated references as a text trace")
	memMode := flag.Bool("memmodel", false, "run litmus stress programs and SC-check their histories")
	litmus := flag.String("litmus", "all", "litmus test name for -memmodel (all = whole suite)")
	seeds := flag.Int("seeds", 8, "jitter seeds per litmus configuration (-memmodel)")
	rounds := flag.Int("rounds", 4, "test instances per litmus run (-memmodel)")
	flag.Parse()

	if *memMode {
		runMemmodel(*litmus, *n, *seeds, *rounds, *seed)
		return
	}

	arb, err := bus.ParseArbitration(*arbName)
	if err != nil {
		fatal(err)
	}
	m, err := core.New(core.Config{
		N: *n, BlockWords: *block,
		CacheLines: *cacheLines, CacheAssoc: 4,
		MLTEntries: *mlt, MLTAssoc: 4,
		Snarf:       *snarf,
		Arbitration: arb,
		Parallel:    *workers,
	})
	if err != nil {
		fatal(err)
	}

	if *traceIn != "" {
		f, err := os.Open(*traceIn)
		if err != nil {
			fatal(err)
		}
		tr, err := trace.ReadText(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		if err := trace.Replay(m, tr, sim.Time(think.Nanoseconds())); err != nil {
			fatal(err)
		}
		fmt.Printf("replayed %d references on %s\n\n", tr.Len(), describe(m))
		fmt.Print(m.Metrics())
		checkInvariants(m)
		return
	}

	cfg := workload.GenConfig{
		Seed:        *seed,
		Think:       sim.Time(think.Nanoseconds()),
		Exponential: *exponential,
		SharedLines: *sharedLines,
		PShared:     *pshared,
		PWrite:      *pwrite,
		Requests:    *requests,
	}
	start := time.Now()
	rep := workload.Run(m, cfg)
	wall := time.Since(start)

	fmt.Printf("machine   %s\n", describe(m))
	fmt.Printf("workload  %s\n\n", cfg.Describe())
	fmt.Print(m.Metrics())
	fmt.Printf("\nefficiency        %.4f\n", rep.Efficiency())
	fmt.Printf("bus request rate  %.2f req/ms/processor\n", rep.BusRate(m.Processors()))
	// The wall-clock rate line is printed only in parallel mode, keeping
	// the sequential output byte-stable (and wall time out of it).
	if *workers > 0 {
		fmt.Printf("parallel engine   %d workers over %d columns: %d events in %v (%.0f events/sec)\n",
			m.Runner().Workers(), m.Runner().Parts(), m.Executed(), wall.Round(time.Millisecond),
			float64(m.Executed())/wall.Seconds())
		st := m.Runner().Stats()
		fmt.Printf("parallel phases   %d windows (%d jobs, %d events), %d boundaries (%d steps), parallelism %.2f\n",
			st.Windows, st.Jobs, st.WinSteps, st.Boundaries, st.Bsteps, st.Parallelism())
	}
	checkInvariants(m)

	if *traceOut != "" {
		tr := trace.Capture(m.Processors(), *requests, 16, *sharedLines, *block, *pshared, *pwrite, *seed)
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if err := tr.WriteText(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("\nwrote %d-record trace to %s\n", tr.Len(), *traceOut)
	}
}

// runMemmodel sweeps the litmus suite (or one named test) over seeds
// jitter seeds in both home-column placements, SC-checking every
// captured history. Any violation or undecided check exits nonzero.
func runMemmodel(name string, n, seeds, rounds int, baseSeed uint64) {
	tests := memmodel.LitmusTests()
	if name != "all" {
		l, ok := memmodel.LitmusByName(name)
		if !ok {
			fatal(fmt.Errorf("unknown litmus test %q", name))
		}
		tests = []memmodel.Litmus{l}
	}
	runs, bad := 0, 0
	for _, l := range tests {
		for _, same := range []bool{false, true} {
			if same && l.Vars < 2 {
				continue
			}
			placement := "split-col"
			if same {
				placement = "same-col"
			}
			var events int
			var elapsed sim.Time
			for s := 0; s < seeds; s++ {
				rep, err := workload.RunLitmus(workload.LitmusConfig{
					Test: l.Name, N: n, Rounds: rounds,
					Seed: baseSeed + uint64(s), SameColumn: same,
				})
				if err != nil {
					fatal(err)
				}
				runs++
				events = rep.History.Len()
				elapsed = rep.Elapsed
				if rep.Check.Verdict != memmodel.VerdictOK {
					bad++
					fmt.Printf("litmus %-5s %s seed %d: %v: %s\nhistory:\n%s",
						l.Name, placement, baseSeed+uint64(s),
						rep.Check.Verdict, rep.Check.Reason, rep.History)
				}
			}
			fmt.Printf("litmus %-5s %s: %d seeds ok (%d events/run, %v simulated)\n",
				l.Name, placement, seeds, events, elapsed)
		}
	}
	fmt.Printf("\nmemmodel: %d runs on %d×%d machines, %d SC failures\n", runs, n, n, bad)
	if bad > 0 {
		os.Exit(1)
	}
}

func describe(m *core.Machine) string {
	cfg := m.Config()
	return fmt.Sprintf("Wisconsin Multicube %d×%d (%d processors), %d-word blocks",
		cfg.N, cfg.N, m.Processors(), cfg.BlockWords)
}

func checkInvariants(m *core.Machine) {
	if errs := m.CheckInvariants(); len(errs) > 0 {
		fmt.Fprintln(os.Stderr, "\nINVARIANT VIOLATIONS:")
		for _, e := range errs {
			fmt.Fprintf(os.Stderr, "  %v\n", e)
		}
		os.Exit(1)
	}
	fmt.Println("\ncoherence invariants: ok")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "multicube-sim:", err)
	os.Exit(1)
}
