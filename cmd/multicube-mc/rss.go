package main

import (
	"os"
	"strconv"
	"strings"
	"time"
)

func statesPerSec(states int, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(states) / elapsed.Seconds()
}

// peakRSS reads the process's high-water resident set from
// /proc/self/status (VmHWM), in bytes. Returns 0 where procfs is
// unavailable; the benchmarks that record it run on Linux.
func peakRSS() int64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb * 1024
	}
	return 0
}
