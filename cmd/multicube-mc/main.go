// Command multicube-mc model-checks the Appendix A coherence protocol:
// it drives the real protocol engine through every reachable
// interleaving of a small bounded scenario, checking the global-state
// invariants, a per-address sequential-consistency witness, progress
// (no lost transactions), and a retransmission bound.
//
// Usage:
//
//	multicube-mc -preset readmod-race [-budget 200000] [-depth-step 0]
//	             [-workers 1] [-inject] [-no-por] [-no-sleep]
//	             [-no-minimize] [-quiet]
//	multicube-mc -list
//
// On a violation the exit status is 1 and the minimized counterexample
// is printed as a choice sequence plus the annotated bus-operation
// trace of its replay. -inject disables the stale in-flight reply
// defense (DESIGN.md §5.6a) to demonstrate the checker catching the
// resulting stale-sharer state.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"multicube/internal/mc"
)

func main() {
	preset := flag.String("preset", "", "scenario to check (see -list)")
	list := flag.Bool("list", false, "list the built-in presets and exit")
	budget := flag.Int("budget", 0, "visited-state budget (default 200000)")
	depth := flag.Int("depth", 0, "choice-depth bound (0 = unlimited)")
	depthStep := flag.Int("depth-step", 0, "iterative-deepening step (0 = single full-depth pass)")
	workers := flag.Int("workers", 1, "parallel exploration workers (verdict is worker-count independent)")
	inject := flag.Bool("inject", false, "disable the stale-reply defense of DESIGN.md §5.6a")
	noPOR := flag.Bool("no-por", false, "disable the partial-order reduction entirely")
	noSleep := flag.Bool("no-sleep", false, "keep eager-firing but disable the sleep sets")
	noMin := flag.Bool("no-minimize", false, "skip counterexample shrinking")
	quiet := flag.Bool("quiet", false, "suppress the bus trace on violations")
	flag.Parse()

	if *list {
		for _, name := range mc.Presets() {
			sc, _ := mc.Preset(name)
			where := "a single bus"
			if !sc.SingleBus {
				if sc.N == 0 {
					sc.N = 2
				}
				where = fmt.Sprintf("a %dx%d grid", sc.N, sc.N)
			}
			fmt.Printf("%-18s %d procs, %d ops on %s\n",
				name, len(sc.Procs), sc.TotalOps(), where)
		}
		return
	}
	if *preset == "" {
		fmt.Fprintln(os.Stderr, "multicube-mc: -preset required (try -list)")
		os.Exit(2)
	}
	sc, err := mc.Preset(*preset)
	if err != nil {
		fmt.Fprintf(os.Stderr, "multicube-mc: %v\n", err)
		os.Exit(2)
	}
	sc.InjectStaleReply = *inject
	opts := mc.Options{
		MaxStates:    *budget,
		MaxDepth:     *depth,
		DepthStep:    *depthStep,
		Workers:      *workers,
		DisablePOR:   *noPOR,
		DisableSleep: *noSleep,
		NoMinimize:   *noMin,
	}

	start := time.Now()
	res, err := mc.Explore(sc, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "multicube-mc: %v\n", err)
		os.Exit(2)
	}
	elapsed := time.Since(start).Round(time.Millisecond)

	fmt.Printf("scenario  %s\n", res.Scenario)
	fmt.Printf("states    %d distinct canonical states\n", res.States)
	fmt.Printf("runs      %d executions (%d across deepening)\n", res.Runs, res.TotalRuns)
	switch {
	case res.Exhausted:
		fmt.Printf("coverage  exhausted: every reachable interleaving within bounds\n")
	case res.BudgetHit:
		fmt.Printf("coverage  stopped at the %d-state budget\n", res.States)
	default:
		fmt.Printf("coverage  partial (depth %d)\n", res.Depth)
	}
	fmt.Printf("elapsed   %v\n", elapsed)

	if res.Violation == nil {
		fmt.Printf("result    no violations\n")
		return
	}
	v := res.Violation
	fmt.Printf("result    %s VIOLATION: %s\n", v.Kind, v.Msg)
	fmt.Printf("choices   %v\n", v.Choices)
	if !*quiet {
		rr, err := mc.Replay(sc, v.Choices, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "multicube-mc: replay: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nreplayed bus-operation trace (%d kernel steps):\n", rr.Steps)
		if err := rr.Log.WriteText(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "multicube-mc: %v\n", err)
		}
		if rr.Violation != nil {
			fmt.Printf("\nreplay reproduces: %s\n", rr.Violation.Msg)
		}
	}
	os.Exit(1)
}
