// Command multicube-mc model-checks the Appendix A coherence protocol:
// it drives the real protocol engine through every reachable
// interleaving of a small bounded scenario, checking the global-state
// invariants, a per-address sequential-consistency witness, progress
// (no lost transactions), and a retransmission bound.
//
// Usage:
//
//	multicube-mc -preset readmod-race [-budget 200000] [-depth-step 0]
//	             [-workers 1] [-inject] [-no-por] [-no-sleep]
//	             [-no-minimize] [-quiet] [-json] [-checkfp]
//	             [-store dir] [-mem-budget bytes] [-checkpoint dir]
//	             [-checkpoint-every n] [-resume] [-dist-parts n]
//	             [-cpuprofile f] [-memprofile f]
//	multicube-mc -list
//
// -store/-mem-budget bound the visited table's RAM and spill cold shards
// to disk; -checkpoint/-resume make a killed run resumable with a
// byte-identical verdict (see "Exploring beyond RAM" in the README).
//
// On a violation the exit status is 1 and the minimized counterexample
// is printed as a choice sequence plus the annotated bus-operation
// trace of its replay. -inject disables the stale in-flight reply
// defense (DESIGN.md §5.6a) to demonstrate the checker catching the
// resulting stale-sharer state.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"time"

	"multicube/internal/mc"
)

func main() {
	os.Exit(run())
}

// run is the real main; routing the exit status through a return keeps
// the deferred profile writers running on every path.
func run() int {
	preset := flag.String("preset", "", "scenario to check (see -list)")
	list := flag.Bool("list", false, "list the built-in presets and exit")
	budget := flag.Int("budget", 0, "visited-state budget (default 200000)")
	depth := flag.Int("depth", 0, "choice-depth bound (0 = unlimited)")
	depthStep := flag.Int("depth-step", 0, "iterative-deepening step (0 = single full-depth pass)")
	workers := flag.Int("workers", 1, "parallel exploration workers (verdict is worker-count independent)")
	inject := flag.Bool("inject", false, "disable the stale-reply defense of DESIGN.md §5.6a")
	noPOR := flag.Bool("no-por", false, "disable the partial-order reduction entirely")
	noSleep := flag.Bool("no-sleep", false, "keep eager-firing but disable the sleep sets")
	noMin := flag.Bool("no-minimize", false, "skip counterexample shrinking")
	scNodes := flag.Int("sc-nodes", 0, "per-execution SC search node budget for CheckSC scenarios (0 = memmodel default)")
	quiet := flag.Bool("quiet", false, "suppress the bus trace on violations")
	checkFP := flag.Bool("checkfp", false, "cross-check the incremental fingerprint against a from-scratch recompute at every choice point (slow)")
	storeDir := flag.String("store", "", "spill directory for the visited-state store (empty = memory-only)")
	memBudget := flag.Int64("mem-budget", 0, "visited-store memory budget in bytes before spilling to -store (0 = unbounded)")
	ckptDir := flag.String("checkpoint", "", "directory for periodic search checkpoints (requires -workers 1)")
	ckptEvery := flag.Int("checkpoint-every", 0, "executions between checkpoints (default 512)")
	resume := flag.Bool("resume", false, "resume from the newest matching checkpoint in -checkpoint")
	distParts := flag.Int("dist-parts", 0, "split the search across n fingerprint-range partitions with handoff (0 = off)")
	jsonOut := flag.Bool("json", false, "emit the result as JSON on stdout instead of text")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "multicube-mc: -cpuprofile: %v\n", err)
			return 2
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "multicube-mc: -cpuprofile: %v\n", err)
			return 2
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "multicube-mc: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "multicube-mc: -memprofile: %v\n", err)
			}
		}()
	}

	if *list {
		for _, name := range mc.Presets() {
			sc, _ := mc.Preset(name)
			where := "a single bus"
			if !sc.SingleBus {
				if sc.N == 0 {
					sc.N = 2
				}
				where = fmt.Sprintf("a %dx%d grid", sc.N, sc.N)
			}
			fmt.Printf("%-18s %d procs, %d ops on %s\n",
				name, len(sc.Procs), sc.TotalOps(), where)
		}
		return 0
	}
	if *preset == "" {
		fmt.Fprintln(os.Stderr, "multicube-mc: -preset required (try -list)")
		return 2
	}
	sc, err := mc.Preset(*preset)
	if err != nil {
		fmt.Fprintf(os.Stderr, "multicube-mc: %v\n", err)
		return 2
	}
	sc.InjectStaleReply = *inject
	opts := mc.Options{
		MaxStates:       *budget,
		MaxDepth:        *depth,
		DepthStep:       *depthStep,
		Workers:         *workers,
		DisablePOR:      *noPOR,
		DisableSleep:    *noSleep,
		NoMinimize:      *noMin,
		SCNodes:         *scNodes,
		CheckFP:         *checkFP,
		StoreDir:        *storeDir,
		MemBudget:       *memBudget,
		CheckpointDir:   *ckptDir,
		CheckpointEvery: *ckptEvery,
		Resume:          *resume,
		DistParts:       *distParts,
	}

	start := time.Now()
	res, err := mc.Explore(sc, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "multicube-mc: %v\n", err)
		return 2
	}
	elapsed := time.Since(start).Round(time.Millisecond)

	if *jsonOut {
		out := struct {
			mc.Result
			ElapsedMS    int64   `json:"elapsed_ms"`
			StatesPerSec float64 `json:"states_per_sec"`
			PeakRSSBytes int64   `json:"peak_rss_bytes"`
		}{Result: res, ElapsedMS: elapsed.Milliseconds(),
			StatesPerSec: statesPerSec(res.States, elapsed), PeakRSSBytes: peakRSS()}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "multicube-mc: %v\n", err)
			return 2
		}
		if res.Violation != nil {
			return 1
		}
		return 0
	}

	fmt.Printf("scenario  %s\n", res.Scenario)
	if res.Resumed {
		fmt.Printf("resumed   true (continued from checkpoint)\n")
	}
	if res.ResumeNote != "" {
		fmt.Printf("resumed   false: %s\n", res.ResumeNote)
	}
	fmt.Printf("states    %d distinct canonical states\n", res.States)
	fmt.Printf("runs      %d executions (%d across deepening)\n", res.Runs, res.TotalRuns)
	if res.Spills > 0 || res.DiskBytes > 0 {
		fmt.Printf("store     %d spills, %d bytes on disk\n", res.Spills, res.DiskBytes)
	}
	if res.Handoffs > 0 {
		fmt.Printf("handoffs  %d cross-partition transfers\n", res.Handoffs)
	}
	switch {
	case res.Exhausted:
		fmt.Printf("coverage  exhausted: every reachable interleaving within bounds\n")
	case res.BudgetHit:
		fmt.Printf("coverage  stopped at the %d-state budget\n", res.States)
	default:
		fmt.Printf("coverage  partial (depth %d)\n", res.Depth)
	}
	fmt.Printf("elapsed   %v\n", elapsed)
	fmt.Printf("fp        %d component recomputes, %d cache hits\n", res.FPRecomputes, res.FPIncremental)
	if res.SCVerdict != "" {
		fmt.Printf("sc        %d histories checked (%d undecided): %s\n",
			res.SCChecks, res.SCUndecided, res.SCVerdict)
	}

	if res.Violation == nil {
		fmt.Printf("result    no violations\n")
		return 0
	}
	v := res.Violation
	fmt.Printf("result    %s VIOLATION: %s\n", v.Kind, v.Msg)
	fmt.Printf("choices   %v\n", v.Choices)
	if !*quiet {
		rr, err := mc.Replay(sc, v.Choices, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "multicube-mc: replay: %v\n", err)
			return 1
		}
		fmt.Printf("\nreplayed bus-operation trace (%d kernel steps):\n", rr.Steps)
		if err := rr.Log.WriteText(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "multicube-mc: %v\n", err)
		}
		if rr.Violation != nil {
			fmt.Printf("\nreplay reproduces: %s\n", rr.Violation.Msg)
		}
	}
	return 1
}
