// Command multicube-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	multicube-bench [-experiment all|fig2|fig2sim|fig3|fig4|tradeoff|latency|
//	                 ops|scale|multi|sync|dims|snarf|mltsize|falseshare|arbitration|
//	                 arbmachine|parallel] [-csv]
//
// Each experiment prints a table: figures have one row per x value and
// one column per curve, matching how the paper's plots read. See
// EXPERIMENTS.md for the paper-versus-measured record.
//
// With -bench FILE, the parallel-engine speedup measurement (sequential
// vs worker counts, events/sec, identity receipts, MVA cross-check) is
// merged into FILE under "parallel", preserving other top-level keys —
// the same merge discipline multicube-farm load -bench uses for
// BENCH_mc.json. -bench-n and -bench-requests size that run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"time"

	"multicube/internal/experiments"
	"multicube/internal/stats"
)

type renderable interface {
	Render() string
}

func main() {
	os.Exit(run())
}

// run is the real main; routing the exit status through a return keeps
// the deferred profile writers running on every path.
func run() int {
	experiment := flag.String("experiment", "all", "which experiment to run")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	jsonOut := flag.Bool("json", false, "emit JSON Lines (one object per table row; see README for the schema)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	benchFile := flag.String("bench", "", "run the parallel speedup measurement and merge it into this BENCH_sim.json under \"parallel\"")
	benchN := flag.Int("bench-n", 8, "machine edge for -bench (N×N processors)")
	benchReqs := flag.Int("bench-requests", 0, "references per processor for -bench (0 = experiment default)")
	flag.Parse()
	if *csv && *jsonOut {
		fmt.Fprintln(os.Stderr, "multicube-bench: -csv and -json are mutually exclusive")
		return 2
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "multicube-bench: -cpuprofile: %v\n", err)
			return 2
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "multicube-bench: -cpuprofile: %v\n", err)
			return 2
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "multicube-bench: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "multicube-bench: -memprofile: %v\n", err)
			}
		}()
	}

	runs := []struct {
		name string
		make func() renderable
	}{
		{"fig2", func() renderable { return experiments.Figure2().Table() }},
		{"fig2sim", func() renderable { return experiments.Figure2Sim(nil, 0).Table() }},
		{"fig3", func() renderable { return experiments.Figure3().Table() }},
		{"fig4", func() renderable { return experiments.Figure4().Table() }},
		{"tradeoff", func() renderable { return experiments.BlockTradeoff().Table() }},
		{"latency", func() renderable { return experiments.Latency().Table() }},
		{"ops", func() renderable { return experiments.Ops() }},
		{"scale", func() renderable { return experiments.Scale() }},
		{"multi", func() renderable { return experiments.MultiVsMulticube(0) }},
		{"sync", func() renderable { return experiments.Sync(0) }},
		{"dims", func() renderable { return experiments.Dimensions().Table() }},
		{"snarf", func() renderable { return experiments.Snarf(0) }},
		{"mltsize", func() renderable { return experiments.MLTSize(0) }},
		{"falseshare", func() renderable { return experiments.FalseSharing(0) }},
		{"arbitration", func() renderable { return experiments.Arbitration(0) }},
		{"arbmachine", func() renderable { return experiments.ArbitrationMachine(0) }},
		{"syncscale", func() renderable { return experiments.SyncScaling(0) }},
		{"parallel", func() renderable { return experiments.Parallel(experiments.ParallelConfig{}) }},
	}

	if *benchFile != "" {
		rep := experiments.MeasureParallel(experiments.ParallelConfig{N: *benchN, Requests: *benchReqs})
		rep.Date = time.Now().UTC().Format("2006-01-02")
		if err := mergeBench(*benchFile, rep); err != nil {
			fmt.Fprintf(os.Stderr, "multicube-bench: -bench: %v\n", err)
			return 1
		}
		b, _ := json.MarshalIndent(rep, "", " ")
		fmt.Printf("merged parallel speedup report into %s:\n%s\n", *benchFile, b)
		return 0
	}

	found := false
	for _, r := range runs {
		if *experiment != "all" && *experiment != r.name {
			continue
		}
		found = true
		out := r.make()
		if t, ok := out.(*stats.Table); ok {
			switch {
			case *csv:
				fmt.Print(t.CSV())
				fmt.Println()
				continue
			case *jsonOut:
				lines, err := t.JSONRows(r.name)
				if err != nil {
					fmt.Fprintf(os.Stderr, "multicube-bench: %s: %v\n", r.name, err)
					return 1
				}
				fmt.Print(lines)
				continue
			}
		}
		fmt.Println(out.Render())
	}
	if !found {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *experiment)
		flag.Usage()
		return 2
	}
	return 0
}

// mergeBench rewrites path with a "parallel" key holding rep, preserving
// every other top-level field (the file is shared history, not a dump).
func mergeBench(path string, rep experiments.ParallelReport) error {
	doc := map[string]json.RawMessage{}
	if b, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(b, &doc); err != nil {
			return err
		}
	}
	b, err := json.Marshal(rep)
	if err != nil {
		return err
	}
	doc["parallel"] = b
	out, err := json.MarshalIndent(doc, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
