// Command multicube-mva evaluates the analytical (mean-value) model at a
// single parameter point, or sweeps the request rate.
//
// Usage:
//
//	multicube-mva [-n 32] [-block 16] [-rate 25] [-punmod 0.8] [-pinv 0.2]
//	              [-cut-through] [-word-first] [-transfer 0] [-sweep]
package main

import (
	"flag"
	"fmt"
	"os"

	"multicube/internal/mva"
	"multicube/internal/stats"
)

func main() {
	n := flag.Int("n", 32, "processors per bus (machine is n×n)")
	block := flag.Int("block", 16, "coherency block size in bus words")
	rate := flag.Float64("rate", 25, "bus requests per ms per processor")
	punmod := flag.Float64("punmod", 0.8, "P(requested line unmodified)")
	pinv := flag.Float64("pinv", 0.2, "P(invalidating write | unmodified)")
	cut := flag.Bool("cut-through", false, "model cut-through forwarding")
	wordFirst := flag.Bool("word-first", false, "model requested-word-first")
	transfer := flag.Int("transfer", 0, "transfer block words (0 = coherency block)")
	sweep := flag.Bool("sweep", false, "sweep the request rate instead of one point")
	flag.Parse()

	p := mva.Defaults(*n)
	p.BlockWords = *block
	p.RequestRate = *rate
	p.PUnmodified = *punmod
	p.PInvalidate = *pinv
	p.CutThrough = *cut
	p.WordFirst = *wordFirst
	p.TransferWords = *transfer

	if *sweep {
		t := stats.NewTable(
			fmt.Sprintf("MVA sweep: n=%d (N=%d), block=%d", *n, *n**n, *block),
			"req/ms", "efficiency", "response ns", "row util", "col util", "mem util")
		for _, r := range mva.RateSweep() {
			p.RequestRate = r
			res, err := mva.Solve(p)
			if err != nil {
				fatal(err)
			}
			t.AddRow(r, res.Efficiency, res.Response, res.RowUtil, res.ColUtil, res.MemUtil)
		}
		fmt.Print(t.Render())
		return
	}

	res, err := mva.Solve(p)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("Wisconsin Multicube %d×%d (%d processors), %d-word blocks, %.0f req/ms\n",
		*n, *n, *n**n, *block, *rate)
	fmt.Printf("efficiency      %.4f\n", res.Efficiency)
	fmt.Printf("response        %.0f ns\n", res.Response)
	fmt.Printf("row bus util    %.3f\n", res.RowUtil)
	fmt.Printf("column bus util %.3f\n", res.ColUtil)
	fmt.Printf("memory util     %.3f\n", res.MemUtil)
	fmt.Printf("throughput      %.0f txn/s\n", res.Throughput)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "multicube-mva:", err)
	os.Exit(1)
}
