package workload

import (
	"multicube/internal/sim"
	"multicube/internal/singlebus"
)

// RunSingleBus drives the single-bus baseline with the same synthetic
// workload as Run, for the multi-versus-Multicube comparison (the paper's
// framing: multis are "limited to some tens of processors").
func RunSingleBus(m *singlebus.Machine, cfg GenConfig) Report {
	cfg.fillDefaults()
	var rep Report
	procs := m.Processors()
	const blockWords = 16 // matches the baseline's default
	bw := singlebus.Addr(blockWords)
	sharedBase := singlebus.Addr(procs) * singlebus.Addr(cfg.PrivateLines) * bw

	k := m.Kernel()
	for id := 0; id < procs; id++ {
		id := id
		rng := NewRand(cfg.Seed ^ (uint64(id)+1)*0x9e3779b97f4a7c15)
		privBase := singlebus.Addr(id) * singlebus.Addr(cfg.PrivateLines) * bw

		var loop func(remaining int)
		loop = func(remaining int) {
			if remaining == 0 {
				return
			}
			think := cfg.Think
			if cfg.Exponential {
				think = sim.Time(rng.Exp(float64(cfg.Think)))
			}
			rep.ThinkTime += think
			k.After(think, func() {
				var addr singlebus.Addr
				if rng.Float64() < cfg.PShared {
					addr = sharedBase + singlebus.Addr(rng.Intn(cfg.SharedLines))*bw + singlebus.Addr(rng.Intn(int(bw)))
				} else {
					addr = privBase + singlebus.Addr(rng.Intn(cfg.PrivateLines))*bw + singlebus.Addr(rng.Intn(int(bw)))
				}
				issued := k.Now()
				finish := func() {
					rep.StallTime += k.Now() - issued
					rep.References++
					loop(remaining - 1)
				}
				if rng.Float64() < cfg.PWrite {
					m.Processor(id).StoreAsync(addr, rng.Uint64(), func(uint64) { finish() })
				} else {
					m.Processor(id).LoadAsync(addr, func(uint64) { finish() })
				}
			})
		}
		loop(cfg.Requests)
	}
	rep.Elapsed = m.Run()
	rep.BusTransactions, _ = m.TxnStats()
	return rep
}
