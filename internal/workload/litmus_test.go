package workload

import (
	"testing"

	"multicube/internal/memmodel"
)

// TestLitmusDESSweep runs every litmus test as a timed DES stress
// program over a spread of jitter seeds, in both home-column placements,
// and requires the captured history to pass the sequential-consistency
// checker every time. Unlike the untimed mc exploration — where the
// stale-shared-mp placement genuinely violates SC — the timed machine's
// deterministic bus scheduling has produced SC histories on every seed
// tried; this test pins that observation.
func TestLitmusDESSweep(t *testing.T) {
	seeds := 4
	if !testing.Short() {
		seeds = 16
	}
	for _, l := range memmodel.LitmusTests() {
		for _, same := range []bool{false, true} {
			if same && l.Vars < 2 {
				continue
			}
			for seed := 0; seed < seeds; seed++ {
				cfg := LitmusConfig{
					Test: l.Name, Rounds: 6, Seed: uint64(seed), SameColumn: same,
				}
				rep, err := RunLitmus(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if got, want := rep.History.Len(), cfg.Rounds*l.TotalOps(); got != want {
					t.Fatalf("%s same=%v seed=%d: history has %d events, want %d",
						l.Name, same, seed, got, want)
				}
				if rep.Check.Verdict != memmodel.VerdictOK {
					t.Fatalf("%s same=%v seed=%d: verdict %v: %s\nhistory:\n%s",
						l.Name, same, seed, rep.Check.Verdict, rep.Check.Reason, rep.History)
				}
				if rep.Elapsed == 0 {
					t.Fatalf("%s same=%v seed=%d: no simulated time elapsed", l.Name, same, seed)
				}
			}
		}
	}
}

// TestLitmusUnknownTest rejects bad names and oversized thread counts.
func TestLitmusUnknownTest(t *testing.T) {
	if _, err := RunLitmus(LitmusConfig{Test: "nope"}); err == nil {
		t.Fatal("unknown test accepted")
	}
	if _, err := RunLitmus(LitmusConfig{Test: "iriw", N: 1}); err == nil {
		t.Fatal("iriw on a 1×1 machine accepted")
	}
}
