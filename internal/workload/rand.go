// Package workload drives the simulated machines: a parameterized
// synthetic reference generator (the statistical workloads the paper's
// evaluation assumes, Section 5: "the simulation must be based on
// statistical distributions of references and reference types"), plus
// reusable parallel kernels for the examples and integration tests.
package workload

import "math"

// Rand is SplitMix64: a tiny, fast, seedable PRNG. All randomness in the
// simulator flows through explicit seeds so runs are reproducible.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed.
func NewRand(seed uint64) *Rand { return &Rand{state: seed} }

// Uint64 returns the next raw value.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n). n must be positive.
func (r *Rand) Intn(n int) int { return int(r.Uint64() % uint64(n)) }

// Float64 returns a uniform float in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Exp returns an exponentially distributed value with the given mean,
// via inverse transform, truncated at 20× the mean to keep single
// outliers from dominating short runs.
func (r *Rand) Exp(mean float64) float64 {
	u := r.Float64()
	if u >= 0.999999 {
		u = 0.999999
	}
	x := -mean * math.Log(1-u)
	if x > 20*mean {
		x = 20 * mean
	}
	return x
}
