package workload

import (
	"multicube/internal/core"
	"multicube/internal/sim"
	"multicube/internal/syncprim"
)

// This file holds reusable parallel kernels — realistic programs that run
// on the simulated shared memory through the blocking Ctx API. The
// examples and integration tests build on them.

// MatMulLayout maps a square matrix multiply C = A×B onto shared memory:
// row-major matrices of Dim×Dim words at the given bases.
type MatMulLayout struct {
	Dim                 int
	ABase, BBase, CBase core.Addr
	// MACTime models the processor's multiply-accumulate cost per inner
	// product step; zero means computation is free and only memory
	// latency is simulated.
	MACTime sim.Time
}

// At returns the address of element (i, j) of a matrix at base.
func (l MatMulLayout) At(base core.Addr, i, j int) core.Addr {
	return base + core.Addr(i*l.Dim+j)
}

// SeedMatrices fills A and B with simple deterministic values:
// A[i][j] = i+1, B[i][j] = j+1, so C[i][j] = (i+1)*(j+1)*Dim.
func SeedMatrices(m *core.Machine, l MatMulLayout) {
	row := make([]uint64, l.Dim)
	for i := 0; i < l.Dim; i++ {
		for j := range row {
			row[j] = uint64(i + 1)
		}
		m.SeedMemory(l.At(l.ABase, i, 0), row)
		for j := range row {
			row[j] = uint64(j + 1)
		}
		m.SeedMemory(l.At(l.BBase, i, 0), row)
	}
}

// MatMulWorker computes the rows of C assigned to worker id out of
// workers, using ALLOCATE for the fully-overwritten output lines when
// the row length spans whole blocks (the paper's intended use of the
// allocate hint: "cases where entire blocks are to be written").
func MatMulWorker(c *core.Ctx, l MatMulLayout, id, workers int) {
	bw := c.Machine().BlockWords()
	for i := id; i < l.Dim; i += workers {
		if l.Dim%bw == 0 {
			for j := 0; j < l.Dim; j += bw {
				c.Allocate(l.At(l.CBase, i, j))
			}
		}
		for j := 0; j < l.Dim; j++ {
			var sum uint64
			for k := 0; k < l.Dim; k++ {
				sum += c.Load(l.At(l.ABase, i, k)) * c.Load(l.At(l.BBase, k, j))
				if l.MACTime > 0 {
					c.Sleep(l.MACTime)
				}
			}
			c.Store(l.At(l.CBase, i, j), sum)
		}
	}
}

// CheckMatMul verifies the product of SeedMatrices inputs.
func CheckMatMul(m *core.Machine, l MatMulLayout) (bad int) {
	for i := 0; i < l.Dim; i++ {
		for j := 0; j < l.Dim; j++ {
			want := uint64((i + 1) * (j + 1) * l.Dim)
			if got := m.ReadCoherent(l.At(l.CBase, i, j)); got != want {
				bad++
			}
		}
	}
	return bad
}

// StencilLayout is a 1-D iterative stencil (Jacobi smoothing) over Cells
// words, with a barrier between iterations — the paper's "large-scale
// simulation models" workload class.
type StencilLayout struct {
	Cells      int
	SrcBase    core.Addr
	DstBase    core.Addr
	LockAddr   core.Addr // barrier lock line
	CountAddr  core.Addr // arrival counter (same line as the lock)
	SenseAddr  core.Addr // barrier sense (its own line)
	Iterations int
}

// StencilWorker runs worker id of workers through the iterations,
// averaging each interior cell with its neighbours (integer mean), and
// swapping source and destination each round.
func StencilWorker(c *core.Ctx, l StencilLayout, id, workers int, barrier *syncprim.Barrier) {
	var s syncprim.Sense
	src, dst := l.SrcBase, l.DstBase
	for it := 0; it < l.Iterations; it++ {
		for i := 1 + id; i < l.Cells-1; i += workers {
			left := c.Load(src + core.Addr(i-1))
			mid := c.Load(src + core.Addr(i))
			right := c.Load(src + core.Addr(i+1))
			c.Store(dst+core.Addr(i), (left+mid+right)/3)
		}
		barrier.Wait(c, &s)
		src, dst = dst, src
	}
}

// WorkQueue is a shared FIFO of task ids protected by a queue lock: a
// producer/consumer structure of the kind Section 4 motivates. Layout:
// the lock line holds head, tail and capacity; slots follow.
type WorkQueue struct {
	Lock     *syncprim.QueueLock
	HeadAddr core.Addr // word on the lock line
	TailAddr core.Addr // word on the lock line
	SlotBase core.Addr
	Capacity int
}

// NewWorkQueue lays out a queue whose control words share the lock line.
func NewWorkQueue(lockLine core.Addr, slotBase core.Addr, capacity int) *WorkQueue {
	return &WorkQueue{
		Lock:     &syncprim.QueueLock{Addr: lockLine},
		HeadAddr: lockLine + 2, // words 0,1 are lock and link
		TailAddr: lockLine + 3,
		SlotBase: slotBase,
		Capacity: capacity,
	}
}

// Push appends a task, spinning while the queue is full.
func (q *WorkQueue) Push(c *core.Ctx, task uint64) {
	for {
		q.Lock.Lock(c)
		head := c.Load(q.HeadAddr)
		tail := c.Load(q.TailAddr)
		if tail-head < uint64(q.Capacity) {
			c.Store(q.SlotBase+core.Addr(tail%uint64(q.Capacity)), task)
			c.Store(q.TailAddr, tail+1)
			q.Lock.Unlock(c)
			return
		}
		q.Lock.Unlock(c)
		c.Sleep(2 * sim.Microsecond)
	}
}

// Pop removes a task; ok is false when the queue is empty.
func (q *WorkQueue) Pop(c *core.Ctx) (task uint64, ok bool) {
	q.Lock.Lock(c)
	head := c.Load(q.HeadAddr)
	tail := c.Load(q.TailAddr)
	if head == tail {
		q.Lock.Unlock(c)
		return 0, false
	}
	task = c.Load(q.SlotBase + core.Addr(head%uint64(q.Capacity)))
	c.Store(q.HeadAddr, head+1)
	q.Lock.Unlock(c)
	return task, true
}
