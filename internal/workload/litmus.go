package workload

import (
	"fmt"

	"multicube/internal/core"
	"multicube/internal/memmodel"
	"multicube/internal/sim"
	"multicube/internal/topology"
)

// LitmusConfig compiles one memmodel litmus test to a timed DES stress
// program: Rounds copies of the test run back-to-back on one machine,
// each round over fresh addresses, with seeded random think time jittering
// every operation's issue point. The whole run records through
// core.RecordingMem into a single memmodel.History, which the
// sequential-consistency checker then judges — so one run validates
// Rounds independent instances of the test under bus contention from its
// neighbours.
type LitmusConfig struct {
	// Test names a memmodel litmus test (see memmodel.LitmusTests).
	Test string
	// N is the machine's grid dimension (default 2).
	N int
	// Rounds is the number of test instances to run (default 4).
	Rounds int
	// Seed drives the jitter; identical seeds give identical runs.
	Seed uint64
	// MaxJitter bounds the uniform random delay inserted before each
	// operation (default 2µs). Zero jitter still runs; use at least a few
	// bus-occupancy times to shake out orderings.
	MaxJitter sim.Time
	// SameColumn homes every variable of a round on one memory column,
	// serializing their bus traffic (mirrors the mc litmus-*-1col
	// presets).
	SameColumn bool
	// SCNodes caps the checker's search (0 = memmodel's default).
	SCNodes int
}

func (c *LitmusConfig) fillDefaults() {
	if c.N == 0 {
		c.N = 2
	}
	if c.Rounds == 0 {
		c.Rounds = 4
	}
	if c.MaxJitter == 0 {
		c.MaxJitter = 2 * sim.Microsecond
	}
}

// LitmusReport is the outcome of one RunLitmus call.
type LitmusReport struct {
	Test    memmodel.Litmus
	History *memmodel.History
	Check   memmodel.Result
	Elapsed sim.Time
}

// litmusCoord spreads litmus threads over the grid corner-to-corner, the
// same placement the mc litmus presets use: thread p sits at row p%N,
// column (p + p/N)%N, so on a 2×2 grid the classic two-thread tests run
// diagonally and four-thread tests cover all four corners.
func litmusCoord(p, n int) topology.Coord {
	return topology.Coord{Row: p % n, Col: (p + p/n) % n}
}

// RunLitmus runs the configured litmus stress program and checks the
// captured history for sequential consistency.
func RunLitmus(cfg LitmusConfig) (LitmusReport, error) {
	cfg.fillDefaults()
	l, ok := memmodel.LitmusByName(cfg.Test)
	if !ok {
		return LitmusReport{}, fmt.Errorf("workload: unknown litmus test %q", cfg.Test)
	}
	if len(l.Procs) > cfg.N*cfg.N {
		return LitmusReport{}, fmt.Errorf("workload: litmus %s needs %d threads; %d×%d machine has %d",
			l.Name, len(l.Procs), cfg.N, cfg.N, cfg.N*cfg.N)
	}
	m := core.MustNew(core.Config{N: cfg.N})
	k := m.Kernel()
	bw := uint64(m.BlockWords())
	n := uint64(cfg.N)

	// Variable v of round r lives on its own line, placed so the home
	// column (line mod N) is v mod N — or column 0 for every variable
	// when SameColumn is set. Fresh lines per round keep rounds
	// independent in memory while they still contend on the buses.
	addrOf := func(r, v int) core.Addr {
		base := uint64(r*l.Vars+v) * n
		if !cfg.SameColumn {
			base += uint64(v) % n
		}
		return core.Addr(base * bw)
	}

	h := memmodel.NewHistory()
	for p, prog := range l.Procs {
		c := litmusCoord(p, cfg.N)
		id := c.Row*cfg.N + c.Col
		mem := core.Recorder(m, id, h)
		rng := NewRand(cfg.Seed ^ (uint64(p)+1)*0x9e3779b97f4a7c15)
		prog := prog

		// Each thread runs its program once per round, strictly in
		// order, with a random pause before every operation.
		var step func(r, i int)
		step = func(r, i int) {
			if i == len(prog) {
				r, i = r+1, 0
				if r == cfg.Rounds {
					return
				}
			}
			op, r, i := prog[i], r, i
			k.After(sim.Time(rng.Intn(int(cfg.MaxJitter)+1)), func() {
				addr := addrOf(r, op.Var)
				next := func() { step(r, i+1) }
				if op.Write {
					// Unique nonzero values per (round, thread, step):
					// rounds never share addresses, so uniqueness per
					// round is uniqueness per location.
					val := uint64(1000 + 100*p + i)
					mem.StoreAsyncObs(addr, val, func(uint64) { next() })
				} else {
					mem.LoadAsync(addr, func(uint64) { next() })
				}
			})
		}
		step(0, 0)
	}

	elapsed := m.Run()
	return LitmusReport{
		Test:    l,
		History: h,
		Check:   memmodel.Check(h, memmodel.Options{MaxNodes: cfg.SCNodes}),
		Elapsed: elapsed,
	}, nil
}
