package workload

import (
	"testing"

	"multicube/internal/core"
	"multicube/internal/sim"
	"multicube/internal/singlebus"
	"multicube/internal/syncprim"
)

func TestRandDeterministicAndUniformish(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	r := NewRand(7)
	buckets := make([]int, 10)
	for i := 0; i < 10000; i++ {
		buckets[r.Intn(10)]++
	}
	for i, n := range buckets {
		if n < 800 || n > 1200 {
			t.Errorf("bucket %d = %d, badly skewed", i, n)
		}
	}
}

func TestRandExpMean(t *testing.T) {
	r := NewRand(3)
	sum := 0.0
	const n = 20000
	for i := 0; i < n; i++ {
		sum += r.Exp(100)
	}
	mean := sum / n
	if mean < 90 || mean > 110 {
		t.Errorf("Exp mean = %f, want ~100", mean)
	}
}

func TestGeneratorRunsAndReports(t *testing.T) {
	m := core.MustNew(core.Config{N: 3, BlockWords: 8})
	rep := Run(m, GenConfig{Seed: 1, Requests: 30, Think: 5 * sim.Microsecond})
	if rep.References != 30*9 {
		t.Fatalf("references = %d, want %d", rep.References, 30*9)
	}
	if rep.Elapsed == 0 || rep.BusTransactions == 0 {
		t.Fatalf("empty report: %+v", rep)
	}
	eff := rep.Efficiency()
	if eff <= 0 || eff > 1 {
		t.Fatalf("efficiency = %f", eff)
	}
	if rep.BusRate(9) <= 0 {
		t.Fatal("zero bus rate")
	}
	for _, err := range m.CheckInvariants() {
		t.Errorf("invariant: %v", err)
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	run := func() (sim.Time, uint64) {
		m := core.MustNew(core.Config{N: 3, BlockWords: 8})
		rep := Run(m, GenConfig{Seed: 9, Requests: 25, Exponential: true})
		return rep.Elapsed, rep.BusTransactions
	}
	e1, b1 := run()
	e2, b2 := run()
	if e1 != e2 || b1 != b2 {
		t.Fatalf("nondeterministic: (%v,%d) vs (%v,%d)", e1, b1, e2, b2)
	}
}

func TestGeneratorEfficiencyFallsWithLoad(t *testing.T) {
	eff := func(think sim.Time) float64 {
		m := core.MustNew(core.Config{N: 3, BlockWords: 8})
		rep := Run(m, GenConfig{Seed: 5, Requests: 40, Think: think, PShared: 0.9, PWrite: 0.5, SharedLines: 8})
		return rep.Efficiency()
	}
	light := eff(50 * sim.Microsecond)
	heavy := eff(2 * sim.Microsecond)
	if light <= heavy {
		t.Errorf("efficiency light=%f heavy=%f; should fall with load", light, heavy)
	}
}

func TestRunSingleBusGenerator(t *testing.T) {
	m := singlebus.MustNew(singlebus.Config{Processors: 4, BlockWords: 16})
	rep := RunSingleBus(m, GenConfig{Seed: 2, Requests: 20})
	if rep.References != 80 || rep.BusTransactions == 0 {
		t.Fatalf("report: %+v", rep)
	}
	for _, err := range singlebus.CheckInvariants(m) {
		t.Errorf("invariant: %v", err)
	}
}

func TestMatMulKernel(t *testing.T) {
	m := core.MustNew(core.Config{N: 2, BlockWords: 4})
	l := MatMulLayout{Dim: 8, ABase: 0, BBase: 1024, CBase: 2048}
	SeedMatrices(m, l)
	workers := m.Processors()
	for id := 0; id < workers; id++ {
		id := id
		m.Spawn(id, func(c *core.Ctx) { MatMulWorker(c, l, id, workers) })
	}
	m.Run()
	if bad := CheckMatMul(m, l); bad != 0 {
		t.Fatalf("%d wrong elements", bad)
	}
	for _, err := range m.CheckInvariants() {
		t.Errorf("invariant: %v", err)
	}
}

func TestStencilKernelConverges(t *testing.T) {
	m := core.MustNew(core.Config{N: 2, BlockWords: 4})
	l := StencilLayout{
		Cells: 32, SrcBase: 0, DstBase: 256,
		LockAddr: 512, CountAddr: 514, SenseAddr: 576,
		Iterations: 6,
	}
	// A spike in the middle should diffuse outward.
	m.SeedMemory(l.SrcBase+16, []uint64{900})
	// Destination boundary cells mirror the source's (never written).
	barrier := &syncprim.Barrier{
		Lock:      &syncprim.QueueLock{Addr: l.LockAddr},
		CountAddr: l.CountAddr,
		SenseAddr: l.SenseAddr,
		N:         m.Processors(),
	}
	workers := m.Processors()
	for id := 0; id < workers; id++ {
		id := id
		m.Spawn(id, func(c *core.Ctx) { StencilWorker(c, l, id, workers, barrier) })
	}
	m.Run()
	// After an even number of iterations the result is back in SrcBase.
	center := m.ReadCoherent(l.SrcBase + 16)
	neighbour := m.ReadCoherent(l.SrcBase + 13)
	if center >= 900 {
		t.Errorf("spike did not diffuse: center = %d", center)
	}
	if neighbour == 0 {
		t.Error("diffusion did not spread to neighbours")
	}
	for _, err := range m.CheckInvariants() {
		t.Errorf("invariant: %v", err)
	}
}

func TestWorkQueuePushPop(t *testing.T) {
	m := core.MustNew(core.Config{N: 2, BlockWords: 8})
	q := NewWorkQueue(0, 64, 16)
	consumed := make(map[uint64]bool)
	const tasks = 40
	m.Spawn(0, func(c *core.Ctx) { // producer
		for i := uint64(1); i <= tasks; i++ {
			q.Push(c, i)
			c.Sleep(500 * sim.Nanosecond)
		}
	})
	done := 0
	for id := 1; id < 4; id++ {
		m.Spawn(id, func(c *core.Ctx) { // consumers
			idle := 0
			for done < tasks && idle < 200 {
				if task, ok := q.Pop(c); ok {
					if consumed[task] {
						t.Errorf("task %d consumed twice", task)
					}
					consumed[task] = true
					done++
					idle = 0
				} else {
					idle++
					c.Sleep(1 * sim.Microsecond)
				}
			}
		})
	}
	m.Run()
	if done != tasks {
		t.Fatalf("consumed %d tasks, want %d", done, tasks)
	}
	for _, err := range m.CheckInvariants() {
		t.Errorf("invariant: %v", err)
	}
}

func TestDescribe(t *testing.T) {
	s := GenConfig{}.Describe()
	if len(s) == 0 {
		t.Fatal("empty description")
	}
}
