package workload

import (
	"context"
	"testing"

	"multicube/internal/core"
)

// TestRunCtxCancel: a canceled context stops the generator between
// kernel batches with the partial-result marker set, and a background
// context reproduces Run exactly.
func TestRunCtxCancel(t *testing.T) {
	cfg := GenConfig{Seed: 7, Requests: 200}

	full := Run(core.MustNew(core.Config{N: 2}), cfg)
	if full.Canceled {
		t.Fatal("uncanceled run reports Canceled")
	}

	same := RunCtx(context.Background(), core.MustNew(core.Config{N: 2}), cfg, nil)
	if same != full {
		t.Fatalf("RunCtx(background) diverged from Run: %+v vs %+v", same, full)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	part := RunCtx(ctx, core.MustNew(core.Config{N: 2}), cfg, nil)
	if !part.Canceled {
		t.Fatal("pre-canceled run not marked Canceled")
	}
	if part.References >= full.References {
		t.Fatalf("canceled run completed %d references (full run: %d)", part.References, full.References)
	}
}

// TestRunCtxProgress: the hook observes monotonically nondecreasing
// counters and ends at the final totals.
func TestRunCtxProgress(t *testing.T) {
	var calls int
	var lastRefs, lastEvents uint64
	rep := RunCtx(context.Background(), core.MustNew(core.Config{N: 2}), GenConfig{Seed: 3, Requests: 50},
		func(refs, events uint64) {
			calls++
			if refs < lastRefs || events < lastEvents {
				t.Fatalf("progress went backwards: refs %d→%d events %d→%d", lastRefs, refs, lastEvents, events)
			}
			lastRefs, lastEvents = refs, events
		})
	if calls == 0 {
		t.Fatal("progress hook never fired")
	}
	if lastRefs != rep.References {
		t.Fatalf("final progress saw %d references; report has %d", lastRefs, rep.References)
	}
}
