package cache

import (
	"testing"
	"testing/quick"
)

const (
	shared   State = 2
	modified State = 3
)

func small(t *testing.T) *Cache {
	t.Helper()
	c, err := New(Config{Lines: 8, Assoc: 2, BlockWords: 4})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Lines: 8, Assoc: 2, BlockWords: 0},
		{Lines: -1, Assoc: 1, BlockWords: 4},
		{Lines: 7, Assoc: 2, BlockWords: 4},
	}
	for _, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
	good := []Config{
		{Lines: 0, BlockWords: 16},
		{Lines: 16, Assoc: 0, BlockWords: 4}, // fully associative
		{Lines: 16, Assoc: 4, BlockWords: 4},
	}
	for _, cfg := range good {
		if _, err := New(cfg); err != nil {
			t.Errorf("config %+v rejected: %v", cfg, err)
		}
	}
}

func TestInsertLookup(t *testing.T) {
	c := small(t)
	c.Insert(5, shared, []uint64{1, 2, 3, 4})
	e, ok := c.Lookup(5)
	if !ok {
		t.Fatal("line 5 missing after insert")
	}
	if e.State != shared {
		t.Errorf("state = %d, want shared", e.State)
	}
	if e.Data[2] != 3 {
		t.Errorf("data[2] = %d, want 3", e.Data[2])
	}
	if _, ok := c.Lookup(6); ok {
		t.Error("phantom hit for line 6")
	}
}

func TestInsertShortDataZeroFills(t *testing.T) {
	c := small(t)
	c.Insert(1, shared, []uint64{9})
	e, _ := c.Lookup(1)
	if e.Data[0] != 9 || e.Data[1] != 0 || e.Data[3] != 0 {
		t.Errorf("data = %v, want [9 0 0 0]", e.Data)
	}
	c.Insert(2, shared, nil)
	e, _ = c.Lookup(2)
	for i, w := range e.Data {
		if w != 0 {
			t.Errorf("nil-data insert left data[%d] = %d", i, w)
		}
	}
}

func TestReinsertOverwritesInPlace(t *testing.T) {
	c := small(t)
	c.Insert(5, shared, []uint64{1, 1, 1, 1})
	v := c.Insert(5, modified, []uint64{2, 2, 2, 2})
	if v.Displaced {
		t.Error("re-insert displaced a victim")
	}
	e, _ := c.Lookup(5)
	if e.State != modified || e.Data[0] != 2 {
		t.Errorf("re-insert did not overwrite: state=%d data=%v", e.State, e.Data)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
}

func TestLRUEviction(t *testing.T) {
	// Assoc 2: lines 0, 8, 16 map to the same set (8 lines / 2 ways = 4 sets).
	c := small(t)
	c.Insert(0, shared, nil)
	c.Insert(8, shared, nil)
	c.Access(0) // make 8 the LRU
	v := c.Insert(16, shared, nil)
	if !v.Displaced || v.Line != 8 {
		t.Fatalf("victim = %+v, want line 8", v)
	}
	if _, ok := c.Lookup(0); !ok {
		t.Error("recently used line 0 evicted")
	}
}

func TestInvalidSlotPreferredOverEviction(t *testing.T) {
	c := small(t)
	c.Insert(0, shared, nil)
	c.Insert(8, shared, nil)
	c.Invalidate(8)
	v := c.Insert(16, shared, nil)
	if !v.Displaced || v.Line != 8 || v.State != Invalid {
		t.Fatalf("victim = %+v, want retained-tag line 8", v)
	}
	if _, ok := c.Lookup(0); !ok {
		t.Error("valid line 0 evicted while invalid slot existed")
	}
}

func TestRetainedTagAfterInvalidate(t *testing.T) {
	c := small(t)
	c.Insert(3, modified, []uint64{7, 7, 7, 7})
	if !c.Invalidate(3) {
		t.Fatal("Invalidate returned false for resident line")
	}
	if c.Invalidate(3) {
		t.Error("second Invalidate returned true")
	}
	if _, ok := c.Lookup(3); ok {
		t.Error("invalid line still hits")
	}
	e := c.Probe(3)
	if e == nil {
		t.Fatal("retained tag lost after invalidate")
	}
	if e.State != Invalid {
		t.Errorf("probe state = %d, want Invalid", e.State)
	}
}

func TestDrop(t *testing.T) {
	c := small(t)
	c.Insert(3, shared, nil)
	c.Drop(3)
	if c.Probe(3) != nil {
		t.Error("Drop left a tag behind")
	}
	c.Drop(99) // dropping an absent line is a no-op
}

func TestSelectVictim(t *testing.T) {
	c := small(t)
	if c.SelectVictim(0) != nil {
		t.Error("victim reported for empty set")
	}
	c.Insert(0, shared, nil)
	c.Insert(8, modified, nil)
	v := c.SelectVictim(16)
	if v == nil {
		t.Fatal("no victim for full set")
	}
	if v.Line != 0 {
		t.Errorf("victim = line %d, want LRU line 0", v.Line)
	}
	// A line already present needs no victim.
	if c.SelectVictim(8) != nil {
		t.Error("victim reported for resident line")
	}
	c.Invalidate(0)
	if c.SelectVictim(16) != nil {
		t.Error("victim reported while invalid slot available")
	}
}

func TestUnboundedNeverEvicts(t *testing.T) {
	c := MustNew(Config{BlockWords: 2})
	for i := Line(0); i < 10000; i++ {
		if v := c.Insert(i, shared, nil); v.Displaced {
			t.Fatalf("unbounded cache displaced line %d", v.Line)
		}
	}
	if c.Len() != 10000 {
		t.Fatalf("Len = %d, want 10000", c.Len())
	}
	if c.SelectVictim(99999) != nil {
		t.Error("unbounded cache proposed a victim")
	}
}

func TestStatsCounting(t *testing.T) {
	c := small(t)
	c.Insert(1, shared, nil)
	c.Access(1)
	c.Access(2)
	c.Access(1)
	s := c.Stats()
	if s.Hits != 2 || s.Misses != 1 || s.Inserts != 1 {
		t.Errorf("stats = %+v", s)
	}
	c.Insert(9, shared, nil)
	c.Insert(17, shared, nil) // same set as 1 and 9: evicts a valid line
	if c.Stats().Evictions != 1 {
		t.Errorf("evictions = %d, want 1", c.Stats().Evictions)
	}
}

func TestForEachOrderedAndComplete(t *testing.T) {
	c := MustNew(Config{Lines: 16, Assoc: 4, BlockWords: 1})
	for _, l := range []Line{9, 3, 12, 1} {
		c.Insert(l, shared, nil)
	}
	c.Insert(5, shared, nil)
	c.Invalidate(5)
	var got []Line
	c.ForEach(func(e *Entry) { got = append(got, e.Line) })
	want := []Line{1, 3, 9, 12}
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach visited %v, want %v", got, want)
		}
	}
}

func TestPropertyInsertThenLookup(t *testing.T) {
	// Any inserted line is immediately visible with its state and data,
	// in bounded and unbounded caches alike.
	for _, cfg := range []Config{{Lines: 64, Assoc: 4, BlockWords: 4}, {BlockWords: 4}} {
		cfg := cfg
		c := MustNew(cfg)
		f := func(raw uint32, w uint64) bool {
			line := Line(raw % 4096)
			c.Insert(line, modified, []uint64{w})
			e, ok := c.Lookup(line)
			return ok && e.State == modified && e.Data[0] == w
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Fatalf("config %+v: %v", cfg, err)
		}
	}
}

func TestPropertyBoundedCapacityRespected(t *testing.T) {
	c := MustNew(Config{Lines: 32, Assoc: 2, BlockWords: 1})
	f := func(raws []uint16) bool {
		for _, r := range raws {
			c.Insert(Line(r), shared, nil)
		}
		return c.Len() <= 32
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPinnedEntriesSkippedByVictimSelection(t *testing.T) {
	c := small(t) // 4 sets × 2 ways
	c.Insert(0, shared, nil)
	c.Insert(8, shared, nil)
	e, _ := c.Lookup(0)
	e.Pinned = true
	c.Access(8) // make 0 the LRU — but it is pinned
	if v := c.SelectVictim(16); v == nil || v.Line != 8 {
		t.Fatalf("victim = %+v, want unpinned line 8", v)
	}
	v := c.Insert(16, shared, nil)
	if !v.Displaced || v.Line != 8 {
		t.Fatalf("Insert displaced %+v, want line 8", v)
	}
	if _, ok := c.Lookup(0); !ok {
		t.Fatal("pinned line evicted")
	}
}

func TestAllWaysPinnedPanics(t *testing.T) {
	c := small(t)
	c.Insert(0, shared, nil)
	c.Insert(8, shared, nil)
	for _, l := range []Line{0, 8} {
		e, _ := c.Lookup(l)
		e.Pinned = true
	}
	defer func() {
		if recover() == nil {
			t.Error("inserting into a fully pinned set did not panic")
		}
	}()
	c.Insert(16, shared, nil)
}

func TestPinnedInvalidEntryNotReused(t *testing.T) {
	c := small(t)
	c.Insert(0, shared, nil)
	c.Invalidate(0)
	e := c.Probe(0)
	e.Pinned = true // a reserved SYNC placeholder with a retained tag
	c.Insert(8, shared, nil)
	v := c.Insert(16, shared, nil)
	if v.Displaced && v.Line == 0 {
		t.Fatal("pinned retained tag displaced")
	}
	if c.Probe(0) == nil {
		t.Fatal("pinned placeholder lost")
	}
}
