package cache

// ProcessorCache is the first-level (SRAM) cache: a small, fast cache in
// front of the snooping cache, maintained write-through so that "the
// processor cache is always a strict subset of the snooping cache"
// (Section 2, citing Baer & Wang). It holds no coherence state of its own:
// a resident line is readable, and every write is propagated to the
// snooping cache by the controller. The controller invalidates the
// processor cache whenever the corresponding snooping-cache line is
// invalidated or displaced, preserving the subset property.
type ProcessorCache struct {
	store *Cache
}

// present is the only non-Invalid state an L1 line uses.
const present State = 1

// NewProcessorCache returns an L1 with the given capacity (lines must be
// nonzero: the processor cache is small by design) and associativity.
func NewProcessorCache(lines, assoc, blockWords int) (*ProcessorCache, error) {
	s, err := New(Config{Lines: lines, Assoc: assoc, BlockWords: blockWords})
	if err != nil {
		return nil, err
	}
	return &ProcessorCache{store: s}, nil
}

// Read returns the word at offset within line and true on a hit.
func (p *ProcessorCache) Read(line Line, offset int) (uint64, bool) {
	e, ok := p.store.Access(line)
	if !ok {
		return 0, false
	}
	return e.Data[offset], true
}

// Contains reports residency without touching hit/miss counters.
func (p *ProcessorCache) Contains(line Line) bool {
	_, ok := p.store.Lookup(line)
	return ok
}

// Fill installs a line after the snooping cache satisfied a miss. The
// returned victim is informational; a clean write-through victim needs no
// action.
func (p *ProcessorCache) Fill(line Line, data []uint64) Victim {
	return p.store.Insert(line, present, data)
}

// WriteThrough updates the word in place when the line is resident. The
// write always also goes to the snooping cache (the controller handles
// that); this call only keeps the L1 copy coherent with it.
func (p *ProcessorCache) WriteThrough(line Line, offset int, value uint64) {
	if e, ok := p.store.Lookup(line); ok {
		e.Data[offset] = value
		p.store.Touch(line)
	}
}

// Invalidate removes line, typically because the snooping cache lost it.
func (p *ProcessorCache) Invalidate(line Line) bool {
	return p.store.Invalidate(line)
}

// Lines returns the resident lines in ascending order; tests use this to
// check the subset property against the snooping cache.
func (p *ProcessorCache) Lines() []Line {
	var out []Line
	p.store.ForEach(func(e *Entry) { out = append(out, e.Line) })
	return out
}

// Stats exposes the underlying hit/miss counters.
func (p *ProcessorCache) Stats() Stats { return p.store.Stats() }
