// Package cache implements the cache stores of the Wisconsin Multicube
// memory hierarchy: the small write-through processor cache (SRAM) and the
// very large snooping cache (DRAM) that the coherence protocol operates on.
//
// The store is policy-free: it tracks tags, per-line state, data, and LRU
// order, but the meaning of states and all coherence actions live in the
// protocol packages. State zero (Invalid) is universal; invalid entries
// retain their tags so a controller can recognize a recently-held line as
// it passes on a bus and "snarf" it (Section 3).
//
// A Config with Lines == 0 produces an unbounded cache (no capacity
// evictions), which models the paper's assumption that the snooping cache
// is "comparable to main memory on most current machines" and private-data
// misses are negligible.
// The package participates in the explorer's determinism contract: no
// wall clock, no map-order dependence, no scheduling outside the chooser
// seam. multicube-vet enforces this (see internal/analysis).
//
//multicube:deterministic
package cache

import (
	"fmt"
)

// State is a per-line coherence state. The store interprets only Invalid
// (the zero value); protocols define and manage the rest.
type State uint8

// Invalid is the universal empty state. An invalid entry may still carry
// its tag (a retained tag) until the slot is reused.
const Invalid State = 0

// Line addresses a coherency block by index (the address divided by the
// block size in words).
type Line uint64

// Entry is one cache line. Callers may mutate State, Data and Pinned in
// place; the store owns the tag and the replacement metadata.
type Entry struct {
	Line  Line
	State State
	Data  []uint64
	// Pinned excludes the entry from victim selection. The SYNC queue
	// protocol pins lines reserved for a lock handoff: purging one would
	// break the distributed queue (Section 4's degenerate path).
	Pinned bool

	lastUse uint64
	valid   bool // slot holds a (possibly Invalid) tagged line
}

// Config sizes a cache.
type Config struct {
	// Lines is the total line capacity. Zero means unbounded.
	Lines int
	// Assoc is the set associativity. Ignored when Lines is zero; a value
	// of zero with nonzero Lines means fully associative.
	Assoc int
	// BlockWords is the coherency-block size in bus words. Entries are
	// allocated with this many data words.
	BlockWords int
}

func (c Config) validate() error {
	if c.BlockWords < 1 {
		return fmt.Errorf("cache: block size %d words, need at least 1", c.BlockWords)
	}
	if c.Lines < 0 {
		return fmt.Errorf("cache: negative line count %d", c.Lines)
	}
	if c.Lines > 0 {
		assoc := c.Assoc
		if assoc == 0 {
			assoc = c.Lines
		}
		if assoc < 1 || c.Lines%assoc != 0 {
			return fmt.Errorf("cache: %d lines not divisible by associativity %d", c.Lines, assoc)
		}
	}
	return nil
}

// Stats counts cache events. Hits and misses are recorded by Access;
// callers that use Lookup directly maintain their own counts.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Inserts   uint64
	Evictions uint64 // valid entries displaced by Insert
	Snarfs    uint64 // recorded by MarkSnarf
}

// Cache is a set-associative (or unbounded) line store.
type Cache struct {
	cfg   Config
	sets  [][]Entry // bounded mode
	table map[Line]*Entry
	clock uint64
	stats Stats

	// scratch buffers reused by ForEach, which fingerprinting and
	// invariant checkers call on every model-checker step.
	lineScratch []Line
	refScratch  []entryRef
}

// entryRef pairs a resident line with its entry for ForEach's ordered
// walk.
type entryRef struct {
	line Line
	e    *Entry
}

// New returns an empty cache.
func New(cfg Config) (*Cache, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	c := &Cache{cfg: cfg, table: make(map[Line]*Entry)}
	if cfg.Lines > 0 {
		assoc := cfg.Assoc
		if assoc == 0 {
			assoc = cfg.Lines
		}
		nsets := cfg.Lines / assoc
		c.sets = make([][]Entry, nsets)
		for i := range c.sets {
			c.sets[i] = make([]Entry, assoc)
		}
	}
	return c, nil
}

// MustNew is New but panics on error.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the configuration the cache was built with.
func (c *Cache) Config() Config { return c.cfg }

// BlockWords returns the coherency-block size in words.
func (c *Cache) BlockWords() int { return c.cfg.BlockWords }

// Stats returns a snapshot of the event counters.
func (c *Cache) Stats() Stats { return c.stats }

func (c *Cache) bounded() bool { return c.cfg.Lines > 0 }

func (c *Cache) setOf(line Line) []Entry {
	return c.sets[uint64(line)%uint64(len(c.sets))]
}

// Probe returns the entry holding line even if its state is Invalid (a
// retained tag), or nil when the line is not present at all.
func (c *Cache) Probe(line Line) *Entry {
	if !c.bounded() {
		return c.table[line]
	}
	set := c.setOf(line)
	for i := range set {
		if set[i].valid && set[i].Line == line {
			return &set[i]
		}
	}
	return nil
}

// Lookup returns the entry for line when present in a non-Invalid state.
// It does not update LRU order; use Access for demand references.
func (c *Cache) Lookup(line Line) (*Entry, bool) {
	e := c.Probe(line)
	if e == nil || e.State == Invalid {
		return nil, false
	}
	return e, true
}

// Access is Lookup plus LRU touch and hit/miss accounting — a demand
// reference from the processor side.
func (c *Cache) Access(line Line) (*Entry, bool) {
	e, ok := c.Lookup(line)
	if ok {
		c.clock++
		e.lastUse = c.clock
		c.stats.Hits++
		return e, true
	}
	c.stats.Misses++
	return nil, false
}

// Touch refreshes the replacement age of line if present.
func (c *Cache) Touch(line Line) {
	if e := c.Probe(line); e != nil {
		c.clock++
		e.lastUse = c.clock
	}
}

// Victim describes an entry displaced by Insert.
type Victim struct {
	Line  Line
	State State
	Data  []uint64
	// Displaced is true when a tagged entry was evicted (its state may be
	// Invalid if only a retained tag was displaced).
	Displaced bool
}

// Insert places line into the cache in the given state, copying data (which
// may be nil to allocate a zeroed block, or shorter than a block to fill a
// prefix). It returns the victim that was displaced, if any. Inserting a
// line that is already present overwrites its state and data in place and
// displaces nothing.
func (c *Cache) Insert(line Line, state State, data []uint64) Victim {
	c.stats.Inserts++
	c.clock++
	if e := c.Probe(line); e != nil {
		e.State = state
		e.lastUse = c.clock
		fillBlock(e.Data, data)
		return Victim{}
	}
	if !c.bounded() {
		e := &Entry{Line: line, State: state, Data: make([]uint64, c.cfg.BlockWords), lastUse: c.clock, valid: true}
		fillBlock(e.Data, data)
		c.table[line] = e
		return Victim{}
	}
	set := c.setOf(line)
	slot := -1
	// Prefer an untagged slot, then an Invalid (retained-tag) slot, then
	// the least recently used.
	for i := range set {
		if !set[i].valid {
			slot = i
			break
		}
	}
	if slot < 0 {
		oldest := uint64(1<<63 - 1)
		for i := range set {
			if set[i].State == Invalid && !set[i].Pinned && set[i].lastUse < oldest {
				slot, oldest = i, set[i].lastUse
			}
		}
	}
	if slot < 0 {
		oldest := uint64(1<<63 - 1)
		for i := range set {
			if !set[i].Pinned && set[i].lastUse < oldest {
				slot, oldest = i, set[i].lastUse
			}
		}
	}
	if slot < 0 {
		// Every way is pinned: the configuration is too small for the
		// number of concurrently reserved lines. This is a modeling
		// error, not a runtime condition.
		panic(fmt.Sprintf("cache: all %d ways pinned in set of line %d", len(set), line))
	}
	var v Victim
	if set[slot].valid {
		v = Victim{Line: set[slot].Line, State: set[slot].State, Data: set[slot].Data, Displaced: true}
		if v.State != Invalid {
			c.stats.Evictions++
		}
	}
	set[slot] = Entry{Line: line, State: state, Data: make([]uint64, c.cfg.BlockWords), lastUse: c.clock, valid: true}
	fillBlock(set[slot].Data, data)
	return v
}

// SelectVictim returns the entry that Insert would displace for line, or
// nil when a free slot exists (or the cache is unbounded or the line is
// already present). The protocol's transaction-initiation procedures use
// this to write back a modified victim before issuing the request.
func (c *Cache) SelectVictim(line Line) *Entry {
	if !c.bounded() || c.Probe(line) != nil {
		return nil
	}
	set := c.setOf(line)
	for i := range set {
		if !set[i].valid || (set[i].State == Invalid && !set[i].Pinned) {
			return nil
		}
	}
	slot := -1
	for i := range set {
		if set[i].Pinned {
			continue
		}
		if slot < 0 || set[i].lastUse < set[slot].lastUse {
			slot = i
		}
	}
	if slot < 0 {
		panic(fmt.Sprintf("cache: all %d ways pinned in set of line %d", len(set), line))
	}
	return &set[slot]
}

// Invalidate marks line Invalid, retaining its tag and clearing any pin
// (only resident lines may be pinned). It reports whether the line was
// present in a non-Invalid state.
func (c *Cache) Invalidate(line Line) bool {
	e := c.Probe(line)
	if e == nil || e.State == Invalid {
		return false
	}
	e.State = Invalid
	e.Pinned = false
	return true
}

// Drop removes line entirely, including a retained tag.
func (c *Cache) Drop(line Line) {
	if !c.bounded() {
		delete(c.table, line)
		return
	}
	set := c.setOf(line)
	for i := range set {
		if set[i].valid && set[i].Line == line {
			set[i] = Entry{}
			return
		}
	}
}

// MarkSnarf records that a retained-tag entry was refreshed from data
// passing on a bus.
func (c *Cache) MarkSnarf() { c.stats.Snarfs++ }

// Len reports the number of non-Invalid lines resident.
func (c *Cache) Len() int {
	n := 0
	c.ForEach(func(e *Entry) { n++ })
	return n
}

// ForEach visits every non-Invalid entry in ascending line order. The
// deterministic order keeps whole-machine runs reproducible even when
// callers mutate state during the walk.
func (c *Cache) ForEach(fn func(e *Entry)) {
	if !c.bounded() {
		lines := c.lineScratch[:0]
		//multicube:detrange-ok keys are insertion-sorted below before any visit
		for l, e := range c.table {
			if e.State != Invalid {
				lines = append(lines, l)
			}
		}
		// Insertion sort: residency is small, and sort.Slice would box
		// the slice and allocate on every call.
		for i := 1; i < len(lines); i++ {
			l := lines[i]
			j := i
			for j > 0 && lines[j-1] > l {
				lines[j] = lines[j-1]
				j--
			}
			lines[j] = l
		}
		c.lineScratch = lines
		for _, l := range lines {
			if e := c.table[l]; e != nil && e.State != Invalid {
				fn(e)
			}
		}
		return
	}
	refs := c.refScratch[:0]
	for s := range c.sets {
		set := c.sets[s]
		for i := range set {
			if set[i].valid && set[i].State != Invalid {
				refs = append(refs, entryRef{set[i].Line, &set[i]})
			}
		}
	}
	for i := 1; i < len(refs); i++ {
		r := refs[i]
		j := i
		for j > 0 && refs[j-1].line > r.line {
			refs[j] = refs[j-1]
			j--
		}
		refs[j] = r
	}
	c.refScratch = refs
	for _, r := range refs {
		fn(r.e)
	}
}

func fillBlock(dst, src []uint64) {
	for i := range dst {
		dst[i] = 0
	}
	copy(dst, src)
}
