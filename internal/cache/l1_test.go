package cache

import "testing"

func newL1(t *testing.T) *ProcessorCache {
	t.Helper()
	p, err := NewProcessorCache(4, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestL1Validation(t *testing.T) {
	if _, err := NewProcessorCache(4, 2, 0); err == nil {
		t.Error("zero block size accepted")
	}
	if _, err := NewProcessorCache(5, 2, 2); err == nil {
		t.Error("non-divisible capacity accepted")
	}
}

func TestL1FillAndRead(t *testing.T) {
	p := newL1(t)
	if _, ok := p.Read(1, 0); ok {
		t.Fatal("hit in empty L1")
	}
	p.Fill(1, []uint64{10, 20})
	v, ok := p.Read(1, 1)
	if !ok || v != 20 {
		t.Fatalf("Read = (%d,%v), want (20,true)", v, ok)
	}
	if !p.Contains(1) {
		t.Error("Contains(1) = false")
	}
}

func TestL1WriteThroughUpdatesResidentOnly(t *testing.T) {
	p := newL1(t)
	p.Fill(1, []uint64{10, 20})
	p.WriteThrough(1, 0, 99)
	if v, _ := p.Read(1, 0); v != 99 {
		t.Errorf("resident write-through: read %d, want 99", v)
	}
	p.WriteThrough(7, 0, 5) // absent line: no allocate on write
	if p.Contains(7) {
		t.Error("write-through allocated an absent line")
	}
}

func TestL1Invalidate(t *testing.T) {
	p := newL1(t)
	p.Fill(3, []uint64{1, 2})
	if !p.Invalidate(3) {
		t.Fatal("Invalidate returned false")
	}
	if p.Contains(3) {
		t.Error("line resident after invalidate")
	}
	if p.Invalidate(3) {
		t.Error("second invalidate returned true")
	}
}

func TestL1CapacityAndLines(t *testing.T) {
	p := newL1(t)
	for l := Line(0); l < 10; l++ {
		p.Fill(l, nil)
	}
	lines := p.Lines()
	if len(lines) > 4 {
		t.Fatalf("L1 holds %d lines, capacity 4", len(lines))
	}
	for i := 1; i < len(lines); i++ {
		if lines[i-1] >= lines[i] {
			t.Fatalf("Lines() not sorted: %v", lines)
		}
	}
	s := p.Stats()
	if s.Inserts != 10 {
		t.Errorf("inserts = %d, want 10", s.Inserts)
	}
}
