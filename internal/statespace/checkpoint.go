package statespace

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Checkpoints snapshot one exploration at a frontier boundary: every
// shard flushed to immutable runs, the DFS frontier serialized, and a
// manifest naming both with their checksums, renamed into place last so
// the newest complete checkpoint is always the one a resume sees. A
// crash between any two steps leaves either the previous manifest or the
// new one — never a torn state — and orphaned files from the loser are
// swept on the next checkpoint or resume.
//
// Nothing in a checkpoint derives from the wall clock: files are named
// by a store-local sequence number and the manifest carries only
// search-state counters, which is what makes a resumed run's verdict,
// state count, and counterexample byte-identical to an uninterrupted
// one.

const (
	manifestName   = "MANIFEST.json"
	manifestSchema = 1
	frontierSuffix = ".ssf"
	frontierMagic  = 0x4d43_5353_4652_3031 // "MCSSFR01" read as a LE word
)

// ErrNoCheckpoint reports that the checkpoint directory holds no
// manifest (nothing to resume; start fresh).
var ErrNoCheckpoint = errors.New("statespace: no checkpoint")

// ErrCorrupt reports a manifest, frontier, or run that fails validation;
// callers are expected to fall back to a fresh exploration.
var ErrCorrupt = errors.New("statespace: corrupt checkpoint")

// ErrMismatch reports a well-formed checkpoint for a different scenario
// or different exploration options.
var ErrMismatch = errors.New("statespace: checkpoint does not match this exploration")

func corrupt(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// Meta is the resumable search state beyond the visited table itself.
// The counters map is caller-defined (the explorer stores its run and
// fingerprint statistics); JSON renders it with sorted keys, keeping the
// manifest bytes deterministic.
type Meta struct {
	// ScenarioHash and OptionsHash pin the checkpoint to one exploration;
	// Resume refuses a mismatch rather than silently mixing state spaces.
	ScenarioHash string            `json:"scenario_hash"`
	OptionsHash  string            `json:"options_hash"`
	Depth        int               `json:"depth"`
	Counters     map[string]uint64 `json:"counters,omitempty"`
}

// FrontierItem is one pending DFS work item in serialized form: the
// choice prefix, the sleep set activating after its replay (as the
// transition fingerprints internal/mc reconstructs), and the number of
// already-processed tracked states to skip (distributed handoffs).
type FrontierItem struct {
	Prefix []int
	Sleep  []uint64
	Skip   int
}

type manifest struct {
	Schema      int    `json:"schema"`
	Seq         uint64 `json:"seq"`
	Meta        Meta   `json:"meta"`
	States      int64  `json:"states"`
	Spills      int64  `json:"spills"`
	Frontier    string `json:"frontier"`
	FrontierSum string `json:"frontier_sum"`
	// Shards lists every shard with on-disk runs, oldest run first
	// (lookup order is newest-wins).
	Shards []manifestShard `json:"shards,omitempty"`
}

type manifestShard struct {
	Shard int           `json:"shard"`
	Runs  []manifestRun `json:"runs"`
}

type manifestRun struct {
	File  string `json:"file"`
	Sum   string `json:"sum"`
	Count int64  `json:"count"`
}

// WriteCheckpoint atomically persists the store plus the given frontier
// and metadata. The caller must be quiescent (the sequential explorer
// checkpoints only between runs).
func (s *Store) WriteCheckpoint(meta Meta, frontier []FrontierItem) error {
	if s.cfg.CheckpointDir == "" || s.cfg.Dir == "" {
		return errors.New("statespace: checkpointing requires spill and checkpoint directories")
	}
	// Flush every dirty shard so the run stacks alone reproduce the
	// table; clean shards (gen unmoved since their last spill) keep their
	// existing runs.
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		dirty := len(sh.hot) > 0
		sh.mu.Unlock()
		if dirty {
			if err := s.spillShard(i); err != nil {
				return err
			}
		}
	}
	seq := s.seq.Add(1)
	frontierFile := fmt.Sprintf("frontier-%06d%s", seq, frontierSuffix)
	fsum, err := writeFrontier(filepath.Join(s.cfg.CheckpointDir, frontierFile), frontier)
	if err != nil {
		return err
	}
	m := manifest{
		Schema:      manifestSchema,
		Seq:         seq,
		Meta:        meta,
		States:      s.count.Load(),
		Spills:      s.spills.Load(),
		Frontier:    frontierFile,
		FrontierSum: fmt.Sprintf("%016x", fsum),
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		if len(sh.runs) > 0 {
			ms := manifestShard{Shard: i}
			for _, r := range sh.runs {
				ms.Runs = append(ms.Runs, manifestRun{
					File:  filepath.Base(r.path),
					Sum:   fmt.Sprintf("%016x", r.sum),
					Count: r.count,
				})
			}
			m.Shards = append(m.Shards, ms)
		}
		sh.mu.Unlock()
	}
	data, err := json.MarshalIndent(&m, "", " ")
	if err != nil {
		return fmt.Errorf("statespace: manifest: %w", err)
	}
	path := filepath.Join(s.cfg.CheckpointDir, manifestName)
	tmp, err := os.CreateTemp(s.cfg.CheckpointDir, "manifest.tmp*")
	if err != nil {
		return fmt.Errorf("statespace: manifest: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("statespace: manifest: %w", err)
	}
	// Flush to stable storage before the rename publishes the name: an
	// unsynced rename can surface a complete-looking manifest with torn
	// contents after a crash, and resume trusts whatever validates.
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("statespace: manifest: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("statespace: manifest: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("statespace: manifest: %w", err)
	}
	keep := make(map[string]bool)
	keep[m.Frontier] = true
	for _, ms := range m.Shards {
		for _, r := range ms.Runs {
			keep[r.File] = true
		}
	}
	// The renamed manifest is now the one a resume sees: its files are
	// the new pinned set, and everything else — including runs a
	// compaction retired but could not unlink while the previous
	// manifest named them — is garbage.
	s.setPinned(keep)
	return s.gc(keep)
}

// gc removes run and frontier files the manifest no longer references
// (compacted inputs, superseded frontiers). Safe after the rename: the
// durable manifest names only survivors.
func (s *Store) gc(keep map[string]bool) error {
	for _, dir := range []string{s.cfg.Dir, s.cfg.CheckpointDir} {
		ents, err := os.ReadDir(dir)
		if err != nil {
			return fmt.Errorf("statespace: gc: %w", err)
		}
		for _, e := range ents {
			name := e.Name()
			if e.IsDir() || keep[name] {
				continue
			}
			if strings.HasSuffix(name, runSuffix) || strings.HasSuffix(name, frontierSuffix) {
				//multicube:atomicwrite-ok manifest-pinned: keep holds every file the renamed manifest references
				if err := os.Remove(filepath.Join(dir, name)); err != nil {
					return fmt.Errorf("statespace: gc: %w", err)
				}
			}
		}
	}
	return nil
}

// Resume reopens a checkpointed store. The scenario and options hashes
// must match the manifest's; every run and the frontier must validate.
// On success the returned store serves Visit from the checkpoint's runs
// and the frontier items reconstruct the DFS stack.
func Resume(cfg Config, scenarioHash, optionsHash string) (*Store, Meta, []FrontierItem, error) {
	if cfg.CheckpointDir == "" || cfg.Dir == "" {
		return nil, Meta{}, nil, errors.New("statespace: resume requires spill and checkpoint directories")
	}
	data, err := os.ReadFile(filepath.Join(cfg.CheckpointDir, manifestName))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, Meta{}, nil, ErrNoCheckpoint
		}
		return nil, Meta{}, nil, err
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, Meta{}, nil, corrupt("manifest: %v", err)
	}
	if m.Schema != manifestSchema {
		return nil, Meta{}, nil, corrupt("manifest schema %d, want %d", m.Schema, manifestSchema)
	}
	if m.Meta.ScenarioHash != scenarioHash || m.Meta.OptionsHash != optionsHash {
		return nil, Meta{}, nil, fmt.Errorf("%w: checkpoint is for scenario %s options %s",
			ErrMismatch, m.Meta.ScenarioHash, m.Meta.OptionsHash)
	}
	s := &Store{cfg: cfg}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.gen++
		sh.hot = make(map[uint64][]uint64)
	}
	fail := func(err error) (*Store, Meta, []FrontierItem, error) {
		s.Close()
		return nil, Meta{}, nil, err
	}
	for _, ms := range m.Shards {
		if ms.Shard < 0 || ms.Shard >= numShards {
			return fail(corrupt("manifest names shard %d", ms.Shard))
		}
		sh := &s.shards[ms.Shard]
		for _, mr := range ms.Runs {
			r, err := openRun(filepath.Join(cfg.Dir, mr.File), ms.Shard)
			if err != nil {
				return fail(err)
			}
			if fmt.Sprintf("%016x", r.sum) != mr.Sum || r.count != mr.Count {
				r.close()
				return fail(corrupt("run %s does not match its manifest entry", mr.File))
			}
			sh.runs = append(sh.runs, r)
			s.diskBytes.Add(r.size)
		}
		sh.spilledGen = sh.gen
	}
	frontier, err := readFrontier(filepath.Join(cfg.CheckpointDir, m.Frontier), m.FrontierSum)
	if err != nil {
		return fail(err)
	}
	s.count.Store(m.States)
	s.spills.Store(m.Spills)
	s.seq.Store(m.Seq)
	// The adopted manifest stays the resume point until this process
	// writes its own checkpoint; its files must survive compaction.
	keep := map[string]bool{m.Frontier: true}
	for _, ms := range m.Shards {
		for _, r := range ms.Runs {
			keep[r.File] = true
		}
	}
	s.setPinned(keep)
	return s, m.Meta, frontier, nil
}

// Clear removes every statespace file under the configured directories —
// the recovery path once Resume reports corruption, before starting
// fresh.
func Clear(cfg Config) error {
	for _, dir := range []string{cfg.Dir, cfg.CheckpointDir} {
		if dir == "" {
			continue
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("statespace: clear: %w", err)
		}
		if err := sweepStale(dir); err != nil {
			return err
		}
	}
	return nil
}

// writeFrontier persists the DFS stack: magic, item count, then each
// item's prefix, sleep set, and skip count, with an FNV trailer.
// The stack order is preserved exactly — resume must pop in the same
// order the interrupted pass would have.
func writeFrontier(path string, items []FrontierItem) (uint64, error) {
	buf := make([]byte, 0, 64+32*len(items))
	put := func(v uint64) { buf = binary.LittleEndian.AppendUint64(buf, v) }
	put(frontierMagic)
	put(uint64(len(items)))
	for _, it := range items {
		put(uint64(len(it.Prefix)))
		for _, p := range it.Prefix {
			put(uint64(int64(p)))
		}
		put(uint64(len(it.Sleep)))
		for _, f := range it.Sleep {
			put(f)
		}
		put(uint64(int64(it.Skip)))
	}
	sum := fnvBytes(buf)
	buf = binary.LittleEndian.AppendUint64(buf, sum)
	tmp, err := os.CreateTemp(filepath.Dir(path), "frontier.tmp*")
	if err != nil {
		return 0, fmt.Errorf("statespace: frontier: %w", err)
	}
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return 0, fmt.Errorf("statespace: frontier: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return 0, fmt.Errorf("statespace: frontier: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return 0, fmt.Errorf("statespace: frontier: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return 0, fmt.Errorf("statespace: frontier: %w", err)
	}
	return sum, nil
}

func readFrontier(path, wantSum string) ([]FrontierItem, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, corrupt("frontier %s: %v", filepath.Base(path), err)
	}
	if len(data) < 24 || len(data)%8 != 0 {
		return nil, corrupt("frontier %s: malformed length", filepath.Base(path))
	}
	sum := binary.LittleEndian.Uint64(data[len(data)-8:])
	if fnvBytes(data[:len(data)-8]) != sum || fmt.Sprintf("%016x", sum) != wantSum {
		return nil, corrupt("frontier %s: checksum mismatch", filepath.Base(path))
	}
	words := len(data)/8 - 1
	at := 0
	next := func() (uint64, bool) {
		if at >= words {
			return 0, false
		}
		v := binary.LittleEndian.Uint64(data[8*at:])
		at++
		return v, true
	}
	bad := func() ([]FrontierItem, error) {
		return nil, corrupt("frontier %s: truncated records", filepath.Base(path))
	}
	if magic, ok := next(); !ok || magic != frontierMagic {
		return nil, corrupt("frontier %s: bad magic", filepath.Base(path))
	}
	n, ok := next()
	if !ok {
		return bad()
	}
	items := make([]FrontierItem, 0, n)
	for i := uint64(0); i < n; i++ {
		var it FrontierItem
		pn, ok := next()
		if !ok || pn > uint64(words) {
			return bad()
		}
		if pn > 0 {
			it.Prefix = make([]int, pn)
			for j := range it.Prefix {
				v, ok := next()
				if !ok {
					return bad()
				}
				it.Prefix[j] = int(int64(v))
			}
		}
		sn, ok := next()
		if !ok || sn > uint64(words) {
			return bad()
		}
		if sn > 0 {
			it.Sleep = make([]uint64, sn)
			for j := range it.Sleep {
				v, ok := next()
				if !ok {
					return bad()
				}
				it.Sleep[j] = v
			}
		}
		sk, ok := next()
		if !ok {
			return bad()
		}
		it.Skip = int(int64(sk))
		items = append(items, it)
	}
	if at != words {
		return nil, corrupt("frontier %s: trailing records", filepath.Base(path))
	}
	return items, nil
}
