package statespace

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// A run is one immutable sorted segment of a shard, spilled from the hot
// map. On-disk layout, little-endian uint64 words throughout:
//
//	header  (5 words): magic, version|shard<<32, count, bloomWords, payloadWords
//	bloom   (bloomWords words): membership filter over the index keys
//	index   (count × 2 words): fp, payloadOff<<16 | sleepLen — sorted by fp
//	payload (payloadWords words): concatenated sleep-set words
//	trailer (1 word): FNV-1a 64 over every preceding byte
//
// The trailer makes truncation and bit rot detectable: openRun streams
// the whole file once and refuses a mismatch, so a corrupt segment can
// never silently truncate the search (the caller falls back to a fresh
// exploration). Lookups afterwards are ReadAt probes — bloom reject,
// then binary search over fixed 16-byte index entries — served from the
// page cache in the common case.
const (
	runMagic   = 0x4d43_5353_4547_3031 // "MCSSEG01" read as a LE word
	runVersion = 1
	runSuffix  = ".run"

	runHeaderWords = 5
	maxSleepWords  = 1 << 16 // index packs the length into 16 bits
)

type runEnt struct {
	fp    uint64
	sleep []uint64
}

type run struct {
	path  string
	f     *os.File
	size  int64
	sum   uint64 // trailer checksum, recorded in checkpoint manifests
	count int64
	bloom bloom

	indexOff   int64
	payloadOff int64
}

func runName(shard int, seq uint64) string {
	return fmt.Sprintf("shard-%02d-%06d%s", shard, seq, runSuffix)
}

// writeRun persists ents (sorted by fp, unique keys) as a new run under
// dir, atomically: temp file, then rename, then a validating re-open
// that checks the image back (the farm disk store's idiom).
func writeRun(dir string, shard int, seq uint64, ents []runEnt) (*run, error) {
	payloadWords := 0
	for _, e := range ents {
		if len(e.sleep) >= maxSleepWords {
			return nil, fmt.Errorf("statespace: sleep set of %d words exceeds the run format bound", len(e.sleep))
		}
		payloadWords += len(e.sleep)
	}
	bl := newBloom(len(ents))
	for _, e := range ents {
		bl.add(e.fp)
	}
	words := runHeaderWords + len(bl.words) + 2*len(ents) + payloadWords + 1
	buf := make([]byte, 0, 8*words)
	put := func(v uint64) { buf = binary.LittleEndian.AppendUint64(buf, v) }
	put(runMagic)
	put(uint64(runVersion) | uint64(shard)<<32)
	put(uint64(len(ents)))
	put(uint64(len(bl.words)))
	put(uint64(payloadWords))
	for _, w := range bl.words {
		put(w)
	}
	off := 0
	for _, e := range ents {
		put(e.fp)
		put(uint64(off)<<16 | uint64(len(e.sleep)))
		off += len(e.sleep)
	}
	for _, e := range ents {
		for _, w := range e.sleep {
			put(w)
		}
	}
	put(fnvBytes(buf))

	path := filepath.Join(dir, runName(shard, seq))
	tmp, err := os.CreateTemp(dir, "run.tmp*")
	if err != nil {
		return nil, fmt.Errorf("statespace: spill: %w", err)
	}
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return nil, fmt.Errorf("statespace: spill: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return nil, fmt.Errorf("statespace: spill: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return nil, fmt.Errorf("statespace: spill: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return nil, fmt.Errorf("statespace: spill: %w", err)
	}
	r, err := openRun(path, shard)
	if err != nil {
		return nil, fmt.Errorf("statespace: spill read-back: %w", err)
	}
	return r, nil
}

// openRun opens and validates a run: header sanity, size arithmetic, and
// the full trailer checksum. Every failure is a CorruptError so resume
// callers can distinguish damage from absence.
func openRun(path string, wantShard int) (*run, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, corrupt("run %s missing", filepath.Base(path))
		}
		return nil, err
	}
	r := &run{path: path, f: f}
	var hdr [8 * runHeaderWords]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		f.Close()
		return nil, corrupt("run %s: short header", filepath.Base(path))
	}
	word := func(i int) uint64 { return binary.LittleEndian.Uint64(hdr[8*i:]) }
	if word(0) != runMagic || word(1)&0xffffffff != runVersion {
		f.Close()
		return nil, corrupt("run %s: bad magic/version", filepath.Base(path))
	}
	if shard := int(word(1) >> 32); shard != wantShard {
		f.Close()
		return nil, corrupt("run %s: shard %d, want %d", filepath.Base(path), shard, wantShard)
	}
	r.count = int64(word(2))
	bloomWords := int64(word(3))
	payloadWords := int64(word(4))
	r.size = 8 * (runHeaderWords + bloomWords + 2*r.count + payloadWords + 1)
	if fi, err := f.Stat(); err != nil || fi.Size() != r.size {
		f.Close()
		return nil, corrupt("run %s: size %d, want %d", filepath.Base(path), fileSize(f), r.size)
	}
	r.indexOff = 8 * (runHeaderWords + bloomWords)
	r.payloadOff = r.indexOff + 16*r.count

	// Stream the whole image once: load the bloom words in passing and
	// verify the trailer checksum.
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	body := make([]byte, r.size)
	if _, err := io.ReadFull(f, body); err != nil {
		f.Close()
		return nil, corrupt("run %s: short read", filepath.Base(path))
	}
	sum := binary.LittleEndian.Uint64(body[r.size-8:])
	if fnvBytes(body[:r.size-8]) != sum {
		f.Close()
		return nil, corrupt("run %s: checksum mismatch", filepath.Base(path))
	}
	r.sum = sum
	r.bloom.words = make([]uint64, bloomWords)
	for i := range r.bloom.words {
		r.bloom.words[i] = binary.LittleEndian.Uint64(body[8*(runHeaderWords+i):])
	}
	return r, nil
}

func fileSize(f *os.File) int64 {
	fi, err := f.Stat()
	if err != nil {
		return -1
	}
	return fi.Size()
}

// lookup finds fp's stored sleep set: bloom reject, then binary search
// over the index via ReadAt.
func (r *run) lookup(fp uint64) ([]uint64, bool, error) {
	if !r.bloom.has(fp) {
		return nil, false, nil
	}
	var ent [16]byte
	lo, hi := int64(0), r.count
	for lo < hi {
		mid := (lo + hi) / 2
		if _, err := r.f.ReadAt(ent[:], r.indexOff+16*mid); err != nil {
			return nil, false, corrupt("run %s: index read: %v", filepath.Base(r.path), err)
		}
		key := binary.LittleEndian.Uint64(ent[:8])
		switch {
		case key < fp:
			lo = mid + 1
		case key > fp:
			hi = mid
		default:
			packed := binary.LittleEndian.Uint64(ent[8:])
			n := int(packed & (maxSleepWords - 1))
			off := int64(packed >> 16)
			if n == 0 {
				return nil, true, nil
			}
			raw := make([]byte, 8*n)
			if _, err := r.f.ReadAt(raw, r.payloadOff+8*off); err != nil {
				return nil, false, corrupt("run %s: payload read: %v", filepath.Base(r.path), err)
			}
			sleep := make([]uint64, n)
			for i := range sleep {
				sleep[i] = binary.LittleEndian.Uint64(raw[8*i:])
			}
			return sleep, true, nil
		}
	}
	return nil, false, nil
}

// forEach streams every entry in fingerprint order (compaction and
// tests).
func (r *run) forEach(fn func(fp uint64, sleep []uint64)) error {
	body := make([]byte, r.size)
	if _, err := r.f.ReadAt(body, 0); err != nil {
		return corrupt("run %s: read: %v", filepath.Base(r.path), err)
	}
	for i := int64(0); i < r.count; i++ {
		ent := body[r.indexOff+16*i:]
		fp := binary.LittleEndian.Uint64(ent)
		packed := binary.LittleEndian.Uint64(ent[8:])
		n := int(packed & (maxSleepWords - 1))
		off := int64(packed >> 16)
		var sleep []uint64
		if n > 0 {
			sleep = make([]uint64, n)
			for j := range sleep {
				sleep[j] = binary.LittleEndian.Uint64(body[r.payloadOff+8*(off+int64(j)):])
			}
		}
		fn(fp, sleep)
	}
	return nil
}

func (r *run) close() error {
	if r.f == nil {
		return nil
	}
	err := r.f.Close()
	r.f = nil
	return err
}

// remove closes and deletes the run file (compaction, Reset).
func (r *run) remove() error {
	if err := r.close(); err != nil {
		return err
	}
	//multicube:atomicwrite-ok compaction/Reset retire runs already unreferenced by the manifest (or re-gc'd on the next checkpoint)
	if err := os.Remove(r.path); err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

// fnvBytes is FNV-1a 64 over a byte slice — the same hash family the
// fingerprint layer uses, here guarding file integrity.
func fnvBytes(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h = (h ^ uint64(c)) * 1099511628211
	}
	return h
}
