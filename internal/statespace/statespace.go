// Package statespace is the explorer's visited-state store, grown from
// internal/mc's in-memory sharded table into a storage subsystem whose
// capacity is bounded by disk, not RAM.
//
// The store keeps 64 shards keyed by the top bits of the canonical state
// fingerprint, so shard order IS fingerprint order and iteration is
// deterministic by construction. Each shard holds a hot map plus a stack
// of immutable, sorted, checksummed on-disk runs (spilled under a hard
// memory budget, newest-wins on overlap, bloom-filtered so absent-key
// probes stay in RAM). Entries map a state fingerprint to the smallest
// sleep set it has been explored with — the same subset/intersection
// contract internal/mc's visitedSet implemented, preserved bit-for-bit
// so a memory-only Store is a drop-in replacement.
//
// On top of the tiered table sit atomic checkpoints (manifest + frontier
// + spilled shards, written temp-then-rename like the farm's result
// store) that let a killed exploration resume with a byte-identical
// verdict, and a fingerprint-range partition (Owner) that lets several
// workers share one exploration by shard ownership.
//
// The package participates in the explorer's determinism contract: no
// wall clock anywhere — checkpoint metadata carries a sequence number,
// never a timestamp — and no map-order dependence. multicube-vet
// enforces both (see internal/analysis), and genbump enforces that every
// hot-tier mutation bumps the shard generation the checkpoint dirtiness
// test relies on.
//
// Checkpoint files are durable state: multicube-vet's atomicwrite pass
// holds every writer here to the temp+sync+rename shape and every
// delete to the manifest-pin discipline.
//
//multicube:deterministic
//multicube:durable
package statespace

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

const (
	numShards  = 64
	shardShift = 64 - 6 // shard index = top 6 bits: shard order is fp order

	// maxRunsPerShard bounds the on-disk run stack per shard; beyond it a
	// spill triggers a merge compaction, keeping lookups O(log n) over a
	// handful of files.
	maxRunsPerShard = 4

	// entryOverhead approximates the hot-map bookkeeping cost of one
	// entry (bucket slot, key, slice header) beyond its sleep words. The
	// budget is an engineering bound, not an exact accounting.
	entryOverhead = 64
)

// Config bounds one Store.
type Config struct {
	// Dir is the spill directory; "" keeps the store memory-only (no
	// spilling, no checkpoints — the PR-2 visitedSet behavior).
	Dir string
	// MemBudget caps the estimated hot-tier bytes; exceeding it spills
	// the largest shard to a sorted run under Dir. Zero means unbounded.
	MemBudget int64
	// CheckpointDir holds the manifest and frontier files; "" disables
	// checkpoints. May equal Dir.
	CheckpointDir string
}

// Outcome is the result of one Visit, mirroring the explorer's original
// visitNew/visitAgain/visitSeen/visitBudget semantics.
type Outcome uint8

const (
	// OutcomeNew: first visit; the state was recorded.
	OutcomeNew Outcome = iota
	// OutcomeAgain: seen before, but with a sleep set that skipped
	// successors this visit covers; the stored set shrank to the
	// intersection and the state must be re-explored.
	OutcomeAgain
	// OutcomeSeen: seen before with a subset of this sleep set; every
	// successor from here is already covered.
	OutcomeSeen
	// OutcomeBudget: the state budget is exhausted; nothing was recorded.
	OutcomeBudget
)

// shard is one fingerprint range: a hot map over a stack of immutable
// sorted runs. The generation counter is the checkpoint dirtiness test —
// a shard whose gen still equals spilledGen has nothing hot to flush.
type shard struct {
	mu sync.Mutex
	// gen counts hot-tier mutations.
	gen uint64 //multicube:gencounter
	// hot maps fingerprint → smallest sleep set, shadowing the runs below
	// (an entry here overrides any on-disk value for the same key).
	hot map[uint64][]uint64 //multicube:fpfield guard=shard
	// bytes estimates the hot tier's memory cost.
	bytes int64
	// runs is the on-disk tier, oldest first; lookups scan newest first.
	runs []*run
	// spilledGen is the gen value the newest run covers.
	spilledGen uint64
}

// Store is the tiered visited-state table. It is safe for concurrent
// Visit calls (per-shard locking, like the in-memory table it replaces);
// checkpoint and reset operations require the caller to be quiescent.
type Store struct {
	cfg    Config
	shards [numShards]shard

	count     atomic.Int64 // distinct states recorded
	bytes     atomic.Int64 // hot-tier estimate across shards
	spills    atomic.Int64
	diskBytes atomic.Int64
	seq       atomic.Uint64 // file-name sequence (never a timestamp)

	spillMu sync.Mutex // serializes victim selection and eviction

	// pinned holds the file basenames the newest durable manifest
	// references. Compaction and Reset must not unlink them — a crash
	// before the next checkpoint would leave that manifest naming deleted
	// files and the resume would degrade to a fresh exploration. They are
	// closed instead and swept by the next checkpoint's gc, whose renamed
	// manifest no longer names them.
	pinMu  sync.Mutex
	pinned map[string]bool

	errMu sync.Mutex
	err   error // sticky first I/O failure; Visit degrades to OutcomeSeen
}

// isPinned reports whether the newest durable manifest references name.
func (s *Store) isPinned(name string) bool {
	s.pinMu.Lock()
	defer s.pinMu.Unlock()
	return s.pinned[name]
}

// setPinned replaces the pinned set with the freshly renamed (or adopted)
// manifest's file basenames.
func (s *Store) setPinned(keep map[string]bool) {
	s.pinMu.Lock()
	s.pinned = keep
	s.pinMu.Unlock()
}

// Open creates a store under cfg. A non-empty Dir is created and swept
// of temp droppings; stale run files from a previous process are removed
// (resume goes through Resume, which adopts only manifest-listed runs).
func Open(cfg Config) (*Store, error) {
	if cfg.MemBudget > 0 && cfg.Dir == "" {
		return nil, errors.New("statespace: a memory budget requires a spill directory")
	}
	s := &Store{cfg: cfg}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.gen++
		sh.hot = make(map[uint64][]uint64)
	}
	for _, dir := range []string{cfg.Dir, cfg.CheckpointDir} {
		if dir == "" {
			continue
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("statespace: %w", err)
		}
	}
	if cfg.Dir != "" {
		if err := sweepStale(cfg.Dir); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// sweepStale removes run, frontier, and temp files left behind by a
// previous process; a fresh exploration must not see them.
func sweepStale(dir string) error {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("statespace: sweep: %w", err)
	}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() {
			continue
		}
		if strings.HasSuffix(name, runSuffix) || strings.HasSuffix(name, frontierSuffix) ||
			strings.Contains(name, ".tmp") || name == manifestName {
			//multicube:atomicwrite-ok fresh store: the caller starts from scratch, so nothing here is pinned
			if err := os.Remove(filepath.Join(dir, name)); err != nil {
				return fmt.Errorf("statespace: sweep: %w", err)
			}
		}
	}
	return nil
}

// fail records the first I/O failure; the explorer consults Err at
// frontier boundaries and aborts, so a degraded Visit answer is never
// silently folded into a verdict.
func (s *Store) fail(err error) {
	s.errMu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.errMu.Unlock()
}

// Err reports the sticky first I/O failure, if any.
func (s *Store) Err() error {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return s.err
}

// Visit records an arrival at state fp carrying the given sorted sleep
// set, against a table capped at max states. The contract is exactly the
// in-memory table's: a stored subset truncates (OutcomeSeen), anything
// else shrinks the stored set to the intersection and re-explores
// (OutcomeAgain), a first arrival records the set (OutcomeNew) unless
// the budget is exhausted (OutcomeBudget). The caller must not mutate
// sleep afterwards.
func (s *Store) Visit(fp uint64, sleep []uint64, max int) Outcome {
	sh := &s.shards[fp>>shardShift]
	sh.mu.Lock()
	if stored, ok := sh.hot[fp]; ok {
		if subsetOf(stored, sleep) {
			sh.mu.Unlock()
			return OutcomeSeen
		}
		inter := intersectSorted(stored, sleep)
		sh.gen++
		sh.hot[fp] = inter
		delta := int64(8 * (len(inter) - len(stored)))
		sh.bytes += delta
		sh.mu.Unlock()
		s.bytes.Add(delta)
		return OutcomeAgain
	}
	if len(sh.runs) > 0 {
		stored, ok, err := sh.lookupRuns(fp)
		if err != nil {
			sh.mu.Unlock()
			s.fail(err)
			// Degrade conservatively: truncate this branch. The explorer
			// aborts on Err at the next frontier boundary.
			return OutcomeSeen
		}
		if ok {
			if subsetOf(stored, sleep) {
				sh.mu.Unlock()
				return OutcomeSeen
			}
			inter := intersectSorted(stored, sleep)
			sh.gen++
			sh.hot[fp] = inter // shadows the on-disk value
			grow := int64(entryOverhead + 8*len(inter))
			sh.bytes += grow
			sh.mu.Unlock()
			s.bytes.Add(grow)
			s.maybeSpill()
			return OutcomeAgain
		}
	}
	if s.count.Add(1) > int64(max) {
		s.count.Add(-1)
		sh.mu.Unlock()
		return OutcomeBudget
	}
	sh.gen++
	sh.hot[fp] = sleep
	grow := int64(entryOverhead + 8*len(sleep))
	sh.bytes += grow
	sh.mu.Unlock()
	s.bytes.Add(grow)
	s.maybeSpill()
	return OutcomeNew
}

// lookupRuns searches the on-disk tier newest-first (the newest run
// holds the smallest — most recently intersected — set for a key that
// appears in several). Caller holds the shard lock.
func (sh *shard) lookupRuns(fp uint64) ([]uint64, bool, error) {
	for i := len(sh.runs) - 1; i >= 0; i-- {
		sleep, ok, err := sh.runs[i].lookup(fp)
		if err != nil {
			return nil, false, err
		}
		if ok {
			return sleep, true, nil
		}
	}
	return nil, false, nil
}

// maybeSpill evicts the largest hot shards to disk until the estimate is
// back under budget. Serialized so concurrent visitors pick distinct
// victims at most once.
func (s *Store) maybeSpill() {
	if s.cfg.MemBudget <= 0 || s.bytes.Load() <= s.cfg.MemBudget {
		return
	}
	s.spillMu.Lock()
	defer s.spillMu.Unlock()
	for s.bytes.Load() > s.cfg.MemBudget {
		victim, victimBytes := -1, int64(0)
		for i := range s.shards {
			s.shards[i].mu.Lock()
			b := s.shards[i].bytes
			s.shards[i].mu.Unlock()
			if b > victimBytes {
				victim, victimBytes = i, b
			}
		}
		if victim < 0 || victimBytes == 0 {
			return // nothing left to evict; the budget is simply too small
		}
		if err := s.spillShard(victim); err != nil {
			s.fail(err)
			return
		}
	}
}

// spillShard writes shard i's hot entries as one sorted run and clears
// the hot map. Compaction merges the run stack once it exceeds
// maxRunsPerShard.
func (s *Store) spillShard(i int) error {
	sh := &s.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if len(sh.hot) == 0 {
		return nil
	}
	ents := make([]runEnt, 0, len(sh.hot))
	for fp, sleep := range sh.hot { // collect-then-sort: order restored below
		ents = append(ents, runEnt{fp: fp, sleep: sleep})
	}
	sort.Slice(ents, func(a, b int) bool { return ents[a].fp < ents[b].fp })
	r, err := writeRun(s.cfg.Dir, i, s.seq.Add(1), ents)
	if err != nil {
		return err
	}
	sh.runs = append(sh.runs, r)
	sh.gen++
	sh.hot = make(map[uint64][]uint64)
	s.bytes.Add(-sh.bytes)
	sh.bytes = 0
	sh.spilledGen = sh.gen
	s.spills.Add(1)
	s.diskBytes.Add(r.size)
	if len(sh.runs) > maxRunsPerShard {
		return s.compactLocked(sh, i)
	}
	return nil
}

// compactLocked merges a shard's whole run stack into one run
// (newest-wins per key) and deletes the inputs — except inputs the
// newest durable manifest still references, which are only closed and
// left for the next checkpoint's gc. Caller holds the shard lock.
func (s *Store) compactLocked(sh *shard, i int) error {
	merged := make(map[uint64][]uint64)
	for _, r := range sh.runs { // oldest first: later (newer) runs win
		if err := r.forEach(func(fp uint64, sleep []uint64) {
			merged[fp] = sleep
		}); err != nil {
			return err
		}
	}
	ents := make([]runEnt, 0, len(merged))
	for fp, sleep := range merged { // collect-then-sort: order restored below
		ents = append(ents, runEnt{fp: fp, sleep: sleep})
	}
	sort.Slice(ents, func(a, b int) bool { return ents[a].fp < ents[b].fp })
	r, err := writeRun(s.cfg.Dir, i, s.seq.Add(1), ents)
	if err != nil {
		return err
	}
	for _, old := range sh.runs {
		s.diskBytes.Add(-old.size)
		if s.isPinned(filepath.Base(old.path)) {
			if err := old.close(); err != nil {
				return err
			}
			continue
		}
		if err := old.remove(); err != nil {
			return err
		}
	}
	sh.runs = append(sh.runs[:0], r)
	s.diskBytes.Add(r.size)
	return nil
}

// States reports the number of distinct states recorded.
func (s *Store) States() int { return int(s.count.Load()) }

// Spills reports how many shard evictions have run.
func (s *Store) Spills() int { return int(s.spills.Load()) }

// DiskBytes reports the current on-disk tier size.
func (s *Store) DiskBytes() int64 { return s.diskBytes.Load() }

// MemBytes reports the current hot-tier estimate.
func (s *Store) MemBytes() int64 { return s.bytes.Load() }

// Reset clears the store for a fresh deepening iteration: every hot
// entry, every run file, the counters. The configuration is kept.
func (s *Store) Reset() error {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.gen++
		sh.hot = make(map[uint64][]uint64)
		sh.bytes = 0
		sh.spilledGen = sh.gen
		for _, r := range sh.runs {
			// Same crash-window rule as compaction: a manifest-referenced
			// run is closed, not unlinked, until a new manifest is durable.
			if s.isPinned(filepath.Base(r.path)) {
				if err := r.close(); err != nil {
					sh.mu.Unlock()
					return err
				}
				continue
			}
			if err := r.remove(); err != nil {
				sh.mu.Unlock()
				return err
			}
		}
		sh.runs = nil
		sh.mu.Unlock()
	}
	s.count.Store(0)
	s.bytes.Store(0)
	s.diskBytes.Store(0)
	return nil
}

// Close releases every open run file, leaving the on-disk state intact
// (a checkpointed store remains resumable).
func (s *Store) Close() error {
	var first error
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for _, r := range sh.runs {
			if err := r.close(); err != nil && first == nil {
				first = err
			}
		}
		sh.runs = nil
		sh.mu.Unlock()
	}
	return first
}

// subsetOf reports a ⊆ b for sorted fingerprint slices (the sleep-set
// encoding internal/mc stores).
func subsetOf(a, b []uint64) bool {
	if len(a) > len(b) {
		return false
	}
	i := 0
	for _, x := range a {
		for i < len(b) && b[i] < x {
			i++
		}
		if i >= len(b) || b[i] != x {
			return false
		}
		i++
	}
	return true
}

// intersectSorted returns a ∩ b for sorted fingerprint slices.
func intersectSorted(a, b []uint64) []uint64 {
	var out []uint64
	i := 0
	for _, x := range a {
		for i < len(b) && b[i] < x {
			i++
		}
		if i < len(b) && b[i] == x {
			out = append(out, x)
			i++
		}
	}
	return out
}
