package statespace

// bloom is a fixed-size membership filter over fingerprints, built at
// run-write time and persisted inside the run file, so an absent-key
// probe against a spilled shard almost never touches the index. Sized at
// ~12 bits per key with 4 probes the false-positive rate is well under
// 1%, and a false positive costs only a wasted binary search.
type bloom struct {
	words []uint64
}

const bloomProbes = 4

func newBloom(keys int) bloom {
	words := (12*keys + 63) / 64
	if words < 1 {
		words = 1
	}
	return bloom{words: make([]uint64, words)}
}

// probeSeq derives two independent probe streams from one fingerprint
// (double hashing); the fingerprints are already uniform, so cheap
// multiplicative mixing suffices.
func probeSeq(fp uint64) (h1, h2 uint64) {
	h1 = fp * 0x9e3779b97f4a7c15
	h2 = (fp ^ h1>>32) * 0xff51afd7ed558ccd
	h2 |= 1 // odd stride so every probe moves
	return
}

func (b *bloom) add(fp uint64) {
	bits := uint64(len(b.words)) * 64
	h1, h2 := probeSeq(fp)
	for i := 0; i < bloomProbes; i++ {
		bit := (h1 + uint64(i)*h2) % bits
		b.words[bit/64] |= 1 << (bit % 64)
	}
}

func (b *bloom) has(fp uint64) bool {
	if len(b.words) == 0 {
		return false
	}
	bits := uint64(len(b.words)) * 64
	h1, h2 := probeSeq(fp)
	for i := 0; i < bloomProbes; i++ {
		bit := (h1 + uint64(i)*h2) % bits
		if b.words[bit/64]&(1<<(bit%64)) == 0 {
			return false
		}
	}
	return true
}
