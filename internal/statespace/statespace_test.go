package statespace

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
)

// refVisited is the straightforward in-memory reference: fp → smallest
// sleep set, with the exact subset/intersection contract the Store must
// preserve across spilling and compaction.
type refVisited struct {
	m     map[uint64][]uint64
	count int
}

func (r *refVisited) visit(fp uint64, sleep []uint64, max int) Outcome {
	if stored, ok := r.m[fp]; ok {
		if subsetOf(stored, sleep) {
			return OutcomeSeen
		}
		r.m[fp] = intersectSorted(stored, sleep)
		return OutcomeAgain
	}
	if r.count >= max {
		return OutcomeBudget
	}
	r.count++
	r.m[fp] = sleep
	return OutcomeNew
}

func randSleep(rng *rand.Rand) []uint64 {
	n := rng.Intn(6)
	if n == 0 {
		return nil
	}
	set := make(map[uint64]bool, n)
	for len(set) < n {
		set[uint64(rng.Intn(40))*0x9e37+1] = true
	}
	out := make([]uint64, 0, n)
	for f := range set {
		out = append(out, f)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// TestVisitMatchesReference drives the store and the reference with the
// same random workload under a tiny memory budget, forcing spills and
// compactions, and requires identical outcomes throughout.
func TestVisitMatchesReference(t *testing.T) {
	for _, budget := range []int64{0, 1 << 10, 1 << 14} {
		dir := t.TempDir()
		cfg := Config{MemBudget: budget}
		if budget > 0 {
			cfg.Dir = dir
		}
		s, err := Open(cfg)
		if err != nil {
			t.Fatalf("budget %d: Open: %v", budget, err)
		}
		ref := &refVisited{m: make(map[uint64][]uint64)}
		rng := rand.New(rand.NewSource(7))
		const max = 500
		for i := 0; i < 20000; i++ {
			// Small fp universe so keys repeat and intersections happen;
			// spread across shards via multiplication.
			fp := uint64(rng.Intn(700)) * 0x9e3779b97f4a7c15
			sleep := randSleep(rng)
			got := s.Visit(fp, sleep, max)
			want := ref.visit(fp, sleep, max)
			if got != want {
				t.Fatalf("budget %d: visit %d (fp %x): got %v, want %v", budget, i, fp, got, want)
			}
		}
		if s.States() != ref.count {
			t.Fatalf("budget %d: states %d, want %d", budget, s.States(), ref.count)
		}
		if err := s.Err(); err != nil {
			t.Fatalf("budget %d: sticky error: %v", budget, err)
		}
		if budget > 0 && s.Spills() == 0 {
			t.Fatalf("budget %d produced no spills; workload too small", budget)
		}
		if err := s.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	}
}

func TestRunRoundTrip(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(3))
	ents := make([]runEnt, 0, 200)
	seen := make(map[uint64]bool)
	for len(ents) < 200 {
		fp := rng.Uint64()
		if seen[fp] {
			continue
		}
		seen[fp] = true
		ents = append(ents, runEnt{fp: fp, sleep: randSleep(rng)})
	}
	sort.Slice(ents, func(a, b int) bool { return ents[a].fp < ents[b].fp })
	r, err := writeRun(dir, 5, 1, ents)
	if err != nil {
		t.Fatalf("writeRun: %v", err)
	}
	defer r.close()
	for _, e := range ents {
		got, ok, err := r.lookup(e.fp)
		if err != nil || !ok {
			t.Fatalf("lookup %x: ok=%v err=%v", e.fp, ok, err)
		}
		if !reflect.DeepEqual(got, e.sleep) && !(len(got) == 0 && len(e.sleep) == 0) {
			t.Fatalf("lookup %x: got %v, want %v", e.fp, got, e.sleep)
		}
	}
	for i := 0; i < 1000; i++ {
		fp := rng.Uint64()
		if seen[fp] {
			continue
		}
		if _, ok, _ := r.lookup(fp); ok {
			t.Fatalf("lookup of absent %x reported present", fp)
		}
	}
	var walked int
	if err := r.forEach(func(fp uint64, sleep []uint64) { walked++ }); err != nil {
		t.Fatalf("forEach: %v", err)
	}
	if walked != len(ents) {
		t.Fatalf("forEach walked %d, want %d", walked, len(ents))
	}
}

func TestOpenRunDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	ents := []runEnt{{fp: 1, sleep: []uint64{2, 3}}, {fp: 9, sleep: nil}}
	r, err := writeRun(dir, 0, 1, ents)
	if err != nil {
		t.Fatalf("writeRun: %v", err)
	}
	path := r.path
	r.close()

	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]func() []byte{
		"truncated": func() []byte { return orig[:len(orig)-9] },
		"bitflip": func() []byte {
			b := append([]byte(nil), orig...)
			b[len(b)/2] ^= 0x40
			return b
		},
		"badmagic": func() []byte {
			b := append([]byte(nil), orig...)
			b[0] ^= 0xff
			return b
		},
	}
	for name, mutate := range cases {
		if err := os.WriteFile(path, mutate(), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := openRun(path, 0); err == nil {
			t.Fatalf("%s: openRun accepted a damaged run", name)
		} else if !strings.Contains(err.Error(), "corrupt") {
			t.Fatalf("%s: error %v is not a corruption error", name, err)
		}
	}
	// Wrong shard is also refused.
	if err := os.WriteFile(path, orig, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := openRun(path, 1); err == nil {
		t.Fatal("openRun accepted a run for the wrong shard")
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, MemBudget: 1 << 10, CheckpointDir: dir}
	s, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	rng := rand.New(rand.NewSource(11))
	type rec struct {
		fp    uint64
		sleep []uint64
	}
	var visits []rec
	for i := 0; i < 3000; i++ {
		fp := uint64(rng.Intn(400)) * 0x9e3779b97f4a7c15
		sl := randSleep(rng)
		visits = append(visits, rec{fp, sl})
		s.Visit(fp, sl, 1<<30)
	}
	meta := Meta{
		ScenarioHash: "scen",
		OptionsHash:  "opts",
		Depth:        40,
		Counters:     map[string]uint64{"runs": 17, "fp_inc": 99},
	}
	frontier := []FrontierItem{
		{Prefix: []int{0, 2, 1}, Sleep: []uint64{5, 9}, Skip: 0},
		{Prefix: nil, Sleep: nil, Skip: 3},
		{Prefix: []int{4}, Sleep: []uint64{1}, Skip: 0},
	}
	if err := s.WriteCheckpoint(meta, frontier); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	wantStates := s.States()
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2, gotMeta, gotFrontier, err := Resume(cfg, "scen", "opts")
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	defer s2.Close()
	if !reflect.DeepEqual(gotMeta, meta) {
		t.Fatalf("meta: got %+v, want %+v", gotMeta, meta)
	}
	if !reflect.DeepEqual(gotFrontier, frontier) {
		t.Fatalf("frontier: got %+v, want %+v", gotFrontier, frontier)
	}
	if s2.States() != wantStates {
		t.Fatalf("states: got %d, want %d", s2.States(), wantStates)
	}
	// Every visited state must answer Seen when revisited with a superset
	// (its stored set is ⊆ what it was visited with).
	for _, v := range visits {
		if got := s2.Visit(v.fp, v.sleep, 1<<30); got != OutcomeSeen && got != OutcomeAgain {
			t.Fatalf("resumed visit %x: got %v", v.fp, got)
		}
	}
	if s2.States() != wantStates {
		t.Fatalf("revisits grew the table: %d → %d", wantStates, s2.States())
	}
}

func TestResumeRefusesMismatchAndCorruption(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, MemBudget: 1 << 10, CheckpointDir: dir}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		s.Visit(uint64(rng.Intn(300))*0x9e3779b97f4a7c15, randSleep(rng), 1<<30)
	}
	if err := s.WriteCheckpoint(Meta{ScenarioHash: "a", OptionsHash: "b"}, nil); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	s.Close()

	if _, _, _, err := Resume(cfg, "a", "OTHER"); err == nil {
		t.Fatal("Resume accepted mismatched options hash")
	} else if !strings.Contains(err.Error(), "does not match") {
		t.Fatalf("mismatch error: %v", err)
	}
	if _, _, _, err := Resume(Config{Dir: t.TempDir(), CheckpointDir: t.TempDir()}, "a", "b"); err != ErrNoCheckpoint {
		t.Fatalf("empty dir: got %v, want ErrNoCheckpoint", err)
	}

	// Truncate one run file: Resume must detect it.
	runs, err := filepath.Glob(filepath.Join(dir, "*"+runSuffix))
	if err != nil || len(runs) == 0 {
		t.Fatalf("no runs on disk (err %v)", err)
	}
	data, err := os.ReadFile(runs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(runs[0], data[:len(data)-16], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := Resume(cfg, "a", "b"); err == nil {
		t.Fatal("Resume accepted a truncated run")
	}
	// Clear wipes the damage and a fresh Open succeeds.
	if err := Clear(cfg); err != nil {
		t.Fatalf("Clear: %v", err)
	}
	s3, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open after Clear: %v", err)
	}
	s3.Close()
}

func TestCheckpointSupersedesPrevious(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, MemBudget: 1 << 10, CheckpointDir: dir}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 1500; i++ {
		s.Visit(uint64(rng.Intn(250))*0x9e3779b97f4a7c15, randSleep(rng), 1<<30)
	}
	if err := s.WriteCheckpoint(Meta{ScenarioHash: "a", OptionsHash: "b"}, []FrontierItem{{Prefix: []int{1}}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1500; i++ {
		s.Visit(uint64(rng.Intn(500))*0x9e3779b97f4a7c15, randSleep(rng), 1<<30)
	}
	want := s.States()
	if err := s.WriteCheckpoint(Meta{ScenarioHash: "a", OptionsHash: "b"}, []FrontierItem{{Prefix: []int{2, 3}}}); err != nil {
		t.Fatal(err)
	}
	// Exactly one frontier file survives GC.
	fr, err := filepath.Glob(filepath.Join(dir, "*"+frontierSuffix))
	if err != nil || len(fr) != 1 {
		t.Fatalf("frontier files after second checkpoint: %v (err %v)", fr, err)
	}
	s.Close()
	s2, _, frontier, err := Resume(cfg, "a", "b")
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	defer s2.Close()
	if s2.States() != want {
		t.Fatalf("states: got %d, want %d", s2.States(), want)
	}
	if len(frontier) != 1 || len(frontier[0].Prefix) != 2 {
		t.Fatalf("frontier: got %+v, want the second checkpoint's", frontier)
	}
}

// TestCompactionPreservesCheckpointedRuns pins the crash-window rule: a
// compaction between two checkpoints must not unlink run files the
// durable manifest still references, or a kill in that window leaves an
// unresumable checkpoint. The retired files survive until the next
// checkpoint's gc sweeps them.
func TestCompactionPreservesCheckpointedRuns(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, MemBudget: 1, CheckpointDir: dir}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Tiny budget: every Visit spills. Small fingerprints all land in
	// shard 0, so runs stack up in one shard.
	for fp := uint64(1); fp <= 3; fp++ {
		s.Visit(fp, nil, 1<<30)
	}
	if err := s.WriteCheckpoint(Meta{ScenarioHash: "a", OptionsHash: "b"}, []FrontierItem{{Prefix: []int{1}}}); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	var pinnedRuns []string
	for name := range s.pinned {
		if strings.HasSuffix(name, runSuffix) {
			pinnedRuns = append(pinnedRuns, name)
		}
	}
	if len(pinnedRuns) == 0 {
		t.Fatal("checkpoint pinned no runs; workload produced none")
	}
	// Push shard 0 past maxRunsPerShard to force exactly one compaction.
	for fp := uint64(4); fp <= uint64(maxRunsPerShard)+1; fp++ {
		s.Visit(fp, nil, 1<<30)
	}
	if err := s.Err(); err != nil {
		t.Fatalf("sticky error: %v", err)
	}
	sh := &s.shards[0]
	sh.mu.Lock()
	live := len(sh.runs)
	sh.mu.Unlock()
	if live != 1 {
		t.Fatalf("shard 0 holds %d runs; compaction did not trigger", live)
	}
	for _, name := range pinnedRuns {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("compaction unlinked manifest-referenced run %s: %v", name, err)
		}
	}
	wantStates := 3 // the checkpoint's count, not the post-checkpoint one

	// Crash now (no second checkpoint): the durable manifest must resume.
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	s2, _, frontier, err := Resume(cfg, "a", "b")
	if err != nil {
		t.Fatalf("Resume after compaction-between-checkpoints: %v", err)
	}
	if s2.States() != wantStates || len(frontier) != 1 {
		t.Fatalf("resumed states=%d frontier=%d, want %d and 1", s2.States(), len(frontier), wantStates)
	}
	for fp := uint64(1); fp <= 3; fp++ {
		if got := s2.Visit(fp, nil, 1<<30); got != OutcomeSeen {
			t.Fatalf("resumed visit %d: got %v, want OutcomeSeen", fp, got)
		}
	}
	// The resumed store adopted only the manifest's runs; the compacted
	// merge product from the crashed process is stale. A fresh checkpoint
	// re-pins the adopted runs and gc sweeps the stale one.
	pinnedSet := make(map[string]bool)
	for _, name := range pinnedRuns {
		pinnedSet[name] = true
	}
	all, _ := filepath.Glob(filepath.Join(dir, "*"+runSuffix))
	var stale []string
	for _, p := range all {
		if !pinnedSet[filepath.Base(p)] {
			stale = append(stale, p)
		}
	}
	if len(stale) == 0 {
		t.Fatal("no stale merge product on disk; compaction scenario did not occur")
	}
	if err := s2.WriteCheckpoint(Meta{ScenarioHash: "a", OptionsHash: "b"}, nil); err != nil {
		t.Fatalf("second WriteCheckpoint: %v", err)
	}
	for _, p := range stale {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Fatalf("gc left stale run %s (err %v)", p, err)
		}
	}
	for _, name := range pinnedRuns {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("gc swept a still-referenced run %s: %v", name, err)
		}
	}
	s2.Close()
}

func TestOwnerPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, parts := range []int{1, 2, 3, 4, 7, 64} {
		counts := make([]int, parts)
		for i := 0; i < 100000; i++ {
			fp := rng.Uint64()
			o := Owner(fp, parts)
			if o < 0 || o >= parts {
				t.Fatalf("Owner(%x, %d) = %d out of range", fp, parts, o)
			}
			counts[o]++
		}
		for p, c := range counts {
			if parts > 1 && (c < 100000/parts/2 || c > 100000/parts*2) {
				t.Fatalf("parts=%d: partition %d holds %d of 100000 — badly skewed", parts, p, c)
			}
		}
		// Monotone in fp: contiguous ranges.
		if Owner(0, parts) != 0 || Owner(^uint64(0), parts) != parts-1 {
			t.Fatalf("parts=%d: range endpoints misassigned", parts)
		}
	}
}

func TestResetClearsDisk(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir, MemBudget: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 3000; i++ {
		s.Visit(rng.Uint64(), randSleep(rng), 1<<30)
	}
	if s.Spills() == 0 {
		t.Fatal("workload produced no spills")
	}
	if err := s.Reset(); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	if s.States() != 0 || s.MemBytes() != 0 || s.DiskBytes() != 0 {
		t.Fatalf("Reset left counters: states=%d mem=%d disk=%d", s.States(), s.MemBytes(), s.DiskBytes())
	}
	runs, _ := filepath.Glob(filepath.Join(dir, "*"+runSuffix))
	if len(runs) != 0 {
		t.Fatalf("Reset left run files: %v", runs)
	}
	if got := s.Visit(42, nil, 10); got != OutcomeNew {
		t.Fatalf("post-Reset visit: got %v, want OutcomeNew", got)
	}
}
