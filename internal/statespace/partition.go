package statespace

// Owner maps a canonical state fingerprint to one of parts partitions by
// fingerprint range — the shard-ownership protocol for distributing one
// exploration across farm workers. Ranges are contiguous in fingerprint
// (and therefore shard) order, so a partition owns whole runs of shards
// and cross-partition handoff happens only when the search crosses a
// range boundary.
//
// The split uses the top 32 bits so it is consistent with the shard
// index (top 6 bits): for parts ≤ 64 every shard belongs to exactly one
// partition.
func Owner(fp uint64, parts int) int {
	if parts <= 1 {
		return 0
	}
	return int((fp >> 32) * uint64(parts) >> 32)
}
