package core

import (
	"multicube/internal/cache"
	"multicube/internal/coherence"
	"multicube/internal/topology"
)

// Processor is one node's processor-side interface: the word-level memory
// operations a program issues, filtered through the processor cache and
// satisfied by the snooping cache and the coherence protocol.
//
// A processor has at most one memory operation outstanding at a time
// (the paper's non-overlapping request assumption); the asynchronous
// calls deliver their completions through callbacks that may fire
// synchronously on cache hits.
type Processor struct {
	m    *Machine
	id   int
	node *coherence.Node
	l1   *cache.ProcessorCache

	loads, stores   uint64
	l1Hits, l1Fills uint64
}

// ID returns the processor's linearized id.
func (p *Processor) ID() int { return p.id }

// Coord returns the processor's grid coordinate.
func (p *Processor) Coord() topology.Coord { return p.node.ID() }

// Node exposes the underlying snooping-cache controller.
func (p *Processor) Node() *coherence.Node { return p.node }

// L1 returns the processor cache, or nil when disabled.
func (p *Processor) L1() *cache.ProcessorCache { return p.l1 }

// ProcessorStats reports per-processor reference counts.
type ProcessorStats struct {
	Loads   uint64
	Stores  uint64
	L1Hits  uint64
	L1Fills uint64
}

// Stats returns a snapshot of the counters.
func (p *Processor) Stats() ProcessorStats {
	return ProcessorStats{Loads: p.loads, Stores: p.stores, L1Hits: p.l1Hits, L1Fills: p.l1Fills}
}

// LoadAsync reads the word at addr, invoking done with the value when the
// reference completes. A processor-cache hit completes synchronously.
func (p *Processor) LoadAsync(addr Addr, done func(uint64)) {
	p.loads++
	line, off := p.m.LineOf(addr)
	if p.l1 != nil {
		if v, ok := p.l1.Read(line, off); ok {
			p.l1Hits++
			done(v)
			return
		}
	}
	p.node.Read(line, func(coherence.Result) {
		e := p.node.CacheEntry(line)
		if e == nil {
			// The line was invalidated between completion and this
			// callback; impossible within one event, so treat as a bug.
			panic("core: line missing immediately after read completion")
		}
		v := e.Data[off]
		p.fillL1(line, e.Data)
		done(v)
	})
}

// StoreAsync writes value to addr, invoking done when the line is held
// modified and the word updated. The processor cache is written through.
func (p *Processor) StoreAsync(addr Addr, value uint64, done func()) {
	p.StoreAsyncObs(addr, value, func(uint64) { done() })
}

// StoreAsyncObs is StoreAsync reporting the word's previous value to
// done. The old value is read with the line already held modified, so it
// is the coherent predecessor of this store in the word's write order —
// which is exactly what a memory-model history recorder needs to chain
// writes without searching.
func (p *Processor) StoreAsyncObs(addr Addr, value uint64, done func(old uint64)) {
	p.stores++
	line, off := p.m.LineOf(addr)
	p.node.Write(line, func(coherence.Result) {
		e := p.node.CacheEntry(line)
		if e == nil {
			panic("core: line missing immediately after write completion")
		}
		old := e.Data[off]
		e.Data[off] = value
		if p.l1 != nil {
			p.l1.WriteThrough(line, off, value)
		}
		done(old)
	})
}

// AllocateAsync issues the ALLOCATE hint for the line containing addr:
// the whole line will be overwritten, so no data needs to move. On
// completion the line is resident modified and zero-filled.
func (p *Processor) AllocateAsync(addr Addr, done func()) {
	line, _ := p.m.LineOf(addr)
	if p.l1 != nil {
		p.l1.Invalidate(line)
	}
	p.node.Allocate(line, func(coherence.Result) { done() })
}

// TestAndSetAsync performs the remote test-and-set transaction on the
// lock word of the line containing addr. done receives true when the lock
// was acquired.
func (p *Processor) TestAndSetAsync(addr Addr, done func(bool)) {
	line, _ := p.m.LineOf(addr)
	if p.l1 != nil {
		// Lock lines live in the snooping cache; keep the L1 out of the
		// way of their mutating protocol operations.
		p.l1.Invalidate(line)
	}
	p.node.TestAndSet(line, func(r coherence.Result) { done(r.Acquired) })
}

// LockResult reports a SYNC acquire outcome.
type LockResult struct {
	// Acquired: the lock line arrived and this processor holds the lock.
	Acquired bool
	// MustSpin: the queue path degenerated; spin with TestAndSetAsync.
	MustSpin bool
}

// SyncAcquireAsync joins the distributed queue for the lock line
// containing addr (Section 4).
func (p *Processor) SyncAcquireAsync(addr Addr, done func(LockResult)) {
	line, _ := p.m.LineOf(addr)
	if p.l1 != nil {
		p.l1.Invalidate(line)
	}
	p.node.SyncAcquire(line, func(r coherence.Result) {
		done(LockResult{Acquired: r.Acquired, MustSpin: r.MustSpin})
	})
}

// SyncRelease releases a lock acquired through the SYNC queue, handing
// the line directly to the next waiter if one is queued. It returns false
// when the line is no longer held modified; the caller must then clear
// the lock word with an ordinary store.
func (p *Processor) SyncRelease(addr Addr) bool {
	line, _ := p.m.LineOf(addr)
	return p.node.SyncRelease(line)
}

// WriteBackAsync makes main memory current for the line containing addr.
func (p *Processor) WriteBackAsync(addr Addr, done func()) {
	line, _ := p.m.LineOf(addr)
	p.node.WriteBack(line, func(coherence.Result) { done() })
}

func (p *Processor) fillL1(line cache.Line, data []uint64) {
	if p.l1 == nil {
		return
	}
	p.l1Fills++
	p.l1.Fill(line, data)
}
