package core

import (
	"testing"

	"multicube/internal/memmodel"
)

// TestRecordingMemCapturesHistory drives two processors through the
// recorder and checks the captured history: events in completion order,
// stores carrying their coherent predecessor value, and two words of one
// cache line recorded as distinct locations.
func TestRecordingMemCapturesHistory(t *testing.T) {
	m := MustNew(Config{N: 2, BlockWords: 4})
	h := memmodel.NewHistory()
	p0, p3 := Recorder(m, 0, h), Recorder(m, 3, h)

	const a, b = Addr(0), Addr(1) // two words of line 0
	p0.StoreAsyncObs(a, 11, func(old uint64) {
		if old != 0 {
			t.Errorf("first store saw old=%d, want 0", old)
		}
		p0.StoreAsyncObs(a, 22, func(old uint64) {
			if old != 11 {
				t.Errorf("second store saw old=%d, want 11", old)
			}
			p0.StoreAsyncObs(b, 33, func(uint64) {})
		})
	})
	m.Run()
	p3.LoadAsync(a, func(v uint64) {
		if v != 22 {
			t.Errorf("remote load = %d, want 22", v)
		}
	})
	m.Run()

	want := []memmodel.Event{
		{Proc: 0, Addr: 0, Write: true, Value: 11, Old: 0},
		{Proc: 0, Addr: 0, Write: true, Value: 22, Old: 11},
		{Proc: 0, Addr: 1, Write: true, Value: 33, Old: 0},
		{Proc: 3, Addr: 0, Value: 22},
	}
	if h.Len() != len(want) {
		t.Fatalf("history has %d events, want %d:\n%s", h.Len(), len(want), h)
	}
	for i, e := range h.Events() {
		if e != want[i] {
			t.Errorf("event %d = %v, want %v", i, e, want[i])
		}
	}
	if res := memmodel.Check(h, memmodel.Options{}); res.Verdict != memmodel.VerdictOK {
		t.Fatalf("captured history not SC: %s", res.Reason)
	}
}

// TestStoreAsyncDelegates checks the plain StoreAsync path still works
// and counts stores exactly once through the shared implementation.
func TestStoreAsyncDelegates(t *testing.T) {
	m := MustNew(Config{N: 2})
	p := m.Processor(0)
	done := false
	p.StoreAsync(7, 99, func() { done = true })
	m.Run()
	if !done {
		t.Fatal("StoreAsync completion never fired")
	}
	if got := p.Stats().Stores; got != 1 {
		t.Fatalf("stores counted %d times, want 1", got)
	}
	p.LoadAsync(7, func(v uint64) {
		if v != 99 {
			t.Errorf("load = %d, want 99", v)
		}
	})
	m.Run()
}
