package core

import (
	"fmt"
	"sort"
	"strings"

	"multicube/internal/coherence"
	"multicube/internal/sim"
)

// Metrics aggregates machine-wide activity for reporting.
type Metrics struct {
	Elapsed sim.Time

	// Bus activity.
	RowBusOps, ColBusOps     uint64
	RowBusyTime              sim.Time
	ColBusyTime              sim.Time
	MeanRowUtil, MeanColUtil float64
	MaxRowUtil, MaxColUtil   float64

	// Transactions by type.
	Txns map[coherence.Txn]coherence.TxnStats

	// Cache and reference activity summed over processors.
	Loads, Stores    uint64
	L1Hits           uint64
	L2Hits, L2Misses uint64
	Invalidations    uint64
	Reissues         uint64
	MemoryReads      uint64
	MemoryWrites     uint64
	MemoryReissues   uint64
}

// Metrics computes a snapshot over the elapsed simulated time.
func (m *Machine) Metrics() Metrics {
	elapsed := m.k.Now()
	out := Metrics{Elapsed: elapsed, Txns: m.sys.Stats()}
	n := m.cfg.N
	for i := 0; i < n; i++ {
		rs := m.sys.RowBus(i).Stats()
		cs := m.sys.ColBus(i).Stats()
		out.RowBusOps += rs.Ops
		out.ColBusOps += cs.Ops
		out.RowBusyTime += rs.BusyTime
		out.ColBusyTime += cs.BusyTime
		ru := m.sys.RowBus(i).Utilization(elapsed)
		cu := m.sys.ColBus(i).Utilization(elapsed)
		out.MeanRowUtil += ru / float64(n)
		out.MeanColUtil += cu / float64(n)
		if ru > out.MaxRowUtil {
			out.MaxRowUtil = ru
		}
		if cu > out.MaxColUtil {
			out.MaxColUtil = cu
		}
		mem := m.sys.MemoryAt(i).Store().Stats()
		out.MemoryReads += mem.Reads
		out.MemoryWrites += mem.Writes
		out.MemoryReissues += mem.Reissues
	}
	for _, p := range m.procs {
		ps := p.Stats()
		out.Loads += ps.Loads
		out.Stores += ps.Stores
		out.L1Hits += ps.L1Hits
		cs := p.node.Cache().Stats()
		out.L2Hits += cs.Hits
		out.L2Misses += cs.Misses
		ns := p.node.Stats()
		out.Invalidations += ns.Invalidations
		out.Reissues += ns.Reissues
	}
	return out
}

// String renders the metrics as an aligned report.
func (mt Metrics) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "elapsed              %v\n", mt.Elapsed)
	fmt.Fprintf(&b, "references           %d loads, %d stores (L1 hits %d)\n", mt.Loads, mt.Stores, mt.L1Hits)
	fmt.Fprintf(&b, "snooping cache       %d hits, %d misses\n", mt.L2Hits, mt.L2Misses)
	fmt.Fprintf(&b, "bus operations       %d row, %d column\n", mt.RowBusOps, mt.ColBusOps)
	fmt.Fprintf(&b, "bus utilization      row mean %.3f max %.3f, column mean %.3f max %.3f\n",
		mt.MeanRowUtil, mt.MaxRowUtil, mt.MeanColUtil, mt.MaxColUtil)
	fmt.Fprintf(&b, "invalidations        %d\n", mt.Invalidations)
	fmt.Fprintf(&b, "race reissues        %d node, %d memory\n", mt.Reissues, mt.MemoryReissues)
	fmt.Fprintf(&b, "memory               %d reads, %d writes\n", mt.MemoryReads, mt.MemoryWrites)

	txns := make([]coherence.Txn, 0, len(mt.Txns))
	for t := range mt.Txns {
		txns = append(txns, t)
	}
	sort.Slice(txns, func(i, j int) bool { return txns[i] < txns[j] })
	for _, t := range txns {
		st := mt.Txns[t]
		fmt.Fprintf(&b, "%-12v         %6d completed, mean latency %v, mean bus ops %.2f\n",
			t, st.Count, st.MeanLatency(), st.MeanOps())
	}
	return b.String()
}
