package core

import (
	"fmt"

	"multicube/internal/sim"
)

// Ctx is the execution context handed to a program running on one
// simulated processor: blocking memory operations whose latency is the
// machine's, plus the simulated clock. Programs are ordinary Go functions;
// the kernel interleaves them deterministically.
type Ctx struct {
	proc *sim.Proc
	p    *Processor
}

// Machine returns the machine this program runs on.
func (c *Ctx) Machine() *Machine { return c.p.m }

// Processor returns the processor this program runs on.
func (c *Ctx) Processor() *Processor { return c.p }

// ID returns the processor id.
func (c *Ctx) ID() int { return c.p.id }

// Now returns the current simulated time.
func (c *Ctx) Now() sim.Time { return c.proc.Now() }

// Sleep advances this program's simulated time by d, modeling local
// computation.
func (c *Ctx) Sleep(d sim.Time) { c.proc.Sleep(d) }

// Load reads the word at addr, blocking for the memory system's latency.
func (c *Ctx) Load(addr Addr) uint64 {
	var v uint64
	c.proc.Suspend(func(wake func()) {
		c.p.LoadAsync(addr, func(got uint64) { v = got; wake() })
	})
	return v
}

// Store writes value to addr, blocking until the line is held modified.
func (c *Ctx) Store(addr Addr, value uint64) {
	c.proc.Suspend(func(wake func()) {
		c.p.StoreAsync(addr, value, func() { wake() })
	})
}

// Allocate issues the ALLOCATE hint for the line containing addr and
// blocks until the line is held modified (zero-filled).
func (c *Ctx) Allocate(addr Addr) {
	c.proc.Suspend(func(wake func()) {
		c.p.AllocateAsync(addr, func() { wake() })
	})
}

// TestAndSet performs a test-and-set on the lock line containing addr,
// reporting whether the lock was acquired.
func (c *Ctx) TestAndSet(addr Addr) bool {
	var ok bool
	c.proc.Suspend(func(wake func()) {
		c.p.TestAndSetAsync(addr, func(got bool) { ok = got; wake() })
	})
	return ok
}

// SyncAcquire joins the distributed lock queue for addr's line.
func (c *Ctx) SyncAcquire(addr Addr) LockResult {
	var r LockResult
	c.proc.Suspend(func(wake func()) {
		c.p.SyncAcquireAsync(addr, func(got LockResult) { r = got; wake() })
	})
	return r
}

// SyncRelease releases a queue lock; see Processor.SyncRelease.
func (c *Ctx) SyncRelease(addr Addr) bool { return c.p.SyncRelease(addr) }

// WriteBack pushes the line containing addr back to main memory.
func (c *Ctx) WriteBack(addr Addr) {
	c.proc.Suspend(func(wake func()) {
		c.p.WriteBackAsync(addr, func() { wake() })
	})
}

// Spawn runs fn as a program on processor id. The program starts when the
// machine runs and may block only through its Ctx. Spawned programs
// require the sequential kernel: a Proc's goroutine handoff assumes one
// global event loop, so Spawn panics in parallel mode.
func (m *Machine) Spawn(id int, fn func(*Ctx)) {
	if m.runner != nil {
		panic("core: Spawn is not supported in parallel mode")
	}
	if id < 0 || id >= len(m.procs) {
		panic(fmt.Sprintf("core: spawn on unknown processor %d", id))
	}
	p := m.procs[id]
	m.k.Spawn(fmt.Sprintf("cpu%d", id), func(proc *sim.Proc) {
		fn(&Ctx{proc: proc, p: p})
	})
}

// SpawnAll runs fn on every processor, passing the processor id.
func (m *Machine) SpawnAll(fn func(*Ctx)) {
	for id := range m.procs {
		m.Spawn(id, fn)
	}
}
