package core_test

import (
	"fmt"
	"hash/fnv"
	"testing"

	"multicube/internal/core"
	"multicube/internal/sim"
	"multicube/internal/topology"
	"multicube/internal/workload"

	"multicube/internal/coherence"
)

// runSeeded drives one seeded 4×4 workload on a fresh machine, with an
// optional chooser installed, and returns a digest of every bus
// operation in issue order plus the full metrics rendering. Two byte-
// identical digests mean two byte-identical executions.
func runSeeded(t *testing.T, ch sim.Chooser) (uint64, string) {
	t.Helper()
	m := core.MustNew(core.Config{N: 4, BlockWords: 4})
	if ch != nil {
		m.System().SetChooser(ch)
	}
	h := fnv.New64a()
	m.System().OpLog = func(dim coherence.Dim, issuer topology.Coord, op *coherence.Op) {
		fmt.Fprintf(h, "%v %v %v @%d\n", dim, issuer, op, m.Kernel().Now())
	}
	rep := workload.Run(m, workload.GenConfig{Seed: 42, Requests: 200, PShared: 0.6, PWrite: 0.4})
	if errs := m.CheckInvariants(); len(errs) > 0 {
		t.Fatalf("invariants violated: %v", errs[0])
	}
	digest := h.Sum64()
	summary := fmt.Sprintf("%s\nreport %+v\n", m.Metrics(), rep)
	return digest, summary
}

// TestSeededRunsByteIdentical is the determinism regression: the same
// seeded workload run twice must produce the identical bus-operation
// sequence and identical metrics, byte for byte.
func TestSeededRunsByteIdentical(t *testing.T) {
	d1, s1 := runSeeded(t, nil)
	d2, s2 := runSeeded(t, nil)
	if d1 != d2 {
		t.Fatalf("op-log digests differ across identical seeded runs: %#x vs %#x", d1, d2)
	}
	if s1 != s2 {
		t.Fatalf("metrics differ across identical seeded runs:\n--- run 1\n%s--- run 2\n%s", s1, s2)
	}
}

// TestDefaultChooserReproducesSchedules guards the model checker's
// choice-point seam: installing the DefaultChooser (which picks
// candidate 0 everywhere) must reproduce the nil-chooser schedules
// exactly — the seam may add choice points but must not move them.
func TestDefaultChooserReproducesSchedules(t *testing.T) {
	dNil, sNil := runSeeded(t, nil)
	dDef, sDef := runSeeded(t, sim.DefaultChooser{})
	if dNil != dDef {
		t.Fatalf("DefaultChooser changed the bus-operation sequence: %#x vs %#x", dNil, dDef)
	}
	if sNil != sDef {
		t.Fatalf("DefaultChooser changed the metrics:\n--- nil\n%s--- default\n%s", sNil, sDef)
	}
}
