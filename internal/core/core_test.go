package core

import (
	"fmt"
	"testing"

	"multicube/internal/coherence"
	"multicube/internal/sim"
)

func testMachine(t *testing.T, cfg Config) *Machine {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func quiet(t *testing.T, m *Machine) {
	t.Helper()
	for _, err := range m.CheckInvariants() {
		t.Errorf("invariant: %v", err)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{N: 1}); err == nil {
		t.Error("N=1 accepted")
	}
	if _, err := New(Config{N: 4, BlockWords: 4, L1Lines: 3, L1Assoc: 2}); err == nil {
		t.Error("bad L1 shape accepted")
	}
	m := testMachine(t, Config{N: 4})
	if m.Processors() != 16 {
		t.Errorf("Processors() = %d", m.Processors())
	}
	if m.BlockWords() != 16 {
		t.Errorf("default block words = %d", m.BlockWords())
	}
}

func TestLineOf(t *testing.T) {
	m := testMachine(t, Config{N: 2, BlockWords: 8})
	line, off := m.LineOf(19)
	if line != 2 || off != 3 {
		t.Errorf("LineOf(19) = (%d,%d), want (2,3)", line, off)
	}
}

func TestSeedAndReadMemory(t *testing.T) {
	m := testMachine(t, Config{N: 2, BlockWords: 4})
	// A write spanning two lines (and so two home columns).
	m.SeedMemory(2, []uint64{10, 20, 30, 40})
	for i, want := range []uint64{10, 20, 30, 40} {
		if got := m.ReadMemory(Addr(2 + i)); got != want {
			t.Errorf("mem[%d] = %d, want %d", 2+i, got, want)
		}
	}
	if got := m.ReadCoherent(3); got != 20 {
		t.Errorf("ReadCoherent(3) = %d, want 20", got)
	}
}

func TestProgramLoadStore(t *testing.T) {
	m := testMachine(t, Config{N: 2, BlockWords: 4})
	m.SeedMemory(0, []uint64{1, 2, 3, 4})
	var got uint64
	m.Spawn(0, func(c *Ctx) {
		got = c.Load(1)
		c.Store(100, got*10)
	})
	m.Run()
	if got != 2 {
		t.Errorf("load = %d, want 2", got)
	}
	if v := m.ReadCoherent(100); v != 20 {
		t.Errorf("stored value = %d, want 20", v)
	}
	quiet(t, m)
}

func TestProducerConsumerThroughSharedMemory(t *testing.T) {
	m := testMachine(t, Config{N: 3, BlockWords: 4})
	const flagAddr, dataAddr = 0, 64
	var got uint64
	m.Spawn(0, func(c *Ctx) {
		c.Store(dataAddr, 12345)
		c.Store(flagAddr, 1)
	})
	m.Spawn(8, func(c *Ctx) { // opposite corner of the grid
		for c.Load(flagAddr) == 0 {
			c.Sleep(500 * sim.Nanosecond)
		}
		got = c.Load(dataAddr)
	})
	m.Run()
	if got != 12345 {
		t.Fatalf("consumer read %d, want 12345", got)
	}
	quiet(t, m)
}

func TestL1FiltersRepeatLoads(t *testing.T) {
	m := testMachine(t, Config{N: 2, BlockWords: 4, L1Lines: 8, L1Assoc: 2})
	m.SeedMemory(0, []uint64{7})
	m.Spawn(0, func(c *Ctx) {
		for i := 0; i < 10; i++ {
			if v := c.Load(0); v != 7 {
				t.Errorf("load %d = %d, want 7", i, v)
			}
		}
	})
	m.Run()
	st := m.Processor(0).Stats()
	if st.L1Hits != 9 {
		t.Errorf("L1 hits = %d, want 9", st.L1Hits)
	}
	// Only one coherence transaction should have happened.
	if txns := m.Metrics().Txns[coherence.READ]; txns.Count != 1 {
		t.Errorf("READ transactions = %d, want 1", txns.Count)
	}
	quiet(t, m)
}

func TestL1InvalidatedByRemoteWrite(t *testing.T) {
	m := testMachine(t, Config{N: 2, BlockWords: 4, L1Lines: 8, L1Assoc: 2})
	m.SeedMemory(0, []uint64{5})
	var first, second uint64
	m.Spawn(0, func(c *Ctx) {
		first = c.Load(0)
		c.Sleep(100 * sim.Microsecond)
		second = c.Load(0) // must see the remote write, not the stale L1 copy
	})
	m.Spawn(3, func(c *Ctx) {
		c.Sleep(20 * sim.Microsecond)
		c.Store(0, 99)
	})
	m.Run()
	if first != 5 || second != 99 {
		t.Fatalf("loads = %d, %d; want 5, 99", first, second)
	}
	quiet(t, m)
}

func TestWriteThroughKeepsL1Subset(t *testing.T) {
	m := testMachine(t, Config{N: 2, BlockWords: 4, L1Lines: 4, L1Assoc: 2})
	m.SpawnAll(func(c *Ctx) {
		base := Addr(c.ID() * 64)
		for i := Addr(0); i < 12; i++ {
			c.Store(base+i*4, uint64(c.ID()))
			c.Load((base + i*4) % 96) // overlap with neighbours
		}
	})
	m.Run()
	quiet(t, m) // includes the subset check
}

func TestCtxTASAndRelease(t *testing.T) {
	m := testMachine(t, Config{N: 2, BlockWords: 4})
	counterAddr := Addr(3) // word 3 of the lock line: same line as the lock
	var sum uint64
	done := 0
	for id := 0; id < 4; id++ {
		m.Spawn(id, func(c *Ctx) {
			for i := 0; i < 5; i++ {
				for !c.TestAndSet(0) {
					c.Sleep(1 * sim.Microsecond)
				}
				v := c.Load(counterAddr)
				c.Store(counterAddr, v+1)
				c.Store(0, 0) // release: clear the lock word
				c.Sleep(500 * sim.Nanosecond)
			}
			done++
		})
	}
	m.Run()
	if done != 4 {
		t.Fatalf("%d programs finished, want 4", done)
	}
	sum = m.ReadCoherent(counterAddr)
	if sum != 20 {
		t.Fatalf("counter = %d, want 20", sum)
	}
	quiet(t, m)
}

func TestCtxSyncQueueLock(t *testing.T) {
	m := testMachine(t, Config{N: 3, BlockWords: 4})
	const lockAddr, counterAddr = 0, 2 // counter shares the lock line (word 2)
	finished := 0
	m.SpawnAll(func(c *Ctx) {
		for i := 0; i < 3; i++ {
			r := c.SyncAcquire(lockAddr)
			for !r.Acquired {
				if !r.MustSpin {
					t.Errorf("cpu %d: acquire neither acquired nor spin", c.ID())
					return
				}
				for !c.TestAndSet(lockAddr) {
					c.Sleep(1 * sim.Microsecond)
				}
				r.Acquired = true
			}
			v := c.Load(counterAddr)
			c.Store(counterAddr, v+1)
			if !c.SyncRelease(lockAddr) {
				c.Store(lockAddr, 0) // degenerate software release
			}
			c.Sleep(200 * sim.Nanosecond)
		}
		finished++
	})
	m.Run()
	if finished != 9 {
		t.Fatalf("%d programs finished, want 9", finished)
	}
	if got := m.ReadCoherent(counterAddr); got != 27 {
		t.Fatalf("counter = %d, want 27", got)
	}
	quiet(t, m)
}

func TestMetricsRender(t *testing.T) {
	m := testMachine(t, Config{N: 2, BlockWords: 4})
	m.Spawn(0, func(c *Ctx) {
		c.Store(0, 1)
		c.Load(64)
	})
	m.Run()
	mt := m.Metrics()
	if mt.Loads != 1 || mt.Stores != 1 {
		t.Errorf("metrics refs = %d loads %d stores", mt.Loads, mt.Stores)
	}
	s := mt.String()
	for _, want := range []string{"elapsed", "bus operations", "READ"} {
		if !contains(s, want) {
			t.Errorf("metrics report missing %q:\n%s", want, s)
		}
	}
}

func TestAllocateProgram(t *testing.T) {
	m := testMachine(t, Config{N: 2, BlockWords: 4})
	m.SeedMemory(0, []uint64{9, 9, 9, 9})
	m.Spawn(0, func(c *Ctx) {
		c.Allocate(0)
		for i := Addr(0); i < 4; i++ {
			c.Store(i, uint64(i+1))
		}
	})
	m.Run()
	for i := Addr(0); i < 4; i++ {
		if got := m.ReadCoherent(i); got != uint64(i+1) {
			t.Errorf("word %d = %d, want %d", i, got, i+1)
		}
	}
	quiet(t, m)
}

func TestDeterministicPrograms(t *testing.T) {
	run := func() (sim.Time, string) {
		m := testMachine(t, Config{N: 3, BlockWords: 4, L1Lines: 4, L1Assoc: 2})
		m.SpawnAll(func(c *Ctx) {
			for i := 0; i < 10; i++ {
				a := Addr((c.ID()*7 + i*13) % 40)
				if i%2 == 0 {
					c.Store(a, uint64(c.ID()*100+i))
				} else {
					c.Load(a)
				}
			}
		})
		end := m.Run()
		fp := ""
		for a := Addr(0); a < 40; a++ {
			fp += fmt.Sprint(m.ReadCoherent(a), ",")
		}
		return end, fp
	}
	t1, f1 := run()
	t2, f2 := run()
	if t1 != t2 || f1 != f2 {
		t.Fatalf("nondeterministic machine runs: %v vs %v", t1, t2)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		func() bool {
			for i := 0; i+len(sub) <= len(s); i++ {
				if s[i:i+len(sub)] == sub {
					return true
				}
			}
			return false
		}())
}
