package core

import (
	"strings"
	"testing"
)

// TestInclusionViolationDetected proves the L1⊆L2 discipline is enforced
// by the coherence invariant suite itself (New registers every processor
// cache via coherence.RegisterInclusion): evicting a line from the
// snooping cache behind the machine's back, while the L1 still holds it,
// must surface as an invariant violation.
func TestInclusionViolationDetected(t *testing.T) {
	m := testMachine(t, Config{N: 2, BlockWords: 4, L1Lines: 8, L1Assoc: 2})
	m.SeedMemory(0, []uint64{1})
	m.Spawn(0, func(c *Ctx) { c.Load(0) })
	m.Run()
	if errs := m.CheckInvariants(); len(errs) != 0 {
		t.Fatalf("clean machine: unexpected violations %v", errs)
	}
	m.Processor(0).node.Cache().Drop(0)
	errs := m.CheckInvariants()
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), "inclusion violated") {
		t.Fatalf("got %v, want exactly one inclusion violation", errs)
	}
	if !strings.Contains(errs[0].Error(), "processor 0") {
		t.Errorf("violation %v does not name processor 0", errs[0])
	}
}
