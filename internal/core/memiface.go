package core

import "multicube/internal/memmodel"

// MemoryIface is the word-level asynchronous memory interface a program
// drives: the subset of Processor that reads and writes observable
// values. Both Processor and RecordingMem implement it, so a workload
// can be run bare or under history capture without changing its code.
type MemoryIface interface {
	LoadAsync(addr Addr, done func(uint64))
	StoreAsyncObs(addr Addr, value uint64, done func(old uint64))
}

// RecordingMem wraps a MemoryIface and appends every completed load and
// store to a memmodel.History, tagged with the wrapped processor's id.
// Events are appended inside the completion callbacks, which run on the
// single-threaded simulation kernel, so the history's order is the
// machine's completion order — exactly the observation order the
// sequential-consistency checker expects.
//
// Addresses are recorded as word addresses, so two words in one cache
// line are distinct memory-model locations (the protocol keeps the line
// coherent; the checker reasons per word).
type RecordingMem struct {
	P    MemoryIface
	Proc int
	H    *memmodel.History
}

var _ MemoryIface = (*RecordingMem)(nil)

// Recorder wraps processor p of machine m so its operations record into h.
func Recorder(m *Machine, p int, h *memmodel.History) *RecordingMem {
	return &RecordingMem{P: m.Processor(p), Proc: p, H: h}
}

// LoadAsync reads through to the wrapped interface and records the
// observed value on completion.
func (r *RecordingMem) LoadAsync(addr Addr, done func(uint64)) {
	r.P.LoadAsync(addr, func(v uint64) {
		r.H.Read(r.Proc, uint64(addr), v)
		done(v)
	})
}

// StoreAsyncObs writes through to the wrapped interface and records the
// store — with its coherent predecessor value — on completion.
func (r *RecordingMem) StoreAsyncObs(addr Addr, value uint64, done func(old uint64)) {
	r.P.StoreAsyncObs(addr, value, func(old uint64) {
		r.H.Write(r.Proc, uint64(addr), old, value)
		done(old)
	})
}
