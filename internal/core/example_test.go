package core_test

import (
	"fmt"

	"multicube/internal/core"
	"multicube/internal/sim"
)

// ExampleMachine_Spawn shows the basic programming model: ordinary Go
// functions running as programs on the simulated processors, exchanging
// data through the coherent shared memory.
func ExampleMachine_Spawn() {
	m := core.MustNew(core.Config{N: 2, BlockWords: 8})

	m.Spawn(0, func(c *core.Ctx) {
		c.Store(100, 7)
		c.Store(0, 1) // flag
	})
	m.Spawn(3, func(c *core.Ctx) {
		for c.Load(0) == 0 {
			c.Sleep(1 * sim.Microsecond)
		}
		fmt.Println("value:", c.Load(100))
	})
	m.Run()
	// Output: value: 7
}

// ExampleMachine_SeedMemory shows loading an initial image and reading
// coherent state back without simulated accesses.
func ExampleMachine_SeedMemory() {
	m := core.MustNew(core.Config{N: 2, BlockWords: 4})
	m.SeedMemory(0, []uint64{10, 20, 30})
	fmt.Println(m.ReadCoherent(1))
	// Output: 20
}

// ExampleCtx_TestAndSet shows the remote test-and-set transaction used as
// a spin lock protecting a counter on the same line.
func ExampleCtx_TestAndSet() {
	m := core.MustNew(core.Config{N: 2, BlockWords: 8})
	for id := 0; id < 4; id++ {
		m.Spawn(id, func(c *core.Ctx) {
			for i := 0; i < 3; i++ {
				for !c.TestAndSet(0) {
					c.Sleep(500 * sim.Nanosecond)
				}
				c.Store(4, c.Load(4)+1)
				c.Store(0, 0)
			}
		})
	}
	m.Run()
	fmt.Println("count:", m.ReadCoherent(4))
	// Output: count: 12
}

// ExampleCtx_SyncAcquire shows the SYNC distributed queue lock: waiters
// receive the lock line by direct cache-to-cache handoff in FIFO order.
func ExampleCtx_SyncAcquire() {
	m := core.MustNew(core.Config{N: 2, BlockWords: 8})
	for id := 0; id < 4; id++ {
		m.Spawn(id, func(c *core.Ctx) {
			r := c.SyncAcquire(0)
			for !r.Acquired {
				for !c.TestAndSet(0) {
					c.Sleep(1 * sim.Microsecond)
				}
				r.Acquired = true
			}
			c.Store(5, c.Load(5)+10)
			if !c.SyncRelease(0) {
				c.Store(0, 0)
			}
		})
	}
	m.Run()
	fmt.Println("total:", m.ReadCoherent(5))
	// Output: total: 40
}
