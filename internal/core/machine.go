// Package core assembles the complete Wisconsin Multicube machine and is
// the primary public API of this library: an n×n grid of processors, each
// with a small write-through processor cache (SRAM) in front of a large
// snooping cache (DRAM), connected by row and column buses running the
// cache consistency protocol of Appendix A, with interleaved main memory
// on the column buses.
//
// Programs drive the machine two ways:
//
//   - Asynchronously, through Processor's LoadAsync/StoreAsync and the
//     synchronization calls — the style used by workload generators.
//   - As ordinary Go functions, through Machine.Spawn: each function runs
//     as a simulated process whose Load/Store/lock calls advance simulated
//     time. The examples in this repository are written this way.
//
// The programmer's view matches the paper's: a single coherent shared
// memory with no notion of geographical locality.
package core

import (
	"fmt"

	"multicube/internal/bus"
	"multicube/internal/cache"
	"multicube/internal/coherence"
	"multicube/internal/memory"
	"multicube/internal/sim"
	"multicube/internal/topology"
)

// Addr is a word address in the shared memory.
type Addr uint64

// Config describes a machine. The zero value of most fields selects the
// paper's defaults (16-word blocks, unbounded snooping caches and tables,
// the Figure 2 timing constants).
type Config struct {
	// N is the number of processors per bus; the machine has N×N
	// processors (the paper scales n to about 32 for 1,024 processors).
	N int
	// BlockWords is the coherency/transfer block size in bus words.
	BlockWords int
	// L1Lines and L1Assoc size the processor cache. Zero L1Lines
	// disables the L1 model entirely (every reference goes to the
	// snooping cache), which is the right configuration for protocol
	// experiments.
	L1Lines int
	L1Assoc int
	// CacheLines, CacheAssoc, MLTEntries, MLTAssoc size the snooping
	// cache and modified line table; zero means unbounded.
	CacheLines int
	CacheAssoc int
	MLTEntries int
	MLTAssoc   int
	// Timing carries the bus and device latencies.
	Timing coherence.Timing
	// Arbitration selects the bus service discipline (FIFO default; see
	// bus.Arbitration). The paper's model is FCFS; the alternatives
	// exist for the service-discipline ablation.
	Arbitration bus.Arbitration
	// Snarf enables the retained-tag snarf optimization.
	Snarf bool
	// Parallel, when positive, runs the timed simulation on the
	// conservative parallel engine with that many worker goroutines: the
	// machine is partitioned by column (column bus + memory module +
	// nodes per partition; row buses are the cross-partition seam), and
	// execution proceeds in lookahead-bounded windows synchronized at
	// deterministic boundaries. Results — final time, memory image,
	// metrics — are identical to sequential mode. Zero (the default)
	// keeps the classic single-threaded kernel, byte-identical to
	// previous releases. Parallel mode is incompatible with choosers,
	// model checking, fault injection, observers, OpLog and Spawn-based
	// programs; Machine.Run rejects none of these itself, but the
	// coherence hooks stay nil and Spawn panics.
	Parallel int
}

// Machine is one simulated Wisconsin Multicube.
type Machine struct {
	k      *sim.Kernel
	sys    *coherence.System
	procs  []*Processor
	cfg    Config
	runner *sim.Runner // non-nil in parallel mode
}

// New builds a machine.
func New(cfg Config) (*Machine, error) {
	k := sim.NewKernel()
	ccfg := coherence.Config{
		N:           cfg.N,
		BlockWords:  cfg.BlockWords,
		CacheLines:  cfg.CacheLines,
		CacheAssoc:  cfg.CacheAssoc,
		MLTEntries:  cfg.MLTEntries,
		MLTAssoc:    cfg.MLTAssoc,
		Timing:      cfg.Timing,
		Arbitration: cfg.Arbitration,
		Snarf:       cfg.Snarf,
	}
	var runner *sim.Runner
	if cfg.Parallel > 0 {
		timing := cfg.Timing
		if timing == (coherence.Timing{}) {
			timing = coherence.DefaultTiming()
		}
		if timing.AddrWords == 0 {
			timing.AddrWords = 1
		}
		// The conservative lookahead: a row-bus request issued at t
		// occupies the bus for at least one address cycle, so no other
		// partition can observe it before t + AddrWords×WordTime.
		lookahead := sim.Time(timing.AddrWords) * timing.WordTime
		parts := make([]*sim.Kernel, cfg.N)
		for i := range parts {
			parts[i] = sim.NewKernel()
		}
		runner = sim.NewRunner(k, parts, lookahead, cfg.Parallel)
		ccfg.ColKernels = parts
		ccfg.Par = runner
	}
	sys, err := coherence.NewSystem(k, ccfg)
	if err != nil {
		return nil, err
	}
	m := &Machine{k: k, sys: sys, cfg: cfg, runner: runner}
	m.cfg.BlockWords = sys.Config().BlockWords
	n := cfg.N
	m.procs = make([]*Processor, n*n)
	grid := sys.Grid()
	for id := range m.procs {
		coord := grid.Coord(topology.NodeID(id))
		p := &Processor{m: m, id: id, node: sys.Node(coord)}
		if cfg.L1Lines > 0 {
			l1, err := cache.NewProcessorCache(cfg.L1Lines, cfg.L1Assoc, m.cfg.BlockWords)
			if err != nil {
				return nil, fmt.Errorf("core: processor %d: %w", id, err)
			}
			p.l1 = l1
			p.node.OnInvalidate = func(line cache.Line) { l1.Invalidate(line) }
			sys.RegisterInclusion(fmt.Sprintf("processor %d", id), coord, l1.Lines)
		}
		m.procs[id] = p
	}
	return m, nil
}

// MustNew is New but panics on error.
func MustNew(cfg Config) *Machine {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Processors returns the total processor count.
func (m *Machine) Processors() int { return len(m.procs) }

// Processor returns the processor with linearized id (row-major).
func (m *Machine) Processor(id int) *Processor { return m.procs[id] }

// Kernel exposes the simulation kernel for scheduling and clock access.
func (m *Machine) Kernel() *sim.Kernel { return m.k }

// System exposes the coherence layer for metrics and invariant checks.
func (m *Machine) System() *coherence.System { return m.sys }

// Config returns the machine configuration with defaults filled.
func (m *Machine) Config() Config { return m.cfg }

// BlockWords returns the coherency block size in words.
func (m *Machine) BlockWords() int { return m.cfg.BlockWords }

// LineOf returns the coherency block containing addr and the word offset
// within it.
func (m *Machine) LineOf(addr Addr) (cache.Line, int) {
	bw := Addr(m.cfg.BlockWords)
	return cache.Line(addr / bw), int(addr % bw)
}

// Run drains the machine: all spawned programs and outstanding requests
// complete. It returns the final simulated time. In parallel mode this
// is RunCtx with no cancellation.
func (m *Machine) Run() sim.Time { return m.RunStop(nil) }

// RunStop is Run with a cooperative stop check, polled between kernel
// batches (sequential) or synchronization phases (parallel).
func (m *Machine) RunStop(stop func() bool) sim.Time {
	if m.runner != nil {
		return m.runner.Run(stop)
	}
	for {
		if stop != nil && stop() {
			return m.k.Now()
		}
		for i := 0; i < 4096; i++ {
			if !m.k.Step() {
				return m.k.Now()
			}
		}
	}
}

// Runner exposes the parallel runner, or nil in sequential mode.
func (m *Machine) Runner() *sim.Runner { return m.runner }

// Parallel reports whether the machine runs on the parallel engine.
func (m *Machine) Parallel() bool { return m.runner != nil }

// ProcKernel returns the kernel processor id's workload driver must
// schedule on: the processor's column-partition kernel in parallel
// mode, else the machine kernel.
func (m *Machine) ProcKernel(id int) *sim.Kernel {
	if m.runner == nil {
		return m.k
	}
	return m.runner.Part(m.procs[id].Coord().Col)
}

// Executed reports total events dispatched across all kernels.
func (m *Machine) Executed() uint64 {
	if m.runner != nil {
		return m.runner.Executed()
	}
	return m.k.Executed()
}

// RunFor advances simulated time by d (sequential mode only).
func (m *Machine) RunFor(d sim.Time) {
	if m.runner != nil {
		panic("core: RunFor is not supported in parallel mode")
	}
	m.k.RunFor(d)
}

// SeedMemory writes words directly into main memory before (or between)
// runs, bypassing the protocol — the moral equivalent of loading an
// initial image. It must not be used for lines currently held modified.
func (m *Machine) SeedMemory(addr Addr, words []uint64) {
	for len(words) > 0 {
		line, off := m.LineOf(addr)
		mem := m.sys.MemoryAt(m.sys.Grid().HomeColumn(topology.LineID(line))).Store()
		buf := mem.Peek(memory.Line(line))
		k := copy(buf[off:], words)
		mem.Write(memory.Line(line), buf)
		words = words[k:]
		addr += Addr(k)
	}
}

// ReadMemory returns the word at addr as main memory sees it (possibly
// stale if a cache holds the line modified).
func (m *Machine) ReadMemory(addr Addr) uint64 {
	line, off := m.LineOf(addr)
	mem := m.sys.MemoryAt(m.sys.Grid().HomeColumn(topology.LineID(line))).Store()
	return mem.Peek(memory.Line(line))[off]
}

// ReadCoherent returns the current coherent value of addr: the modified
// copy if one exists, else memory. It is an oracle for tests and tools,
// not a simulated access.
func (m *Machine) ReadCoherent(addr Addr) uint64 {
	line, off := m.LineOf(addr)
	n := m.cfg.N
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			nd := m.sys.Node(topology.Coord{Row: r, Col: c})
			if e, ok := nd.Cache().Lookup(line); ok && e.State == coherence.Modified {
				return e.Data[off]
			}
		}
	}
	return m.ReadMemory(addr)
}

// CheckInvariants runs the coherence oracle; meaningful only at
// quiescence. The L1⊆L2 inclusion discipline is enforced there too: New
// registers every processor cache with coherence.RegisterInclusion, so
// machine layers cannot forget the check.
func (m *Machine) CheckInvariants() []error {
	return coherence.CheckInvariants(m.sys)
}
