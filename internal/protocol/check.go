package protocol

import (
	"fmt"

	"multicube/internal/cache"
	"multicube/internal/coherence"
)

// This file is the static well-formedness checker: it proves, per event
// group, that every realizable (state, environment) pair enables exactly
// one rule, and that every rule is enabled somewhere. "Realizable" is
// defined by consistent, a conservative predicate encoding invariants the
// atoms inherit from the machine (an originator is on its own row and
// column; a poisoned pending transaction is a pending READ; a SYNC reply
// accepted by its originator finds the reserved copy the initiation
// procedure installed). The predicate is deliberately applied only to the
// atoms a group actually distinguishes — constraints mentioning atoms
// outside that mask are skipped, which over-approximates the realizable
// set and keeps the check sound: a spurious "unreal" conflict can appear,
// but a real conflict can never hide.

// consistent reports whether (st, env) restricted to mask is realizable
// for the given event. Constraints whose atoms are not all in mask are
// skipped.
func consistent(ev Event, st cache.State, env Env, mask Env) bool {
	in := func(atoms ...Atom) bool {
		for _, a := range atoms {
			if mask&(1<<a) == 0 {
				return false
			}
		}
		return true
	}
	has := env.Has

	// A node is the originator iff it shares both the row and the column.
	if in(AtomOrigin, AtomSameRow) && has(AtomOrigin) && !has(AtomSameRow) {
		return false
	}
	if in(AtomOrigin, AtomSameCol) && has(AtomOrigin) && !has(AtomSameCol) {
		return false
	}
	if in(AtomOrigin, AtomSameRow, AtomSameCol) &&
		has(AtomSameRow) && has(AtomSameCol) && !has(AtomOrigin) {
		return false
	}
	// The XFER target is on its own column.
	if in(AtomTargetSelf, AtomTargetSameCol) && has(AtomTargetSelf) && !has(AtomTargetSameCol) {
		return false
	}
	// The pend-derived atoms refine PendMatch.
	if in(AtomPendPoisoned, AtomPendMatch) && has(AtomPendPoisoned) && !has(AtomPendMatch) {
		return false
	}
	if in(AtomPendQueued, AtomPendMatch) && has(AtomPendQueued) && !has(AtomPendMatch) {
		return false
	}
	// Only a pending READ is ever poisoned; only a pending SYNC is ever
	// queued — and PendMatch implies the pending transaction equals the
	// event's.
	if in(AtomPendPoisoned) && has(AtomPendPoisoned) && ev.Txn != coherence.READ {
		return false
	}
	if in(AtomPendQueued) && has(AtomPendQueued) && ev.Txn != coherence.SYNC {
		return false
	}
	// QueuedTail is "pending SYNC for this line, admitted": for a SYNC
	// event it coincides with PendMatch∧PendQueued; for any other event a
	// queued tail's pending transaction cannot match.
	if ev.Txn == coherence.SYNC && in(AtomQueuedTail, AtomPendMatch, AtomPendQueued) &&
		has(AtomQueuedTail) != (has(AtomPendMatch) && has(AtomPendQueued)) {
		return false
	}
	if ev.Txn != coherence.SYNC && in(AtomQueuedTail, AtomPendMatch) &&
		has(AtomQueuedTail) && has(AtomPendMatch) {
		return false
	}
	// Snarf captures only READ data into a retained invalid tag.
	if in(AtomSnarfable) && has(AtomSnarfable) && (st != coherence.Invalid || ev.Txn != coherence.READ) {
		return false
	}
	// A SYNC reply accepted by its originator finds the reserved copy the
	// initiation procedure installed (SyncAcquire writes the line reserved
	// before issuing the request; the copy is pinned until handoff or
	// failure cleanup).
	if ev.Txn == coherence.SYNC && ev.Flags.Has(coherence.REPLY) &&
		in(AtomOrigin, AtomPendMatch) && has(AtomOrigin) && has(AtomPendMatch) &&
		st != coherence.Reserved {
		return false
	}
	// An XFER handoff names a queue member: the target holds a reserved
	// copy with a matching pending SYNC (the implementation panics
	// otherwise — such a state is unobservable).
	if ev.Flags.Has(coherence.XFER) && in(AtomTargetSelf) && has(AtomTargetSelf) {
		if st != coherence.Reserved {
			return false
		}
		if in(AtomPendMatch) && !has(AtomPendMatch) {
			return false
		}
	}
	return true
}

// maskBits enumerates the atoms present in mask.
func maskBits(mask Env) []Atom {
	var atoms []Atom
	for a := Atom(0); a < numAtoms; a++ {
		if mask&(1<<a) != 0 {
			atoms = append(atoms, a)
		}
	}
	return atoms
}

// envsOf expands an index over mask's atoms into an Env.
func envOf(atoms []Atom, idx int) Env {
	var env Env
	for i, a := range atoms {
		if idx&(1<<i) != 0 {
			env |= 1 << a
		}
	}
	return env
}

var allStates = []cache.State{coherence.Invalid, coherence.Shared, coherence.Modified, coherence.Reserved}

// Check verifies the table's static well-formedness:
//
//  1. rule names are unique and non-empty;
//  2. every rule is satisfiable — enabled by some realizable
//     (state, environment) of its group;
//  3. per group, every realizable (state, environment) enables exactly
//     one rule: no overlaps (determinism) and no holes (totality over
//     the states the group's rules claim).
//
// It returns all violations, not just the first.
func (t *Table) Check() []error {
	var errs []error
	seen := make(map[string]*Rule, len(t.rules))
	for _, r := range t.rules {
		if r.Name == "" {
			errs = append(errs, fmt.Errorf("rule for %v has no name", r.Event))
			continue
		}
		if prev, dup := seen[r.Name]; dup {
			errs = append(errs, fmt.Errorf("duplicate rule name %q (%v and %v)", r.Name, prev.Event, r.Event))
			continue
		}
		seen[r.Name] = r
	}

	for _, ev := range t.Events() {
		group := t.groups[ev]
		var mask Env
		var states StateSet
		for _, r := range group {
			mask |= r.Guard.Care
			states |= r.States
		}
		atoms := maskBits(mask)
		satisfied := make(map[*Rule]bool, len(group))
		for _, st := range allStates {
			if !states.Has(st) {
				// No rule in the group claims this state: the event cannot
				// be observed there (or the table is wrong — conformance
				// will say). Totality is only demanded over claimed states.
				continue
			}
			for idx := 0; idx < 1<<len(atoms); idx++ {
				env := envOf(atoms, idx)
				if !consistent(ev, st, env, mask) {
					continue
				}
				var matched []*Rule
				for _, r := range group {
					if r.States.Has(st) && r.Guard.Matches(env) {
						matched = append(matched, r)
						satisfied[r] = true
					}
				}
				if len(matched) > 1 {
					names := ""
					for _, r := range matched {
						if names != "" {
							names += ", "
						}
						names += r.Name
					}
					errs = append(errs, fmt.Errorf("%v: state %v env %v enables %d rules: %s",
						ev, st, env, len(matched), names))
				}
				if len(matched) == 0 {
					errs = append(errs, fmt.Errorf("%v: state %v env %v enables no rule", ev, st, env))
				}
			}
		}
		for _, r := range group {
			if !satisfied[r] {
				errs = append(errs, fmt.Errorf("rule %s is unsatisfiable: no realizable (state, env) enables it", r.Name))
			}
		}
	}
	return errs
}
