package protocol

import (
	"fmt"

	"multicube/internal/cache"
	"multicube/internal/coherence"
)

// This file is the Wisconsin Multicube protocol, Appendix A plus the
// Section 4 synchronization transactions, written as data. Every rule
// corresponds to one arm of the hand-written handlers in
// internal/coherence (handlers.go, sync.go, node.go); the Doc strings
// cite the protocol clause. The conformance harness replays real
// controller transitions against this table, so any drift between the
// two encodings — a forgotten forward, a wrong next state, a missing
// table update — is a test failure, not a latent bug.

const (
	rowBus = coherence.Row
	colBus = coherence.Col

	rd = coherence.READ
	rm = coherence.READMOD
	wb = coherence.WRITEBACK
	ts = coherence.TAS
	sy = coherence.SYNC

	fREQ  = coherence.REQUEST
	fRPL  = coherence.REPLY
	fINS  = coherence.INSERT
	fREM  = coherence.REMOVE
	fUPD  = coherence.UPDATE
	fPUR  = coherence.PURGE
	fNOP  = coherence.NOPURGE
	fMEM  = coherence.MEMORY
	fFAIL = coherence.FAIL
	fXFER = coherence.XFER
	fQD   = coherence.QUEUED

	inv = coherence.Invalid
	shd = coherence.Shared
	mod = coherence.Modified
	res = coherence.Reserved
)

func ev(d coherence.Dim, t coherence.Txn, f coherence.Flags) Event {
	return Event{Dim: d, Txn: t, Flags: f}
}

func act(d coherence.Dim, t coherence.Txn, f coherence.Flags) ActionSpec {
	return ActionSpec{Dim: d, Txn: t, Flags: f}
}

var stay = Next{Kind: NextSame}
var wild = Next{Kind: NextAny}

func to(s cache.State) Next { return Next{Kind: NextTo, State: s} }

func mk(name, doc string, e Event, states StateSet, g Guard, next Next, actions ...ActionSpec) *Rule {
	return &Rule{Name: name, Doc: doc, Event: e, States: states, Guard: g, Next: next, Actions: actions}
}

func (r *Rule) mlt(m MLTNext) *Rule          { r.MLT = m; return r }
func (r *Rule) side() *Rule                  { r.SideTraffic = true; return r }
func (r *Rule) unreachable(why string) *Rule { r.Unreachable = why; return r }

// unreachableIf annotates only when cond holds — for rule groups built in
// a loop where one transaction's instance is corpus-unreachable while a
// sibling's is exercised.
func (r *Rule) unreachableIf(cond bool, why string) *Rule {
	if cond {
		r.Unreachable = why
	}
	return r
}

// Multicube builds the protocol table.
func Multicube() *Table {
	var rules []*Rule
	add := func(rs ...*Rule) { rules = append(rules, rs...) }

	for _, t := range []coherence.Txn{rd, rm, ts, sy} {
		add(rowRequestRules(t)...)
		add(colRequestRemoveRules(t)...)
		add(mk(fmt.Sprintf("col-req-mem/%v/memory-bound", t),
			"destined for the memory unit; controllers take no action",
			ev(colBus, t, fREQ|fMEM), AnyState, G(), stay))
		add(mk(fmt.Sprintf("col-insert/%v/mlt-insert", t),
			"insert an entry into the modified line tables of the column; an overflowed victim held modified here is written back as side traffic and marked shared",
			ev(colBus, t, fINS), AnyState, G(), stay).mlt(MLTPresent).side())
	}

	add(rowReadReplyRules()...)
	add(rowReadReplyUpdateRules()...)

	for _, t := range []coherence.Txn{rm, ts, sy} {
		add(rowOwnershipReplyRules(t)...)
		add(rowOwnershipReplyPurgeRules(t)...)
		add(colReplyInsertRules(t)...)
		add(colReplyPurgeRules(t)...)
		add(rowPurgeRules(t)...)
	}

	for _, t := range []coherence.Txn{ts, sy} {
		add(rowReplyFailRules(t)...)
		add(colReplyFailRules(t)...)
	}

	add(rowReplyQueuedRules()...)
	add(colReplyQueuedRules()...)
	add(rowXferRules()...)
	add(colXferRules()...)

	add(colReadReplyRules(fRPL|fUPD|fMEM, "reply indicating that the memory on this column should be updated", fRPL)...)
	add(colReadReplyRules(fRPL|fUPD, "reply indicating that memory should be updated (home column is elsewhere)", fRPL|fUPD)...)
	add(colReadReplyRules(fRPL|fNOP, "reply from memory; no purge is required for a READ", fRPL)...)

	for _, t := range []coherence.Txn{rd, wb} {
		add(
			mk(fmt.Sprintf("row-update/%v/forward-home", t),
				"forward the memory update request to the home column",
				ev(rowBus, t, fUPD), AnyState, G(Y(AtomHome)), stay, act(colBus, t, fUPD|fMEM)),
			mk(fmt.Sprintf("row-update/%v/bystander", t),
				"not on the home column: no action",
				ev(rowBus, t, fUPD), AnyState, G(N(AtomHome)), stay),
			mk(fmt.Sprintf("col-update-mem/%v/memory-bound", t),
				"memory write; controllers take no action",
				ev(colBus, t, fUPD|fMEM), AnyState, G(), stay),
		)
	}

	add(colWritebackRemoveRules()...)

	return New(rules)
}

// rowRequestRules: a row bus request for data is either forwarded to the
// column where the line resides in global state modified (by the one
// controller whose modified line table holds it) or answered/forwarded by
// the home-column controller.
func rowRequestRules(t coherence.Txn) []*Rule {
	e := ev(rowBus, t, fREQ)
	n := func(s string) string { return fmt.Sprintf("row-req/%v/%s", t, s) }
	rules := []*Rule{
		mk(n("suppressed-discard"),
			"fault injection suppressed the modified-line signal: discard; memory's valid bit will re-drive the request",
			e, AnyState, G(Y(AtomMLTHas), Y(AtomSuppressed)), stay).
			unreachable("requires the SuppressSignal fault-injection hook, which no bundled preset installs"),
		mk(n("mlt-lost-claim"),
			"another controller's table also holds the line (a stale duplicate) and won the claim: only the claimant forwards",
			e, AnyState, G(Y(AtomMLTHas), N(AtomSuppressed), N(AtomClaimantSelf)), stay).
			unreachable("ownership migration removes the old column's entry before the new owner's INSERT lands, so two columns never hold claimable duplicates; kept as defensive arbitration"),
		mk(n("mlt-claimant-forward"),
			"modified signal supplied during probe: forward the request onto my column for the modified copy",
			e, AnyState, G(Y(AtomMLTHas), N(AtomSuppressed), Y(AtomClaimantSelf)), stay,
			act(colBus, t, fREQ|fREM)),
		mk(n("home-modified-elsewhere"),
			"the modified-line signal is asserted: the claimant forwards; the home column stays out of it",
			e, AnyState, G(N(AtomMLTHas), Y(AtomHome), Y(AtomModifiedWire)), stay),
		mk(n("bystander"),
			"neither table holder nor home column: no action",
			e, AnyState, G(N(AtomMLTHas), N(AtomHome)), stay),
	}
	if t == rd {
		rules = append(rules,
			mk(n("home-serve-shared"),
				"the home-column controller has the line shared: it requests the row bus and sends the data itself",
				e, S(shd), G(N(AtomMLTHas), Y(AtomHome), N(AtomModifiedWire)), stay,
				act(rowBus, rd, fRPL)),
			mk(n("home-forward-memory"),
				"line unmodified and not cached here: the home-column controller forwards the request to memory",
				e, S(inv, mod, res), G(N(AtomMLTHas), Y(AtomHome), N(AtomModifiedWire)), stay,
				act(colBus, rd, fREQ|fMEM)),
		)
	} else {
		rules = append(rules,
			mk(n("home-forward-memory"),
				"line unmodified: the home-column controller forwards the request to memory (a shared copy here cannot serve an ownership request)",
				e, AnyState, G(N(AtomMLTHas), Y(AtomHome), N(AtomModifiedWire)), stay,
				act(colBus, t, fREQ|fMEM)),
		)
	}
	return rules
}

// colRequestRemoveRules: a column bus request for modified data; removing
// the modified line table entry guarantees access to the data; losing
// requests are reissued by the controller on the originator's row.
func colRequestRemoveRules(t coherence.Txn) []*Rule {
	e := ev(colBus, t, fREQ|fREM)
	n := func(s string) string { return fmt.Sprintf("col-req-rem/%v/%s", t, s) }
	served := G(Y(AtomMLTHas), Y(AtomWillServe))
	with := func(g Guard, lits ...Lit) Guard {
		g2 := G(lits...)
		return Guard{Care: g.Care | g2.Care, Val: g.Val | g2.Val}
	}
	rules := []*Rule{
		mk(n("lost-race-reissue"),
			"the table remove failed (lost race): the controller on the originator's row retransmits the request on the row bus",
			e, AnyState, G(N(AtomMLTHas), Y(AtomSameRow)), stay,
			act(rowBus, t, fREQ)).mlt(MLTAbsent),
		mk(n("lost-race-bystander"),
			"the table remove failed; not on the originator's row: no action",
			e, AnyState, G(N(AtomMLTHas), N(AtomSameRow)), stay).mlt(MLTAbsent),
		mk(n("no-server-revive"),
			"the remove succeeded but no controller will answer (admission in flight, head with successor, or stale entry): restore the entry and retransmit",
			e, AnyState, G(Y(AtomMLTHas), N(AtomWillServe), Y(AtomSameRow)), stay,
			act(colBus, t, fINS), act(rowBus, t, fREQ)).mlt(MLTAbsent).
			unreachable("the table entry follows the admitted tail's column, so a successful remove always finds a server there; reaching the revival idiom needs a refusal-restore racing a cross-column queue admission, which no bundled preset stages"),
		mk(n("no-server-bystander"),
			"the remove succeeded, nobody serves, and we are not on the originator's row: no action",
			e, AnyState, G(Y(AtomMLTHas), N(AtomWillServe), N(AtomSameRow)), stay).mlt(MLTAbsent).
			unreachable("the table entry follows the admitted tail's column, so a successful remove always finds a server there; reaching the revival idiom needs a refusal-restore racing a cross-column queue admission, which no bundled preset stages"),
		mk(n("nonholder"),
			"some other controller on this column holds (and answers for) the line",
			e, S(inv, shd), served, stay).mlt(MLTAbsent),
	}
	switch t {
	case rd:
		rules = append(rules,
			mk(n("serve-read-home"),
				"holder supplies the data, changes modified to shared, and updates memory directly (home column)",
				e, S(mod), with(served, Y(AtomLinkFree), Y(AtomHome)), to(shd),
				act(colBus, rd, fRPL|fUPD|fMEM)).mlt(MLTAbsent),
			mk(n("serve-read-row"),
				"holder on the originator's row supplies the data with a memory update along the way",
				e, S(mod), with(served, Y(AtomLinkFree), N(AtomHome), Y(AtomSameRow)), to(shd),
				act(rowBus, rd, fRPL|fUPD)).mlt(MLTAbsent),
			mk(n("serve-read-col"),
				"holder routes the data toward the requester over its column, with a memory update along the way",
				e, S(mod), with(served, Y(AtomLinkFree), N(AtomHome), N(AtomSameRow)), to(shd),
				act(colBus, rd, fRPL|fUPD)).mlt(MLTAbsent),
			mk(n("queued-head-silent"),
				"a SYNC queue runs through this copy (link word set): surrendering it would strand the queue; the request bounces until the queue drains",
				e, S(mod), with(served, N(AtomLinkFree)), stay).mlt(MLTAbsent),
		)
	case rm:
		rules = append(rules,
			mk(n("serve-readmod-col"),
				"holder invalidates its copy and transfers ownership directly on the shared column bus",
				e, S(mod), with(served, Y(AtomLinkFree), Y(AtomSameCol)), to(inv),
				act(colBus, rm, fRPL|fINS)).mlt(MLTAbsent),
			mk(n("serve-readmod-row"),
				"holder invalidates its copy and sends the line toward the requester's column via its row bus",
				e, S(mod), with(served, Y(AtomLinkFree), N(AtomSameCol)), to(inv),
				act(rowBus, rm, fRPL)).mlt(MLTAbsent),
			mk(n("queued-head-silent"),
				"a SYNC queue runs through this copy (link word set): surrendering it would strand the queue; the request bounces until the queue drains",
				e, S(mod), with(served, N(AtomLinkFree)), stay).mlt(MLTAbsent).
				unreachable("bundled presets never aim a plain ownership write at a live lock line (a store would clobber the lock word), so a READMOD never meets a queue"),
		)
	case ts:
		rules = append(rules,
			mk(n("grant-col"),
				"lock free: test-and-set succeeds at the holder; the line moves to the requester like a READMOD (shared column)",
				e, S(mod), with(served, Y(AtomLinkFree), Y(AtomLockFree), Y(AtomSameCol)), to(inv),
				act(colBus, ts, fRPL|fINS)).mlt(MLTAbsent),
			mk(n("grant-row"),
				"lock free: test-and-set succeeds at the holder; the line moves via the row bus",
				e, S(mod), with(served, Y(AtomLinkFree), Y(AtomLockFree), N(AtomSameCol)), to(inv),
				act(rowBus, ts, fRPL)).mlt(MLTAbsent),
			mk(n("fail-row"),
				"lock held: only the failure notification returns (row route); the entry is restored",
				e, S(mod), with(served, Y(AtomLinkFree), N(AtomLockFree), Y(AtomSameRow)), stay,
				act(rowBus, ts, fRPL|fFAIL), act(colBus, ts, fINS)).mlt(MLTAbsent),
			mk(n("fail-col"),
				"lock held: failure notification on the shared column bus; the entry is restored",
				e, S(mod), with(served, Y(AtomLinkFree), N(AtomLockFree), N(AtomSameRow), Y(AtomSameCol)), stay,
				act(colBus, ts, fRPL|fFAIL), act(colBus, ts, fINS)).mlt(MLTAbsent),
			mk(n("fail-remote"),
				"lock held: failure notification via the intersection controller; the entry is restored",
				e, S(mod), with(served, Y(AtomLinkFree), N(AtomLockFree), N(AtomSameRow), N(AtomSameCol)), stay,
				act(rowBus, ts, fRPL|fFAIL), act(colBus, ts, fINS)).mlt(MLTAbsent),
			mk(n("queued-head-silent"),
				"a SYNC queue runs through this copy (link word set): the queue tail answers, the head stays silent",
				e, S(mod), with(served, N(AtomLinkFree)), stay).mlt(MLTAbsent),
		)
	case sy:
		rules = append(rules,
			mk(n("handover-col"),
				"lock free, no queue: hand the line over immediately with the lock taken for the requester (shared column)",
				e, S(mod), with(served, Y(AtomLinkFree), Y(AtomLockFree), Y(AtomSameCol)), to(inv),
				act(colBus, sy, fRPL|fINS)).mlt(MLTAbsent),
			mk(n("handover-row"),
				"lock free, no queue: hand the line over via the row bus",
				e, S(mod), with(served, Y(AtomLinkFree), Y(AtomLockFree), N(AtomSameCol)), to(inv),
				act(rowBus, sy, fRPL)).mlt(MLTAbsent),
			mk(n("enqueue-row"),
				"lock held: enter the requester into the link word and notify it that it joined (row route)",
				e, S(mod), with(served, Y(AtomLinkFree), N(AtomLockFree), Y(AtomSameRow)), stay,
				act(rowBus, sy, fRPL|fQD)).mlt(MLTAbsent),
			mk(n("enqueue-col"),
				"lock held: enqueue and notify over the shared column bus",
				e, S(mod), with(served, Y(AtomLinkFree), N(AtomLockFree), N(AtomSameRow), Y(AtomSameCol)), stay,
				act(colBus, sy, fRPL|fQD)).mlt(MLTAbsent),
			mk(n("enqueue-remote"),
				"lock held: enqueue and notify via the intersection controller",
				e, S(mod), with(served, Y(AtomLinkFree), N(AtomLockFree), N(AtomSameRow), N(AtomSameCol)), stay,
				act(rowBus, sy, fRPL|fQD)).mlt(MLTAbsent),
			mk(n("queued-head-silent"),
				"a queue runs through this copy (link word set): the tail answers for this column, the head stays silent",
				e, S(mod), with(served, N(AtomLinkFree)), stay).mlt(MLTAbsent),
		)
	}
	// Reserved copies: an admitted queue tail answers (serving SYNC/TAS,
	// or bouncing READ/READMOD); a joiner whose admission is in flight
	// stays silent.
	tail := with(served, Y(AtomQueuedTail), Y(AtomLinkFree))
	switch t {
	case rd, rm:
		rules = append(rules,
			mk(n("bounce-reserved"),
				"the data is not here (reserved placeholder only), and a same-column holder would be the queue head, which keeps the line: restore the entry and retransmit until the queue drains",
				e, S(res), tail, stay,
				act(colBus, t, fINS), act(rowBus, t, fREQ)).mlt(MLTAbsent).
				unreachableIf(t == rm, "bundled presets never aim a plain ownership write at a live lock line (a store would clobber the lock word), so a READMOD never meets a queue"),
		)
	case ts:
		rules = append(rules,
			mk(n("tail-fail-row"),
				"a reserved copy means the queue is active: the lock is certainly held; fail the test-and-set and restore the entry (row route)",
				e, S(res), with(tail, Y(AtomSameRow)), stay,
				act(rowBus, ts, fRPL|fFAIL), act(colBus, ts, fINS)).mlt(MLTAbsent),
			mk(n("tail-fail-col"),
				"queue active: fail over the shared column bus and restore the entry",
				e, S(res), with(tail, N(AtomSameRow), Y(AtomSameCol)), stay,
				act(colBus, ts, fRPL|fFAIL), act(colBus, ts, fINS)).mlt(MLTAbsent),
			mk(n("tail-fail-remote"),
				"queue active: fail via the intersection controller and restore the entry",
				e, S(res), with(tail, N(AtomSameRow), N(AtomSameCol)), stay,
				act(rowBus, ts, fRPL|fFAIL), act(colBus, ts, fINS)).mlt(MLTAbsent),
		)
	case sy:
		rules = append(rules,
			mk(n("tail-enqueue-row"),
				"the admitted tail links the joiner into its reserved copy and notifies it (row route)",
				e, S(res), with(tail, Y(AtomSameRow)), stay,
				act(rowBus, sy, fRPL|fQD)).mlt(MLTAbsent),
			mk(n("tail-enqueue-col"),
				"the admitted tail links the joiner and notifies it over the shared column bus",
				e, S(res), with(tail, N(AtomSameRow), Y(AtomSameCol)), stay,
				act(colBus, sy, fRPL|fQD)).mlt(MLTAbsent),
			mk(n("tail-enqueue-remote"),
				"the admitted tail links the joiner and notifies it via the intersection controller",
				e, S(res), with(tail, N(AtomSameRow), N(AtomSameCol)), stay,
				act(rowBus, sy, fRPL|fQD)).mlt(MLTAbsent),
		)
	}
	rules = append(rules,
		mk(n("unadmitted-silent"),
			"a reserved joiner whose queue admission is still in flight stays silent (the revival idiom re-drives the request)",
			e, S(res), with(served, N(AtomQueuedTail)), stay).mlt(MLTAbsent).
			unreachableIf(t == rm, "bundled presets never aim a plain ownership write at a live lock line (a store would clobber the lock word), so a READMOD never meets a queue"),
		mk(n("linked-tail-silent"),
			"a reserved copy that already has a successor linked is no longer the tail: silent",
			e, S(res), with(served, Y(AtomQueuedTail), N(AtomLinkFree)), stay).mlt(MLTAbsent).
			unreachable("a linked former tail shares a column with a claim only when three queue members occupy one column and a fourth contender probes; no bundled preset runs that population"),
	)
	return rules
}

// rowReadReplyRules: ROW READ (REPLY) — the plain data reply form.
func rowReadReplyRules() []*Rule {
	e := ev(rowBus, rd, fRPL)
	n := func(s string) string { return "row-reply/READ/" + s }
	return []*Rule{
		mk(n("install"),
			"the originator writes the line shared and completes the read",
			e, AnyState, G(Y(AtomOrigin), Y(AtomPendMatch), N(AtomPendPoisoned)), to(shd)),
		mk(n("poisoned-reissue"),
			"an invalidating broadcast overtook the reply: the data is stale; discard it and retry the request",
			e, AnyState, G(Y(AtomOrigin), Y(AtomPendMatch), Y(AtomPendPoisoned)), stay,
			act(rowBus, rd, fREQ)),
		mk(n("stray"),
			"a reply nobody is waiting for is discarded",
			e, AnyState, G(Y(AtomOrigin), N(AtomPendMatch)), stay).
			unreachable("a stray reply is independently a stray-reply violation in the explorer's step check"),
		mk(n("snarf"),
			"a bystander with a retained invalid tag captures the passing unmodified line (Section 3)",
			e, S(inv), G(N(AtomOrigin), Y(AtomSnarfable)), to(shd)),
		mk(n("bystander"),
			"not the originator, nothing to snarf: no action",
			e, AnyState, G(N(AtomOrigin), N(AtomSnarfable)), stay),
	}
}

// rowReadReplyUpdateRules: ROW READ (REPLY, UPDATE) — as the plain form,
// but the home-column controller additionally writes the line back to
// memory, whatever its own role in the transaction.
func rowReadReplyUpdateRules() []*Rule {
	e := ev(rowBus, rd, fRPL|fUPD)
	n := func(s string) string { return "row-reply-upd/READ/" + s }
	upd := act(colBus, rd, fUPD|fMEM)
	return []*Rule{
		mk(n("install-home"),
			"the originator installs the line shared and, being on the home column, forwards the memory update",
			e, AnyState, G(Y(AtomOrigin), Y(AtomPendMatch), N(AtomPendPoisoned), Y(AtomHome)), to(shd), upd),
		mk(n("install"),
			"the originator installs the line shared and completes the read",
			e, AnyState, G(Y(AtomOrigin), Y(AtomPendMatch), N(AtomPendPoisoned), N(AtomHome)), to(shd)),
		mk(n("poisoned-reissue-home"),
			"stale data: retry the request; the memory update still happens (the data is current for memory)",
			e, AnyState, G(Y(AtomOrigin), Y(AtomPendMatch), Y(AtomPendPoisoned), Y(AtomHome)), stay,
			act(rowBus, rd, fREQ), upd),
		mk(n("poisoned-reissue"),
			"stale data: discard and retry the request",
			e, AnyState, G(Y(AtomOrigin), Y(AtomPendMatch), Y(AtomPendPoisoned), N(AtomHome)), stay,
			act(rowBus, rd, fREQ)),
		mk(n("stray-home"),
			"a reply nobody is waiting for; the home column still forwards the memory update",
			e, AnyState, G(Y(AtomOrigin), N(AtomPendMatch), Y(AtomHome)), stay, upd).
			unreachable("a stray reply is independently a stray-reply violation in the explorer's step check"),
		mk(n("stray"),
			"a reply nobody is waiting for is discarded",
			e, AnyState, G(Y(AtomOrigin), N(AtomPendMatch), N(AtomHome)), stay).
			unreachable("a stray reply is independently a stray-reply violation in the explorer's step check"),
		mk(n("snarf-home"),
			"a home-column bystander snarfs the line and forwards the memory update",
			e, S(inv), G(N(AtomOrigin), Y(AtomSnarfable), Y(AtomHome)), to(shd), upd),
		mk(n("snarf"),
			"a bystander with a retained invalid tag captures the passing line",
			e, S(inv), G(N(AtomOrigin), Y(AtomSnarfable), N(AtomHome)), to(shd)),
		mk(n("bystander-home"),
			"the home-column controller writes the line back to memory",
			e, AnyState, G(N(AtomOrigin), N(AtomSnarfable), Y(AtomHome)), stay, upd),
		mk(n("bystander"),
			"not the originator, not home: no action",
			e, AnyState, G(N(AtomOrigin), N(AtomSnarfable), N(AtomHome)), stay),
	}
}

// rowOwnershipReplyRules: ROW t (REPLY) for ownership transactions — the
// originator installs the line modified and inserts the table entry for
// its column; the controller at the intersection forwards otherwise.
func rowOwnershipReplyRules(t coherence.Txn) []*Rule {
	e := ev(rowBus, t, fRPL)
	n := func(s string) string { return fmt.Sprintf("row-reply/%v/%s", t, s) }
	ownStates := AnyState
	if t == sy {
		ownStates = S(res) // the handover merges into the reserved copy
	}
	return []*Rule{
		mk(n("own-install"),
			"the originator installs the line modified and inserts the modified line table entry for its column",
			e, ownStates, G(Y(AtomOrigin), Y(AtomPendMatch)), to(mod),
			act(colBus, t, fINS)),
		mk(n("stray"),
			"an ownership reply nobody is waiting for (the table insert was already scheduled)",
			e, AnyState, G(Y(AtomOrigin), N(AtomPendMatch)), stay,
			act(colBus, t, fINS)).
			unreachable("an unclaimed ownership transfer would lose the only copy: the implementation panics (data) or trips the stray-reply check (ALLOC ack)"),
		mk(n("forward-to-col"),
			"the controller in the requester's column picks the reply up and forwards it over its column bus",
			e, AnyState, G(N(AtomOrigin), Y(AtomSameCol)), stay,
			act(colBus, t, fRPL|fINS)),
		mk(n("bystander"),
			"neither originator nor intersection controller: no action",
			e, AnyState, G(N(AtomOrigin), N(AtomSameCol)), stay),
	}
}

// rowOwnershipReplyPurgeRules: ROW t (REPLY, PURGE) — the reply doubles
// as the purge broadcast for shared copies on the originator's row; the
// home column data cache has already been purged.
func rowOwnershipReplyPurgeRules(t coherence.Txn) []*Rule {
	e := ev(rowBus, t, fRPL|fPUR)
	n := func(s string) string { return fmt.Sprintf("row-reply-purge/%v/%s", t, s) }
	ownStates := AnyState
	if t == sy {
		ownStates = S(res)
	}
	return []*Rule{
		mk(n("own-install"),
			"the originator installs the line modified and inserts the table entry for its column",
			e, ownStates, G(Y(AtomOrigin), Y(AtomPendMatch)), to(mod),
			act(colBus, t, fINS)),
		mk(n("stray"),
			"an ownership reply nobody is waiting for (the table insert was already scheduled)",
			e, AnyState, G(Y(AtomOrigin), N(AtomPendMatch)), stay,
			act(colBus, t, fINS)).
			unreachable("an unclaimed ownership transfer would lose the only copy: the implementation panics (data) or trips the stray-reply check (ALLOC ack)"),
		mk(n("bystander-home"),
			"the home column data cache has already been purged: no action",
			e, AnyState, G(N(AtomOrigin), Y(AtomHome)), stay),
		mk(n("purge-shared"),
			"purge the shared copy (poisoning any outstanding READ for the line)",
			e, S(shd), G(N(AtomOrigin), N(AtomHome)), to(inv)),
		mk(n("bystander"),
			"no shared copy to purge: no action",
			e, S(inv, mod, res), G(N(AtomOrigin), N(AtomHome)), stay),
	}
}

// rowReplyFailRules: ROW t (REPLY, FAIL) — a failed test-and-set (or a
// SYNC that found the lock set in memory): notification only.
func rowReplyFailRules(t coherence.Txn) []*Rule {
	e := ev(rowBus, t, fRPL|fFAIL)
	n := func(s string) string { return fmt.Sprintf("row-reply-fail/%v/%s", t, s) }
	var complete *Rule
	if t == sy {
		complete = mk(n("fail-mustspin"),
			"the join failed: drop the reserved placeholder and fall back to spinning test-and-set (Section 4's degenerate path)",
			e, S(res), G(Y(AtomOrigin), Y(AtomPendMatch)), to(inv))
	} else {
		complete = mk(n("fail-complete"),
			"the test-and-set completes unsuccessfully; the line stays where it is",
			e, AnyState, G(Y(AtomOrigin), Y(AtomPendMatch)), stay)
	}
	return []*Rule{
		complete,
		mk(n("stray"),
			"a failure notification nobody is waiting for is discarded",
			e, AnyState, G(Y(AtomOrigin), N(AtomPendMatch)), stay).
			unreachable("a stray reply is independently a stray-reply violation in the explorer's step check"),
		mk(n("forward-to-col"),
			"the intersection controller forwards the notification over its column bus",
			e, AnyState, G(N(AtomOrigin), Y(AtomSameCol)), stay,
			act(colBus, t, fRPL|fFAIL)).
			unreachableIf(t == sy, "a SYNC failure originates only at memory (a lock-holding cache enqueues the joiner instead), so the FAIL reaches the originator's row via the intersection controller on that row, where the only same-column controller is the originator itself"),
		mk(n("bystander"),
			"neither originator nor intersection controller: no action",
			e, AnyState, G(N(AtomOrigin), N(AtomSameCol)), stay),
	}
}

// colReplyFailRules: COLUMN t (REPLY, FAIL) — the column-bus mirror.
func colReplyFailRules(t coherence.Txn) []*Rule {
	e := ev(colBus, t, fRPL|fFAIL)
	n := func(s string) string { return fmt.Sprintf("col-reply-fail/%v/%s", t, s) }
	var complete *Rule
	if t == sy {
		complete = mk(n("fail-mustspin"),
			"the join failed: drop the reserved placeholder and fall back to spinning test-and-set",
			e, S(res), G(Y(AtomOrigin), Y(AtomPendMatch)), to(inv))
	} else {
		complete = mk(n("fail-complete"),
			"the test-and-set completes unsuccessfully; the line stays where it is",
			e, AnyState, G(Y(AtomOrigin), Y(AtomPendMatch)), stay)
	}
	return []*Rule{
		complete,
		mk(n("stray"),
			"a failure notification nobody is waiting for is discarded",
			e, AnyState, G(Y(AtomOrigin), N(AtomPendMatch)), stay).
			unreachable("a stray reply is independently a stray-reply violation in the explorer's step check"),
		mk(n("forward-to-row"),
			"the intersection controller forwards the notification over its row bus",
			e, AnyState, G(N(AtomOrigin), Y(AtomSameRow)), stay,
			act(rowBus, t, fRPL|fFAIL)),
		mk(n("bystander"),
			"neither originator nor intersection controller: no action",
			e, AnyState, G(N(AtomOrigin), N(AtomSameRow)), stay),
	}
}

// rowReplyQueuedRules: ROW SYNC (REPLY, QUEUED) — the join was accepted;
// the new tail moves the modified line table entry to its own column.
func rowReplyQueuedRules() []*Rule {
	e := ev(rowBus, sy, fRPL|fQD)
	n := func(s string) string { return "row-reply-queued/SYNC/" + s }
	return []*Rule{
		mk(n("join-admitted"),
			"we are the new tail: insert the table entry into our column (the REQUEST|REMOVE deleted it from the old tail's)",
			e, S(res), G(Y(AtomOrigin), Y(AtomPendMatch), N(AtomPendQueued)), stay,
			act(colBus, sy, fINS)),
		mk(n("join-duplicate"),
			"already admitted: no action",
			e, S(res), G(Y(AtomOrigin), Y(AtomPendMatch), Y(AtomPendQueued)), stay).
			unreachable("the tail generates exactly one QUEUED notification per join"),
		mk(n("overtaken-benign"),
			"a fast XFER overtook the latency-delayed QUEUED notification; the acquire already completed and the handoff path inserted the entry",
			e, AnyState, G(Y(AtomOrigin), N(AtomPendMatch)), stay),
		mk(n("forward-to-col"),
			"the intersection controller forwards the notification over its column bus",
			e, AnyState, G(N(AtomOrigin), Y(AtomSameCol)), stay,
			act(colBus, sy, fRPL|fQD)),
		mk(n("bystander"),
			"neither originator nor intersection controller: no action",
			e, AnyState, G(N(AtomOrigin), N(AtomSameCol)), stay),
	}
}

// colReplyQueuedRules: COLUMN SYNC (REPLY, QUEUED) — origin-only; column
// replies are not forwarded further.
func colReplyQueuedRules() []*Rule {
	e := ev(colBus, sy, fRPL|fQD)
	n := func(s string) string { return "col-reply-queued/SYNC/" + s }
	return []*Rule{
		mk(n("join-admitted"),
			"we are the new tail: insert the table entry into our column",
			e, S(res), G(Y(AtomOrigin), Y(AtomPendMatch), N(AtomPendQueued)), stay,
			act(colBus, sy, fINS)),
		mk(n("join-duplicate"),
			"already admitted: no action",
			e, S(res), G(Y(AtomOrigin), Y(AtomPendMatch), Y(AtomPendQueued)), stay).
			unreachable("the tail generates exactly one QUEUED notification per join"),
		mk(n("overtaken-benign"),
			"a fast XFER overtook the QUEUED notification; the acquire already completed",
			e, AnyState, G(Y(AtomOrigin), N(AtomPendMatch)), stay),
		mk(n("bystander"),
			"not the originator: no action",
			e, AnyState, G(N(AtomOrigin)), stay),
	}
}

// rowXferRules: ROW SYNC (XFER) — a lock handoff addressed to a specific
// queue member rather than the operation's originator.
func rowXferRules() []*Rule {
	e := ev(rowBus, sy, fXFER)
	n := func(s string) string { return "row-xfer/SYNC/" + s }
	return []*Rule{
		mk(n("consume-admitted"),
			"the reserved copy becomes modified (keeping its own link word) and the waiting acquire completes holding the lock",
			e, S(res), G(Y(AtomTargetSelf), Y(AtomPendMatch), Y(AtomPendQueued)), to(mod)),
		mk(n("consume-overtaking"),
			"the XFER overtook our QUEUED notification: insert the table entry for our column now — we are the holder",
			e, S(res), G(Y(AtomTargetSelf), Y(AtomPendMatch), N(AtomPendQueued)), to(mod),
			act(colBus, sy, fINS)),
		mk(n("forward-to-col"),
			"the controller in the target's column forwards the handoff over its column bus",
			e, AnyState, G(N(AtomTargetSelf), Y(AtomTargetSameCol)), stay,
			act(colBus, sy, fXFER)),
		mk(n("bystander"),
			"not the target, not in the target's column: no action",
			e, AnyState, G(N(AtomTargetSelf), N(AtomTargetSameCol)), stay),
	}
}

// colXferRules: COLUMN SYNC (XFER) — target-only; no further forwarding.
func colXferRules() []*Rule {
	e := ev(colBus, sy, fXFER)
	n := func(s string) string { return "col-xfer/SYNC/" + s }
	return []*Rule{
		mk(n("consume-admitted"),
			"the reserved copy becomes modified and the waiting acquire completes holding the lock",
			e, S(res), G(Y(AtomTargetSelf), Y(AtomPendMatch), Y(AtomPendQueued)), to(mod)),
		mk(n("consume-overtaking"),
			"the XFER overtook our QUEUED notification: insert the table entry for our column now",
			e, S(res), G(Y(AtomTargetSelf), Y(AtomPendMatch), N(AtomPendQueued)), to(mod),
			act(colBus, sy, fINS)),
		mk(n("bystander"),
			"not the target: no action",
			e, AnyState, G(N(AtomTargetSelf)), stay),
	}
}

// rowPurgeRules: ROW t (PURGE) — purge all shared copies of the line on
// the row; the home column data cache has already been purged. Any
// outstanding READ for the line is poisoned at every controller.
func rowPurgeRules(t coherence.Txn) []*Rule {
	e := ev(rowBus, t, fPUR)
	n := func(s string) string { return fmt.Sprintf("row-purge/%v/%s", t, s) }
	return []*Rule{
		mk(n("home-already-purged"),
			"the home column data cache has already been purged: no action",
			e, AnyState, G(Y(AtomHome)), stay),
		mk(n("purge-shared"),
			"purge the shared copy",
			e, S(shd), G(N(AtomHome)), to(inv)),
		mk(n("bystander"),
			"no shared copy to purge: no action",
			e, S(inv, mod, res), G(N(AtomHome)), stay),
	}
}

// colReadReplyRules builds one COLUMN READ reply-form group (the three
// forms differ only in the flags and in what a forwarder re-emits on the
// row bus).
func colReadReplyRules(flags coherence.Flags, doc string, fwdFlags coherence.Flags) []*Rule {
	e := ev(colBus, rd, flags)
	n := func(s string) string { return fmt.Sprintf("col-reply/READ-%v/%s", flags, s) }
	fwd := act(rowBus, rd, fwdFlags)
	var originActs, poisonedActs, strayActs []ActionSpec
	if flags.Has(fUPD) && !flags.Has(fMEM) {
		// The (REPLY, UPDATE) form: the originator relays the update
		// toward the home column on its row bus, whatever the reply's
		// fate (the data is current for memory even when stale for us).
		upd := act(rowBus, rd, fUPD)
		originActs = []ActionSpec{upd}
		poisonedActs = []ActionSpec{act(rowBus, rd, fREQ), upd}
		strayActs = []ActionSpec{upd}
	} else {
		poisonedActs = []ActionSpec{act(rowBus, rd, fREQ)}
	}
	return []*Rule{
		mk(n("install"), doc+"; the originator installs the line shared",
			e, AnyState, G(Y(AtomOrigin), Y(AtomPendMatch), N(AtomPendPoisoned)), to(shd), originActs...),
		mk(n("poisoned-reissue"),
			"an invalidating broadcast overtook the reply: discard the stale data and retry the request",
			e, AnyState, G(Y(AtomOrigin), Y(AtomPendMatch), Y(AtomPendPoisoned)), stay, poisonedActs...),
		mk(n("stray"),
			"a reply nobody is waiting for is discarded",
			e, AnyState, G(Y(AtomOrigin), N(AtomPendMatch)), stay, strayActs...).
			unreachable("a stray reply is independently a stray-reply violation in the explorer's step check"),
		mk(n("snarf-forward"),
			"the intersection controller snarfs the passing line and forwards the reply over its row bus",
			e, S(inv), G(N(AtomOrigin), Y(AtomSnarfable), Y(AtomSameRow)), to(shd), fwd).
			unreachableIf(flags.Has(fUPD) && !flags.Has(fMEM),
				"the (REPLY, UPDATE) form is emitted only by a holder off the home column, and no bundled snarf-enabled preset places the written line's owner off its home column").
			unreachableIf(flags.Has(fUPD) && flags.Has(fMEM),
				"needs a controller with a retained invalid tag at the requester-row/home-column intersection; bundled snarf presets never invalidate a copy there"),
		mk(n("snarf"),
			"a bystander with a retained invalid tag captures the passing line",
			e, S(inv), G(N(AtomOrigin), Y(AtomSnarfable), N(AtomSameRow)), to(shd)).
			unreachableIf(flags.Has(fUPD) && !flags.Has(fMEM),
				"the (REPLY, UPDATE) form is emitted only by a holder off the home column, and no bundled snarf-enabled preset places the written line's owner off its home column"),
		mk(n("forward-to-row"),
			"the intersection controller forwards the reply over its row bus",
			e, AnyState, G(N(AtomOrigin), N(AtomSnarfable), Y(AtomSameRow)), stay, fwd),
		mk(n("bystander"),
			"neither originator nor intersection controller: no action",
			e, AnyState, G(N(AtomOrigin), N(AtomSnarfable), N(AtomSameRow)), stay),
	}
}

// colReplyInsertRules: COLUMN t (REPLY, INSERT) — an ownership transfer
// on the requester's own column; every controller mirrors the table
// insert.
func colReplyInsertRules(t coherence.Txn) []*Rule {
	e := ev(colBus, t, fRPL|fINS)
	n := func(s string) string { return fmt.Sprintf("col-reply-insert/%v/%s", t, s) }
	ownStates := AnyState
	if t == sy {
		ownStates = S(res)
	}
	return []*Rule{
		mk(n("own-install"),
			"the originator installs the line modified; the entry enters every replica of the column's table",
			e, ownStates, G(Y(AtomOrigin), Y(AtomPendMatch)), to(mod)).mlt(MLTPresent).side(),
		mk(n("stray"),
			"an ownership reply nobody is waiting for; the table insert still happens",
			e, AnyState, G(Y(AtomOrigin), N(AtomPendMatch)), stay).mlt(MLTPresent).side().
			unreachable("an unclaimed ownership transfer would lose the only copy: the implementation panics (data) or trips the stray-reply check (ALLOC ack)"),
		mk(n("mlt-mirror"),
			"every controller on the column mirrors the table insert",
			e, AnyState, G(N(AtomOrigin)), stay).mlt(MLTPresent).side(),
	}
}

// colReplyPurgeRules: COLUMN t (REPLY, PURGE) — memory's reply to an
// ownership request: a purge of all copies is required; the home-column
// data cache is purged first, then the purge spreads row by row.
func colReplyPurgeRules(t coherence.Txn) []*Rule {
	e := ev(colBus, t, fRPL|fPUR)
	n := func(s string) string { return fmt.Sprintf("col-reply-purge/%v/%s", t, s) }
	ownStates := AnyState
	if t == sy {
		ownStates = S(res)
	}
	return []*Rule{
		mk(n("own-install"),
			"the originator installs the line modified, inserts its table entry, and broadcasts the purge on its row",
			e, ownStates, G(Y(AtomOrigin), Y(AtomPendMatch)), to(mod),
			act(colBus, t, fINS), act(rowBus, t, fPUR)),
		mk(n("stray"),
			"an ownership reply nobody is waiting for (insert and purge were already scheduled)",
			e, AnyState, G(Y(AtomOrigin), N(AtomPendMatch)), stay,
			act(colBus, t, fINS), act(rowBus, t, fPUR)).
			unreachable("an unclaimed ownership transfer would lose the only copy: the implementation panics (data) or trips the stray-reply check (ALLOC ack)"),
		mk(n("purge-shared-forward"),
			"the intersection controller purges its shared copy and forwards the reply (which doubles as the purge) on its row",
			e, S(shd), G(N(AtomOrigin), Y(AtomSameRow)), to(inv),
			act(rowBus, t, fRPL|fPUR)),
		mk(n("purge-shared-relay"),
			"a controller purges its shared copy and relays the purge broadcast on its row",
			e, S(shd), G(N(AtomOrigin), N(AtomSameRow)), to(inv),
			act(rowBus, t, fPUR)),
		mk(n("relay-forward"),
			"the intersection controller forwards the reply-purge on its row (no shared copy here)",
			e, S(inv, mod, res), G(N(AtomOrigin), Y(AtomSameRow)), stay,
			act(rowBus, t, fRPL|fPUR)),
		mk(n("relay"),
			"a controller relays the purge broadcast on its row (no shared copy here)",
			e, S(inv, mod, res), G(N(AtomOrigin), N(AtomSameRow)), stay,
			act(rowBus, t, fPUR)),
	}
}

// colWritebackRemoveRules: COLUMN WRITEBACK (REMOVE) — write the line to
// memory; if the table remove fails some other bus operation will remove
// the data; in either case signal the processor request to continue (the
// continuation may change the line's state and issue traffic for other
// lines, so the next state is unconstrained).
func colWritebackRemoveRules() []*Rule {
	e := ev(colBus, wb, fREM)
	n := func(s string) string { return "col-wb-remove/WRITEBACK/" + s }
	return []*Rule{
		mk(n("mirror-remove"),
			"every controller on the column mirrors the table remove",
			e, AnyState, G(N(AtomOrigin)), stay).mlt(MLTAbsent),
		mk(n("wb-update-home"),
			"the remove succeeded and we still hold the line modified: write it to memory directly (home column), then continue",
			e, S(mod), G(Y(AtomOrigin), Y(AtomMLTHas), Y(AtomHome)), wild,
			act(colBus, wb, fUPD|fMEM)).mlt(MLTAbsent).side(),
		mk(n("wb-update-row"),
			"the remove succeeded and we still hold the line modified: route the memory update via the row bus, then continue",
			e, S(mod), G(Y(AtomOrigin), Y(AtomMLTHas), N(AtomHome)), wild,
			act(rowBus, wb, fUPD)).mlt(MLTAbsent).side(),
		mk(n("wb-raced"),
			"the remove succeeded but the line was taken from us in the meantime: nothing to write back; continue",
			e, S(inv, shd, res), G(Y(AtomOrigin), Y(AtomMLTHas)), wild).mlt(MLTAbsent).side().
			unreachable("needs the write-back's remove to succeed while a refusal-restored entry outlives a degrade of the line; no bundled write-back preset mixes test-and-set refusals with plain reads of the victim line"),
		mk(n("wb-refused-claim"),
			"the table remove failed but the line is still here modified: the claimant was refused and its restoring INSERT is behind us; retry the remove until the race resolves",
			e, S(mod), G(Y(AtomOrigin), N(AtomMLTHas)), stay,
			act(colBus, wb, fREM)).mlt(MLTAbsent),
		mk(n("wb-lost-entry"),
			"the table remove failed and the line is gone: the claiming bus operation took the data; continue",
			e, S(inv, shd, res), G(Y(AtomOrigin), N(AtomMLTHas)), wild).mlt(MLTAbsent).side(),
	}
}
