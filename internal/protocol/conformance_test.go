package protocol_test

import (
	"os"
	"sort"
	"strings"
	"testing"

	"multicube/internal/mc"
	"multicube/internal/protocol"
)

// conformancePresets returns the bundled presets that run on the grid
// machine (the single-bus baseline has its own snooper and is outside
// the table's scope), pruned for -short.
func conformancePresets(t *testing.T) []string {
	var names []string
	for _, name := range mc.Presets() {
		sc, err := mc.Preset(name)
		if err != nil {
			t.Fatal(err)
		}
		if sc.SingleBus {
			continue
		}
		base := strings.TrimSuffix(strings.TrimPrefix(name, "litmus-"), "-1col")
		switch base {
		case "iriw":
			// ≈1.2M states, minutes per run; everything iriw exercises at the
			// protocol level is covered by the smaller litmus presets.
			if os.Getenv("MC_LITMUS_EXHAUSTIVE") == "" {
				continue
			}
		case "sb", "wrc":
			if testing.Short() {
				continue
			}
		}
		names = append(names, name)
	}
	return names
}

// TestConformance runs the explorer over every bundled grid preset with
// the conformance collector attached: each snoop window the hand-written
// controllers execute must select exactly one spec rule and match its
// action list, next state, and modified-line-table transition. Any
// divergence between internal/coherence and the Appendix A table is a
// hard failure, reported per preset.
//
// After the sweep the coverage gate runs: every rule not annotated
// Unreachable must have been exercised by some preset. The gate needs
// the full corpus, so it is skipped under -short.
func TestConformance(t *testing.T) {
	table := protocol.Multicube()
	if errs := table.Check(); len(errs) > 0 {
		for _, e := range errs {
			t.Error(e)
		}
		t.Fatal("table fails its static check; conformance verdicts would be meaningless")
	}
	conf := protocol.NewConformance(table)

	budget := 60_000
	if testing.Short() {
		budget = 8_000
	}
	for _, name := range conformancePresets(t) {
		sc, err := mc.Preset(name)
		if err != nil {
			t.Fatal(err)
		}
		before := len(conf.Mismatches())
		// Violations are fine here (several presets exist to demonstrate
		// one); conformance only judges the transitions taken on the way.
		if _, err := mc.Explore(sc, mc.Options{
			MaxStates:  budget,
			Workers:    2,
			Instrument: conf.Attach,
		}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if ms := conf.Mismatches(); len(ms) > before {
			for _, m := range ms[before:] {
				t.Errorf("%s: %s", name, m)
			}
			t.Fatalf("%s: %d conformance mismatches", name, len(ms)-before)
		}
	}

	if conf.Events() == 0 {
		t.Fatal("no snoop windows observed; the instrument hook is not wired")
	}
	cov := conf.Coverage()
	t.Logf("%d snoop windows; %d/%d rules covered, %d annotated unreachable",
		conf.Events(), len(cov.Covered), len(table.Rules()), len(cov.Annotated))

	if testing.Short() {
		if len(cov.Uncovered) > 0 {
			t.Skipf("coverage gate needs the full corpus; %d rules unexercised under -short", len(cov.Uncovered))
		}
		return
	}
	if len(cov.Uncovered) > 0 {
		sort.Strings(cov.Uncovered)
		for _, name := range cov.Uncovered {
			t.Errorf("rule %s: reachable-marked but never exercised by any bundled preset", name)
		}
		t.Fatalf("%d rules unexercised; annotate them Unreachable (with a reason) or add a preset that reaches them",
			len(cov.Uncovered))
	}
}
