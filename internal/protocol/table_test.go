package protocol

import (
	"strings"
	"testing"

	"multicube/internal/cache"
	"multicube/internal/coherence"
)

// witnessOf finds, for one rule, a realizable (state, env) over its
// group's care mask that enables it — the same enumeration Check uses
// to prove satisfiability, replayed here so every spec row gets an
// explicit Match case.
func witnessOf(t *Table, r *Rule) (cache.State, Env, bool) {
	var mask Env
	for _, g := range t.Group(r.Event) {
		mask |= g.Guard.Care
	}
	atoms := maskBits(mask)
	for _, st := range allStates {
		if !r.States.Has(st) {
			continue
		}
		for idx := 0; idx < 1<<len(atoms); idx++ {
			env := envOf(atoms, idx)
			if consistent(r.Event, st, env, mask) && r.Guard.Matches(env) {
				return st, env, true
			}
		}
	}
	return 0, 0, false
}

// TestMulticubeStatic is the table's own gate: the Appendix A rule set
// must pass the well-formedness checker.
func TestMulticubeStatic(t *testing.T) {
	table := Multicube()
	if errs := table.Check(); len(errs) > 0 {
		for _, e := range errs {
			t.Error(e)
		}
	}
	t.Logf("%d rules over %d events", len(table.Rules()), len(table.Events()))
}

// TestMulticubeRowWitnesses runs one Match case per spec row: for every
// rule a realizable witness (state, env) exists, and Match on that
// witness selects exactly that rule — first-match order never shadows a
// row.
func TestMulticubeRowWitnesses(t *testing.T) {
	table := Multicube()
	for _, r := range table.Rules() {
		st, env, ok := witnessOf(table, r)
		if !ok {
			t.Errorf("rule %s: no realizable witness", r.Name)
			continue
		}
		got, ok := table.Match(r.Event, st, env)
		if !ok {
			t.Errorf("rule %s: witness (%v, %v) matches nothing", r.Name, coherence.StateName(st), env)
			continue
		}
		if got != r {
			t.Errorf("rule %s: witness (%v, %v) selects %s instead", r.Name, coherence.StateName(st), env, got.Name)
		}
	}
}

// TestMulticubeDocumented: every row cites the protocol clause it
// encodes, and every Unreachable annotation carries a reason.
func TestMulticubeDocumented(t *testing.T) {
	for _, r := range Multicube().Rules() {
		if strings.TrimSpace(r.Doc) == "" {
			t.Errorf("rule %s has no doc", r.Name)
		}
	}
}

// TestMulticubeDeterministic: two independent constructions agree row
// for row — names, events, state sets, guards, actions, and next-state
// prescriptions in identical declaration order — so the table is a pure
// function of the source, not of map iteration or shared state.
func TestMulticubeDeterministic(t *testing.T) {
	a, b := Multicube(), Multicube()
	ra, rb := a.Rules(), b.Rules()
	if len(ra) != len(rb) {
		t.Fatalf("rule counts differ: %d vs %d", len(ra), len(rb))
	}
	for i := range ra {
		x, y := ra[i], rb[i]
		if x.Name != y.Name || x.Event != y.Event || x.States != y.States ||
			x.Guard != y.Guard || x.Next != y.Next || x.MLT != y.MLT ||
			x.SideTraffic != y.SideTraffic || x.Unreachable != y.Unreachable ||
			len(x.Actions) != len(y.Actions) {
			t.Fatalf("row %d differs between constructions: %v vs %v", i, x, y)
		}
		for j := range x.Actions {
			if x.Actions[j] != y.Actions[j] {
				t.Fatalf("row %d action %d differs: %v vs %v", i, j, x.Actions[j], y.Actions[j])
			}
		}
	}
	evs1, evs2 := a.Events(), a.Events()
	for i := range evs1 {
		if evs1[i] != evs2[i] {
			t.Fatalf("Events() order unstable at %d: %v vs %v", i, evs1[i], evs2[i])
		}
	}
}

// TestMatchFirstDeclared: when two rules overlap, Match returns the one
// declared first. (Multicube has no overlaps — Check forbids them — so
// the contract is pinned on a synthetic table.)
func TestMatchFirstDeclared(t *testing.T) {
	e := Event{Dim: coherence.Row, Txn: coherence.READ, Flags: coherence.REQUEST}
	first := &Rule{Name: "first", Event: e, States: AnyState, Guard: G(Y(AtomHome))}
	second := &Rule{Name: "second", Event: e, States: AnyState}
	tb := New([]*Rule{first, second})
	env := Env(0).With(AtomHome, true)
	if r, ok := tb.Match(e, coherence.Invalid, env); !ok || r != first {
		t.Fatalf("overlapping match returned %v, want first", r)
	}
	if r, ok := tb.Match(e, coherence.Invalid, 0); !ok || r != second {
		t.Fatalf("fallback match returned %v, want second", r)
	}
	if _, ok := tb.Match(Event{Dim: coherence.Col, Txn: coherence.READ, Flags: coherence.REQUEST}, coherence.Invalid, 0); ok {
		t.Fatal("match on an unknown event group succeeded")
	}
}

// Check must reject malformed tables: seeded defects of each class are
// reported, naming the offending rows.
func TestCheckRejectsDefects(t *testing.T) {
	e := Event{Dim: coherence.Col, Txn: coherence.READMOD, Flags: coherence.REQUEST | coherence.REMOVE}
	cases := []struct {
		name  string
		rules []*Rule
		want  string
	}{
		{
			name: "duplicate-name",
			rules: []*Rule{
				{Name: "dup", Event: e, States: AnyState, Guard: G(Y(AtomOrigin))},
				{Name: "dup", Event: e, States: AnyState, Guard: G(N(AtomOrigin))},
			},
			want: "duplicate rule name",
		},
		{
			name: "overlap",
			rules: []*Rule{
				{Name: "a", Event: e, States: AnyState},
				{Name: "b", Event: e, States: AnyState, Guard: G(Y(AtomHome))},
			},
			want: "enables 2 rules",
		},
		{
			name: "hole",
			rules: []*Rule{
				{Name: "only-home", Event: e, States: AnyState, Guard: G(Y(AtomHome))},
			},
			want: "enables no rule",
		},
		{
			name: "unsatisfiable",
			rules: []*Rule{
				{Name: "wild", Event: e, States: AnyState},
				// An originator off its own row is not a realizable
				// environment, so this rule can never be enabled.
				{Name: "origin-elsewhere", Event: e, States: AnyState,
					Guard: G(Y(AtomOrigin), N(AtomSameRow))},
			},
			want: "unsatisfiable",
		},
		{
			name: "unnamed",
			rules: []*Rule{
				{Event: e, States: AnyState},
			},
			want: "no name",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			errs := New(tc.rules).Check()
			for _, err := range errs {
				if strings.Contains(err.Error(), tc.want) {
					return
				}
			}
			t.Fatalf("no error mentioning %q; got %v", tc.want, errs)
		})
	}
}

// TestGuardMatches pins the bitmask semantics literals compile to.
func TestGuardMatches(t *testing.T) {
	g := G(Y(AtomOrigin), N(AtomSuppressed))
	env := Env(0).With(AtomOrigin, true).With(AtomHome, true)
	if !g.Matches(env) {
		t.Fatal("guard should ignore atoms outside its care set")
	}
	if g.Matches(env.With(AtomSuppressed, true)) {
		t.Fatal("negative literal not enforced")
	}
	if g.Matches(env.With(AtomOrigin, false)) {
		t.Fatal("positive literal not enforced")
	}
	if !(Guard{}).Matches(env) {
		t.Fatal("empty guard must match everything")
	}
}
