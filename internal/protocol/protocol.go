// Package protocol expresses the Appendix A cache consistency protocol
// (plus the Section 4 synchronization extensions) as data: a table of
// guarded-action rules, one per distinguishable controller response to a
// snooped bus operation. Each rule names the observed event (bus
// dimension, transaction, operation parameters), the controller states it
// applies to, a guard — a conjunction over a small vocabulary of
// predicates the hardware can evaluate during the probe phase — and the
// prescribed response: the bus operations to schedule, the next cache
// state of the line, and the modified-line-table effect.
//
// The table serves three masters:
//
//   - Static well-formedness: Check proves every rule satisfiable and
//     every reachable (state, environment) matched by exactly one rule —
//     the "exactly one enabled guard" determinism obligation.
//   - Conformance: the Conformance observer replays every transition the
//     hand-written internal/coherence handlers take (via the
//     coherence.System.Observer seam) against the table and reports any
//     divergence, plus per-rule coverage.
//   - Documentation: the table is the protocol, in a form a reader can
//     diff against the paper's formal description.
//
// The package deliberately depends only on internal/coherence's exported
// observation types, never on handler internals: it is a second,
// independent encoding of the protocol, which is what makes conformance
// checking meaningful.
package protocol

import (
	"fmt"
	"sort"

	"multicube/internal/cache"
	"multicube/internal/coherence"
)

// Atom is one predicate of the guard vocabulary, evaluated from a
// coherence.SnoopEvent: the operation's routing fields, the probe-phase
// wire signals, and the controller-local line view.
type Atom uint8

const (
	// AtomOrigin: this node originated the operation.
	AtomOrigin Atom = iota
	// AtomSameRow / AtomSameCol: this node shares a row (column) bus with
	// the originator.
	AtomSameRow
	AtomSameCol
	// AtomHome: this node sits on the line's home (memory-interleave)
	// column.
	AtomHome
	// AtomMLTHas: this node's replica of its column's modified line table
	// holds the line (before dispatch).
	AtomMLTHas
	// AtomSuppressed: the row-bus modified-line signal was suppressed by
	// fault injection at probe time.
	AtomSuppressed
	// AtomClaimantSelf: this node won the claim to forward the request
	// (the hardware priority chain of duplicated table entries).
	AtomClaimantSelf
	// AtomModifiedWire: the wired-OR row-bus modified-line signal.
	AtomModifiedWire
	// AtomHolderPresent: the wired-OR column-bus signal asserted by a
	// node holding the line modified.
	AtomHolderPresent
	// AtomWillServe: the wired-OR column-bus signal asserted by the node
	// that will answer this REQUEST|REMOVE.
	AtomWillServe
	// AtomLockFree: the cached copy's lock word is zero. Vacuously true
	// when the line is absent.
	AtomLockFree
	// AtomLinkFree: no admitted successor is linked through this copy —
	// the link word is protocol-owned only while the copy is pinned
	// (sync state live); on an ordinary data line word 1 is just data.
	// Vacuously true when the line is absent.
	AtomLinkFree
	// AtomQueuedTail: this node's reserved copy is an admitted member —
	// and thus the tail — of the line's SYNC queue.
	AtomQueuedTail
	// AtomTargetSelf / AtomTargetSameCol: this node is (shares a column
	// with) the XFER handoff target.
	AtomTargetSelf
	AtomTargetSameCol
	// AtomPendMatch: the outstanding processor transaction matches the
	// operation's (transaction, line) — the reply-acceptance test.
	AtomPendMatch
	// AtomPendPoisoned: the matching outstanding READ was poisoned by an
	// invalidating broadcast while its reply was in flight.
	AtomPendPoisoned
	// AtomPendQueued: the matching outstanding SYNC was admitted to the
	// distributed queue.
	AtomPendQueued
	// AtomSnarfable: the snarf optimization would capture this
	// operation's payload at this node.
	AtomSnarfable

	numAtoms
)

var atomNames = [...]string{
	"Origin", "SameRow", "SameCol", "Home", "MLTHas", "Suppressed",
	"ClaimantSelf", "ModifiedWire", "HolderPresent", "WillServe",
	"LockFree", "LinkFree", "QueuedTail", "TargetSelf", "TargetSameCol",
	"PendMatch", "PendPoisoned", "PendQueued", "Snarfable",
}

func (a Atom) String() string {
	if int(a) < len(atomNames) {
		return atomNames[a]
	}
	return fmt.Sprintf("Atom(%d)", uint8(a))
}

// Env is a truth assignment to the atoms, as a bitmask.
type Env uint32

// Has reports the truth value of atom a.
func (e Env) Has(a Atom) bool { return e&(1<<a) != 0 }

// With returns e with atom a set to v.
func (e Env) With(a Atom, v bool) Env {
	if v {
		return e | 1<<a
	}
	return e &^ (1 << a)
}

// String renders only the true atoms, sorted, for diagnostics.
func (e Env) String() string {
	s := ""
	for a := Atom(0); a < numAtoms; a++ {
		if e.Has(a) {
			if s != "" {
				s += "∧"
			}
			s += a.String()
		}
	}
	if s == "" {
		return "⊤"
	}
	return s
}

// Lit is one literal of a guard: an atom required true or false.
type Lit struct {
	Atom Atom
	Val  bool
}

// Y and N build positive and negative literals.
func Y(a Atom) Lit { return Lit{Atom: a, Val: true} }
func N(a Atom) Lit { return Lit{Atom: a, Val: false} }

// Guard is a conjunction of literals: Care marks the atoms constrained,
// Val their required values. The empty guard (Care == 0) always matches.
type Guard struct {
	Care Env
	Val  Env
}

// G builds a guard from literals.
func G(lits ...Lit) Guard {
	var g Guard
	for _, l := range lits {
		g.Care |= 1 << l.Atom
		if l.Val {
			g.Val |= 1 << l.Atom
		}
	}
	return g
}

// Matches reports whether env satisfies the guard.
func (g Guard) Matches(env Env) bool { return env&g.Care == g.Val }

// String renders the guard's literals.
func (g Guard) String() string {
	s := ""
	for a := Atom(0); a < numAtoms; a++ {
		if g.Care.Has(a) {
			if s != "" {
				s += " ∧ "
			}
			if !g.Val.Has(a) {
				s += "¬"
			}
			s += a.String()
		}
	}
	if s == "" {
		return "⊤"
	}
	return s
}

// Event identifies one observable bus-operation kind: the bus dimension,
// the transaction, and the operation-parameter flags with ALLOC stripped
// (the ALLOCATE variant changes only whether a reply carries data, never
// the control flow the table describes).
type Event struct {
	Dim   coherence.Dim
	Txn   coherence.Txn
	Flags coherence.Flags
}

func (e Event) String() string {
	return fmt.Sprintf("%v %v(%v)", e.Dim, e.Txn, e.Flags)
}

// EventOf extracts the table's event key from an observed transition.
func EventOf(ev *coherence.SnoopEvent) Event {
	return Event{Dim: ev.Dim, Txn: ev.Txn, Flags: ev.Flags &^ coherence.ALLOC}
}

// EnvOf evaluates every atom against an observed transition.
func EnvOf(ev *coherence.SnoopEvent) Env {
	var e Env
	set := func(a Atom, v bool) {
		if v {
			e |= 1 << a
		}
	}
	set(AtomOrigin, ev.Origin == ev.Node)
	set(AtomSameRow, ev.Origin.Row == ev.Node.Row)
	set(AtomSameCol, ev.Origin.Col == ev.Node.Col)
	set(AtomHome, ev.Home)
	set(AtomMLTHas, ev.Before.MLTHas)
	set(AtomSuppressed, ev.Suppressed)
	set(AtomClaimantSelf, ev.ClaimantSelf)
	set(AtomModifiedWire, ev.Modified)
	set(AtomHolderPresent, ev.HolderPresent)
	set(AtomWillServe, ev.WillServe)
	set(AtomLockFree, ev.Before.LockWord == 0)
	set(AtomLinkFree, !ev.Before.Pinned || ev.Before.LinkWord == 0)
	set(AtomQueuedTail, ev.Before.HasPend && ev.Before.PendTxn == coherence.SYNC &&
		ev.Before.PendLine == ev.Line && ev.Before.PendQueued)
	set(AtomTargetSelf, ev.Target == ev.Node)
	set(AtomTargetSameCol, ev.Target.Col == ev.Node.Col)
	set(AtomPendMatch, ev.Before.PendMatches)
	set(AtomPendPoisoned, ev.Before.PendMatches && ev.Before.PendPoisoned)
	set(AtomPendQueued, ev.Before.PendMatches && ev.Before.PendQueued)
	set(AtomSnarfable, ev.Snarfable)
	return e
}

// StateSet is a set of cache states, as a bitmask indexed by cache.State.
type StateSet uint8

// AnyState contains all four states.
const AnyState StateSet = 1<<coherence.Invalid | 1<<coherence.Shared | 1<<coherence.Modified | 1<<coherence.Reserved

// S builds a state set.
func S(states ...cache.State) StateSet {
	var s StateSet
	for _, st := range states {
		s |= 1 << st
	}
	return s
}

// Has reports membership.
func (s StateSet) Has(st cache.State) bool { return s&(1<<st) != 0 }

func (s StateSet) String() string {
	if s == AnyState {
		return "*"
	}
	out := ""
	for st := coherence.Invalid; st <= coherence.Reserved; st++ {
		if s.Has(st) {
			if out != "" {
				out += "|"
			}
			out += coherence.StateName(st)
		}
	}
	if out == "" {
		return "∅"
	}
	return out
}

// ActionSpec is one bus operation a rule prescribes for the observed
// line. ALLOC is stripped for comparison, like in Event.
type ActionSpec struct {
	Dim   coherence.Dim
	Txn   coherence.Txn
	Flags coherence.Flags
}

func (a ActionSpec) String() string {
	return fmt.Sprintf("%v %v(%v)", a.Dim, a.Txn, a.Flags)
}

// NextKind classifies a rule's next-state prescription.
type NextKind uint8

const (
	// NextSame: the line's cache state is unchanged.
	NextSame NextKind = iota
	// NextTo: the line transitions to Next.State.
	NextTo
	// NextAny: the rule does not constrain the next state (used where a
	// continuation outside the table's scope — a writeback "continue
	// request" — decides it).
	NextAny
)

// Next is a rule's next-state prescription.
type Next struct {
	Kind  NextKind
	State cache.State
}

func (n Next) String() string {
	switch n.Kind {
	case NextTo:
		return "→" + coherence.StateName(n.State)
	case NextAny:
		return "→*"
	default:
		return "→same"
	}
}

// MLTNext is a rule's prescription for the node's modified-line-table
// membership of the observed line after dispatch.
type MLTNext uint8

const (
	// MLTSame: membership unchanged.
	MLTSame MLTNext = iota
	// MLTAbsent: the entry must be gone (REMOVE semantics).
	MLTAbsent
	// MLTPresent: the entry must be present (INSERT semantics).
	MLTPresent
)

// Rule is one guarded-action row of the protocol table.
type Rule struct {
	// Name uniquely identifies the rule; Doc cites the protocol clause it
	// encodes.
	Name string
	Doc  string
	// Event is the observed bus-operation kind; States the controller
	// states the rule covers (zero normalizes to AnyState); Guard the
	// enabling conjunction.
	Event  Event
	States StateSet
	Guard  Guard
	// Actions are the bus operations the rule prescribes for the observed
	// line, as a multiset (scheduling order is a timing concern, not a
	// protocol one).
	Actions []ActionSpec
	// Next and MLT prescribe the line's cache state and table membership
	// after dispatch.
	Next Next
	MLT  MLTNext
	// SideTraffic permits bus operations for other lines during this
	// transition (modified-line-table overflow writebacks, writeback
	// continuations).
	SideTraffic bool
	// Unreachable, when non-empty, documents why no bundled explorer
	// preset exercises the rule (a fault-injection-only path, a race the
	// simulator's timing model cannot produce, or a defensive row whose
	// triggering condition is independently a checker violation). The
	// conformance harness treats exercising an annotated rule as a hard
	// failure: the annotation must then be re-justified or removed.
	Unreachable string
}

func (r *Rule) String() string {
	return fmt.Sprintf("%s: %v [%v] %v", r.Name, r.Event, r.States, r.Guard)
}

// Table is an ordered rule set with an event-group index.
type Table struct {
	rules  []*Rule
	groups map[Event][]*Rule
}

// New builds a table, normalizing empty state sets to AnyState.
func New(rules []*Rule) *Table {
	t := &Table{rules: rules, groups: make(map[Event][]*Rule)}
	for _, r := range rules {
		if r.States == 0 {
			r.States = AnyState
		}
		t.groups[r.Event] = append(t.groups[r.Event], r)
	}
	return t
}

// Rules returns the table's rows in declaration order.
func (t *Table) Rules() []*Rule { return t.rules }

// Group returns the rules for one event, in declaration order.
func (t *Table) Group(ev Event) []*Rule { return t.groups[ev] }

// Events returns the table's event keys, sorted for determinism.
func (t *Table) Events() []Event {
	evs := make([]Event, 0, len(t.groups))
	for ev := range t.groups {
		evs = append(evs, ev)
	}
	sort.Slice(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if a.Dim != b.Dim {
			return a.Dim < b.Dim
		}
		if a.Txn != b.Txn {
			return a.Txn < b.Txn
		}
		return a.Flags < b.Flags
	})
	return evs
}

// Match returns the unique rule enabled for the event in (state, env), or
// false if the event has no group or no rule matches. Check guarantees
// uniqueness, so first-match is the match.
func (t *Table) Match(ev Event, st cache.State, env Env) (*Rule, bool) {
	for _, r := range t.groups[ev] {
		if r.States.Has(st) && r.Guard.Matches(env) {
			return r, true
		}
	}
	return nil, false
}
