package protocol

import (
	"fmt"
	"sort"
	"sync"

	"multicube/internal/coherence"
)

// Conformance replays observed controller transitions against a protocol
// table. Attach one to a coherence.System (or hand Observe to
// mc.Options.Instrument) and every snoop window is checked: the event
// must select exactly the rule the table predicts, the actions issued
// for the snooped line must equal the rule's action list, traffic for
// other lines must be licensed by SideTraffic, and the state and
// modified-line-table transitions must match the rule's Next and MLT
// clauses. Mismatches are collected (deduplicated by message), never
// panicked, so a single run reports every distinct divergence at once.
//
// The collector is safe for concurrent use: the explorer's parallel
// workers share one Conformance across all their machines.
type Conformance struct {
	table *Table

	mu         sync.Mutex
	events     uint64
	hits       map[string]uint64
	mismatches map[string]uint64
	order      []string
}

// NewConformance builds a collector over the given table.
func NewConformance(t *Table) *Conformance {
	return &Conformance{
		table:      t,
		hits:       make(map[string]uint64),
		mismatches: make(map[string]uint64),
	}
}

// Attach installs the collector on a system (grid machines only; the
// single-bus machine has its own snooper).
func (c *Conformance) Attach(sys *coherence.System) { sys.Observer = c.Observe }

// Observe checks one snoop window against the table. It is the
// coherence.System Observer callback.
func (c *Conformance) Observe(sev coherence.SnoopEvent) {
	evt := EventOf(&sev)
	st := sev.Before.State
	env := EnvOf(&sev)

	c.mu.Lock()
	defer c.mu.Unlock()
	c.events++

	group := c.table.Group(evt)
	if len(group) == 0 {
		c.fail("event %v has no rules in the table (state %v, env %v)", evt, st, env)
		return
	}
	rule, ok := c.table.Match(evt, st, env)
	if !ok {
		c.fail("event %v: no rule matches state %v env %v", evt, st, env)
		return
	}
	c.hits[rule.Name]++
	if rule.Unreachable != "" {
		c.fail("rule %s is annotated unreachable (%s) but was exercised (state %v, env %v)",
			rule.Name, rule.Unreachable, st, env)
	}

	// Partition the issued intents: actions for the snooped line are the
	// rule's specified response; actions for other lines (victim
	// writebacks, re-inserts, reissued pending requests) need the rule's
	// SideTraffic license.
	var same []coherence.ActionIntent
	for _, in := range sev.Actions {
		if in.Line == sev.Line {
			same = append(same, in)
		} else if !rule.SideTraffic {
			c.fail("rule %s: unlicensed side traffic for line %d: %v %v %v",
				rule.Name, in.Line, in.Dim, in.Txn, in.Flags&^coherence.ALLOC)
		}
	}
	if !actionsMatch(rule.Actions, same) {
		c.fail("rule %s: actions %s, spec %s (state %v, env %v)",
			rule.Name, fmtIntents(same), fmtSpecs(rule.Actions), st, env)
	}

	switch rule.Next.Kind {
	case NextSame:
		if sev.After.State != sev.Before.State {
			c.fail("rule %s: state changed %v -> %v, spec keeps it",
				rule.Name, sev.Before.State, sev.After.State)
		}
	case NextTo:
		if sev.After.State != rule.Next.State {
			c.fail("rule %s: next state %v, spec %v (before %v)",
				rule.Name, sev.After.State, rule.Next.State, sev.Before.State)
		}
	}

	switch rule.MLT {
	case MLTSame:
		if sev.After.MLTHas != sev.Before.MLTHas {
			c.fail("rule %s: modified line table entry %v -> %v, spec keeps it",
				rule.Name, sev.Before.MLTHas, sev.After.MLTHas)
		}
	case MLTAbsent:
		if sev.After.MLTHas {
			c.fail("rule %s: modified line table entry present after, spec removes it", rule.Name)
		}
	case MLTPresent:
		if !sev.After.MLTHas {
			c.fail("rule %s: modified line table entry absent after, spec inserts it", rule.Name)
		}
	}
}

func (c *Conformance) fail(format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	if c.mismatches[msg] == 0 {
		c.order = append(c.order, msg)
	}
	c.mismatches[msg]++
}

// actionsMatch compares the issued same-line intents against the spec as
// multisets, ignoring the internal ALLOC bookkeeping flag.
func actionsMatch(spec []ActionSpec, got []coherence.ActionIntent) bool {
	if len(spec) != len(got) {
		return false
	}
	used := make([]bool, len(got))
	for _, s := range spec {
		found := false
		for i, g := range got {
			if used[i] {
				continue
			}
			if g.Dim == s.Dim && g.Txn == s.Txn && g.Flags&^coherence.ALLOC == s.Flags {
				used[i] = true
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

func fmtIntents(ins []coherence.ActionIntent) string {
	if len(ins) == 0 {
		return "[]"
	}
	s := "["
	for i, in := range ins {
		if i > 0 {
			s += "; "
		}
		s += fmt.Sprintf("%v %v %v", in.Dim, in.Txn, in.Flags&^coherence.ALLOC)
	}
	return s + "]"
}

func fmtSpecs(specs []ActionSpec) string {
	if len(specs) == 0 {
		return "[]"
	}
	s := "["
	for i, sp := range specs {
		if i > 0 {
			s += "; "
		}
		s += fmt.Sprintf("%v %v %v", sp.Dim, sp.Txn, sp.Flags)
	}
	return s + "]"
}

// Events returns the number of snoop windows observed.
func (c *Conformance) Events() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.events
}

// Mismatches returns the distinct divergence messages in first-seen
// order, each with its occurrence count.
func (c *Conformance) Mismatches() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.order))
	for _, msg := range c.order {
		out = append(out, fmt.Sprintf("%s (x%d)", msg, c.mismatches[msg]))
	}
	return out
}

// Hits returns the per-rule exercise counts (rules never hit are absent).
func (c *Conformance) Hits() map[string]uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]uint64, len(c.hits))
	for k, v := range c.hits {
		out[k] = v
	}
	return out
}

// Coverage summarizes per-rule exercise status against the table.
type Coverage struct {
	Covered   []string // reachable rules that were exercised
	Uncovered []string // reachable rules never exercised — a gate failure
	Annotated []string // rules annotated unreachable (and, correctly, never exercised)
}

// Coverage computes the coverage summary. An annotated rule that was
// exercised counts as covered here; Observe already recorded the
// mismatch.
func (c *Conformance) Coverage() Coverage {
	hits := c.Hits()
	var cov Coverage
	for _, r := range c.table.Rules() {
		switch {
		case hits[r.Name] > 0:
			cov.Covered = append(cov.Covered, r.Name)
		case r.Unreachable != "":
			cov.Annotated = append(cov.Annotated, r.Name)
		default:
			cov.Uncovered = append(cov.Uncovered, r.Name)
		}
	}
	sort.Strings(cov.Covered)
	sort.Strings(cov.Uncovered)
	sort.Strings(cov.Annotated)
	return cov
}
