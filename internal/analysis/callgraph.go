package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// This file implements the shared call-graph / obligation-propagation
// engine the discipline passes (genbump rule B, inclusion) sit on. The
// graph is package-level and deliberately over-approximate in the sound
// direction for obligation propagation: an edge means "calling this unit
// MAY execute that body", so a caller is charged with every obligation it
// might reach.
//
// Three call shapes resolve to edges:
//
//   - Static same-package calls: f(...) and x.M(...) where the callee is
//     a declared function or concrete method of this package.
//
//   - Interface dispatch: x.M(...) where x's static type is an
//     interface. The call charges every same-package named type whose
//     method set (value or pointer) implements the interface — the
//     package-level method-set resolution that closes genbump's ifacegap.
//     Implementations living in other packages remain invisible.
//
//   - Stored func values: calls through a variable or struct field that
//     was assigned a func literal or a same-package function, via
//     assignment statements, var specs, or composite-literal fields
//     (h.apply(...) charges the literal bound at h's construction site).
//     Func values that arrive through parameters, returns, channels, or
//     other packages are not tracked.
//
// The remaining blind spots — cross-package dispatch, parameter-passed
// closures, reflection — are the engine's documented soundness boundary;
// the passes restate it in their own docs.

// CallUnit is one analyzed body: a declared function/method or a func
// literal (including literals in package-level var declarations and
// composite-literal fields, which have no enclosing function).
type CallUnit struct {
	Decl *ast.FuncDecl // nil for literals
	Lit  *ast.FuncLit  // nil for declarations
	Obj  *types.Func   // nil for literals

	// Callees are the units this body may call, deduplicated, in source
	// resolution order.
	Callees []*CallUnit

	calleeSet map[*CallUnit]bool
}

// Body returns the unit's block.
func (u *CallUnit) Body() *ast.BlockStmt {
	if u.Decl != nil {
		return u.Decl.Body
	}
	return u.Lit.Body
}

// Name renders the unit for diagnostics: the declared name, or
// "func literal".
func (u *CallUnit) Name() string {
	if u.Obj != nil {
		return u.Obj.Name()
	}
	return "func literal"
}

// CallGraph holds every unit of one package and their call edges.
type CallGraph struct {
	Units []*CallUnit

	byObj map[*types.Func]*CallUnit
	byLit map[*ast.FuncLit]*CallUnit

	// bindings maps a variable or struct-field object to the units whose
	// func values were observed assigned to it anywhere in the package.
	bindings map[types.Object][]*CallUnit

	pass *Pass
}

// UnitFor returns the unit of a declared function, or nil.
func (g *CallGraph) UnitFor(obj *types.Func) *CallUnit { return g.byObj[obj] }

// LitUnit returns the unit of a func literal, or nil.
func (g *CallGraph) LitUnit(lit *ast.FuncLit) *CallUnit { return g.byLit[lit] }

// Reaches reports whether pred holds for from or any unit transitively
// callable from it.
func (g *CallGraph) Reaches(from *CallUnit, pred func(*CallUnit) bool) bool {
	seen := make(map[*CallUnit]bool)
	var walk func(u *CallUnit) bool
	walk = func(u *CallUnit) bool {
		if u == nil || seen[u] {
			return false
		}
		seen[u] = true
		if pred(u) {
			return true
		}
		for _, c := range u.Callees {
			if walk(c) {
				return true
			}
		}
		return false
	}
	return walk(from)
}

// BuildCallGraph constructs the package's call graph in three passes:
// unit discovery, func-value binding collection, and call-site edge
// resolution.
func BuildCallGraph(pass *Pass) *CallGraph {
	g := &CallGraph{
		byObj:    make(map[*types.Func]*CallUnit),
		byLit:    make(map[*ast.FuncLit]*CallUnit),
		bindings: make(map[types.Object][]*CallUnit),
		pass:     pass,
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body == nil {
					return false
				}
				u := &CallUnit{Decl: n, calleeSet: make(map[*CallUnit]bool)}
				if obj, ok := pass.TypesInfo.Defs[n.Name].(*types.Func); ok {
					u.Obj = obj
					g.byObj[obj] = u
				}
				g.Units = append(g.Units, u)
			case *ast.FuncLit:
				u := &CallUnit{Lit: n, calleeSet: make(map[*CallUnit]bool)}
				g.byLit[n] = u
				g.Units = append(g.Units, u)
			}
			return true
		})
	}
	for _, f := range pass.Files {
		g.collectBindings(f)
	}
	for _, u := range g.Units {
		g.resolveUnit(u)
	}
	return g
}

// collectBindings records func-valued assignments to variables and
// struct fields.
func (g *CallGraph) collectBindings(f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				g.bind(g.targetObj(lhs), n.Rhs[i])
			}
		case *ast.ValueSpec:
			if len(n.Names) != len(n.Values) {
				return true
			}
			for i, name := range n.Names {
				g.bind(g.pass.TypesInfo.Defs[name], n.Values[i])
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				if key, ok := kv.Key.(*ast.Ident); ok {
					g.bind(g.pass.TypesInfo.Uses[key], kv.Value)
				}
			}
		}
		return true
	})
}

// targetObj resolves an assignment target to its variable or field
// object.
func (g *CallGraph) targetObj(lhs ast.Expr) types.Object {
	switch lhs := lhs.(type) {
	case *ast.Ident:
		if obj := g.pass.TypesInfo.Defs[lhs]; obj != nil {
			return obj
		}
		return g.pass.TypesInfo.Uses[lhs]
	case *ast.SelectorExpr:
		if s := g.pass.TypesInfo.Selections[lhs]; s != nil && s.Kind() == types.FieldVal {
			return s.Obj()
		}
	}
	return nil
}

// bind records obj ← the unit(s) denoted by the value expression.
func (g *CallGraph) bind(obj types.Object, val ast.Expr) {
	if obj == nil {
		return
	}
	if u := g.valueUnit(val); u != nil {
		g.bindings[obj] = append(g.bindings[obj], u)
	}
}

// valueUnit resolves an expression used as a func value to a unit:
// a literal, a same-package function, or a concrete method value.
func (g *CallGraph) valueUnit(val ast.Expr) *CallUnit {
	switch val := ast.Unparen(val).(type) {
	case *ast.FuncLit:
		return g.byLit[val]
	case *ast.Ident:
		if fn, ok := g.pass.TypesInfo.Uses[val].(*types.Func); ok && fn.Pkg() == g.pass.Pkg {
			return g.byObj[fn]
		}
	case *ast.SelectorExpr:
		if s := g.pass.TypesInfo.Selections[val]; s != nil && s.Kind() == types.MethodVal {
			if fn, ok := g.pass.TypesInfo.Uses[val.Sel].(*types.Func); ok &&
				fn.Pkg() == g.pass.Pkg && !types.IsInterface(s.Recv()) {
				return g.byObj[fn]
			}
		}
	}
	return nil
}

// resolveUnit walks one body (excluding nested literals, which are their
// own units) and adds call edges.
func (g *CallGraph) resolveUnit(u *CallUnit) {
	body := u.Body()
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit != u.Lit {
			return false // nested literal: its calls belong to its own unit
		}
		if call, ok := n.(*ast.CallExpr); ok {
			for _, callee := range g.CalleesAt(call) {
				g.addEdge(u, callee)
			}
		}
		return true
	})
}

// addEdge appends callee to u's edges once.
func (g *CallGraph) addEdge(u, callee *CallUnit) {
	if callee == nil || u.calleeSet[callee] {
		return
	}
	u.calleeSet[callee] = true
	u.Callees = append(u.Callees, callee)
}

// CalleesAt resolves the same-package units one call site may execute:
// the static callee, every implementation of a dispatched interface
// method, or the units bound to a called func value. Passes needing
// per-site resolution (the inclusion pass's positional discharge check)
// use this directly; the graph's edges are its union over each body.
func (g *CallGraph) CalleesAt(call *ast.CallExpr) []*CallUnit {
	var out []*CallUnit
	add := func(u *CallUnit) {
		if u != nil {
			out = append(out, u)
		}
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		add(g.byLit[fun])
	case *ast.Ident:
		switch obj := g.pass.TypesInfo.Uses[fun].(type) {
		case *types.Func:
			if obj.Pkg() == g.pass.Pkg {
				add(g.byObj[obj])
			}
		case *types.Var:
			for _, b := range g.bindings[obj] {
				add(b)
			}
		}
	case *ast.SelectorExpr:
		s := g.pass.TypesInfo.Selections[fun]
		if s == nil {
			// Qualified identifier pkg.F: never same-package.
			return nil
		}
		switch s.Kind() {
		case types.FieldVal:
			// Call through a func-valued field: charge the bound units.
			for _, b := range g.bindings[s.Obj()] {
				add(b)
			}
		case types.MethodVal, types.MethodExpr:
			fn, ok := g.pass.TypesInfo.Uses[fun.Sel].(*types.Func)
			if !ok {
				return nil
			}
			if types.IsInterface(s.Recv()) {
				for _, impl := range g.interfaceImpls(s.Recv(), fn.Name()) {
					add(impl)
				}
				return out
			}
			if fn.Pkg() == g.pass.Pkg {
				add(g.byObj[fn])
			}
		}
	}
	return out
}

// interfaceImpls returns the unit of the named method on every
// same-package concrete type whose method set implements the interface.
func (g *CallGraph) interfaceImpls(recv types.Type, method string) []*CallUnit {
	iface, ok := recv.Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	var out []*CallUnit
	scope := g.pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok || types.IsInterface(named) {
			continue
		}
		// The pointer method set is the superset: a *T implementing the
		// interface covers the T case too.
		if !types.Implements(named, iface) && !types.Implements(types.NewPointer(named), iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(named), true, g.pass.Pkg, method)
		fn, ok := obj.(*types.Func)
		if !ok || fn.Pkg() != g.pass.Pkg {
			continue
		}
		if u := g.byObj[fn]; u != nil {
			out = append(out, u)
		}
	}
	return out
}

// FindImport locates path among pkg's transitive imports, for resolving
// cross-package registration tables (allowlisted fields, evictor
// methods) against export data.
func FindImport(pkg *types.Package, path string) *types.Package {
	seen := make(map[*types.Package]bool)
	var walk func(p *types.Package) *types.Package
	walk = func(p *types.Package) *types.Package {
		if p.Path() == path {
			return p
		}
		if seen[p] {
			return nil
		}
		seen[p] = true
		for _, imp := range p.Imports() {
			if got := walk(imp); got != nil {
				return got
			}
		}
		return nil
	}
	return walk(pkg)
}

// ResolveMethod resolves a "pkgpath.Type.Method" registration entry
// against pkg's transitive imports, returning nil when the package is
// not imported or the method does not exist.
func ResolveMethod(pkg *types.Package, entry string) *types.Func {
	lastDot := strings.LastIndexByte(entry, '.')
	if lastDot < 0 {
		return nil
	}
	pkgType, method := entry[:lastDot], entry[lastDot+1:]
	typeDot := strings.LastIndexByte(pkgType, '.')
	if typeDot < 0 {
		return nil
	}
	pkgPath, typeName := pkgType[:typeDot], pkgType[typeDot+1:]
	imp := FindImport(pkg, pkgPath)
	if imp == nil {
		return nil
	}
	named, ok := imp.Scope().Lookup(typeName).(*types.TypeName)
	if !ok {
		return nil
	}
	obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(named.Type()), true, imp, method)
	fn, _ := obj.(*types.Func)
	return fn
}
