package detmap_test

import (
	"path/filepath"
	"testing"

	"multicube/internal/analysis/analysistest"
	"multicube/internal/analysis/detmap"
)

func TestFixture(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "detfix"), detmap.Analyzer)
}
