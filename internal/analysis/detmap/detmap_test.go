package detmap_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"multicube/internal/analysis"
	"multicube/internal/analysis/analysistest"
	"multicube/internal/analysis/detmap"
)

func TestFixture(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "detfix"), detmap.Analyzer)
}

// TestSpillFixture pins the statespace idioms: the spill walk's
// collect-then-sort escape, the commutative-accounting annotation, and
// the order-leaking victim scan.
func TestSpillFixture(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "spillfix"), detmap.Analyzer)
}

// TestDetectsUnsortedSpillStatespace proves the pass guards the real
// store: deleting the sort after spillShard's hot-map walk — which would
// write run files in randomized order, breaking their checksummed
// byte-determinism across resumes — must produce a finding, while the
// unmodified package stays clean.
func TestDetectsUnsortedSpillStatespace(t *testing.T) {
	modRoot := analysistest.ModuleRoot(t)
	run := func(overlay map[string][]byte) []analysis.Finding {
		t.Helper()
		pkgs, err := analysis.Load(analysis.LoadConfig{Dir: modRoot, Overlay: overlay}, "./internal/statespace")
		if err != nil {
			t.Fatalf("loading internal/statespace: %v", err)
		}
		findings, _, err := analysis.RunAnalyzers(pkgs, []*analysis.Analyzer{detmap.Analyzer})
		if err != nil {
			t.Fatalf("running detmap: %v", err)
		}
		return findings
	}

	if got := run(nil); len(got) != 0 {
		var b strings.Builder
		for _, f := range got {
			b.WriteString(f.String())
			b.WriteByte('\n')
		}
		t.Fatalf("unmodified internal/statespace should be clean, got %d findings:\n%s", len(got), b.String())
	}

	path := filepath.Join(modRoot, "internal", "statespace", "statespace.go")
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	needle := []byte("\tsort.Slice(ents, func(a, b int) bool { return ents[a].fp < ents[b].fp })\n")
	if !bytes.Contains(src, needle) {
		t.Fatal("statespace.go no longer contains the spill sort; update the overlay anchor")
	}
	// The first occurrence is spillShard's; compactLocked keeps its own,
	// so the sort import stays used.
	overlay := map[string][]byte{path: bytes.Replace(src, needle, nil, 1)}
	got := run(overlay)
	if len(got) == 0 {
		t.Fatal("detmap missed the unsorted hot-map walk in spillShard")
	}
	for _, f := range got {
		if !strings.Contains(f.Diag.Message, "range over map") {
			t.Errorf("unexpected message: %s", f.Diag.Message)
		}
	}
}
