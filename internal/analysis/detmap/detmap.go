// Package detmap flags `for ... range` over a map in packages marked
// //multicube:deterministic. Map iteration order is randomized by the
// runtime, so any observable effect of such a loop — an error message, a
// fingerprint, a candidate ordering — varies run to run, which breaks the
// model checker's reproducibility guarantees (identical seeds and presets
// must yield identical traces and counterexamples).
//
// A loop escapes the check if:
//
//   - it is annotated //multicube:detrange-ok <reason> (same line or the
//     line above), for loops that are genuinely commutative or restore
//     order by other means (e.g. cache.ForEach's hand-rolled insertion
//     sort); or
//   - the loop body only appends to slice variables and one of them is
//     later passed to a sort.*/slices.Sort* call in the same function
//     (the collect-then-sort idiom).
package detmap

import (
	"go/ast"
	"go/types"

	"multicube/internal/analysis"
)

// Analyzer is the detmap pass.
var Analyzer = &analysis.Analyzer{
	Name: "detmap",
	Doc:  "no map-iteration-order dependence in deterministic packages",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	if !pass.Dirs.PackageMarked("deterministic") {
		return nil, nil
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd.Body)
		}
	}
	return nil, nil
}

// checkFunc examines one function body (literals included — sorting in an
// enclosing function cannot restore order observed inside a literal that
// may escape, but in practice literals are small enough that treating the
// whole body as one region keeps the collect-then-sort idiom usable).
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	var ranges []*ast.RangeStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if r, ok := n.(*ast.RangeStmt); ok {
			if tv, ok := pass.TypesInfo.Types[r.X]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					ranges = append(ranges, r)
				}
			}
		}
		return true
	})
	for _, r := range ranges {
		if pass.Dirs.NodeHas(r.Pos(), "detrange-ok") {
			continue
		}
		if collectThenSort(pass, body, r) {
			continue
		}
		pass.Reportf(r.Pos(),
			"range over map in a deterministic package: iteration order is randomized (sort the keys first, or annotate //multicube:detrange-ok with a reason)")
	}
}

// collectThenSort reports whether the loop body only appends map entries to
// local slices that are later sorted in the same function.
func collectThenSort(pass *analysis.Pass, body *ast.BlockStmt, r *ast.RangeStmt) bool {
	// Every statement in the loop body must be an append (or other
	// commutative accumulation) into slice variables.
	var collected []types.Object
	ok := true
	for _, s := range r.Body.List {
		as, isAssign := s.(*ast.AssignStmt)
		if !isAssign || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			ok = false
			break
		}
		lhs, isIdent := as.Lhs[0].(*ast.Ident)
		call, isCall := as.Rhs[0].(*ast.CallExpr)
		if !isIdent || !isCall {
			ok = false
			break
		}
		fn, isFnIdent := call.Fun.(*ast.Ident)
		if !isFnIdent || fn.Name != "append" {
			ok = false
			break
		}
		obj := pass.TypesInfo.Uses[lhs]
		if obj == nil {
			ok = false
			break
		}
		collected = append(collected, obj)
	}
	if !ok || len(collected) == 0 {
		return false
	}
	// One of the collected slices must reach a sort call after the loop.
	sorted := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, isCall := n.(*ast.CallExpr)
		if !isCall || call.Pos() < r.End() {
			return true
		}
		sel, isSel := call.Fun.(*ast.SelectorExpr)
		if !isSel {
			return true
		}
		pkgID, isPkg := sel.X.(*ast.Ident)
		if !isPkg {
			return true
		}
		if pn, okPkg := pass.TypesInfo.Uses[pkgID].(*types.PkgName); !okPkg ||
			(pn.Imported().Path() != "sort" && pn.Imported().Path() != "slices") {
			return true
		}
		for _, arg := range call.Args {
			id, isID := arg.(*ast.Ident)
			if !isID {
				continue
			}
			obj := pass.TypesInfo.Uses[id]
			for _, c := range collected {
				if obj == c {
					sorted = true
				}
			}
		}
		return true
	})
	return sorted
}
