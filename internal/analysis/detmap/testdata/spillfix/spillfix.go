// Package spillfix models internal/statespace's map-iteration idioms for
// the detmap analyzer. Spill and compaction walk fingerprint-keyed hot
// maps whose iteration order must never reach a run file (run files are
// checksummed and compared across resumes), so every walk either
// collects-then-sorts or is annotated commutative.
//
//multicube:deterministic
package spillfix

import "sort"

type ent struct {
	fp    uint64
	sleep []uint64
}

// spill is the disciplined walk statespace.spillShard uses: hot-map
// order is erased by the sort before anything is written.
func spill(hot map[uint64][]uint64) []ent {
	ents := make([]ent, 0, len(hot))
	for fp, sleep := range hot { // collect-then-sort: not flagged
		ents = append(ents, ent{fp: fp, sleep: sleep})
	}
	sort.Slice(ents, func(a, b int) bool { return ents[a].fp < ents[b].fp })
	return ents
}

// spillUnsorted would write a run in randomized order — the exact bug
// the pass exists to catch in the store.
func spillUnsorted(hot map[uint64][]uint64) []ent {
	var ents []ent
	for fp, sleep := range hot { // want `range over map in a deterministic package`
		ents = append(ents, ent{fp: fp, sleep: sleep})
	}
	return ents
}

// hotBytes accumulates a commutative sum, like the store's budget
// accounting: order cannot leak into any observable.
func hotBytes(hot map[uint64][]uint64) int64 {
	var total int64
	//multicube:detrange-ok commutative sum; order cannot leak
	for _, sleep := range hot {
		total += int64(8 * len(sleep))
	}
	return total
}

// firstDirty leaks map order into a victim choice (the store instead
// scans shards by index).
func firstDirty(dirty map[int]uint64) int {
	for i := range dirty { // want `range over map`
		return i
	}
	return -1
}
