// Package detfix exercises the detmap analyzer: map ranges in a
// deterministic package, the collect-then-sort escape, and the
// detrange-ok annotation.
//
//multicube:deterministic
package detfix

import (
	"sort"
)

func sum(m map[int]int) int {
	s := 0
	for k := range m { // want `range over map in a deterministic package`
		s += m[k]
	}
	return s
}

func firstKey(m map[string]bool) string {
	for k := range m { // want `range over map`
		return k
	}
	return ""
}

func sortedKeys(m map[int]int) []int {
	var keys []int
	for k := range m { // collect-then-sort: not flagged
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

func sortedPairs(m map[uint64]uint64) []uint64 {
	var out []uint64
	for k, v := range m { // collect-then-sort via sort.Slice
		out = append(out, k<<32|v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func annotated(m map[int]int) int {
	n := 0
	//multicube:detrange-ok commutative count; order cannot leak
	for range m {
		n++
	}
	return n
}

func collectNoSort(m map[int]int) []int {
	var keys []int
	for k := range m { // want `range over map` — collected but never sorted
		keys = append(keys, k)
	}
	return keys
}

func sliceRange(xs []int) int {
	s := 0
	for _, x := range xs { // slices iterate deterministically
		s += x
	}
	return s
}
