package analysis

import (
	"fmt"
	"sort"
	"time"
)

// Finding pairs a diagnostic with the package it was found in.
type Finding struct {
	Pkg      *Package
	Analyzer *Analyzer
	Diag     Diagnostic
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	pos := f.Pkg.Fset.Position(f.Diag.Pos)
	return fmt.Sprintf("%s: %s (%s)", pos, f.Diag.Message, f.Analyzer.Name)
}

// Timing records one analyzer's aggregate wall time across all packages.
type Timing struct {
	Analyzer string
	Elapsed  time.Duration
}

// RunAnalyzers applies every analyzer to every package and returns the
// findings sorted by position, plus per-analyzer wall times.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Finding, []Timing, error) {
	var findings []Finding
	elapsed := make(map[string]time.Duration)
	for _, a := range analyzers {
		start := time.Now()
		for _, pkg := range pkgs {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Syntax,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				Dirs:      pkg.Dirs,
			}
			p := pkg
			pass.Report = func(d Diagnostic) {
				findings = append(findings, Finding{Pkg: p, Analyzer: a, Diag: d})
			}
			if _, err := a.Run(pass); err != nil {
				return nil, nil, fmt.Errorf("analysis: %s on %s: %v", a.Name, pkg.PkgPath, err)
			}
		}
		elapsed[a.Name] += time.Since(start)
	}
	sort.SliceStable(findings, func(i, j int) bool {
		pi := findings[i].Pkg.Fset.Position(findings[i].Diag.Pos)
		pj := findings[j].Pkg.Fset.Position(findings[j].Diag.Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
	var times []Timing
	for _, a := range analyzers {
		times = append(times, Timing{Analyzer: a.Name, Elapsed: elapsed[a.Name]})
	}
	return findings, times, nil
}
