// Package storefix models internal/statespace's tiered-store idioms for
// the genbump analyzer: a sharded visited table whose hot map is
// fingerprint-visible, guarded by the per-shard generation counter the
// checkpoint dirtiness test reads. Losing a bump here makes a dirty
// shard look clean and a checkpoint silently incomplete.
package storefix

// shard mirrors statespace.shard: hot entries shadow on-disk runs.
type shard struct {
	gen   uint64              //multicube:gencounter
	hot   map[uint64][]uint64 //multicube:fpfield guard=shard
	bytes int64               // accounting only: not fingerprint-visible
}

func (sh *shard) visitNew(fp uint64, sleep []uint64) {
	sh.gen++
	sh.hot[fp] = sleep
	sh.bytes += int64(8 * len(sleep))
}

func (sh *shard) intersect(fp uint64, inter []uint64) {
	sh.hot[fp] = inter // want `write to fingerprint-visible field shard\.hot without a generation bump`
}

func (sh *shard) forget(fp uint64) {
	delete(sh.hot, fp) // want `field shard\.hot`
}

func (sh *shard) wipe() {
	clear(sh.hot) // want `field shard\.hot`
}

func (sh *shard) accounting(n int64) {
	sh.bytes += n // unregistered field: no bump required
}

// retire swaps in a fresh hot map after a spill; callers own the bump.
//
//multicube:fpexempt spill callers bump when retiring the hot tier
func (sh *shard) retire() {
	sh.hot = make(map[uint64][]uint64)
}

// Spill is the disciplined entry: bump, then retire.
func (sh *shard) Spill() {
	sh.gen++
	sh.retire()
}

// Checkpoint reaches the exempted retire without bumping.
func (sh *shard) Checkpoint() { // want `exported Checkpoint reaches fingerprint-visible writes \(guarded by shard\)`
	sh.retire()
}

func use(sh *shard) {
	sh.visitNew(1, nil)
	sh.intersect(1, nil)
	sh.forget(1)
	sh.wipe()
	sh.accounting(8)
}
