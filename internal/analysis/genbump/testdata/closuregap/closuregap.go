// Package closuregap pins the second half of the carried follow-up: a
// fingerprint-visible write reached only through a stored closure — a
// func-valued struct field bound at a composite-literal construction
// site. The call-graph engine charges the bound literal's obligation to
// every caller of the field, so ClosureCaller is flagged while
// BumpedClosureCaller (which bumps first) stays clean.
package closuregap

// Counter carries fingerprint-visible state guarded by gen.
type Counter struct {
	data []uint64 //multicube:fpfield

	//multicube:gencounter
	gen uint64
}

// applier stores the mutation as a func value; calls through apply were
// invisible to the old static-only rule B.
type applier struct {
	apply func(c *Counter)
}

var rawApply = applier{
	//multicube:fpexempt callers own the generation bump
	apply: func(c *Counter) {
		c.data[0]++
	},
}

// ClosureCaller reaches the exempted literal through the stored field
// and is charged with its undischarged bump obligation.
func ClosureCaller(c *Counter) { // want `exported ClosureCaller reaches fingerprint-visible writes`
	rawApply.apply(c)
}

// BumpedClosureCaller discharges the obligation by bumping before the
// stored call, the pattern the protocol entry points use.
func BumpedClosureCaller(c *Counter) {
	c.gen++
	rawApply.apply(c)
}
