// Package ifacegap pins down genbump's accepted blind spot: a
// fingerprint-visible write reached only through an interface-dispatched
// call. Rule B's obligation propagation walks static same-package calls,
// so DirectCaller below is flagged while IfaceCaller — the same
// mutation, same package, same missing bump — is not. The fixture keeps
// the gap visible: the day the pass models interface dispatch,
// IfaceCaller starts needing a want comment and this file fails loudly.
package ifacegap

// Counter carries fingerprint-visible state guarded by gen.
type Counter struct {
	data []uint64 //multicube:fpfield

	//multicube:gencounter
	gen uint64
}

// mutator abstracts the state change; calls through it are invisible to
// rule B's static call graph.
type mutator interface {
	Mutate(c *Counter)
}

type rawMutator struct{}

//multicube:fpexempt callers own the generation bump
func (rawMutator) Mutate(c *Counter) {
	c.data[0]++
}

// DirectCaller reaches the exempted write through a static call, so
// rule B charges it with the undischarged bump obligation.
func DirectCaller(c *Counter) { // want `exported DirectCaller reaches fingerprint-visible writes`
	rawMutator{}.Mutate(c)
}

// IfaceCaller performs the identical mutation through an interface
// value and is NOT flagged today.
//
// TODO(genbump): once interface dispatch is modeled (e.g. by charging
// every same-package implementation of a method set that touches
// registered state), this function must be flagged like DirectCaller;
// move the want comment here and update TestIfaceGapIsStillOpen.
func IfaceCaller(c *Counter, m mutator) {
	m.Mutate(c)
}

// BumpedIfaceCaller shows the sound usage pattern the convention relies
// on: entry points bump unconditionally, so the invisible call is
// harmless.
func BumpedIfaceCaller(c *Counter, m mutator) {
	c.gen++
	m.Mutate(c)
}
