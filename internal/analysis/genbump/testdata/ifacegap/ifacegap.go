// Package ifacegap pins genbump's formerly-open blind spot closed: a
// fingerprint-visible write reached only through an interface-dispatched
// call. Rule B's obligation propagation runs over the shared call-graph
// engine, which charges every same-package implementation of a
// dispatched method set — so IfaceCaller below is flagged exactly like
// its statically-dispatched twin DirectCaller. If the engine ever
// regresses to static-only resolution, IfaceCaller's want comment fails
// loudly.
package ifacegap

// Counter carries fingerprint-visible state guarded by gen.
type Counter struct {
	data []uint64 //multicube:fpfield

	//multicube:gencounter
	gen uint64
}

// mutator abstracts the state change; the engine resolves calls through
// it to every same-package implementation.
type mutator interface {
	Mutate(c *Counter)
}

type rawMutator struct{}

//multicube:fpexempt callers own the generation bump
func (rawMutator) Mutate(c *Counter) {
	c.data[0]++
}

// DirectCaller reaches the exempted write through a static call, so
// rule B charges it with the undischarged bump obligation.
func DirectCaller(c *Counter) { // want `exported DirectCaller reaches fingerprint-visible writes`
	rawMutator{}.Mutate(c)
}

// IfaceCaller performs the identical mutation through an interface
// value; the method-set resolution charges rawMutator.Mutate's
// obligation to it, closing the gap the old fixture kept visible.
func IfaceCaller(c *Counter, m mutator) { // want `exported IfaceCaller reaches fingerprint-visible writes`
	m.Mutate(c)
}

// BumpedIfaceCaller shows the sound usage pattern the convention relies
// on: entry points bump unconditionally, discharging the dispatched
// obligation.
func BumpedIfaceCaller(c *Counter, m mutator) {
	c.gen++
	m.Mutate(c)
}
