// Package genfix exercises the genbump analyzer: fields registered as
// fingerprint-visible by directive, generation bumps, fpexempt helpers,
// and rule B's obligation propagation to exported entry points.
package genfix

// Counter carries fingerprint-visible state guarded by gen.
type Counter struct {
	data []uint64 //multicube:fpfield
	note int      // not fingerprint-visible

	//multicube:gencounter
	gen uint64
}

// Flag lives in another struct but is hashed with Counter's state.
type Flag struct {
	//multicube:fpfield guard=Counter
	hot bool
}

func (c *Counter) good(v uint64) {
	c.gen++
	c.data[0] = v
}

func (c *Counter) bumpAfter(v uint64) {
	c.data[0] = v // bump order within the function does not matter
	c.gen++
}

func (c *Counter) noteOnly(v int) {
	c.note = v // unregistered field: no bump required
}

func (c *Counter) bad(v uint64) {
	c.data[0] = v // want `write to fingerprint-visible field Counter\.data without a generation bump`
}

func (c *Counter) badIncDec() {
	c.data[0]++ // want `field Counter\.data`
}

func (c *Counter) badBuiltin(src []uint64) {
	copy(c.data, src) // want `field Counter\.data`
}

func (c *Counter) badAssignField() {
	c.data = nil // want `field Counter\.data`
}

func crossGuard(f *Flag) {
	f.hot = true // want `field Flag\.hot`
}

func crossGuardBumped(f *Flag, c *Counter) {
	c.gen++
	f.hot = true
}

//multicube:fpexempt every caller bumps
func (c *Counter) helper(v uint64) {
	c.data[0] = v
}

// Entry bumps before delegating, satisfying rule B.
func (c *Counter) Entry(v uint64) {
	c.gen++
	c.helper(v)
}

// Leak reaches the exempted write without bumping.
func (c *Counter) Leak(v uint64) { // want `exported Leak reaches fingerprint-visible writes \(guarded by Counter\)`
	c.helper(v)
}

// Deep reaches the write through two exempted levels.
func (c *Counter) Deep(v uint64) { // want `exported Deep reaches fingerprint-visible writes`
	c.middle(v)
}

//multicube:fpexempt forwarding layer
func (c *Counter) middle(v uint64) {
	c.helper(v)
}

func (c *Counter) unexportedLeak(v uint64) {
	c.helper(v) // rule B flags exported entry points only
}

func use(c *Counter, f *Flag) {
	c.good(1)
	c.bumpAfter(2)
	c.noteOnly(3)
	c.bad(4)
	c.badIncDec()
	c.badBuiltin(nil)
	c.badAssignField()
	crossGuard(f)
	crossGuardBumped(f, c)
	c.unexportedLeak(5)
}
