// Package genbump enforces the fingerprint-generation discipline that the
// incremental fingerprint caches (internal/coherence/fpincr,
// internal/singlebus/fpincr) depend on: every mutation of
// fingerprint-visible state must be covered by a bump of the owning
// struct's generation counter, or the model checker silently merges
// distinct states — the exact bug class PR 3's 3× speedup made possible.
//
// State is registered two ways:
//
//   - Same-package struct fields annotated //multicube:gencounter (the
//     counter itself) and //multicube:fpfield [guard=Type] (a guarded
//     field; guard=Type redirects the obligation to another struct's
//     counter, e.g. pending's fields are guarded by Node.gen).
//   - The cross-package allowlist table in this package (DefaultConfig):
//     fingerprint-visible fields of substrate types (cache.Entry.State,
//     …) and mutator methods of substrate stores (cache.Cache.Insert,
//     memory.Store.Write, …) whose *callers* own the generation counters.
//
// Two rules are enforced:
//
//	Rule A (same function): a function that writes a registered field —
//	assignment, ++/--, op=, element store, delete, clear, copy-into — or
//	calls a registered mutator method on a counter-carrying struct's
//	field, must also bump the guarding generation counter in that same
//	function. Helpers that deliberately rely on their callers' bumps are
//	annotated //multicube:fpexempt <reason> (doc comment, or the line
//	before a func literal); the bump obligation then propagates to the
//	callers.
//
//	Rule B (exported mutators): an exported function or method that
//	transitively reaches an exempted unbumped write without bumping
//	along the way is flagged. Propagation runs over the shared
//	analysis.CallGraph engine, so beyond static same-package calls it
//	follows interface dispatch (charging every same-package
//	implementation of the method set) and stored func values (closures
//	and func-valued struct fields charge their assigned literals). This
//	catches new entry points that forget the discipline even when every
//	helper they use is individually annotated.
//
// Where the bump target is derivable, the finding carries a suggested fix
// inserting `<recv>.<counter>++; ` before the offending statement.
//
// Known limits, accepted deliberately: writes through aliases (a slice
// returned by an accessor, a retained *Entry) and the call-graph engine's
// soundness boundary — implementations in other packages, func values
// passed as parameters or returned, reflection — are invisible to the
// pass. The protocol entry points (snoop dispatchers, processor-side
// APIs) bump unconditionally, which is what makes the per-function
// convention — and hence this mechanical check — sound in practice. The
// formerly-open interface-dispatch gap is pinned closed by executable
// fixtures: testdata/ifacegap flags the interface-dispatched caller next
// to its statically-dispatched twin, testdata/closuregap does the same
// for a closure stored in a struct field, and TestIfaceGapClosed /
// TestClosureGapClosed fail if either blind spot ever reopens.
package genbump

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"multicube/internal/analysis"
)

// Config lists the cross-package registration table and the packages it
// applies to.
type Config struct {
	// Packages whose sources are checked against the allowlist entries
	// below. Directive-registered fields are checked in every package.
	Packages []string

	// Fields are fingerprint-visible struct fields outside the analyzed
	// package, "pkgpath.Type.Field". Writes are satisfied by a bump of
	// any generation counter in the writing function (guard=any).
	Fields []string

	// Mutators are methods, "pkgpath.Type.Method", whose call mutates
	// fingerprint-visible state of the receiver. A call through a field
	// selector (x.store.Write(...)) obliges a bump of the field's owning
	// struct when that struct carries a generation counter.
	Mutators []string
}

// DefaultConfig is the repository's registration table.
var DefaultConfig = Config{
	Packages: []string{
		"multicube/internal/coherence",
		"multicube/internal/singlebus",
		"multicube/internal/bus",
	},
	Fields: []string{
		"multicube/internal/cache.Entry.State",
		"multicube/internal/cache.Entry.Data",
		"multicube/internal/cache.Entry.Pinned",
	},
	Mutators: []string{
		"multicube/internal/cache.Cache.Insert",
		"multicube/internal/cache.Cache.Invalidate",
		"multicube/internal/cache.Cache.Drop",
		"multicube/internal/mlt.Table.Insert",
		"multicube/internal/mlt.Table.Remove",
		"multicube/internal/memory.Store.Write",
		"multicube/internal/memory.Store.Invalidate",
	},
}

// Analyzer is the pass with the repository's default configuration.
var Analyzer = New(DefaultConfig)

// New builds a genbump analyzer for the given registration table.
func New(cfg Config) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "genbump",
		Doc:  "writes to fingerprint-visible state must bump the owning generation counter",
		Run:  func(pass *analysis.Pass) (any, error) { return run(pass, cfg) },
	}
}

// collector holds the per-package registration state.
type collector struct {
	pass *analysis.Pass
	cfg  Config

	// counters maps a struct type to its generation-counter field name.
	counters map[*types.TypeName]string
	// counterVars marks the counter field objects themselves (bump
	// targets).
	counterVars map[types.Object]*types.TypeName
	// fpVars maps registered field objects to their guarding struct type;
	// nil means guard=any.
	fpVars map[types.Object]*types.TypeName
	// fpNames renders registered fields as "Type.Field" for diagnostics.
	fpNames map[types.Object]string
	// mutators marks registered mutator methods (resolved from imports).
	mutators map[types.Object]bool
	// allowlisted gates the allowlist entries to configured packages.
	allowlisted bool

	// graph is the shared call-graph engine; unitOf maps its units to
	// this pass's per-body state for Rule B propagation.
	graph  *analysis.CallGraph
	units  []*funcUnit
	unitOf map[*analysis.CallUnit]*funcUnit
}

// funcUnit is one analyzed body: a declared function/method or a func
// literal (the call-graph unit carries the body and identity).
type funcUnit struct {
	cu *analysis.CallUnit

	exempt bool
	bumps  map[*types.TypeName]bool
	writes []writeRec

	obligations map[*types.TypeName]bool // memo for Rule B; anyGuard key for guard=any
	visiting    bool
}

// anyGuard is the sentinel obligation key for guard=any registrations.
var anyGuard = types.NewTypeName(token.NoPos, nil, "<any>", nil)

// writeRec is one registered-state mutation found in a unit.
type writeRec struct {
	pos   token.Pos
	stmt  ast.Stmt
	desc  string
	guard *types.TypeName // nil => any counter satisfies
	base  ast.Expr        // receiver owning the counter, for the suggested fix
}

func run(pass *analysis.Pass, cfg Config) (any, error) {
	c := &collector{
		pass:        pass,
		cfg:         cfg,
		counters:    make(map[*types.TypeName]string),
		counterVars: make(map[types.Object]*types.TypeName),
		fpVars:      make(map[types.Object]*types.TypeName),
		fpNames:     make(map[types.Object]string),
		mutators:    make(map[types.Object]bool),
		unitOf:      make(map[*analysis.CallUnit]*funcUnit),
	}
	for _, p := range cfg.Packages {
		if pass.Pkg.Path() == p {
			c.allowlisted = true
		}
	}
	c.registerDirectives()
	if c.allowlisted {
		c.registerAllowlist()
	}
	if len(c.counters) == 0 && len(c.fpVars) == 0 && len(c.mutators) == 0 {
		return nil, nil // nothing registered: not a fingerprinted package
	}
	// The engine discovers every body — declared functions AND literals,
	// including literals in package-level var declarations that the old
	// decl walk never reached — and resolves interface-dispatched and
	// stored-func-value calls into the edges Rule B propagates over.
	c.graph = analysis.BuildCallGraph(pass)
	for _, cu := range c.graph.Units {
		c.collectUnit(cu)
	}
	c.ruleA()
	c.ruleB()
	return nil, nil
}

// registerDirectives walks struct declarations for gencounter/fpfield
// annotations.
func (c *collector) registerDirectives() {
	type deferredGuard struct {
		obj   types.Object
		guard string
		pos   token.Pos
	}
	var deferred []deferredGuard
	byName := make(map[string]*types.TypeName)

	for _, f := range c.pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			tn, ok := c.pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
			if !ok {
				return true
			}
			byName[tn.Name()] = tn
			for _, field := range st.Fields.List {
				ds := analysis.CommentGroupDirectives(field.Doc, field.Comment)
				for _, name := range field.Names {
					obj := c.pass.TypesInfo.Defs[name]
					if obj == nil {
						continue
					}
					if _, ok := analysis.FindVerb(ds, "gencounter"); ok {
						c.counters[tn] = name.Name
						c.counterVars[obj] = tn
					}
					if d, ok := analysis.FindVerb(ds, "fpfield"); ok {
						c.fpNames[obj] = tn.Name() + "." + name.Name
						if g := d.Arg("guard"); g != "" {
							deferred = append(deferred, deferredGuard{obj, g, d.Pos})
						} else {
							c.fpVars[obj] = tn
						}
					}
				}
			}
			return true
		})
	}
	for _, d := range deferred {
		tn, ok := byName[d.guard]
		if !ok {
			c.pass.Reportf(d.pos, "fpfield guard=%s names no struct type in this package", d.guard)
			continue
		}
		c.fpVars[d.obj] = tn
	}
	// Directive-registered guards must actually have counters.
	for obj, tn := range c.fpVars {
		if tn == nil {
			continue
		}
		if _, ok := c.counters[tn]; !ok {
			c.pass.Reportf(obj.Pos(), "fpfield guarded by %s, but %s has no //multicube:gencounter field", tn.Name(), tn.Name())
		}
	}
}

// registerAllowlist resolves the cross-package tables against the
// package's import graph.
func (c *collector) registerAllowlist() {
	resolve := func(entry string) (types.Object, string, bool) {
		dot := strings.LastIndexByte(entry, '.')
		pkgType := entry[:dot]
		member := entry[dot+1:]
		slash := strings.LastIndexByte(pkgType, '.')
		pkgPath, typeName := pkgType[:slash], pkgType[slash+1:]
		pkg := analysis.FindImport(c.pass.Pkg, pkgPath)
		if pkg == nil {
			return nil, "", false
		}
		obj := pkg.Scope().Lookup(typeName)
		if obj == nil {
			return nil, "", false
		}
		return obj, member, true
	}
	for _, entry := range c.cfg.Fields {
		obj, field, ok := resolve(entry)
		if !ok {
			continue
		}
		named, ok := obj.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i).Name() == field {
				c.fpVars[st.Field(i)] = nil // guard=any
				c.fpNames[st.Field(i)] = named.Obj().Pkg().Name() + "." + named.Obj().Name() + "." + field
			}
		}
	}
	for _, entry := range c.cfg.Mutators {
		obj, method, ok := resolve(entry)
		if !ok {
			continue
		}
		named, ok := obj.Type().(*types.Named)
		if !ok {
			continue
		}
		for i := 0; i < named.NumMethods(); i++ {
			if m := named.Method(i); m.Name() == method {
				c.mutators[m] = true
			}
		}
	}
}

// collectUnit walks one call-graph unit's body, recording writes and
// bumps; nested literals are skipped (they are their own units).
func (c *collector) collectUnit(cu *analysis.CallUnit) {
	u := &funcUnit{cu: cu, bumps: make(map[*types.TypeName]bool)}
	if cu.Decl != nil {
		if _, ok := analysis.FindVerb(analysis.CommentGroupDirectives(cu.Decl.Doc), "fpexempt"); ok {
			u.exempt = true
		}
	} else {
		u.exempt = c.pass.Dirs.NodeHas(cu.Lit.Pos(), "fpexempt")
	}
	c.units = append(c.units, u)
	c.unitOf[cu] = u

	var stack []ast.Node
	ast.Inspect(cu.Body(), func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if fl, ok := n.(*ast.FuncLit); ok && fl != cu.Lit {
			return false
		}
		stack = append(stack, n)
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				c.recordWrite(u, lhs, enclosingStmt(stack))
			}
		case *ast.IncDecStmt:
			c.recordWrite(u, n.X, enclosingStmt(stack))
		case *ast.CallExpr:
			c.recordCall(u, n, enclosingStmt(stack))
		}
		return true
	})
}

// enclosingStmt returns the innermost statement on the stack (the node
// the suggested fix inserts before).
func enclosingStmt(stack []ast.Node) ast.Stmt {
	for i := len(stack) - 1; i >= 0; i-- {
		if s, ok := stack[i].(ast.Stmt); ok {
			return s
		}
	}
	return nil
}

// fieldOf resolves expr (unwrapping indexing, parens, derefs) to a
// selected struct field, returning the field object and the receiver
// expression.
func (c *collector) fieldOf(expr ast.Expr) (types.Object, ast.Expr) {
	for {
		switch e := expr.(type) {
		case *ast.ParenExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		default:
			sel, ok := expr.(*ast.SelectorExpr)
			if !ok {
				return nil, nil
			}
			s := c.pass.TypesInfo.Selections[sel]
			if s == nil || s.Kind() != types.FieldVal {
				return nil, nil
			}
			return s.Obj(), sel.X
		}
	}
}

// recordWrite classifies one assignment/inc-dec target.
func (c *collector) recordWrite(u *funcUnit, lhs ast.Expr, stmt ast.Stmt) {
	obj, recv := c.fieldOf(lhs)
	if obj == nil {
		return
	}
	if tn, ok := c.counterVars[obj]; ok {
		u.bumps[tn] = true
		return
	}
	guard, ok := c.fpVars[obj]
	if !ok {
		return
	}
	base := recv
	if guard != nil && !c.isType(recv, guard) {
		// guard=Type redirection (e.g. pending fields guarded by Node):
		// the counter lives on an enclosing receiver we cannot derive
		// mechanically.
		base = nil
	}
	name := c.fpNames[obj]
	if name == "" {
		name = obj.Name()
	}
	u.writes = append(u.writes, writeRec{
		pos:   lhs.Pos(),
		stmt:  stmt,
		desc:  "field " + name,
		guard: guard,
		base:  base,
	})
}

// recordCall classifies builtin mutations (copy/clear/delete into a
// registered field) and registered mutator-method calls; call edges for
// Rule B come from the call-graph engine, not from this walk.
func (c *collector) recordCall(u *funcUnit, call *ast.CallExpr, stmt ast.Stmt) {
	if id, ok := call.Fun.(*ast.Ident); ok {
		switch id.Name {
		case "copy", "clear", "delete":
			if len(call.Args) > 0 {
				if _, isBuiltin := c.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
					c.recordWrite(u, call.Args[0], stmt)
				}
			}
		}
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	callee, _ := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if callee == nil {
		return
	}
	if !c.mutators[callee] {
		return
	}
	// The receiver must be a field of a counter-carrying struct for the
	// obligation to be attributable; x.store.Write(...) obliges a bump of
	// x's struct.
	fieldObj, base := c.fieldOf(sel.X)
	if fieldObj == nil {
		return
	}
	owner := c.ownerTypeName(fieldObj)
	if owner == nil {
		return
	}
	if _, hasCounter := c.counters[owner]; !hasCounter {
		return
	}
	u.writes = append(u.writes, writeRec{
		pos:   call.Pos(),
		stmt:  stmt,
		desc:  fmt.Sprintf("state via (%s).%s on %s.%s", callee.Type().(*types.Signature).Recv().Type(), callee.Name(), owner.Name(), fieldObj.Name()),
		guard: owner,
		base:  base,
	})
}

// ownerTypeName returns the named struct type declaring field obj, when
// it belongs to this package.
func (c *collector) ownerTypeName(obj types.Object) *types.TypeName {
	v, ok := obj.(*types.Var)
	if !ok || !v.IsField() || v.Pkg() != c.pass.Pkg {
		return nil
	}
	// Search the package scope for the named type containing this field.
	scope := c.pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == v {
				return tn
			}
		}
	}
	return nil
}

// isType reports whether expr's type is T or *T.
func (c *collector) isType(expr ast.Expr, tn *types.TypeName) bool {
	if expr == nil {
		return false
	}
	tv, ok := c.pass.TypesInfo.Types[expr]
	if !ok {
		return false
	}
	t := tv.Type
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj() == tn
}

// satisfied reports whether a write's obligation is met by the unit's own
// bumps.
func (u *funcUnit) satisfied(w writeRec) bool {
	if w.guard == nil {
		return len(u.bumps) > 0
	}
	return u.bumps[w.guard]
}

// ruleA reports unexempted writes without a same-function bump.
func (c *collector) ruleA() {
	for _, u := range c.units {
		if u.exempt {
			continue
		}
		for _, w := range u.writes {
			if u.satisfied(w) {
				continue
			}
			d := analysis.Diagnostic{
				Pos: w.pos,
				Message: fmt.Sprintf(
					"write to fingerprint-visible %s without a generation bump in this function (bump the guarding counter, or annotate //multicube:fpexempt if every caller bumps)",
					w.desc),
			}
			if fix := c.bumpFix(w); fix != nil {
				d.SuggestedFixes = []analysis.SuggestedFix{*fix}
			}
			c.pass.Report(d)
		}
	}
}

// bumpFix builds the mechanical insertion `<recv>.<counter>++; ` before
// the flagged statement, when the bump target is derivable.
func (c *collector) bumpFix(w writeRec) *analysis.SuggestedFix {
	if w.guard == nil || w.base == nil || w.stmt == nil {
		return nil
	}
	counter, ok := c.counters[w.guard]
	if !ok {
		return nil
	}
	recv := types.ExprString(w.base)
	return &analysis.SuggestedFix{
		Message: fmt.Sprintf("insert %s.%s++ before the mutation", recv, counter),
		TextEdits: []analysis.TextEdit{{
			Pos:     w.stmt.Pos(),
			End:     w.stmt.Pos(),
			NewText: []byte(recv + "." + counter + "++; "),
		}},
	}
}

// ruleB propagates bump obligations through exempted helpers to exported
// entry points.
func (c *collector) ruleB() {
	for _, u := range c.units {
		if u.cu.Decl == nil || u.cu.Obj == nil || !u.cu.Obj.Exported() || u.exempt {
			continue
		}
		obl := c.obligations(u)
		if len(obl) == 0 {
			continue
		}
		var names []string
		for tn := range obl {
			if tn == anyGuard {
				names = append(names, "substrate state")
			} else {
				names = append(names, tn.Name())
			}
		}
		sortStrings(names)
		c.pass.Reportf(u.cu.Decl.Name.Pos(),
			"exported %s reaches fingerprint-visible writes (guarded by %s) through exempted helpers without bumping a generation counter",
			u.cu.Obj.Name(), strings.Join(names, ", "))
	}
}

// obligations computes the guard types a unit requires its callers to
// cover: its own exempted writes plus its callees' obligations, minus
// whatever its own bumps satisfy.
func (c *collector) obligations(u *funcUnit) map[*types.TypeName]bool {
	if u.obligations != nil {
		return u.obligations
	}
	if u.visiting {
		return nil // break recursion; the cycle's obligations surface elsewhere
	}
	u.visiting = true
	out := make(map[*types.TypeName]bool)
	if u.exempt {
		for _, w := range u.writes {
			if u.satisfied(w) {
				continue
			}
			if w.guard == nil {
				out[anyGuard] = true
			} else {
				out[w.guard] = true
			}
		}
	}
	for _, callee := range u.cu.Callees {
		cv := c.unitOf[callee]
		if cv == nil {
			continue
		}
		for tn := range c.obligations(cv) {
			out[tn] = true
		}
	}
	// The unit's own bumps discharge obligations.
	if len(u.bumps) > 0 {
		delete(out, anyGuard)
		for tn := range u.bumps {
			delete(out, tn)
		}
	}
	u.visiting = false
	u.obligations = out
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j-1] > s[j]; j-- {
			s[j-1], s[j] = s[j], s[j-1]
		}
	}
}
