package genbump_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"multicube/internal/analysis"
	"multicube/internal/analysis/analysistest"
	"multicube/internal/analysis/genbump"
)

func TestFixture(t *testing.T) {
	findings := analysistest.Run(t, filepath.Join("testdata", "genfix"), genbump.Analyzer)
	analysistest.Golden(t, filepath.Join("testdata", "genfix"), findings, "genfix.go")
}

// TestStoreFixture pins the statespace idioms — a map-typed fpfield
// guarded by a per-shard counter, builtin mutations, and the exempted
// retire helper — including the suggested-fix insertions.
func TestStoreFixture(t *testing.T) {
	findings := analysistest.Run(t, filepath.Join("testdata", "storefix"), genbump.Analyzer)
	analysistest.Golden(t, filepath.Join("testdata", "storefix"), findings, "storefix.go")
}

// stripBump removes one exact occurrence of needle from the named repo
// file and returns an overlay mapping for it; the test fails if the
// needle is not present (the anchor drifted).
func stripBump(t *testing.T, modRoot, relPath, needle, replacement string) map[string][]byte {
	t.Helper()
	path := filepath.Join(modRoot, filepath.FromSlash(relPath))
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading %s: %v", relPath, err)
	}
	if !bytes.Contains(src, []byte(needle)) {
		t.Fatalf("%s no longer contains %q; update the overlay anchor", relPath, needle)
	}
	mod := bytes.Replace(src, []byte(needle), []byte(replacement), 1)
	return map[string][]byte{path: mod}
}

// runGenbump loads one repo package (optionally with an overlay) and
// returns genbump's findings.
func runGenbump(t *testing.T, modRoot, pattern string, overlay map[string][]byte) []analysis.Finding {
	t.Helper()
	pkgs, err := analysis.Load(analysis.LoadConfig{Dir: modRoot, Overlay: overlay}, pattern)
	if err != nil {
		t.Fatalf("loading %s: %v", pattern, err)
	}
	findings, _, err := analysis.RunAnalyzers(pkgs, []*analysis.Analyzer{genbump.Analyzer})
	if err != nil {
		t.Fatalf("running genbump on %s: %v", pattern, err)
	}
	return findings
}

// TestDetectsStrippedBumpSinglebus is the acceptance proof for the pass:
// deleting the generation bump at the top of the write-once snoop
// handler — the exact omission that would silently corrupt the
// incremental fingerprint cache — must produce diagnostics, while the
// unmodified package stays clean.
func TestDetectsStrippedBumpSinglebus(t *testing.T) {
	modRoot := analysistest.ModuleRoot(t)

	if got := runGenbump(t, modRoot, "./internal/singlebus", nil); len(got) != 0 {
		t.Fatalf("unmodified internal/singlebus should be clean, got %d findings:\n%s", len(got), render(got))
	}

	overlay := stripBump(t, modRoot, "internal/singlebus/processor.go",
		"func (p *Processor) snoop(o *op) {\n\tp.gen++\n",
		"func (p *Processor) snoop(o *op) {\n")
	got := runGenbump(t, modRoot, "./internal/singlebus", overlay)
	if len(got) == 0 {
		t.Fatal("genbump missed the stripped p.gen++ in (*Processor).snoop")
	}
	for _, f := range got {
		pos := f.Pkg.Fset.Position(f.Diag.Pos)
		if filepath.Base(pos.Filename) != "processor.go" {
			t.Errorf("finding outside processor.go: %s", f)
		}
		// Rule A fires at each uncovered write; rule B additionally fires
		// at the exported Snoop wrapper, whose obligation was previously
		// discharged by the stripped bump.
		if !strings.Contains(f.Diag.Message, "without a generation bump") &&
			!strings.Contains(f.Diag.Message, "reaches fingerprint-visible writes") {
			t.Errorf("unexpected message: %s", f.Diag.Message)
		}
	}
}

// TestDetectsStrippedBumpBus does the same against the bus package:
// Request mutates the fingerprint-visible arbitration queues, so its
// bump must not be removable without the suite noticing.
func TestDetectsStrippedBumpBus(t *testing.T) {
	modRoot := analysistest.ModuleRoot(t)

	if got := runGenbump(t, modRoot, "./internal/bus", nil); len(got) != 0 {
		t.Fatalf("unmodified internal/bus should be clean, got %d findings:\n%s", len(got), render(got))
	}

	overlay := stripBump(t, modRoot, "internal/bus/bus.go", "\tb.gen++\n\tp := pending{", "\tp := pending{")
	got := runGenbump(t, modRoot, "./internal/bus", overlay)
	if len(got) == 0 {
		t.Fatal("genbump missed the stripped b.gen++ in (*Bus).Request")
	}
	for _, f := range got {
		if !strings.Contains(f.Diag.Message, "fingerprint-visible") {
			t.Errorf("unexpected message: %s", f.Diag.Message)
		}
	}
}

// TestDetectsStrippedBumpStatespace guards the visited store: the
// hot-tier retirement in (*Store).spillShard must not lose its bump, or
// the checkpoint dirtiness test (gen vs spilledGen) treats a spilled
// shard as covering later mutations and writes an incomplete checkpoint.
// spillShard's bump is the only one in its body, so stripping it cannot
// be masked by another bump in the same function.
func TestDetectsStrippedBumpStatespace(t *testing.T) {
	modRoot := analysistest.ModuleRoot(t)

	if got := runGenbump(t, modRoot, "./internal/statespace", nil); len(got) != 0 {
		t.Fatalf("unmodified internal/statespace should be clean, got %d findings:\n%s", len(got), render(got))
	}

	overlay := stripBump(t, modRoot, "internal/statespace/statespace.go",
		"\tsh.runs = append(sh.runs, r)\n\tsh.gen++\n\tsh.hot = make(map[uint64][]uint64)\n",
		"\tsh.runs = append(sh.runs, r)\n\tsh.hot = make(map[uint64][]uint64)\n")
	got := runGenbump(t, modRoot, "./internal/statespace", overlay)
	if len(got) == 0 {
		t.Fatal("genbump missed the stripped sh.gen++ in (*Store).spillShard")
	}
	for _, f := range got {
		pos := f.Pkg.Fset.Position(f.Diag.Pos)
		if filepath.Base(pos.Filename) != "statespace.go" {
			t.Errorf("finding outside statespace.go: %s", f)
		}
		if !strings.Contains(f.Diag.Message, "without a generation bump") {
			t.Errorf("unexpected message: %s", f.Diag.Message)
		}
	}
}

// TestIfaceGapClosed is the closed-gap regression test for the carried
// follow-up: the interface-dispatched call to an exempted mutator is now
// charged with the bump obligation exactly like its statically-
// dispatched twin. Exactly two rule-B findings — DirectCaller and
// IfaceCaller — and none on BumpedIfaceCaller, which discharges the
// obligation. If the engine regresses to static-only resolution, the
// count drops to 1 and this test fails.
func TestIfaceGapClosed(t *testing.T) {
	findings := analysistest.Run(t, filepath.Join("testdata", "ifacegap"), genbump.Analyzer)
	if len(findings) != 2 {
		t.Fatalf("ifacegap fixture produced %d findings, want exactly 2 (static + interface dispatch):\n%s",
			len(findings), render(findings))
	}
	var names []string
	for _, f := range findings {
		names = append(names, f.Diag.Message)
	}
	joined := strings.Join(names, "\n")
	for _, fn := range []string{"DirectCaller", "IfaceCaller"} {
		if !strings.Contains(joined, fn) {
			t.Errorf("no rule-B finding on %s:\n%s", fn, joined)
		}
	}
	if strings.Contains(joined, "BumpedIfaceCaller") {
		t.Errorf("BumpedIfaceCaller discharged its obligation but was flagged:\n%s", joined)
	}
}

// TestClosureGapClosed pins the stored-closure half: the func-valued
// struct field's bound literal charges its obligation to every caller of
// the field.
func TestClosureGapClosed(t *testing.T) {
	findings := analysistest.Run(t, filepath.Join("testdata", "closuregap"), genbump.Analyzer)
	if len(findings) != 1 {
		t.Fatalf("closuregap fixture produced %d findings, want exactly 1 (ClosureCaller):\n%s",
			len(findings), render(findings))
	}
	if !strings.Contains(findings[0].Diag.Message, "ClosureCaller") {
		t.Errorf("the finding should be ClosureCaller's, got: %s", findings[0].Diag.Message)
	}
}

func render(fs []analysis.Finding) string {
	var b strings.Builder
	for _, f := range fs {
		b.WriteString(f.String())
		b.WriteByte('\n')
	}
	return b.String()
}
