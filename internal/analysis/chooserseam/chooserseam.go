// Package chooserseam flags nondeterministic control flow that bypasses
// the chooser seam in packages marked //multicube:deterministic. The
// exploration stack (internal/sim's kernel, internal/mc's explorer) owes
// its soundness to a single rule: every scheduling decision flows through
// sim.Chooser, so the explorer can enumerate and replay it. A bare `go`
// statement or a multi-way `select` introduces runtime-scheduled
// branching the chooser never sees — states the explorer cannot
// reproduce, interleavings it cannot enumerate.
//
// Flagged:
//
//   - go statements (goroutine scheduling is outside the seam)
//   - select statements with more than one communication clause (the
//     runtime picks a ready case pseudo-randomly); single-case selects,
//     with or without default, are deterministic and allowed
//
// Escape hatch: //multicube:chooser-ok <reason> on the statement's line or
// the line above — for concurrency whose results are re-derived
// deterministically (the parallel explorer's worker pool) or that
// implements the seam itself (the coroutine pump).
package chooserseam

import (
	"go/ast"

	"multicube/internal/analysis"
)

// Analyzer is the chooserseam pass.
var Analyzer = &analysis.Analyzer{
	Name: "chooserseam",
	Doc:  "nondeterministic branching must flow through the chooser seam",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	if !pass.Dirs.PackageMarked("deterministic") {
		return nil, nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				if !pass.Dirs.NodeHas(n.Pos(), "chooser-ok") {
					pass.Reportf(n.Pos(),
						"go statement in a deterministic package bypasses the chooser seam (route the decision through sim.Chooser, or annotate //multicube:chooser-ok with why determinism is preserved)")
				}
			case *ast.SelectStmt:
				clauses := 0
				for _, c := range n.Body.List {
					if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
						clauses++
					}
				}
				if clauses > 1 && !pass.Dirs.NodeHas(n.Pos(), "chooser-ok") {
					pass.Reportf(n.Pos(),
						"multi-case select in a deterministic package: the runtime picks a ready case pseudo-randomly, bypassing the chooser seam (restructure, or annotate //multicube:chooser-ok)")
				}
			}
			return true
		})
	}
	return nil, nil
}
