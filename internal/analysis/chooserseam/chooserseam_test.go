package chooserseam_test

import (
	"path/filepath"
	"testing"

	"multicube/internal/analysis/analysistest"
	"multicube/internal/analysis/chooserseam"
)

func TestFixture(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "seamfix"), chooserseam.Analyzer)
}
