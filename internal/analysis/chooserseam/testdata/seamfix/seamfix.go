// Package seamfix exercises the chooserseam analyzer: go statements and
// multi-way selects in a deterministic package, and the chooser-ok
// annotation.
//
//multicube:deterministic
package seamfix

func spawn(work func()) {
	go work() // want `go statement in a deterministic package bypasses the chooser seam`
}

func pump(step func()) {
	//multicube:chooser-ok coroutine pump; strictly alternating handoff
	go step()
}

func race(a, b chan int) int {
	select { // want `multi-case select in a deterministic package`
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

func raceOK(a, b chan int) int {
	//multicube:chooser-ok replay re-derives the winner
	select {
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

func single(a chan int) (int, bool) {
	select { // single-case select with default: deterministic
	case v := <-a:
		return v, true
	default:
		return 0, false
	}
}

func recvOnly(a chan int) int {
	return <-a // plain channel ops are sequenced by the kernel
}
