// Package inclusion enforces the multilevel-inclusion discipline of the
// two-level Multicube cache hierarchy (paper Section 3): the processor
// caches above a snooping cache may only hold lines the snooping cache
// holds, so every statement that evicts a snooping-cache line — an
// Invalidate, a Drop, or an Insert that may displace a victim — must be
// followed, in the same function, by a call that reaches a purge of the
// registered upper-level views. This is the static mirror of invariant 6
// in internal/coherence/invariants.go (CheckInvariants), which catches
// the same omission dynamically but only on states a simulation actually
// visits; the pass catches it on every path at vet time.
//
// Scope and registration:
//
//   - Packages opt in with a //multicube:inclusion marker (any file,
//     conventionally the package doc). Unmarked packages — e.g.
//     internal/singlebus, whose machine has no upper level — are
//     skipped entirely.
//   - Evictors are the cross-package cache mutators listed in Config
//     (cache.Cache.Invalidate, .Drop, .Insert by default).
//   - A purge target is a same-package function annotated
//     //multicube:inclusion-purge. A call discharges an eviction when
//     the call-graph engine shows it can reach a purge target, so
//     wrappers like notifyInvalidate (which stamps snarf-staleness
//     timestamps before purging) count without their own annotation.
//
// The discharge check is positional, not path-sensitive: a purge-
// reaching call anywhere after the eviction in the same body (nested
// literals excluded — they may never run) satisfies the rule. That keeps
// the pass simple and matches the repository idiom of purging
// immediately after the eviction; a conditional purge on a different
// branch than the eviction would be accepted, which is the pass's
// accepted imprecision.
//
// Where the eviction is a single-argument call on a cache field
// (n.l2.Invalidate(line)), the finding carries a mechanical fix
// appending `; n.<purge>(line)` for the owning struct's purge method.
// Deliberate exceptions — evictions whose upper level is cleared some
// other way, or that precede machine teardown — are annotated
// //multicube:inclusion-ok <reason> on or above the statement, or on the
// enclosing function's doc comment.
package inclusion

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"multicube/internal/analysis"
)

// Config lists the evictor registration table.
type Config struct {
	// Evictors are cross-package methods, "pkgpath.Type.Method", whose
	// call may remove or displace a line of the snooping cache.
	Evictors []string
}

// DefaultConfig registers the substrate cache's evicting mutators.
var DefaultConfig = Config{
	Evictors: []string{
		"multicube/internal/cache.Cache.Invalidate",
		"multicube/internal/cache.Cache.Drop",
		"multicube/internal/cache.Cache.Insert",
	},
}

// Analyzer is the pass with the repository's default configuration.
var Analyzer = New(DefaultConfig)

// New builds an inclusion analyzer for the given evictor table.
func New(cfg Config) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "inclusion",
		Doc:  "snooping-cache evictions must reach an upper-level purge on a same-function path",
		Run:  func(pass *analysis.Pass) (any, error) { return run(pass, cfg) },
	}
}

func run(pass *analysis.Pass, cfg Config) (any, error) {
	if !pass.Dirs.PackageMarked("inclusion") {
		return nil, nil
	}
	evictors := make(map[*types.Func]bool)
	for _, entry := range cfg.Evictors {
		if fn := analysis.ResolveMethod(pass.Pkg, entry); fn != nil {
			evictors[fn] = true
		}
	}
	if len(evictors) == 0 {
		return nil, nil
	}
	graph := analysis.BuildCallGraph(pass)
	purges := purgeUnits(pass, graph)
	for _, u := range graph.Units {
		checkUnit(pass, graph, u, evictors, purges)
	}
	return nil, nil
}

// purgeUnits collects the //multicube:inclusion-purge-annotated units.
func purgeUnits(pass *analysis.Pass, graph *analysis.CallGraph) map[*analysis.CallUnit]bool {
	out := make(map[*analysis.CallUnit]bool)
	for _, u := range graph.Units {
		if u.Decl != nil {
			if _, ok := analysis.FindVerb(analysis.CommentGroupDirectives(u.Decl.Doc), "inclusion-purge"); ok {
				out[u] = true
			}
		} else if pass.Dirs.NodeHas(u.Lit.Pos(), "inclusion-purge") {
			out[u] = true
		}
	}
	return out
}

// evictSite is one registered eviction call awaiting discharge.
type evictSite struct {
	call *ast.CallExpr
	stmt ast.Stmt
	fn   *types.Func
}

// checkUnit flags evictions in one body with no later purge-reaching
// call.
func checkUnit(pass *analysis.Pass, graph *analysis.CallGraph, u *analysis.CallUnit, evictors map[*types.Func]bool, purges map[*analysis.CallUnit]bool) {
	funcExempt := false
	if u.Decl != nil {
		if _, ok := analysis.FindVerb(analysis.CommentGroupDirectives(u.Decl.Doc), "inclusion-ok"); ok {
			funcExempt = true
		}
	} else if pass.Dirs.NodeHas(u.Lit.Pos(), "inclusion-ok") {
		funcExempt = true
	}
	if funcExempt {
		return
	}

	reachesPurge := func(call *ast.CallExpr) bool {
		for _, callee := range graph.CalleesAt(call) {
			if graph.Reaches(callee, func(v *analysis.CallUnit) bool { return purges[v] }) {
				return true
			}
		}
		return false
	}

	var evicts []evictSite
	var dischargePos []token.Pos
	var stack []ast.Node
	ast.Inspect(u.Body(), func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if lit, ok := n.(*ast.FuncLit); ok && lit != u.Lit {
			return false // nested literals are their own units
		}
		stack = append(stack, n)
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok && evictors[fn] {
				evicts = append(evicts, evictSite{call: call, stmt: enclosingStmt(stack), fn: fn})
				return true
			}
		}
		if reachesPurge(call) {
			dischargePos = append(dischargePos, call.Pos())
		}
		return true
	})

	for _, ev := range evicts {
		discharged := false
		for _, p := range dischargePos {
			if p > ev.call.Pos() {
				discharged = true
				break
			}
		}
		if discharged {
			continue
		}
		annotated := pass.Dirs.NodeHas(ev.call.Pos(), "inclusion-ok")
		if !annotated && ev.stmt != nil {
			annotated = pass.Dirs.NodeHas(ev.stmt.Pos(), "inclusion-ok")
		}
		if annotated {
			continue
		}
		d := analysis.Diagnostic{
			Pos: ev.call.Pos(),
			Message: fmt.Sprintf(
				"snooping-cache eviction via %s does not reach an upper-level purge on a same-function path (call the //multicube:inclusion-purge helper after it, or annotate //multicube:inclusion-ok with a reason)",
				ev.fn.Name()),
		}
		if fix := purgeFix(pass, graph, ev); fix != nil {
			d.SuggestedFixes = []analysis.SuggestedFix{*fix}
		}
		pass.Report(d)
	}
}

// enclosingStmt returns the innermost statement on the walk stack.
func enclosingStmt(stack []ast.Node) ast.Stmt {
	for i := len(stack) - 1; i >= 0; i-- {
		if s, ok := stack[i].(ast.Stmt); ok {
			return s
		}
	}
	return nil
}

// purgeFix builds the mechanical `; <recv>.<purge>(<line>)` insertion
// after the eviction statement, when the eviction is a single-argument
// call on a cache-valued field (n.l2.Invalidate(line)) and the field's
// owning type has an annotated purge method.
func purgeFix(pass *analysis.Pass, graph *analysis.CallGraph, ev evictSite) *analysis.SuggestedFix {
	if len(ev.call.Args) != 1 || ev.stmt == nil {
		return nil
	}
	sel, ok := ev.call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	field, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	recv := field.X
	tv, ok := pass.TypesInfo.Types[recv]
	if !ok {
		return nil
	}
	t := tv.Type
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	purge := purgeMethodOf(pass, graph, named.Obj())
	if purge == "" {
		return nil
	}
	recvSrc := types.ExprString(recv)
	argSrc := types.ExprString(ev.call.Args[0])
	insert := fmt.Sprintf("; %s.%s(%s)", recvSrc, purge, argSrc)
	return &analysis.SuggestedFix{
		Message: fmt.Sprintf("insert %s.%s(%s) after the eviction", recvSrc, purge, argSrc),
		TextEdits: []analysis.TextEdit{{
			Pos:     ev.stmt.End(),
			End:     ev.stmt.End(),
			NewText: []byte(insert),
		}},
	}
}

// purgeMethodOf finds the inclusion-purge-annotated method declared on
// tn, if any.
func purgeMethodOf(pass *analysis.Pass, graph *analysis.CallGraph, tn *types.TypeName) string {
	for _, u := range graph.Units {
		if u.Decl == nil || u.Decl.Recv == nil || u.Obj == nil {
			continue
		}
		if _, ok := analysis.FindVerb(analysis.CommentGroupDirectives(u.Decl.Doc), "inclusion-purge"); !ok {
			continue
		}
		sig, ok := u.Obj.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			continue
		}
		rt := sig.Recv().Type()
		if p, ok := rt.Underlying().(*types.Pointer); ok {
			rt = p.Elem()
		}
		if named, ok := rt.(*types.Named); ok && named.Obj() == tn {
			return u.Obj.Name()
		}
	}
	return ""
}
