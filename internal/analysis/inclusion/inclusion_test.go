package inclusion_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"multicube/internal/analysis"
	"multicube/internal/analysis/analysistest"
	"multicube/internal/analysis/inclusion"
)

func TestFixture(t *testing.T) {
	findings := analysistest.Run(t, filepath.Join("testdata", "inclfix"), inclusion.Analyzer)
	analysistest.Golden(t, filepath.Join("testdata", "inclfix"), findings, "inclfix.go")
}

// stripPurge removes one exact occurrence of needle from the named repo
// file, returning an overlay; the test fails if the anchor drifted.
func stripPurge(t *testing.T, modRoot, relPath, needle, replacement string) map[string][]byte {
	t.Helper()
	path := filepath.Join(modRoot, filepath.FromSlash(relPath))
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading %s: %v", relPath, err)
	}
	if !bytes.Contains(src, []byte(needle)) {
		t.Fatalf("%s no longer contains %q; update the overlay anchor", relPath, needle)
	}
	mod := bytes.Replace(src, []byte(needle), []byte(replacement), 1)
	return map[string][]byte{path: mod}
}

func runInclusion(t *testing.T, modRoot, pattern string, overlay map[string][]byte) []analysis.Finding {
	t.Helper()
	pkgs, err := analysis.Load(analysis.LoadConfig{Dir: modRoot, Overlay: overlay}, pattern)
	if err != nil {
		t.Fatalf("loading %s: %v", pattern, err)
	}
	findings, _, err := analysis.RunAnalyzers(pkgs, []*analysis.Analyzer{inclusion.Analyzer})
	if err != nil {
		t.Fatalf("running inclusion on %s: %v", pattern, err)
	}
	return findings
}

// TestDetectsStrippedPurgeCoherence is the acceptance proof over real
// code: deleting the upper-view purge after the READ-MOD service path's
// invalidation in internal/coherence — the exact omission that would let
// an L1 retain a line its snooping cache lost, the bug class invariant 6
// only catches on visited states — must produce a finding, while the
// unmodified package stays clean.
func TestDetectsStrippedPurgeCoherence(t *testing.T) {
	modRoot := analysistest.ModuleRoot(t)

	if got := runInclusion(t, modRoot, "./internal/coherence", nil); len(got) != 0 {
		var b strings.Builder
		for _, f := range got {
			b.WriteString(f.String() + "\n")
		}
		t.Fatalf("unmodified internal/coherence should be clean, got %d findings:\n%s", len(got), b.String())
	}

	overlay := stripPurge(t, modRoot, "internal/coherence/handlers.go",
		"\tn.l2.Invalidate(op.Line)\n\tn.notifyInvalidate(op.Line)\n\tn.stats.Invalidations++",
		"\tn.l2.Invalidate(op.Line)\n\tn.stats.Invalidations++")
	got := runInclusion(t, modRoot, "./internal/coherence", overlay)
	if len(got) == 0 {
		t.Fatal("inclusion pass missed the stripped notifyInvalidate in serveReadModFromModified")
	}
	for _, f := range got {
		pos := f.Pkg.Fset.Position(f.Diag.Pos)
		if filepath.Base(pos.Filename) != "handlers.go" {
			t.Errorf("finding outside handlers.go: %s", f)
		}
		if !strings.Contains(f.Diag.Message, "upper-level purge") {
			t.Errorf("unexpected message: %s", f.Diag.Message)
		}
	}
}

// TestDetectsStrippedFailPendingPurge pins the defect this PR's audit
// actually found and fixed: the SYNC fall-back path dropping the
// reserved copy without purging the upper level.
func TestDetectsStrippedFailPendingPurge(t *testing.T) {
	modRoot := analysistest.ModuleRoot(t)
	overlay := stripPurge(t, modRoot, "internal/coherence/sync.go",
		"n.l2.Drop(op.Line)",
		"n.l2.Drop(op.Line); _ = op")
	// Also remove the purge that follows, restoring the pre-audit shape.
	path := filepath.Join(modRoot, "internal/coherence/sync.go")
	src := overlay[path]
	src = bytes.Replace(src, []byte("n.purgeUpper(op.Line)\n"), []byte("\n"), 1)
	overlay[path] = src

	got := runInclusion(t, modRoot, "./internal/coherence", overlay)
	if len(got) == 0 {
		t.Fatal("inclusion pass missed the pre-audit failPending shape (Drop without purge)")
	}
	found := false
	for _, f := range got {
		pos := f.Pkg.Fset.Position(f.Diag.Pos)
		if filepath.Base(pos.Filename) == "sync.go" && strings.Contains(f.Diag.Message, "Drop") {
			found = true
		}
	}
	if !found {
		t.Errorf("no Drop finding in sync.go; findings: %v", got)
	}
}
