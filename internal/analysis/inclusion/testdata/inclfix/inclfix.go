// Package inclfix exercises the inclusion pass: a two-level hierarchy
// whose snooping cache sits under a registered upper view, with
// discharged, undischarged, helper-discharged, and annotated evictions.
//
//multicube:inclusion
package inclfix

import "multicube/internal/cache"

// Hier mirrors the coherence Node shape: a snooping cache and the
// machine layer's upper-level purge hook.
type Hier struct {
	l2           *cache.Cache
	OnInvalidate func(line cache.Line)
}

// purgeUpper drops the line from the registered upper-level views.
//
//multicube:inclusion-purge
func (h *Hier) purgeUpper(line cache.Line) {
	if h.OnInvalidate != nil {
		h.OnInvalidate(line)
	}
}

// notify stamps bookkeeping and purges; calls to it discharge through
// the call graph without their own annotation.
func (h *Hier) notify(line cache.Line) {
	h.purgeUpper(line)
}

// evictBad invalidates without ever purging the upper level.
func evictBad(h *Hier, line cache.Line) {
	h.l2.Invalidate(line) // want `snooping-cache eviction via Invalidate does not reach an upper-level purge`
}

// dropBad drops without purging.
func dropBad(h *Hier, line cache.Line) {
	h.l2.Drop(line) // want `snooping-cache eviction via Drop does not reach an upper-level purge`
}

// insertBad may displace a victim and never purges; Insert's victim is
// not derivable mechanically, so no fix is suggested.
func insertBad(h *Hier, line cache.Line) {
	h.l2.Insert(line, cache.State(1), nil) // want `snooping-cache eviction via Insert does not reach an upper-level purge`
}

// evictGood purges directly after the eviction.
func evictGood(h *Hier, line cache.Line) {
	h.l2.Invalidate(line)
	h.purgeUpper(line)
}

// evictViaHelper discharges through notify, which reaches the purge
// transitively.
func evictViaHelper(h *Hier, line cache.Line) {
	h.l2.Drop(line)
	h.notify(line)
}

// evictConditional shows the positional (not path-sensitive) check: the
// purge under an if after the eviction counts.
func evictConditional(h *Hier, line cache.Line, gone bool) {
	h.l2.Insert(line, cache.State(1), nil)
	if gone {
		h.notify(line)
	}
}

// evictBefore purges BEFORE the eviction, which does not discharge it —
// the upper level would be repopulated stale.
func evictBefore(h *Hier, line cache.Line) {
	h.purgeUpper(line)
	h.l2.Invalidate(line) // want `snooping-cache eviction via Invalidate does not reach an upper-level purge`
}

// evictAnnotated carries the statement-level escape hatch.
func evictAnnotated(h *Hier, line cache.Line) {
	//multicube:inclusion-ok upper level cleared wholesale by the caller
	h.l2.Drop(line)
}

// evictFuncAnnotated carries the function-level escape hatch.
//
//multicube:inclusion-ok teardown path, upper caches already discarded
func evictFuncAnnotated(h *Hier, line cache.Line) {
	h.l2.Invalidate(line)
}
