// Package analysistest runs analyzers over fixture packages and checks
// the reported diagnostics against expectations written in the fixture
// sources, mirroring golang.org/x/tools/go/analysis/analysistest on this
// repository's standard-library analysis framework.
//
// An expectation is a comment of the form
//
//	// want "regexp"
//	// want `regexp` `another`
//
// on the same line as the code that should be flagged. Every diagnostic
// must match one expectation on its line, and every expectation must be
// matched by exactly one diagnostic; anything unmatched in either
// direction fails the test.
package analysistest

import (
	"bytes"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"multicube/internal/analysis"
)

// ModuleRoot walks up from the test's working directory to the
// enclosing go.mod, which anchors `go list` runs for fixture imports.
func ModuleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatalf("analysistest: getwd: %v", err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatalf("analysistest: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// expectation is one `// want` regexp awaiting a diagnostic.
type expectation struct {
	raw     string
	re      *regexp.Regexp
	matched bool
}

type lineKey struct {
	file string // base name
	line int
}

// wantRE extracts the quoted patterns after the want marker. Both
// interpreted and raw string syntax are accepted; raw strings let
// patterns contain double quotes without escaping.
var wantRE = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

// Run loads the fixture package in dir with analysis.LoadDir, applies
// the analyzers, and checks diagnostics against the fixture's want
// comments. It returns the findings so callers can make further
// assertions (e.g. on suggested fixes).
func Run(t *testing.T, dir string, analyzers ...*analysis.Analyzer) []analysis.Finding {
	t.Helper()
	pkg, err := analysis.LoadDir(ModuleRoot(t), dir)
	if err != nil {
		t.Fatalf("analysistest: loading %s: %v", dir, err)
	}
	findings, _, err := analysis.RunAnalyzers([]*analysis.Package{pkg}, analyzers)
	if err != nil {
		t.Fatalf("analysistest: running analyzers on %s: %v", dir, err)
	}

	wants := collectWants(t, pkg)
	for _, f := range findings {
		pos := pkg.Fset.Position(f.Diag.Pos)
		key := lineKey{filepath.Base(pos.Filename), pos.Line}
		matched := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(f.Diag.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s (%s)", pos, f.Diag.Message, f.Analyzer.Name)
		}
	}
	var keys []lineKey
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		for _, w := range wants[k] {
			if !w.matched {
				t.Errorf("%s:%d: no diagnostic matching %q", k.file, k.line, w.raw)
			}
		}
	}
	return findings
}

// collectWants parses every want comment in the fixture's syntax trees.
func collectWants(t *testing.T, pkg *analysis.Package) map[lineKey][]*expectation {
	t.Helper()
	wants := make(map[lineKey][]*expectation)
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := lineKey{filepath.Base(pos.Filename), pos.Line}
				quoted := wantRE.FindAllString(text, -1)
				if len(quoted) == 0 {
					t.Fatalf("%s: malformed want comment %q", pos, c.Text)
				}
				for _, q := range quoted {
					var pat string
					if q[0] == '`' {
						pat = q[1 : len(q)-1]
					} else {
						var err error
						pat, err = strconv.Unquote(q)
						if err != nil {
							t.Fatalf("%s: bad want pattern %s: %v", pos, q, err)
						}
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					wants[key] = append(wants[key], &expectation{raw: pat, re: re})
				}
			}
		}
	}
	return wants
}

// Golden applies every suggested fix reported against file (a base name
// inside dir) and compares the result with file + ".golden". The
// findings come from a prior Run over the same fixture.
func Golden(t *testing.T, dir string, findings []analysis.Finding, file string) {
	t.Helper()
	src, err := os.ReadFile(filepath.Join(dir, file))
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	type edit struct {
		pos, end int
		text     []byte
	}
	var edits []edit
	for _, f := range findings {
		pos := f.Pkg.Fset.Position(f.Diag.Pos)
		if filepath.Base(pos.Filename) != file || len(f.Diag.SuggestedFixes) == 0 {
			continue
		}
		for _, te := range f.Diag.SuggestedFixes[0].TextEdits {
			end := te.End
			if !end.IsValid() {
				end = te.Pos
			}
			edits = append(edits, edit{
				pos:  f.Pkg.Fset.Position(te.Pos).Offset,
				end:  f.Pkg.Fset.Position(end).Offset,
				text: te.NewText,
			})
		}
	}
	// Apply back to front so earlier offsets stay valid.
	sort.Slice(edits, func(i, j int) bool { return edits[i].pos > edits[j].pos })
	out := src
	for _, e := range edits {
		out = append(out[:e.pos], append(append([]byte(nil), e.text...), out[e.end:]...)...)
	}
	goldenPath := filepath.Join(dir, file+".golden")
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	if !bytes.Equal(out, want) {
		t.Errorf("fixed output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", goldenPath, out, want)
	}
}
