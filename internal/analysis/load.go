package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed, type-checked package ready for analysis.
type Package struct {
	PkgPath   string
	Dir       string
	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
	Dirs      *DirectiveIndex
}

// LoadConfig controls package loading.
type LoadConfig struct {
	// Dir is the directory `go list` runs in (the module root). Empty
	// means the current directory.
	Dir string

	// Overlay maps absolute file paths to replacement contents, letting
	// tests analyze a modified copy of a real package (e.g. one with a
	// generation bump deliberately removed) without touching the tree.
	Overlay map[string][]byte
}

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
}

// Load lists patterns with the go tool, parses each matched package's
// sources, and type-checks them against the export data of their
// dependencies. It never compiles the target packages itself and works
// fully offline (export data comes from the local build cache).
func Load(cfg LoadConfig, patterns ...string) ([]*Package, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,DepOnly",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = cfg.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var pkgs []*Package
	for _, t := range targets {
		var files []string
		for _, gf := range t.GoFiles {
			files = append(files, filepath.Join(t.Dir, gf))
		}
		pkg, err := typecheck(fset, imp, t.ImportPath, t.Dir, files, cfg.Overlay)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir loads a single package from the .go files directly inside dir
// (excluding *_test.go), resolving its imports — typically a testdata
// fixture outside the module. modDir anchors the `go list` run that
// fetches export data for the fixture's imports.
func LoadDir(modDir, dir string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	sort.Strings(files)

	// Parse first to learn the import set, then list it for export data.
	fset := token.NewFileSet()
	var syntax []*ast.File
	for _, f := range files {
		af, err := parser.ParseFile(fset, f, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		syntax = append(syntax, af)
	}
	imports := make(map[string]bool)
	for _, af := range syntax {
		for _, im := range af.Imports {
			imports[strings.Trim(im.Path.Value, `"`)] = true
		}
	}
	exports := make(map[string]string)
	if len(imports) > 0 {
		var paths []string
		for p := range imports {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		args := append([]string{
			"list", "-export", "-deps",
			"-json=ImportPath,Dir,Export,GoFiles,Standard,DepOnly",
		}, paths...)
		cmd := exec.Command("go", args...)
		cmd.Dir = modDir
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		out, err := cmd.Output()
		if err != nil {
			return nil, fmt.Errorf("analysis: go list fixture imports: %v\n%s", err, stderr.String())
		}
		dec := json.NewDecoder(bytes.NewReader(out))
		for {
			var p listedPkg
			if err := dec.Decode(&p); err == io.EOF {
				break
			} else if err != nil {
				return nil, err
			}
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	imp := exportImporter(fset, exports)
	return typecheckParsed(fset, imp, syntax[0].Name.Name, dir, syntax)
}

// exportImporter resolves import paths through the export files go list
// reported.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

func typecheck(fset *token.FileSet, imp types.Importer, pkgPath, dir string, files []string, overlay map[string][]byte) (*Package, error) {
	var syntax []*ast.File
	for _, f := range files {
		var src any
		if overlay != nil {
			if b, ok := overlay[f]; ok {
				src = b
			}
		}
		af, err := parser.ParseFile(fset, f, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		syntax = append(syntax, af)
	}
	pkg, err := typecheckParsed(fset, imp, pkgPath, dir, syntax)
	if err != nil {
		return nil, err
	}
	return pkg, nil
}

func typecheckParsed(fset *token.FileSet, imp types.Importer, pkgPath, dir string, syntax []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(pkgPath, fset, syntax, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", pkgPath, err)
	}
	return &Package{
		PkgPath:   pkgPath,
		Dir:       dir,
		Fset:      fset,
		Syntax:    syntax,
		Types:     tpkg,
		TypesInfo: info,
		Dirs:      IndexDirectives(fset, syntax),
	}, nil
}
