// Package analysis is a self-contained static-analysis framework for the
// multicube repository: a compatible subset of golang.org/x/tools/go/analysis
// built on the standard library alone (go/parser + go/types, with dependency
// export data served by `go list -export`), so the invariant suite runs in
// hermetic environments without fetching x/tools.
//
// The API mirrors go/analysis deliberately — Analyzer, Pass, Diagnostic,
// SuggestedFix, TextEdit carry the same shapes and semantics — so the passes
// in the subpackages (genbump, detmap, nowallclock, chooserseam) could be
// ported to the upstream framework by changing only import paths.
//
// The suite mechanically guards two disciplines the simulator's correctness
// rests on:
//
//   - Fingerprint-generation discipline: every mutation of
//     fingerprint-visible state must be covered by a generation-counter
//     bump, or the incremental fingerprint cache (internal/coherence/fpincr,
//     internal/singlebus/fpincr) silently merges distinct states.
//   - Explorer determinism: no wall clock, no unseeded randomness, no
//     map-iteration-order dependence, and no nondeterministic branching
//     outside the chooser seam in the deterministic packages.
//
// See the package documentation of each pass for the enforced invariant and
// the directive-comment syntax for registering state and annotating
// intentional exceptions.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static-analysis pass.
type Analyzer struct {
	// Name identifies the pass in diagnostics and driver flags. It must be
	// a valid Go identifier.
	Name string

	// Doc is the help text: first line a one-sentence summary, the rest the
	// enforced invariant and its escape hatches.
	Doc string

	// Run applies the pass to one package. It reports findings through
	// pass.Report and returns an arbitrary result value (unused by this
	// driver, kept for upstream compatibility).
	Run func(*Pass) (any, error)
}

// Pass provides one analyzer run with a single type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Dirs is the directive index of the package's files, shared by all
	// passes over the package.
	Dirs *DirectiveIndex

	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)
}

// Reportf reports a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	End     token.Pos // optional
	Message string

	// SuggestedFixes are mechanical edits that would resolve the finding.
	SuggestedFixes []SuggestedFix
}

// SuggestedFix is one way to fix a diagnostic, expressed as text edits.
type SuggestedFix struct {
	Message   string
	TextEdits []TextEdit
}

// TextEdit replaces [Pos, End) with NewText. Pos == End inserts.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText []byte
}
