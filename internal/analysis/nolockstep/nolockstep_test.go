package nolockstep_test

import (
	"path/filepath"
	"testing"

	"multicube/internal/analysis/analysistest"
	"multicube/internal/analysis/nolockstep"
)

func TestFixture(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "lockfix"), nolockstep.Analyzer)
}
