// Package lockfix exercises the nolockstep analyzer: concurrency
// primitives inside and outside syncpoint functions of a file marked as
// parallel runtime.
//
//multicube:parallel-runtime fixture
package lockfix

import (
	"sync"
	"sync/atomic"
)

// Declarations of channel and sync types are fine anywhere; only
// operations communicate.
type pool struct {
	jobs chan int
	done chan struct{}
	mu   sync.Mutex
	n    atomic.Int64
}

// dispatch is not a syncpoint, so every primitive is flagged.
func dispatch(p *pool) {
	go drain(p)  // want `go statement outside a syncpoint function`
	p.jobs <- 1  // want `channel send outside a syncpoint function`
	<-p.done     // want `channel receive outside a syncpoint function`
	close(p.jobs) // want `channel close outside a syncpoint function`
	p.n.Add(1)   // want `sync/atomic call outside a syncpoint function`
	p.mu.Lock()  // want `sync call outside a syncpoint function`
	atomic.AddUint64(new(uint64), 1) // want `sync/atomic call outside a syncpoint function`
	select { // want `select statement outside a syncpoint function`
	default:
	}
}

// drain ranges over the job channel without being a syncpoint.
func drain(p *pool) {
	for range p.jobs { // want `range over a channel outside a syncpoint function`
	}
}

// barrier is the audited rendezvous: everything is allowed here,
// including primitives inside nested function literals.
//
//multicube:syncpoint fixture barrier
func barrier(p *pool) {
	go func() {
		p.jobs <- 2
		p.n.Add(1)
	}()
	<-p.done
	close(p.done)
}

// hatch demonstrates the per-line escape.
func hatch(p *pool) {
	//multicube:nolockstep-ok fixture: counter is read only after Wait
	p.n.Add(1)
}

// iter is a plain range over a slice — not a channel, not flagged.
func iter(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}
