// unmarked.go carries no parallel-runtime directive, so the analyzer
// ignores it even though the package's other file is marked: the
// discipline is per file, matching how internal/sim keeps its parallel
// runtime in one audited file.
package lockfix

func unmarked(p *pool) {
	go drain(p)
	p.jobs <- 3
	<-p.done
	p.mu.Lock()
}
