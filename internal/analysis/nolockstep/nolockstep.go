// Package nolockstep confines concurrency primitives in parallel-runtime
// files to their synchronization points. A file marked
// //multicube:parallel-runtime implements deterministic parallel
// execution (the conservative engine in internal/sim/parallel.go): its
// correctness argument is that all cross-goroutine communication happens
// at a handful of audited rendezvous, each annotated
// //multicube:syncpoint on its function. A goroutine launch, channel
// operation, or sync/atomic call anywhere else in such a file is a new,
// unaudited communication edge — exactly the kind of drive-by "small
// optimization" that silently breaks the ownership-transfer discipline
// the race detector and the differential tests rely on.
//
// Flagged outside //multicube:syncpoint functions:
//
//   - go statements
//   - channel sends, receives, closes, ranges over a channel
//   - select statements
//   - calls into package sync or sync/atomic (both package-level
//     functions and methods on their types, e.g. Mutex.Lock or
//     atomic.Int64.Add)
//
// Declaring channel or sync types is allowed anywhere — only operations
// communicate. Files without the parallel-runtime marker are ignored.
//
// Escape hatch: //multicube:nolockstep-ok <reason> on the operation's
// line or the line above.
package nolockstep

import (
	"go/ast"
	"go/token"
	"go/types"

	"multicube/internal/analysis"
)

// Analyzer is the nolockstep pass.
var Analyzer = &analysis.Analyzer{
	Name: "nolockstep",
	Doc:  "concurrency primitives in parallel-runtime files stay inside syncpoint functions",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		if !fileMarked(f) {
			continue
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				if isSyncpoint(fd) {
					continue
				}
				check(pass, fd, "function "+fd.Name.Name)
				continue
			}
			check(pass, decl, "package-level code")
		}
	}
	return nil, nil
}

// fileMarked reports whether any comment of f carries the
// parallel-runtime directive (conventionally in the package or file doc
// comment).
func fileMarked(f *ast.File) bool {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if d, ok := analysis.ParseDirective(c); ok && d.Verb == "parallel-runtime" {
				return true
			}
		}
	}
	return false
}

// isSyncpoint reports whether the function's doc comment carries the
// syncpoint directive.
func isSyncpoint(fd *ast.FuncDecl) bool {
	for _, d := range analysis.CommentGroupDirectives(fd.Doc) {
		if d.Verb == "syncpoint" {
			return true
		}
	}
	return false
}

// check walks one declaration and reports every concurrency primitive.
func check(pass *analysis.Pass, n ast.Node, where string) {
	report := func(pos token.Pos, what string) {
		if pass.Dirs.NodeHas(pos, "nolockstep-ok") {
			return
		}
		pass.Reportf(pos,
			"%s outside a syncpoint function (%s, in a parallel-runtime file): every cross-goroutine communication edge must live in an audited //multicube:syncpoint function, or be annotated //multicube:nolockstep-ok",
			what, where)
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			report(n.Pos(), "go statement")
		case *ast.SendStmt:
			report(n.Pos(), "channel send")
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				report(n.Pos(), "channel receive")
			}
		case *ast.SelectStmt:
			report(n.Pos(), "select statement")
		case *ast.RangeStmt:
			if tv, ok := pass.TypesInfo.Types[n.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					report(n.Pos(), "range over a channel")
				}
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "close" {
				if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
					report(n.Pos(), "channel close")
				}
				return true
			}
			if p := syncPackage(pass, n); p != "" {
				report(n.Pos(), p+" call")
			}
		}
		return true
	})
}

// syncPackage reports "sync" or "sync/atomic" when the call targets one
// of those packages — a package-level function (atomic.AddUint64) or a
// method on one of their types (Mutex.Lock, atomic.Int64.Add) — and ""
// otherwise.
func syncPackage(pass *analysis.Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	if id, ok := sel.X.(*ast.Ident); ok {
		if pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok {
			return syncPath(pn.Imported().Path())
		}
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok || tv.Type == nil {
		return ""
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok && n.Obj().Pkg() != nil {
		return syncPath(n.Obj().Pkg().Path())
	}
	return ""
}

func syncPath(p string) string {
	if p == "sync" || p == "sync/atomic" {
		return p
	}
	return ""
}
