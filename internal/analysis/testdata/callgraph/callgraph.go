// Package callgraph exercises every call shape the engine resolves: the
// unit test walks the edges this file induces.
package callgraph

var hits int

func target() { hits++ }

// static dispatch: a plain same-package call.
func static() { target() }

// doer is dispatched through an interface value; the engine charges both
// same-package implementations.
type doer interface{ Do() }

type implA struct{}

func (implA) Do() { target() }

type implB struct{}

func (*implB) Do() {}

func viaIface(d doer) { d.Do() }

// holder carries a func-valued field bound at a composite-literal
// construction site.
type holder struct{ fn func() }

var pkgHolder = holder{fn: func() { target() }}

func viaField() { pkgHolder.fn() }

// viaLocalVar calls through a local variable bound to a declared
// function.
func viaLocalVar() {
	f := target
	f()
}

// viaLit calls a stored literal, which itself calls target.
func viaLit() {
	g := func() { target() }
	g()
}

// viaParam receives the func value as a parameter: deliberately outside
// the soundness boundary, no edge.
func viaParam(f func()) { f() }

// viaMethodValue stores a concrete method value in a local.
func viaMethodValue(a implA) {
	m := a.Do
	m()
}
