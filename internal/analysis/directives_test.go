package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func TestParseDirective(t *testing.T) {
	const src = `package p

//multicube:deterministic
// an ordinary comment
//multicube:fpfield guard=Node extra words here
//multicube:
// multicube:spaced is not a directive
var x int
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	var got []Directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if d, ok := ParseDirective(c); ok {
				got = append(got, d)
			}
		}
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d directives, want 2: %+v", len(got), got)
	}
	if got[0].Verb != "deterministic" || got[0].Args != "" {
		t.Errorf("got[0] = %+v, want deterministic with no args", got[0])
	}
	if got[1].Verb != "fpfield" || got[1].Arg("guard") != "Node" {
		t.Errorf("got[1] = %+v, want fpfield guard=Node", got[1])
	}
	if got[1].Arg("missing") != "" {
		t.Errorf("Arg on absent key = %q, want empty", got[1].Arg("missing"))
	}
}

func TestDirectiveIndexResolution(t *testing.T) {
	const src = `package p

//multicube:deterministic
var a int

func f(m map[int]int) {
	//multicube:detrange-ok line above
	for range m {
	}
	for range m { //multicube:chooser-ok same line
	}
	for range m {
	}
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	ix := IndexDirectives(fset, []*ast.File{f})
	if !ix.PackageMarked("deterministic") {
		t.Error("package marker not indexed")
	}
	if ix.PackageMarked("wallclock-ok") {
		t.Error("unused verb reported as package-wide")
	}

	lines := map[int]struct {
		verb string
		want bool
	}{
		8:  {"detrange-ok", true},  // directive on line 7, statement on 8
		10: {"chooser-ok", true},   // same-line trailing directive
		12: {"detrange-ok", false}, // unannotated loop
	}
	for line, c := range lines {
		pos := fset.File(f.Pos()).LineStart(line)
		if got := ix.NodeHas(pos, c.verb); got != c.want {
			t.Errorf("line %d NodeHas(%s) = %v, want %v", line, c.verb, got, c.want)
		}
	}
}
