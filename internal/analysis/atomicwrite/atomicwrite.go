// Package atomicwrite enforces the durability protocol the checkpoint
// and farm stores rely on: a durable file becomes visible only through
// the temp+sync+rename shape (CreateTemp in the destination directory,
// write, Sync, Close, Rename), and durable files are deleted only under
// the manifest-pin discipline. A crash-window violation of exactly this
// protocol slipped past PR 9's review and was only caught by a CI kill
// loop; this pass catches the whole class at vet time.
//
// Scope and rules, in packages marked //multicube:durable (any file):
//
//   - os.Create / os.WriteFile of a non-temp path is flagged: the write
//     lands in place, so a crash mid-write leaves a torn durable file.
//     A path is temp when its source text mentions ".tmp" (the
//     repository's temp-suffix convention) — in-place writes of scratch
//     files are the caller's business.
//
//   - os.Rename whose source is the Name() of an os.CreateTemp file
//     requires a Sync() of that file positioned before the rename in
//     the same function: rename is atomic, but without the fsync the
//     data may still be dirty page cache when the new name appears, and
//     a crash yields a complete-looking, empty-or-torn file. The
//     finding carries a mechanical fix inserting `<f>.Sync(); ` before
//     the Close (a skeleton — real code should check the error, as the
//     audited writers do). A rename from any other source is flagged
//     too: the pass cannot see its durability.
//
//   - os.Remove / os.RemoveAll of a non-temp path is flagged: durable
//     deletes must stay behind the manifest-pin discipline (only
//     generations the manifest no longer references may go). Removing a
//     tracked temp file (error-path cleanup of tmp.Name()) is always
//     allowed.
//
// Deliberate exceptions — the manifest-pinned GC sweeps, retirement of
// superseded runs, eviction of cache entries whose loss only costs
// recomputation — are annotated //multicube:atomicwrite-ok <reason> on
// or above the statement, or on the enclosing function's doc comment.
// The check is same-function: a Sync performed by a helper on a passed
// *os.File is invisible, which is the pass's accepted soundness
// boundary (the repository idiom keeps the whole shape in one writer).
package atomicwrite

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"multicube/internal/analysis"
)

// Analyzer is the pass; it needs no per-repository configuration beyond
// the //multicube:durable package marker.
var Analyzer = &analysis.Analyzer{
	Name: "atomicwrite",
	Doc:  "durable files must be written temp+sync+rename and deleted only under the manifest-pin discipline",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	if !pass.Dirs.PackageMarked("durable") {
		return nil, nil
	}
	graph := analysis.BuildCallGraph(pass)
	for _, u := range graph.Units {
		checkUnit(pass, u)
	}
	return nil, nil
}

// osFunc resolves a call to package os, returning the function name.
func osFunc(pass *analysis.Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "os" {
		return ""
	}
	return fn.Name()
}

// fileMethod matches a `<v>.<name>()` call on a tracked temp file,
// returning the receiver object.
func fileMethod(pass *analysis.Pass, call *ast.CallExpr, name string, temps map[types.Object]bool) types.Object {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return nil
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil || !temps[obj] {
		return nil
	}
	return obj
}

// tempish reports whether a path expression follows the repository's
// temp-suffix convention.
func tempish(expr ast.Expr) bool {
	return strings.Contains(types.ExprString(expr), ".tmp")
}

func checkUnit(pass *analysis.Pass, u *analysis.CallUnit) {
	if funcAnnotated(pass, u) {
		return
	}

	// Walk 1: track os.CreateTemp files and their Sync/Close positions.
	temps := make(map[types.Object]bool)
	syncPos := make(map[types.Object][]token.Pos)
	closeStmts := make(map[types.Object][]ast.Stmt)
	walk(pass, u, func(call *ast.CallExpr, stmt ast.Stmt) {
		if obj := fileMethod(pass, call, "Sync", temps); obj != nil {
			syncPos[obj] = append(syncPos[obj], call.Pos())
		}
		if obj := fileMethod(pass, call, "Close", temps); obj != nil && stmt != nil {
			closeStmts[obj] = append(closeStmts[obj], stmt)
		}
	}, func(assign *ast.AssignStmt) {
		if len(assign.Rhs) != 1 {
			return
		}
		call, ok := assign.Rhs[0].(*ast.CallExpr)
		if !ok || osFunc(pass, call) != "CreateTemp" || len(assign.Lhs) == 0 {
			return
		}
		if id, ok := assign.Lhs[0].(*ast.Ident); ok {
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				temps[obj] = true
			} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
				temps[obj] = true
			}
		}
	})

	// Walk 2: classify the durable-file operations.
	walk(pass, u, func(call *ast.CallExpr, stmt ast.Stmt) {
		name := osFunc(pass, call)
		if name == "" || len(call.Args) == 0 || annotated(pass, call, stmt) {
			return
		}
		switch name {
		case "Create", "WriteFile":
			if tempish(call.Args[0]) {
				return
			}
			pass.Reportf(call.Pos(),
				"durable file written in place via os.%s (crash leaves a torn file); write a .tmp sibling, Sync, then Rename — or annotate //multicube:atomicwrite-ok with a reason",
				name)
		case "Rename":
			if len(call.Args) < 2 {
				return
			}
			src := call.Args[0]
			if obj := nameOf(pass, src, temps); obj != nil {
				if syncedBefore(syncPos[obj], call.Pos()) {
					return
				}
				d := analysis.Diagnostic{
					Pos: call.Pos(),
					Message: fmt.Sprintf(
						"os.Rename publishes %s without a %s.Sync() before it (crash can expose an empty or torn durable file)",
						types.ExprString(src), obj.Name()),
				}
				if fix := syncFix(obj, closeStmts[obj], call.Pos(), stmt); fix != nil {
					d.SuggestedFixes = []analysis.SuggestedFix{*fix}
				}
				pass.Report(d)
				return
			}
			if tempish(src) {
				return
			}
			pass.Reportf(call.Pos(),
				"os.Rename source %s is not a synced temp file from this function; route durable writes through CreateTemp+Sync+Rename, or annotate //multicube:atomicwrite-ok with a reason",
				types.ExprString(src))
		case "Remove", "RemoveAll":
			if nameOf(pass, call.Args[0], temps) != nil || tempish(call.Args[0]) {
				return // error-path cleanup of a tracked temp file
			}
			pass.Reportf(call.Pos(),
				"durable file deleted via os.%s outside the manifest-pin discipline; annotate //multicube:atomicwrite-ok with the retention rule that makes this safe",
				name)
		}
	}, nil)
}

// walk traverses the unit body (nested literals excluded), reporting
// calls with their enclosing statement and, optionally, assignments.
func walk(pass *analysis.Pass, u *analysis.CallUnit, onCall func(*ast.CallExpr, ast.Stmt), onAssign func(*ast.AssignStmt)) {
	var stack []ast.Node
	ast.Inspect(u.Body(), func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if lit, ok := n.(*ast.FuncLit); ok && lit != u.Lit {
			return false
		}
		stack = append(stack, n)
		switch n := n.(type) {
		case *ast.CallExpr:
			onCall(n, enclosingStmt(stack))
		case *ast.AssignStmt:
			if onAssign != nil {
				onAssign(n)
			}
		}
		return true
	})
}

// enclosingStmt returns the innermost block-level statement containing
// the call — not an if/for init clause, where text cannot be inserted.
func enclosingStmt(stack []ast.Node) ast.Stmt {
	for i := len(stack) - 1; i > 0; i-- {
		s, ok := stack[i].(ast.Stmt)
		if !ok {
			continue
		}
		switch stack[i-1].(type) {
		case *ast.BlockStmt, *ast.CaseClause, *ast.CommClause:
			return s
		}
	}
	return nil
}

// nameOf matches `<v>.Name()` for a tracked temp file v.
func nameOf(pass *analysis.Pass, expr ast.Expr, temps map[types.Object]bool) types.Object {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return nil
	}
	return fileMethod(pass, call, "Name", temps)
}

func syncedBefore(positions []token.Pos, renamePos token.Pos) bool {
	for _, p := range positions {
		if p < renamePos {
			return true
		}
	}
	return false
}

// syncFix inserts `<v>.Sync(); ` before the last Close of the file that
// precedes the rename — the final point the descriptor is open (earlier
// Closes are error-path cleanup) — falling back to the rename statement
// itself when no Close was seen.
func syncFix(obj types.Object, closes []ast.Stmt, renamePos token.Pos, rename ast.Stmt) *analysis.SuggestedFix {
	var at ast.Stmt
	for _, s := range closes {
		if s.Pos() < renamePos && (at == nil || s.Pos() > at.Pos()) {
			at = s
		}
	}
	if at == nil {
		at = rename
	}
	if at == nil {
		return nil
	}
	return &analysis.SuggestedFix{
		Message: fmt.Sprintf("insert %s.Sync() before the descriptor closes", obj.Name()),
		TextEdits: []analysis.TextEdit{{
			Pos:     at.Pos(),
			End:     at.Pos(),
			NewText: []byte(obj.Name() + ".Sync(); "),
		}},
	}
}

// annotated reports a statement-level atomicwrite-ok escape hatch.
func annotated(pass *analysis.Pass, call *ast.CallExpr, stmt ast.Stmt) bool {
	if pass.Dirs.NodeHas(call.Pos(), "atomicwrite-ok") {
		return true
	}
	return stmt != nil && pass.Dirs.NodeHas(stmt.Pos(), "atomicwrite-ok")
}

// funcAnnotated reports a function-level atomicwrite-ok escape hatch.
func funcAnnotated(pass *analysis.Pass, u *analysis.CallUnit) bool {
	if u.Decl != nil {
		_, ok := analysis.FindVerb(analysis.CommentGroupDirectives(u.Decl.Doc), "atomicwrite-ok")
		return ok
	}
	return pass.Dirs.NodeHas(u.Lit.Pos(), "atomicwrite-ok")
}
