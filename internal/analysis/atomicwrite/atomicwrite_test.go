package atomicwrite_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"multicube/internal/analysis"
	"multicube/internal/analysis/analysistest"
	"multicube/internal/analysis/atomicwrite"
)

func TestFixture(t *testing.T) {
	findings := analysistest.Run(t, filepath.Join("testdata", "atomfix"), atomicwrite.Analyzer)
	analysistest.Golden(t, filepath.Join("testdata", "atomfix"), findings, "atomfix.go")
}

// stripSync removes one exact occurrence of needle from the named repo
// file, returning an overlay; the test fails if the anchor drifted.
func stripSync(t *testing.T, modRoot, relPath, needle string) map[string][]byte {
	t.Helper()
	path := filepath.Join(modRoot, filepath.FromSlash(relPath))
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading %s: %v", relPath, err)
	}
	if !bytes.Contains(src, []byte(needle)) {
		t.Fatalf("%s no longer contains %q; update the overlay anchor", relPath, needle)
	}
	mod := bytes.Replace(src, []byte(needle), nil, 1)
	return map[string][]byte{path: mod}
}

func runAtomicwrite(t *testing.T, modRoot, pattern string, overlay map[string][]byte) []analysis.Finding {
	t.Helper()
	pkgs, err := analysis.Load(analysis.LoadConfig{Dir: modRoot, Overlay: overlay}, pattern)
	if err != nil {
		t.Fatalf("loading %s: %v", pattern, err)
	}
	findings, _, err := analysis.RunAnalyzers(pkgs, []*analysis.Analyzer{atomicwrite.Analyzer})
	if err != nil {
		t.Fatalf("running atomicwrite on %s: %v", pattern, err)
	}
	return findings
}

func assertClean(t *testing.T, modRoot, pattern string) {
	t.Helper()
	if got := runAtomicwrite(t, modRoot, pattern, nil); len(got) != 0 {
		var b strings.Builder
		for _, f := range got {
			b.WriteString(f.String() + "\n")
		}
		t.Fatalf("unmodified %s should be clean, got %d findings:\n%s", pattern, len(got), b.String())
	}
}

// assertSyncFinding requires a missing-Sync finding in file and nothing
// else new; the overlay restores the exact pre-audit shape of a writer.
func assertSyncFinding(t *testing.T, findings []analysis.Finding, file string) {
	t.Helper()
	if len(findings) == 0 {
		t.Fatalf("atomicwrite pass missed the stripped Sync in %s", file)
	}
	for _, f := range findings {
		pos := f.Pkg.Fset.Position(f.Diag.Pos)
		if filepath.Base(pos.Filename) != file {
			t.Errorf("finding outside %s: %s", file, f)
		}
		if !strings.Contains(f.Diag.Message, "without a tmp.Sync()") {
			t.Errorf("unexpected message: %s", f.Diag.Message)
		}
		if len(f.Diag.SuggestedFixes) == 0 {
			t.Errorf("missing-Sync finding carries no fix: %s", f)
		}
	}
}

// TestDetectsStrippedSyncCheckpoint is the acceptance proof over real
// code: deleting the manifest writer's Sync in internal/statespace —
// the exact pre-audit shape, where a crash after the rename could leave
// a torn manifest that a resume then trusts — must produce a finding,
// while the fixed package stays clean.
func TestDetectsStrippedSyncCheckpoint(t *testing.T) {
	modRoot := analysistest.ModuleRoot(t)
	assertClean(t, modRoot, "./internal/statespace")

	overlay := stripSync(t, modRoot, "internal/statespace/checkpoint.go",
		"\tif err := tmp.Sync(); err != nil {\n\t\ttmp.Close()\n\t\tos.Remove(tmp.Name())\n\t\treturn fmt.Errorf(\"statespace: manifest: %w\", err)\n\t}\n")
	assertSyncFinding(t, runAtomicwrite(t, modRoot, "./internal/statespace", overlay), "checkpoint.go")
}

// TestDetectsStrippedSyncFarmCache does the same for the farm result
// cache's Put writer.
func TestDetectsStrippedSyncFarmCache(t *testing.T) {
	modRoot := analysistest.ModuleRoot(t)
	assertClean(t, modRoot, "./internal/farm")

	overlay := stripSync(t, modRoot, "internal/farm/cache.go",
		"\tif err := tmp.Sync(); err != nil {\n\t\ttmp.Close()\n\t\tos.Remove(tmp.Name())\n\t\treturn fmt.Errorf(\"farm: cache put: %w\", err)\n\t}\n")
	assertSyncFinding(t, runAtomicwrite(t, modRoot, "./internal/farm", overlay), "cache.go")
}
