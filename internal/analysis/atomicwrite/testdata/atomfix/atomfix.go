// Package atomfix is the atomicwrite fixture: one function per rule,
// plus the clean temp+sync+rename shape and both escape hatches.
//
//multicube:durable
package atomfix

import (
	"os"
	"path/filepath"
)

// writeInPlace violates rule 1 twice: the durable payload lands at its
// final path with no crash-safe window.
func writeInPlace(dir string, data []byte) error {
	if err := os.WriteFile(filepath.Join(dir, "state.bin"), data, 0o644); err != nil { // want `durable file written in place via os.WriteFile`
		return err
	}
	f, err := os.Create(filepath.Join(dir, "log.txt")) // want `durable file written in place via os.Create`
	if err != nil {
		return err
	}
	return f.Close()
}

// writeScratch is clean: the .tmp suffix marks the path as scratch.
func writeScratch(dir string, data []byte) error {
	return os.WriteFile(filepath.Join(dir, "scratch.tmp"), data, 0o644)
}

// writeProper is the canonical shape: temp sibling, Sync before Close,
// rename into place, temp-derived cleanup on every error path.
func writeProper(dir string, data []byte) error {
	tmp, err := os.CreateTemp(dir, "state.tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, "state.bin")); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// writeMissingSync violates rule 2: the rename publishes a temp file
// whose data may still be dirty page cache. The mechanical fix inserts
// the Sync before the final Close, not the error-path one.
func writeMissingSync(dir string, data []byte) error {
	tmp, err := os.CreateTemp(dir, "state.tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), filepath.Join(dir, "state.bin")) // want `os.Rename publishes tmp.Name\(\) without a tmp.Sync\(\)`
}

// renameForeign violates rule 2's other arm: the source is not a temp
// file this function created, so its durability is invisible.
func renameForeign(dir string) error {
	return os.Rename(filepath.Join(dir, "staged"), filepath.Join(dir, "state.bin")) // want `is not a synced temp file from this function`
}

// deleteDurable violates rule 3: nothing ties the delete to the
// manifest-pin discipline.
func deleteDurable(dir string) error {
	if err := os.Remove(filepath.Join(dir, "state.bin")); err != nil { // want `durable file deleted via os.Remove outside the manifest-pin discipline`
		return err
	}
	return os.RemoveAll(dir) // want `durable file deleted via os.RemoveAll outside the manifest-pin discipline`
}

// deleteAnnotated is clean: the statement-level escape hatch names the
// retention rule.
func deleteAnnotated(dir string) error {
	//multicube:atomicwrite-ok fixture stand-in for a manifest-pinned sweep
	return os.Remove(filepath.Join(dir, "stale.bin"))
}

// deleteFuncAnnotated is clean: the function-level escape hatch covers
// every durable operation in the body.
//
//multicube:atomicwrite-ok fixture stand-in for a GC that runs after the manifest rename
func deleteFuncAnnotated(dir string) error {
	if err := os.WriteFile(filepath.Join(dir, "tombstone"), nil, 0o644); err != nil {
		return err
	}
	return os.Remove(filepath.Join(dir, "state.bin"))
}
