package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Directive comments carry the suite's machine-readable annotations. The
// syntax is a comment beginning exactly with "//multicube:" (no space, like
// //go: directives), a verb, and optional space-separated arguments; the
// remainder after the recognized arguments is a free-form reason.
//
// Verbs understood by the passes:
//
//	//multicube:deterministic
//	    Package marker (any file). Opts the package into the determinism
//	    passes (detmap, nowallclock, chooserseam).
//
//	//multicube:gencounter
//	    On a struct field: marks it as the generation counter guarding the
//	    struct's fingerprint-visible state.
//
//	//multicube:fpfield [guard=Type]
//	    On a struct field: marks it fingerprint-visible. A function writing
//	    it must bump the guarding struct's generation counter (by default
//	    the field's own struct; guard=Type names another same-package
//	    struct).
//
//	//multicube:fpexempt <reason>
//	    On a function declaration (doc comment) or on the line before a
//	    func literal: suppresses the same-function bump requirement. The
//	    obligation propagates to callers: an exported mutator reaching an
//	    exempted helper without bumping is still flagged.
//
//	//multicube:detrange-ok <reason>
//	    On (or on the line before) a `for ... range` over a map: the loop
//	    is order-insensitive (commutative), or order is restored before the
//	    result is observable.
//
//	//multicube:wallclock-ok <reason>
//	    Escape hatch for nowallclock findings.
//
//	//multicube:chooser-ok <reason>
//	    On (or before) a go statement or select: the nondeterminism is
//	    outside the explored state space (e.g. a worker pool whose results
//	    are re-derived deterministically).
//
//	//multicube:parallel-runtime <reason>
//	    File marker (conventionally in the file's doc comment): the file
//	    implements deterministic parallel execution, opting it into the
//	    nolockstep pass.
//
//	//multicube:syncpoint <reason>
//	    On a function declaration in a parallel-runtime file: the
//	    function is an audited synchronization point, where concurrency
//	    primitives are allowed.
//
//	//multicube:nolockstep-ok <reason>
//	    Escape hatch for nolockstep findings.
//
//	//multicube:inclusion
//	    Package marker (any file). Opts the package into the inclusion
//	    pass: every snooping-cache eviction must reach an upper-level
//	    purge on a same-function path (invariant 6 at vet time).
//
//	//multicube:inclusion-purge
//	    On a function declaration (doc comment) or on the line before a
//	    func literal: the function purges the registered upper-level
//	    views; reaching it discharges an eviction's purge obligation.
//
//	//multicube:inclusion-ok <reason>
//	    Escape hatch for inclusion findings, on (or before) the evicting
//	    statement or on the enclosing function's doc comment.
//
//	//multicube:durable
//	    Package marker (any file). Opts the package into the atomicwrite
//	    pass: durable files are written temp+sync+rename and deleted
//	    only under the manifest-pin discipline.
//
//	//multicube:atomicwrite-ok <reason>
//	    Escape hatch for atomicwrite findings, on (or before) the
//	    statement or on the enclosing function's doc comment; the reason
//	    names the retention rule that makes the operation safe.
const directivePrefix = "//multicube:"

// Directive is one parsed //multicube: comment.
type Directive struct {
	Verb string // "fpfield", "deterministic", ...
	Args string // raw remainder after the verb
	Pos  token.Pos
}

// Arg returns the value of a key=value argument, or "".
func (d Directive) Arg(key string) string {
	for _, f := range strings.Fields(d.Args) {
		if v, ok := strings.CutPrefix(f, key+"="); ok {
			return v
		}
	}
	return ""
}

// DirectiveIndex locates directives by file line so statement-level
// annotations (which Go does not attach to AST nodes) can be resolved.
type DirectiveIndex struct {
	fset    *token.FileSet
	byLine  map[lineKey][]Directive
	pkgWide map[string]bool
}

type lineKey struct {
	file string
	line int
}

// ParseDirective parses one comment's text, reporting ok=false for
// non-directive comments.
func ParseDirective(c *ast.Comment) (Directive, bool) {
	text, ok := strings.CutPrefix(c.Text, directivePrefix)
	if !ok {
		return Directive{}, false
	}
	verb, args, _ := strings.Cut(text, " ")
	verb = strings.TrimSpace(verb)
	if verb == "" {
		return Directive{}, false
	}
	return Directive{Verb: verb, Args: strings.TrimSpace(args), Pos: c.Slash}, true
}

// IndexDirectives scans every comment of files.
func IndexDirectives(fset *token.FileSet, files []*ast.File) *DirectiveIndex {
	ix := &DirectiveIndex{
		fset:    fset,
		byLine:  make(map[lineKey][]Directive),
		pkgWide: make(map[string]bool),
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, ok := ParseDirective(c)
				if !ok {
					continue
				}
				p := fset.Position(c.Slash)
				ix.byLine[lineKey{p.Filename, p.Line}] = append(ix.byLine[lineKey{p.Filename, p.Line}], d)
				ix.pkgWide[d.Verb] = true
			}
		}
	}
	return ix
}

// PackageMarked reports whether any file carries the given package-wide
// directive verb (e.g. "deterministic").
func (ix *DirectiveIndex) PackageMarked(verb string) bool { return ix.pkgWide[verb] }

// ForNode returns the directives annotating the node at pos: those on the
// node's own starting line or on the line immediately above it (the two
// conventional placements for statement annotations).
func (ix *DirectiveIndex) ForNode(pos token.Pos) []Directive {
	p := ix.fset.Position(pos)
	var out []Directive
	out = append(out, ix.byLine[lineKey{p.Filename, p.Line - 1}]...)
	out = append(out, ix.byLine[lineKey{p.Filename, p.Line}]...)
	return out
}

// NodeHas reports whether the node at pos is annotated with verb (same line
// or the line above).
func (ix *DirectiveIndex) NodeHas(pos token.Pos, verb string) bool {
	for _, d := range ix.ForNode(pos) {
		if d.Verb == verb {
			return true
		}
	}
	return false
}

// CommentGroupDirectives parses the directives of a doc-comment group
// (function or field documentation); cg may be nil.
func CommentGroupDirectives(cg ...*ast.CommentGroup) []Directive {
	var out []Directive
	for _, g := range cg {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			if d, ok := ParseDirective(c); ok {
				out = append(out, d)
			}
		}
	}
	return out
}

// FindVerb returns the first directive with the given verb, if any.
func FindVerb(ds []Directive, verb string) (Directive, bool) {
	for _, d := range ds {
		if d.Verb == verb {
			return d, true
		}
	}
	return Directive{}, false
}
