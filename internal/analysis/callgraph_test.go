package analysis_test

import (
	"go/types"
	"path/filepath"
	"testing"

	"multicube/internal/analysis"
	"multicube/internal/analysis/analysistest"
)

// loadGraph builds the call graph of the testdata/callgraph fixture.
func loadGraph(t *testing.T) (*analysis.CallGraph, *analysis.Package) {
	t.Helper()
	pkg, err := analysis.LoadDir(analysistest.ModuleRoot(t), filepath.Join("testdata", "callgraph"))
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	pass := &analysis.Pass{
		Fset:      pkg.Fset,
		Files:     pkg.Syntax,
		Pkg:       pkg.Types,
		TypesInfo: pkg.TypesInfo,
		Dirs:      pkg.Dirs,
	}
	return analysis.BuildCallGraph(pass), pkg
}

// unitOf finds the unit of a package-scope function, or a method given
// "Type.Method".
func unitOf(t *testing.T, g *analysis.CallGraph, pkg *analysis.Package, name string) *analysis.CallUnit {
	t.Helper()
	scope := pkg.Types.Scope()
	if typ, method, ok := splitMethod(name); ok {
		tn, _ := scope.Lookup(typ).(*types.TypeName)
		if tn == nil {
			t.Fatalf("no type %s", typ)
		}
		obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(tn.Type()), true, pkg.Types, method)
		fn, _ := obj.(*types.Func)
		if fn == nil {
			t.Fatalf("no method %s", name)
		}
		u := g.UnitFor(fn)
		if u == nil {
			t.Fatalf("no unit for %s", name)
		}
		return u
	}
	fn, _ := scope.Lookup(name).(*types.Func)
	if fn == nil {
		t.Fatalf("no function %s", name)
	}
	u := g.UnitFor(fn)
	if u == nil {
		t.Fatalf("no unit for %s", name)
	}
	return u
}

func splitMethod(name string) (typ, method string, ok bool) {
	for i := 0; i < len(name); i++ {
		if name[i] == '.' {
			return name[:i], name[i+1:], true
		}
	}
	return "", "", false
}

// reachesTarget asserts whether the named unit can reach target().
func reachesTarget(t *testing.T, g *analysis.CallGraph, pkg *analysis.Package, name string, want bool) {
	t.Helper()
	target := unitOf(t, g, pkg, "target")
	got := g.Reaches(unitOf(t, g, pkg, name), func(u *analysis.CallUnit) bool { return u == target })
	if got != want {
		t.Errorf("Reaches(%s -> target) = %v, want %v", name, got, want)
	}
}

func TestCallGraphEdges(t *testing.T) {
	g, pkg := loadGraph(t)

	// Static dispatch.
	reachesTarget(t, g, pkg, "static", true)

	// Interface dispatch charges both same-package implementations.
	viaIface := unitOf(t, g, pkg, "viaIface")
	implADo := unitOf(t, g, pkg, "implA.Do")
	implBDo := unitOf(t, g, pkg, "implB.Do")
	hasA, hasB := false, false
	for _, c := range viaIface.Callees {
		if c == implADo {
			hasA = true
		}
		if c == implBDo {
			hasB = true
		}
	}
	if !hasA || !hasB {
		t.Errorf("viaIface callees miss an implementation: implA.Do=%v implB.Do=%v", hasA, hasB)
	}
	reachesTarget(t, g, pkg, "viaIface", true)

	// Stored func values: composite-literal field, local var, literal,
	// method value.
	reachesTarget(t, g, pkg, "viaField", true)
	reachesTarget(t, g, pkg, "viaLocalVar", true)
	reachesTarget(t, g, pkg, "viaLit", true)
	reachesTarget(t, g, pkg, "viaMethodValue", true)

	// Parameter-passed closures stay outside the soundness boundary.
	reachesTarget(t, g, pkg, "viaParam", false)
}

func TestCallGraphSelfReach(t *testing.T) {
	g, pkg := loadGraph(t)
	target := unitOf(t, g, pkg, "target")
	if !g.Reaches(target, func(u *analysis.CallUnit) bool { return u == target }) {
		t.Error("Reaches must test the start unit itself")
	}
}
