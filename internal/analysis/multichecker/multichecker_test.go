package multichecker_test

import (
	"bytes"
	"strings"
	"testing"

	"multicube/internal/analysis/analysistest"
	"multicube/internal/analysis/multichecker"
)

const (
	seededPkg   = "./internal/analysis/multichecker/testdata/seeded"
	unmarkedPkg = "./internal/analysis/multichecker/testdata/unmarked"
)

func TestSuiteNames(t *testing.T) {
	want := []string{"genbump", "detmap", "nowallclock", "chooserseam", "nolockstep"}
	suite := multichecker.Suite()
	if len(suite) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(suite), len(want))
	}
	for i, a := range suite {
		if a.Name != want[i] {
			t.Errorf("suite[%d] = %s, want %s", i, a.Name, want[i])
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %s missing doc or run function", a.Name)
		}
	}
}

// TestRepoClean is the CI gate's positive half: the suite must pass over
// the entire repository with no findings and no output.
func TestRepoClean(t *testing.T) {
	var buf bytes.Buffer
	code := multichecker.Run(analysistest.ModuleRoot(t), &buf, []string{"./..."})
	if code != multichecker.ExitClean {
		t.Fatalf("multicube-vet ./... = exit %d, want %d; output:\n%s", code, multichecker.ExitClean, buf.String())
	}
	if buf.Len() != 0 {
		t.Errorf("clean run produced output:\n%s", buf.String())
	}
}

// TestSeededFixtureFails is the negative half: a package violating every
// invariant must fail with a finding from each analyzer.
func TestSeededFixtureFails(t *testing.T) {
	var buf bytes.Buffer
	code := multichecker.Run(analysistest.ModuleRoot(t), &buf, []string{seededPkg})
	if code != multichecker.ExitFindings {
		t.Fatalf("seeded fixture = exit %d, want %d; output:\n%s", code, multichecker.ExitFindings, buf.String())
	}
	out := buf.String()
	for _, name := range []string{"genbump", "detmap", "nowallclock", "chooserseam"} {
		if !strings.Contains(out, "("+name+")") {
			t.Errorf("no %s finding against the seeded fixture; output:\n%s", name, out)
		}
	}
}

// TestUnmarkedFixtureClean: without the deterministic marker or
// registered fingerprint state, the same constructs produce nothing.
func TestUnmarkedFixtureClean(t *testing.T) {
	var buf bytes.Buffer
	code := multichecker.Run(analysistest.ModuleRoot(t), &buf, []string{unmarkedPkg})
	if code != multichecker.ExitClean {
		t.Fatalf("unmarked fixture = exit %d, want %d; output:\n%s", code, multichecker.ExitClean, buf.String())
	}
}

func TestOnlyFilter(t *testing.T) {
	var buf bytes.Buffer
	code := multichecker.Run(analysistest.ModuleRoot(t), &buf, []string{"-only=detmap", seededPkg})
	if code != multichecker.ExitFindings {
		t.Fatalf("-only=detmap on seeded fixture = exit %d, want %d", code, multichecker.ExitFindings)
	}
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if !strings.HasSuffix(line, "(detmap)") {
			t.Errorf("-only=detmap leaked another analyzer's finding: %s", line)
		}
	}

	buf.Reset()
	if code := multichecker.Run(analysistest.ModuleRoot(t), &buf, []string{"-only=bogus", seededPkg}); code != multichecker.ExitError {
		t.Errorf("-only=bogus = exit %d, want %d", code, multichecker.ExitError)
	}
	if !strings.Contains(buf.String(), `unknown analyzer "bogus"`) {
		t.Errorf("missing unknown-analyzer message; output:\n%s", buf.String())
	}
}

func TestTimingFlag(t *testing.T) {
	var buf bytes.Buffer
	code := multichecker.Run(analysistest.ModuleRoot(t), &buf, []string{"-time", unmarkedPkg})
	if code != multichecker.ExitClean {
		t.Fatalf("-time on unmarked fixture = exit %d, want %d; output:\n%s", code, multichecker.ExitClean, buf.String())
	}
	for _, name := range []string{"genbump", "detmap", "nowallclock", "chooserseam"} {
		if !strings.Contains(buf.String(), "# "+name) {
			t.Errorf("missing %s timing line; output:\n%s", name, buf.String())
		}
	}
}
