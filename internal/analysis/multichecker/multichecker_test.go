package multichecker_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"multicube/internal/analysis/analysistest"
	"multicube/internal/analysis/multichecker"
)

const (
	seededPkg   = "./internal/analysis/multichecker/testdata/seeded"
	unmarkedPkg = "./internal/analysis/multichecker/testdata/unmarked"
)

func TestSuiteNames(t *testing.T) {
	want := []string{"genbump", "detmap", "nowallclock", "chooserseam", "nolockstep", "inclusion", "atomicwrite"}
	suite := multichecker.Suite()
	if len(suite) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(suite), len(want))
	}
	for i, a := range suite {
		if a.Name != want[i] {
			t.Errorf("suite[%d] = %s, want %s", i, a.Name, want[i])
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %s missing doc or run function", a.Name)
		}
	}
}

// TestRepoClean is the CI gate's positive half: the suite must pass over
// the entire repository with no findings and no output.
func TestRepoClean(t *testing.T) {
	var buf bytes.Buffer
	code := multichecker.Run(analysistest.ModuleRoot(t), &buf, []string{"./..."})
	if code != multichecker.ExitClean {
		t.Fatalf("multicube-vet ./... = exit %d, want %d; output:\n%s", code, multichecker.ExitClean, buf.String())
	}
	if buf.Len() != 0 {
		t.Errorf("clean run produced output:\n%s", buf.String())
	}
}

// TestSeededFixtureFails is the negative half: a package violating every
// invariant must fail with a finding from each analyzer.
func TestSeededFixtureFails(t *testing.T) {
	var buf bytes.Buffer
	code := multichecker.Run(analysistest.ModuleRoot(t), &buf, []string{seededPkg})
	if code != multichecker.ExitFindings {
		t.Fatalf("seeded fixture = exit %d, want %d; output:\n%s", code, multichecker.ExitFindings, buf.String())
	}
	out := buf.String()
	for _, name := range []string{"genbump", "detmap", "nowallclock", "chooserseam", "inclusion", "atomicwrite"} {
		if !strings.Contains(out, "("+name+")") {
			t.Errorf("no %s finding against the seeded fixture; output:\n%s", name, out)
		}
	}
}

// TestUnmarkedFixtureClean: without the deterministic marker or
// registered fingerprint state, the same constructs produce nothing.
func TestUnmarkedFixtureClean(t *testing.T) {
	var buf bytes.Buffer
	code := multichecker.Run(analysistest.ModuleRoot(t), &buf, []string{unmarkedPkg})
	if code != multichecker.ExitClean {
		t.Fatalf("unmarked fixture = exit %d, want %d; output:\n%s", code, multichecker.ExitClean, buf.String())
	}
}

func TestOnlyFilter(t *testing.T) {
	var buf bytes.Buffer
	code := multichecker.Run(analysistest.ModuleRoot(t), &buf, []string{"-only=detmap", seededPkg})
	if code != multichecker.ExitFindings {
		t.Fatalf("-only=detmap on seeded fixture = exit %d, want %d", code, multichecker.ExitFindings)
	}
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if !strings.HasSuffix(line, "(detmap)") {
			t.Errorf("-only=detmap leaked another analyzer's finding: %s", line)
		}
	}

	buf.Reset()
	if code := multichecker.Run(analysistest.ModuleRoot(t), &buf, []string{"-only=bogus", seededPkg}); code != multichecker.ExitError {
		t.Errorf("-only=bogus = exit %d, want %d", code, multichecker.ExitError)
	}
	if !strings.Contains(buf.String(), `unknown analyzer "bogus"`) {
		t.Errorf("missing unknown-analyzer message; output:\n%s", buf.String())
	}
}

func TestTimingFlag(t *testing.T) {
	var buf bytes.Buffer
	code := multichecker.Run(analysistest.ModuleRoot(t), &buf, []string{"-time", unmarkedPkg})
	if code != multichecker.ExitClean {
		t.Fatalf("-time on unmarked fixture = exit %d, want %d; output:\n%s", code, multichecker.ExitClean, buf.String())
	}
	for _, name := range []string{"genbump", "detmap", "nowallclock", "chooserseam", "inclusion", "atomicwrite"} {
		if !strings.Contains(buf.String(), "# "+name) {
			t.Errorf("missing %s timing line; output:\n%s", name, buf.String())
		}
	}
}

// TestJSONOutput pins the -json report shape CI's artifact upload and
// the benchmark harness consume: every finding carries its pass, a
// module-relative position, and fix availability; every analyzer
// reports a wall time.
func TestJSONOutput(t *testing.T) {
	var buf bytes.Buffer
	code := multichecker.Run(analysistest.ModuleRoot(t), &buf, []string{"-json", seededPkg})
	if code != multichecker.ExitFindings {
		t.Fatalf("-json on seeded fixture = exit %d, want %d; output:\n%s", code, multichecker.ExitFindings, buf.String())
	}
	var rep struct {
		Packages []string `json:"packages"`
		Findings []struct {
			Pass    string `json:"pass"`
			File    string `json:"file"`
			Line    int    `json:"line"`
			Col     int    `json:"col"`
			Message string `json:"message"`
			Fixable bool   `json:"fixable"`
		} `json:"findings"`
		AnalyzerMS []struct {
			Pass string  `json:"pass"`
			MS   float64 `json:"ms"`
		} `json:"analyzer_ms"`
		EndToEndS float64 `json:"end_to_end_sec"`
	}
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(rep.Packages) != 1 || !strings.HasSuffix(rep.Packages[0], "testdata/seeded") {
		t.Errorf("packages = %v, want the seeded fixture", rep.Packages)
	}
	passes := make(map[string]bool)
	for _, f := range rep.Findings {
		passes[f.Pass] = true
		if f.File != "internal/analysis/multichecker/testdata/seeded/seeded.go" {
			t.Errorf("finding file %q not module-relative", f.File)
		}
		if f.Line == 0 || f.Col == 0 || f.Message == "" {
			t.Errorf("incomplete finding: %+v", f)
		}
	}
	for _, name := range []string{"genbump", "inclusion", "atomicwrite"} {
		if !passes[name] {
			t.Errorf("no %s finding in JSON report", name)
		}
	}
	if len(rep.AnalyzerMS) != len(multichecker.Suite()) {
		t.Errorf("analyzer_ms has %d entries, want %d", len(rep.AnalyzerMS), len(multichecker.Suite()))
	}
	if rep.EndToEndS <= 0 {
		t.Errorf("end_to_end_sec = %v, want > 0", rep.EndToEndS)
	}
}
