// Package unmarked carries no //multicube:deterministic marker and
// registers no fingerprint state: the same constructs that light up the
// seeded fixture must produce zero findings here, proving the suite
// scopes itself to opted-in packages.
package unmarked

import "time"

func tick() int64 {
	return time.Now().UnixNano()
}

func keys(m map[int]int) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	return out
}

func spawn(f func()) {
	go f()
}

func race(a, b chan int) int {
	select {
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}
