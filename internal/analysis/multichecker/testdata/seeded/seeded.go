// Package seeded violates every invariant in the suite exactly once.
// The multichecker test drives multicube-vet over this package and
// requires a finding from each analyzer and a failing exit code — the
// "fails on a seeded violation" half of the CI-gate contract.
//
//multicube:deterministic
//multicube:inclusion
//multicube:durable
package seeded

import (
	"os"
	"time"

	"multicube/internal/cache"
)

type state struct {
	vals []uint64 //multicube:fpfield

	//multicube:gencounter
	gen uint64
}

func (s *state) poke(v uint64) {
	s.vals[0] = v // genbump: no generation bump in this function
}

func tick() int64 {
	return time.Now().UnixNano() // nowallclock: wall-clock read
}

func keys(m map[int]int) []int {
	var out []int
	for k := range m { // detmap: collected but never sorted
		out = append(out, k)
	}
	return out
}

func spawn(f func()) {
	go f() // chooserseam: goroutine outside the seam
}

type hier struct {
	l2 *cache.Cache
}

func (h *hier) evict(line cache.Line) {
	h.l2.Invalidate(line) // inclusion: eviction never reaches an upper-level purge
}

func persist(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644) // atomicwrite: durable write lands in place
}
