// Package seeded violates every invariant in the suite exactly once.
// The multichecker test drives multicube-vet over this package and
// requires a finding from each analyzer and a failing exit code — the
// "fails on a seeded violation" half of the CI-gate contract.
//
//multicube:deterministic
package seeded

import "time"

type state struct {
	vals []uint64 //multicube:fpfield

	//multicube:gencounter
	gen uint64
}

func (s *state) poke(v uint64) {
	s.vals[0] = v // genbump: no generation bump in this function
}

func tick() int64 {
	return time.Now().UnixNano() // nowallclock: wall-clock read
}

func keys(m map[int]int) []int {
	var out []int
	for k := range m { // detmap: collected but never sorted
		out = append(out, k)
	}
	return out
}

func spawn(f func()) {
	go f() // chooserseam: goroutine outside the seam
}
