// Package multichecker drives the multicube invariant suite: it loads the
// requested packages once and applies every registered analyzer, printing
// findings in the conventional file:line:col form. cmd/multicube-vet is a
// thin main around Run; tests call Run directly.
package multichecker

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"path/filepath"
	"strings"
	"time"

	"multicube/internal/analysis"
	"multicube/internal/analysis/atomicwrite"
	"multicube/internal/analysis/chooserseam"
	"multicube/internal/analysis/detmap"
	"multicube/internal/analysis/genbump"
	"multicube/internal/analysis/inclusion"
	"multicube/internal/analysis/nolockstep"
	"multicube/internal/analysis/nowallclock"
)

// Suite returns the full analyzer suite in its canonical order.
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		genbump.Analyzer,
		detmap.Analyzer,
		nowallclock.Analyzer,
		chooserseam.Analyzer,
		nolockstep.Analyzer,
		inclusion.Analyzer,
		atomicwrite.Analyzer,
	}
}

// jsonReport is the -json output shape, consumed by CI artifact uploads
// and the benchmark harness.
type jsonReport struct {
	Packages   []string      `json:"packages"`
	Findings   []jsonFinding `json:"findings"`
	AnalyzerMS []jsonTiming  `json:"analyzer_ms"`
	EndToEndS  float64       `json:"end_to_end_sec"`
}

type jsonFinding struct {
	Pass    string `json:"pass"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
	Fixable bool   `json:"fixable"`
}

type jsonTiming struct {
	Pass string  `json:"pass"`
	MS   float64 `json:"ms"`
}

// Exit codes, matching go vet's convention.
const (
	ExitClean    = 0
	ExitFindings = 1
	ExitError    = 2
)

// Run executes the suite over the packages matching args in moduleDir,
// writing findings to out. Flags accepted in args (before patterns):
//
//	-only=a,b   run only the named analyzers
//	-time       print per-analyzer wall time to out after the findings
//	-json       emit one machine-readable report instead of text
//
// The returned int is the process exit code.
func Run(moduleDir string, out io.Writer, args []string) int {
	start := time.Now()
	fs := flag.NewFlagSet("multicube-vet", flag.ContinueOnError)
	fs.SetOutput(out)
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	timing := fs.Bool("time", false, "print per-analyzer wall time")
	asJSON := fs.Bool("json", false, "emit a JSON report (findings, per-pass wall time) instead of text")
	fs.Usage = func() {
		fmt.Fprintf(out, "usage: multicube-vet [flags] [packages]\n\nAnalyzers:\n")
		for _, a := range Suite() {
			fmt.Fprintf(out, "  %-12s %s\n", a.Name, firstLine(a.Doc))
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return ExitError
	}

	analyzers := Suite()
	if *only != "" {
		keep := make(map[string]bool)
		for _, name := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(name)] = true
		}
		var filtered []*analysis.Analyzer
		for _, a := range analyzers {
			if keep[a.Name] {
				filtered = append(filtered, a)
				delete(keep, a.Name)
			}
		}
		for name := range keep {
			fmt.Fprintf(out, "multicube-vet: unknown analyzer %q\n", name)
			return ExitError
		}
		analyzers = filtered
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := analysis.Load(analysis.LoadConfig{Dir: moduleDir}, patterns...)
	if err != nil {
		fmt.Fprintf(out, "multicube-vet: %v\n", err)
		return ExitError
	}
	findings, times, err := analysis.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(out, "multicube-vet: %v\n", err)
		return ExitError
	}
	if *asJSON {
		if err := writeJSON(moduleDir, out, pkgs, findings, times, start); err != nil {
			fmt.Fprintf(out, "multicube-vet: %v\n", err)
			return ExitError
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(out, f.String())
		}
		if *timing {
			for _, t := range times {
				fmt.Fprintf(out, "# %-12s %s\n", t.Analyzer, t.Elapsed)
			}
		}
	}
	if len(findings) > 0 {
		return ExitFindings
	}
	return ExitClean
}

// writeJSON renders the machine-readable report, with file paths
// relativized to the module root so the output is checkout-independent.
func writeJSON(moduleDir string, out io.Writer, pkgs []*analysis.Package, findings []analysis.Finding, times []analysis.Timing, start time.Time) error {
	rep := jsonReport{
		Packages:   []string{},
		Findings:   []jsonFinding{},
		AnalyzerMS: []jsonTiming{},
	}
	for _, p := range pkgs {
		rep.Packages = append(rep.Packages, p.PkgPath)
	}
	for _, f := range findings {
		pos := f.Pkg.Fset.Position(f.Diag.Pos)
		file := pos.Filename
		if rel, err := filepath.Rel(moduleDir, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = filepath.ToSlash(rel)
		}
		rep.Findings = append(rep.Findings, jsonFinding{
			Pass:    f.Analyzer.Name,
			File:    file,
			Line:    pos.Line,
			Col:     pos.Column,
			Message: f.Diag.Message,
			Fixable: len(f.Diag.SuggestedFixes) > 0,
		})
	}
	for _, t := range times {
		rep.AnalyzerMS = append(rep.AnalyzerMS, jsonTiming{
			Pass: t.Analyzer,
			MS:   float64(t.Elapsed.Microseconds()) / 1000,
		})
	}
	rep.EndToEndS = time.Since(start).Seconds()
	enc := json.NewEncoder(out)
	enc.SetIndent("", " ")
	return enc.Encode(&rep)
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
