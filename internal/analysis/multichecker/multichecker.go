// Package multichecker drives the multicube invariant suite: it loads the
// requested packages once and applies every registered analyzer, printing
// findings in the conventional file:line:col form. cmd/multicube-vet is a
// thin main around Run; tests call Run directly.
package multichecker

import (
	"flag"
	"fmt"
	"io"
	"strings"

	"multicube/internal/analysis"
	"multicube/internal/analysis/chooserseam"
	"multicube/internal/analysis/detmap"
	"multicube/internal/analysis/genbump"
	"multicube/internal/analysis/nolockstep"
	"multicube/internal/analysis/nowallclock"
)

// Suite returns the full analyzer suite in its canonical order.
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		genbump.Analyzer,
		detmap.Analyzer,
		nowallclock.Analyzer,
		chooserseam.Analyzer,
		nolockstep.Analyzer,
	}
}

// Exit codes, matching go vet's convention.
const (
	ExitClean    = 0
	ExitFindings = 1
	ExitError    = 2
)

// Run executes the suite over the packages matching args in moduleDir,
// writing findings to out. Flags accepted in args (before patterns):
//
//	-only=a,b   run only the named analyzers
//	-time       print per-analyzer wall time to out after the findings
//
// The returned int is the process exit code.
func Run(moduleDir string, out io.Writer, args []string) int {
	fs := flag.NewFlagSet("multicube-vet", flag.ContinueOnError)
	fs.SetOutput(out)
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	timing := fs.Bool("time", false, "print per-analyzer wall time")
	fs.Usage = func() {
		fmt.Fprintf(out, "usage: multicube-vet [flags] [packages]\n\nAnalyzers:\n")
		for _, a := range Suite() {
			fmt.Fprintf(out, "  %-12s %s\n", a.Name, firstLine(a.Doc))
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return ExitError
	}

	analyzers := Suite()
	if *only != "" {
		keep := make(map[string]bool)
		for _, name := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(name)] = true
		}
		var filtered []*analysis.Analyzer
		for _, a := range analyzers {
			if keep[a.Name] {
				filtered = append(filtered, a)
				delete(keep, a.Name)
			}
		}
		for name := range keep {
			fmt.Fprintf(out, "multicube-vet: unknown analyzer %q\n", name)
			return ExitError
		}
		analyzers = filtered
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := analysis.Load(analysis.LoadConfig{Dir: moduleDir}, patterns...)
	if err != nil {
		fmt.Fprintf(out, "multicube-vet: %v\n", err)
		return ExitError
	}
	findings, times, err := analysis.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(out, "multicube-vet: %v\n", err)
		return ExitError
	}
	for _, f := range findings {
		fmt.Fprintln(out, f.String())
	}
	if *timing {
		for _, t := range times {
			fmt.Fprintf(out, "# %-12s %s\n", t.Analyzer, t.Elapsed)
		}
	}
	if len(findings) > 0 {
		return ExitFindings
	}
	return ExitClean
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
