// Package nowallclock forbids ambient nondeterminism in packages marked
// //multicube:deterministic: the wall clock, the global math/rand state,
// the process environment, and formatting of map values (whose rendered
// order is randomized). The model checker's state space, fingerprints,
// and counterexample traces must be pure functions of (preset, seed); any
// of these leaks breaks replay and cross-run comparison.
//
// Banned:
//
//   - time.Now, Since, Until, Sleep, After, AfterFunc, Tick, NewTimer,
//     NewTicker (timer values and durations observed from the wall clock)
//   - package-level math/rand and math/rand/v2 functions (global,
//     unseeded state; rand.New with an explicit source is fine)
//   - os.Getenv, os.LookupEnv, os.Environ (environment-dependent behavior
//     belongs in cmd/, resolved into explicit presets)
//   - fmt.* / log.* calls with a map-typed argument (map formatting
//     iterates in randomized order — fmt sorts keys only for simple
//     types, and error strings feed counterexample comparisons)
//
// Escape hatch: //multicube:wallclock-ok <reason> on the call's line or
// the line above.
package nowallclock

import (
	"go/ast"
	"go/types"

	"multicube/internal/analysis"
)

// Analyzer is the nowallclock pass.
var Analyzer = &analysis.Analyzer{
	Name: "nowallclock",
	Doc:  "no wall clock, global randomness, or environment reads in deterministic packages",
	Run:  run,
}

// banned maps package path -> function name -> short reason.
var banned = map[string]map[string]string{
	"time": {
		"Now": "wall clock", "Since": "wall clock", "Until": "wall clock",
		"Sleep": "wall-clock delay", "After": "wall-clock timer",
		"AfterFunc": "wall-clock timer", "Tick": "wall-clock timer",
		"NewTimer": "wall-clock timer", "NewTicker": "wall-clock timer",
	},
	"os": {
		"Getenv": "environment read", "LookupEnv": "environment read",
		"Environ": "environment read",
	},
}

// randBanned lists math/rand package-level functions using the global
// source. Constructors (New, NewSource, NewPCG, NewChaCha8) are allowed.
var randBanned = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Int64": true, "Int64N": true,
	"Int32": true, "Int32N": true, "IntN": true, "Uint32": true,
	"Uint64": true, "Uint64N": true, "Uint32N": true, "UintN": true,
	"Uint": true, "Float32": true, "Float64": true, "ExpFloat64": true,
	"NormFloat64": true, "Perm": true, "Shuffle": true, "Seed": true,
	"Read": true, "N": true,
}

func run(pass *analysis.Pass) (any, error) {
	if !pass.Dirs.PackageMarked("deterministic") {
		return nil, nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgID, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.TypesInfo.Uses[pkgID].(*types.PkgName)
			if !ok {
				return true
			}
			path := pn.Imported().Path()
			name := sel.Sel.Name
			if pass.Dirs.NodeHas(call.Pos(), "wallclock-ok") {
				return true
			}
			if reason, ok := banned[path][name]; ok {
				pass.Reportf(call.Pos(),
					"%s.%s in a deterministic package (%s breaks replay; thread explicit state through the preset, or annotate //multicube:wallclock-ok)",
					pkgID.Name, name, reason)
				return true
			}
			if (path == "math/rand" || path == "math/rand/v2") && randBanned[name] {
				pass.Reportf(call.Pos(),
					"global %s.%s in a deterministic package (unseeded shared state; use rand.New with a seed from the preset, or annotate //multicube:wallclock-ok)",
					pkgID.Name, name)
				return true
			}
			if path == "fmt" || path == "log" {
				for _, arg := range call.Args {
					tv, ok := pass.TypesInfo.Types[arg]
					if !ok {
						continue
					}
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						pass.Reportf(arg.Pos(),
							"formatting a map with %s.%s in a deterministic package (rendered order is randomized for non-trivial keys; sort into a slice first, or annotate //multicube:wallclock-ok)",
							pkgID.Name, name)
					}
				}
			}
			return true
		})
	}
	return nil, nil
}
