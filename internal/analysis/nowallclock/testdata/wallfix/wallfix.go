// Package wallfix exercises the nowallclock analyzer: wall-clock reads,
// global random state, environment probes, and map formatting in a
// deterministic package.
//
//multicube:deterministic
package wallfix

import (
	"fmt"
	"math/rand"
	"os"
	"time"
)

func clock() time.Duration {
	start := time.Now()      // want `time\.Now in a deterministic package`
	return time.Since(start) // want `time\.Since in a deterministic package`
}

func sleepy() {
	time.Sleep(time.Millisecond) // want `time\.Sleep`
}

func roll() int {
	return rand.Intn(6) // want `global rand\.Intn in a deterministic package`
}

func seeded() uint64 {
	r := rand.New(rand.NewSource(42)) // explicit seeded source: allowed
	return r.Uint64()
}

func env() string {
	v := os.Getenv("HOME") // want `os\.Getenv`
	return v
}

func render(m map[int]string) string {
	return fmt.Sprintf("%v", m) // want `formatting a map with fmt\.Sprintf`
}

func renderSlice(xs []string) string {
	return fmt.Sprintf("%v", xs) // slices format deterministically
}

func annotated() int64 {
	//multicube:wallclock-ok bench-only path, excluded from replay
	return time.Now().UnixNano()
}

func duration() time.Duration {
	return 5 * time.Millisecond // the time package's types are fine
}
