package nowallclock_test

import (
	"path/filepath"
	"testing"

	"multicube/internal/analysis/analysistest"
	"multicube/internal/analysis/nowallclock"
)

func TestFixture(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "wallfix"), nowallclock.Analyzer)
}
