package mc

import (
	"sort"
	"sync"

	"multicube/internal/coherence"
	"multicube/internal/singlebus"
)

// shared holds the cross-run immutable data of one exploration, computed
// once instead of per from-scratch execution: the row (or processor)
// relabelings with their precomputed inverses, the per-relabeling driver
// combine order, the static per-processor program hashes, and a pool of
// incremental fingerprint caches recycled across the explorer's
// thousands of runs. It is safe for concurrent use by parallel workers:
// everything but the pool is read-only after construction.
type shared struct {
	perms [][]int
	invs  [][]int
	// cperms/cinvs are the admissible column relabelings (grid scenarios
	// only): every permutation fixing the home column of each line the
	// programs name. SingleBus scenarios, and grids whose programs touch
	// every home column, get just the identity.
	cperms [][]int
	cinvs  [][]int
	// procOrder, for grid scenarios, lists processor indices in canonical
	// (permuted row, permuted col) order per (row, column) relabeling
	// pair, indexed ri*len(cperms)+ci — the sort the legacy driver
	// fingerprint performed per call. Unused for SingleBus scenarios,
	// where canonical order is inv itself.
	procOrder [][]int
	// progH is each processor's static program hash (op kinds and lines).
	progH []uint64
	// stepCls precomputes the tagClass of every (processor, step) driver
	// event: classify runs per candidate per choice point, and driver
	// step classes are static.
	stepCls [][]tagClass

	legacyFP bool
	checkFP  bool
	// scNodes is the per-execution node budget for cross-address
	// sequential-consistency searches (Options.SCNodes; zero = memmodel's
	// default). Consulted only when the scenario sets CheckSC.
	scNodes int
	// instrument is Options.Instrument: a passive per-machine hook
	// installer for grid scenarios.
	instrument func(*coherence.System)

	pool sync.Pool // *coherence.FPCache or *singlebus.FPCache (never mixed)
}

func newShared(sc *Scenario, opts *Options) *shared {
	sh := &shared{legacyFP: opts.legacyFP, checkFP: opts.CheckFP, scNodes: opts.SCNodes, instrument: opts.Instrument}
	n := sc.N
	if sc.SingleBus {
		n = len(sc.Procs)
	}
	sh.perms = rowPermutations(n)
	sh.invs = make([][]int, len(sh.perms))
	for i, perm := range sh.perms {
		inv := make([]int, len(perm))
		for phys, canon := range perm {
			inv[canon] = phys
		}
		sh.invs[i] = inv
	}
	sh.progH = make([]uint64, len(sc.Procs))
	for p, pr := range sc.Procs {
		m := newMixer()
		m.word(uint64(len(pr.Ops)))
		for _, op := range pr.Ops {
			m.word(uint64(op.Kind))
			m.word(op.Line)
		}
		sh.progH[p] = uint64(m)
	}
	sh.stepCls = make([][]tagClass, len(sc.Procs))
	for p, pr := range sc.Procs {
		sh.stepCls[p] = make([]tagClass, len(pr.Ops)+1)
		for step := range sh.stepCls[p] {
			m := newMixer()
			m.word(0x20)
			m.word(uint64(p))
			m.word(uint64(step))
			sh.stepCls[p][step] = tagClass{kind: tkStep, bus: -1, at: pr.At, fp: uint64(m)}
		}
	}
	if !sc.SingleBus {
		sh.cperms = colPermutations(n, usedHomeColumns(sc))
		sh.cinvs = make([][]int, len(sh.cperms))
		for i, cperm := range sh.cperms {
			cinv := make([]int, len(cperm))
			for phys, canon := range cperm {
				cinv[canon] = phys
			}
			sh.cinvs[i] = cinv
		}
		sh.procOrder = make([][]int, len(sh.perms)*len(sh.cperms))
		for ri, perm := range sh.perms {
			for ci, cperm := range sh.cperms {
				order := make([]int, len(sc.Procs))
				for p := range order {
					order[p] = p
				}
				sort.SliceStable(order, func(a, b int) bool {
					pa, pb := sc.Procs[order[a]].At, sc.Procs[order[b]].At
					ra, rb := perm[pa.Row], perm[pb.Row]
					if ra != rb {
						return ra < rb
					}
					return cperm[pa.Col] < cperm[pb.Col]
				})
				sh.procOrder[ri*len(sh.cperms)+ci] = order
			}
		}
	}
	return sh
}

func (sh *shared) getFPC(sys *coherence.System) *coherence.FPCache {
	if v := sh.pool.Get(); v != nil {
		f := v.(*coherence.FPCache)
		f.Reset(sys)
		return f
	}
	return coherence.NewFPCache(sys)
}

func (sh *shared) getSBFPC(m *singlebus.Machine) *singlebus.FPCache {
	if v := sh.pool.Get(); v != nil {
		f := v.(*singlebus.FPCache)
		f.Reset(m)
		return f
	}
	return singlebus.NewFPCache(m)
}

func (sh *shared) put(f any) { sh.pool.Put(f) }

// heldAdd inserts line into the sorted held-lines slice (no-op if
// present). The slices are tiny — at most a program's lock count.
func heldAdd(s []uint64, line uint64) []uint64 {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= line })
	if i < len(s) && s[i] == line {
		return s
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = line
	return s
}

func heldHas(s []uint64, line uint64) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= line })
	return i < len(s) && s[i] == line
}

func heldRemove(s []uint64, line uint64) []uint64 {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= line })
	if i >= len(s) || s[i] != line {
		return s
	}
	return append(s[:i], s[i+1:]...)
}
