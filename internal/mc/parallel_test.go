package mc

import (
	"reflect"
	"testing"
)

// TestWorkersSameVerdict explores every 2×2 preset single-threaded and
// with eight workers and requires the same verdict. The parallel pass's
// States/Runs statistics may vary with scheduling, but whether a
// violation exists — and which counterexample is reported — must not.
func TestWorkersSameVerdict(t *testing.T) {
	budget := 400000
	if testing.Short() {
		budget = 4000
	}
	for _, name := range []string{"readmod-race", "read-race", "sync-race", "mlt-overflow-lock", "sb-writeonce-race"} {
		if testing.Short() && name != "read-race" && name != "sb-writeonce-race" {
			// The budgeted short run still cross-checks the two cheap ones.
			continue
		}
		sc, err := Preset(name)
		if err != nil {
			t.Fatal(err)
		}
		seq, err := Explore(sc, Options{MaxStates: budget, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		par, err := Explore(sc, Options{MaxStates: budget, Workers: 8})
		if err != nil {
			t.Fatal(err)
		}
		if (seq.Violation == nil) != (par.Violation == nil) {
			t.Fatalf("%s: workers=1 violation=%v, workers=8 violation=%v",
				name, seq.Violation, par.Violation)
		}
		if seq.Exhausted != par.Exhausted {
			t.Fatalf("%s: workers=1 exhausted=%v, workers=8 exhausted=%v",
				name, seq.Exhausted, par.Exhausted)
		}
		t.Logf("%s: verdict agrees (violation=%v, exhausted=%v)",
			name, seq.Violation != nil, seq.Exhausted)
	}
}

// TestWorkersSameCounterexample injects the §5.6a protocol gap and
// requires the eight-worker search to report exactly the minimized
// counterexample the single-threaded search reports: parallel
// exploration must not perturb what the user sees.
func TestWorkersSameCounterexample(t *testing.T) {
	sc, err := Preset("read-race")
	if err != nil {
		t.Fatal(err)
	}
	sc.InjectStaleReply = true
	seq, err := Explore(sc, Options{MaxStates: 400000, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Explore(sc, Options{MaxStates: 400000, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Violation == nil || par.Violation == nil {
		t.Fatalf("injected bug missed: workers=1 %v, workers=8 %v", seq.Violation, par.Violation)
	}
	if seq.Violation.Kind != par.Violation.Kind || seq.Violation.Msg != par.Violation.Msg {
		t.Fatalf("violations differ:\n  workers=1: %v\n  workers=8: %v", seq.Violation, par.Violation)
	}
	if !reflect.DeepEqual(seq.Violation.Choices, par.Violation.Choices) {
		t.Fatalf("minimized counterexamples differ:\n  workers=1: %v\n  workers=8: %v",
			seq.Violation.Choices, par.Violation.Choices)
	}
}

// TestSleepBeatsAmple pits the persistent/sleep-set reduction against PR
// 1's ample rule on identical scenarios: the new reduction must visit
// strictly fewer states, exhaust the same bounded space, and agree that
// no violation exists. (On the single-bus baseline both reductions are
// deliberately inert — everything shares the one bus — so that preset is
// checked for agreement, not improvement.)
func TestSleepBeatsAmple(t *testing.T) {
	presets := []string{"read-race"}
	if !testing.Short() {
		presets = append(presets, "readmod-race", "readmod-race-3x3", "mlt-overflow-lock")
	}
	for _, name := range presets {
		sc, err := Preset(name)
		if err != nil {
			t.Fatal(err)
		}
		legacy, err := Explore(sc, Options{MaxStates: 400000, legacyAmple: true})
		if err != nil {
			t.Fatal(err)
		}
		reduced, err := Explore(sc, Options{MaxStates: 400000})
		if err != nil {
			t.Fatal(err)
		}
		if legacy.Violation != nil || reduced.Violation != nil {
			t.Fatalf("%s: unexpected violation (ample %v, sleep %v)", name, legacy.Violation, reduced.Violation)
		}
		if !legacy.Exhausted || !reduced.Exhausted {
			t.Fatalf("%s: not exhausted (ample %v, sleep %v)", name, legacy.Exhausted, reduced.Exhausted)
		}
		if reduced.States >= legacy.States {
			t.Fatalf("%s: sleep-set reduction visited %d states, ample visited %d — no improvement",
				name, reduced.States, legacy.States)
		}
		t.Logf("%s: ample %d states, persistent+sleep %d states (%.1f%% fewer)",
			name, legacy.States, reduced.States,
			100*float64(legacy.States-reduced.States)/float64(legacy.States))
	}
}

// TestSleepFindsInjectedBug cross-checks the sleep-set reduction against
// the injected §5.6a bug: pruning interleavings must not prune the race.
func TestSleepFindsInjectedBug(t *testing.T) {
	sc, err := Preset("read-race")
	if err != nil {
		t.Fatal(err)
	}
	sc.InjectStaleReply = true
	for _, opts := range []Options{
		{MaxStates: 400000},                     // persistent + sleep
		{MaxStates: 400000, DisableSleep: true}, // persistent only
		{MaxStates: 400000, legacyAmple: true},  // PR 1's ample rule
	} {
		res, err := Explore(sc, opts)
		if err != nil {
			t.Fatal(err)
		}
		if res.Violation == nil {
			t.Fatalf("injected bug not found with options %+v", opts)
		}
	}
}

// TestPresets3x3Exhaust requires both 3×3 presets to exhaust their
// bounded interleaving spaces — six buses, cross-column routing, and the
// row-symmetry canonicalization all have to hold up at N=3.
func TestPresets3x3Exhaust(t *testing.T) {
	for _, name := range []string{"readmod-race-3x3", "mlt-churn-3x3"} {
		if testing.Short() && name == "mlt-churn-3x3" {
			continue // ~10s exhaustive; covered by the full run and CI
		}
		sc, err := Preset(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Explore(sc, Options{MaxStates: 400000})
		if err != nil {
			t.Fatal(err)
		}
		if res.Violation != nil {
			t.Fatalf("%s: %v", name, res.Violation)
		}
		if !res.Exhausted {
			t.Fatalf("%s: not exhausted (states=%d, budget=%v)", name, res.States, res.BudgetHit)
		}
		if res.States < 1000 {
			t.Fatalf("%s: only %d states; the 3×3 scenario lost its interleavings", name, res.States)
		}
		t.Logf("%s: %d states, %d runs, exhausted", name, res.States, res.Runs)
	}
}

// TestSingleBusPreset runs the write-once baseline preset through the
// same explorer: the bounded space must exhaust with no violation, and a
// replay must produce an annotated trace of single-bus transactions.
func TestSingleBusPreset(t *testing.T) {
	sc, err := Preset("sb-writeonce-race")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Explore(sc, Options{MaxStates: 400000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("write-once baseline: %v", res.Violation)
	}
	if !res.Exhausted {
		t.Fatalf("baseline space not exhausted (states=%d)", res.States)
	}
	if res.Runs < 2 {
		t.Fatalf("only %d runs; the racing write-throughs produced no branching", res.Runs)
	}
	rr, err := Replay(sc, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rr.Violation != nil {
		t.Fatalf("default-schedule replay: %v", rr.Violation)
	}
	if !rr.Quiescent || rr.Log.Len() == 0 {
		t.Fatalf("replay quiescent=%v with %d trace entries", rr.Quiescent, rr.Log.Len())
	}
}

// TestVictimRacePreset is the regression for the write-back-buffer bug
// the swarm caught (seed 9006): a reader's READ winning arbitration
// ahead of a queued dirty-victim WRITE-BACK used to cache a stale block,
// because the victim's data was invisible to probes between
// victimization and the flush's bus grant. The buffer now answers
// probes; every interleaving must be clean.
func TestVictimRacePreset(t *testing.T) {
	sc, err := Preset("sb-victim-race")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Explore(sc, Options{MaxStates: 400000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("write-back buffer race: %v", res.Violation)
	}
	if !res.Exhausted {
		t.Fatalf("space not exhausted (states=%d)", res.States)
	}
	if res.Runs < 2 {
		t.Fatalf("only %d runs; the arbitration race produced no branching", res.Runs)
	}
}
