package mc

import "fmt"

// The sequential-consistency witness checks per-address coherence (the
// property every cache-coherence protocol must provide): for each line,
// all writes form a single total order, and each processor's reads and
// writes of that line observe non-decreasing positions in it.
//
// Every OpWrite stores a unique value and records the value it
// overwrote, so the write order is recovered as a chain rooted at the
// initial value 0: each write's predecessor is the value it observed.
// Two writes observing the same predecessor is a lost update; a read
// observing a value no write produced is data corruption; a processor
// observing positions out of order saw the line travel back in time.
//
// Lines touched by lock operations (OpTAS, OpSync, OpUnlock) or by
// OpAllocate (a blind write that observes no predecessor) are excluded.

type witEvent struct {
	proc int
	line uint64
	// write is true for a write of val overwriting old; false for a
	// read observing val.
	write bool
	val   uint64
	old   uint64
}

type witness struct {
	tracked map[uint64]bool
	events  []witEvent
}

func newWitness(sc *Scenario) *witness {
	tracked := make(map[uint64]bool)
	for _, p := range sc.Procs {
		for _, op := range p.Ops {
			switch op.Kind {
			case OpRead, OpWrite, OpWriteBack:
				if _, ok := tracked[op.Line]; !ok {
					tracked[op.Line] = true
				}
			case OpTAS, OpSync, OpUnlock, OpAllocate:
				tracked[op.Line] = false
			}
		}
	}
	return &witness{tracked: tracked}
}

func (w *witness) write(proc int, line, old, val uint64) {
	if w.tracked[line] {
		w.events = append(w.events, witEvent{proc: proc, line: line, write: true, val: val, old: old})
	}
}

func (w *witness) read(proc int, line, val uint64) {
	if w.tracked[line] {
		w.events = append(w.events, witEvent{proc: proc, line: line, val: val})
	}
}

// check validates the recorded history; it returns nil when the history
// is per-address sequentially consistent.
func (w *witness) check() *Violation {
	viol := func(format string, args ...any) *Violation {
		return &Violation{Kind: "sc", Msg: fmt.Sprintf(format, args...)}
	}
	// Chain the writes per line: successor[old value] = new value.
	type link struct {
		val  uint64
		proc int
	}
	succ := make(map[uint64]map[uint64]link) // line -> old -> next
	for _, e := range w.events {
		if !e.write {
			continue
		}
		m := succ[e.line]
		if m == nil {
			m = make(map[uint64]link)
			succ[e.line] = m
		}
		if prev, ok := m[e.old]; ok {
			return viol("line %d: lost update — writes %d (proc %d) and %d (proc %d) both overwrote value %d",
				e.line, prev.val, prev.proc, e.val, e.proc, e.old)
		}
		m[e.old] = link{val: e.val, proc: e.proc}
	}
	// Walk each chain from the initial value 0 to assign positions.
	pos := make(map[uint64]map[uint64]int) // line -> value -> position
	for line, m := range succ {
		p := map[uint64]int{0: 0}
		v, i := uint64(0), 0
		for {
			nxt, ok := m[v]
			if !ok {
				break
			}
			i++
			p[nxt.val] = i
			v = nxt.val
		}
		if len(p) != len(m)+1 {
			// Some write's predecessor is neither 0 nor another write:
			// it observed a value that never existed.
			for old, nxt := range m {
				if _, ok := p[old]; !ok {
					return viol("line %d: write %d (proc %d) overwrote value %d, which no write produced",
						line, nxt.val, nxt.proc, old)
				}
			}
		}
		pos[line] = p
	}
	// Per-processor monotonicity over each line's chain.
	type key struct {
		proc int
		line uint64
	}
	last := make(map[key]int)
	for _, e := range w.events {
		p := pos[e.line]
		if p == nil {
			p = map[uint64]int{0: 0}
		}
		i, ok := p[e.val]
		if !ok {
			return viol("line %d: proc %d read value %d, which no write produced", e.line, e.proc, e.val)
		}
		k := key{proc: e.proc, line: e.line}
		if prev, seen := last[k]; seen {
			if e.write && i <= prev {
				return viol("line %d: proc %d wrote position %d after observing position %d", e.line, e.proc, i, prev)
			}
			if !e.write && i < prev {
				return viol("line %d: proc %d read position %d (value %d) after observing position %d — the line traveled back in time",
					e.line, e.proc, i, e.val, prev)
			}
		}
		last[k] = i
	}
	return nil
}
