package mc

import "multicube/internal/memmodel"

// The sequential-consistency witness records each execution's completed
// reads and writes into a memmodel.History and delegates the checking:
// check runs the per-address coherence oracle (the property every
// cache-coherence protocol must provide) after every execution, and
// checkSC runs the full cross-address sequential-consistency search when
// the scenario opts in with Scenario.CheckSC.
//
// Every OpWrite stores a unique nonzero value and records the value it
// overwrote, which is exactly the History format memmodel wants: each
// address's write order is recovered from the old-value chains without
// searching.
//
// Lines touched by lock operations (OpTAS, OpSync, OpUnlock) or by
// OpAllocate (a blind write that observes no predecessor) are excluded.

type witness struct {
	tracked map[uint64]bool
	hist    memmodel.History
}

func newWitness(sc *Scenario) *witness {
	tracked := make(map[uint64]bool)
	for _, p := range sc.Procs {
		for _, op := range p.Ops {
			switch op.Kind {
			case OpRead, OpWrite, OpWriteBack:
				if _, ok := tracked[op.Line]; !ok {
					tracked[op.Line] = true
				}
			case OpTAS, OpSync, OpUnlock, OpAllocate:
				tracked[op.Line] = false
			}
		}
	}
	return &witness{tracked: tracked}
}

func (w *witness) write(proc int, line, old, val uint64) {
	if w.tracked[line] {
		w.hist.Write(proc, line, old, val)
	}
}

func (w *witness) read(proc int, line, val uint64) {
	if w.tracked[line] {
		w.hist.Read(proc, line, val)
	}
}

// check validates the recorded history; it returns nil when the history
// is per-address sequentially consistent.
func (w *witness) check() *Violation {
	if err := w.hist.CheckCoherence(); err != nil {
		return &Violation{Kind: "sc", Msg: err.Error()}
	}
	return nil
}

// checkSC searches for a witness total order over ALL recorded events —
// full sequential consistency, not just per-address coherence. It
// returns a "sc-total" violation when no such order exists, and reports
// undecided=true when the node budget ran out before the search could
// conclude either way. Call it only after check() has passed: the
// sharper per-address diagnostics take precedence.
func (w *witness) checkSC(maxNodes int) (v *Violation, undecided bool) {
	res := memmodel.Check(&w.hist, memmodel.Options{MaxNodes: maxNodes})
	switch res.Verdict {
	case memmodel.VerdictViolation:
		return &Violation{Kind: "sc-total", Msg: res.Reason}, false
	case memmodel.VerdictUndecided:
		return nil, true
	default:
		return nil, false
	}
}
