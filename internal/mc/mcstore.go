package mc

import (
	"encoding/json"
	"fmt"

	"multicube/internal/statespace"
	"multicube/internal/topology"
)

// This file adapts the explorer to internal/statespace: hashing the
// scenario and options so a checkpoint is pinned to one exploration, and
// packing work items (choice prefix + sleep set) into the store's
// frontier encoding.

// scenarioHash fingerprints the (defaults-filled) scenario. Scenario is
// a plain exported struct, so its JSON encoding is deterministic and
// covers everything the search depends on.
func scenarioHash(sc *Scenario) string {
	data, err := json.Marshal(sc)
	if err != nil {
		// Scenario contains only marshalable fields; reaching here is a
		// programming error, not an input error.
		panic(fmt.Sprintf("mc: scenario hash: %v", err))
	}
	return fmt.Sprintf("%016x", fnvString(string(data)))
}

// optionsHash fingerprints the options that shape the search itself.
// Reporting and execution-policy knobs (Workers, NoMinimize, CheckFP,
// Progress, store/checkpoint paths) are excluded: they never change
// which states the search visits, and a resume legitimately runs with
// different paths. Checkpointing forbids Workers>1 and distribution, so
// those cannot differ across a checkpoint/resume pair either.
func optionsHash(o *Options) string {
	s := fmt.Sprintf("v1|%d|%d|%d|%d|%d|%v|%v|%d|%v|%v",
		o.MaxStates, o.MaxDepth, o.DepthStep, o.MaxStepsPerRun, o.MaxReissues,
		o.DisablePOR, o.DisableSleep, o.SCNodes, o.legacyAmple, o.legacyFP)
	return fmt.Sprintf("%016x", fnvString(s))
}

func fnvString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return h
}

// packSleep encodes a sleep set as two words per member: the class
// fields packed into signed 16-bit lanes, then the identity fingerprint.
// Bus indices and coordinates are tiny (grids are at most a few dozen
// wide), so 16 bits per lane is comfortable.
func packSleep(s sleepSet) []uint64 {
	if len(s) == 0 {
		return nil
	}
	out := make([]uint64, 0, 2*len(s))
	for _, u := range s {
		w := uint64(u.kind)<<48 |
			uint64(uint16(int16(u.bus)))<<32 |
			uint64(uint16(int16(u.at.Row)))<<16 |
			uint64(uint16(int16(u.at.Col)))
		out = append(out, w, u.fp)
	}
	return out
}

func unpackSleep(w []uint64) sleepSet {
	if len(w) == 0 {
		return nil
	}
	out := make(sleepSet, 0, len(w)/2)
	for i := 0; i+1 < len(w); i += 2 {
		out = append(out, tagClass{
			kind: uint8(w[i] >> 48),
			bus:  int(int16(uint16(w[i] >> 32))),
			at:   topology.Coord{Row: int(int16(uint16(w[i] >> 16))), Col: int(int16(uint16(w[i])))},
			fp:   w[i+1],
		})
	}
	return out
}

// itemsToFrontier converts the DFS stack for checkpointing, preserving
// order (resume pops in the same order the interrupted pass would have).
func itemsToFrontier(stack []workItem) []statespace.FrontierItem {
	out := make([]statespace.FrontierItem, len(stack))
	for i, it := range stack {
		out[i] = statespace.FrontierItem{Prefix: it.prefix, Sleep: packSleep(it.sleep), Skip: it.skip}
	}
	return out
}

func frontierToItems(items []statespace.FrontierItem) []workItem {
	out := make([]workItem, len(items))
	for i, f := range items {
		out[i] = workItem{prefix: f.Prefix, sleep: unpackSleep(f.Sleep), skip: f.Skip}
	}
	return out
}

// counterMap snapshots the resumable search counters. Keys are fixed
// strings; JSON renders the map with sorted keys, so manifests stay
// byte-deterministic.
func (e *explorer) counterMap(p *passOut) map[string]uint64 {
	var flags uint64
	if p.limitAny {
		flags |= 1
	}
	if p.stepsAny {
		flags |= 2
	}
	return map[string]uint64{
		"runs":            uint64(p.runs),
		"flags":           flags,
		"total_runs_prev": uint64(e.totalPrev),
		"fp_rec":          e.fpRec.Load(),
		"fp_inc":          e.fpInc.Load(),
		"sc_checks":       e.scRuns.Load(),
		"sc_undec":        e.scUndec.Load(),
	}
}

// restoreCounters is counterMap's inverse, rebuilding the explorer's and
// the in-flight pass's counters from a checkpoint.
func (e *explorer) restoreCounters(c map[string]uint64, init *passOut) {
	init.runs = int(c["runs"])
	init.limitAny = c["flags"]&1 != 0
	init.stepsAny = c["flags"]&2 != 0
	e.totalPrev = int(c["total_runs_prev"])
	e.fpRec.Store(c["fp_rec"])
	e.fpInc.Store(c["fp_inc"])
	e.scRuns.Store(c["sc_checks"])
	e.scUndec.Store(c["sc_undec"])
}

// checkpoint atomically persists the search at a frontier boundary. The
// fault hook brackets the write so crash-injection tests can kill the
// process (or panic) exactly at the boundary.
func (e *explorer) checkpoint(depth int, stack []workItem, p *passOut) error {
	if h := e.opts.faultHook; h != nil {
		h("pre-checkpoint")
	}
	meta := statespace.Meta{
		ScenarioHash: e.scenH,
		OptionsHash:  e.optH,
		Depth:        depth,
		Counters:     e.counterMap(p),
	}
	if err := e.visited.WriteCheckpoint(meta, itemsToFrontier(stack)); err != nil {
		return err
	}
	if h := e.opts.faultHook; h != nil {
		h("post-checkpoint")
	}
	return nil
}
