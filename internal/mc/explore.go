// The package participates in the explorer's determinism contract: no
// wall clock, no map-order dependence, no scheduling outside the chooser
// seam. multicube-vet enforces this (see internal/analysis).
//
//multicube:deterministic
package mc

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"multicube/internal/bus"
	"multicube/internal/coherence"
	"multicube/internal/sim"
	"multicube/internal/statespace"
)

// Violation is one safety failure, with the choice sequence that
// reproduces it from the initial state (replay with Replay).
type Violation struct {
	// Kind classifies the failure: "invariant", "sc" (per-address
	// coherence), "sc-total" (cross-address sequential consistency),
	// "deadlock", "livelock", "stray-reply", "protocol".
	Kind string
	Msg  string
	// Choices is the choice sequence reproducing the violation; all
	// choices beyond it default to 0.
	Choices []int
}

func (v *Violation) Error() string {
	return fmt.Sprintf("%s violation: %s (choices %v)", v.Kind, v.Msg, v.Choices)
}

// Options bound an exploration.
type Options struct {
	// MaxStates caps the visited-state table (the -budget flag). Zero
	// means the default of 200000.
	MaxStates int
	// MaxDepth caps the choice-sequence length; zero means unlimited
	// (explore until the bounded programs drain).
	MaxDepth int
	// DepthStep enables iterative deepening: exploration restarts with
	// the depth bound raised by DepthStep until the space is exhausted,
	// a violation is found, or MaxDepth/MaxStates is hit. Zero disables
	// deepening (a single full-depth pass). Deepening finds violations
	// with near-minimal choice sequences.
	DepthStep int
	// MaxStepsPerRun guards against runaway executions; zero means the
	// default of 20000 kernel steps.
	MaxStepsPerRun int
	// MaxReissues bounds protocol retransmissions per execution; beyond
	// it the run is flagged as a possible livelock. Zero means the
	// default of 128. The protocol legitimately retries lost races, so
	// the bound is generous rather than tight.
	MaxReissues int
	// Workers sets the number of concurrent exploration workers (the
	// -workers flag); zero or one means a single-threaded search. The
	// verdict and the reported counterexample are deterministic
	// regardless of Workers — a violation found by a parallel pass is
	// re-derived by the sequential search, which is a pure function of
	// the scenario and options, before being reported — but the
	// States/Runs statistics of a violation-free parallel search can
	// vary from run to run with worker scheduling.
	Workers int
	// DisablePOR turns off the partial-order reduction entirely (both
	// the persistent-set eager-firing and the sleep sets), for
	// cross-checking that the reduction hides no violations.
	DisablePOR bool
	// DisableSleep turns off only the sleep-set half of the reduction,
	// leaving persistent-set eager-firing active.
	DisableSleep bool
	// NoMinimize skips counterexample shrinking.
	NoMinimize bool
	// SCNodes caps the per-execution sequential-consistency search (the
	// memmodel node budget) for scenarios with CheckSC set; zero means
	// memmodel's default. Executions whose search exhausts the budget
	// count as undecided (Result.SCUndecided) rather than failing.
	SCNodes int
	// CheckFP enables the incremental-fingerprint debug cross-check: at
	// every choice point the canonical fingerprint is recomputed from
	// scratch with a fresh cache and compared against the incremental
	// value, panicking on any divergence (the -checkfp flag). Slow;
	// intended for tests and debugging the fingerprint fast path.
	CheckFP bool
	// Ctx, when non-nil, cancels the exploration cooperatively: it is
	// consulted at frontier boundaries (between from-scratch executions),
	// so a cancel returns within one bounded run — MaxStepsPerRun kernel
	// steps — rather than leaking a worker for the rest of the search.
	// A canceled exploration returns its partial statistics with
	// Result.Canceled set and never claims Exhausted.
	Ctx context.Context
	// Progress, when non-nil, is called at frontier boundaries with a
	// snapshot of the running search (states visited, runs completed,
	// current depth bound, frontier size). Calls are serialized. Under
	// parallel workers the run/frontier counts depend on scheduling even
	// though the verdict does not, so snapshots are for reporting, not
	// for cross-run comparison.
	Progress func(Progress)
	// Instrument, when non-nil, is called on every freshly built grid
	// machine (once per from-scratch execution) before the programs
	// start, so harnesses can install passive observation hooks — e.g.
	// the conformance observer of internal/protocol sets
	// coherence.System.Observer. Hooks must be passive: installing one
	// must not change protocol behavior, fingerprints, or verdicts.
	// Single-bus scenarios are not instrumented (the seam is the grid
	// coherence machine).
	Instrument func(*coherence.System)

	// StoreDir, when non-empty, lets the visited-state table spill cold
	// shards to disk under the MemBudget cap (the -store flag). Empty
	// keeps the table memory-only.
	StoreDir string
	// MemBudget caps the visited table's estimated in-memory bytes;
	// beyond it shards spill to StoreDir. Zero means unbounded RAM.
	MemBudget int64
	// CheckpointDir enables periodic atomic checkpoints of the search
	// (frontier + visited shards + counters) under the given directory
	// (the -checkpoint flag). Requires a sequential search (Workers <= 1,
	// DistParts <= 1); StoreDir defaults to CheckpointDir when unset.
	CheckpointDir string
	// CheckpointEvery is the number of from-scratch executions between
	// checkpoints; zero means a default of 512. Ignored without
	// CheckpointDir.
	CheckpointEvery int
	// Resume continues from the newest checkpoint in CheckpointDir when
	// one matches this scenario and these options (the -resume flag). The
	// resumed search's verdict, state count, and counterexample are
	// byte-identical to an uninterrupted run's; Result.Resumed reports
	// whether a checkpoint was actually used, and a corrupt or mismatched
	// checkpoint falls back to a fresh run with Result.ResumeNote set.
	Resume bool
	// DistParts, when > 1, splits the search across that many workers by
	// fingerprint-range ownership with cross-partition handoff (see
	// distribute.go) — the in-process form of farm-distributed
	// exploration. Like Workers, the verdict is deterministic but the
	// statistics of a violation-free search can vary with scheduling.
	DistParts int

	// faultHook, when non-nil, is called at checkpoint boundaries with
	// "pre-checkpoint"/"post-checkpoint" so crash-injection tests can die
	// exactly there (by panicking or killing the process).
	faultHook func(string)
	// legacyAmple swaps the persistent-set rule for PR 1's conservative
	// ample rule and disables sleep sets, so tests can compare the two
	// reductions' state counts on identical scenarios.
	legacyAmple bool
	// legacyFP swaps the incremental component-hashed fingerprint for the
	// original full-walk Fingerprint, so tests can assert the two induce
	// the same state partition (identical States counts and verdicts).
	legacyFP bool
}

func (o *Options) fillDefaults() {
	if o.MaxStates == 0 {
		o.MaxStates = 200000
	}
	if o.MaxStepsPerRun == 0 {
		o.MaxStepsPerRun = 20000
	}
	if o.MaxReissues == 0 {
		o.MaxReissues = 128
	}
	if o.Workers < 1 {
		o.Workers = 1
	}
	if o.CheckpointDir != "" {
		if o.StoreDir == "" {
			o.StoreDir = o.CheckpointDir
		}
		if o.CheckpointEvery <= 0 {
			o.CheckpointEvery = 512
		}
	}
	if o.DistParts < 0 {
		o.DistParts = 0
	}
}

// Progress is a frontier-boundary snapshot of a running exploration,
// delivered through Options.Progress.
type Progress struct {
	// States is the number of distinct canonical states visited so far
	// in the current deepening iteration.
	States int
	// Runs is the number of from-scratch executions completed so far in
	// the current pass.
	Runs int
	// Depth is the current choice-depth bound (0 = unlimited).
	Depth int
	// Frontier is the number of pending work items (unexplored branch
	// prefixes) queued at the snapshot.
	Frontier int
}

// Result summarizes an exploration.
type Result struct {
	Scenario string
	// States is the number of distinct canonical states visited (in the
	// deepest iteration, under iterative deepening).
	States int
	// Runs is the number of from-scratch executions (deepest iteration).
	Runs int
	// TotalRuns counts executions across all deepening iterations.
	TotalRuns int
	// Depth is the choice-depth bound of the final iteration.
	Depth int
	// Exhausted reports that every reachable interleaving within the
	// bounds was covered: no run was cut by the depth bound, the state
	// budget, or the step guard.
	Exhausted bool
	// BudgetHit reports the MaxStates budget stopped exploration.
	BudgetHit bool
	// Canceled reports that Options.Ctx was canceled before the bounded
	// space was covered: the Result describes a partial exploration
	// (never Exhausted) whose statistics stop at the cancellation point.
	Canceled bool
	// FPRecomputes and FPIncremental count component-hash rebuilds vs
	// cache hits in the incremental fingerprint path, summed over every
	// execution of the search whose result this is (minimization replays
	// and a parallel pass's sequential re-derivation keep their own
	// explorers and are not included). Zero under legacyFP.
	FPRecomputes  uint64
	FPIncremental uint64
	// SCChecks counts completed executions whose history was checked for
	// full sequential consistency (scenarios with CheckSC set; zero
	// otherwise), and SCUndecided how many of those searches gave up on
	// the node budget. Like the FP counters, minimization replays and a
	// parallel pass's sequential re-derivation are not included.
	SCChecks    uint64
	SCUndecided uint64
	// SCVerdict summarizes the cross-address checks: "" when the scenario
	// does not request them, else "ok", "undecided" (some search hit the
	// node budget), or "violation" (the reported Violation is "sc-total").
	SCVerdict string
	// Resumed reports the search continued from an on-disk checkpoint
	// (Options.Resume found a matching one). Every other field of a
	// resumed Result is byte-identical to an uninterrupted run's.
	Resumed bool
	// ResumeNote explains why a requested resume fell back to a fresh
	// search (corrupt or mismatched checkpoint); empty otherwise.
	ResumeNote string
	// Spills and DiskBytes describe the visited store's disk tier: shard
	// evictions performed and on-disk bytes at the end of the search
	// (both zero for a memory-only table).
	Spills    int
	DiskBytes int64
	// Handoffs counts cross-partition work transfers under DistParts.
	Handoffs int
	Violation *Violation
}

// checker is one from-scratch execution of a scenario on some machine —
// the Multicube (instance) or the single-bus baseline (sbInstance).
// Everything the explorer needs is behind this seam, so the same search,
// reduction, witness, and replay machinery checks both.
type checker interface {
	kernel() *sim.Kernel
	enableMC(ch sim.Chooser)
	stepCheck(maxReissues int) *Violation
	quiescenceCheck() *Violation
	canonicalFP() uint64
	// classify describes a kernel event tag to the reduction.
	classify(tag any) tagClass
	// grantClass describes one bus-arbitration candidate (the packet
	// that would be granted) on the named bus.
	grantClass(busName string, tag any) tagClass
	// fpStats reports this execution's incremental-fingerprint counters
	// (component recomputes, cache hits).
	fpStats() (recomputes, incremental uint64)
	// scStats reports this execution's sequential-consistency checks and
	// how many were cut by the node budget (zero unless Scenario.CheckSC).
	scStats() (checks, undecided uint64)
	// release returns pooled fingerprint state to sh for the next run.
	release()
}

func newChecker(sc *Scenario, sh *shared) checker {
	if sc.SingleBus {
		return newSBInstance(sc, sh)
	}
	return newInstance(sc, sh)
}

// take records one resolved choice point. Beyond the prefix, under the
// sleep-set reduction, it also records the candidates' classes and the
// sleep set in force, which the spawner needs to seed sibling branches.
type take struct {
	pick    int
	n       int
	cands   []tagClass
	sleepAt sleepSet
}

func picksOf(taken []take) []int {
	out := make([]int, len(taken))
	for i := range taken {
		out[i] = taken[i].pick
	}
	return out
}

// workItem is one pending branch: a choice prefix plus the sleep set
// that becomes active once the prefix is replayed. skip, used by
// distributed handoffs, is the number of tracked states beyond the
// prefix the previous owner already processed; the receiver replays them
// without consulting the visited table.
type workItem struct {
	prefix []int
	sleep  sleepSet
	skip   int
}

// mcChooser scripts an execution: the first len(prefix) choice points
// follow the prefix, the rest pick the first non-slept candidate (plain
// 0 when sleep sets are off). Reduction happens here — an eager pick is
// NOT recorded as a choice point, which is sound because the persistent
// (or legacy ample) decision is a pure function of the candidate set and
// therefore replays identically.
//
// Sleep bookkeeping: the chooser implements sim.DispatchObserver, so it
// sees every dispatched kernel event — including single-candidate
// dispatches and eager fires — and drops sleep members dependent with
// each executed transition. The work item's sleep set activates exactly
// when its prefix's final pick has dispatched: for a scheduler choice
// the chooser arms and installs it on the next Dispatched callback (the
// picked event itself, which must not be filtered against it); for an
// arbitration choice the grant event has already dispatched, so it
// installs immediately.
type mcChooser struct {
	n         int
	classify  func(any) tagClass
	grantCls  func(string, any) tagClass
	prefix    []int
	depth     int
	eager     bool
	legacy    bool
	sleepOn   bool
	initSleep sleepSet

	sleep    sleepSet
	armed    bool
	active   bool
	taken    []take
	limitHit bool
	blocked  bool

	// clsScratch backs classesOf between choice points; retained class
	// slices (take.cands) are copied out of it.
	clsScratch []tagClass
}

func newMCChooser(ck checker, n int, it workItem, depth int, opts *Options) *mcChooser {
	c := &mcChooser{
		n:         n,
		classify:  ck.classify,
		grantCls:  ck.grantClass,
		prefix:    it.prefix,
		depth:     depth,
		eager:     !opts.DisablePOR,
		legacy:    opts.legacyAmple,
		sleepOn:   !opts.DisablePOR && !opts.DisableSleep && !opts.legacyAmple,
		initSleep: it.sleep,
	}
	if c.sleepOn && len(c.prefix) == 0 {
		c.active = true
		c.sleep = c.initSleep
	}
	c.taken = make([]take, 0, len(c.prefix)+64)
	return c
}

// replayChooser scripts a counterexample re-execution: prefix picks,
// then default 0, with the same eager-firing as exploration but no sleep
// sets (a Violation's Choices records every resolved choice point up to
// the failure, so the replay is exact either way).
func replayChooser(ck checker, n int, prefix []int, opts *Options) *mcChooser {
	return &mcChooser{
		n:        n,
		classify: ck.classify,
		grantCls: ck.grantClass,
		prefix:   prefix,
		eager:    !opts.DisablePOR,
		legacy:   opts.legacyAmple,
	}
}

func (c *mcChooser) Choose(cp sim.ChoicePoint, cands []sim.Candidate) int {
	isSched := cp.Kind == "sched"
	var classes []tagClass
	classesOf := func() []tagClass {
		if classes == nil {
			if cap(c.clsScratch) < len(cands) {
				c.clsScratch = make([]tagClass, len(cands))
			}
			classes = c.clsScratch[:len(cands)]
			for i := range cands {
				if isSched {
					classes[i] = c.classify(cands[i].Tag)
				} else {
					classes[i] = c.grantCls(cp.Name, cands[i].Tag)
				}
			}
		}
		return classes
	}
	if c.eager && isSched {
		if c.legacy {
			if i := ampleIndex(cands); i >= 0 {
				return i
			}
		} else if i := persistentIndex(c.n, classesOf()); i >= 0 {
			return i
		}
	}
	if c.depth > 0 && len(c.taken) >= c.depth {
		c.limitHit = true
		return 0
	}
	scripted := len(c.taken) < len(c.prefix)
	pick := 0
	if scripted {
		pick = c.prefix[len(c.taken)]
		if pick < 0 || pick >= len(cands) {
			pick = 0
		}
	} else if c.sleepOn && isSched {
		pick = -1
		cls := classesOf()
		for i := range cands {
			if !c.sleep.contains(cls[i].fp) {
				pick = i
				break
			}
		}
		if pick < 0 {
			// Every enabled transition is slept: everything from here is
			// covered by sibling branches. Truncate the run.
			c.blocked = true
			return 0
		}
	}
	tk := take{pick: pick, n: len(cands)}
	if !scripted && c.sleepOn {
		tk.cands = append([]tagClass(nil), classesOf()...)
		tk.sleepAt = c.sleep
	}
	c.taken = append(c.taken, tk)
	if c.sleepOn && len(c.taken) == len(c.prefix) {
		if isSched {
			c.armed = true
		} else {
			c.sleep = c.initSleep
			c.active = true
		}
	}
	return pick
}

// Dispatched implements sim.DispatchObserver: sleep members stop being
// skippable once a dependent transition executes.
func (c *mcChooser) Dispatched(tag any) {
	if c.armed {
		c.armed = false
		c.active = true
		c.sleep = c.initSleep
		return
	}
	if !c.active || len(c.sleep) == 0 {
		return
	}
	c.sleep = c.sleep.afterExec(c.n, c.classify(tag))
}

func (c *mcChooser) picks(upto int) []int {
	out := make([]int, upto)
	for i := 0; i < upto; i++ {
		out[i] = c.taken[i].pick
	}
	return out
}

// ampleIndex is PR 1's conservative eager rule, kept (behind
// Options.legacyAmple) so tests can show the persistent/sleep reduction
// explores strictly fewer states. It finds a pending enqueue that
// commutes with every other enabled event under a coarser dependence:
// any delivery or processor step conflicts with any enqueue.
func ampleIndex(cands []sim.Candidate) int {
	for i, c := range cands {
		et, ok := c.Tag.(coherence.EnqueueTag)
		if !ok {
			continue
		}
		safe := true
		for j, o := range cands {
			if j == i {
				continue
			}
			switch t := o.Tag.(type) {
			case coherence.EnqueueTag:
				if t.TargetBus() == et.TargetBus() && t.Issuer == et.Issuer {
					safe = false
				}
			case bus.GrantTag:
				if t.B == et.TargetBus() {
					safe = false
				}
			default:
				// Deliveries, processor steps, and anything unknown may
				// enqueue inline.
				safe = false
			}
			if !safe {
				break
			}
		}
		if safe {
			return i
		}
	}
	return -1
}

// The visited-state table lives in internal/statespace: each canonical
// fingerprint maps to the smallest sleep set (as sorted transition
// fingerprints) it has been explored with — arriving with a superset
// means everything from here was already covered; anything else
// re-explores and the table keeps the intersection. An empty stored set
// — always the case with sleep sets off — truncates every revisit, PR
// 1's behavior. statespace.Store preserves that contract bit-for-bit
// while adding the disk tier, checkpoints, and the ownership partition.

// explorer holds the cross-run state of one exploration.
type explorer struct {
	sc      *Scenario
	opts    Options
	sh      *shared
	n       int
	visited *statespace.Store
	budget  atomic.Bool
	fpRec   atomic.Uint64
	fpInc   atomic.Uint64
	scRuns  atomic.Uint64
	scUndec atomic.Uint64

	// scenH/optH pin checkpoints to this exploration; totalPrev carries
	// run counts of completed deepening iterations into checkpoints.
	scenH, optH string
	totalPrev   int
}

func newExplorer(sc *Scenario, opts Options) *explorer {
	st, _ := statespace.Open(statespace.Config{}) // memory-only: cannot fail
	return &explorer{sc: sc, opts: opts, sh: newShared(sc, &opts), n: sc.N, visited: st}
}

type runOut struct {
	taken     []take
	violation *Violation
	truncated bool // stopped at an already-visited state
	limitHit  bool // the depth bound forced a default choice
	stepsHit  bool // the per-run step guard fired
	blocked   bool // every enabled transition was slept
	budgetCut bool // this run hit the state budget
	// handoff, under distributed exploration, is the continuation of a
	// run that reached a state owned by partition handoffTo.
	handoff   *workItem
	handoffTo int
}

// run executes the scenario from scratch under the given work item.
// When track is set, states beyond the prefix are checked against and
// added to the visited table (prefix replay must not consult it: those
// states were recorded by the run that spawned this branch, and
// truncating the replay would orphan it).
func (e *explorer) run(it workItem, depth int, track bool) runOut {
	ck := newChecker(e.sc, e.sh)
	ch := newMCChooser(ck, e.n, it, depth, &e.opts)
	return e.execute(ck, ch, len(it.prefix), track, -1, 0)
}

// execute drives one from-scratch execution. own >= 0 enables the
// ownership discipline of distributed exploration: tracked states in a
// foreign fingerprint range stop the run with a handoff instead of a
// visit, and the first skip tracked states beyond the prefix — already
// processed by the previous owner — are replayed without visiting.
func (e *explorer) execute(ck checker, ch *mcChooser, prefixLen int, track bool, own, skip int) runOut {
	ck.enableMC(ch)
	k := ck.kernel()
	var out runOut
	steps := 0
	skipLeft := skip
	// sinceChoice counts tracked states (skipped included) since the run
	// last resolved a choice point; a handoff's skip is sinceChoice-1,
	// covering everything before the foreign state itself.
	sinceChoice := 0
	lastTaken := prefixLen
	for k.Pending() > 0 {
		if steps >= e.opts.MaxStepsPerRun {
			out.stepsHit = true
			break
		}
		k.Step()
		steps++
		if ch.blocked {
			out.blocked = true
			break
		}
		if v := ck.stepCheck(e.opts.MaxReissues); v != nil {
			out.violation = v
			break
		}
		if track && len(ch.taken) >= prefixLen {
			if len(ch.taken) != lastTaken {
				lastTaken = len(ch.taken)
				sinceChoice = 0
			}
			sinceChoice++
			if skipLeft > 0 {
				skipLeft--
				continue
			}
			fp := ck.canonicalFP()
			if own >= 0 {
				if to := statespace.Owner(fp, e.opts.DistParts); to != own {
					out.handoff = &workItem{prefix: picksOf(ch.taken), sleep: ch.sleep, skip: sinceChoice - 1}
					out.handoffTo = to
					break
				}
			}
			switch e.visited.Visit(fp, ch.sleep.fps(), e.opts.MaxStates) {
			case statespace.OutcomeSeen:
				out.truncated = true
			case statespace.OutcomeBudget:
				e.budget.Store(true)
				out.budgetCut = true
			}
			if out.truncated || out.budgetCut {
				break
			}
		}
	}
	if out.violation == nil && !out.truncated && !out.blocked && !out.stepsHit && !out.budgetCut && out.handoff == nil && k.Pending() == 0 {
		out.violation = ck.quiescenceCheck()
	}
	out.taken = ch.taken
	out.limitHit = ch.limitHit
	if out.violation != nil {
		out.violation.Choices = picksOf(ch.taken)
	}
	rec, inc := ck.fpStats()
	e.fpRec.Add(rec)
	e.fpInc.Add(inc)
	scc, scu := ck.scStats()
	e.scRuns.Add(scc)
	e.scUndec.Add(scu)
	ck.release()
	return out
}

// children spawns the unexplored alternatives of every choice point a
// run resolved beyond its prefix (positions inside the prefix belong to
// ancestor runs). Under the sleep-set reduction, alternatives already
// slept at the point are skipped, and each spawned sibling inherits the
// point's sleep set plus its earlier siblings, filtered to the members
// independent of its own pick.
func (e *explorer) children(it workItem, r runOut) []workItem {
	var out []workItem
	for p := len(r.taken) - 1; p >= len(it.prefix); p-- {
		t := r.taken[p]
		if t.n < 2 {
			continue
		}
		base := make([]int, p)
		for i := 0; i < p; i++ {
			base[i] = r.taken[i].pick
		}
		if t.cands == nil {
			// Sleep sets off: spawn every alternative.
			for alt := t.n - 1; alt >= 1; alt-- {
				out = append(out, workItem{prefix: append(append([]int(nil), base...), alt)})
			}
			continue
		}
		done := []tagClass{t.cands[t.pick]}
		for alt := 0; alt < t.n; alt++ {
			if alt == t.pick {
				continue
			}
			cls := t.cands[alt]
			if t.sleepAt.contains(cls.fp) {
				continue
			}
			out = append(out, workItem{
				prefix: append(append([]int(nil), base...), alt),
				sleep:  childSleep(e.n, t.sleepAt, done, cls),
			})
			done = append(done, cls)
		}
	}
	return out
}

type passOut struct {
	runs      int
	violation *Violation
	limitAny  bool
	stepsAny  bool
	canceled  bool
	handoffs  int
	// err is a store failure (spill I/O, checkpoint write); the pass
	// stops at the frontier boundary that observed it.
	err error
}

// ctxDone reports cooperative cancellation; checked only at frontier
// boundaries so a cancel never interrupts a from-scratch execution
// midway (runs stay pure functions of their work items).
func (e *explorer) ctxDone() bool {
	return e.opts.Ctx != nil && e.opts.Ctx.Err() != nil
}

// report delivers a frontier-boundary progress snapshot. Callers hold
// whatever lock serializes the pass's bookkeeping, so callbacks never
// race.
func (e *explorer) report(runs, depth, frontier int) {
	if e.opts.Progress != nil {
		e.opts.Progress(Progress{States: e.visited.States(), Runs: runs, Depth: depth, Frontier: frontier})
	}
}

// pass runs one depth-bounded sequential DFS over choice sequences,
// starting from the given stack and carried counters (fresh ones on a
// normal run, a checkpoint's on a resume). Its outcome — including which
// violation is found first — is a pure function of the scenario,
// options, and starting state (absent a Ctx cancellation), which is what
// makes a resumed search byte-identical to an uninterrupted one.
func (e *explorer) pass(depth int, stack []workItem, out passOut) passOut {
	ckptEvery := 0
	if e.opts.CheckpointDir != "" {
		ckptEvery = e.opts.CheckpointEvery
	}
	sinceCkpt := 0
	for len(stack) > 0 && !e.budget.Load() {
		if e.ctxDone() {
			out.canceled = true
			return out
		}
		it := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		r := e.run(it, depth, true)
		out.runs++
		out.limitAny = out.limitAny || r.limitHit
		out.stepsAny = out.stepsAny || r.stepsHit
		if r.violation != nil {
			out.violation = r.violation
			return out
		}
		stack = append(stack, e.children(it, r)...)
		if err := e.visited.Err(); err != nil {
			out.err = err
			return out
		}
		e.report(out.runs, depth, len(stack))
		sinceCkpt++
		if ckptEvery > 0 && sinceCkpt >= ckptEvery && len(stack) > 0 {
			if err := e.checkpoint(depth, stack, &out); err != nil {
				out.err = err
				return out
			}
			sinceCkpt = 0
		}
	}
	return out
}

// passParallel is the worker-pool frontier: a shared LIFO of work items
// drained by Workers goroutines against the sharded visited table. On a
// violation the pass stops early, keeping the shortlex-least violation
// any worker found (the caller re-derives the canonical one
// sequentially).
func (e *explorer) passParallel(depth, workers int) passOut {
	var (
		mu          sync.Mutex
		queue       = []workItem{{}}
		outstanding = 1
		stop        bool
		out         passOut
	)
	cond := sync.NewCond(&mu)
	var wg sync.WaitGroup
	worker := func() {
		defer wg.Done()
		for {
			mu.Lock()
			for len(queue) == 0 && outstanding > 0 && !stop {
				cond.Wait()
			}
			if stop || len(queue) == 0 {
				mu.Unlock()
				return
			}
			if e.ctxDone() {
				out.canceled = true
				stop = true
				cond.Broadcast()
				mu.Unlock()
				return
			}
			it := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			mu.Unlock()

			r := e.run(it, depth, true)
			kids := e.children(it, r)

			mu.Lock()
			out.runs++
			out.limitAny = out.limitAny || r.limitHit
			out.stepsAny = out.stepsAny || r.stepsHit
			if r.violation != nil {
				if out.violation == nil || shortlexLess(r.violation.Choices, out.violation.Choices) {
					out.violation = r.violation
				}
				stop = true
			}
			if r.budgetCut {
				stop = true
			}
			if !stop {
				queue = append(queue, kids...)
				outstanding += len(kids)
				e.report(out.runs, depth, len(queue))
			}
			outstanding--
			cond.Broadcast()
			mu.Unlock()
		}
	}
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		// Workers race on the shared frontier, but results are merged into
		// canonical order and every counterexample is re-derived by a
		// sequential replay, so the explored verdict is schedule-independent.
		//multicube:chooser-ok worker pool; results canonicalized and replays sequential
		go worker()
	}
	wg.Wait()
	return out
}

func shortlexLess(a, b []int) bool {
	if len(a) != len(b) {
		return len(a) < len(b)
	}
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// Explore model-checks the scenario within the given bounds.
func Explore(sc Scenario, opts Options) (Result, error) {
	sc.FillDefaults()
	if err := sc.Validate(); err != nil {
		return Result{}, err
	}
	opts.fillDefaults()
	res, err := exploreBounded(&sc, opts)
	if err != nil {
		return res, err
	}
	if (opts.Workers > 1 || opts.DistParts > 1) && res.Violation != nil {
		// Deterministic reporting: which violation a parallel or
		// distributed pass trips first depends on worker scheduling, so
		// re-derive the whole result with the sequential search. It finds
		// a violation too (the concurrent pass proved one reachable)
		// unless the sequential order burns the state budget first; then
		// fall back to minimizing the shortlex-least find. The
		// re-derivation is memory-only: it must not disturb the primary
		// search's store or checkpoint directories.
		seq := opts
		seq.Workers = 1
		seq.DistParts = 0
		seq.StoreDir, seq.MemBudget, seq.CheckpointDir, seq.CheckpointEvery, seq.Resume = "", 0, "", 0, false
		if sres, serr := exploreBounded(&sc, seq); serr == nil && sres.Violation != nil {
			sres.Handoffs = res.Handoffs
			res = sres
		} else if !opts.NoMinimize {
			e := newExplorer(&sc, seq)
			res.Violation = e.minimize(res.Violation)
		}
	}
	return res, nil
}

func exploreBounded(sc *Scenario, opts Options) (Result, error) {
	e := &explorer{sc: sc, opts: opts, sh: newShared(sc, &opts), n: sc.N}
	res := Result{Scenario: sc.Name}

	ckptOn := opts.CheckpointDir != ""
	if ckptOn && (opts.Workers > 1 || opts.DistParts > 1) {
		return res, fmt.Errorf("mc: checkpointing requires a sequential search (workers=1, no distribution)")
	}
	e.scenH, e.optH = scenarioHash(sc), optionsHash(&opts)
	cfg := statespace.Config{Dir: opts.StoreDir, MemBudget: opts.MemBudget, CheckpointDir: opts.CheckpointDir}

	depth := opts.MaxDepth // 0 = unlimited: a single full-depth pass
	if opts.DepthStep > 0 {
		depth = opts.DepthStep
	}
	stack := []workItem{{}}
	var init passOut
	if opts.Resume && ckptOn {
		st, meta, frontier, err := statespace.Resume(cfg, e.scenH, e.optH)
		switch {
		case err == nil:
			e.visited = st
			stack = frontierToItems(frontier)
			depth = meta.Depth
			e.restoreCounters(meta.Counters, &init)
			res.TotalRuns = e.totalPrev
			res.Resumed = true
		case errors.Is(err, statespace.ErrNoCheckpoint):
			// Nothing to resume; fall through to a fresh search.
		case errors.Is(err, statespace.ErrCorrupt), errors.Is(err, statespace.ErrMismatch):
			// A damaged or foreign checkpoint is detected, reported, and
			// re-explored from scratch — never silently trusted.
			res.ResumeNote = err.Error()
			if cerr := statespace.Clear(cfg); cerr != nil {
				return res, cerr
			}
		default:
			return res, err
		}
	}
	if e.visited == nil {
		st, err := statespace.Open(cfg)
		if err != nil {
			return res, err
		}
		e.visited = st
	}
	defer e.visited.Close()

	for {
		var p passOut
		switch {
		case opts.Workers > 1:
			p = e.passParallel(depth, opts.Workers)
		case opts.DistParts > 1:
			p = e.passDistributed(depth, opts.DistParts)
		default:
			p = e.pass(depth, stack, init)
		}
		if p.err == nil {
			if serr := e.visited.Err(); serr != nil {
				p.err = serr
			}
		}
		res.TotalRuns = e.totalPrev + p.runs
		res.Runs = p.runs
		res.States = e.visited.States()
		res.Depth = depth
		res.BudgetHit = e.budget.Load()
		res.FPRecomputes = e.fpRec.Load()
		res.FPIncremental = e.fpInc.Load()
		res.SCChecks = e.scRuns.Load()
		res.SCUndecided = e.scUndec.Load()
		res.Spills = e.visited.Spills()
		res.DiskBytes = e.visited.DiskBytes()
		res.Handoffs += p.handoffs
		if p.err != nil {
			return res, p.err
		}
		if sc.CheckSC {
			switch {
			case p.violation != nil && p.violation.Kind == "sc-total":
				res.SCVerdict = "violation"
			case res.SCUndecided > 0:
				res.SCVerdict = "undecided"
			default:
				res.SCVerdict = "ok"
			}
		}
		if p.violation != nil {
			v := p.violation
			if opts.Workers <= 1 && opts.DistParts <= 1 && !opts.NoMinimize {
				v = e.minimize(v)
			}
			res.Violation = v
			return res, nil
		}
		if p.canceled {
			res.Canceled = true
			return res, nil
		}
		if res.BudgetHit {
			return res, nil
		}
		if !p.limitAny && !p.stepsAny {
			// No run was cut short: the bounded space is exhausted and
			// deeper iterations would explore nothing new.
			res.Exhausted = true
			return res, nil
		}
		atMax := opts.DepthStep == 0 || (opts.MaxDepth > 0 && depth >= opts.MaxDepth)
		if atMax || !p.limitAny {
			// Some run was cut by the step guard (or the final depth):
			// the space was not fully covered, and deepening further
			// would not change that.
			return res, nil
		}
		depth += opts.DepthStep
		if opts.MaxDepth > 0 && depth > opts.MaxDepth {
			depth = opts.MaxDepth
		}
		// Next deepening iteration: fresh table (run files included),
		// fresh frontier, carried TotalRuns.
		e.totalPrev = res.TotalRuns
		if err := e.visited.Reset(); err != nil {
			return res, err
		}
		e.budget.Store(false)
		stack = []workItem{{}}
		init = passOut{}
	}
}

// replayRun re-executes a bare choice prefix with defaults beyond it and
// no sleep sets — the semantics Violation.Choices is defined against.
func (e *explorer) replayRun(prefix []int) runOut {
	ck := newChecker(e.sc, e.sh)
	ch := replayChooser(ck, e.n, prefix, &e.opts)
	return e.execute(ck, ch, len(prefix), false, -1, 0)
}

// minimize greedily shrinks a counterexample: repeatedly lower the
// latest non-default choice that still reproduces a violation of the
// same kind. Each accepted shrink is lexicographically smaller, so the
// loop terminates; the result is locally minimal (no single choice can
// be lowered further).
func (e *explorer) minimize(v *Violation) *Violation {
	cur := v
	attempts := 0
	for improved := true; improved && attempts < 400 && !e.ctxDone(); {
		improved = false
		for i := len(cur.Choices) - 1; i >= 0 && !improved; i-- {
			if cur.Choices[i] == 0 {
				continue
			}
			for alt := 0; alt < cur.Choices[i] && !improved; alt++ {
				cand := append([]int(nil), cur.Choices[:i+1]...)
				cand[i] = alt
				attempts++
				r := e.replayRun(cand)
				if r.violation != nil && r.violation.Kind == cur.Kind {
					cur = r.violation
					improved = true
				}
				if attempts >= 400 {
					break
				}
			}
		}
	}
	for len(cur.Choices) > 0 && cur.Choices[len(cur.Choices)-1] == 0 {
		cur.Choices = cur.Choices[:len(cur.Choices)-1]
	}
	return cur
}
