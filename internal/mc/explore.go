package mc

import (
	"fmt"

	"multicube/internal/bus"
	"multicube/internal/coherence"
	"multicube/internal/sim"
)

// Violation is one safety failure, with the choice sequence that
// reproduces it from the initial state (replay with Replay).
type Violation struct {
	// Kind classifies the failure: "invariant", "sc", "deadlock",
	// "livelock", "stray-reply", "protocol".
	Kind string
	Msg  string
	// Choices is the choice sequence reproducing the violation; all
	// choices beyond it default to 0.
	Choices []int
}

func (v *Violation) Error() string {
	return fmt.Sprintf("%s violation: %s (choices %v)", v.Kind, v.Msg, v.Choices)
}

// Options bound an exploration.
type Options struct {
	// MaxStates caps the visited-state table (the -budget flag). Zero
	// means the default of 200000.
	MaxStates int
	// MaxDepth caps the choice-sequence length; zero means unlimited
	// (explore until the bounded programs drain).
	MaxDepth int
	// DepthStep enables iterative deepening: exploration restarts with
	// the depth bound raised by DepthStep until the space is exhausted,
	// a violation is found, or MaxDepth/MaxStates is hit. Zero disables
	// deepening (a single full-depth pass). Deepening finds violations
	// with near-minimal choice sequences.
	DepthStep int
	// MaxStepsPerRun guards against runaway executions; zero means the
	// default of 20000 kernel steps.
	MaxStepsPerRun int
	// MaxReissues bounds protocol retransmissions per execution; beyond
	// it the run is flagged as a possible livelock. Zero means the
	// default of 128. The protocol legitimately retries lost races, so
	// the bound is generous rather than tight.
	MaxReissues int
	// DisablePOR turns off the ample-set partial-order reduction, for
	// cross-checking that the reduction hides no violations.
	DisablePOR bool
	// NoMinimize skips counterexample shrinking.
	NoMinimize bool
}

func (o *Options) fillDefaults() {
	if o.MaxStates == 0 {
		o.MaxStates = 200000
	}
	if o.MaxStepsPerRun == 0 {
		o.MaxStepsPerRun = 20000
	}
	if o.MaxReissues == 0 {
		o.MaxReissues = 128
	}
}

// Result summarizes an exploration.
type Result struct {
	Scenario string
	// States is the number of distinct canonical states visited (in the
	// deepest iteration, under iterative deepening).
	States int
	// Runs is the number of from-scratch executions (deepest iteration).
	Runs int
	// TotalRuns counts executions across all deepening iterations.
	TotalRuns int
	// Depth is the choice-depth bound of the final iteration.
	Depth int
	// Exhausted reports that every reachable interleaving within the
	// bounds was covered: no run was cut by the depth bound, the state
	// budget, or the step guard.
	Exhausted bool
	// BudgetHit reports the MaxStates budget stopped exploration.
	BudgetHit bool
	Violation *Violation
}

// take records one resolved choice point.
type take struct {
	pick int
	n    int
}

// mcChooser scripts an execution: the first len(prefix) choice points
// follow the prefix, the rest pick the default 0. Ample-set reduction
// happens here — an eager pick is NOT recorded as a choice point, which
// is sound because the ample decision is a pure function of the
// candidate set and therefore replays identically.
type mcChooser struct {
	prefix   []int
	depth    int
	por      bool
	taken    []take
	limitHit bool
}

func (c *mcChooser) Choose(cp sim.ChoicePoint, cands []sim.Candidate) int {
	if c.por && cp.Kind == "sched" {
		if i := ampleIndex(cands); i >= 0 {
			return i
		}
	}
	if c.depth > 0 && len(c.taken) >= c.depth {
		c.limitHit = true
		return 0
	}
	pick := 0
	if len(c.taken) < len(c.prefix) {
		pick = c.prefix[len(c.taken)]
		if pick < 0 || pick >= len(cands) {
			pick = 0
		}
	}
	c.taken = append(c.taken, take{pick: pick, n: len(cands)})
	return pick
}

func (c *mcChooser) picks(upto int) []int {
	out := make([]int, upto)
	for i := 0; i < upto; i++ {
		out[i] = c.taken[i].pick
	}
	return out
}

// ampleIndex finds a pending event that commutes with every other
// enabled event, so firing it first loses no interleavings. The only
// such events are device-latency enqueues (EnqueueTag): their sole
// effect is appending an operation to a bus queue. An enqueue stops
// commuting when the candidate set also contains:
//
//   - a grant on the same bus (the enqueue order decides whether the
//     operation reaches that arbitration),
//   - another enqueue from the same issuer onto the same bus (per-source
//     FIFO order is hardware; their relative order is a real choice), or
//   - any event that can itself enqueue — a delivery (snoop handlers
//     issue zero-latency responses inline) or a processor step — since
//     the same-source ordering above could be at stake.
func ampleIndex(cands []sim.Candidate) int {
	for i, c := range cands {
		et, ok := c.Tag.(coherence.EnqueueTag)
		if !ok {
			continue
		}
		safe := true
		for j, o := range cands {
			if j == i {
				continue
			}
			switch t := o.Tag.(type) {
			case coherence.EnqueueTag:
				if t.TargetBus() == et.TargetBus() && t.Issuer == et.Issuer {
					safe = false
				}
			case bus.GrantTag:
				if t.B == et.TargetBus() {
					safe = false
				}
			default:
				// Deliveries, processor steps, and anything unknown may
				// enqueue inline.
				safe = false
			}
			if !safe {
				break
			}
		}
		if safe {
			return i
		}
	}
	return -1
}

// explorer holds the cross-run state of one exploration.
type explorer struct {
	sc        *Scenario
	opts      Options
	visited   map[uint64]struct{}
	budgetHit bool
}

type runOut struct {
	taken     []take
	violation *Violation
	truncated bool // stopped at an already-visited state
	limitHit  bool // the depth bound forced a default choice
	stepsHit  bool // the per-run step guard fired
}

// run executes the scenario from scratch under the given choice prefix.
// When track is set, states beyond the prefix are checked against and
// added to the visited table (prefix replay must not consult it: those
// states were recorded by the run that spawned this prefix, and
// truncating the replay would orphan the branch).
func (e *explorer) run(prefix []int, depth int, track bool) runOut {
	in := newInstance(e.sc)
	ch := &mcChooser{prefix: prefix, depth: depth, por: !e.opts.DisablePOR}
	in.sys.EnableModelChecking(ch)
	var out runOut
	steps := 0
	for in.k.Pending() > 0 {
		if steps >= e.opts.MaxStepsPerRun {
			out.stepsHit = true
			break
		}
		in.k.Step()
		steps++
		if v := in.stepCheck(e.opts.MaxReissues); v != nil {
			out.violation = v
			break
		}
		if track && len(ch.taken) >= len(prefix) {
			fp := in.canonicalFP()
			if _, ok := e.visited[fp]; ok {
				out.truncated = true
				break
			}
			if len(e.visited) >= e.opts.MaxStates {
				e.budgetHit = true
				break
			}
			e.visited[fp] = struct{}{}
		}
	}
	if out.violation == nil && !out.truncated && !out.stepsHit && !e.budgetHit && in.k.Pending() == 0 {
		out.violation = in.quiescenceCheck()
	}
	out.taken = ch.taken
	out.limitHit = ch.limitHit
	if out.violation != nil {
		out.violation.Choices = ch.picks(len(ch.taken))
	}
	return out
}

type passOut struct {
	runs      int
	violation *Violation
	limitAny  bool
	stepsAny  bool
}

// pass runs one depth-bounded DFS over choice sequences.
func (e *explorer) pass(depth int) passOut {
	var out passOut
	stack := [][]int{nil}
	for len(stack) > 0 && !e.budgetHit {
		prefix := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		r := e.run(prefix, depth, true)
		out.runs++
		out.limitAny = out.limitAny || r.limitHit
		out.stepsAny = out.stepsAny || r.stepsHit
		if r.violation != nil {
			out.violation = r.violation
			return out
		}
		// Spawn the unexplored alternatives of every choice point this
		// run resolved beyond its prefix. Positions inside the prefix
		// belong to ancestor runs.
		for p := len(r.taken) - 1; p >= len(prefix); p-- {
			if r.taken[p].n < 2 {
				continue
			}
			base := make([]int, p)
			for i := 0; i < p; i++ {
				base[i] = r.taken[i].pick
			}
			for alt := r.taken[p].n - 1; alt >= 1; alt-- {
				stack = append(stack, append(append([]int(nil), base...), alt))
			}
		}
	}
	return out
}

// Explore model-checks the scenario within the given bounds.
func Explore(sc Scenario, opts Options) (Result, error) {
	sc.fillDefaults()
	if err := sc.Validate(); err != nil {
		return Result{}, err
	}
	opts.fillDefaults()
	e := &explorer{sc: &sc, opts: opts}
	res := Result{Scenario: sc.Name}

	depth := opts.MaxDepth // 0 = unlimited: a single full-depth pass
	if opts.DepthStep > 0 {
		depth = opts.DepthStep
	}
	for {
		e.visited = make(map[uint64]struct{})
		e.budgetHit = false
		p := e.pass(depth)
		res.TotalRuns += p.runs
		res.Runs = p.runs
		res.States = len(e.visited)
		res.Depth = depth
		res.BudgetHit = e.budgetHit
		if p.violation != nil {
			v := p.violation
			if !opts.NoMinimize {
				v = e.minimize(v)
			}
			res.Violation = v
			return res, nil
		}
		if e.budgetHit {
			return res, nil
		}
		if !p.limitAny && !p.stepsAny {
			// No run was cut short: the bounded space is exhausted and
			// deeper iterations would explore nothing new.
			res.Exhausted = true
			return res, nil
		}
		atMax := opts.DepthStep == 0 || (opts.MaxDepth > 0 && depth >= opts.MaxDepth)
		if atMax || !p.limitAny {
			// Some run was cut by the step guard (or the final depth):
			// the space was not fully covered, and deepening further
			// would not change that.
			return res, nil
		}
		depth += opts.DepthStep
		if opts.MaxDepth > 0 && depth > opts.MaxDepth {
			depth = opts.MaxDepth
		}
	}
}

// minimize greedily shrinks a counterexample: repeatedly lower the
// latest non-default choice that still reproduces a violation of the
// same kind. Each accepted shrink is lexicographically smaller, so the
// loop terminates; the result is locally minimal (no single choice can
// be lowered further).
func (e *explorer) minimize(v *Violation) *Violation {
	cur := v
	attempts := 0
	for improved := true; improved && attempts < 400; {
		improved = false
		for i := len(cur.Choices) - 1; i >= 0 && !improved; i-- {
			if cur.Choices[i] == 0 {
				continue
			}
			for alt := 0; alt < cur.Choices[i] && !improved; alt++ {
				cand := append([]int(nil), cur.Choices[:i+1]...)
				cand[i] = alt
				attempts++
				r := e.run(cand, 0, false)
				if r.violation != nil && r.violation.Kind == cur.Kind {
					cur = r.violation
					improved = true
				}
				if attempts >= 400 {
					break
				}
			}
		}
	}
	for len(cur.Choices) > 0 && cur.Choices[len(cur.Choices)-1] == 0 {
		cur.Choices = cur.Choices[:len(cur.Choices)-1]
	}
	return cur
}
