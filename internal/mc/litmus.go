package mc

import (
	"strings"

	"multicube/internal/memmodel"
	"multicube/internal/singlebus"
	"multicube/internal/topology"
)

// The litmus-* presets compile memmodel's litmus library to bounded
// Multicube scenarios with CheckSC set, so exploring one checks EVERY
// reachable interleaving's history for full sequential consistency —
// which subsumes checking the test's classic forbidden outcome.
//
// Each multi-variable test comes in two placements, because on the
// Multicube the interesting orderings run through the variables' home
// columns (on a 2×2 grid, line L is homed on column L%2):
//
//   - litmus-<name>:      variable v on line v — different home columns,
//     so invalidations and replies for x and y cross independent buses.
//   - litmus-<name>-1col: variable v on line 2v — one shared home
//     column, serializing both variables' memory traffic.
//   - litmus-<name>-3x3:  variable v on line 3v on a 3×3 grid — one
//     shared home column with two columns the programs never home on,
//     exercising the checker's conditional column symmetry (6 row
//     relabelings × 2 column relabelings) on a machine whose state
//     space dwarfs the 2×2 presets'.
//
// Single-variable tests (corr, coww) have nothing to place apart and
// skip -1col (the -3x3 placement still applies).
//
// Every test additionally compiles to the single-bus baseline, where the
// atomic bus makes placement moot: litmus-<name>-sb runs Goodman's
// write-once snooper and litmus-<name>-sb-mesi the MESI snooper. The
// same explorer, SC witness, and oracles apply, so the three machines'
// verdicts on the same program are directly comparable.

const litmusSameColSuffix = "-1col"

// litmus3x3Suffix selects the 3×3-grid single-home-column placement.
const litmus3x3Suffix = "-3x3"

// Single-bus litmus suffixes; checked after -1col so the two families
// cannot combine.
const (
	litmusSBSuffix     = "-sb"
	litmusSBMESISuffix = "-sb-mesi"
)

// litmusCoords spreads litmus threads over the 2×2 grid so no two share
// a row or column bus where avoidable: the classic two-thread tests run
// corner-to-corner.
var litmusCoords = []topology.Coord{
	{Row: 0, Col: 0}, {Row: 1, Col: 1}, {Row: 0, Col: 1}, {Row: 1, Col: 0},
}

// litmus3x3Coords places threads on the 3×3 grid along the diagonal
// first, so the classic two-thread tests share no bus at all; the
// fourth thread (iriw) necessarily shares a row with the first.
var litmus3x3Coords = []topology.Coord{
	{Row: 0, Col: 0}, {Row: 1, Col: 1}, {Row: 2, Col: 2}, {Row: 0, Col: 1},
}

// litmusPresetNames lists the litmus-* preset names, in the library's
// stable order.
func litmusPresetNames() []string {
	var out []string
	for _, l := range memmodel.LitmusTests() {
		out = append(out, "litmus-"+l.Name)
		if l.Vars >= 2 {
			out = append(out, "litmus-"+l.Name+litmusSameColSuffix)
		}
		out = append(out, "litmus-"+l.Name+litmus3x3Suffix)
		out = append(out,
			"litmus-"+l.Name+litmusSBSuffix,
			"litmus-"+l.Name+litmusSBMESISuffix)
	}
	return out
}

// litmusPreset compiles the named litmus-* preset; ok is false when the
// name is not a litmus preset.
func litmusPreset(name string) (Scenario, bool) {
	base, ok := strings.CutPrefix(name, "litmus-")
	if !ok {
		return Scenario{}, false
	}
	base, mesi := strings.CutSuffix(base, litmusSBMESISuffix)
	singleBus := mesi
	if !singleBus {
		base, singleBus = strings.CutSuffix(base, litmusSBSuffix)
	}
	var sameCol, grid3 bool
	if !singleBus {
		base, sameCol = strings.CutSuffix(base, litmusSameColSuffix)
		if !sameCol {
			base, grid3 = strings.CutSuffix(base, litmus3x3Suffix)
		}
	}
	l, ok := memmodel.LitmusByName(base)
	if !ok || len(l.Procs) > len(litmusCoords) || (sameCol && l.Vars < 2) {
		return Scenario{}, false
	}
	line := func(v int) uint64 {
		switch {
		case grid3:
			return uint64(3 * v)
		case sameCol:
			return uint64(2 * v)
		}
		return uint64(v)
	}
	sc := Scenario{Name: name, N: 2, CheckSC: true}
	coords := litmusCoords
	if grid3 {
		sc.N = 3
		coords = litmus3x3Coords
	}
	if singleBus {
		sc.SingleBus = true
		if mesi {
			sc.Protocol = singlebus.ProtocolMESI
		}
	}
	for p, prog := range l.Procs {
		pr := Proc{At: coords[p]}
		for _, op := range prog {
			kind := OpRead
			if op.Write {
				kind = OpWrite
			}
			pr.Ops = append(pr.Ops, ProcOp{Kind: kind, Line: line(op.Var)})
		}
		sc.Procs = append(sc.Procs, pr)
	}
	return sc, true
}
