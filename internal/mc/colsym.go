package mc

// Column-symmetry support. Rows of the Multicube are fully
// interchangeable, but columns are pinned by the home-column
// interleaving: line L's memory module, and therefore all of L's
// column-bus traffic, lives on column L % N. A column relabeling cperm
// therefore preserves reachability only when it fixes the home column
// of every line the scenario can touch — then the machine dynamics
// commute with the relabeling exactly as they do for rows (nodes are
// identical across columns, cache/MLT indexing keys on the unrelabeled
// line number, and memory modules of untouched home columns hold no
// fingerprint-visible state that distinguishes them).
//
// Scenarios that concentrate lines on few home columns (the -1col
// litmus family, anything on grids wider than its working set) leave
// the remaining columns freely permutable, shrinking the canonical
// state space by up to (N - used)! — on top of the N! row factor.

// usedHomeColumns returns, as a bitset-style bool slice of length
// sc.N, the home columns of every line named by the scenario's
// programs. Exploration only ever references program lines, so these
// are exactly the columns a relabeling must fix.
func usedHomeColumns(sc *Scenario) []bool {
	used := make([]bool, sc.N)
	for _, pr := range sc.Procs {
		for _, op := range pr.Ops {
			used[int(op.Line%uint64(sc.N))] = true
		}
	}
	return used
}

// colPermutations enumerates the relabelings of n columns that fix
// every column marked in fixed, permuting only the unmarked ones among
// themselves. Mirroring rowPermutations' factorial guard, more than 4
// free columns degrades gracefully to the identity alone.
func colPermutations(n int, fixed []bool) [][]int {
	ident := make([]int, n)
	free := make([]int, 0, n)
	for i := range ident {
		ident[i] = i
		if !fixed[i] {
			free = append(free, i)
		}
	}
	if len(free) <= 1 || len(free) > 4 {
		return [][]int{ident}
	}
	var out [][]int
	var rec func(rest, acc []int)
	rec = func(rest, acc []int) {
		if len(rest) == 0 {
			p := append([]int(nil), ident...)
			for i, col := range free {
				p[col] = acc[i]
			}
			out = append(out, p)
			return
		}
		for i := range rest {
			next := make([]int, 0, len(rest)-1)
			next = append(next, rest[:i]...)
			next = append(next, rest[i+1:]...)
			rec(next, append(acc, rest[i]))
		}
	}
	rec(free, nil)
	return out
}
