package mc

import (
	"reflect"
	"testing"

	"multicube/internal/topology"
)

// TestColPermutations pins the admissible-relabeling enumeration: only
// permutations fixing every used home column, identity when nothing is
// free, factorial of the free set otherwise, with the same >4 guard as
// rowPermutations.
func TestColPermutations(t *testing.T) {
	cases := []struct {
		name  string
		n     int
		fixed []bool
		want  [][]int
	}{
		{"all-used", 2, []bool{true, true}, [][]int{{0, 1}}},
		{"one-free", 2, []bool{true, false}, [][]int{{0, 1}}},
		{"two-free", 3, []bool{true, false, false}, [][]int{{0, 1, 2}, {0, 2, 1}}},
		{"middle-fixed", 3, []bool{false, true, false}, [][]int{{0, 1, 2}, {2, 1, 0}}},
		{"guard", 6, []bool{false, false, false, false, false, false}, [][]int{{0, 1, 2, 3, 4, 5}}},
	}
	for _, tc := range cases {
		if got := colPermutations(tc.n, tc.fixed); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%s: colPermutations(%d, %v) = %v, want %v", tc.name, tc.n, tc.fixed, got, tc.want)
		}
	}
}

// TestUsedHomeColumns checks the derivation from programs: home column
// of line L on an N-wide grid is L % N, nothing else is marked.
func TestUsedHomeColumns(t *testing.T) {
	sc := Scenario{N: 3, Procs: []Proc{
		{At: topology.Coord{Row: 0, Col: 2}, Ops: []ProcOp{{Kind: OpWrite, Line: 0}, {Kind: OpRead, Line: 3}}},
		{At: topology.Coord{Row: 1, Col: 1}, Ops: []ProcOp{{Kind: OpWrite, Line: 4}}},
	}}
	want := []bool{true, true, false} // lines 0,3 → col 0; line 4 → col 1; proc placement is irrelevant
	if got := usedHomeColumns(&sc); !reflect.DeepEqual(got, want) {
		t.Errorf("usedHomeColumns = %v, want %v", got, want)
	}
}

// colPermuteScenario relabels every processor placement's column by
// colMap, leaving programs (and therefore home columns) untouched.
func colPermuteScenario(sc Scenario, colMap []int) Scenario {
	procs := make([]Proc, len(sc.Procs))
	copy(procs, sc.Procs)
	for i := range procs {
		procs[i].At.Col = colMap[procs[i].At.Col]
	}
	sc.Procs = procs
	return sc
}

// TestExploreColumnSymmetricPlacements is the end-to-end symmetry
// property: moving a scenario's processors among the free (never homed
// on) columns must not change the canonical state space — identical
// state count, run count, and verdict. litmus-corr-3x3 homes every
// line on column 0, so any relabeling fixing column 0 is admissible.
func TestExploreColumnSymmetricPlacements(t *testing.T) {
	base, err := Preset("litmus-corr-3x3")
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{MaxStates: 40000}
	want, err := Explore(base, opts)
	if err != nil {
		t.Fatal(err)
	}
	if want.Violation != nil {
		t.Fatalf("base: %v", want.Violation)
	}
	if !want.Exhausted {
		t.Fatalf("base space not exhausted (states=%d); counts would not be comparable", want.States)
	}
	for _, colMap := range [][]int{{0, 2, 1}} {
		moved := colPermuteScenario(base, colMap)
		moved.Name = base.Name + "-moved"
		got, err := Explore(moved, opts)
		if err != nil {
			t.Fatal(err)
		}
		if got.States != want.States || got.Runs != want.Runs || (got.Violation == nil) != (want.Violation == nil) {
			t.Errorf("colMap %v: states=%d runs=%d, want states=%d runs=%d",
				colMap, got.States, got.Runs, want.States, want.Runs)
		}
	}
}

// TestExploreColumnSymmetryCrossCheck runs a 3×3 single-home-column
// preset with CheckFP, which recomputes every canonical fingerprint
// from scratch (all row × column relabelings) and panics on divergence
// between the incremental and full-walk paths.
func TestExploreColumnSymmetryCrossCheck(t *testing.T) {
	sc, err := Preset("litmus-corr-3x3")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Explore(sc, Options{MaxStates: 20000, CheckFP: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("%s: %v", sc.Name, res.Violation)
	}
}

// TestExploreColumnSymmetryLegacyEquivalence checks the legacy
// full-walk fingerprint path partitions states identically to the
// incremental one under column relabelings: same state and run counts.
func TestExploreColumnSymmetryLegacyEquivalence(t *testing.T) {
	sc, err := Preset("litmus-coww-3x3")
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{MaxStates: 20000}
	inc, err := Explore(sc, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.legacyFP = true
	leg, err := Explore(sc, opts)
	if err != nil {
		t.Fatal(err)
	}
	if inc.States != leg.States || inc.Runs != leg.Runs {
		t.Fatalf("incremental states=%d runs=%d, legacy states=%d runs=%d",
			inc.States, inc.Runs, leg.States, leg.Runs)
	}
}

// TestSharedColumnPerms pins which presets get non-identity column
// relabelings: the -3x3 single-home-column family does (two free
// columns), the 2×2 presets do not (at most one free column).
func TestSharedColumnPerms(t *testing.T) {
	count := func(name string) int {
		sc, err := Preset(name)
		if err != nil {
			t.Fatal(err)
		}
		sc.FillDefaults()
		opts := Options{}
		return len(newShared(&sc, &opts).cperms)
	}
	if got := count("litmus-sb-3x3"); got != 2 {
		t.Errorf("litmus-sb-3x3: %d column relabelings, want 2", got)
	}
	if got := count("litmus-sb-1col"); got != 1 {
		t.Errorf("litmus-sb-1col: %d column relabelings, want 1 (only one free column)", got)
	}
	if got := count("litmus-sb"); got != 1 {
		t.Errorf("litmus-sb: %d column relabelings, want 1 (every home column used)", got)
	}
}
