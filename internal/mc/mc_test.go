package mc

import (
	"strings"
	"testing"
)

// TestModelCheckSmall exhaustively explores the two cheap presets and
// expects the protocol to survive every interleaving. This is the
// checked-in regression the ROADMAP asks for: any protocol change that
// opens a race window in these bounded scenarios fails here with a
// replayable counterexample in the failure message.
func TestModelCheckSmall(t *testing.T) {
	for _, name := range []string{"read-race", "readmod-race"} {
		sc, err := Preset(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Explore(sc, Options{MaxStates: 400000})
		if err != nil {
			t.Fatal(err)
		}
		if res.Violation != nil {
			t.Fatalf("%s: %v", name, res.Violation)
		}
		if !res.Exhausted {
			t.Fatalf("%s: bounded space not exhausted (states=%d, budget=%v)", name, res.States, res.BudgetHit)
		}
		if res.States < 1000 {
			t.Fatalf("%s: only %d states explored; the scenario lost its interleavings", name, res.States)
		}
		t.Logf("%s: %d states, %d runs, exhausted", name, res.States, res.Runs)
	}
}

// TestModelCheckSyncPresets runs the two expensive presets under a state
// budget so the whole package stays fast; the full exhaustive runs live
// in cmd/multicube-mc (see EXPERIMENTS.md for the exhaustive counts).
func TestModelCheckSyncPresets(t *testing.T) {
	if testing.Short() {
		t.Skip("sync presets are slow; run without -short")
	}
	for _, name := range []string{"sync-race", "mlt-overflow-lock"} {
		sc, err := Preset(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Explore(sc, Options{MaxStates: 4000})
		if err != nil {
			t.Fatal(err)
		}
		if res.Violation != nil {
			t.Fatalf("%s: %v", name, res.Violation)
		}
		if !res.Exhausted && !res.BudgetHit {
			t.Fatalf("%s: neither exhausted nor budget-limited (states=%d)", name, res.States)
		}
		t.Logf("%s: %d states within budget, exhausted=%v", name, res.States, res.Exhausted)
	}
}

// TestInjectedBugCaught switches off the stale in-flight reply defense
// (the DESIGN.md §5.6a protocol gap) and expects the checker to find the
// stale-sharer state, minimize the counterexample, and replay it to the
// same violation with an annotated bus trace.
func TestInjectedBugCaught(t *testing.T) {
	sc, err := Preset("read-race")
	if err != nil {
		t.Fatal(err)
	}
	sc.InjectStaleReply = true
	res, err := Explore(sc, Options{MaxStates: 400000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil {
		t.Fatalf("stale-reply injection not caught (%d states explored)", res.States)
	}
	if res.Violation.Kind != "invariant" {
		t.Fatalf("violation kind = %q, want invariant: %v", res.Violation.Kind, res.Violation)
	}
	if !strings.Contains(res.Violation.Msg, "shared") {
		t.Fatalf("violation does not describe a stale sharer: %v", res.Violation)
	}
	// The minimized counterexample should be short: the race needs only
	// one deviation from the default schedule.
	nonDefault := 0
	for _, c := range res.Violation.Choices {
		if c != 0 {
			nonDefault++
		}
	}
	if nonDefault == 0 || nonDefault > 3 {
		t.Fatalf("minimized counterexample has %d non-default choices (%v), want 1..3",
			nonDefault, res.Violation.Choices)
	}
	// Replay must reproduce it and carry the bus-operation trace.
	rr, err := Replay(sc, res.Violation.Choices, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rr.Violation == nil || rr.Violation.Kind != res.Violation.Kind {
		t.Fatalf("replay did not reproduce the violation: %v", rr.Violation)
	}
	if rr.Log.Len() == 0 {
		t.Fatalf("replay produced no bus-operation trace")
	}
	var sb strings.Builder
	if err := rr.Log.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "READMOD") || !strings.Contains(sb.String(), "READ(") {
		t.Fatalf("trace lacks the racing transactions:\n%s", sb.String())
	}
}

// TestPORCrossCheck verifies the ample-set reduction hides nothing: with
// and without the reduction the clean scenario exhausts with no
// violation, and the injected bug is found either way.
func TestPORCrossCheck(t *testing.T) {
	sc, err := Preset("read-race")
	if err != nil {
		t.Fatal(err)
	}
	for _, disable := range []bool{false, true} {
		res, err := Explore(sc, Options{MaxStates: 400000, DisablePOR: disable})
		if err != nil {
			t.Fatal(err)
		}
		if res.Violation != nil || !res.Exhausted {
			t.Fatalf("POR disabled=%v: violation=%v exhausted=%v", disable, res.Violation, res.Exhausted)
		}
	}
	sc.InjectStaleReply = true
	for _, disable := range []bool{false, true} {
		res, err := Explore(sc, Options{MaxStates: 400000, DisablePOR: disable})
		if err != nil {
			t.Fatal(err)
		}
		if res.Violation == nil {
			t.Fatalf("POR disabled=%v: injected bug not found", disable)
		}
	}
}

// TestExplorationDeterministic re-runs an exploration and expects
// identical state and run counts: the checker itself must be as
// reproducible as the simulator it drives.
func TestExplorationDeterministic(t *testing.T) {
	sc, err := Preset("read-race")
	if err != nil {
		t.Fatal(err)
	}
	a, err := Explore(sc, Options{MaxStates: 400000})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Explore(sc, Options{MaxStates: 400000})
	if err != nil {
		t.Fatal(err)
	}
	if a.States != b.States || a.Runs != b.Runs {
		t.Fatalf("exploration not deterministic: (%d states, %d runs) vs (%d states, %d runs)",
			a.States, a.Runs, b.States, b.Runs)
	}
}

// TestIterativeDeepening checks the deepening schedule still finds the
// injected bug and reports a depth no larger than a full-depth pass
// would need.
func TestIterativeDeepening(t *testing.T) {
	sc, err := Preset("read-race")
	if err != nil {
		t.Fatal(err)
	}
	sc.InjectStaleReply = true
	res, err := Explore(sc, Options{MaxStates: 400000, DepthStep: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil {
		t.Fatalf("deepening missed the injected bug")
	}
	if len(res.Violation.Choices) > res.Depth {
		t.Fatalf("counterexample length %d exceeds the depth bound %d", len(res.Violation.Choices), res.Depth)
	}
}

// TestStateBudget checks the -budget path stops exploration cleanly.
func TestStateBudget(t *testing.T) {
	sc, err := Preset("readmod-race")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Explore(sc, Options{MaxStates: 50})
	if err != nil {
		t.Fatal(err)
	}
	if !res.BudgetHit {
		t.Fatalf("budget of 50 states not reported as hit (states=%d)", res.States)
	}
	if res.Exhausted {
		t.Fatalf("budget-limited run claims exhaustion")
	}
	if res.States > 50 {
		t.Fatalf("visited %d states past the budget of 50", res.States)
	}
}

// TestWitness unit-tests the per-address sequential-consistency checker
// on hand-built histories.
func TestWitness(t *testing.T) {
	sc := &Scenario{Name: "w", N: 2, Procs: []Proc{
		{Ops: []ProcOp{{OpWrite, 1}}},
		{Ops: []ProcOp{{OpRead, 1}}},
	}}
	fresh := func() *witness { return newWitness(sc) }

	w := fresh()
	w.write(0, 1, 0, 100)
	w.read(1, 1, 100)
	w.write(1, 1, 100, 200)
	w.read(0, 1, 200)
	if v := w.check(); v != nil {
		t.Fatalf("legal history flagged: %v", v)
	}

	w = fresh()
	w.write(0, 1, 0, 100)
	w.write(1, 1, 0, 200) // both overwrote the initial value: lost update
	if v := w.check(); v == nil || v.Kind != "sc" {
		t.Fatalf("lost update not flagged: %v", v)
	}

	w = fresh()
	w.write(0, 1, 0, 100)
	w.read(1, 1, 100)
	w.read(1, 1, 0) // traveled back in time
	if v := w.check(); v == nil || v.Kind != "sc" {
		t.Fatalf("non-monotonic read not flagged: %v", v)
	}

	w = fresh()
	w.read(0, 1, 77) // no write produced 77
	if v := w.check(); v == nil || v.Kind != "sc" {
		t.Fatalf("read of unwritten value not flagged: %v", v)
	}
}

// TestPresetsValidate makes sure every preset passes its own validation.
func TestPresetsValidate(t *testing.T) {
	for _, name := range Presets() {
		sc, err := Preset(name)
		if err != nil {
			t.Fatal(err)
		}
		sc.FillDefaults()
		if err := sc.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := Preset("no-such"); err == nil {
		t.Fatalf("unknown preset accepted")
	}
}
