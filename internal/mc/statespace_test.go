package mc

import (
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"syscall"
	"testing"
)

// comparable strips the fields a resumed or disk-backed Result
// legitimately differs in: Resumed/ResumeNote report provenance, and
// Spills/DiskBytes depend on the memory budget and on how many
// checkpoints forced flushes. Everything else — verdict, state count,
// counterexample, all search counters — must be byte-identical.
func comparable(r Result) Result {
	r.Resumed = false
	r.ResumeNote = ""
	r.Spills = 0
	r.DiskBytes = 0
	return r
}

// TestStoreSpillEquivalence forces the visited table through the disk
// tier with a memory budget far below the space's footprint and requires
// the exact Result of the unbounded in-memory search.
func TestStoreSpillEquivalence(t *testing.T) {
	// Budgets far below each space's hot-tier footprint (~64 bytes/state).
	budgets := map[string]int64{"read-race": 8 << 10, "sb-writeonce-race": 1 << 10}
	for _, name := range []string{"read-race", "sb-writeonce-race"} {
		sc, err := Preset(name)
		if err != nil {
			t.Fatal(err)
		}
		mem, err := Explore(sc, Options{MaxStates: 400000})
		if err != nil {
			t.Fatal(err)
		}
		disk, err := Explore(sc, Options{MaxStates: 400000, StoreDir: t.TempDir(), MemBudget: budgets[name]})
		if err != nil {
			t.Fatal(err)
		}
		if disk.Spills == 0 {
			t.Fatalf("%s: 8KiB budget produced no spills; the disk tier was never exercised", name)
		}
		if !reflect.DeepEqual(comparable(mem), comparable(disk)) {
			t.Fatalf("%s: spilled result differs from in-memory:\n  mem:  %+v\n  disk: %+v", name, mem, disk)
		}
		t.Logf("%s: %d states identical across %d spills (%d bytes on disk)",
			name, disk.States, disk.Spills, disk.DiskBytes)
	}
}

// crashPanic is the sentinel the in-process fault hook throws; the test
// recovers it to simulate dying mid-search without taking the process
// down.
type crashPanic struct{}

// TestCrashResumeInProcess kills an exploration at randomized checkpoint
// boundaries via the in-process fault hook, resumes it, and requires the
// final Result byte-identical to an uninterrupted run — for both a clean
// scenario and one with the injected §5.6a bug (so the counterexample
// path is covered too).
func TestCrashResumeInProcess(t *testing.T) {
	for _, inject := range []bool{false, true} {
		sc, err := Preset("read-race")
		if err != nil {
			t.Fatal(err)
		}
		sc.InjectStaleReply = inject
		base, err := Explore(sc, Options{MaxStates: 400000})
		if err != nil {
			t.Fatal(err)
		}
		// Kill after 1, 3, and 7 checkpoints: early, mid, and late
		// boundaries relative to the ~33 (clean) and ~13 (injected)
		// checkpoint opportunities read-race offers at every=100.
		for _, killAfter := range []int{1, 3, 7} {
			dir := t.TempDir()
			opts := Options{MaxStates: 400000, CheckpointDir: dir, CheckpointEvery: 100}
			crashed := false
			func() {
				defer func() {
					if r := recover(); r != nil {
						if _, ok := r.(crashPanic); !ok {
							panic(r)
						}
						crashed = true
					}
				}()
				seen := 0
				o := opts
				o.faultHook = func(point string) {
					if point == "post-checkpoint" {
						if seen++; seen >= killAfter {
							panic(crashPanic{})
						}
					}
				}
				if _, err := Explore(sc, o); err != nil {
					t.Errorf("inject=%v kill=%d: pre-crash explore: %v", inject, killAfter, err)
				}
			}()
			if !crashed {
				t.Fatalf("inject=%v kill=%d: search finished before the fault hook fired", inject, killAfter)
			}
			o := opts
			o.Resume = true
			res, err := Explore(sc, o)
			if err != nil {
				t.Fatalf("inject=%v kill=%d: resume: %v", inject, killAfter, err)
			}
			if !res.Resumed {
				t.Fatalf("inject=%v kill=%d: resumed run did not report Resumed", inject, killAfter)
			}
			if !reflect.DeepEqual(comparable(base), comparable(res)) {
				t.Fatalf("inject=%v kill=%d: resumed result differs:\n  base:    %+v\n  resumed: %+v",
					inject, killAfter, base, res)
			}
		}
	}
}

// TestCrashResumeProcessKill is the process-level half of the crash
// layer: a child test process SIGKILLs itself at a checkpoint boundary —
// no deferred cleanup, no atexit, exactly what a crashed or OOM-killed
// run leaves behind — and the parent resumes from its droppings.
func TestCrashResumeProcessKill(t *testing.T) {
	if os.Getenv("MC_CRASH_DIR") != "" {
		// Child mode: explore with a hook that SIGKILLs this process
		// after MC_CRASH_AFTER checkpoints.
		sc, err := Preset("read-race")
		if err != nil {
			t.Fatal(err)
		}
		after, _ := strconv.Atoi(os.Getenv("MC_CRASH_AFTER"))
		seen := 0
		_, err = Explore(sc, Options{
			MaxStates:       400000,
			CheckpointDir:   os.Getenv("MC_CRASH_DIR"),
			CheckpointEvery: 200,
			faultHook: func(point string) {
				if point == "post-checkpoint" {
					if seen++; seen >= after {
						_ = syscall.Kill(os.Getpid(), syscall.SIGKILL)
						select {} // unreachable; SIGKILL is not deliverable to a handler
					}
				}
			},
		})
		t.Fatalf("child survived its own SIGKILL (explore err %v)", err)
	}

	sc, err := Preset("read-race")
	if err != nil {
		t.Fatal(err)
	}
	base, err := Explore(sc, Options{MaxStates: 400000})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run", "^TestCrashResumeProcessKill$", "-test.v")
	cmd.Env = append(os.Environ(), "MC_CRASH_DIR="+dir, "MC_CRASH_AFTER=2")
	out, err := cmd.CombinedOutput()
	var ee *exec.ExitError
	if err == nil {
		t.Fatalf("child exited cleanly; expected SIGKILL. Output:\n%s", out)
	} else if !errors.As(err, &ee) {
		t.Fatalf("child: %v\n%s", err, out)
	}
	if _, err := os.Stat(filepath.Join(dir, "MANIFEST.json")); err != nil {
		t.Fatalf("child left no checkpoint manifest: %v\n%s", err, out)
	}
	res, err := Explore(sc, Options{MaxStates: 400000, CheckpointDir: dir, CheckpointEvery: 200, Resume: true})
	if err != nil {
		t.Fatalf("resume after SIGKILL: %v", err)
	}
	if !res.Resumed {
		t.Fatal("resume after SIGKILL did not report Resumed")
	}
	if !reflect.DeepEqual(comparable(base), comparable(res)) {
		t.Fatalf("post-SIGKILL resume differs:\n  base:    %+v\n  resumed: %+v", base, res)
	}
}

// TestResumeDetectsCorruption truncates a spilled shard under a valid
// manifest and requires resume to refuse the damage, report it, and
// re-explore from scratch to the correct result.
func TestResumeDetectsCorruption(t *testing.T) {
	sc, err := Preset("read-race")
	if err != nil {
		t.Fatal(err)
	}
	base, err := Explore(sc, Options{MaxStates: 400000})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	opts := Options{MaxStates: 400000, CheckpointDir: dir, CheckpointEvery: 200, MemBudget: 8 << 10}
	// Crash once mid-run so a checkpoint with spilled shards exists.
	func() {
		defer func() { recover() }()
		o := opts
		o.faultHook = func(p string) {
			if p == "post-checkpoint" {
				panic(crashPanic{})
			}
		}
		_, _ = Explore(sc, o)
	}()
	runs, err := filepath.Glob(filepath.Join(dir, "*.run"))
	if err != nil || len(runs) == 0 {
		t.Fatalf("no spilled shards to corrupt (err %v)", err)
	}
	data, err := os.ReadFile(runs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(runs[0], data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	o := opts
	o.Resume = true
	res, err := Explore(sc, o)
	if err != nil {
		t.Fatalf("resume over corruption: %v", err)
	}
	if res.Resumed {
		t.Fatal("resume accepted a truncated shard")
	}
	if !strings.Contains(res.ResumeNote, "corrupt") {
		t.Fatalf("ResumeNote %q does not report the corruption", res.ResumeNote)
	}
	if !reflect.DeepEqual(comparable(base), comparable(res)) {
		t.Fatalf("re-exploration after corruption differs:\n  base: %+v\n  got:  %+v", base, res)
	}
}

// TestDistributedSameVerdict splits the search across fingerprint-range
// partitions and requires the sequential verdict, state count, and — on
// the injected bug — the identical minimized counterexample.
func TestDistributedSameVerdict(t *testing.T) {
	for _, inject := range []bool{false, true} {
		sc, err := Preset("read-race")
		if err != nil {
			t.Fatal(err)
		}
		sc.InjectStaleReply = inject
		seq, err := Explore(sc, Options{MaxStates: 400000})
		if err != nil {
			t.Fatal(err)
		}
		dist, err := Explore(sc, Options{MaxStates: 400000, DistParts: 3})
		if err != nil {
			t.Fatal(err)
		}
		if (seq.Violation == nil) != (dist.Violation == nil) {
			t.Fatalf("inject=%v: seq violation=%v, dist violation=%v", inject, seq.Violation, dist.Violation)
		}
		if inject {
			if !reflect.DeepEqual(seq.Violation.Choices, dist.Violation.Choices) {
				t.Fatalf("minimized counterexamples differ:\n  seq:  %v\n  dist: %v",
					seq.Violation.Choices, dist.Violation.Choices)
			}
			continue
		}
		if seq.Exhausted != dist.Exhausted || seq.States != dist.States {
			t.Fatalf("distributed coverage differs: seq states=%d exhausted=%v, dist states=%d exhausted=%v",
				seq.States, seq.Exhausted, dist.States, dist.Exhausted)
		}
		if dist.Handoffs == 0 {
			t.Fatal("distributed run performed no handoffs; the partition was never crossed")
		}
		t.Logf("dist-parts=3: %d states (= sequential), %d handoffs", dist.States, dist.Handoffs)
	}
}

// TestCheckpointRejectsParallel pins the guard: checkpointing composes
// only with the sequential pass whose frontier boundaries it snapshots.
func TestCheckpointRejectsParallel(t *testing.T) {
	sc, err := Preset("read-race")
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range []Options{
		{CheckpointDir: t.TempDir(), Workers: 4},
		{CheckpointDir: t.TempDir(), DistParts: 2},
	} {
		if _, err := Explore(sc, opts); err == nil {
			t.Fatalf("options %+v: checkpointing with a concurrent pass was accepted", opts)
		}
	}
}

// TestResumeNothingToResume pins the fresh-start path: -resume with an
// empty checkpoint directory runs normally with Resumed=false.
func TestResumeNothingToResume(t *testing.T) {
	sc, err := Preset("read-race")
	if err != nil {
		t.Fatal(err)
	}
	base, err := Explore(sc, Options{MaxStates: 400000})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Explore(sc, Options{MaxStates: 400000, CheckpointDir: t.TempDir(), Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Resumed {
		t.Fatal("Resumed reported with nothing to resume")
	}
	if !reflect.DeepEqual(comparable(base), comparable(res)) {
		t.Fatalf("fresh checkpointed run differs from plain run:\n  base: %+v\n  got:  %+v", base, res)
	}
}
