package mc

import (
	"testing"
)

// BenchmarkExplore measures the model checker's state-exploration
// throughput on the 2×2 presets (the 3×3 ones are too slow for a bench
// loop). Each iteration is a full bounded exploration from scratch with
// the default persistent/sleep-set reduction; the custom states/sec
// metric is the number the optimization work cares about — ns/op tracks
// scenario size, states/sec tracks the explorer. BENCH_mc.json at the
// repository root records the baseline. Run with:
//
//	go test ./internal/mc/ -bench=BenchmarkExplore -benchtime=2x
func BenchmarkExplore(b *testing.B) {
	for _, name := range []string{
		"readmod-race", "read-race", "sync-race", "mlt-overflow-lock",
		"sb-writeonce-race", "sb-victim-race",
	} {
		sc, err := Preset(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			states := 0
			for i := 0; i < b.N; i++ {
				res, err := Explore(sc, Options{MaxStates: 400000})
				if err != nil {
					b.Fatal(err)
				}
				if res.Violation != nil {
					b.Fatalf("unexpected violation: %v", res.Violation)
				}
				states += res.States
			}
			b.ReportMetric(float64(states)/b.Elapsed().Seconds(), "states/sec")
			b.ReportMetric(float64(states)/float64(b.N), "states")
		})
	}
}

// BenchmarkExploreLegacyAmple is the same sweep under PR 1's ample rule,
// so a states/sec regression can be told apart from a reduction change.
func BenchmarkExploreLegacyAmple(b *testing.B) {
	for _, name := range []string{"readmod-race", "read-race"} {
		sc, err := Preset(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			states := 0
			for i := 0; i < b.N; i++ {
				res, err := Explore(sc, Options{MaxStates: 400000, legacyAmple: true})
				if err != nil {
					b.Fatal(err)
				}
				states += res.States
			}
			b.ReportMetric(float64(states)/b.Elapsed().Seconds(), "states/sec")
			b.ReportMetric(float64(states)/float64(b.N), "states")
		})
	}
}
