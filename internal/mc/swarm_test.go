package mc

import (
	"os"
	"strconv"
	"testing"
)

// TestSwarm model-checks a swarm of seeded random scenarios on both
// machines under a state budget. Every case is independent; a failure
// names the seed that reproduces it:
//
//	MC_SWARM_SEED=<seed> go test ./internal/mc -run TestSwarm
func TestSwarm(t *testing.T) {
	if s := os.Getenv("MC_SWARM_SEED"); s != "" {
		seed, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("MC_SWARM_SEED: %v", err)
		}
		runSwarmCase(t, seed)
		return
	}
	const base = 9000 // any change invalidates logged failure seeds; bump deliberately
	cases := 24
	if testing.Short() {
		cases = 6
	}
	for i := 0; i < cases; i++ {
		runSwarmCase(t, base+int64(i))
	}
}

func runSwarmCase(t *testing.T, seed int64) {
	for _, singleBus := range []bool{false, true} {
		sc := SwarmScenario(seed, singleBus)
		if err := sc.Validate(); err != nil {
			t.Fatalf("seed %d (singlebus=%v): generated invalid scenario: %v", seed, singleBus, err)
		}
		res, err := Explore(sc, Options{MaxStates: 4000})
		if err != nil {
			t.Fatalf("seed %d (singlebus=%v): %v", seed, singleBus, err)
		}
		if res.Violation != nil {
			t.Fatalf("seed %d (singlebus=%v): %v\nreplay with MC_SWARM_SEED=%d; scenario: %+v",
				seed, singleBus, res.Violation, seed, sc.Procs)
		}
		if !res.Exhausted && !res.BudgetHit {
			t.Fatalf("seed %d (singlebus=%v): neither exhausted nor budget-limited (states=%d)",
				seed, singleBus, res.States)
		}
	}
}
