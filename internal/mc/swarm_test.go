package mc

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"

	"multicube/internal/topology"
)

// swarmScenario derives one bounded random scenario from a seed: two
// processors at distinct coordinates of a 2×2 grid (or on the single-bus
// baseline), one to three operations each over four lines. Operation
// kinds stay in the data subset — reads, writes, allocates, explicit
// writebacks — so programs always terminate and the witness applies;
// lock scenarios need paired acquire/release structure and are covered
// by the curated presets instead. The whole scenario is a pure function
// of the seed, so any failure replays from the seed alone.
func swarmScenario(seed int64, singleBus bool) Scenario {
	rng := rand.New(rand.NewSource(seed))
	kinds := []OpKind{OpRead, OpWrite, OpWrite, OpAllocate, OpWriteBack}
	if singleBus {
		kinds = []OpKind{OpRead, OpWrite}
	}
	coords := []topology.Coord{{Row: 0, Col: 0}, {Row: 0, Col: 1}, {Row: 1, Col: 0}, {Row: 1, Col: 1}}
	rng.Shuffle(len(coords), func(i, j int) { coords[i], coords[j] = coords[j], coords[i] })

	sc := Scenario{
		Name:      fmt.Sprintf("swarm-%d", seed),
		N:         2,
		SingleBus: singleBus,
	}
	if rng.Intn(2) == 0 {
		// Half the swarm runs with tight structures: a single-entry
		// modified line table (multicube) or a two-line direct-mapped
		// cache, so victim and overflow paths stay hot.
		if singleBus {
			sc.CacheLines, sc.CacheAssoc = 2, 1
		} else {
			sc.MLTEntries, sc.MLTAssoc = 1, 1
		}
	}
	for p := 0; p < 2; p++ {
		ops := make([]ProcOp, 1+rng.Intn(3))
		for i := range ops {
			ops[i] = ProcOp{Kind: kinds[rng.Intn(len(kinds))], Line: uint64(rng.Intn(4))}
		}
		sc.Procs = append(sc.Procs, Proc{At: coords[p], Ops: ops})
	}
	return sc
}

// TestSwarm model-checks a swarm of seeded random scenarios on both
// machines under a state budget. Every case is independent; a failure
// names the seed that reproduces it:
//
//	MC_SWARM_SEED=<seed> go test ./internal/mc -run TestSwarm
func TestSwarm(t *testing.T) {
	if s := os.Getenv("MC_SWARM_SEED"); s != "" {
		seed, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("MC_SWARM_SEED: %v", err)
		}
		runSwarmCase(t, seed)
		return
	}
	const base = 9000 // any change invalidates logged failure seeds; bump deliberately
	cases := 24
	if testing.Short() {
		cases = 6
	}
	for i := 0; i < cases; i++ {
		runSwarmCase(t, base+int64(i))
	}
}

func runSwarmCase(t *testing.T, seed int64) {
	for _, singleBus := range []bool{false, true} {
		sc := swarmScenario(seed, singleBus)
		if err := sc.Validate(); err != nil {
			t.Fatalf("seed %d (singlebus=%v): generated invalid scenario: %v", seed, singleBus, err)
		}
		res, err := Explore(sc, Options{MaxStates: 4000})
		if err != nil {
			t.Fatalf("seed %d (singlebus=%v): %v", seed, singleBus, err)
		}
		if res.Violation != nil {
			t.Fatalf("seed %d (singlebus=%v): %v\nreplay with MC_SWARM_SEED=%d; scenario: %+v",
				seed, singleBus, res.Violation, seed, sc.Procs)
		}
		if !res.Exhausted && !res.BudgetHit {
			t.Fatalf("seed %d (singlebus=%v): neither exhausted nor budget-limited (states=%d)",
				seed, singleBus, res.States)
		}
	}
}
