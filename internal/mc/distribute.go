package mc

import (
	"sync"
)

// Distributed exploration splits one search across several workers by
// fingerprint-range ownership (statespace.Owner): each part visits —
// and records — only states in its own range, so each part's slice of
// the visited store could live on a different farm worker. When a run
// reaches a tracked state owned by a foreign part it stops and hands the
// continuation over: the choice prefix reproducing the state, the sleep
// set in force, and a skip count covering the tracked states the sender
// already processed since its last choice point (the receiver replays
// them without visiting, which is also what makes handoff chains
// terminate — each hop strictly extends the prefix or the skip).
//
// Like the worker-pool pass, a distributed pass's verdict is made
// deterministic by sequential re-derivation of any violation; its
// States/Runs statistics can vary with scheduling.

// passDistributed drains per-part work queues with one worker per part.
// Parts share the explorer's store (in-process the shard ranges live in
// one Store; the farm's value is the ownership discipline itself plus
// the handoff protocol, which its job plumbing carries across workers).
func (e *explorer) passDistributed(depth, parts int) passOut {
	var (
		mu          sync.Mutex
		queues      = make([][]workItem, parts)
		outstanding = 1
		stop        bool
		out         passOut
	)
	queues[0] = []workItem{{}}
	cond := sync.NewCond(&mu)
	var wg sync.WaitGroup
	worker := func(own int) {
		defer wg.Done()
		for {
			mu.Lock()
			for len(queues[own]) == 0 && outstanding > 0 && !stop {
				cond.Wait()
			}
			if stop || len(queues[own]) == 0 {
				mu.Unlock()
				return
			}
			if e.ctxDone() {
				out.canceled = true
				stop = true
				cond.Broadcast()
				mu.Unlock()
				return
			}
			q := queues[own]
			it := q[len(q)-1]
			queues[own] = q[:len(q)-1]
			mu.Unlock()

			r := e.runOwned(it, depth, own)
			kids := e.children(it, r)

			mu.Lock()
			out.runs++
			out.limitAny = out.limitAny || r.limitHit
			out.stepsAny = out.stepsAny || r.stepsHit
			if r.violation != nil {
				if out.violation == nil || shortlexLess(r.violation.Choices, out.violation.Choices) {
					out.violation = r.violation
				}
				stop = true
			}
			if r.budgetCut {
				stop = true
			}
			if !stop {
				queues[own] = append(queues[own], kids...)
				outstanding += len(kids)
				if r.handoff != nil {
					queues[r.handoffTo] = append(queues[r.handoffTo], *r.handoff)
					outstanding++
					out.handoffs++
				}
				e.report(out.runs, depth, frontierLen(queues))
			}
			outstanding--
			cond.Broadcast()
			mu.Unlock()
		}
	}
	wg.Add(parts)
	for p := 0; p < parts; p++ {
		// One worker per ownership range; results are merged into canonical
		// order and every counterexample is re-derived sequentially, so the
		// verdict is schedule-independent.
		//multicube:chooser-ok partition workers; results canonicalized and replays sequential
		go worker(p)
	}
	wg.Wait()
	return out
}

func frontierLen(queues [][]workItem) int {
	n := 0
	for _, q := range queues {
		n += len(q)
	}
	return n
}

// runOwned executes a work item on behalf of partition own.
func (e *explorer) runOwned(it workItem, depth, own int) runOut {
	ck := newChecker(e.sc, e.sh)
	ch := newMCChooser(ck, e.n, it, depth, &e.opts)
	return e.execute(ck, ch, len(it.prefix), true, own, it.skip)
}
