package mc

import (
	"fmt"

	"multicube/internal/coherence"
	"multicube/internal/topology"
	"multicube/internal/trace"
)

// ReplayResult is one scripted re-execution of a counterexample.
type ReplayResult struct {
	// Violation is the failure the replay reproduced, or nil.
	Violation *Violation
	// Quiescent reports the machine drained all events.
	Quiescent bool
	// Steps is the kernel step count.
	Steps int
	// Log is the annotated bus-operation trace of the execution.
	Log *trace.BusOpLog
}

// Replay re-executes a scenario under a choice sequence (typically a
// Violation's Choices) and returns the reproduced violation together
// with the annotated bus-operation trace. Choices beyond the sequence
// default to 0, exactly as during exploration, so a minimal
// counterexample replays to the same failure.
func Replay(sc Scenario, choices []int, opts Options) (*ReplayResult, error) {
	sc.FillDefaults()
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	opts.fillDefaults()
	ck := newChecker(&sc, newShared(&sc, &opts))
	log := &trace.BusOpLog{}
	k := ck.kernel()
	switch in := ck.(type) {
	case *instance:
		in.sys.OpLog = func(dim coherence.Dim, issuer topology.Coord, op *coherence.Op) {
			var busName string
			if dim == coherence.Row {
				busName = fmt.Sprintf("row%d", issuer.Row)
			} else {
				busName = fmt.Sprintf("col%d", issuer.Col)
			}
			name := fmt.Sprintf("(%d,%d)", issuer.Row, issuer.Col)
			if issuer.Row < 0 {
				name = fmt.Sprintf("mem%d", issuer.Col)
			}
			log.Append(int(k.Executed()), busName, name, op.String())
		}
	case *sbInstance:
		in.m.OpLog = func(origin int, op string) {
			log.Append(int(k.Executed()), "bus", fmt.Sprintf("proc%d", origin), op)
		}
	}
	ch := replayChooser(ck, sc.N, choices, &opts)
	ck.enableMC(ch)
	out := &ReplayResult{Log: log}
	for k.Pending() > 0 {
		if out.Steps >= opts.MaxStepsPerRun {
			break
		}
		k.Step()
		out.Steps++
		if v := ck.stepCheck(opts.MaxReissues); v != nil {
			out.Violation = v
			break
		}
	}
	out.Quiescent = k.Pending() == 0
	if out.Violation == nil && out.Quiescent {
		out.Violation = ck.quiescenceCheck()
	}
	if out.Violation != nil {
		out.Violation.Choices = ch.picks(len(ch.taken))
	}
	return out, nil
}
