package mc

import (
	"fmt"
	"sort"

	"multicube/internal/cache"
	"multicube/internal/coherence"
	"multicube/internal/sim"
	"multicube/internal/topology"
)

// stepTag tags the kernel event that issues a processor's next program
// operation, so processor progress competes with protocol events at
// every choice point and is visible to fingerprints.
type stepTag struct {
	proc int
	step int
}

func (t stepTag) String() string { return fmt.Sprintf("proc%d step %d", t.proc, t.step) }

// instance is one from-scratch execution of a scenario: a fresh kernel
// and machine, the per-processor program counters, and the witness.
type instance struct {
	sc  *Scenario
	sh  *shared
	k   *sim.Kernel
	sys *coherence.System

	pc        []int      // next op index per processor
	completed int        // ops completed across all processors
	held      [][]uint64 // sorted held lock lines per processor
	wit       *witness

	// Cross-address SC check counters (Scenario.CheckSC only).
	scChecks    uint64
	scUndecided uint64

	// Incremental fingerprint state: the pooled machine-component cache,
	// plus per-processor driver hashes behind dirty flags.
	fpc      *coherence.FPCache
	drvH     []uint64
	drvDirty []bool
	drvRec   uint64
	drvInc   uint64

	// modLines caches each node's Modified-state cache lines behind its
	// mutation counter, so the per-step duplicate-modified scan skips
	// nodes untouched since the last check.
	modLines [][]cache.Line
	modGen   []uint64
	modSeen  []cache.Line

	// failure is a driver-level protocol failure (e.g. a write that
	// completed without the line present), reported as a violation.
	failure string
}

func newInstance(sc *Scenario, sh *shared) *instance {
	sc.FillDefaults()
	k := sim.NewKernel()
	sys := coherence.MustNewSystem(k, coherence.Config{
		N:          sc.N,
		BlockWords: sc.BlockWords,
		CacheLines: sc.CacheLines,
		CacheAssoc: sc.CacheAssoc,
		MLTEntries: sc.MLTEntries,
		MLTAssoc:   sc.MLTAssoc,
		Snarf:      sc.Snarf,
	})
	sys.DisableStaleReplyPoisoning = sc.InjectStaleReply
	if sh.instrument != nil {
		sh.instrument(sys)
	}
	in := &instance{
		sc:       sc,
		sh:       sh,
		k:        k,
		sys:      sys,
		pc:       make([]int, len(sc.Procs)),
		held:     make([][]uint64, len(sc.Procs)),
		wit:      newWitness(sc),
		fpc:      sh.getFPC(sys),
		drvH:     make([]uint64, len(sc.Procs)),
		drvDirty: make([]bool, len(sc.Procs)),
		modLines: make([][]cache.Line, sc.N*sc.N),
		modGen:   make([]uint64, sc.N*sc.N),
	}
	for i := range in.modGen {
		in.modGen[i] = ^uint64(0)
	}
	for p := range sc.Procs {
		in.drvDirty[p] = true
		p := p
		k.AtTagged(0, stepTag{proc: p, step: 0}, func() { in.issue(p) })
	}
	return in
}

// writeValue assigns each (processor, step) write a unique nonzero value
// so the witness can identify which write a read observed.
func writeValue(proc, step int) uint64 { return uint64(1000 + 100*proc + step) }

func (in *instance) issue(p int) {
	in.drvDirty[p] = true
	pr := in.sc.Procs[p]
	step := in.pc[p]
	op := pr.Ops[step]
	nd := in.sys.Node(pr.At)
	line := cache.Line(op.Line)
	switch op.Kind {
	case OpRead:
		nd.Read(line, func(coherence.Result) {
			e := nd.CacheEntry(line)
			if e == nil {
				in.fail(fmt.Sprintf("proc %v: read of line %d completed with the line absent", pr.At, op.Line))
				return
			}
			in.wit.read(p, op.Line, e.Data[0])
			in.complete(p)
		})
	case OpWrite:
		val := writeValue(p, step)
		nd.Write(line, func(coherence.Result) {
			e := nd.CacheEntry(line)
			if e == nil {
				in.fail(fmt.Sprintf("proc %v: write of line %d completed with the line absent", pr.At, op.Line))
				return
			}
			old := e.Data[0]
			e.Data[0] = val
			in.wit.write(p, op.Line, old, val)
			in.complete(p)
		})
	case OpAllocate:
		val := writeValue(p, step)
		nd.Allocate(line, func(coherence.Result) {
			e := nd.CacheEntry(line)
			if e == nil {
				in.fail(fmt.Sprintf("proc %v: allocate of line %d completed with the line absent", pr.At, op.Line))
				return
			}
			e.Data[0] = val
			in.complete(p)
		})
	case OpWriteBack:
		nd.WriteBack(line, func(coherence.Result) { in.complete(p) })
	case OpTAS:
		nd.TestAndSet(line, func(r coherence.Result) {
			if r.Acquired {
				in.held[p] = heldAdd(in.held[p], op.Line)
			}
			in.complete(p)
		})
	case OpSync:
		nd.SyncAcquire(line, func(r coherence.Result) {
			if r.Acquired {
				in.held[p] = heldAdd(in.held[p], op.Line)
			}
			in.complete(p)
		})
	case OpUnlock:
		if !heldHas(in.held[p], op.Line) {
			in.complete(p)
			return
		}
		in.held[p] = heldRemove(in.held[p], op.Line)
		if nd.SyncRelease(line) {
			in.complete(p)
			return
		}
		// The line migrated away (the scheme degenerated): release in
		// software with an ordinary write of the lock word.
		nd.Write(line, func(coherence.Result) {
			e := nd.CacheEntry(line)
			if e == nil {
				in.fail(fmt.Sprintf("proc %v: unlock write of line %d completed with the line absent", pr.At, op.Line))
				return
			}
			e.Data[coherence.LockWord] = 0
			in.complete(p)
		})
	default:
		panic(fmt.Sprintf("mc: unknown op kind %v", op.Kind))
	}
}

func (in *instance) complete(p int) {
	in.drvDirty[p] = true
	in.pc[p]++
	in.completed++
	if next := in.pc[p]; next < len(in.sc.Procs[p].Ops) {
		in.k.AfterTagged(0, stepTag{proc: p, step: next}, func() { in.issue(p) })
	}
}

func (in *instance) fail(msg string) {
	if in.failure == "" {
		in.failure = msg
	}
}

// --- the checker seam -----------------------------------------------------

func (in *instance) kernel() *sim.Kernel     { return in.k }
func (in *instance) enableMC(ch sim.Chooser) { in.sys.EnableModelChecking(ch) }

// classify describes a kernel event tag to the partial-order reduction:
// driver step events carry the stepping processor's coordinate; protocol
// events defer to the coherence layer's TagInfo.
func (in *instance) classify(tag any) tagClass {
	if st, ok := tag.(stepTag); ok {
		if cls := in.sh.stepCls; st.proc < len(cls) && st.step < len(cls[st.proc]) {
			return cls[st.proc][st.step]
		}
		m := newMixer()
		m.word(0x20)
		m.word(uint64(st.proc))
		m.word(uint64(st.step))
		return tagClass{kind: tkStep, bus: -1, at: in.sc.Procs[st.proc].At, fp: uint64(m)}
	}
	if ti, ok := in.sys.TagInfo(tag); ok {
		kind := tkOther
		switch ti.Kind {
		case coherence.TagEnqueue:
			kind = tkEnqueue
		case coherence.TagGrant:
			kind = tkGrant
		case coherence.TagDeliver:
			kind = tkDeliver
		}
		return tagClass{kind: kind, bus: ti.Bus, at: ti.Issuer, fp: ti.FP}
	}
	return tagClass{kind: tkOther, bus: -1}
}

// grantClass describes one arbitration candidate: a grant on the named
// bus of the specific queued packet, so distinct candidates get distinct
// transition identities.
func (in *instance) grantClass(busName string, tag any) tagClass {
	idx := in.sys.BusIndexByName(busName)
	m := newMixer()
	m.word(0x11)
	m.word(uint64(int64(idx)))
	if fp, ok := in.sys.PacketFP(tag); ok {
		m.word(fp)
	}
	return tagClass{kind: tkGrant, bus: idx, fp: uint64(m)}
}

// --- per-step and quiescence oracles ------------------------------------

// stepCheck verifies the invariants that must hold in EVERY state, not
// just at quiescence: the protocol's transition periods legitimately
// admit transient MLT duplicates, in-flight purges (a shared copy
// briefly coexisting with a new modified copy elsewhere), and memory
// valid bits out of sync with in-flight writebacks — but never two
// modified copies, and never a reply nobody was waiting for.
func (in *instance) stepCheck(maxReissues int) *Violation {
	if in.failure != "" {
		return &Violation{Kind: "protocol", Msg: in.failure}
	}
	if s := in.sys.StrayReplies(); s > 0 {
		return &Violation{Kind: "stray-reply", Msg: fmt.Sprintf("%d replies arrived with no matching outstanding request", s)}
	}
	// Duplicate-modified scan, incremental: each node's Modified lines
	// are re-extracted only when its mutation counter moved; the
	// cross-node duplicate test runs over the (tiny) cached lists. On a
	// hit, the original full scan re-runs so the reported violation is
	// byte-identical to the pre-incremental checker's.
	n := in.sc.N
	dup := false
	seen := in.modSeen[:0]
	for r := 0; r < n && !dup; r++ {
		for c := 0; c < n && !dup; c++ {
			i := r*n + c
			nd := in.sys.Node(topology.Coord{Row: r, Col: c})
			if g := nd.Gen(); g != in.modGen[i] {
				lines := in.modLines[i][:0]
				nd.Cache().ForEach(func(e *cache.Entry) {
					if e.State == coherence.Modified {
						lines = append(lines, e.Line)
					}
				})
				in.modLines[i] = lines
				in.modGen[i] = g
			}
			for _, l := range in.modLines[i] {
				for _, prev := range seen {
					if prev == l {
						dup = true
						break
					}
				}
				if dup {
					break
				}
				seen = append(seen, l)
			}
		}
	}
	in.modSeen = seen
	if dup {
		return in.dupModifiedScan()
	}
	reissues := uint64(0)
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			reissues += in.sys.Node(topology.Coord{Row: r, Col: c}).Stats().Reissues
		}
	}
	for c := 0; c < n; c++ {
		reissues += in.sys.MemoryAt(c).Store().Stats().Reissues
	}
	if maxReissues > 0 && reissues > uint64(maxReissues) {
		return &Violation{Kind: "livelock",
			Msg: fmt.Sprintf("%d retransmissions exceed the bound of %d: possible livelock", reissues, maxReissues)}
	}
	return nil
}

// dupModifiedScan is the original full duplicate-modified walk, run
// only once the incremental scan has detected a duplicate, so the
// violation message (which cache held the line first) is identical to
// the pre-incremental checker's.
func (in *instance) dupModifiedScan() *Violation {
	n := in.sc.N
	holders := make(map[cache.Line]topology.Coord)
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			id := topology.Coord{Row: r, Col: c}
			var dup *Violation
			in.sys.Node(id).Cache().ForEach(func(e *cache.Entry) {
				if e.State != coherence.Modified || dup != nil {
					return
				}
				if first, ok := holders[e.Line]; ok {
					dup = &Violation{Kind: "invariant",
						Msg: fmt.Sprintf("line %d modified in two caches at once: %v and %v", e.Line, first, id)}
					return
				}
				holders[e.Line] = id
			})
			if dup != nil {
				return dup
			}
		}
	}
	return nil
}

// quiescenceCheck runs when the kernel has no pending events: program
// completion (a quiescent machine with unfinished programs means a
// transaction was lost), the full Appendix A global-state oracle, and
// the sequential-consistency witness.
func (in *instance) quiescenceCheck() *Violation {
	if in.completed < in.sc.TotalOps() {
		var stuck []string
		for p, pr := range in.sc.Procs {
			if in.pc[p] < len(pr.Ops) {
				stuck = append(stuck, fmt.Sprintf("%v at op %d/%d (%v line %d)",
					pr.At, in.pc[p], len(pr.Ops), pr.Ops[in.pc[p]].Kind, pr.Ops[in.pc[p]].Line))
			}
		}
		return &Violation{Kind: "deadlock",
			Msg: fmt.Sprintf("machine quiescent with unfinished programs: %v", stuck)}
	}
	if errs := coherence.CheckInvariants(in.sys); len(errs) > 0 {
		msg := errs[0].Error()
		if len(errs) > 1 {
			msg = fmt.Sprintf("%s (and %d more)", msg, len(errs)-1)
		}
		return &Violation{Kind: "invariant", Msg: msg}
	}
	if v := in.wit.check(); v != nil {
		return v
	}
	if in.sc.CheckSC {
		in.scChecks++
		v, undecided := in.wit.checkSC(in.sh.scNodes)
		if undecided {
			in.scUndecided++
		}
		if v != nil {
			return v
		}
	}
	return nil
}

// --- canonical fingerprints ----------------------------------------------

// mix is FNV-1a over a word sequence, for combining hash components.
type mixer uint64

func newMixer() mixer { return 14695981039346656037 }

func (m *mixer) word(v uint64) {
	for i := 0; i < 8; i++ {
		*m = (*m ^ mixer(byte(v>>(8*i)))) * 1099511628211
	}
}

// canonicalFP fingerprints the machine AND driver state (program
// counters, lock bookkeeping, remaining programs), minimized over all
// row relabelings crossed with the admissible column relabelings
// (those fixing every home column the programs use — see colsym.go).
// The sequential-consistency witness history is
// deliberately excluded: it grows monotonically and is checked along
// every execution rather than treated as state (write values are unique,
// so distinct histories almost always differ in machine state anyway).
//
// The default path is incremental: FPCache refreshes only the machine
// components the last kernel steps dirtied, the driver hashes refresh
// only for processors that issued or completed, and each relabeling is
// an O(n²) combine of cached hashes. shared.legacyFP selects the
// original full-walk path (for A/B partition-equivalence tests);
// shared.checkFP additionally recomputes everything from scratch at
// every choice point and panics on any divergence.
func (in *instance) canonicalFP() uint64 {
	if in.sh.legacyFP {
		return in.canonicalFPLegacy()
	}
	in.fpc.BeginPoint(in.extraRow)
	in.refreshDriver()
	nc := len(in.sh.cperms)
	best := ^uint64(0)
	for ri, perm := range in.sh.perms {
		for ci, cperm := range in.sh.cperms {
			m := newMixer()
			m.word(in.fpc.FPRC(perm, in.sh.invs[ri], cperm, in.sh.cinvs[ci]))
			m.word(in.driverCombine(ri*nc+ci, perm, cperm, in.drvH))
			if fp := uint64(m); fp < best {
				best = fp
			}
		}
	}
	if in.sh.checkFP {
		in.crossCheckFP(best)
	}
	return best
}

// extraRow describes driver step events to FPCache: the issuer's
// physical coordinates plus a placement-independent remainder hash.
func (in *instance) extraRow(tag any) (row, col int, rest uint64, ok bool) {
	st, isStep := tag.(stepTag)
	if !isStep {
		return 0, 0, 0, false
	}
	at := in.sc.Procs[st.proc].At
	m := newMixer()
	m.word(uint64(st.step))
	return at.Row, at.Col, uint64(m), true
}

// driverHash computes one processor's driver-state hash: program
// counter, static program, and held lock lines.
func (in *instance) driverHash(p int) uint64 {
	m := newMixer()
	m.word(uint64(in.pc[p]))
	m.word(in.sh.progH[p])
	m.word(uint64(len(in.held[p])))
	for _, l := range in.held[p] {
		m.word(l)
	}
	return uint64(m)
}

func (in *instance) refreshDriver() {
	for p := range in.drvH {
		if !in.drvDirty[p] {
			in.drvInc++
			continue
		}
		in.drvDirty[p] = false
		in.drvRec++
		in.drvH[p] = in.driverHash(p)
	}
}

// driverCombine folds the per-processor driver hashes in canonical
// (permuted row, permuted col) order — precomputed per relabeling pair
// in shared (permIdx = ri*len(cperms)+ci).
func (in *instance) driverCombine(permIdx int, perm, cperm []int, drvH []uint64) uint64 {
	m := newMixer()
	for _, p := range in.sh.procOrder[permIdx] {
		at := in.sc.Procs[p].At
		m.word(uint64(perm[at.Row]))
		m.word(uint64(cperm[at.Col]))
		m.word(drvH[p])
	}
	return uint64(m)
}

// crossCheckFP recomputes the canonical fingerprint from scratch — a
// fresh all-dirty FPCache and fresh driver hashes — and panics if the
// incremental path diverged. Debug mode only (Options.CheckFP).
func (in *instance) crossCheckFP(got uint64) {
	fresh := coherence.NewFPCache(in.sys)
	fresh.BeginPoint(in.extraRow)
	drv := make([]uint64, len(in.sc.Procs))
	for p := range drv {
		drv[p] = in.driverHash(p)
		if drv[p] != in.drvH[p] {
			panic(fmt.Sprintf("mc: stale incremental driver hash for proc %d: cached %#x, recomputed %#x", p, in.drvH[p], drv[p]))
		}
	}
	nc := len(in.sh.cperms)
	best := ^uint64(0)
	for ri, perm := range in.sh.perms {
		for ci, cperm := range in.sh.cperms {
			m := newMixer()
			m.word(fresh.FPRC(perm, in.sh.invs[ri], cperm, in.sh.cinvs[ci]))
			m.word(in.driverCombine(ri*nc+ci, perm, cperm, drv))
			if fp := uint64(m); fp < best {
				best = fp
			}
		}
	}
	if best != got {
		panic(fmt.Sprintf("mc: incremental fingerprint diverged from recompute: incremental %#x, from-scratch %#x (scenario %s)", got, best, in.sc.Name))
	}
}

// canonicalFPLegacy is the pre-incremental path: a full machine walk per
// relabeling via System.Fingerprint. Kept behind Options.legacyFP so
// tests can assert the two paths induce the same state partition.
func (in *instance) canonicalFPLegacy() uint64 {
	best := ^uint64(0)
	for _, perm := range in.sh.perms {
		for _, cperm := range in.sh.cperms {
			perm, cperm := perm, cperm
			extra := func(tag any) (uint64, bool) {
				st, ok := tag.(stepTag)
				if !ok {
					return 0, false
				}
				at := in.sc.Procs[st.proc].At
				m := newMixer()
				m.word(uint64(perm[at.Row]))
				m.word(uint64(cperm[at.Col]))
				m.word(uint64(st.step))
				return uint64(m), true
			}
			m := newMixer()
			m.word(in.sys.FingerprintRC(perm, cperm, extra))
			m.word(in.driverFP(perm, cperm))
			if fp := uint64(m); fp < best {
				best = fp
			}
		}
	}
	return best
}

func (in *instance) driverFP(perm, cperm []int) uint64 {
	type ent struct {
		r, c int
		fp   uint64
	}
	ents := make([]ent, 0, len(in.sc.Procs))
	for p, pr := range in.sc.Procs {
		m := newMixer()
		m.word(uint64(in.pc[p]))
		m.word(uint64(len(pr.Ops)))
		for _, op := range pr.Ops {
			m.word(uint64(op.Kind))
			m.word(op.Line)
		}
		for _, l := range in.held[p] { // already sorted
			m.word(l)
		}
		ents = append(ents, ent{r: perm[pr.At.Row], c: cperm[pr.At.Col], fp: uint64(m)})
	}
	sort.Slice(ents, func(i, j int) bool {
		if ents[i].r != ents[j].r {
			return ents[i].r < ents[j].r
		}
		return ents[i].c < ents[j].c
	})
	m := newMixer()
	for _, e := range ents {
		m.word(uint64(e.r))
		m.word(uint64(e.c))
		m.word(e.fp)
	}
	return uint64(m)
}

// fpStats reports incremental-fingerprint effectiveness: component
// hashes recomputed vs served from cache (machine plus driver).
func (in *instance) fpStats() (recomputes, incremental uint64) {
	r, u := in.fpc.Stats()
	return r + in.drvRec, u + in.drvInc
}

func (in *instance) scStats() (checks, undecided uint64) {
	return in.scChecks, in.scUndecided
}

// release returns pooled resources; the instance must not fingerprint
// afterwards.
func (in *instance) release() {
	if in.fpc != nil {
		in.sh.put(in.fpc)
		in.fpc = nil
	}
}

// rowPermutations enumerates all relabelings of n rows. Beyond 4 rows
// the factorial is not worth it; canonicalization degrades gracefully to
// the identity (states are still distinguished, just not deduplicated
// across symmetric placements).
func rowPermutations(n int) [][]int {
	ident := make([]int, n)
	for i := range ident {
		ident[i] = i
	}
	if n > 4 {
		return [][]int{ident}
	}
	var out [][]int
	var rec func(rest []int, acc []int)
	rec = func(rest []int, acc []int) {
		if len(rest) == 0 {
			out = append(out, append([]int(nil), acc...))
			return
		}
		for i := range rest {
			next := make([]int, 0, len(rest)-1)
			next = append(next, rest[:i]...)
			next = append(next, rest[i+1:]...)
			rec(next, append(acc, rest[i]))
		}
	}
	rec(ident, nil)
	return out
}
