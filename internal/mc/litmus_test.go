package mc

import (
	"os"
	"strings"
	"testing"
)

// TestLitmusPresetsSC explores the litmus-* presets to completion and
// requires a clean SC verdict from the cross-address checker on every
// interleaving's history. Per-preset cost varies by orders of magnitude,
// so the heavier two-variable tests hide behind -short, and the
// four-thread iriw family (1.2M–4.1M states, minutes to half an hour)
// plus the six-bus sb/wrc grids (~100–150k states, minutes on one core)
// behind MC_LITMUS_EXHAUSTIVE=1; EXPERIMENTS.md records their full-run
// numbers.
func TestLitmusPresetsSC(t *testing.T) {
	for _, name := range litmusPresetNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			base := strings.TrimSuffix(strings.TrimPrefix(name, "litmus-"), litmusSameColSuffix)
			base = strings.TrimSuffix(base, litmus3x3Suffix)
			switch base {
			case "iriw":
				if os.Getenv("MC_LITMUS_EXHAUSTIVE") == "" {
					t.Skip("iriw needs 1.2M–4.1M states (minutes to half an hour); set MC_LITMUS_EXHAUSTIVE=1")
				}
			case "sb", "wrc":
				if strings.HasSuffix(name, litmus3x3Suffix) {
					if os.Getenv("MC_LITMUS_EXHAUSTIVE") == "" {
						t.Skip("six-bus grid takes minutes; set MC_LITMUS_EXHAUSTIVE=1 (colsym_test covers the small 3x3 presets)")
					}
				} else if testing.Short() {
					t.Skip("heavier litmus preset; run without -short")
				}
			}
			sc, err := Preset(name)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Explore(sc, Options{MaxStates: 5_000_000, Workers: 2})
			if err != nil {
				t.Fatal(err)
			}
			if res.Violation != nil {
				t.Fatalf("%s: %v", name, res.Violation)
			}
			if !res.Exhausted {
				t.Fatalf("%s: not exhausted (states=%d budget=%v)", name, res.States, res.BudgetHit)
			}
			if res.SCChecks == 0 {
				t.Fatalf("%s: no completed histories were SC-checked", name)
			}
			if res.SCVerdict != "ok" || res.SCUndecided != 0 {
				t.Fatalf("%s: SC verdict %q (undecided=%d), want ok",
					name, res.SCVerdict, res.SCUndecided)
			}
			t.Logf("%s: %d states, %d SC checks, exhausted, verdict ok",
				name, res.States, res.SCChecks)
		})
	}
}

// TestStaleSharedMPViolation pins the subsystem's headline finding: the
// untimed interpretation of the protocol really does admit a cross-address
// SC violation when a writer on the reader's column races a row purge
// (see the stale-shared-mp preset comment for the placement argument).
// Per-address coherence holds on every interleaving — only the
// cross-address checker catches the stale Shared read — so this doubles
// as the end-to-end adversarial test that the checker finds real
// violations through the full explorer stack.
func TestStaleSharedMPViolation(t *testing.T) {
	sc, err := Preset("stale-shared-mp")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Explore(sc, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil {
		t.Fatalf("no violation found (states=%d); the SC window closed", res.States)
	}
	if res.Violation.Kind != "sc-total" {
		t.Fatalf("violation kind = %q, want sc-total: %v", res.Violation.Kind, res.Violation)
	}
	if res.SCVerdict != "violation" {
		t.Fatalf("SCVerdict = %q, want violation", res.SCVerdict)
	}
	// The history must show the smoking gun: a read of line 1's initial
	// value after line 2's written value was observed.
	if !strings.Contains(res.Violation.Msg, "no sequentially consistent total order") {
		t.Fatalf("violation message does not come from the SC search: %v", res.Violation)
	}
	// Replay must reproduce the same verdict from the minimized choices.
	rr, err := Replay(sc, res.Violation.Choices, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rr.Violation == nil || rr.Violation.Kind != "sc-total" {
		t.Fatalf("replay did not reproduce the sc-total violation: %v", rr.Violation)
	}
	t.Logf("stale-shared-mp: violation in %d states, %d-choice counterexample",
		res.States, len(res.Violation.Choices))
}
