package mc

import (
	"fmt"
	"testing"
)

// fpEquivOpts bounds the equivalence explorations: big enough to cover
// the interesting presets exhaustively, small enough to keep the A/B
// matrix fast.
func fpEquivOpts() Options {
	return Options{MaxStates: 60000, NoMinimize: true}
}

// TestFPCrossCheckPresets runs every curated preset with the debug
// cross-check enabled: at every choice point the incremental canonical
// fingerprint is recomputed from scratch and any divergence panics.
func TestFPCrossCheckPresets(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-check matrix is slow")
	}
	for _, name := range Presets() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			sc, err := Preset(name)
			if err != nil {
				t.Fatal(err)
			}
			opts := fpEquivOpts()
			opts.CheckFP = true
			opts.MaxStates = 8000
			if _, err := Explore(sc, opts); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestFPCrossCheckSwarm cross-checks the incremental fingerprint on
// seeded random scenarios for both machines (instance and sbInstance),
// including injected-bug runs where violations are in play.
func TestFPCrossCheckSwarm(t *testing.T) {
	cases := 12
	if testing.Short() {
		cases = 4
	}
	for i := 0; i < cases; i++ {
		seed := int64(17000 + i)
		for _, singleBus := range []bool{false, true} {
			sc := SwarmScenario(seed, singleBus)
			sc.Name = fmt.Sprintf("%s-checkfp", sc.Name)
			opts := fpEquivOpts()
			opts.CheckFP = true
			opts.MaxStates = 6000
			if _, err := Explore(sc, opts); err != nil {
				t.Fatalf("seed %d singleBus %v: %v", seed, singleBus, err)
			}
		}
	}
}

// TestFPIncrementalMatchesLegacyPartition asserts the incremental
// component-hashed fingerprint induces exactly the same state partition
// as the original full-walk fingerprint: the hash values differ, but
// States, Runs, verdicts, and minimized counterexamples must be
// identical, because the search depends only on fingerprint equality.
func TestFPIncrementalMatchesLegacyPartition(t *testing.T) {
	type tc struct {
		name string
		sc   Scenario
	}
	var cases []tc
	for _, name := range []string{"read-race", "readmod-race", "sb-writeonce-race", "sb-victim-race"} {
		sc, err := Preset(name)
		if err != nil {
			t.Fatal(err)
		}
		cases = append(cases, tc{name, sc})
	}
	// Injected-bug variant: both paths must find the same minimized
	// counterexample.
	inj, err := Preset("readmod-race")
	if err != nil {
		t.Fatal(err)
	}
	inj.InjectStaleReply = true
	cases = append(cases, tc{"readmod-race-inject", inj})
	// Snarf variant exercises the row-coupled purgedAt matrix, the one
	// fingerprint component that cannot be factored per row.
	snarf, err := Preset("read-race")
	if err != nil {
		t.Fatal(err)
	}
	snarf.Name = "read-race-snarf"
	snarf.Snarf = true
	cases = append(cases, tc{"read-race-snarf", snarf})
	seeds := 8
	if testing.Short() {
		seeds = 3
	}
	for i := 0; i < seeds; i++ {
		for _, singleBus := range []bool{false, true} {
			sc := SwarmScenario(int64(18000+i), singleBus)
			cases = append(cases, tc{sc.Name + fmt.Sprintf("-sb%v", singleBus), sc})
		}
	}

	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			incOpts := fpEquivOpts()
			legOpts := fpEquivOpts()
			legOpts.legacyFP = true
			incOpts.NoMinimize, legOpts.NoMinimize = false, false
			inc, err := Explore(c.sc, incOpts)
			if err != nil {
				t.Fatal(err)
			}
			leg, err := Explore(c.sc, legOpts)
			if err != nil {
				t.Fatal(err)
			}
			if inc.States != leg.States || inc.Runs != leg.Runs || inc.Exhausted != leg.Exhausted {
				t.Fatalf("partition mismatch: incremental states=%d runs=%d exhausted=%v, legacy states=%d runs=%d exhausted=%v",
					inc.States, inc.Runs, inc.Exhausted, leg.States, leg.Runs, leg.Exhausted)
			}
			switch {
			case (inc.Violation == nil) != (leg.Violation == nil):
				t.Fatalf("verdict mismatch: incremental %v, legacy %v", inc.Violation, leg.Violation)
			case inc.Violation != nil:
				if inc.Violation.Kind != leg.Violation.Kind || inc.Violation.Msg != leg.Violation.Msg {
					t.Fatalf("violation mismatch:\nincremental %v\nlegacy      %v", inc.Violation, leg.Violation)
				}
				if fmt.Sprint(inc.Violation.Choices) != fmt.Sprint(leg.Violation.Choices) {
					t.Fatalf("counterexample mismatch: incremental %v, legacy %v",
						inc.Violation.Choices, leg.Violation.Choices)
				}
			}
			if leg.FPRecomputes != 0 || leg.FPIncremental != 0 {
				t.Fatalf("legacy path reported incremental counters: %d/%d", leg.FPRecomputes, leg.FPIncremental)
			}
			if inc.States > 0 && inc.FPRecomputes == 0 {
				t.Fatalf("incremental path reported no component recomputes over %d states", inc.States)
			}
		})
	}
}

// FuzzFPEquivalence drives the cross-check from fuzzed seeds: each case
// derives a random scenario per machine and explores it with the
// from-scratch comparison armed at every choice point.
func FuzzFPEquivalence(f *testing.F) {
	for _, seed := range []int64{1, 9000, 17003, 424242} {
		f.Add(seed, false)
		f.Add(seed, true)
	}
	f.Fuzz(func(t *testing.T, seed int64, singleBus bool) {
		sc := SwarmScenario(seed, singleBus)
		opts := Options{MaxStates: 1500, NoMinimize: true, CheckFP: true}
		if _, err := Explore(sc, opts); err != nil {
			t.Fatalf("seed %d singleBus %v: %v", seed, singleBus, err)
		}
	})
}
