// Package mc is an exhaustive interleaving model checker for the
// Appendix A coherence protocol. It drives the real protocol engine —
// the same internal/coherence code the timed simulator runs — through
// every reachable interleaving of a small bounded scenario, checking
// safety invariants after every kernel step and the full quiescent-state
// oracle, a per-address sequential-consistency witness, and program
// completion at the end of every execution.
//
// The checker is stateless in the Stateless Model Checking sense: the
// protocol engine's state lives in closures and cannot be snapshotted,
// so each execution replays a choice-sequence prefix from the initial
// state and continues with default choices. Exploration is an
// iterative-deepening DFS over choice sequences with a visited-state
// table keyed by canonical fingerprints (internal/coherence's
// Fingerprint, minimized over row relabelings), and an optional
// ample-set partial-order reduction that eager-fires device-latency
// enqueue events that provably commute with every other enabled event.
//
// Nondeterminism model: the machine is explored under the untimed
// interpretation — any pending event (a bus grant, a delivery, a
// controller's latency expiry, a processor's next reference) may fire
// next, regardless of its nominal timestamp. This makes every protocol
// race window reachable no matter what the latency constants are; the
// paper's protocol must be correct for arbitrary message timing.
package mc

import (
	"fmt"

	"multicube/internal/singlebus"
	"multicube/internal/topology"
)

// OpKind is one processor operation in a scenario program.
type OpKind uint8

const (
	// OpRead is a processor read of the line's first word.
	OpRead OpKind = iota
	// OpWrite obtains the line modified and writes a unique value to its
	// first word (the sequential-consistency witness tracks these).
	OpWrite
	// OpAllocate is the ALLOCATE hint: obtain the line modified,
	// zero-filled, without reading its prior contents.
	OpAllocate
	// OpWriteBack explicitly writes a modified line back to memory.
	OpWriteBack
	// OpTAS is a single try of the remote test-and-set on the line's
	// lock word; the program proceeds whether or not it acquired.
	OpTAS
	// OpSync is a single SYNC queue-join attempt; the program proceeds
	// once the lock arrives, or immediately on the degenerate MustSpin
	// outcome.
	OpSync
	// OpUnlock releases a lock this processor acquired with OpTAS or
	// OpSync (a no-op if it never acquired it).
	OpUnlock
)

var opKindNames = [...]string{"R", "W", "ALLOC", "WB", "TAS", "SYNC", "UNLOCK"}

func (k OpKind) String() string {
	if int(k) < len(opKindNames) {
		return opKindNames[k]
	}
	return fmt.Sprintf("OpKind(%d)", uint8(k))
}

// ProcOp is one step of a processor's program.
type ProcOp struct {
	Kind OpKind
	Line uint64
}

// Proc is one processor's bounded program.
type Proc struct {
	At  topology.Coord
	Ops []ProcOp
}

// Scenario is one bounded model-checking problem: a machine
// configuration and a program per participating processor.
type Scenario struct {
	Name string
	// N is processors per bus (the machine is N×N).
	N int
	// BlockWords defaults to 2 (the minimum: lock and link words).
	BlockWords int
	// CacheLines/CacheAssoc and MLTEntries/MLTAssoc bound the cache and
	// modified line table; zero means unbounded.
	CacheLines, CacheAssoc int
	MLTEntries, MLTAssoc   int
	// Snarf enables the Section 3 snarf optimization.
	Snarf bool
	// InjectStaleReply disables the stale in-flight reply defense
	// (DESIGN.md §5.6a) to demonstrate the checker catching the
	// resulting stale-sharer states.
	InjectStaleReply bool
	// SingleBus runs the scenario on the single-bus write-once baseline
	// (internal/singlebus) instead of the Multicube, through the same
	// chooser seam: processors are identified by program position (At is
	// ignored), only OpRead and OpWrite are meaningful, and the same
	// explorer, oracles, and sequential-consistency witness apply.
	SingleBus bool
	// Protocol selects the single-bus snooper: "" (write-once, the
	// default) or "mesi". Meaningful only with SingleBus; the Multicube
	// grid has exactly one protocol.
	Protocol string
	// CheckSC additionally checks every completed execution's history for
	// full cross-address sequential consistency (internal/memmodel's
	// witness-order search), not just per-address coherence. Opt-in
	// because the Multicube's untimed interpretation genuinely admits
	// non-SC executions across addresses — a delayed row purge can leave
	// a stale Shared copy readable after a later line's value was
	// observed (see the stale-shared-mp preset) — so unconditional
	// checking would fail arbitrary scenarios by design, not by bug.
	CheckSC bool
	Procs   []Proc
}

// FillDefaults resolves zero-valued configuration to the explorer's
// defaults (a 2×2 grid, two-word blocks). Explore applies it
// automatically; external canonicalizers (the farm's job fingerprints)
// call it so a spec with defaults spelled out and one with them omitted
// canonicalize identically.
func (s *Scenario) FillDefaults() {
	if s.N == 0 {
		s.N = 2
	}
	if s.BlockWords == 0 {
		s.BlockWords = 2
	}
}

// TotalOps returns the summed program length.
func (s *Scenario) TotalOps() int {
	n := 0
	for _, p := range s.Procs {
		n += len(p.Ops)
	}
	return n
}

// Validate reports scenario construction errors.
func (s *Scenario) Validate() error {
	if len(s.Procs) == 0 {
		return fmt.Errorf("mc: scenario %q has no processors", s.Name)
	}
	if s.Protocol != "" && !s.SingleBus {
		return fmt.Errorf("mc: scenario %q: Protocol %q requires SingleBus", s.Name, s.Protocol)
	}
	if s.Protocol != singlebus.ProtocolWriteOnce && s.Protocol != singlebus.ProtocolMESI {
		return fmt.Errorf("mc: scenario %q: unknown protocol %q", s.Name, s.Protocol)
	}
	if s.SingleBus {
		for p, pr := range s.Procs {
			if len(pr.Ops) == 0 {
				return fmt.Errorf("mc: scenario %q: processor %d has an empty program", s.Name, p)
			}
			for _, op := range pr.Ops {
				if op.Kind != OpRead && op.Kind != OpWrite {
					return fmt.Errorf("mc: scenario %q: op %v not supported on the single-bus baseline", s.Name, op.Kind)
				}
			}
		}
		return nil
	}
	seen := make(map[topology.Coord]bool)
	for _, p := range s.Procs {
		if p.At.Row < 0 || p.At.Row >= s.N || p.At.Col < 0 || p.At.Col >= s.N {
			return fmt.Errorf("mc: scenario %q: processor %v outside the %dx%d grid", s.Name, p.At, s.N, s.N)
		}
		if seen[p.At] {
			return fmt.Errorf("mc: scenario %q: two programs on processor %v", s.Name, p.At)
		}
		seen[p.At] = true
		if len(p.Ops) == 0 {
			return fmt.Errorf("mc: scenario %q: processor %v has an empty program", s.Name, p.At)
		}
	}
	return nil
}

// Presets returns the built-in scenario names.
func Presets() []string {
	names := []string{
		"readmod-race", "read-race", "sync-race", "mlt-overflow-lock",
		"tas-contention", "wb-locked", "sync-fail", "read-snarf", "readmod-row-pair",
		"sync-col-queue", "readmod-col-pair", "snarf-row-3x3",
		"read-col-pair", "tas-purge-remote", "sync-purge-remote",
		"snarf-serve-row", "wb-steal", "sync-tail-row", "sync-tail-remote", "sync-col-3x3",
		"sync-read-mix", "readmod-race-3x3", "mlt-churn-3x3",
		"sb-writeonce-race", "sb-victim-race",
		"sb-mesi-race", "sb-mesi-victim-race", "stale-shared-mp",
	}
	return append(names, litmusPresetNames()...)
}

// Preset returns a built-in bounded scenario by name.
//
// Lines are chosen so their home columns exercise both local and remote
// paths on a 2×2 grid: even lines are homed on column 0, odd lines on
// column 1.
func Preset(name string) (Scenario, error) {
	c := func(r, col int) topology.Coord { return topology.Coord{Row: r, Col: col} }
	switch name {
	case "readmod-race":
		// Two writers race READMOD transactions for the same line from
		// different rows and columns, then read it back; a second line
		// on the same home column keeps the column bus contended.
		return Scenario{
			Name: name, N: 2,
			Procs: []Proc{
				{At: c(0, 0), Ops: []ProcOp{{OpWrite, 0}, {OpRead, 0}, {OpWrite, 2}, {OpRead, 0}}},
				{At: c(1, 1), Ops: []ProcOp{{OpWrite, 0}, {OpRead, 2}, {OpRead, 0}}},
			},
		}, nil
	case "read-race":
		// A reader's READ is in flight while a writer's READMOD purge
		// crosses it: the stale in-flight reply window of DESIGN.md
		// §5.6a. With InjectStaleReply the defense is off and the
		// checker finds the stale sharer.
		return Scenario{
			Name: name, N: 2,
			Procs: []Proc{
				{At: c(0, 0), Ops: []ProcOp{{OpRead, 1}, {OpRead, 1}}},
				{At: c(1, 1), Ops: []ProcOp{{OpWrite, 1}, {OpWrite, 1}}},
			},
		}, nil
	case "sync-race":
		// Three processors race SYNC queue joins and handoffs on one
		// lock line: the join-admission and XFER-overtakes-QUEUED races
		// of Section 4.
		return Scenario{
			Name: name, N: 2,
			Procs: []Proc{
				{At: c(0, 0), Ops: []ProcOp{{OpSync, 0}, {OpUnlock, 0}}},
				{At: c(1, 1), Ops: []ProcOp{{OpSync, 0}, {OpUnlock, 0}}},
				{At: c(1, 0), Ops: []ProcOp{{OpSync, 0}, {OpUnlock, 0}}},
			},
		}, nil
	case "mlt-overflow-lock":
		// A single-entry modified line table forces an overflow while a
		// lock line is sync-active and pinned: the overflow must
		// re-insert the pinned entry (footnote 7) rather than strand
		// the queue. The second node sits in the other column: its write
		// to line 4 inserts into column 0's table over the remote path
		// (row bus, then the home column bus), keeping the contended
		// table busy, while its read of line 5 stays on its own column —
		// traffic the partial-order reduction can prove independent of
		// column 0's and prune.
		return Scenario{
			Name: name, N: 2,
			MLTEntries: 1, MLTAssoc: 1,
			Procs: []Proc{
				{At: c(0, 0), Ops: []ProcOp{{OpTAS, 0}, {OpWrite, 2}, {OpUnlock, 0}}},
				{At: c(1, 1), Ops: []ProcOp{{OpWrite, 4}, {OpRead, 5}}},
			},
		}, nil
	case "readmod-race-3x3":
		// The readmod race on a 3×3 grid: two writers in different rows
		// AND different columns race READMOD transactions for one line
		// homed on a third party's column, so requests, purges, and
		// replies cross four of the six buses. On 3×3, line L is homed
		// on column L%3.
		return Scenario{
			Name: name, N: 3,
			Procs: []Proc{
				{At: c(0, 0), Ops: []ProcOp{{OpWrite, 0}, {OpRead, 0}}},
				{At: c(1, 2), Ops: []ProcOp{{OpWrite, 0}, {OpRead, 0}}},
			},
		}, nil
	case "mlt-churn-3x3":
		// Modified-line-table churn across two home columns on a 3×3
		// grid: with single-entry tables, one node's writes to lines
		// homed on columns 0 and 1 force back-to-back MLT inserts and
		// overflow removes in both columns, while a second node two rows
		// away races a remote read of the churned line — its request
		// crosses row 2 and column 1 while the writer's own traffic
		// crosses row 0 and both home columns.
		return Scenario{
			Name: name, N: 3,
			MLTEntries: 1, MLTAssoc: 1,
			Procs: []Proc{
				{At: c(0, 0), Ops: []ProcOp{{OpWrite, 0}, {OpWrite, 1}}},
				{At: c(2, 1), Ops: []ProcOp{{OpRead, 1}}},
			},
		}, nil
	case "sb-writeonce-race":
		// The single-bus baseline's classic write-once race: both
		// processors load the line Valid, then both write. One
		// write-through wins the bus and invalidates the other's copy,
		// whose now-void write-through must retry as a write miss.
		return Scenario{
			Name: name, SingleBus: true,
			Procs: []Proc{
				{Ops: []ProcOp{{OpRead, 0}, {OpWrite, 0}, {OpRead, 0}}},
				{Ops: []ProcOp{{OpRead, 0}, {OpWrite, 0}}},
			},
		}, nil
	case "sb-victim-race":
		// Distilled from a swarm catch (seed 9006): with a two-line
		// direct-mapped cache, lines 1 and 3 collide, so the writer's
		// second write victimizes its dirty line 1 into the write-back
		// buffer. The reader's READ(1) can win arbitration ahead of the
		// queued WRITE-BACK — the buffer must answer the probe or the
		// reader caches a stale block that disagrees with memory the
		// moment the flush lands.
		return Scenario{
			Name: name, SingleBus: true,
			CacheLines: 2, CacheAssoc: 1,
			Procs: []Proc{
				{Ops: []ProcOp{{OpWrite, 1}, {OpWrite, 3}}},
				{Ops: []ProcOp{{OpRead, 1}}},
			},
		}, nil
	case "sb-mesi-race":
		// The write-once race program under the MESI snooper. The first
		// reader to miss installs Exclusive (nobody else holds the line),
		// the second is forced down to Shared by the sharers wire, and
		// the winning write-through leaves Modified instead of Reserved —
		// the loser's void write-through still retries as a write miss.
		return Scenario{
			Name: name, SingleBus: true, Protocol: singlebus.ProtocolMESI,
			Procs: []Proc{
				{Ops: []ProcOp{{OpRead, 0}, {OpWrite, 0}, {OpRead, 0}}},
				{Ops: []ProcOp{{OpRead, 0}, {OpWrite, 0}}},
			},
		}, nil
	case "sb-mesi-victim-race":
		// sb-victim-race under MESI: the victimized line is Modified via
		// the silent Exclusive upgrade (no write-through ever hit the
		// bus), so the write-back buffer snoop is exercised on a line
		// whose only bus history is the original read miss.
		return Scenario{
			Name: name, SingleBus: true, Protocol: singlebus.ProtocolMESI,
			CacheLines: 2, CacheAssoc: 1,
			Procs: []Proc{
				{Ops: []ProcOp{{OpWrite, 1}, {OpWrite, 3}}},
				{Ops: []ProcOp{{OpRead, 1}}},
			},
		}, nil
	case "tas-contention":
		// Three processors fight over one lock line with bare test-and-set
		// tries, one of them reading the line first so a shared copy is in
		// play when the first grant's purge broadcast arrives. Covers the
		// TAS decision tree at the modified holder — grant vs. fail over
		// every route (same row, same column, remote via the intersection
		// controller) — plus the REPLY|FAIL notification forwarding and
		// the purge relays of memory's REPLY|PURGE grant.
		return Scenario{
			Name: name, N: 2,
			Procs: []Proc{
				{At: c(0, 0), Ops: []ProcOp{{OpTAS, 0}, {OpUnlock, 0}}},
				{At: c(1, 1), Ops: []ProcOp{{OpRead, 0}, {OpTAS, 0}, {OpUnlock, 0}}},
				{At: c(1, 0), Ops: []ProcOp{{OpTAS, 0}}},
			},
		}, nil
	case "wb-locked":
		// Explicit write-backs, including one of a line whose lock word is
		// set: the holder acquires the lock, writes line 1 (homed on the
		// other column, so the memory update crosses the row bus), then
		// writes both lines back. A test-and-set racing the write-back can
		// find the lock set in memory with no cached copy anywhere — the
		// memory-generated REPLY|FAIL that travels the home column and is
		// forwarded across the requester's row. Lock tries only (a SYNC
		// would be admitted to a queue no release ever drains).
		return Scenario{
			Name: name, N: 2,
			Procs: []Proc{
				{At: c(0, 0), Ops: []ProcOp{{OpWrite, 1}, {OpTAS, 0}, {OpWriteBack, 1}, {OpWriteBack, 0}}},
				{At: c(1, 1), Ops: []ProcOp{{OpTAS, 0}}},
				{At: c(1, 0), Ops: []ProcOp{{OpTAS, 0}}},
			},
		}, nil
	case "sync-fail":
		// Section 4's degenerate fallback, reached deterministically: one
		// off-home-column processor acquires the lock remotely, writes the
		// line back with the lock word still set, then SYNCs on it. With
		// the modified-line-table entry gone, memory answers the SYNC
		// itself — REPLY|FAIL down the home column, forwarded across the
		// requester's row — and the processor falls back to spinning
		// (MustSpin). The unlock then finds the line degenerated to shared
		// and releases in software with an ordinary write.
		return Scenario{
			Name: name, N: 2,
			Procs: []Proc{
				{At: c(1, 1), Ops: []ProcOp{{OpTAS, 0}, {OpWriteBack, 0}, {OpSync, 0}, {OpUnlock, 0}}},
			},
		}, nil
	case "read-snarf":
		// The Section 3 snarf: a writer purges two readers' shared copies,
		// leaving retained invalid tags; when either reader refetches, the
		// reply passing the other on a shared bus is captured in flight.
		// The reader on the writer's row exercises the row-bus serve from
		// a non-home holder (REPLY, UPDATE), the cross-grid reader the
		// column-bus reply relays.
		return Scenario{
			Name: name, N: 2, Snarf: true,
			Procs: []Proc{
				{At: c(0, 0), Ops: []ProcOp{{OpRead, 0}, {OpRead, 0}}},
				{At: c(1, 1), Ops: []ProcOp{{OpWrite, 0}, {OpRead, 0}}},
				{At: c(1, 0), Ops: []ProcOp{{OpRead, 0}, {OpRead, 0}}},
			},
		}, nil
	case "readmod-row-pair":
		// Two writers on one row race ownership of a line homed on the
		// first writer's column: the loser's READMOD is served by the
		// winner over their shared row bus (REPLY without PURGE), the
		// direct row-bus ownership installation that the cross-grid races
		// never take.
		return Scenario{
			Name: name, N: 2,
			Procs: []Proc{
				{At: c(0, 0), Ops: []ProcOp{{OpWrite, 2}, {OpRead, 2}}},
				{At: c(0, 1), Ops: []ProcOp{{OpWrite, 2}, {OpRead, 2}}},
			},
		}, nil
	case "sync-col-queue":
		// A SYNC queue whose head and admitted tail share a column, with
		// a third party probing the same lock line: the head (modified
		// with its link word set) must stay silent for every transaction
		// — surrendering the line to a READ or a lock try would strand
		// the queued waiter — so requests bounce off the reserved tail
		// and retry until the handoff drains the queue. The third party
		// releases whatever it wins (UNLOCK is a no-op after a failed
		// try), so every acquisition drains and no waiter starves.
		return Scenario{
			Name: name, N: 2,
			Procs: []Proc{
				{At: c(0, 0), Ops: []ProcOp{{OpSync, 0}, {OpUnlock, 0}}},
				{At: c(1, 0), Ops: []ProcOp{{OpSync, 0}, {OpUnlock, 0}}},
				{At: c(1, 1), Ops: []ProcOp{{OpTAS, 0}, {OpUnlock, 0}, {OpRead, 0}}},
			},
		}, nil
	case "read-col-pair":
		// A reader shares a column with a modified holder while the line
		// is homed elsewhere: the holder's serve travels their common
		// column bus (READ REPLY, UPDATE — the no-MEMORY form), the
		// originator installs directly off it and relays the memory
		// update over its own row bus toward the home column (READ,
		// UPDATE, then UPDATE|MEMORY on the home column bus).
		return Scenario{
			Name: name, N: 2,
			Procs: []Proc{
				{At: c(0, 0), Ops: []ProcOp{{OpWrite, 1}}},
				{At: c(1, 0), Ops: []ProcOp{{OpRead, 1}}},
			},
		}, nil
	case "tas-purge-remote":
		// A test-and-set that memory grants (line unmodified, lock free)
		// to a requester off the home column: the REPLY|PURGE runs down
		// the home column, where the intersection controller purges its
		// own shared copy as it forwards (purge-shared-forward), then
		// crosses the requester's row, purging the sharer there — or
		// passing it as an invalid bystander when its read lost the race.
		return Scenario{
			Name: name, N: 3,
			Procs: []Proc{
				{At: c(1, 0), Ops: []ProcOp{{OpRead, 0}}},
				{At: c(1, 1), Ops: []ProcOp{{OpRead, 0}}},
				{At: c(1, 2), Ops: []ProcOp{{OpTAS, 0}, {OpUnlock, 0}}},
			},
		}, nil
	case "sync-purge-remote":
		// The SYNC twin of tas-purge-remote: memory grants a SYNC on an
		// unmodified lock-free line exactly like a test-and-set (Section
		// 4), so the REPLY|PURGE crosses the requester's row and purges
		// the sharers encountered there — the row-bus purge leg of the
		// SYNC transaction.
		return Scenario{
			Name: name, N: 3,
			Procs: []Proc{
				{At: c(1, 0), Ops: []ProcOp{{OpRead, 0}}},
				{At: c(1, 1), Ops: []ProcOp{{OpRead, 0}}},
				{At: c(1, 2), Ops: []ProcOp{{OpSync, 0}, {OpUnlock, 0}}},
			},
		}, nil
	case "snarf-serve-row":
		// A home-column holder serves a row READ while purged bystanders
		// retain their invalid tags: the end node and the column node
		// read line 1 first, then the home-column node takes ownership
		// (purging both) and writes the line back. When the last reader
		// finally asks, the home node serves from its shared copy over
		// the row bus (plain REPLY) and the purged end node captures the
		// passing line — the Section 3 snarf on a row; in the
		// interleavings where the read beats the write-back, the serve
		// comes from the modified home holder instead and its column-bus
		// REPLY|UPDATE|MEMORY passes the purged column node.
		return Scenario{
			Name: name, N: 3, Snarf: true,
			Procs: []Proc{
				{At: c(0, 0), Ops: []ProcOp{{OpRead, 1}}},
				{At: c(0, 1), Ops: []ProcOp{{OpWrite, 1}, {OpWriteBack, 1}}},
				{At: c(0, 2), Ops: []ProcOp{{OpRead, 1}}},
				{At: c(2, 1), Ops: []ProcOp{{OpRead, 1}}},
			},
		}, nil
	case "wb-steal":
		// An explicit write-back racing a competing ownership claim that
		// succeeds: when the READMOD's REQUEST|REMOVE drains ahead of
		// the WRITEBACK|REMOVE, the claim serves from the holder and
		// carries the line away, so the write-back's own remove finds
		// the entry gone and the line no longer modified — nothing left
		// to write (wb-lost-entry). In the opposite order the write-back
		// lands first and the claim falls through to memory.
		return Scenario{
			Name: name, N: 2,
			Procs: []Proc{
				{At: c(0, 0), Ops: []ProcOp{{OpWrite, 0}, {OpWriteBack, 0}, {OpRead, 0}}},
				{At: c(1, 1), Ops: []ProcOp{{OpWrite, 0}, {OpRead, 0}}},
			},
		}, nil
	case "sync-tail-row":
		// sync-col-queue distilled to its lock traffic (no trailing
		// read), so it exhausts comfortably inside the conformance
		// budget: the admitted tail fails the third party's test-and-set
		// over their shared row bus (tail-fail-row) in every
		// interleaving where the queue is live when the try lands.
		return Scenario{
			Name: name, N: 2,
			Procs: []Proc{
				{At: c(0, 0), Ops: []ProcOp{{OpSync, 0}, {OpUnlock, 0}}},
				{At: c(1, 0), Ops: []ProcOp{{OpSync, 0}, {OpUnlock, 0}}},
				{At: c(1, 1), Ops: []ProcOp{{OpTAS, 0}, {OpUnlock, 0}}},
			},
		}, nil
	case "sync-tail-remote":
		// The remote variant: the third party shares neither row nor
		// column with the admitted tail, so the tail's failure
		// notification routes via the intersection controller
		// (tail-fail-remote). The try's claim is made by the queue head
		// itself — the controller on the originator's row holding the
		// column's table replica.
		return Scenario{
			Name: name, N: 2,
			Procs: []Proc{
				{At: c(0, 0), Ops: []ProcOp{{OpSync, 0}, {OpUnlock, 0}}},
				{At: c(1, 0), Ops: []ProcOp{{OpSync, 0}, {OpUnlock, 0}}},
				{At: c(0, 1), Ops: []ProcOp{{OpTAS, 0}, {OpUnlock, 0}}},
			},
		}, nil
	case "sync-col-3x3":
		// A SYNC queue on a 3×3 column with a third contender below it:
		// head and admitted tail sit on rows 0 and 1 of column 0, and
		// the row-2 node's test-and-set reaches the tail over their
		// shared column bus from off the tail's row — the column-bus
		// fail route (tail-fail-col). Every acquisition pairs with an
		// unlock, so the queue always drains and no waiter starves.
		return Scenario{
			Name: name, N: 3,
			Procs: []Proc{
				{At: c(0, 0), Ops: []ProcOp{{OpSync, 0}, {OpUnlock, 0}}},
				{At: c(1, 0), Ops: []ProcOp{{OpSync, 0}, {OpUnlock, 0}}},
				{At: c(2, 0), Ops: []ProcOp{{OpTAS, 0}, {OpUnlock, 0}}},
			},
		}, nil
	case "readmod-col-pair":
		// Two writers sharing a column race ownership of a line homed on
		// that same column: the loser's READMOD reaches the winner over
		// their shared column bus and the ownership moves directly on it
		// (REPLY, INSERT) — no row-bus leg at all.
		return Scenario{
			Name: name, N: 2,
			Procs: []Proc{
				{At: c(0, 0), Ops: []ProcOp{{OpWrite, 2}, {OpRead, 2}}},
				{At: c(1, 0), Ops: []ProcOp{{OpWrite, 2}, {OpRead, 2}}},
			},
		}, nil
	case "snarf-row-3x3":
		// Snarfing on a 3×3 row: three caches on row 0 share line 1,
		// whose home column is the middle one, while both end nodes also
		// write it. Serves from a non-home holder to a non-home requester
		// cross the row bus directly (REPLY, UPDATE), the home-column
		// node in between updating memory — or, with its copy purged and
		// the tag retained, capturing the passing line (Section 3 snarf).
		return Scenario{
			Name: name, N: 3, Snarf: true,
			Procs: []Proc{
				{At: c(0, 0), Ops: []ProcOp{{OpWrite, 1}, {OpRead, 1}}},
				{At: c(0, 1), Ops: []ProcOp{{OpRead, 1}, {OpRead, 1}}},
				{At: c(0, 2), Ops: []ProcOp{{OpRead, 1}, {OpWrite, 1}, {OpRead, 1}}},
			},
		}, nil
	case "sync-read-mix":
		// A SYNC queue on a lock line with a plain reader in the mix: the
		// reader's READ can catch the queue mid-handoff — bounced by a
		// reserved tail (restore the table entry and retransmit), deferred
		// to a same-column holder, or orphaned entirely when the entry's
		// remove wins against an unadmitted joiner (the revival idiom).
		// The reader's shared copy also puts the SYNC grant's purge
		// broadcast to work.
		return Scenario{
			Name: name, N: 2,
			Procs: []Proc{
				{At: c(0, 0), Ops: []ProcOp{{OpSync, 0}, {OpUnlock, 0}}},
				{At: c(1, 1), Ops: []ProcOp{{OpSync, 0}, {OpUnlock, 0}}},
				{At: c(1, 0), Ops: []ProcOp{{OpRead, 0}}},
			},
		}, nil
	case "stale-shared-mp":
		// The real cross-address SC window of the untimed interpretation:
		// the reader's first read of line 1 caches a Shared copy; the
		// writer's READMOD purge for that copy travels via line 1's home
		// column and is re-broadcast on the reader's row by node (0,1) as
		// a separate delayed bus operation. Placement is what opens the
		// window: the writer sits at (1,0), on line 2's home column and on
		// the READER's column, so its ownership reply for line 2 reaches
		// the reader directly over column 0 — never passing through
		// (0,1)'s row-bus source FIFO, which would have forced the line-1
		// purge out first. The reader thus observes the writer's LATER
		// write to line 2 and then still hits its stale Shared copy of
		// line 1 — an MP-shaped violation no single total order explains.
		// (With the writer at (1,1) instead, every line-2 reply funnels
		// through (0,1) behind the queued purge and the window provably
		// never opens.) Per-address coherence holds throughout; only the
		// CheckSC search catches it.
		return Scenario{
			Name: name, N: 2, CheckSC: true,
			Procs: []Proc{
				{At: c(0, 0), Ops: []ProcOp{{OpRead, 1}, {OpRead, 2}, {OpRead, 1}}},
				{At: c(1, 0), Ops: []ProcOp{{OpWrite, 1}, {OpWrite, 2}}},
			},
		}, nil
	default:
		if sc, ok := litmusPreset(name); ok {
			return sc, nil
		}
		return Scenario{}, fmt.Errorf("mc: unknown preset %q (have %v)", name, Presets())
	}
}
