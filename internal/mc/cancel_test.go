package mc

import (
	"context"
	"testing"
	"time"
)

// TestExploreCancelPrompt is the farm's worker-leak regression: a
// canceled exploration must return within roughly one bounded run, not
// finish the search. readmod-race exhausts ~19k states in seconds; a
// cancel a few milliseconds in must come back long before that with the
// partial-result marker set.
func TestExploreCancelPrompt(t *testing.T) {
	sc, err := Preset("readmod-race")
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		time.AfterFunc(25*time.Millisecond, cancel)
		start := time.Now()
		res, err := Explore(sc, Options{Ctx: ctx, Workers: workers})
		elapsed := time.Since(start)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Violation != nil {
			t.Fatalf("workers=%d: unexpected violation: %v", workers, res.Violation)
		}
		if !res.Canceled {
			t.Fatalf("workers=%d: exploration finished in %v without Canceled; expected a partial result", workers, elapsed)
		}
		if res.Exhausted {
			t.Fatalf("workers=%d: canceled exploration claims Exhausted", workers)
		}
		// Generous bound: one run is ≤ MaxStepsPerRun kernel steps
		// (milliseconds); the full search takes seconds. A cancel that
		// leaks into the full search blows well past this.
		if elapsed > 3*time.Second {
			t.Fatalf("workers=%d: cancel took %v to return", workers, elapsed)
		}
		if res.States == 0 && res.Runs == 0 {
			t.Fatalf("workers=%d: canceled result carries no partial statistics", workers)
		}
	}
}

// TestExploreCancelBeforeStart: an already-canceled context yields a
// canceled partial result without a violation and without exhausting.
func TestExploreCancelBeforeStart(t *testing.T) {
	sc, err := Preset("read-race")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Explore(sc, Options{Ctx: ctx})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Canceled || res.Exhausted || res.Violation != nil {
		t.Fatalf("pre-canceled explore: got canceled=%v exhausted=%v violation=%v",
			res.Canceled, res.Exhausted, res.Violation)
	}
}

// TestExploreProgress: the frontier-boundary progress hook fires with
// monotonically plausible snapshots and a final States consistent with
// the returned Result.
func TestExploreProgress(t *testing.T) {
	sc, err := Preset("read-race")
	if err != nil {
		t.Fatal(err)
	}
	var calls int
	var lastStates int
	res, err := Explore(sc, Options{Progress: func(p Progress) {
		calls++
		if p.States < lastStates {
			t.Fatalf("states went backwards: %d after %d", p.States, lastStates)
		}
		lastStates = p.States
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("unexpected violation: %v", res.Violation)
	}
	if calls == 0 {
		t.Fatal("progress hook never fired")
	}
	if lastStates > res.States {
		t.Fatalf("last progress snapshot saw %d states; result has %d", lastStates, res.States)
	}
}
