package mc

import (
	"sort"

	"multicube/internal/topology"
)

// This file implements the partial-order machinery of the explorer: a
// classification of kernel-event transitions, a conservative independence
// relation between them, the persistent-set eager-firing rule (the
// successor of PR 1's ample rule), and sleep sets.
//
// Two transitions are independent when firing them in either order from
// any state where both are enabled reaches the same state, and neither
// enables or disables the other. The only transitions this machine can
// prove independent cheaply are device-latency enqueues (EnqueueTag):
// their sole effect is appending an operation to one per-source bus
// queue. An enqueue by issuer I onto bus B is dependent with:
//
//   - another enqueue onto B by the same issuer (per-source FIFO order is
//     hardware; the dispatch order of the two events decides it),
//   - a deferred grant on B (the enqueue order decides whether the
//     operation reaches that arbitration),
//   - a delivery on any bus I is attached to (snoop handlers issue
//     zero-latency responses inline, so the delivery may race a same-
//     source enqueue onto B), and
//   - a processor step on node I (it may likewise enqueue from I).
//
// Everything else commutes with it. PR 1's ample rule treated every
// delivery and every processor step as conflicting; the attachment
// refinement is what lets the persistent rule fire eagerly — and the
// sleep sets prune — across independent columns of the grid.

// Transition classes.
const (
	tkOther uint8 = iota
	tkEnqueue
	tkGrant
	tkDeliver
	tkStep
)

// tagClass describes one transition to the reduction: its class, the bus
// it acts on (rows 0..N-1, columns N..2N-1; -1 unknown), the coordinate
// of the agent it acts as (enqueue issuer or stepping processor's node;
// Row -1 for a memory module), and a content fingerprint stable across
// replays of the same state, used as the transition's identity in sleep
// sets.
type tagClass struct {
	kind uint8
	bus  int
	at   topology.Coord
	fp   uint64
}

// attachedTo reports whether the agent at coordinate at is attached to
// bus busIdx on an n×n machine. Memory modules (Row -1) sit only on
// their column bus.
func attachedTo(n int, at topology.Coord, busIdx int) bool {
	if busIdx < 0 {
		return true // unknown bus: assume attached
	}
	if busIdx < n {
		return at.Row == busIdx
	}
	return at.Col == busIdx-n
}

// disjointBuses reports that two known, distinct buses share no agent:
// two different row buses touch disjoint node sets, as do two different
// column buses (each column has its own nodes and its own memory
// module). A row and a column bus always share the node at their
// intersection.
func disjointBuses(n, b1, b2 int) bool {
	if b1 < 0 || b2 < 0 || b1 == b2 {
		return false
	}
	return (b1 < n) == (b2 < n)
}

// dependent is the conservative dependence relation; tkOther is
// dependent with everything. Beyond the enqueue cases above, grants and
// deliveries on disjoint-agent buses commute (each touches only its own
// bus's state and its own agents' nodes; cross-bus enqueues they trigger
// come from different sources, and per-source queue order is all the bus
// state keeps), and a grant or delivery commutes with a processor step
// on a node not attached to its bus (the step touches only its own
// node's cache and schedules latency events; the delivery's purges and
// completions touch only attached nodes).
//
// Only the sleep-set half of the reduction may use the non-enqueue
// cases: eager-firing skips intermediate states, which is sound solely
// for enqueues (invisible to every oracle), while sleep sets still visit
// every reachable state and merely prune redundant transition orders.
// persistentIndex only ever queries enqueue pairs, so the refinement
// stays on the safe side of that line.
func dependent(n int, a, b tagClass) bool {
	if a.kind == tkOther || b.kind == tkOther {
		return true
	}
	if b.kind < a.kind {
		a, b = b, a
	}
	// From here a.kind <= b.kind with the order enqueue < grant < deliver
	// < step.
	switch {
	case a.kind == tkEnqueue && b.kind == tkEnqueue:
		return a.bus == b.bus && a.at == b.at
	case a.kind == tkEnqueue && b.kind == tkGrant:
		return a.bus == b.bus
	case a.kind == tkEnqueue && b.kind == tkDeliver:
		return attachedTo(n, a.at, b.bus)
	case a.kind == tkEnqueue && b.kind == tkStep:
		return a.at == b.at
	case b.kind == tkGrant || b.kind == tkDeliver:
		// grant-grant, grant-deliver, deliver-deliver.
		return !disjointBuses(n, a.bus, b.bus)
	case b.kind == tkStep && a.kind != tkStep:
		// grant-step, deliver-step.
		return attachedTo(n, b.at, a.bus)
	case a.kind == tkStep && b.kind == tkStep:
		return a.at == b.at
	}
	return true
}

// persistentIndex finds a candidate whose singleton set is persistent
// under the dependence relation: an enqueue independent of every other
// enabled candidate. Firing it first loses no interleavings, so the
// chooser fires it eagerly without recording a choice point. The
// decision is a pure function of the candidate set, so prefix replays
// reproduce it exactly.
func persistentIndex(n int, classes []tagClass) int {
	for i, c := range classes {
		if c.kind != tkEnqueue {
			continue
		}
		ok := true
		for j, o := range classes {
			if j != i && dependent(n, c, o) {
				ok = false
				break
			}
		}
		if ok {
			return i
		}
	}
	return -1
}

// sleepSet is the set of transitions that need not be fired from the
// current state because a sibling branch already explores them and every
// transition executed since commutes with them. Sets are tiny (almost
// always under four entries), so linear scans beat anything clever.
type sleepSet []tagClass

func (s sleepSet) contains(fp uint64) bool {
	for _, u := range s {
		if u.fp == fp {
			return true
		}
	}
	return false
}

// afterExec removes every member dependent with the just-executed
// transition t; their commutation guarantee ends here. The receiver is
// never mutated (slices are shared across takes).
func (s sleepSet) afterExec(n int, t tagClass) sleepSet {
	keep := true
	for _, u := range s {
		if dependent(n, u, t) {
			keep = false
			break
		}
	}
	if keep {
		return s
	}
	out := make(sleepSet, 0, len(s))
	for _, u := range s {
		if !dependent(n, u, t) {
			out = append(out, u)
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// fps returns the members' identity fingerprints, sorted, for visited-set
// storage and subset comparison.
func (s sleepSet) fps() []uint64 {
	if len(s) == 0 {
		return nil
	}
	out := make([]uint64, len(s))
	for i, u := range s {
		out[i] = u.fp
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// childSleep builds the sleep set a sibling branch starts with after
// taking pick: every member of the parent's sleep set plus every sibling
// explored before it, filtered to the ones independent of pick.
func childSleep(n int, base sleepSet, done []tagClass, pick tagClass) sleepSet {
	var out sleepSet
	for _, u := range base {
		if !dependent(n, u, pick) {
			out = append(out, u)
		}
	}
	for _, u := range done {
		if !dependent(n, u, pick) {
			out = append(out, u)
		}
	}
	return out
}

// subsetOf reports a ⊆ b for sorted fingerprint slices.
func subsetOf(a, b []uint64) bool {
	if len(a) > len(b) {
		return false
	}
	i := 0
	for _, x := range a {
		for i < len(b) && b[i] < x {
			i++
		}
		if i >= len(b) || b[i] != x {
			return false
		}
		i++
	}
	return true
}

// intersectSorted returns a ∩ b for sorted fingerprint slices.
func intersectSorted(a, b []uint64) []uint64 {
	var out []uint64
	i := 0
	for _, x := range a {
		for i < len(b) && b[i] < x {
			i++
		}
		if i < len(b) && b[i] == x {
			out = append(out, x)
			i++
		}
	}
	return out
}
