package mc

import (
	"fmt"

	"multicube/internal/bus"
	"multicube/internal/cache"
	"multicube/internal/sim"
	"multicube/internal/singlebus"
)

// sbInstance is one from-scratch execution of a SingleBus scenario: the
// write-once baseline machine (internal/singlebus) driven through the
// same checker seam as the Multicube, with per-processor bounded
// programs, per-step and quiescence oracles, and the same per-address
// sequential-consistency witness. Processors are identified by program
// position; line L's word 0 maps to word address L*BlockWords.
type sbInstance struct {
	sc *Scenario
	sh *shared
	k  *sim.Kernel
	m  *singlebus.Machine

	pc        []int
	completed int
	wit       *witness

	// Cross-address SC check counters (Scenario.CheckSC only).
	scChecks    uint64
	scUndecided uint64

	// Incremental fingerprint state, mirroring instance.
	fpc      *singlebus.FPCache
	drvH     []uint64
	drvDirty []bool
	drvRec   uint64
	drvInc   uint64

	failure string
}

func newSBInstance(sc *Scenario, sh *shared) *sbInstance {
	sc.FillDefaults()
	m := singlebus.MustNew(singlebus.Config{
		Processors: len(sc.Procs),
		BlockWords: sc.BlockWords,
		CacheLines: sc.CacheLines,
		CacheAssoc: sc.CacheAssoc,
		Protocol:   sc.Protocol,
	})
	in := &sbInstance{
		sc:       sc,
		sh:       sh,
		k:        m.Kernel(),
		m:        m,
		pc:       make([]int, len(sc.Procs)),
		wit:      newWitness(sc),
		fpc:      sh.getSBFPC(m),
		drvH:     make([]uint64, len(sc.Procs)),
		drvDirty: make([]bool, len(sc.Procs)),
	}
	for p := range sc.Procs {
		in.drvDirty[p] = true
		p := p
		in.k.AtTagged(0, stepTag{proc: p, step: 0}, func() { in.issue(p) })
	}
	return in
}

func (in *sbInstance) addr(line uint64) singlebus.Addr {
	return singlebus.Addr(line * uint64(in.sc.BlockWords))
}

func (in *sbInstance) issue(p int) {
	step := in.pc[p]
	op := in.sc.Procs[p].Ops[step]
	proc := in.m.Processor(p)
	switch op.Kind {
	case OpRead:
		proc.LoadAsync(in.addr(op.Line), func(v uint64) {
			in.wit.read(p, op.Line, v)
			in.complete(p)
		})
	case OpWrite:
		val := writeValue(p, step)
		proc.StoreAsync(in.addr(op.Line), val, func(old uint64) {
			in.wit.write(p, op.Line, old, val)
			in.complete(p)
		})
	default:
		// Validate rejects everything else for SingleBus scenarios.
		panic(fmt.Sprintf("mc: op kind %v on the single-bus baseline", op.Kind))
	}
}

func (in *sbInstance) complete(p int) {
	in.drvDirty[p] = true
	in.pc[p]++
	in.completed++
	if next := in.pc[p]; next < len(in.sc.Procs[p].Ops) {
		in.k.AfterTagged(0, stepTag{proc: p, step: next}, func() { in.issue(p) })
	}
}

// --- the checker seam -----------------------------------------------------

func (in *sbInstance) kernel() *sim.Kernel     { return in.k }
func (in *sbInstance) enableMC(ch sim.Chooser) { in.m.EnableModelChecking(ch) }

// classify: the single shared bus serializes everything, so no pair of
// transitions is provably independent — every class is tkOther and both
// halves of the reduction are inert on the baseline. That is the honest
// answer, not a shortcut: write-once relies on bus atomicity, and every
// pending event can observe or extend the one bus queue.
func (in *sbInstance) classify(tag any) tagClass {
	return tagClass{kind: tkOther, bus: -1}
}

func (in *sbInstance) grantClass(busName string, tag any) tagClass {
	m := newMixer()
	m.word(0x11)
	if pkt, ok := tag.(bus.Packet); ok {
		if fp, ok := in.m.PacketFP(pkt); ok {
			m.word(fp)
		}
	}
	return tagClass{kind: tkOther, bus: -1, fp: uint64(m)}
}

// stepCheck verifies the invariant that must hold in EVERY state: at
// most one Reserved/Dirty copy of a line machine-wide (write-once's
// exclusivity is established atomically by the bus transaction, so there
// is no legitimate transition window for duplicates, unlike the
// Multicube's).
func (in *sbInstance) stepCheck(maxReissues int) *Violation {
	if in.failure != "" {
		return &Violation{Kind: "protocol", Msg: in.failure}
	}
	holders := make(map[cache.Line]int)
	for i := 0; i < in.m.Processors(); i++ {
		var dup *Violation
		in.m.Processor(i).Cache().ForEach(func(e *cache.Entry) {
			if (e.State != singlebus.Dirty && e.State != singlebus.Reserved) || dup != nil {
				return
			}
			if first, ok := holders[e.Line]; ok {
				dup = &Violation{Kind: "invariant",
					Msg: fmt.Sprintf("line %d exclusive in two caches at once: proc%d and proc%d", e.Line, first, i)}
				return
			}
			holders[e.Line] = i
		})
		if dup != nil {
			return dup
		}
	}
	return nil
}

// quiescenceCheck mirrors the Multicube instance's: program completion,
// the write-once global-state oracle, and the SC witness.
func (in *sbInstance) quiescenceCheck() *Violation {
	if in.completed < in.sc.TotalOps() {
		var stuck []string
		for p, pr := range in.sc.Procs {
			if in.pc[p] < len(pr.Ops) {
				stuck = append(stuck, fmt.Sprintf("proc%d at op %d/%d (%v line %d)",
					p, in.pc[p], len(pr.Ops), pr.Ops[in.pc[p]].Kind, pr.Ops[in.pc[p]].Line))
			}
		}
		return &Violation{Kind: "deadlock",
			Msg: fmt.Sprintf("machine quiescent with unfinished programs: %v", stuck)}
	}
	if errs := singlebus.CheckInvariants(in.m); len(errs) > 0 {
		msg := errs[0].Error()
		if len(errs) > 1 {
			msg = fmt.Sprintf("%s (and %d more)", msg, len(errs)-1)
		}
		return &Violation{Kind: "invariant", Msg: msg}
	}
	if v := in.wit.check(); v != nil {
		return v
	}
	if in.sc.CheckSC {
		in.scChecks++
		v, undecided := in.wit.checkSC(in.sh.scNodes)
		if undecided {
			in.scUndecided++
		}
		if v != nil {
			return v
		}
	}
	return nil
}

// canonicalFP fingerprints machine and driver state, minimized over all
// processor relabelings (every cache controller on the one bus is
// interchangeable). Incremental by default, mirroring instance; see
// there for the legacy and cross-check modes.
func (in *sbInstance) canonicalFP() uint64 {
	if in.sh.legacyFP {
		return in.canonicalFPLegacy()
	}
	in.fpc.BeginPoint(in.extraRow)
	in.refreshDriver()
	best := ^uint64(0)
	for i, perm := range in.sh.perms {
		m := newMixer()
		m.word(in.fpc.FP(perm, in.sh.invs[i]))
		m.word(in.driverCombine(in.sh.invs[i], in.drvH))
		if fp := uint64(m); fp < best {
			best = fp
		}
	}
	if in.sh.checkFP {
		in.crossCheckFP(best)
	}
	return best
}

func (in *sbInstance) extraRow(tag any) (int, uint64, bool) {
	st, ok := tag.(stepTag)
	if !ok {
		return 0, 0, false
	}
	m := newMixer()
	m.word(uint64(st.step))
	return st.proc, uint64(m), true
}

func (in *sbInstance) driverHash(p int) uint64 {
	m := newMixer()
	m.word(uint64(in.pc[p]))
	m.word(in.sh.progH[p])
	return uint64(m)
}

func (in *sbInstance) refreshDriver() {
	for p := range in.drvH {
		if !in.drvDirty[p] {
			in.drvInc++
			continue
		}
		in.drvDirty[p] = false
		in.drvRec++
		in.drvH[p] = in.driverHash(p)
	}
}

// driverCombine folds the per-processor driver hashes in canonical
// order: canonical slot cp holds physical processor inv[cp].
func (in *sbInstance) driverCombine(inv []int, drvH []uint64) uint64 {
	m := newMixer()
	for _, p := range inv {
		m.word(drvH[p])
	}
	return uint64(m)
}

// crossCheckFP recomputes the canonical fingerprint from scratch and
// panics if the incremental path diverged (Options.CheckFP).
func (in *sbInstance) crossCheckFP(got uint64) {
	fresh := singlebus.NewFPCache(in.m)
	fresh.BeginPoint(in.extraRow)
	drv := make([]uint64, len(in.sc.Procs))
	for p := range drv {
		drv[p] = in.driverHash(p)
		if drv[p] != in.drvH[p] {
			panic(fmt.Sprintf("mc: stale incremental driver hash for proc %d: cached %#x, recomputed %#x", p, in.drvH[p], drv[p]))
		}
	}
	best := ^uint64(0)
	for i, perm := range in.sh.perms {
		m := newMixer()
		m.word(fresh.FP(perm, in.sh.invs[i]))
		m.word(in.driverCombine(in.sh.invs[i], drv))
		if fp := uint64(m); fp < best {
			best = fp
		}
	}
	if best != got {
		panic(fmt.Sprintf("mc: incremental fingerprint diverged from recompute: incremental %#x, from-scratch %#x (scenario %s)", got, best, in.sc.Name))
	}
}

// canonicalFPLegacy is the pre-incremental full-walk path, kept behind
// Options.legacyFP for A/B partition-equivalence tests.
func (in *sbInstance) canonicalFPLegacy() uint64 {
	best := ^uint64(0)
	for _, perm := range in.sh.perms {
		perm := perm
		extra := func(tag any) (uint64, bool) {
			st, ok := tag.(stepTag)
			if !ok {
				return 0, false
			}
			m := newMixer()
			m.word(uint64(perm[st.proc]))
			m.word(uint64(st.step))
			return uint64(m), true
		}
		m := newMixer()
		m.word(in.m.Fingerprint(perm, extra))
		m.word(in.driverFP(perm))
		if fp := uint64(m); fp < best {
			best = fp
		}
	}
	return best
}

func (in *sbInstance) driverFP(perm []int) uint64 {
	fps := make([]uint64, len(in.sc.Procs))
	for p, pr := range in.sc.Procs {
		m := newMixer()
		m.word(uint64(in.pc[p]))
		m.word(uint64(len(pr.Ops)))
		for _, op := range pr.Ops {
			m.word(uint64(op.Kind))
			m.word(op.Line)
		}
		fps[perm[p]] = uint64(m)
	}
	m := newMixer()
	for _, f := range fps {
		m.word(f)
	}
	return uint64(m)
}

func (in *sbInstance) fpStats() (recomputes, incremental uint64) {
	r, u := in.fpc.Stats()
	return r + in.drvRec, u + in.drvInc
}

func (in *sbInstance) scStats() (checks, undecided uint64) {
	return in.scChecks, in.scUndecided
}

func (in *sbInstance) release() {
	if in.fpc != nil {
		in.sh.put(in.fpc)
		in.fpc = nil
	}
}
