package mc

import (
	"fmt"
	"math/rand"

	"multicube/internal/topology"
)

// SwarmScenario derives one bounded random scenario from a seed: two
// processors at distinct coordinates of a 2×2 grid (or on the single-bus
// baseline), one to three operations each over four lines. Operation
// kinds stay in the data subset — reads, writes, allocates, explicit
// writebacks — so programs always terminate and the witness applies;
// lock scenarios need paired acquire/release structure and are covered
// by the curated presets instead. The whole scenario is a pure function
// of the seed, so any failure replays from the seed alone — which is
// what lets the farm's corpus persist violating seeds and replay them
// as regression jobs forever.
func SwarmScenario(seed int64, singleBus bool) Scenario {
	rng := rand.New(rand.NewSource(seed))
	kinds := []OpKind{OpRead, OpWrite, OpWrite, OpAllocate, OpWriteBack}
	if singleBus {
		kinds = []OpKind{OpRead, OpWrite}
	}
	coords := []topology.Coord{{Row: 0, Col: 0}, {Row: 0, Col: 1}, {Row: 1, Col: 0}, {Row: 1, Col: 1}}
	rng.Shuffle(len(coords), func(i, j int) { coords[i], coords[j] = coords[j], coords[i] })

	sc := Scenario{
		Name:      fmt.Sprintf("swarm-%d", seed),
		N:         2,
		SingleBus: singleBus,
	}
	if rng.Intn(2) == 0 {
		// Half the swarm runs with tight structures: a single-entry
		// modified line table (multicube) or a two-line direct-mapped
		// cache, so victim and overflow paths stay hot.
		if singleBus {
			sc.CacheLines, sc.CacheAssoc = 2, 1
		} else {
			sc.MLTEntries, sc.MLTAssoc = 1, 1
		}
	}
	for p := 0; p < 2; p++ {
		ops := make([]ProcOp, 1+rng.Intn(3))
		for i := range ops {
			ops[i] = ProcOp{Kind: kinds[rng.Intn(len(kinds))], Line: uint64(rng.Intn(4))}
		}
		sc.Procs = append(sc.Procs, Proc{At: coords[p], Ops: ops})
	}
	return sc
}
