package mva

import (
	"fmt"

	"multicube/internal/stats"
)

// This file defines the exact parameter sets of the paper's evaluation
// figures and renders each as a stats.Figure (one column per curve, one
// row per x value), the form the benchmark harness prints.

// RateSweep is the default x axis: bus requests per millisecond per
// processor. The paper's design point is 25 requests/ms ("an average
// access rate of less than twenty-five requests per millisecond per
// processor" for ~90% utilization of 1K processors).
func RateSweep() []float64 {
	return []float64{1, 2, 5, 10, 15, 20, 25, 30, 35, 40, 50, 60, 80, 100}
}

// Figure2 reproduces "Efficiency versus Number of Processors per Row":
// one curve per row width (8, 16, 24, 32 — total processors the square),
// block 16 words, P(unmodified)=0.8, P(invalidate)=0.2.
func Figure2(rates []float64) *stats.Figure {
	if rates == nil {
		rates = RateSweep()
	}
	f := stats.NewFigure(
		"Figure 2: Efficiency versus number of processors per row (top to bottom: 8, 16, 24, 32)",
		"req/ms")
	for _, n := range []int{8, 16, 24, 32} {
		label := figLabel("n=%d (N=%d)", n, n*n)
		for _, rate := range rates {
			p := Defaults(n)
			p.RequestRate = rate
			f.Add(label, rate, MustSolve(p).Efficiency)
		}
	}
	return f
}

// Figure3 reproduces "The Effect of Invalidations on Performance with 1K
// Processors": n=32, write-miss-to-shared percentage 10..50.
func Figure3(rates []float64) *stats.Figure {
	if rates == nil {
		rates = RateSweep()
	}
	f := stats.NewFigure(
		"Figure 3: Effect of invalidations, 1K processors (top to bottom: 10%..50% write misses to shared data)",
		"req/ms")
	for _, pct := range []int{10, 20, 30, 40, 50} {
		label := figLabel("inval=%d%%", pct)
		for _, rate := range rates {
			p := Defaults(32)
			p.RequestRate = rate
			p.PInvalidate = float64(pct) / 100
			f.Add(label, rate, MustSolve(p).Efficiency)
		}
	}
	return f
}

// Figure4 reproduces "Effect of Block Size on Performance with 1K
// Processors": n=32, block sizes 4..64 bus words at a fixed request rate
// per curve point.
func Figure4(rates []float64) *stats.Figure {
	if rates == nil {
		rates = RateSweep()
	}
	f := stats.NewFigure(
		"Figure 4: Effect of block size, 1K processors (top to bottom: 4, 8, 16, 32, 64 bus words)",
		"req/ms")
	for _, bw := range []int{4, 8, 16, 32, 64} {
		label := figLabel("block=%d", bw)
		for _, rate := range rates {
			p := Defaults(32)
			p.RequestRate = rate
			p.BlockWords = bw
			f.Add(label, rate, MustSolve(p).Efficiency)
		}
	}
	return f
}

// Figure4BlockTradeoff renders the dashed-line analysis of Figure 4: how
// efficiency at the design-point load changes with block size under the
// two extreme couplings the paper draws — doubling the block size leaves
// the request rate unchanged (pessimistic), or halves it (optimistic,
// perfect spatial locality).
func Figure4BlockTradeoff(baseRate float64) *stats.Figure {
	f := stats.NewFigure(
		"Figure 4 (dashed lines): block size versus request-rate coupling at the design point",
		"block")
	for _, bw := range []int{4, 8, 16, 32, 64} {
		p := Defaults(32)
		p.BlockWords = bw
		p.RequestRate = baseRate
		f.Add("rate constant", float64(bw), MustSolve(p).Efficiency)
		p.RequestRate = baseRate * 16 / float64(bw) // halves per doubling, anchored at 16
		f.Add("rate halves per doubling", float64(bw), MustSolve(p).Efficiency)
	}
	return f
}

// LatencyTechniques renders the Section 5 ablation: transfer-block size
// reduction, cut-through forwarding, and requested-word-first, separately
// and combined, at n=32 with 32-word coherency blocks.
func LatencyTechniques(rates []float64) *stats.Figure {
	if rates == nil {
		rates = RateSweep()
	}
	f := stats.NewFigure(
		"Latency-reduction techniques (Section 5), n=32, 32-word coherency blocks",
		"req/ms")
	variants := []struct {
		label string
		mod   func(*Params)
	}{
		{"baseline", func(*Params) {}},
		{"cut-through", func(p *Params) { p.CutThrough = true }},
		{"word-first", func(p *Params) { p.WordFirst = true }},
		{"both", func(p *Params) { p.CutThrough = true; p.WordFirst = true }},
		{"transfer=8", func(p *Params) { p.TransferWords = 8 }},
	}
	for _, v := range variants {
		for _, rate := range rates {
			p := Defaults(32)
			p.BlockWords = 32
			p.RequestRate = rate
			v.mod(&p)
			f.Add(v.label, rate, MustSolve(p).Efficiency)
		}
	}
	return f
}

func figLabel(format string, args ...interface{}) string {
	return fmt.Sprintf(format, args...)
}
