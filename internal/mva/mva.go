// Package mva implements an approximate mean-value analysis of the
// Wisconsin Multicube, in the spirit of the Leutenegger–Vernon model
// [LeVe88] whose results the paper reproduces as Figures 2–4.
//
// The machine is a closed queueing network: M = n² processors cycle
// between thinking (the mean time between bus requests, the reciprocal of
// the per-processor bus request rate) and executing one coherence
// transaction. A transaction visits queueing centers — the n row buses,
// the n column buses, and the n memory modules — plus pure delays (the
// 750 ns snooping-cache access of a remote supplier). Visit ratios and
// service times per class are derived from the protocol's own
// choreography (Section 3 / Appendix A):
//
//   - a request to a line in global state modified: row request, column
//     request with REMOVE, remote cache access, then two data hops back
//     (column, row), plus the memory-update operation for READs;
//   - a READ to an unmodified line: row request, column request to
//     memory, memory access, column data reply, row data reply;
//   - an invalidating write miss to an unmodified line: the same memory
//     path plus the broadcast — one short purge operation on every row
//     bus and the modified-line-table INSERT on the requester's column
//     (n+1 row and 3 column operations, Section 6).
//
// Requests are non-overlapping per processor, matching the paper's
// assumption. The solver is the Schweitzer/Bard fixed point with the
// arrival-theorem correction (M-1)/M.
package mva

import (
	"fmt"
	"math"
)

// Params is one evaluation point of the model. Times are in nanoseconds;
// RequestRate is bus requests per millisecond per processor (the paper's
// x axis).
type Params struct {
	// N is the number of processors per bus (n); the machine has n².
	N int
	// BlockWords is the coherency block size in bus words.
	BlockWords int
	// TransferWords, when nonzero and smaller than BlockWords, is the
	// transfer block size of Section 5 (small transfer blocks within
	// large coherency blocks).
	TransferWords int
	// WordTime is the bus transfer time per word (50 ns in the paper).
	WordTime float64
	// AddrWords is the length of an address-and-command operation.
	AddrWords int
	// CacheLatency is the snooping-cache access time (750 ns).
	CacheLatency float64
	// MemoryLatency is the main memory access time (750 ns).
	MemoryLatency float64
	// RequestRate is per-processor bus requests per millisecond.
	RequestRate float64
	// PUnmodified is the probability the requested line is in global
	// state unmodified (0.8 in Figure 2).
	PUnmodified float64
	// PInvalidate is the probability that a request to unmodified data
	// is a write miss requiring the invalidation broadcast (0.2 in
	// Figure 2; swept in Figure 3).
	PInvalidate float64
	// PWriteToModified is the fraction of modified-line requests that
	// are READ-MODs (ownership transfers, no memory update); the
	// remainder are READs, which add the memory-update operation.
	PWriteToModified float64

	// CutThrough, when set, forwards data onto the second bus as soon as
	// the first words arrive (Section 5), hiding most of the first-leg
	// transfer latency. Bus occupancy is unchanged.
	CutThrough bool
	// WordFirst, when set, transmits the requested word first, hiding
	// most of the final-leg transfer latency at the processor.
	WordFirst bool
}

// Defaults returns the Figure 2 parameter set for n processors per row.
func Defaults(n int) Params {
	return Params{
		N:                n,
		BlockWords:       16,
		WordTime:         50,
		AddrWords:        1,
		CacheLatency:     750,
		MemoryLatency:    750,
		RequestRate:      25,
		PUnmodified:      0.8,
		PInvalidate:      0.2,
		PWriteToModified: 0.5,
	}
}

func (p Params) validate() error {
	if p.N < 2 {
		return fmt.Errorf("mva: n = %d", p.N)
	}
	if p.BlockWords < 1 || p.WordTime <= 0 || p.RequestRate <= 0 {
		return fmt.Errorf("mva: nonpositive block, word time or rate")
	}
	if p.PUnmodified < 0 || p.PUnmodified > 1 || p.PInvalidate < 0 || p.PInvalidate > 1 {
		return fmt.Errorf("mva: probabilities out of range")
	}
	return nil
}

// Result reports the model's outputs at one parameter point.
type Result struct {
	// Efficiency is the effective speedup relative to a machine with no
	// bus or memory latency: the fraction of time a processor computes.
	Efficiency float64
	// Response is the mean bus-transaction response time in ns.
	Response float64
	// RowUtil, ColUtil, MemUtil are per-center utilizations.
	RowUtil, ColUtil, MemUtil float64
	// Throughput is completed transactions per second, machine-wide.
	Throughput float64
}

// center indexes the queueing center types.
type center int

const (
	rowBus center = iota
	colBus
	memMod
	nCenters
)

// hop is one critical-path visit to a center.
type hop struct {
	c center
	s float64 // service time of this operation
}

// class is one transaction class with its probability, critical path and
// total (on- plus off-path) center demands.
type class struct {
	p     float64
	hops  []hop   // queueing visits on the critical path
	delay float64 // pure delays on the critical path (remote cache)
	extra [nCenters]struct {
		time   float64 // off-critical-path bus-seconds on the center type
		visits float64 // off-critical-path operations
	}
}

// build derives the transaction classes from the protocol.
func (p Params) build() []class {
	tAddr := float64(p.AddrWords) * p.WordTime
	bw := p.BlockWords
	if p.TransferWords > 0 && p.TransferWords < bw {
		bw = p.TransferWords
	}
	tData := float64(p.AddrWords+bw) * p.WordTime

	// Critical-path cost of the two data legs (Section 5): the first leg
	// can be overlapped by cut-through forwarding, the second by
	// requested-word-first transmission. Bus occupancy stays tData.
	leg1 := tData
	if p.CutThrough {
		leg1 = float64(p.AddrWords+1) * p.WordTime
	}
	leg2 := tData
	if p.WordFirst {
		leg2 = float64(p.AddrWords+1) * p.WordTime
	}

	pm := 1 - p.PUnmodified
	puR := p.PUnmodified * (1 - p.PInvalidate)
	puW := p.PUnmodified * p.PInvalidate

	var classes []class

	// Class 1a: READ to a modified line — 5 bus operations: row request,
	// column request, remote cache access, column data (critical leg 1),
	// row data (leg 2); the memory update is a sixth, off-path data
	// operation on the home column plus the memory write.
	readMod := class{
		p: pm * (1 - p.PWriteToModified),
		hops: []hop{
			{rowBus, tAddr}, {colBus, tAddr},
			{colBus, sEff(tData, leg1)}, {rowBus, sEff(tData, leg2)},
		},
		delay: p.CacheLatency,
	}
	readMod.extra[colBus].time += tData // memory update op
	readMod.extra[colBus].visits++
	readMod.extra[memMod].time += p.MemoryLatency
	readMod.extra[memMod].visits++
	classes = append(classes, readMod)

	// Class 1b: READ-MOD to a modified line — 4 bus operations: row
	// request, column request, remote cache access, data toward the
	// requester (row then column legs), plus the off-path INSERT.
	writeMod := class{
		p: pm * p.PWriteToModified,
		hops: []hop{
			{rowBus, tAddr}, {colBus, tAddr},
			{rowBus, sEff(tData, leg1)}, {colBus, sEff(tData, leg2)},
		},
		delay: p.CacheLatency,
	}
	writeMod.extra[colBus].time += tAddr // modified line table INSERT
	writeMod.extra[colBus].visits++
	classes = append(classes, writeMod)

	// Class 2: READ to an unmodified line — row request, column request
	// to memory, memory access, column data, row data (4 bus ops).
	readUnmod := class{
		p: puR,
		hops: []hop{
			{rowBus, tAddr}, {colBus, tAddr}, {memMod, p.MemoryLatency},
			{colBus, sEff(tData, leg1)}, {rowBus, sEff(tData, leg2)},
		},
	}
	classes = append(classes, readUnmod)

	// Class 3: invalidating write miss to an unmodified line — the
	// memory path plus the broadcast: the data reply travels the home
	// column and the requester's row carrying the purge; every other row
	// bus carries one short purge operation; the requester's column
	// carries the INSERT. (n+1 row operations and 3 column operations.)
	inval := class{
		p: puW,
		hops: []hop{
			{rowBus, tAddr}, {colBus, tAddr}, {memMod, p.MemoryLatency},
			{colBus, sEff(tData, leg1)}, {rowBus, sEff(tData, leg2)},
		},
	}
	inval.extra[rowBus].time += float64(p.N-1) * tAddr // purges on the other rows
	inval.extra[rowBus].visits += float64(p.N - 1)
	inval.extra[colBus].time += tAddr // INSERT
	inval.extra[colBus].visits++
	classes = append(classes, inval)

	return classes
}

// sEff bounds the effective critical-path service by the occupancy: an
// overlap optimization never makes a hop slower than the raw transfer.
func sEff(occupancy, effective float64) float64 {
	return math.Min(occupancy, effective)
}

// Solve evaluates the model.
func Solve(p Params) (Result, error) {
	if err := p.validate(); err != nil {
		return Result{}, err
	}
	classes := p.build()
	n := float64(p.N)
	m := n * n               // customers
	z := 1e6 / p.RequestRate // think time ns (rate is per ms)

	// Aggregate per-center demands per transaction for one specific
	// center of each type (divide by n by symmetry). demand is bus-
	// seconds per transaction; workSq accumulates p·s², the second
	// moment needed for the FIFO unfinished-work estimate.
	var demand, workSq [nCenters]float64
	var delay float64
	for _, cl := range classes {
		for _, h := range cl.hops {
			demand[h.c] += cl.p * h.s / n
			workSq[h.c] += cl.p * h.s * h.s / n
		}
		for c := center(0); c < nCenters; c++ {
			demand[c] += cl.p * cl.extra[c].time / n
			if cl.extra[c].visits > 0 {
				s := cl.extra[c].time / cl.extra[c].visits
				workSq[c] += cl.p * cl.extra[c].visits * s * s / n
			}
		}
		delay += cl.p * cl.delay
	}

	// Fixed point on throughput. The wait at a FIFO center is the
	// expected unfinished work an arrival finds. With arrival rate a·X
	// (arrival-theorem correction (M-1)/M for a closed network), the
	// work balance W = a·X·(W·D + SQ/2) gives the M/G/1-like closed
	// form W = a·X·SQ/2 / (1 − a·X·D); the denominator shrinking to
	// zero is saturation, which the closed loop resolves by lowering X.
	x := m / (z + delay) // optimistic start
	// The bottleneck center caps throughput: X ≤ 1/max(D).
	xCap := math.Inf(1)
	for c := center(0); c < nCenters; c++ {
		if demand[c] > 0 && 1/demand[c] < xCap {
			xCap = 1 / demand[c]
		}
	}
	if x > xCap {
		x = xCap
	}
	var wait [nCenters]float64
	for iter := 0; iter < 20000; iter++ {
		a := x * (m - 1) / m
		for c := center(0); c < nCenters; c++ {
			den := 1 - a*demand[c]
			if den < 1e-6 {
				den = 1e-6
			}
			wait[c] = a * workSq[c] / 2 / den
		}
		r := delay
		for _, cl := range classes {
			for _, h := range cl.hops {
				r += cl.p * (wait[h.c] + h.s)
			}
		}
		xNew := m / (z + r)
		if xNew > xCap {
			xNew = xCap
		}
		// Damp for stability near saturation.
		xNew = 0.5*x + 0.5*xNew
		if math.Abs(xNew-x) <= 1e-12*math.Max(1e-12, x) {
			x = xNew
			break
		}
		x = xNew
	}

	r := m/x - z
	res := Result{
		Efficiency: z / (z + r),
		Response:   r,
		RowUtil:    x * demand[rowBus],
		ColUtil:    x * demand[colBus],
		MemUtil:    x * demand[memMod],
		Throughput: x * 1e9, // x is per ns
	}
	return res, nil
}

// MustSolve is Solve but panics on error.
func MustSolve(p Params) Result {
	r, err := Solve(p)
	if err != nil {
		panic(err)
	}
	return r
}
