package mva

import (
	"math"
	"testing"
)

func TestMultiValidation(t *testing.T) {
	bad := []MultiParams{
		{N: 1, K: 2, BlockWords: 16, WordTime: 50, RequestRate: 25},
		{N: 4, K: 0, BlockWords: 16, WordTime: 50, RequestRate: 25},
		{N: 1000, K: 4, BlockWords: 16, WordTime: 50, RequestRate: 25},
	}
	for i, p := range bad {
		if _, err := SolveMulti(p); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestMultiMatchesTwoDimensionalShape(t *testing.T) {
	// The k=2 multidimensional model and the detailed 2-D solver use
	// different approximations but must agree on the regime: within a
	// few points of efficiency at the design point.
	p2 := Defaults(32)
	p2.RequestRate = 15
	detailed := MustSolve(p2).Efficiency

	pk := MultiDefaults(32, 2)
	pk.RequestRate = 15
	general := MustSolveMulti(pk).Efficiency

	if math.Abs(detailed-general) > 0.08 {
		t.Errorf("k=2 models diverge: detailed %f vs general %f", detailed, general)
	}
}

func TestMultiLightLoadIdeal(t *testing.T) {
	p := MultiDefaults(10, 3)
	p.RequestRate = 0.01
	if eff := MustSolveMulti(p).Efficiency; eff < 0.99 {
		t.Errorf("light-load efficiency = %f", eff)
	}
}

func TestMultiEfficiencyMonotoneInRate(t *testing.T) {
	for _, cfg := range []struct{ n, k int }{{32, 2}, {10, 3}, {2, 10}} {
		prev := 1.1
		for _, rate := range RateSweep() {
			p := MultiDefaults(cfg.n, cfg.k)
			p.RequestRate = rate
			eff := MustSolveMulti(p).Efficiency
			if eff >= prev {
				t.Errorf("n=%d k=%d rate=%g: eff %f not below %f", cfg.n, cfg.k, rate, eff, prev)
			}
			prev = eff
		}
	}
}

func TestHypercubePaysPathLength(t *testing.T) {
	// Section 6: per-processor bandwidth k/n grows with k, but the path
	// length also grows as k and invalidations cost (N-1)/(n-1). At
	// light load the hypercube's long paths dominate: the 2-D machine
	// has a better response time at equal processor count.
	p2 := MultiDefaults(32, 2)
	p10 := MultiDefaults(2, 10)
	p2.RequestRate, p10.RequestRate = 5, 5
	r2, r10 := MustSolveMulti(p2), MustSolveMulti(p10)
	if r10.Response <= r2.Response {
		t.Errorf("hypercube response %f not above 2-D %f at light load", r10.Response, r2.Response)
	}
}

func TestHypercubeBandwidthAtSaturation(t *testing.T) {
	// The flip side: with k/n = 5 the hypercube has vastly more bus
	// bandwidth per processor, so it saturates much later than the 2-D
	// machine (k/n = 1/16).
	heavy := 200.0
	p2 := MultiDefaults(32, 2)
	p10 := MultiDefaults(2, 10)
	p2.RequestRate, p10.RequestRate = heavy, heavy
	r2, r10 := MustSolveMulti(p2), MustSolveMulti(p10)
	if r10.Efficiency <= r2.Efficiency {
		t.Errorf("hypercube efficiency %f not above 2-D %f at heavy load", r10.Efficiency, r2.Efficiency)
	}
}

func TestDimensionSweepRenders(t *testing.T) {
	f := DimensionSweep([]float64{5, 25, 50})
	out := f.Render()
	for _, want := range []string{"n=32 k=2", "n=10 k=3", "n=2 k=10"} {
		if !contains(out, want) {
			t.Errorf("sweep missing %q:\n%s", want, out)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
