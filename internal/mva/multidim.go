package mva

import (
	"fmt"
	"math"

	"multicube/internal/stats"
)

// This file extends the analytical model to the general k-dimensional
// Multicube of Section 6 — the paper's closing research question
// ("these factors may be balanced in a multidimensional Multicube
// architecture to achieve scalable performance. This topic is a subject
// for future research.").
//
// Generalizations, all taken from Section 6's own accounting:
//
//   - N = n^k processors; k·n^(k−1) buses, so the per-dimension bus pool
//     a transaction's operations spread over is n^(k−1);
//   - a request travels up to k hops to reach the line's home bus and the
//     data travels up to k hops back (dimension-ordered routing), versus
//     2+2 in the two-dimensional machine;
//   - the invalidating broadcast costs approximately (N−1)/(n−1) bus
//     operations instead of n+1 row + 3 column;
//   - the modified-line-table structures generalize (each table covers
//     N/n processors), which this model abstracts as the same REMOVE/
//     INSERT address operations along the request path.
type MultiParams struct {
	// N is processors per bus; K is the number of dimensions.
	N, K int
	// The remaining fields mirror Params.
	BlockWords    int
	WordTime      float64
	AddrWords     int
	CacheLatency  float64
	MemoryLatency float64
	RequestRate   float64
	PUnmodified   float64
	PInvalidate   float64
}

// MultiDefaults returns the Figure 2 constants for an n^k machine.
func MultiDefaults(n, k int) MultiParams {
	return MultiParams{
		N: n, K: k,
		BlockWords:    16,
		WordTime:      50,
		AddrWords:     1,
		CacheLatency:  750,
		MemoryLatency: 750,
		RequestRate:   25,
		PUnmodified:   0.8,
		PInvalidate:   0.2,
	}
}

func (p MultiParams) validate() error {
	if p.N < 2 || p.K < 1 {
		return fmt.Errorf("mva: multicube n=%d k=%d", p.N, p.K)
	}
	if p.BlockWords < 1 || p.WordTime <= 0 || p.RequestRate <= 0 {
		return fmt.Errorf("mva: nonpositive block, word time or rate")
	}
	if float64(p.N)*math.Pow(float64(p.N), float64(p.K-1)) > 1e9 {
		return fmt.Errorf("mva: machine too large")
	}
	return nil
}

// SolveMulti evaluates the k-dimensional model. All buses are equivalent
// by symmetry (the paper notes real buses in different dimensions would
// differ in speed; we model the idealized symmetric machine, as the
// paper's own formulas do).
func SolveMulti(p MultiParams) (Result, error) {
	if err := p.validate(); err != nil {
		return Result{}, err
	}
	n := float64(p.N)
	k := float64(p.K)
	m := math.Pow(n, k)           // processors
	buses := k * math.Pow(n, k-1) // total buses
	z := 1e6 / p.RequestRate      // think time ns

	tAddr := float64(p.AddrWords) * p.WordTime
	tData := float64(p.AddrWords+p.BlockWords) * p.WordTime

	// A transaction's critical path: k address hops out, k data hops
	// back (one of each on a multi, k=1). Requests to modified lines pay
	// the remote cache latency; others pay memory.
	hopsOut := k
	hopsBack := k

	pm := 1 - p.PUnmodified
	puW := p.PUnmodified * p.PInvalidate

	// Broadcast cost (bus-seconds of short operations, spread over all
	// buses): ~(N-1)/(n-1) operations per invalidating write.
	bcastOps := (m - 1) / (n - 1)

	// Per-bus demand per transaction: all operations divided over the
	// total bus pool (symmetry).
	critOps := hopsOut*tAddr + hopsBack*tData
	extraOps := pm*tData /* memory update for reads of modified */ +
		puW*(bcastOps*tAddr+tAddr /* table insert */)
	demand := (critOps + extraOps) / buses
	workSq := (hopsOut*tAddr*tAddr + hopsBack*tData*tData +
		pm*tData*tData + puW*(bcastOps*tAddr*tAddr+tAddr*tAddr)) / buses

	// Memory/remote-cache access: one queueing-free delay per
	// transaction (the n^(k-1) memory modules see little contention at
	// these rates; the 2-D solver models them explicitly, and the
	// simplification costs a few percent at saturation only).
	delay := pm*p.CacheLatency + (1-pm)*p.MemoryLatency

	x := m / (z + delay + critOps)
	if cap := 1 / demand; x > cap {
		x = cap
	}
	for iter := 0; iter < 20000; iter++ {
		a := x * (m - 1) / m
		den := 1 - a*demand
		if den < 1e-6 {
			den = 1e-6
		}
		wait := a * workSq / 2 / den
		// Each of the 2k critical hops waits once.
		r := delay + critOps + (hopsOut+hopsBack)*wait
		xNew := m / (z + r)
		if cap := 1 / demand; xNew > cap {
			xNew = cap
		}
		xNew = 0.5*x + 0.5*xNew
		if math.Abs(xNew-x) <= 1e-12*math.Max(1e-12, x) {
			x = xNew
			break
		}
		x = xNew
	}
	r := m/x - z
	return Result{
		Efficiency: z / (z + r),
		Response:   r,
		RowUtil:    x * demand,
		ColUtil:    x * demand,
		MemUtil:    0,
		Throughput: x * 1e9,
	}, nil
}

// MustSolveMulti is SolveMulti but panics on error.
func MustSolveMulti(p MultiParams) Result {
	r, err := SolveMulti(p)
	if err != nil {
		panic(err)
	}
	return r
}

// DimensionSweep compares machines of roughly equal processor counts
// built with different dimensionality — the Section 6 question of
// whether higher-k Multicubes remain efficient. Each curve is one (n, k)
// configuration swept over the request rate.
func DimensionSweep(rates []float64) *stats.Figure {
	if rates == nil {
		rates = RateSweep()
	}
	f := stats.NewFigure(
		"Dimensionality sweep (Section 6): ~1K processors built as n^k",
		"req/ms")
	for _, cfg := range []struct{ n, k int }{
		{32, 2}, // the Wisconsin Multicube: 1024
		{10, 3}, // 1000 processors in three dimensions
		{6, 4},  // 1296 in four
		{2, 10}, // a 1024-node hypercube with bus semantics
	} {
		label := fmt.Sprintf("n=%d k=%d (N=%.0f)", cfg.n, cfg.k, math.Pow(float64(cfg.n), float64(cfg.k)))
		for _, rate := range rates {
			p := MultiDefaults(cfg.n, cfg.k)
			p.RequestRate = rate
			f.Add(label, rate, MustSolveMulti(p).Efficiency)
		}
	}
	return f
}
