package mva

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValidation(t *testing.T) {
	bad := []Params{
		{N: 1, BlockWords: 16, WordTime: 50, RequestRate: 25},
		{N: 8, BlockWords: 0, WordTime: 50, RequestRate: 25},
		{N: 8, BlockWords: 16, WordTime: 0, RequestRate: 25},
		{N: 8, BlockWords: 16, WordTime: 50, RequestRate: 0},
	}
	for i, p := range bad {
		if _, err := Solve(p); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	p := Defaults(8)
	p.PUnmodified = 1.5
	if _, err := Solve(p); err == nil {
		t.Error("probability out of range accepted")
	}
}

func TestLightLoadApproachesIdeal(t *testing.T) {
	p := Defaults(32)
	p.RequestRate = 0.01
	r := MustSolve(p)
	if r.Efficiency < 0.999 {
		t.Errorf("efficiency at negligible load = %f", r.Efficiency)
	}
}

func TestDesignPointNinetyPercent(t *testing.T) {
	// The paper: ~1K processors at roughly ninety percent utilization
	// needs an average access rate below 25 requests/ms.
	p := Defaults(32)
	p.RequestRate = 25
	r := MustSolve(p)
	if r.Efficiency < 0.80 || r.Efficiency > 0.95 {
		t.Errorf("efficiency at design point = %f, want ~0.9", r.Efficiency)
	}
	// And below the design rate it must exceed 90%.
	p.RequestRate = 15
	if got := MustSolve(p).Efficiency; got < 0.90 {
		t.Errorf("efficiency at 15 req/ms = %f, want > 0.90", got)
	}
}

func TestFigure2Ordering(t *testing.T) {
	// At any load, wider rows (more processors) mean lower efficiency:
	// curves ordered 8 > 16 > 24 > 32 top to bottom.
	for _, rate := range []float64{5, 25, 50, 100} {
		prev := 1.1
		for _, n := range []int{8, 16, 24, 32} {
			p := Defaults(n)
			p.RequestRate = rate
			eff := MustSolve(p).Efficiency
			if eff >= prev {
				t.Errorf("rate %g: eff(n=%d)=%f not below previous %f", rate, n, eff, prev)
			}
			prev = eff
		}
	}
}

func TestFigure3InvalidationOrdering(t *testing.T) {
	// More invalidating writes, lower efficiency; the effect is small at
	// the ninety-percent operating point (the paper's observation).
	for _, rate := range []float64{10, 25, 60} {
		prev := 1.1
		for _, pinv := range []float64{0.1, 0.2, 0.3, 0.4, 0.5} {
			p := Defaults(32)
			p.RequestRate = rate
			p.PInvalidate = pinv
			eff := MustSolve(p).Efficiency
			if eff >= prev {
				t.Errorf("rate %g: eff(pinv=%g)=%f not below %f", rate, pinv, eff, prev)
			}
			prev = eff
		}
	}
	// Small effect near the design point: 10% vs 50% within a few points.
	lo, hi := Defaults(32), Defaults(32)
	lo.RequestRate, hi.RequestRate = 15, 15
	lo.PInvalidate, hi.PInvalidate = 0.1, 0.5
	d := MustSolve(lo).Efficiency - MustSolve(hi).Efficiency
	if d < 0 || d > 0.10 {
		t.Errorf("invalidation effect at design point = %f, want small positive", d)
	}
}

func TestFigure4BlockSizeOrdering(t *testing.T) {
	// At a fixed request rate, larger blocks cost efficiency (longer
	// transfers): 4 > 8 > 16 > 32 > 64 top to bottom.
	for _, rate := range []float64{10, 25, 50} {
		prev := 1.1
		for _, bw := range []int{4, 8, 16, 32, 64} {
			p := Defaults(32)
			p.RequestRate = rate
			p.BlockWords = bw
			eff := MustSolve(p).Efficiency
			if eff >= prev {
				t.Errorf("rate %g: eff(block=%d)=%f not below %f", rate, bw, eff, prev)
			}
			prev = eff
		}
	}
}

func TestBlockTradeoffFavorsMidSizes(t *testing.T) {
	// Under the optimistic coupling (rate halves per doubling), a
	// moderate block beats the 4-word block — the Leutenegger-Vernon
	// argument for 16-32 words.
	f := Figure4BlockTradeoff(50)
	s := f.Series("rate halves per doubling")
	if s.Points[16] <= s.Points[4] {
		t.Errorf("16-word block (%f) should beat 4-word (%f) under halving coupling",
			s.Points[16], s.Points[4])
	}
}

func TestLatencyTechniquesImprove(t *testing.T) {
	base := Defaults(32)
	base.BlockWords = 32
	base.RequestRate = 25
	eff := MustSolve(base).Efficiency
	for _, mod := range []func(*Params){
		func(p *Params) { p.CutThrough = true },
		func(p *Params) { p.WordFirst = true },
		func(p *Params) { p.TransferWords = 8 },
	} {
		p := base
		mod(&p)
		if got := MustSolve(p).Efficiency; got <= eff {
			t.Errorf("technique did not improve efficiency: %f <= %f", got, eff)
		}
	}
	// Both overlaps together beat either alone.
	both := base
	both.CutThrough, both.WordFirst = true, true
	single := base
	single.CutThrough = true
	if MustSolve(both).Efficiency <= MustSolve(single).Efficiency {
		t.Error("combined techniques not better than one")
	}
}

func TestUtilizationsBounded(t *testing.T) {
	f := func(rawRate, rawN uint8) bool {
		n := 2 + int(rawN)%31
		p := Defaults(n)
		p.RequestRate = 1 + float64(int(rawRate)%100)
		r := MustSolve(p)
		return r.RowUtil > 0 && r.RowUtil <= 1.0001 &&
			r.ColUtil > 0 && r.ColUtil <= 1.0001 &&
			r.MemUtil > 0 && r.MemUtil <= 1.0001 &&
			r.Efficiency > 0 && r.Efficiency <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEfficiencyMonotoneInRate(t *testing.T) {
	prev := 1.1
	for _, rate := range RateSweep() {
		p := Defaults(32)
		p.RequestRate = rate
		eff := MustSolve(p).Efficiency
		if eff >= prev {
			t.Errorf("eff(%g)=%f not below %f", rate, eff, prev)
		}
		prev = eff
	}
}

func TestThroughputConsistency(t *testing.T) {
	// Little's law: X = M / (Z + R).
	p := Defaults(16)
	p.RequestRate = 25
	r := MustSolve(p)
	m := 256.0
	z := 1e6 / 25
	want := m / (z + r.Response) * 1e9
	if math.Abs(r.Throughput-want) > 1e-6*want {
		t.Errorf("throughput = %f, want %f", r.Throughput, want)
	}
}

func TestFiguresRender(t *testing.T) {
	rates := []float64{5, 25, 50}
	for _, f := range []interface{ Render() string }{
		Figure2(rates), Figure3(rates), Figure4(rates),
		Figure4BlockTradeoff(50), LatencyTechniques(rates),
	} {
		if out := f.Render(); len(out) < 50 {
			t.Errorf("suspiciously short figure:\n%s", out)
		}
	}
	// Default sweep path.
	if Figure2(nil).Table().Rows() != len(RateSweep()) {
		t.Error("default sweep rows mismatch")
	}
}
