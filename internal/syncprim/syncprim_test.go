package syncprim

import (
	"fmt"
	"testing"

	"multicube/internal/core"
	"multicube/internal/sim"
)

func newMachine(t *testing.T, n int) *core.Machine {
	t.Helper()
	m, err := core.New(core.Config{N: n, BlockWords: 8})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func quiet(t *testing.T, m *core.Machine) {
	t.Helper()
	for _, err := range m.CheckInvariants() {
		t.Errorf("invariant: %v", err)
	}
}

// exerciseLock runs every processor through iters lock-protected
// increments of a counter word sharing the lock line, then checks the
// total.
func exerciseLock(t *testing.T, m *core.Machine, mk func(id int) Locker, iters int) {
	t.Helper()
	const counterAddr = core.Addr(4) // word 4 of the lock line at 0
	procs := m.Processors()
	m.SpawnAll(func(c *core.Ctx) {
		l := mk(c.ID())
		for i := 0; i < iters; i++ {
			l.Lock(c)
			v := c.Load(counterAddr)
			c.Store(counterAddr, v+1)
			l.Unlock(c)
			c.Sleep(sim.Time(100 * (1 + c.ID()%3)))
		}
	})
	m.Run()
	if got := m.ReadCoherent(counterAddr); got != uint64(procs*iters) {
		t.Fatalf("counter = %d, want %d", got, procs*iters)
	}
	quiet(t, m)
}

func TestTASLockMutualExclusion(t *testing.T) {
	m := newMachine(t, 3)
	exerciseLock(t, m, func(int) Locker { return &TASLock{Addr: 0} }, 5)
}

func TestTTSLockMutualExclusion(t *testing.T) {
	m := newMachine(t, 3)
	exerciseLock(t, m, func(int) Locker { return &TTSLock{Addr: 0} }, 5)
}

func TestQueueLockMutualExclusion(t *testing.T) {
	m := newMachine(t, 3)
	exerciseLock(t, m, func(int) Locker { return &QueueLock{Addr: 0} }, 5)
}

func TestQueueLockSharedInstance(t *testing.T) {
	// All processors share one QueueLock value (the realistic usage).
	m := newMachine(t, 3)
	l := &QueueLock{Addr: 0}
	exerciseLock(t, m, func(int) Locker { return l }, 4)
	acq, _ := l.Stats()
	if acq != uint64(9*4) {
		t.Errorf("acquisitions = %d, want %d", acq, 9*4)
	}
}

func TestQueueLockLessBusTrafficThanTAS(t *testing.T) {
	// The headline claim of Section 4: under contention the queue lock
	// collapses bus traffic relative to spinning test-and-set.
	busOps := func(mk func() Locker) uint64 {
		m := newMachine(t, 3)
		lock := mk()
		m.SpawnAll(func(c *core.Ctx) {
			for i := 0; i < 5; i++ {
				lock.Lock(c)
				c.Sleep(2 * sim.Microsecond) // critical section
				lock.Unlock(c)
			}
		})
		m.Run()
		mt := m.Metrics()
		return mt.RowBusOps + mt.ColBusOps
	}
	tas := busOps(func() Locker { return &TASLock{Addr: 0, Backoff: Backoff{Initial: 200}} })
	queue := busOps(func() Locker { return &QueueLock{Addr: 0} })
	if queue >= tas {
		t.Errorf("queue lock used %d bus ops, TAS used %d; queue should be lower", queue, tas)
	}
}

func TestBarrierAllArrive(t *testing.T) {
	m := newMachine(t, 3)
	b := &Barrier{
		Lock:      &QueueLock{Addr: 0},
		CountAddr: 4,   // same line as the lock
		SenseAddr: 128, // its own line
		N:         9,
	}
	const rounds = 4
	// Every processor appends its round number; after each barrier, all
	// participants must have finished that round.
	arrived := make([][]int, rounds)
	m.SpawnAll(func(c *core.Ctx) {
		var s Sense
		for r := 0; r < rounds; r++ {
			c.Sleep(sim.Time(500 * (1 + c.ID()))) // stagger arrivals
			arrived[r] = append(arrived[r], c.ID())
			b.Wait(c, &s)
			// After the barrier, everyone from this round has arrived.
			if len(arrived[r]) != 9 {
				t.Errorf("cpu %d passed barrier round %d with %d arrivals", c.ID(), r, len(arrived[r]))
			}
		}
	})
	m.Run()
	for r := 0; r < rounds; r++ {
		if len(arrived[r]) != 9 {
			t.Errorf("round %d: %d arrivals", r, len(arrived[r]))
		}
	}
	quiet(t, m)
}

func TestBarrierWithTASLock(t *testing.T) {
	m := newMachine(t, 2)
	b := &Barrier{Lock: &TASLock{Addr: 0}, CountAddr: 4, SenseAddr: 64, N: 4}
	reached := 0
	m.SpawnAll(func(c *core.Ctx) {
		var s Sense
		b.Wait(c, &s)
		reached++
	})
	m.Run()
	if reached != 4 {
		t.Fatalf("%d reached, want 4", reached)
	}
	quiet(t, m)
}

func TestLocksAreFIFOUnderQueue(t *testing.T) {
	// With staggered arrivals, the queue lock should grant in arrival
	// order (the paper's "usually provides first-come-first-served").
	m := newMachine(t, 3)
	l := &QueueLock{Addr: 0}
	var order []int
	for id := 0; id < 9; id++ {
		id := id
		m.Spawn(id, func(c *core.Ctx) {
			c.Sleep(sim.Time(id) * 10 * sim.Microsecond) // well separated
			l.Lock(c)
			order = append(order, c.ID())
			c.Sleep(30 * sim.Microsecond) // hold long enough to queue all
			l.Unlock(c)
		})
	}
	m.Run()
	if len(order) != 9 {
		t.Fatalf("%d acquisitions", len(order))
	}
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			t.Fatalf("acquisition order not FIFO: %v", order)
		}
	}
	quiet(t, m)
}

func TestBackoffDefaults(t *testing.T) {
	var b Backoff
	if b.initial() != 500 || b.max() != 8000 {
		t.Errorf("defaults = (%v, %v)", b.initial(), b.max())
	}
	b = Backoff{Initial: 100, Max: 400}
	if b.initial() != 100 || b.max() != 400 {
		t.Errorf("explicit = (%v, %v)", b.initial(), b.max())
	}
}

func TestDeterministicLockStorm(t *testing.T) {
	run := func() (sim.Time, uint64) {
		m := newMachine(t, 3)
		l := &QueueLock{Addr: 0}
		m.SpawnAll(func(c *core.Ctx) {
			for i := 0; i < 4; i++ {
				l.Lock(c)
				v := c.Load(4)
				c.Store(4, v+1)
				l.Unlock(c)
			}
		})
		end := m.Run()
		return end, m.ReadCoherent(4)
	}
	t1, v1 := run()
	t2, v2 := run()
	if t1 != t2 || v1 != v2 {
		t.Fatalf("nondeterministic: (%v,%d) vs (%v,%d)", t1, v1, t2, v2)
	}
	if v1 != 36 {
		t.Fatalf("count = %d, want 36", v1)
	}
}

func TestExampleReport(t *testing.T) {
	// Smoke-test that metrics render for a lock workload (used by the
	// sync bench output).
	m := newMachine(t, 2)
	l := &QueueLock{Addr: 0}
	m.SpawnAll(func(c *core.Ctx) {
		l.Lock(c)
		l.Unlock(c)
	})
	m.Run()
	s := m.Metrics().String()
	if len(s) == 0 {
		t.Fatal("empty metrics")
	}
	_ = fmt.Sprintf("%v", s)
}

func TestQueueLockFallbackToSpin(t *testing.T) {
	// The lock word is set in memory while the line is unmodified (as if
	// a holder's line had been written back): SyncAcquire degenerates and
	// the QueueLock transparently falls back to spinning test-and-set,
	// acquiring once the word clears.
	m := newMachine(t, 2)
	m.SeedMemory(0, []uint64{1}) // lock held, line unmodified
	l := &QueueLock{Addr: 0, Backoff: Backoff{Initial: 500}}
	acquired := false
	m.Spawn(0, func(c *core.Ctx) {
		l.Lock(c)
		acquired = true
		l.Unlock(c)
	})
	m.Spawn(3, func(c *core.Ctx) {
		c.Sleep(20 * sim.Microsecond)
		c.Store(0, 0) // the phantom holder finally releases in software
	})
	m.Run()
	if !acquired {
		t.Fatal("fallback spin never acquired")
	}
	if _, fallbacks := l.Stats(); fallbacks != 1 {
		t.Errorf("fallbacks = %d, want 1", fallbacks)
	}
	quiet(t, m)
}

func TestTTSLockContendedPath(t *testing.T) {
	// Force the TTS inner loop: the lock is held for a while, so waiters
	// spin on their cached copy before attempting the test-and-set.
	m := newMachine(t, 2)
	l := &TTSLock{Addr: 0, Backoff: Backoff{Initial: 300}}
	order := []int{}
	for id := 0; id < 4; id++ {
		m.Spawn(id, func(c *core.Ctx) {
			l.Lock(c)
			order = append(order, c.ID())
			c.Sleep(10 * sim.Microsecond)
			l.Unlock(c)
		})
	}
	m.Run()
	if len(order) != 4 {
		t.Fatalf("%d acquisitions, want 4", len(order))
	}
	quiet(t, m)
}

func TestTASLockBackoffGrowth(t *testing.T) {
	// Long hold forces the exponential backoff path to its cap.
	m := newMachine(t, 2)
	l := &TASLock{Addr: 0, Backoff: Backoff{Initial: 200, Max: 800}}
	got := 0
	m.Spawn(0, func(c *core.Ctx) {
		l.Lock(c)
		c.Sleep(50 * sim.Microsecond)
		l.Unlock(c)
		got++
	})
	m.Spawn(3, func(c *core.Ctx) {
		c.Sleep(1 * sim.Microsecond)
		l.Lock(c)
		got++
		l.Unlock(c)
	})
	m.Run()
	if got != 2 {
		t.Fatalf("acquisitions = %d", got)
	}
	quiet(t, m)
}
