package syncprim

import (
	"multicube/internal/core"
	"multicube/internal/sim"
)

// Locker is any of this package's locks.
type Locker interface {
	Lock(c *core.Ctx)
	Unlock(c *core.Ctx)
}

// Barrier is a sense-reversing centralized barrier over shared memory:
// arrivals increment a counter under a lock; the last arrival flips the
// sense word, whose invalidation broadcast releases the spinners. With a
// QueueLock protecting the counter this is the paper's Section 4 sketch
// of barrier synchronization via the distributed queue: the counter
// travels around the FIFO queue of arrivals by direct cache-to-cache
// handoff, and only the final sense flip costs a broadcast.
type Barrier struct {
	// Lock protects the arrival counter; its lock line should contain
	// CountAddr so the counter travels with the lock.
	Lock Locker
	// CountAddr holds the arrival count.
	CountAddr core.Addr
	// SenseAddr holds the global sense, on its own line.
	SenseAddr core.Addr
	// N is the number of participants.
	N int
	// Poll is the spin re-check interval; zero selects 1 µs.
	Poll sim.Time
}

// Sense is each participant's private sense state; zero value ready.
type Sense struct{ local uint64 }

// Wait blocks (in simulated time) until all N participants arrive.
func (b *Barrier) Wait(c *core.Ctx, s *Sense) {
	poll := b.Poll
	if poll == 0 {
		poll = 1 * sim.Microsecond
	}
	s.local ^= 1
	b.Lock.Lock(c)
	count := c.Load(b.CountAddr) + 1
	if int(count) == b.N {
		// Last arrival: reset the counter and release everyone.
		c.Store(b.CountAddr, 0)
		b.Lock.Unlock(c)
		c.Store(b.SenseAddr, s.local)
		return
	}
	c.Store(b.CountAddr, count)
	b.Lock.Unlock(c)
	for c.Load(b.SenseAddr) != s.local {
		c.Sleep(poll)
	}
}
