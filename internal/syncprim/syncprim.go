// Package syncprim builds the synchronization primitives of Section 4 on
// top of the machine's coherent shared memory: the remote test-and-set
// spin lock, the test-and-test-and-set spin lock it improves on, the SYNC
// distributed queue lock that collapses contended-lock bus traffic to a
// handoff per critical section, and barriers (sense-reversing, plus the
// queue-based variant the paper sketches).
//
// All primitives operate on a lock line: a coherency block whose word 0
// is the lock word and word 1 is protocol-owned (the SYNC link word).
// Application data may share the rest of the line — the counter examples
// in the tests do exactly that, mirroring the paper's suggestion that a
// lock travels with the data it protects.
package syncprim

import (
	"multicube/internal/core"
	"multicube/internal/sim"
)

// Backoff tunes spin loops: how long a processor waits between failed
// lock attempts. The paper's Test-and-Test-and-Set discussion assumes
// spinning on a cached copy; the delay models the re-check interval.
type Backoff struct {
	// Initial is the first retry delay; zero selects 500 ns.
	Initial sim.Time
	// Max caps exponential growth; zero selects 16× Initial.
	Max sim.Time
}

func (b Backoff) initial() sim.Time {
	if b.Initial == 0 {
		return 500 * sim.Nanosecond
	}
	return b.Initial
}

func (b Backoff) max() sim.Time {
	if b.Max == 0 {
		return 16 * b.initial()
	}
	return b.Max
}

// TASLock is the plain remote test-and-set spin lock: every attempt is a
// bus transaction unless a local copy short-circuits it.
type TASLock struct {
	Addr    core.Addr
	Backoff Backoff
}

// Lock spins until the test-and-set succeeds.
func (l *TASLock) Lock(c *core.Ctx) {
	d := l.Backoff.initial()
	for !c.TestAndSet(l.Addr) {
		c.Sleep(d)
		if d *= 2; d > l.Backoff.max() {
			d = l.Backoff.max()
		}
	}
}

// Unlock clears the lock word with an ordinary store.
func (l *TASLock) Unlock(c *core.Ctx) {
	c.Store(l.Addr, 0)
}

// TTSLock is Test-and-Test-and-Set [RuSe84]: spin reading the (cached)
// lock word and attempt the test-and-set only when it reads free. On this
// machine the hardware already refuses a bus transaction for a shared
// copy that shows the lock held, so TTS mainly reduces failed remote
// attempts when no copy is cached.
type TTSLock struct {
	Addr    core.Addr
	Backoff Backoff
}

// Lock spins until acquired.
func (l *TTSLock) Lock(c *core.Ctx) {
	d := l.Backoff.initial()
	for {
		for c.Load(l.Addr) != 0 {
			c.Sleep(d)
			if d *= 2; d > l.Backoff.max() {
				d = l.Backoff.max()
			}
		}
		if c.TestAndSet(l.Addr) {
			return
		}
		c.Sleep(d)
	}
}

// Unlock clears the lock word.
func (l *TTSLock) Unlock(c *core.Ctx) {
	c.Store(l.Addr, 0)
}

// QueueLock is the SYNC distributed queue lock: waiters enqueue with a
// single SYNC transaction and receive the lock line by direct cache-to-
// cache handoff in FIFO order. When the queue path degenerates (the paper
// allows SYNC to be treated as a hint), the lock falls back to spinning
// remote test-and-set, which guarantees correctness.
type QueueLock struct {
	Addr    core.Addr
	Backoff Backoff

	// acquisitions and fallbacks are counters for the benches.
	acquisitions uint64
	fallbacks    uint64
}

// Lock acquires the lock, queueing when contended.
func (l *QueueLock) Lock(c *core.Ctx) {
	l.acquisitions++
	r := c.SyncAcquire(l.Addr)
	if r.Acquired {
		return
	}
	// Degenerate path: spin with test-and-set.
	l.fallbacks++
	d := l.Backoff.initial()
	for !c.TestAndSet(l.Addr) {
		c.Sleep(d)
		if d *= 2; d > l.Backoff.max() {
			d = l.Backoff.max()
		}
	}
}

// Unlock hands the lock line to the next queued waiter, or clears the
// lock word (in cache, or in software when the line was lost).
func (l *QueueLock) Unlock(c *core.Ctx) {
	if !c.SyncRelease(l.Addr) {
		c.Store(l.Addr, 0)
	}
}

// Stats reports acquisitions and degenerate fallbacks.
func (l *QueueLock) Stats() (acquisitions, fallbacks uint64) {
	return l.acquisitions, l.fallbacks
}
