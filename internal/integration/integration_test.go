// Package integration holds whole-machine scenario tests that combine the
// kernels, synchronization primitives and coherence protocol at larger
// scales and under adversarial configurations (tight caches, tight
// modified line tables, snarfing enabled) — the configurations where
// structural corner cases interact.
package integration

import (
	"testing"

	"multicube/internal/core"
	"multicube/internal/sim"
	"multicube/internal/syncprim"
	"multicube/internal/trace"
	"multicube/internal/workload"
)

func quiet(t *testing.T, m *core.Machine) {
	t.Helper()
	for _, err := range m.CheckInvariants() {
		t.Errorf("invariant: %v", err)
	}
}

// TestBankConservationTightCaches runs lock-protected transfers with
// bounded caches, bounded tables and snarfing all enabled: every
// structural mechanism (victim writebacks, MLT overflow writebacks,
// retained-tag snarfing, lock handoffs) interacts, and money must still
// be conserved.
func TestBankConservationTightCaches(t *testing.T) {
	m := core.MustNew(core.Config{
		N: 4, BlockWords: 8,
		CacheLines: 16, CacheAssoc: 4,
		MLTEntries: 8, MLTAssoc: 2,
		L1Lines: 8, L1Assoc: 2,
		Snarf: true,
	})
	const accounts = 12
	const initial = 500
	bw := core.Addr(m.BlockWords())
	for i := 0; i < accounts; i++ {
		m.SeedMemory(core.Addr(i)*bw+2, []uint64{initial})
	}
	locks := make([]*syncprim.QueueLock, accounts)
	for i := range locks {
		locks[i] = &syncprim.QueueLock{Addr: core.Addr(i) * bw}
	}
	m.SpawnAll(func(c *core.Ctx) {
		rng := workload.NewRand(uint64(c.ID())*7 + 1)
		for k := 0; k < 15; k++ {
			a, b := rng.Intn(accounts), rng.Intn(accounts)
			if a == b {
				b = (b + 1) % accounts
			}
			lo, hi := a, b
			if lo > hi {
				lo, hi = hi, lo
			}
			locks[lo].Lock(c)
			locks[hi].Lock(c)
			amt := uint64(rng.Intn(20) + 1)
			fb := c.Load(core.Addr(a)*bw + 2)
			if fb >= amt {
				c.Store(core.Addr(a)*bw+2, fb-amt)
				tb := c.Load(core.Addr(b)*bw + 2)
				c.Store(core.Addr(b)*bw+2, tb+amt)
			}
			locks[hi].Unlock(c)
			locks[lo].Unlock(c)
			c.Sleep(sim.Time(rng.Intn(3000)))
		}
	})
	m.Run()
	total := uint64(0)
	for i := 0; i < accounts; i++ {
		total += m.ReadCoherent(core.Addr(i)*bw + 2)
	}
	if total != accounts*initial {
		t.Fatalf("balance not conserved: %d, want %d", total, accounts*initial)
	}
	quiet(t, m)
}

// TestMixedLockAndDataTraffic runs lock-protected counters, a barrier
// phase, and unsynchronized private data streams simultaneously on
// disjoint lines.
func TestMixedLockAndDataTraffic(t *testing.T) {
	m := core.MustNew(core.Config{N: 3, BlockWords: 8})
	lock := &syncprim.QueueLock{Addr: 0}
	barrier := &syncprim.Barrier{
		Lock:      &syncprim.QueueLock{Addr: 64},
		CountAddr: 66,
		SenseAddr: 128,
		N:         m.Processors(),
	}
	const perProc = 8
	m.SpawnAll(func(c *core.Ctx) {
		var s syncprim.Sense
		base := core.Addr(512 + c.ID()*64)
		for i := 0; i < perProc; i++ {
			// Private stream.
			c.Store(base+core.Addr(i), uint64(i))
			// Shared counter under the lock (word 2 of the lock line).
			lock.Lock(c)
			v := c.Load(2)
			c.Store(2, v+1)
			lock.Unlock(c)
		}
		barrier.Wait(c, &s)
		// After the barrier everyone must see the final count.
		if got := c.Load(2); got != uint64(m.Processors()*perProc) {
			t.Errorf("cpu %d saw count %d after barrier", c.ID(), got)
		}
	})
	m.Run()
	quiet(t, m)
}

// TestLargeMachineStorm runs a 64-processor random storm with
// everything enabled and checks global state.
func TestLargeMachineStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("large machine storm")
	}
	m := core.MustNew(core.Config{
		N: 8, BlockWords: 16,
		CacheLines: 64, CacheAssoc: 4,
		MLTEntries: 32, MLTAssoc: 4,
		Snarf: true,
	})
	rep := workload.Run(m, workload.GenConfig{
		Seed: 77, Think: 4 * sim.Microsecond, Exponential: true,
		PShared: 0.7, PWrite: 0.4, SharedLines: 64, PrivateLines: 8,
		Requests: 120,
	})
	if rep.References != uint64(64*120) {
		t.Fatalf("references = %d", rep.References)
	}
	if rep.Efficiency() <= 0 || rep.Efficiency() > 1 {
		t.Fatalf("efficiency = %f", rep.Efficiency())
	}
	quiet(t, m)
}

// TestTraceReplayAcrossConfigurations replays one captured trace against
// three machine configurations; each must satisfy the invariants and
// complete every reference.
func TestTraceReplayAcrossConfigurations(t *testing.T) {
	tr := trace.Capture(16, 40, 6, 24, 8, 0.6, 0.4, 5)
	for _, cfg := range []core.Config{
		{N: 4, BlockWords: 8},
		{N: 4, BlockWords: 8, CacheLines: 8, CacheAssoc: 2},
		{N: 4, BlockWords: 8, MLTEntries: 4, MLTAssoc: 2, Snarf: true},
	} {
		m := core.MustNew(cfg)
		if err := trace.Replay(m, tr, 500*sim.Nanosecond); err != nil {
			t.Fatal(err)
		}
		mt := m.Metrics()
		if mt.Loads+mt.Stores != uint64(tr.Len()) {
			t.Errorf("config %+v: replayed %d of %d", cfg, mt.Loads+mt.Stores, tr.Len())
		}
		quiet(t, m)
	}
}

// TestMatMulBoundedCaches runs the matmul kernel with small caches and
// an L1: correctness must survive constant capacity traffic.
func TestMatMulBoundedCaches(t *testing.T) {
	m := core.MustNew(core.Config{
		N: 3, BlockWords: 8,
		CacheLines: 24, CacheAssoc: 4,
		L1Lines: 4, L1Assoc: 2,
	})
	l := workload.MatMulLayout{Dim: 8, ABase: 0, BBase: 512, CBase: 1024}
	workload.SeedMatrices(m, l)
	workers := m.Processors()
	for id := 0; id < workers; id++ {
		id := id
		m.Spawn(id, func(c *core.Ctx) { workload.MatMulWorker(c, l, id, workers) })
	}
	m.Run()
	if bad := workload.CheckMatMul(m, l); bad != 0 {
		t.Fatalf("%d wrong elements with bounded caches", bad)
	}
	quiet(t, m)
}

// TestStencilTightMLT runs the barrier stencil with a tiny modified line
// table, forcing constant overflow writebacks during synchronization.
func TestStencilTightMLT(t *testing.T) {
	m := core.MustNew(core.Config{
		N: 3, BlockWords: 8,
		MLTEntries: 2, MLTAssoc: 1,
	})
	l := workload.StencilLayout{
		Cells: 48, SrcBase: 0, DstBase: 512,
		LockAddr: 1024, CountAddr: 1026, SenseAddr: 1088,
		Iterations: 4,
	}
	m.SeedMemory(l.SrcBase+24, []uint64{800})
	barrier := &syncprim.Barrier{
		Lock:      &syncprim.QueueLock{Addr: l.LockAddr},
		CountAddr: l.CountAddr,
		SenseAddr: l.SenseAddr,
		N:         m.Processors(),
	}
	workers := m.Processors()
	for id := 0; id < workers; id++ {
		id := id
		m.Spawn(id, func(c *core.Ctx) { workload.StencilWorker(c, l, id, workers, barrier) })
	}
	m.Run()
	if got := m.ReadCoherent(l.SrcBase + 24); got >= 800 {
		t.Errorf("spike did not diffuse under tight MLT: %d", got)
	}
	quiet(t, m)
}

// TestDeterminismAcrossEverything runs the tight-cache bank scenario
// twice and requires identical final machine states.
func TestDeterminismAcrossEverything(t *testing.T) {
	run := func() (sim.Time, uint64) {
		m := core.MustNew(core.Config{
			N: 3, BlockWords: 8,
			CacheLines: 16, CacheAssoc: 4,
			MLTEntries: 8, MLTAssoc: 2,
			Snarf: true,
		})
		lock := &syncprim.QueueLock{Addr: 0}
		m.SpawnAll(func(c *core.Ctx) {
			rng := workload.NewRand(uint64(c.ID()) + 3)
			for i := 0; i < 10; i++ {
				lock.Lock(c)
				v := c.Load(3)
				c.Store(3, v+1)
				lock.Unlock(c)
				c.Sleep(sim.Time(rng.Intn(2000)))
			}
		})
		end := m.Run()
		return end, m.ReadCoherent(3)
	}
	t1, v1 := run()
	t2, v2 := run()
	if t1 != t2 || v1 != v2 {
		t.Fatalf("nondeterministic: (%v,%d) vs (%v,%d)", t1, v1, t2, v2)
	}
	if v1 != 90 {
		t.Fatalf("count = %d, want 90", v1)
	}
}
