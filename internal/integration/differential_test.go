package integration

import (
	"fmt"
	"testing"

	"multicube/internal/core"
	"multicube/internal/sim"
	"multicube/internal/singlebus"
	"multicube/internal/workload"
)

// Differential testing of the two coherent machines: the same seeded
// workload runs on the single-bus write-once baseline and on the
// smallest Multicube, and both must present the same memory semantics.
// Each shared line has exactly one writer issuing an increasing value
// sequence, so the per-address coherence order is pinned to the writer's
// program order on any correct machine; every reader's observations must
// walk that order monotonically, and the final memory images — shared
// and private — must be identical word for word across the machines.
//
// The configurations are deliberately tight (direct-mapped four-line
// caches, a bounded modified line table on the grid) so victim
// write-backs and table overflows fire constantly: the structural paths
// where the two protocols differ most are exactly the paths that must
// not change what programs observe.

const (
	dfProcs      = 4 // singlebus processors; the 2×2 grid matches
	dfBlockWords = 8
	dfWrites     = 6  // writes by each shared line's owner
	dfSteps      = 24 // actions per processor
)

// dfAction is one step of a processor's generated program.
type dfAction struct {
	write bool
	addr  uint64
	value uint64 // writes only
	line  int    // owning shared line for shared reads, else -1
	think int    // pre-action delay in nanoseconds
}

// dfPrograms derives the per-processor programs from a seed. Processor p
// owns shared line p (word address p*dfBlockWords) and is its only
// writer, with values p*1000+1, p*1000+2, ...; everyone reads random
// shared lines and reads/writes a private line of their own.
func dfPrograms(seed uint64) [][]dfAction {
	progs := make([][]dfAction, dfProcs)
	for p := 0; p < dfProcs; p++ {
		rng := workload.NewRand(seed ^ (uint64(p)+1)*0x9e3779b97f4a7c15)
		shared := uint64(p) * dfBlockWords
		private := uint64(dfProcs+p) * dfBlockWords
		nextWrite := uint64(1)
		var prog []dfAction
		for i := 0; i < dfSteps; i++ {
			think := rng.Intn(400)
			switch r := rng.Intn(4); {
			case r == 0 && nextWrite <= dfWrites:
				prog = append(prog, dfAction{write: true, addr: shared,
					value: uint64(p)*1000 + nextWrite, line: -1, think: think})
				nextWrite++
			case r == 1:
				q := rng.Intn(dfProcs)
				prog = append(prog, dfAction{addr: uint64(q) * dfBlockWords, line: q, think: think})
			case r == 2:
				prog = append(prog, dfAction{write: true, addr: private + uint64(rng.Intn(dfBlockWords)),
					value: rng.Uint64(), line: -1, think: think})
			default:
				prog = append(prog, dfAction{addr: private + uint64(rng.Intn(dfBlockWords)), line: -1, think: think})
			}
		}
		// Guarantee the full write sequence lands even if the draws were
		// read-heavy, so the final image is the same pure function of the
		// seed on both machines.
		for nextWrite <= dfWrites {
			prog = append(prog, dfAction{write: true, addr: shared,
				value: uint64(p)*1000 + nextWrite, line: -1, think: rng.Intn(400)})
			nextWrite++
		}
		progs[p] = prog
	}
	return progs
}

// dfObs records every shared-line read: reader, line, observed value.
type dfObs struct {
	reader, line int
	value        uint64
}

// dfWorker executes one processor's program through a machine-neutral
// seam; the kernel is single-threaded, so appending to the shared
// observation log from worker coroutines is safe.
func dfWorker(p int, prog []dfAction, out *[]dfObs,
	load func(uint64) uint64, store func(uint64, uint64), sleep func(sim.Time)) {
	for _, a := range prog {
		sleep(sim.Time(a.think) * sim.Nanosecond)
		if a.write {
			store(a.addr, a.value)
			continue
		}
		v := load(a.addr)
		if a.line >= 0 {
			*out = append(*out, dfObs{reader: p, line: a.line, value: v})
		}
	}
}

// dfCheckObs verifies every shared-line observation against the pinned
// coherence order: values must come from the owner's write sequence (or
// the initial zero), and each reader must walk a line's order
// monotonically.
func dfCheckObs(t *testing.T, machine string, obs []dfObs) {
	t.Helper()
	last := map[[2]int]uint64{}
	for _, o := range obs {
		idx := uint64(0)
		if o.value != 0 {
			idx = o.value - uint64(o.line)*1000
			if idx < 1 || idx > dfWrites {
				t.Fatalf("%s: proc %d read %d from shared line %d — not in the owner's write sequence",
					machine, o.reader, o.value, o.line)
			}
		}
		key := [2]int{o.reader, o.line}
		if idx < last[key] {
			t.Fatalf("%s: proc %d observed line %d going backwards: write #%d after #%d",
				machine, o.reader, o.line, idx, last[key])
		}
		last[key] = idx
	}
}

// dfImage reads back every address the workload touched.
func dfImage(read func(addr uint64) uint64) map[uint64]uint64 {
	img := make(map[uint64]uint64)
	for p := 0; p < 2*dfProcs; p++ {
		base := uint64(p) * dfBlockWords
		for w := uint64(0); w < dfBlockWords; w++ {
			img[base+w] = read(base + w)
		}
	}
	return img
}

func TestDifferentialSingleBusVsMulticube(t *testing.T) {
	seeds := []uint64{1, 42, 977}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			progs := dfPrograms(seed)

			// Single-bus baseline, tight direct-mapped caches.
			sb := singlebus.MustNew(singlebus.Config{
				Processors: dfProcs, BlockWords: dfBlockWords,
				CacheLines: 4, CacheAssoc: 1,
			})
			var sbObs []dfObs
			for p := 0; p < dfProcs; p++ {
				p := p
				sb.Spawn(p, func(c *singlebus.Ctx) {
					dfWorker(p, progs[p], &sbObs,
						func(a uint64) uint64 { return c.Load(singlebus.Addr(a)) },
						func(a, v uint64) { c.Store(singlebus.Addr(a), v) },
						c.Sleep)
				})
			}
			sb.Run()
			dfCheckObs(t, "singlebus", sbObs)
			sbImg := dfImage(func(a uint64) uint64 { return sb.ReadCoherent(singlebus.Addr(a)) })

			// The same bus and workload under the MESI snooper.
			mesi := singlebus.MustNew(singlebus.Config{
				Processors: dfProcs, BlockWords: dfBlockWords,
				CacheLines: 4, CacheAssoc: 1,
				Protocol: singlebus.ProtocolMESI,
			})
			var mesiObs []dfObs
			for p := 0; p < dfProcs; p++ {
				p := p
				mesi.Spawn(p, func(c *singlebus.Ctx) {
					dfWorker(p, progs[p], &mesiObs,
						func(a uint64) uint64 { return c.Load(singlebus.Addr(a)) },
						func(a, v uint64) { c.Store(singlebus.Addr(a), v) },
						c.Sleep)
				})
			}
			mesi.Run()
			for _, err := range singlebus.CheckInvariants(mesi) {
				t.Errorf("mesi invariant: %v", err)
			}
			dfCheckObs(t, "mesi", mesiObs)
			mesiImg := dfImage(func(a uint64) uint64 { return mesi.ReadCoherent(singlebus.Addr(a)) })
			for addr, want := range sbImg {
				if got := mesiImg[addr]; got != want {
					t.Errorf("address %d: write-once %d, mesi %d", addr, want, got)
				}
			}

			// The smallest Multicube (2×2 grid, same processor count),
			// tight caches and modified line tables.
			mc := core.MustNew(core.Config{
				N: 2, BlockWords: dfBlockWords,
				CacheLines: 4, CacheAssoc: 1,
				MLTEntries: 2, MLTAssoc: 1,
			})
			var mcObs []dfObs
			for p := 0; p < dfProcs; p++ {
				p := p
				mc.Spawn(p, func(c *core.Ctx) {
					dfWorker(p, progs[p], &mcObs,
						func(a uint64) uint64 { return c.Load(core.Addr(a)) },
						func(a, v uint64) { c.Store(core.Addr(a), v) },
						c.Sleep)
				})
			}
			mc.Run()
			for _, err := range mc.CheckInvariants() {
				t.Errorf("multicube invariant: %v", err)
			}
			dfCheckObs(t, "multicube", mcObs)
			mcImg := dfImage(func(a uint64) uint64 { return mc.ReadCoherent(core.Addr(a)) })

			// The machines must agree on every touched word.
			for addr, want := range sbImg {
				if got := mcImg[addr]; got != want {
					t.Errorf("address %d: singlebus %d, multicube %d", addr, want, got)
				}
			}
			// And both must agree with the seed-determined expectation on
			// the shared words every owner finished writing.
			for p := 0; p < dfProcs; p++ {
				want := uint64(p)*1000 + dfWrites
				if got := sbImg[uint64(p)*dfBlockWords]; got != want {
					t.Errorf("singlebus shared line %d final = %d, want %d", p, got, want)
				}
			}
			t.Logf("seed %d: %d singlebus / %d multicube shared observations agree",
				seed, len(sbObs), len(mcObs))
		})
	}
}
