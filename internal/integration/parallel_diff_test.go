package integration

import (
	"fmt"
	"testing"

	"multicube/internal/bus"
	"multicube/internal/core"
	"multicube/internal/sim"
	"multicube/internal/workload"
)

// Differential testing of the conservative parallel engine: the same
// seeded generator workload runs on the sequential kernel and on the
// column-partitioned parallel runner at several worker counts, and every
// observable result — final simulated time, the full coherent memory
// image, the rendered machine metrics (bus ops, utilizations, per-type
// transaction stats), the workload report, and the total event count —
// must be byte-identical. Run under -race (the CI job does) this also
// proves the partition ownership discipline: any touch of shared state
// outside the runner's synchronization points is a data race.

// pdResult captures everything a run may legally be judged by.
type pdResult struct {
	final    sim.Time
	metrics  string
	report   workload.Report
	image    string
	executed uint64
}

// pdRun executes one configuration. fanout pins the runner's dispatch
// path — true exercises the worker pool and its channel discipline
// (which is what -race judges), false the coordinator-inline path — so
// coverage does not depend on the host's core count. Ignored for
// sequential runs (parallel == 0).
func pdRun(t *testing.T, n, parallel int, fanout bool, cfg core.Config, wl workload.GenConfig) pdResult {
	t.Helper()
	cfg.N = n
	cfg.Parallel = parallel
	m := core.MustNew(cfg)
	if parallel > 0 {
		m.Runner().SetFanout(fanout)
	}
	rep := workload.Run(m, wl)
	for _, err := range m.CheckInvariants() {
		t.Errorf("n=%d parallel=%d invariant: %v", n, parallel, err)
	}
	// Image over every address the generator can touch: all private
	// regions plus the shared hot set.
	wl2 := wl
	bw := core.Addr(m.BlockWords())
	priv := core.Addr(wl2.PrivateLines)
	if priv == 0 {
		priv = 16
	}
	shared := core.Addr(wl2.SharedLines)
	if shared == 0 {
		shared = 64
	}
	top := (core.Addr(m.Processors())*priv + shared) * bw
	var img []byte
	for a := core.Addr(0); a < top; a++ {
		img = append(img, []byte(fmt.Sprintf("%d:%d\n", a, m.ReadCoherent(a)))...)
	}
	return pdResult{
		final:    m.Kernel().Now(),
		metrics:  m.Metrics().String(),
		report:   rep,
		image:    string(img),
		executed: m.Executed(),
	}
}

func pdCompare(t *testing.T, label string, seq, par pdResult) {
	t.Helper()
	if par.final != seq.final {
		t.Errorf("%s: final time %v, sequential %v", label, par.final, seq.final)
	}
	if par.metrics != seq.metrics {
		t.Errorf("%s: metrics diverged from sequential:\n--- sequential ---\n%s--- parallel ---\n%s",
			label, seq.metrics, par.metrics)
	}
	if par.report != seq.report {
		t.Errorf("%s: workload report %+v, sequential %+v", label, par.report, seq.report)
	}
	if par.image != seq.image {
		t.Errorf("%s: coherent memory image diverged from sequential", label)
	}
	if par.executed != seq.executed {
		t.Errorf("%s: executed %d events, sequential %d", label, par.executed, seq.executed)
	}
}

func TestParallelMatchesSequentialSweep(t *testing.T) {
	grids := []int{2, 3, 4}
	seeds := []uint64{1, 7, 42}
	workers := []int{1, 2, 4}
	if testing.Short() {
		grids, seeds, workers = grids[:2], seeds[:2], []int{2}
	}
	for _, n := range grids {
		for _, seed := range seeds {
			wl := workload.GenConfig{Seed: seed, Requests: 120, PShared: 0.4}
			seq := pdRun(t, n, 0, false, core.Config{}, wl)
			for _, w := range workers {
				for _, fanout := range []bool{true, false} {
					mode := "inline"
					if fanout {
						mode = "fanout"
					}
					t.Run(fmt.Sprintf("n%d/seed%d/workers%d/%s", n, seed, w, mode), func(t *testing.T) {
						pdCompare(t, fmt.Sprintf("n=%d seed=%d workers=%d %s", n, seed, w, mode),
							seq, pdRun(t, n, w, fanout, core.Config{}, wl))
					})
				}
			}
		}
	}
}

// TestParallelMatchesSequentialVariants covers the configuration axes
// the sweep above holds fixed: snarf, bounded caches and tables (which
// disable the guaranteed-hit lookahead analysis), exponential think
// times, write-heavy sharing, and an L1 in front of the snooper.
func TestParallelMatchesSequentialVariants(t *testing.T) {
	cases := []struct {
		name string
		cfg  core.Config
		wl   workload.GenConfig
	}{
		{"snarf", core.Config{Snarf: true},
			workload.GenConfig{Seed: 3, Requests: 150, PShared: 0.5}},
		{"bounded", core.Config{CacheLines: 64, CacheAssoc: 2, MLTEntries: 8, MLTAssoc: 2},
			workload.GenConfig{Seed: 9, Requests: 150, PShared: 0.4}},
		{"exponential", core.Config{},
			workload.GenConfig{Seed: 11, Requests: 150, Exponential: true, PShared: 0.6, PWrite: 0.5}},
		{"writeheavy", core.Config{},
			workload.GenConfig{Seed: 13, Requests: 150, PShared: 0.8, PWrite: 0.7, SharedLines: 4}},
		{"l1", core.Config{L1Lines: 8, L1Assoc: 2},
			workload.GenConfig{Seed: 17, Requests: 150, PShared: 0.4}},
		{"priority", core.Config{Arbitration: bus.Priority},
			workload.GenConfig{Seed: 19, Requests: 150, PShared: 0.5}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			seq := pdRun(t, 3, 0, false, tc.cfg, tc.wl)
			for _, w := range []int{1, 3} {
				pdCompare(t, fmt.Sprintf("%s workers=%d fanout", tc.name, w),
					seq, pdRun(t, 3, w, true, tc.cfg, tc.wl))
				pdCompare(t, fmt.Sprintf("%s workers=%d inline", tc.name, w),
					seq, pdRun(t, 3, w, false, tc.cfg, tc.wl))
			}
		})
	}
}
