// Package topology describes the Multicube family of interconnection
// topologies introduced in Section 6 of the paper: N = n^k processors,
// where each processor is connected to k buses and each bus is connected
// to n processors. A multi is a Multicube with k = 1; a hypercube is a
// Multicube with n = 2; the Wisconsin Multicube is the two-dimensional
// case (k = 2) with n scaling to about 32.
//
// The package provides node addressing, bus enumeration, home-bus mapping
// for interleaved memory, and the scalability formulas the paper derives
// (bus counts, bandwidth per processor, invalidation cost).
// The package participates in the explorer's determinism contract: no
// wall clock, no map-order dependence, no scheduling outside the chooser
// seam. multicube-vet enforces this (see internal/analysis).
//
//multicube:deterministic
package topology

import "fmt"

// Multicube describes an n^k Multicube.
type Multicube struct {
	// N is the number of processors per bus (the paper's n).
	N int
	// K is the number of dimensions — buses per processor (the paper's k).
	K int
}

// New validates and returns a Multicube description.
func New(n, k int) (Multicube, error) {
	if n < 2 {
		return Multicube{}, fmt.Errorf("topology: n = %d, need at least 2 processors per bus", n)
	}
	if k < 1 {
		return Multicube{}, fmt.Errorf("topology: k = %d, need at least 1 dimension", k)
	}
	// Guard against overflow of n^k for pathological configurations.
	p := 1
	for i := 0; i < k; i++ {
		if p > (1<<40)/n {
			return Multicube{}, fmt.Errorf("topology: n^k = %d^%d is too large", n, k)
		}
		p *= n
	}
	return Multicube{N: n, K: k}, nil
}

// MustNew is New but panics on error; for tests and fixed configurations.
func MustNew(n, k int) Multicube {
	m, err := New(n, k)
	if err != nil {
		panic(err)
	}
	return m
}

// Processors returns the total processor count N = n^k.
func (m Multicube) Processors() int {
	p := 1
	for i := 0; i < m.K; i++ {
		p *= m.N
	}
	return p
}

// Buses returns the total bus count k*n^(k-1) (Section 6).
func (m Multicube) Buses() int {
	p := m.K
	for i := 0; i < m.K-1; i++ {
		p *= m.N
	}
	return p
}

// BusesPerDimension returns the number of buses in one dimension, n^(k-1).
func (m Multicube) BusesPerDimension() int {
	p := 1
	for i := 0; i < m.K-1; i++ {
		p *= m.N
	}
	return p
}

// BandwidthPerProcessor returns the paper's scaling figure k/n: total bus
// bandwidth divided by processor count, in units of single-bus bandwidth.
func (m Multicube) BandwidthPerProcessor() float64 {
	return float64(m.K) / float64(m.N)
}

// InvalidationBusOps returns the approximate number of bus operations an
// invalidating broadcast requires, (N-1)/(n-1) (Section 6).
func (m Multicube) InvalidationBusOps() float64 {
	return float64(m.Processors()-1) / float64(m.N-1)
}

// Node is a processor address: one coordinate per dimension, each in
// [0, n). In the two-dimensional Wisconsin Multicube, Coord[0] is the row
// index and Coord[1] is the column index.
type Node struct {
	Coord []int
}

// NodeID is the linearized address of a node, in [0, Processors()).
type NodeID int

// NodeAt returns the node with the given coordinates.
func (m Multicube) NodeAt(coord ...int) (Node, error) {
	if len(coord) != m.K {
		return Node{}, fmt.Errorf("topology: %d coordinates for a %d-dimensional multicube", len(coord), m.K)
	}
	for d, c := range coord {
		if c < 0 || c >= m.N {
			return Node{}, fmt.Errorf("topology: coordinate %d = %d out of range [0,%d)", d, c, m.N)
		}
	}
	n := Node{Coord: make([]int, m.K)}
	copy(n.Coord, coord)
	return n, nil
}

// ID linearizes a node address: mixed-radix with Coord[0] most significant.
func (m Multicube) ID(n Node) NodeID {
	id := 0
	for _, c := range n.Coord {
		id = id*m.N + c
	}
	return NodeID(id)
}

// Node recovers the coordinates of a linearized node id.
func (m Multicube) Node(id NodeID) Node {
	coord := make([]int, m.K)
	v := int(id)
	for d := m.K - 1; d >= 0; d-- {
		coord[d] = v % m.N
		v /= m.N
	}
	return Node{Coord: coord}
}

// Bus identifies one bus: the dimension it runs along, plus the fixed
// coordinates of the other dimensions (in order, skipping Dim). Every node
// whose non-Dim coordinates match Fixed is attached to this bus.
type Bus struct {
	Dim   int
	Fixed []int
}

// BusOf returns the bus node n is attached to in dimension dim.
func (m Multicube) BusOf(n Node, dim int) Bus {
	fixed := make([]int, 0, m.K-1)
	for d, c := range n.Coord {
		if d != dim {
			fixed = append(fixed, c)
		}
	}
	return Bus{Dim: dim, Fixed: fixed}
}

// BusIndex linearizes a bus within its dimension, in [0, n^(k-1)).
func (m Multicube) BusIndex(b Bus) int {
	idx := 0
	for _, c := range b.Fixed {
		idx = idx*m.N + c
	}
	return idx
}

// Members returns the IDs of the n nodes attached to bus b, in order of
// their coordinate along b.Dim.
func (m Multicube) Members(b Bus) []NodeID {
	ids := make([]NodeID, m.N)
	coord := make([]int, m.K)
	for i := 0; i < m.N; i++ {
		fi := 0
		for d := range coord {
			if d == b.Dim {
				coord[d] = i
			} else {
				coord[d] = b.Fixed[fi]
				fi++
			}
		}
		ids[i] = m.ID(Node{Coord: coord})
	}
	return ids
}

// SharedBus returns the dimension of a bus common to nodes a and b and
// true, or -1 and false when the nodes do not share a bus. Two distinct
// nodes share a bus exactly when their coordinates differ in one dimension.
func (m Multicube) SharedBus(a, b Node) (int, bool) {
	diff := -1
	for d := 0; d < m.K; d++ {
		if a.Coord[d] != b.Coord[d] {
			if diff != -1 {
				return -1, false
			}
			diff = d
		}
	}
	if diff == -1 {
		return -1, false // same node: shares all buses, caller treats as local
	}
	return diff, true
}

// Distance returns the number of bus hops between two nodes: the number of
// dimensions in which their coordinates differ (Hamming distance over
// coordinates). Adjacent nodes (sharing a bus) are at distance 1.
func (m Multicube) Distance(a, b Node) int {
	d := 0
	for i := 0; i < m.K; i++ {
		if a.Coord[i] != b.Coord[i] {
			d++
		}
	}
	return d
}

// Route returns a minimal sequence of intermediate nodes from a to b,
// correcting coordinates dimension by dimension (dimension-ordered
// routing). The result includes b but not a; routing a node to itself
// returns an empty path.
func (m Multicube) Route(a, b Node) []Node {
	var path []Node
	cur := make([]int, m.K)
	copy(cur, a.Coord)
	for d := 0; d < m.K; d++ {
		if cur[d] != b.Coord[d] {
			cur[d] = b.Coord[d]
			step := Node{Coord: make([]int, m.K)}
			copy(step.Coord, cur)
			path = append(path, step)
		}
	}
	return path
}

// LineID identifies a coherency block (a cache line) by index.
type LineID uint64

// HomeBus maps a line to its home bus in the memory dimension (the column
// dimension in the Wisconsin Multicube): memory is interleaved across the
// n^(k-1) buses of that dimension by line index, so that every line has a
// home bus "in order to assure sequentiality of access in cases of
// competing, mutually exclusive requests" (Section 6).
func (m Multicube) HomeBus(line LineID) int {
	return int(line % LineID(m.BusesPerDimension()))
}

// String renders the topology as, e.g., "Multicube(n=32, k=2, N=1024)".
func (m Multicube) String() string {
	return fmt.Sprintf("Multicube(n=%d, k=%d, N=%d)", m.N, m.K, m.Processors())
}
