package topology

import "fmt"

// Grid is the two-dimensional Multicube (the Wisconsin Multicube proper):
// n rows × n columns of processors, n row buses, n column buses, with main
// memory interleaved across the column buses by line. It offers flat
// row/column addressing that the coherence machinery uses directly.
type Grid struct {
	n int
}

// NewGrid returns an n×n grid. n must be at least 2.
func NewGrid(n int) (Grid, error) {
	if n < 2 {
		return Grid{}, fmt.Errorf("topology: grid size %d, need at least 2", n)
	}
	return Grid{n: n}, nil
}

// MustNewGrid is NewGrid but panics on error.
func MustNewGrid(n int) Grid {
	g, err := NewGrid(n)
	if err != nil {
		panic(err)
	}
	return g
}

// N returns the number of processors per bus (rows == columns == n).
func (g Grid) N() int { return g.n }

// Processors returns n².
func (g Grid) Processors() int { return g.n * g.n }

// Coord is a (row, column) processor address in the grid.
type Coord struct {
	Row, Col int
}

func (c Coord) String() string { return fmt.Sprintf("(%d,%d)", c.Row, c.Col) }

// ID linearizes a coordinate in row-major order.
func (g Grid) ID(c Coord) NodeID { return NodeID(c.Row*g.n + c.Col) }

// Coord recovers the coordinate of a linearized id.
func (g Grid) Coord(id NodeID) Coord {
	return Coord{Row: int(id) / g.n, Col: int(id) % g.n}
}

// Valid reports whether c lies within the grid.
func (g Grid) Valid(c Coord) bool {
	return c.Row >= 0 && c.Row < g.n && c.Col >= 0 && c.Col < g.n
}

// HomeColumn maps a line to the column bus through which its main memory
// module is reached.
func (g Grid) HomeColumn(line LineID) int { return int(line % LineID(g.n)) }

// RowMembers returns the node IDs on row bus r in column order.
func (g Grid) RowMembers(r int) []NodeID {
	ids := make([]NodeID, g.n)
	for c := 0; c < g.n; c++ {
		ids[c] = g.ID(Coord{Row: r, Col: c})
	}
	return ids
}

// ColMembers returns the node IDs on column bus c in row order.
func (g Grid) ColMembers(c int) []NodeID {
	ids := make([]NodeID, g.n)
	for r := 0; r < g.n; r++ {
		ids[r] = g.ID(Coord{Row: r, Col: c})
	}
	return ids
}

// Multicube returns the general-topology view of the grid (k = 2).
func (g Grid) Multicube() Multicube { return Multicube{N: g.n, K: 2} }
