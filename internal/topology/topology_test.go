package topology

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(1, 2); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := New(4, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := New(2, 60); err == nil {
		t.Error("2^60 accepted")
	}
	if _, err := New(32, 2); err != nil {
		t.Errorf("32x32 rejected: %v", err)
	}
}

func TestPaperConfigurations(t *testing.T) {
	// The three named special cases from Section 6.
	cases := []struct {
		name       string
		n, k       int
		processors int
		buses      int
	}{
		{"multi (k=1)", 16, 1, 16, 1},
		{"hypercube (n=2)", 2, 6, 64, 192},
		{"Wisconsin Multicube", 32, 2, 1024, 64},
		{"figure-5 multicube", 4, 3, 64, 48},
	}
	for _, c := range cases {
		m := MustNew(c.n, c.k)
		if got := m.Processors(); got != c.processors {
			t.Errorf("%s: Processors() = %d, want %d", c.name, got, c.processors)
		}
		if got := m.Buses(); got != c.buses {
			t.Errorf("%s: Buses() = %d, want %d", c.name, got, c.buses)
		}
	}
}

func TestScalingFormulas(t *testing.T) {
	// Section 6: bandwidth per processor = k/n; invalidation ops ~ (N-1)/(n-1).
	m := MustNew(32, 2)
	if got := m.BandwidthPerProcessor(); math.Abs(got-2.0/32.0) > 1e-12 {
		t.Errorf("BandwidthPerProcessor = %g, want %g", got, 2.0/32.0)
	}
	if got := m.InvalidationBusOps(); math.Abs(got-1023.0/31.0) > 1e-12 {
		t.Errorf("InvalidationBusOps = %g, want %g", got, 1023.0/31.0)
	}
	// For a multi (k=1) the invalidation is a single bus operation.
	multi := MustNew(16, 1)
	if got := multi.InvalidationBusOps(); got != 1 {
		t.Errorf("multi InvalidationBusOps = %g, want 1", got)
	}
}

func TestIDRoundTrip(t *testing.T) {
	m := MustNew(5, 3)
	for id := NodeID(0); id < NodeID(m.Processors()); id++ {
		n := m.Node(id)
		if got := m.ID(n); got != id {
			t.Fatalf("ID(Node(%d)) = %d", id, got)
		}
		for _, c := range n.Coord {
			if c < 0 || c >= 5 {
				t.Fatalf("Node(%d) coordinate %d out of range", id, c)
			}
		}
	}
}

func TestNodeAtValidation(t *testing.T) {
	m := MustNew(4, 2)
	if _, err := m.NodeAt(1); err == nil {
		t.Error("wrong arity accepted")
	}
	if _, err := m.NodeAt(1, 4); err == nil {
		t.Error("out-of-range coordinate accepted")
	}
	n, err := m.NodeAt(3, 2)
	if err != nil {
		t.Fatalf("NodeAt(3,2): %v", err)
	}
	if m.ID(n) != NodeID(3*4+2) {
		t.Errorf("ID = %d, want %d", m.ID(n), 3*4+2)
	}
}

func TestBusMembership(t *testing.T) {
	m := MustNew(4, 2)
	n, _ := m.NodeAt(2, 3)
	rowBus := m.BusOf(n, 1) // bus running along dimension 1 (varying column)
	members := m.Members(rowBus)
	if len(members) != 4 {
		t.Fatalf("bus has %d members, want 4", len(members))
	}
	for i, id := range members {
		got := m.Node(id)
		if got.Coord[0] != 2 || got.Coord[1] != i {
			t.Errorf("member %d = %v, want (2,%d)", i, got.Coord, i)
		}
	}
	if idx := m.BusIndex(rowBus); idx != 2 {
		t.Errorf("BusIndex = %d, want 2", idx)
	}
}

func TestEveryNodeOnKBuses(t *testing.T) {
	// Defining property of the Multicube: each processor is connected to k
	// buses and each bus connects n processors.
	m := MustNew(3, 3)
	counts := make(map[NodeID]int)
	for dim := 0; dim < m.K; dim++ {
		seen := make(map[int]bool)
		for id := NodeID(0); id < NodeID(m.Processors()); id++ {
			b := m.BusOf(m.Node(id), dim)
			idx := m.BusIndex(b)
			if seen[idx] {
				continue
			}
			seen[idx] = true
			mem := m.Members(b)
			if len(mem) != m.N {
				t.Fatalf("bus dim=%d idx=%d has %d members", dim, idx, len(mem))
			}
			for _, mid := range mem {
				counts[mid]++
			}
		}
		if len(seen) != m.BusesPerDimension() {
			t.Fatalf("dimension %d has %d buses, want %d", dim, len(seen), m.BusesPerDimension())
		}
	}
	for id, c := range counts {
		if c != m.K {
			t.Errorf("node %d on %d buses, want %d", id, c, m.K)
		}
	}
}

func TestSharedBus(t *testing.T) {
	m := MustNew(4, 3)
	a, _ := m.NodeAt(1, 2, 3)
	b, _ := m.NodeAt(1, 0, 3) // differs only in dimension 1
	dim, ok := m.SharedBus(a, b)
	if !ok || dim != 1 {
		t.Errorf("SharedBus = (%d,%v), want (1,true)", dim, ok)
	}
	c, _ := m.NodeAt(0, 0, 3) // differs in two dimensions from a
	if _, ok := m.SharedBus(a, c); ok {
		t.Error("nodes differing in two dimensions reported as sharing a bus")
	}
}

func TestDistanceAndRoute(t *testing.T) {
	m := MustNew(4, 3)
	a, _ := m.NodeAt(0, 0, 0)
	b, _ := m.NodeAt(1, 0, 2)
	if d := m.Distance(a, b); d != 2 {
		t.Errorf("Distance = %d, want 2", d)
	}
	path := m.Route(a, b)
	if len(path) != 2 {
		t.Fatalf("Route length %d, want 2", len(path))
	}
	last := path[len(path)-1]
	if m.ID(last) != m.ID(b) {
		t.Errorf("route does not end at destination: %v", last.Coord)
	}
	// Each hop moves along exactly one bus.
	prev := a
	for _, step := range path {
		if _, ok := m.SharedBus(prev, step); !ok {
			t.Errorf("hop %v -> %v is not a single bus", prev.Coord, step.Coord)
		}
		prev = step
	}
	if got := m.Route(a, a); len(got) != 0 {
		t.Errorf("self route has %d hops", len(got))
	}
}

func TestPropertyRouteLengthEqualsDistance(t *testing.T) {
	m := MustNew(5, 4)
	f := func(rawA, rawB uint32) bool {
		a := m.Node(NodeID(int(rawA) % m.Processors()))
		b := m.Node(NodeID(int(rawB) % m.Processors()))
		return len(m.Route(a, b)) == m.Distance(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHomeBusCoversAllBuses(t *testing.T) {
	m := MustNew(8, 2)
	seen := make(map[int]int)
	for line := LineID(0); line < 1000; line++ {
		h := m.HomeBus(line)
		if h < 0 || h >= m.BusesPerDimension() {
			t.Fatalf("HomeBus(%d) = %d out of range", line, h)
		}
		seen[h]++
	}
	if len(seen) != m.BusesPerDimension() {
		t.Errorf("interleaving used %d home buses, want %d", len(seen), m.BusesPerDimension())
	}
}

func TestString(t *testing.T) {
	if got := MustNew(32, 2).String(); got != "Multicube(n=32, k=2, N=1024)" {
		t.Errorf("String() = %q", got)
	}
}
