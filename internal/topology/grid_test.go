package topology

import (
	"testing"
	"testing/quick"
)

func TestGridValidation(t *testing.T) {
	if _, err := NewGrid(1); err == nil {
		t.Error("grid of 1 accepted")
	}
	g, err := NewGrid(4)
	if err != nil {
		t.Fatalf("NewGrid(4): %v", err)
	}
	if g.N() != 4 || g.Processors() != 16 {
		t.Errorf("N=%d Processors=%d, want 4, 16", g.N(), g.Processors())
	}
}

func TestGridIDRoundTrip(t *testing.T) {
	g := MustNewGrid(7)
	for id := NodeID(0); id < NodeID(g.Processors()); id++ {
		c := g.Coord(id)
		if !g.Valid(c) {
			t.Fatalf("Coord(%d) = %v invalid", id, c)
		}
		if got := g.ID(c); got != id {
			t.Fatalf("ID(Coord(%d)) = %d", id, got)
		}
	}
	if g.Valid(Coord{Row: 7, Col: 0}) || g.Valid(Coord{Row: 0, Col: -1}) {
		t.Error("out-of-grid coordinate reported valid")
	}
}

func TestGridMembers(t *testing.T) {
	g := MustNewGrid(3)
	row := g.RowMembers(1)
	want := []NodeID{3, 4, 5}
	for i := range want {
		if row[i] != want[i] {
			t.Fatalf("RowMembers(1) = %v, want %v", row, want)
		}
	}
	col := g.ColMembers(2)
	want = []NodeID{2, 5, 8}
	for i := range want {
		if col[i] != want[i] {
			t.Fatalf("ColMembers(2) = %v, want %v", col, want)
		}
	}
}

func TestGridRowColumnIntersect(t *testing.T) {
	// Exactly one node lies on any (row bus, column bus) pair — the
	// property the coherence protocol relies on for request forwarding.
	g := MustNewGrid(5)
	for r := 0; r < 5; r++ {
		for c := 0; c < 5; c++ {
			common := 0
			rm := g.RowMembers(r)
			cm := g.ColMembers(c)
			for _, a := range rm {
				for _, b := range cm {
					if a == b {
						common++
					}
				}
			}
			if common != 1 {
				t.Fatalf("row %d and column %d share %d nodes", r, c, common)
			}
		}
	}
}

func TestGridHomeColumn(t *testing.T) {
	g := MustNewGrid(8)
	f := func(raw uint64) bool {
		h := g.HomeColumn(LineID(raw))
		return h >= 0 && h < 8 && h == int(raw%8)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGridMulticubeView(t *testing.T) {
	g := MustNewGrid(32)
	m := g.Multicube()
	if m.N != 32 || m.K != 2 {
		t.Fatalf("Multicube() = %v", m)
	}
	if m.Processors() != g.Processors() {
		t.Errorf("processor counts disagree: %d vs %d", m.Processors(), g.Processors())
	}
}

func TestCoordString(t *testing.T) {
	if got := (Coord{Row: 3, Col: 9}).String(); got != "(3,9)" {
		t.Errorf("String() = %q", got)
	}
}
