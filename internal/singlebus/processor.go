package singlebus

import (
	"fmt"

	"multicube/internal/bus"
	"multicube/internal/cache"
	"multicube/internal/sim"
)

// The baseline models a circa-1988 non-split ("atomic") backplane bus:
// a miss holds the bus from address cycle through data return, so a whole
// transaction is one indivisible bus operation. The data source (memory,
// or a dirty cache asserting the inhibit line) resolves during the probe
// phase; every controller then applies its write-once state change during
// the snoop phase. This atomicity is what lets the single-bus protocol
// stay simple — and what the Multicube's grid must give up and re-earn
// with the modified line tables and the memory valid bit.

// Processor is one cache controller plus its processor-side interface.
type Processor struct {
	m      *Machine
	id     int
	cache  *cache.Cache
	busIdx int

	//multicube:fpfield
	pend *pendReq

	// wbuf is the write-back buffer: dirty victims flushed to the bus
	// but not yet delivered. Like the hardware buffer it models, it is
	// snooped — a READ or READ-INV for a buffered line is supplied from
	// here (and cancels the queued flush) so the block's only copy is
	// never invisible between victimization and the write-back's bus
	// grant.
	//
	//multicube:fpfield
	wbuf []*op

	// gen counts mutations of fingerprint-visible processor state (cache
	// contents, pending request); bumped conservatively at the mutating
	// entry points so FPCache can skip rehashing unchanged processors.
	//
	//multicube:gencounter
	gen uint64

	loads, stores, hits uint64
	invalidations       uint64
}

type pendReq struct {
	line    cache.Line
	write   bool
	offset  int
	value   uint64
	started sim.Time
	done    func(uint64)
}

// ID returns the processor index.
func (p *Processor) ID() int { return p.id }

// Cache exposes the cache for tests.
func (p *Processor) Cache() *cache.Cache { return p.cache }

// Stats reports reference counts.
func (p *Processor) Stats() (loads, stores, hits, invalidations uint64) {
	return p.loads, p.stores, p.hits, p.invalidations
}

// LoadAsync reads the word at addr; done receives the value.
func (p *Processor) LoadAsync(addr Addr, done func(uint64)) {
	p.gen++
	p.loads++
	line := cache.Line(addr / Addr(p.m.cfg.BlockWords))
	off := int(addr % Addr(p.m.cfg.BlockWords))
	if e, ok := p.cache.Access(line); ok {
		p.hits++
		done(e.Data[off])
		return
	}
	p.begin(&pendReq{line: line, offset: off, done: done})
	p.miss(opRead)
}

// StoreAsync writes value to addr; done fires when the write is complete
// (including the write-once write-through bus operation when required)
// and receives the word value the store overwrote at commit time — the
// coherence-order predecessor a sequential-consistency witness needs.
func (p *Processor) StoreAsync(addr Addr, value uint64, done func(old uint64)) {
	p.gen++
	p.stores++
	line := cache.Line(addr / Addr(p.m.cfg.BlockWords))
	off := int(addr % Addr(p.m.cfg.BlockWords))
	if e, ok := p.cache.Access(line); ok {
		switch e.State {
		case Reserved, Dirty:
			// Local write; memory diverges.
			p.hits++
			old := e.Data[off]
			e.Data[off] = value
			e.State = Dirty
			done(old)
			return
		case Valid:
			// First write: write through one word, invalidating other
			// copies; the line becomes Reserved.
			p.begin(&pendReq{line: line, write: true, offset: off, value: value, done: done})
			p.m.bus.Request(p.busIdx, p.m.wordOp(p.id, line, off, value))
			return
		}
	}
	// Write miss: read the block with intent to modify; the line arrives
	// Dirty with the new word applied.
	p.begin(&pendReq{line: line, write: true, offset: off, value: value, done: done})
	p.miss(opReadInv)
}

//multicube:fpexempt called only from entry points that bump (LoadAsync/StoreAsync/snoop)
func (p *Processor) begin(r *pendReq) {
	if p.pend != nil {
		panic(fmt.Sprintf("singlebus: processor %d overlapping requests", p.id))
	}
	r.started = p.m.k.Now()
	p.pend = r
}

// miss moves a dirty victim into the write-back buffer if needed, then
// issues the atomic read transaction.
//
//multicube:fpexempt called only from entry points that bump (LoadAsync/StoreAsync/snoop)
func (p *Processor) miss(kind opKind) {
	line := p.pend.line
	if v := p.cache.SelectVictim(line); v != nil && v.State == Dirty {
		wb := p.m.dataOp(opWriteBack, p.id, v.Line, v.Data)
		p.wbuf = append(p.wbuf, wb)
		p.m.bus.Request(p.busIdx, wb)
		p.cache.Invalidate(v.Line)
	}
	p.m.bus.Request(p.busIdx, p.m.readOp(kind, p.id, line))
}

// wbufFind returns the live buffered write-back for line, if any.
func (p *Processor) wbufFind(line cache.Line) *op {
	for _, wb := range p.wbuf {
		if wb.line == line {
			return wb
		}
	}
	return nil
}

//multicube:fpexempt called only from entry points that bump (LoadAsync/StoreAsync/snoop)
func (p *Processor) wbufRemove(wb *op) {
	for i, o := range p.wbuf {
		if o == wb {
			p.wbuf = append(p.wbuf[:i], p.wbuf[i+1:]...)
			return
		}
	}
}

//multicube:fpexempt called only from entry points that bump (LoadAsync/StoreAsync/snoop)
func (p *Processor) complete(value uint64) {
	r := p.pend
	p.pend = nil
	p.m.txnCount++
	p.m.txnLatency += p.m.k.Now() - r.started
	r.done(value)
}

// probe resolves the data source: a cache holding the line dirty asserts
// the inhibit line and supplies the block in place of memory. A
// write-through's originator confirms that its copy is still Valid at
// arbitration win; otherwise the operation is void.
func (p *Processor) probe(o *op) {
	switch o.kind {
	case opRead, opReadInv:
		if wb := p.wbufFind(o.line); wb != nil {
			// The block's only copy sits in our write-back buffer; the
			// buffer answers the probe like the dirty cache entry it
			// was. This also covers our own re-read of a line we just
			// victimized — memory is stale until the flush delivers.
			o.inhibit = true
			o.data = append([]uint64(nil), wb.data...)
		} else if o.origin != p.id {
			if e, ok := p.cache.Lookup(o.line); ok {
				if e.State == Dirty {
					o.inhibit = true
					o.data = append([]uint64(nil), e.Data...)
				}
				// MESI sharers wire: any valid copy elsewhere forces the
				// read-miss originator down to Shared. A write-back buffer
				// supply deliberately does not assert it — the victimized
				// copy is gone once the flush cancels, leaving the reader
				// the only holder.
				if p.m.mesi() {
					o.shared = true
				}
			}
		}
	case opWriteWord:
		if o.origin == p.id {
			if e, ok := p.cache.Lookup(o.line); ok && e.State == Valid {
				o.confirmed = true
			}
		}
	}
}

// snoop applies the write-once state transitions at the end of the
// transaction.
func (p *Processor) snoop(o *op) {
	p.gen++
	e, have := p.cache.Lookup(o.line)
	if o.kind == opRead || o.kind == opReadInv {
		if wb := p.wbufFind(o.line); wb != nil {
			// The probe answered from our write-back buffer: memory is
			// updated by this very transaction (READ reflection) or the
			// requester takes the block dirty (READ-INV). Either way
			// the queued flush is stale the moment it would deliver.
			wb.canceled = true
			p.wbufRemove(wb)
		}
	}
	switch o.kind {
	case opWriteBack:
		if o.origin == p.id {
			p.wbufRemove(o) // delivered; no-op if it was canceled
		}
	case opRead:
		if o.origin == p.id {
			st := Valid
			if p.m.mesi() && !o.shared {
				// No other cache held the line: install Exclusive
				// (Reserved slot) so a later store stays off the bus.
				st = Reserved
			}
			p.fill(o, st)
			return
		}
		if have {
			switch e.State {
			case Dirty, Reserved:
				// Another processor read our exclusive line: fall back
				// to Valid; memory is updated by the same transaction.
				e.State = Valid
			}
		}
	case opReadInv:
		if o.origin == p.id {
			p.fill(o, Dirty)
			return
		}
		if have {
			p.cache.Invalidate(o.line)
			p.invalidations++
		}
	case opWriteWord:
		if o.origin == p.id {
			if o.confirmed {
				// Our write-through completed: apply it, claim Reserved —
				// or Modified under MESI, which has no written-exactly-once
				// state (the bus word doubles as the invalidation).
				old := e.Data[o.offset]
				e.Data[o.offset] = o.value
				st := Reserved
				if p.m.mesi() {
					st = Dirty
				}
				e.State = st
				if p.pend != nil && p.pend.line == o.line && p.pend.write {
					p.complete(old)
				}
				return
			}
			// Our copy was invalidated while we waited for the bus: the
			// write-through is void; retry as a write miss.
			p.miss(opReadInv)
		} else if o.confirmed && have {
			p.cache.Invalidate(o.line)
			p.invalidations++
		}
	}
}

// fill installs the transaction's data block at the originator and
// completes the processor request. Writes complete with the word value
// they overwrote; reads with the word value observed.
//
//multicube:fpexempt called only from entry points that bump (LoadAsync/StoreAsync/snoop)
func (p *Processor) fill(o *op, state cache.State) {
	if p.pend == nil || p.pend.line != o.line {
		panic(fmt.Sprintf("singlebus: processor %d fill without matching request", p.id))
	}
	p.cache.Insert(o.line, state, o.data)
	e, _ := p.cache.Lookup(o.line)
	r := p.pend
	if r.write {
		old := e.Data[r.offset]
		e.Data[r.offset] = r.value
		p.complete(old)
		return
	}
	p.complete(e.Data[r.offset])
}

type procAgent struct{ p *Processor }

func (a procAgent) Probe(b *bus.Bus, pkt bus.Packet) { a.p.probe(pkt.(*op)) }
func (a procAgent) Snoop(b *bus.Bus, pkt bus.Packet) { a.p.snoop(pkt.(*op)) }

// Ctx runs programs on the baseline machine, mirroring core.Ctx.
type Ctx struct {
	proc *sim.Proc
	p    *Processor
}

// Spawn runs fn as a program on processor id.
func (m *Machine) Spawn(id int, fn func(*Ctx)) {
	p := m.procs[id]
	m.k.Spawn(fmt.Sprintf("cpu%d", id), func(proc *sim.Proc) {
		fn(&Ctx{proc: proc, p: p})
	})
}

// ID returns the processor id.
func (c *Ctx) ID() int { return c.p.id }

// Now returns simulated time.
func (c *Ctx) Now() sim.Time { return c.proc.Now() }

// Sleep models local computation.
func (c *Ctx) Sleep(d sim.Time) { c.proc.Sleep(d) }

// Load blocks for a read.
func (c *Ctx) Load(addr Addr) uint64 {
	var v uint64
	c.proc.Suspend(func(wake func()) {
		c.p.LoadAsync(addr, func(got uint64) { v = got; wake() })
	})
	return v
}

// Store blocks for a write.
func (c *Ctx) Store(addr Addr, value uint64) {
	c.proc.Suspend(func(wake func()) {
		c.p.StoreAsync(addr, value, func(uint64) { wake() })
	})
}
