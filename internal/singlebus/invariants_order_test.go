package singlebus

import (
	"fmt"
	"strings"
	"testing"

	"multicube/internal/cache"
)

// TestCheckInvariantsDeterministicOrder guards the determinism fix in
// CheckInvariants: lines are visited in sorted order, so the error list
// for a many-line corruption is identical run to run and ascending by
// line rather than following map iteration order.
func TestCheckInvariantsDeterministicOrder(t *testing.T) {
	build := func() *Machine {
		m := MustNew(Config{Processors: 3, BlockWords: 2})
		for l := 0; l < 8; l++ {
			m.Processor(0).Cache().Insert(cache.Line(l), Dirty, nil)
			m.Processor(1).Cache().Insert(cache.Line(l), Dirty, nil)
		}
		return m
	}
	render := func(errs []error) string {
		var b strings.Builder
		for _, e := range errs {
			b.WriteString(e.Error())
			b.WriteByte('\n')
		}
		return b.String()
	}

	want := render(CheckInvariants(build()))
	if want == "" {
		t.Fatal("doubly-dirty lines produced no invariant errors")
	}
	for i := 0; i < 30; i++ {
		if got := render(CheckInvariants(build())); got != want {
			t.Fatalf("run %d error list differs:\n--- got ---\n%s--- want ---\n%s", i, got, want)
		}
	}

	prev := -1
	seen := 0
	for _, line := range strings.Split(want, "\n") {
		var l, n int
		if _, err := fmt.Sscanf(line, "line %d exclusive in %d caches", &l, &n); err != nil {
			continue
		}
		seen++
		if l <= prev {
			t.Fatalf("multiple-holder errors not ascending by line:\n%s", want)
		}
		prev = l
	}
	if seen != 8 {
		t.Fatalf("expected 8 multiple-holder errors, found %d:\n%s", seen, want)
	}
}
