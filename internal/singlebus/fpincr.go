package singlebus

import (
	"multicube/internal/bus"
	"multicube/internal/cache"
	"multicube/internal/memory"
)

// FPCache is the incremental companion of Machine.Fingerprint, mirroring
// internal/coherence's FPCache on the baseline machine. Per-processor
// cache/pending hashes and the memory hash are cached behind generation
// counters; the bus section and the pending-event multiset are rebuilt
// every choice point because queued and in-flight ops mutate
// fingerprint-visible fields (inhibit/confirmed/canceled) in place. The
// hash values differ from Machine.Fingerprint but induce the same
// equivalence partition (see internal/coherence/fpincr.go).

type sbEvRec struct {
	kind evKind // reuses the coherence-style discriminants locally
	op   *op
	row  int
	rest uint64
}

type evKind uint8

const (
	evGrant evKind = iota
	evDeliver
	evExtra
	evOpaque
)

// ExtraTagFunc describes a driver-owned kernel event tag: row is the
// issuing processor (permuted during the combine) and rest hashes the
// processor-independent remainder.
type ExtraTagFunc func(tag any) (row int, rest uint64, ok bool)

// FPCache incrementally fingerprints one Machine. Not safe for
// concurrent use; each explorer worker owns one (pooled across runs).
type FPCache struct {
	m *Machine
	n int

	procH   []uint64
	procGen []uint64
	memH    uint64
	memGen  uint64

	busy     bool
	inflight *op
	perSrc   [][]*op
	nonEmpty int

	evs []sbEvRec
	evH []uint64

	recomputes uint64
	reused     uint64
}

// NewFPCache returns a cache bound to m with every component dirty.
func NewFPCache(m *Machine) *FPCache {
	f := &FPCache{}
	f.Reset(m)
	return f
}

// Reset rebinds the cache to m (possibly a fresh machine from a pooled
// run) and marks every component dirty.
func (f *FPCache) Reset(m *Machine) {
	n := len(m.procs)
	f.m = m
	f.recomputes, f.reused = 0, 0
	if f.n != n {
		f.n = n
		f.procH = make([]uint64, n)
		f.procGen = make([]uint64, n)
	}
	const dirty = ^uint64(0)
	for i := 0; i < n; i++ {
		f.procGen[i] = dirty
	}
	f.memGen = dirty
	f.evs = f.evs[:0]
}

// Stats reports how many component hashes were rebuilt vs served from
// cache since the last Reset.
func (f *FPCache) Stats() (recomputes, reused uint64) { return f.recomputes, f.reused }

// BeginPoint refreshes dirty components and snapshots the bus and the
// pending event set; call once per choice point, before FP.
func (f *FPCache) BeginPoint(extra ExtraTagFunc) {
	m := f.m
	for i, p := range m.procs {
		if p.gen != f.procGen[i] {
			f.procH[i] = procHash(p)
			f.procGen[i] = p.gen
			f.recomputes++
		} else {
			f.reused++
		}
	}
	if m.mem.gen != f.memGen {
		f.memH = sbMemHash(m.mem)
		f.memGen = m.mem.gen
		f.recomputes++
	} else {
		f.reused++
	}

	f.busy = m.bus.Busy()
	f.inflight = nil
	if p := m.bus.Inflight(); p != nil {
		f.inflight = p.(*op)
	}
	if len(f.perSrc) < m.bus.Agents() {
		f.perSrc = make([][]*op, m.bus.Agents())
	}
	for i := range f.perSrc {
		f.perSrc[i] = f.perSrc[i][:0]
	}
	f.nonEmpty = 0
	m.bus.ForEachQueued(func(src int, pkt bus.Packet) {
		if len(f.perSrc[src]) == 0 {
			f.nonEmpty++
		}
		f.perSrc[src] = append(f.perSrc[src], pkt.(*op))
	})

	f.evs = f.evs[:0]
	m.k.ForEachPendingTag(func(tag any) {
		var e sbEvRec
		switch t := tag.(type) {
		case bus.GrantTag:
			e.kind = evGrant
		case bus.DeliverTag:
			e.kind = evDeliver
			e.op = t.Pkt.(*op)
		default:
			e.kind = evOpaque
			if extra != nil {
				if row, rest, ok := extra(tag); ok {
					e.kind = evExtra
					e.row, e.rest = row, rest
				}
			}
		}
		f.evs = append(f.evs, e)
	})
}

// FP combines the cached and per-point state under the processor
// relabeling perm (inv its inverse, both caller-owned).
func (f *FPCache) FP(perm, inv []int) uint64 {
	n := f.n
	h := sbfnvOffset
	for cp := 0; cp < n; cp++ {
		h.u64(f.procH[inv[cp]])
	}
	h.u64(f.memH)

	h.bit(f.busy)
	h.bit(f.inflight != nil)
	if f.inflight != nil {
		h.u64(f.inflight.fp(perm))
	}
	h.u64(uint64(f.nonEmpty))
	emit := func(canonSrc int, ops []*op) {
		if len(ops) == 0 {
			return
		}
		h.u64(uint64(canonSrc))
		h.u64(uint64(len(ops)))
		for _, o := range ops {
			h.u64(o.fp(perm))
		}
	}
	// Processor sources in canonical order; the memory module attaches
	// last and maps to itself.
	for cp := 0; cp < n; cp++ {
		if src := inv[cp]; src < len(f.perSrc) {
			emit(cp, f.perSrc[src])
		}
	}
	for src := n; src < len(f.perSrc); src++ {
		emit(src, f.perSrc[src])
	}

	if cap(f.evH) < len(f.evs) {
		f.evH = make([]uint64, 0, len(f.evs)*2)
	}
	evH := f.evH[:0]
	for i := range f.evs {
		e := &f.evs[i]
		eh := sbfnvOffset
		switch e.kind {
		case evGrant:
			eh.u64(0x11)
		case evDeliver:
			eh.u64(0x12)
			eh.u64(e.op.fp(perm))
		case evExtra:
			eh.u64(0x13)
			eh.u64(uint64(perm[e.row]))
			eh.u64(e.rest)
		default:
			eh.u64(0x1f)
		}
		v := uint64(eh)
		j := len(evH)
		evH = append(evH, v)
		for j > 0 && evH[j-1] > v {
			evH[j] = evH[j-1]
			j--
		}
		evH[j] = v
	}
	f.evH = evH
	h.u64(uint64(len(evH)))
	for _, v := range evH {
		h.u64(v)
	}
	return uint64(h)
}

// procHash hashes one processor's cache contents and pending request —
// the same fields Machine.Fingerprint walks, none of which name a
// processor index.
func procHash(p *Processor) uint64 {
	h := sbfnvOffset
	h.u64(0x01)
	sub := sbfnvOffset
	count := 0
	p.cache.ForEach(func(e *cache.Entry) {
		count++
		sub.u64(uint64(e.Line))
		sub.byte(byte(e.State))
		for _, w := range e.Data {
			sub.u64(w)
		}
	})
	h.u64(uint64(count))
	h.u64(uint64(sub))
	h.u64(0x02)
	h.bit(p.pend != nil)
	if r := p.pend; r != nil {
		h.u64(uint64(r.line))
		h.bit(r.write)
		h.u64(uint64(r.offset))
		h.u64(r.value)
	}
	return uint64(h)
}

func sbMemHash(mm *memModule) uint64 {
	h := sbfnvOffset
	h.u64(0x03)
	sub := sbfnvOffset
	count := 0
	mm.store.ForEach(func(line memory.Line, valid bool, data []uint64) {
		count++
		sub.u64(uint64(line))
		sub.bit(valid)
		for _, w := range data {
			sub.u64(w)
		}
	})
	h.u64(uint64(count))
	h.u64(uint64(sub))
	return uint64(h)
}
