package singlebus

import (
	"fmt"
	"sort"

	"multicube/internal/bus"
	"multicube/internal/cache"
	"multicube/internal/memory"
)

// memModule is main memory on the shared bus. It replies to reads unless
// a dirty cache asserted the inhibit line, and absorbs write-backs,
// write-throughs and cache-supplied data (which double as memory
// updates in write-once).
type memModule struct {
	m      *Machine
	store  *memory.Store
	busIdx int

	// gen counts mutations of fingerprint-visible memory state; every
	// store mutation happens inside snoop, which bumps it.
	//
	//multicube:gencounter
	gen uint64
}

// probe supplies the block from memory when no dirty cache inhibited.
// Memory is attached after every cache, so the inhibit line has settled
// by the time this runs.
func (mm *memModule) probe(o *op) {
	if (o.kind == opRead || o.kind == opReadInv) && !o.inhibit {
		o.data = mm.store.Read(memory.Line(o.line))
	}
}

func (mm *memModule) snoop(o *op) {
	mm.gen++
	if mm.m.OpLog != nil {
		mm.m.OpLog(o.origin, o.String())
	}
	switch o.kind {
	case opRead:
		if o.inhibit {
			// The dirty cache supplied the block; the same transaction
			// updates memory and the line falls back to Valid.
			mm.store.Write(memory.Line(o.line), o.data)
		}
	case opReadInv:
		// The block is going dirty at the requester; memory keeps its
		// (possibly stale) contents, as in any write-back protocol.
	case opWriteBack:
		if o.canceled {
			return // the line was re-read or re-claimed off the buffer
		}
		mm.store.Write(memory.Line(o.line), o.data)
	case opWriteWord:
		if !o.confirmed {
			return // void write-through; the originator retries
		}
		// Write-once write-through: memory absorbs the single word.
		buf := mm.store.Peek(memory.Line(o.line))
		buf[o.offset] = o.value
		mm.store.Write(memory.Line(o.line), buf)
	}
}

type memAgent struct{ mm *memModule }

func (a memAgent) Probe(b *bus.Bus, pkt bus.Packet) { a.mm.probe(pkt.(*op)) }
func (a memAgent) Snoop(b *bus.Bus, pkt bus.Packet) { a.mm.snoop(pkt.(*op)) }

// CheckInvariants verifies write-once global state at quiescence:
// at most one Reserved/Dirty copy per line, no Valid copies alongside a
// Dirty one, and Valid copies equal to memory.
func CheckInvariants(m *Machine) []error {
	var errs []error
	type holderInfo struct {
		id    int
		state cache.State
	}
	holders := make(map[cache.Line][]holderInfo)
	sharers := make(map[cache.Line][]int)
	for _, p := range m.procs {
		p.cache.ForEach(func(e *cache.Entry) {
			switch e.State {
			case Dirty, Reserved:
				holders[e.Line] = append(holders[e.Line], holderInfo{p.id, e.State})
			case Valid:
				sharers[e.Line] = append(sharers[e.Line], p.id)
			}
		})
	}
	// Iterate lines in sorted order so the error list — which tests and
	// counterexample reports compare textually — is identical run to run.
	holderLines := make([]cache.Line, 0, len(holders))
	for line := range holders {
		holderLines = append(holderLines, line)
	}
	sort.Slice(holderLines, func(i, j int) bool { return holderLines[i] < holderLines[j] })
	sharerLines := make([]cache.Line, 0, len(sharers))
	for line := range sharers {
		sharerLines = append(sharerLines, line)
	}
	sort.Slice(sharerLines, func(i, j int) bool { return sharerLines[i] < sharerLines[j] })
	for _, line := range holderLines {
		hs := holders[line]
		if len(hs) > 1 {
			errs = append(errs, errf("line %d exclusive in %d caches", line, len(hs)))
		}
		if len(sharers[line]) > 0 {
			errs = append(errs, errf("line %d exclusive at %d but shared at %v", line, hs[0].id, sharers[line]))
		}
	}
	for _, line := range sharerLines {
		ids := sharers[line]
		if _, dirty := holders[line]; dirty {
			continue
		}
		want := m.mem.store.Peek(memory.Line(line))
		for _, id := range ids {
			e, ok := m.procs[id].cache.Lookup(line)
			if !ok {
				continue
			}
			for i := range want {
				if e.Data[i] != want[i] {
					errs = append(errs, errf("line %d word %d: cache %d has %d, memory %d", line, i, id, e.Data[i], want[i]))
					break
				}
			}
		}
	}
	// Reserved lines must equal memory (written through exactly once).
	for _, line := range holderLines {
		hs := holders[line]
		for _, h := range hs {
			if h.state != Reserved {
				continue
			}
			want := m.mem.store.Peek(memory.Line(line))
			e, _ := m.procs[h.id].cache.Lookup(line)
			for i := range want {
				if e.Data[i] != want[i] {
					errs = append(errs, errf("reserved line %d word %d differs from memory", line, i))
					break
				}
			}
		}
	}
	return errs
}

func errf(format string, args ...interface{}) error {
	return fmt.Errorf(format, args...)
}
