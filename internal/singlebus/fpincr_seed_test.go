package singlebus

import "testing"

// TestSeedMemoryBumpsMemoryGeneration is the regression test for a bump
// the genbump analyzer itself flagged during the audit: SeedMemory
// mutates memory contents directly, so a fingerprint taken after seeding
// must not reuse the cached memory hash. Without the bump, a snapshot
// taken before seeding makes the post-seed state hash-equal to the
// pre-seed one and the explorer would merge distinct states.
func TestSeedMemoryBumpsMemoryGeneration(t *testing.T) {
	m := MustNew(Config{Processors: 2, BlockWords: 2})
	ident := []int{0, 1}

	f := NewFPCache(m)
	f.BeginPoint(nil)
	before := f.FP(ident, ident)

	gen := m.mem.gen
	m.SeedMemory(0, []uint64{7})
	if m.mem.gen == gen {
		t.Fatal("SeedMemory did not bump the memory generation counter")
	}

	f.BeginPoint(nil)
	after := f.FP(ident, ident)
	if before == after {
		t.Fatal("fingerprint unchanged after SeedMemory: seeded memory would be merged with the unseeded state")
	}
}
