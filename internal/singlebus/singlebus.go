// Package singlebus implements the comparison baseline: a conventional
// single-bus "multi" (Bell's term) with Goodman's write-once snooping
// cache protocol [Good83] — the machine class the paper says is "limited
// to some tens of processors" because every cache controller must observe
// every bus transaction on one shared bus.
//
// Write-once states per line:
//
//	Invalid  — not present.
//	Valid    — clean, possibly shared; memory is current.
//	Reserved — written exactly once since loaded; memory is current and
//	           this is the only cached copy.
//	Dirty    — written more than once; memory is stale and this is the
//	           only cached copy.
//
// The first write to a Valid line is written through (one word on the
// bus), invalidating other copies; subsequent writes stay local.
//
// Config.Protocol selects an alternative snooper on the same machine:
// ProtocolMESI runs the four-state invalidation protocol the later
// snooping literature converged on, reusing the write-once state slots
// (Valid ↦ Shared, Reserved ↦ Exclusive-clean, Dirty ↦ Modified). MESI
// differs from write-once in exactly two transitions — a read miss that
// no other cache holds installs Exclusive instead of Valid (the sharers
// wire, op.shared, is sampled during the probe phase), and the
// invalidating write-through from Shared leaves the line Modified
// instead of Reserved, since MESI has no written-exactly-once state.
// Everything else — the atomic bus, the dirty inhibit/supply, the
// write-back buffer, the invariant checker — is protocol-independent
// and shared verbatim, which is what makes the two snoopers
// differentially comparable.
//
// The package participates in the explorer's determinism contract: no
// wall clock, no map-order dependence, no scheduling outside the chooser
// seam. multicube-vet enforces this (see internal/analysis).
//
//multicube:deterministic
package singlebus

import (
	"fmt"

	"multicube/internal/bus"
	"multicube/internal/cache"
	"multicube/internal/memory"
	"multicube/internal/sim"
)

// Line states. Under ProtocolMESI the same slots carry the MESI
// meanings: Valid is Shared, Reserved is Exclusive (clean), Dirty is
// Modified — every invariant the checker states in terms of the slots
// (single exclusive copy, clean states equal memory) holds for both
// readings.
const (
	Invalid              = cache.Invalid
	Valid    cache.State = 1
	Reserved cache.State = 2
	Dirty    cache.State = 3
)

// Protocol names for Config.Protocol.
const (
	// ProtocolWriteOnce is Goodman's write-once snooper, the default.
	ProtocolWriteOnce = ""
	// ProtocolMESI is the four-state invalidation snooper.
	ProtocolMESI = "mesi"
)

// Addr is a word address.
type Addr uint64

// Config describes the machine.
type Config struct {
	// Processors on the single bus.
	Processors int
	// BlockWords is the cache block size in bus words.
	BlockWords int
	// CacheLines/CacheAssoc size each cache; zero lines means unbounded.
	CacheLines int
	CacheAssoc int
	// Timing: per-word bus time, address words, and device latencies,
	// matching the Multicube's constants for apples-to-apples benches.
	WordTime      sim.Time
	AddrWords     int
	CacheLatency  sim.Time
	MemoryLatency sim.Time
	// Protocol selects the snooper: ProtocolWriteOnce (the default) or
	// ProtocolMESI.
	Protocol string
}

func (c *Config) fillDefaults() {
	if c.BlockWords == 0 {
		c.BlockWords = 16
	}
	if c.WordTime == 0 {
		c.WordTime = 50 * sim.Nanosecond
	}
	if c.AddrWords == 0 {
		c.AddrWords = 1
	}
	if c.CacheLatency == 0 {
		c.CacheLatency = 750 * sim.Nanosecond
	}
	if c.MemoryLatency == 0 {
		c.MemoryLatency = 750 * sim.Nanosecond
	}
}

func (c *Config) validate() error {
	if c.Processors < 1 {
		return fmt.Errorf("singlebus: %d processors", c.Processors)
	}
	if c.BlockWords < 1 {
		return fmt.Errorf("singlebus: block size %d", c.BlockWords)
	}
	if c.Protocol != ProtocolWriteOnce && c.Protocol != ProtocolMESI {
		return fmt.Errorf("singlebus: unknown protocol %q", c.Protocol)
	}
	return nil
}

// op kinds on the bus.
type opKind uint8

const (
	opRead      opKind = iota // atomic block read (address through data)
	opReadInv                 // atomic block read with intent to modify
	opWriteWord               // write-once single-word write-through
	opWriteBack               // dirty victim flush
)

var opNames = [...]string{"READ", "READ-INV", "WRITE-WORD", "WRITE-BACK"}

func (k opKind) String() string { return opNames[k] }

type op struct {
	kind   opKind
	origin int
	line   cache.Line
	offset int
	value  uint64
	data   []uint64
	// inhibit is asserted during Probe by a cache holding the line
	// dirty: memory must not reply, the cache will.
	inhibit bool
	// confirmed is asserted during Probe by a write-through's originator
	// when its copy is still Valid at arbitration win; an unconfirmed
	// write-through is void (the originator retries as a write miss) and
	// no other agent acts on it.
	confirmed bool
	// canceled voids a queued write-back whose line was re-read or
	// re-claimed off the originator's write-back buffer before the
	// write-back won the bus: the supplying transaction already updated
	// memory (READ) or transferred ownership (READ-INV), so memory must
	// ignore the stale flush when it finally delivers.
	canceled bool
	// shared is the MESI sharers wire: asserted during Probe by any
	// non-origin cache holding the line in a valid state, it tells a
	// read-miss originator to install Shared rather than Exclusive.
	// Never asserted in write-once mode, so write-once fingerprints are
	// unchanged.
	shared bool
	occ    sim.Time
}

func (o *op) Occupancy() sim.Time { return o.occ }

func (o *op) String() string {
	switch o.kind {
	case opWriteWord:
		return fmt.Sprintf("%v(line %d word %d = %d) by proc%d", o.kind, o.line, o.offset, o.value, o.origin)
	default:
		return fmt.Sprintf("%v(line %d) by proc%d", o.kind, o.line, o.origin)
	}
}

// Machine is the single-bus multiprocessor.
type Machine struct {
	k     *sim.Kernel
	cfg   Config
	bus   *bus.Bus
	procs []*Processor
	mem   *memModule

	// OpLog, when set, observes every delivered bus operation (origin
	// attach index plus a rendered description); the model checker's
	// replay uses it for annotated counterexample traces.
	OpLog func(origin int, op string)

	txnCount   uint64
	txnLatency sim.Time

	// fpIdent is the cached identity permutation PacketFP hashes under.
	fpIdent []int
}

// New builds the machine on a fresh kernel.
func New(cfg Config) (*Machine, error) {
	cfg.fillDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	k := sim.NewKernel()
	m := &Machine{k: k, cfg: cfg}
	m.bus = bus.New(k, "bus", bus.FIFO)
	for i := 0; i < cfg.Processors; i++ {
		c, err := cache.New(cache.Config{Lines: cfg.CacheLines, Assoc: cfg.CacheAssoc, BlockWords: cfg.BlockWords})
		if err != nil {
			return nil, err
		}
		p := &Processor{m: m, id: i, cache: c}
		p.busIdx = m.bus.Attach(procAgent{p})
		m.procs = append(m.procs, p)
	}
	st, err := memory.NewStore(cfg.BlockWords)
	if err != nil {
		return nil, err
	}
	m.mem = &memModule{m: m, store: st}
	m.mem.busIdx = m.bus.Attach(memAgent{m.mem})
	return m, nil
}

// MustNew is New but panics on error.
func MustNew(cfg Config) *Machine {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Kernel exposes the simulation kernel.
func (m *Machine) Kernel() *sim.Kernel { return m.k }

// mesi reports whether the MESI snooper is selected.
func (m *Machine) mesi() bool { return m.cfg.Protocol == ProtocolMESI }

// EnableModelChecking puts the machine in exhaustive-exploration mode,
// mirroring coherence.System.EnableModelChecking: every pending kernel
// event is a dispatch candidate (the untimed interpretation) and bus
// grants are deferred so all queued requests reach arbitration. The
// chooser then decides every ordering. Used by internal/mc to check the
// write-once baseline protocol through the same seam as the Multicube.
func (m *Machine) EnableModelChecking(ch sim.Chooser) {
	m.k.SetChooser(ch, true)
	m.bus.SetChooser(ch, true)
}

// Bus exposes the shared bus for utilization metrics.
func (m *Machine) Bus() *bus.Bus { return m.bus }

// Processor returns processor i.
func (m *Machine) Processor(i int) *Processor { return m.procs[i] }

// Processors returns the processor count.
func (m *Machine) Processors() int { return len(m.procs) }

// Run drains the machine.
func (m *Machine) Run() sim.Time { return m.k.Run() }

// SeedMemory writes words directly into memory.
func (m *Machine) SeedMemory(addr Addr, words []uint64) {
	m.mem.gen++ // fingerprint-visible: seeding after a snapshot must rehash
	bw := Addr(m.cfg.BlockWords)
	for len(words) > 0 {
		line := cache.Line(addr / bw)
		off := int(addr % bw)
		buf := m.mem.store.Peek(memory.Line(line))
		k := copy(buf[off:], words)
		m.mem.store.Write(memory.Line(line), buf)
		words = words[k:]
		addr += Addr(k)
	}
}

// ReadCoherent returns the coherent value of addr (dirty copy or memory);
// an oracle for tests, not a simulated access.
func (m *Machine) ReadCoherent(addr Addr) uint64 {
	line := cache.Line(addr / Addr(m.cfg.BlockWords))
	off := int(addr % Addr(m.cfg.BlockWords))
	for _, p := range m.procs {
		if e, ok := p.cache.Lookup(line); ok && (e.State == Dirty || e.State == Reserved) {
			return e.Data[off]
		}
	}
	return m.mem.store.Peek(memory.Line(line))[off]
}

// TxnStats reports completed processor transactions (bus-using misses and
// write-throughs) and their mean latency.
func (m *Machine) TxnStats() (count uint64, mean sim.Time) {
	if m.txnCount == 0 {
		return 0, 0
	}
	return m.txnCount, m.txnLatency / sim.Time(m.txnCount)
}

// readOp is an atomic miss transaction: the bus is held for the address
// cycles, the device access, and the block transfer.
func (m *Machine) readOp(kind opKind, origin int, line cache.Line) *op {
	lat := m.cfg.MemoryLatency
	if m.cfg.CacheLatency > lat {
		lat = m.cfg.CacheLatency
	}
	return &op{kind: kind, origin: origin, line: line,
		occ: sim.Time(m.cfg.AddrWords+m.cfg.BlockWords)*m.cfg.WordTime + lat}
}

func (m *Machine) dataOp(kind opKind, origin int, line cache.Line, data []uint64) *op {
	buf := make([]uint64, m.cfg.BlockWords)
	copy(buf, data)
	return &op{kind: kind, origin: origin, line: line, data: buf,
		occ: sim.Time(m.cfg.AddrWords+m.cfg.BlockWords) * m.cfg.WordTime}
}

func (m *Machine) wordOp(origin int, line cache.Line, offset int, value uint64) *op {
	return &op{kind: opWriteWord, origin: origin, line: line, offset: offset, value: value,
		occ: sim.Time(m.cfg.AddrWords+1) * m.cfg.WordTime}
}
