package singlebus

import (
	"multicube/internal/bus"
	"multicube/internal/cache"
	"multicube/internal/memory"
	"multicube/internal/sim"
)

// This file computes canonical fingerprints of the baseline machine's
// complete protocol state for the model checker's visited-state table,
// mirroring internal/coherence/snapshot.go. Everything that can influence
// future protocol behavior is hashed; statistics and absolute times are
// excluded.
//
// Processor symmetry: on a single snooping bus every cache controller is
// interchangeable (attach order is an arbitrary labeling), so the
// fingerprint accepts a processor relabeling and the checker takes the
// minimum over all of them. The memory module is unique and maps to
// itself.

type sbfnv uint64

const sbfnvOffset sbfnv = 14695981039346656037
const sbfnvPrime sbfnv = 1099511628211

func (h *sbfnv) byte(b byte) { *h = (*h ^ sbfnv(b)) * sbfnvPrime }

func (h *sbfnv) u64(v uint64) {
	for i := 0; i < 8; i++ {
		h.byte(byte(v >> (8 * i)))
	}
}

func (h *sbfnv) bit(b bool) {
	if b {
		h.byte(1)
	} else {
		h.byte(0)
	}
}

// opFP hashes one bus operation's protocol-visible fields under the
// given processor relabeling. Occupancy (a pure function of the kind)
// and the enqueue time are excluded; the probe-phase wires (inhibit,
// confirmed) are included because they persist on a granted operation
// until delivery.
func (o *op) fp(perm []int) uint64 {
	h := sbfnvOffset
	h.byte(byte(o.kind))
	h.u64(uint64(perm[o.origin]))
	h.u64(uint64(o.line))
	h.u64(uint64(o.offset))
	h.u64(o.value)
	h.bit(o.data != nil)
	for _, w := range o.data {
		h.u64(w)
	}
	h.bit(o.inhibit)
	h.bit(o.confirmed)
	h.bit(o.canceled)
	if o.shared {
		// MESI sharers wire. Hashed only when asserted so write-once
		// fingerprints are byte-identical to the pre-MESI encoding; in
		// write-once mode the wire is never driven.
		h.byte(1)
	}
	return uint64(h)
}

// Fingerprint hashes the complete protocol-visible machine state under
// the given processor relabeling: caches, pending processor requests,
// memory contents, the bus queue and in-flight operation, and pending
// kernel events. perm maps physical processor index to canonical index;
// nil means identity. extraTag, when non-nil, is consulted for kernel
// event tags this package does not recognize (the model-check driver's
// own events).
func (m *Machine) Fingerprint(perm []int, extraTag func(tag any) (uint64, bool)) uint64 {
	n := len(m.procs)
	if perm == nil {
		perm = make([]int, n)
		for i := range perm {
			perm[i] = i
		}
	}
	inv := make([]int, n)
	for phys, canon := range perm {
		inv[canon] = phys
	}

	h := sbfnvOffset

	// Processors, in canonical order.
	for cp := 0; cp < n; cp++ {
		p := m.procs[inv[cp]]
		h.byte(0x01)
		p.cache.ForEach(func(e *cache.Entry) {
			h.u64(uint64(e.Line))
			h.byte(byte(e.State))
			for _, w := range e.Data {
				h.u64(w)
			}
		})
		h.byte(0x02)
		h.bit(p.pend != nil)
		if r := p.pend; r != nil {
			h.u64(uint64(r.line))
			h.bit(r.write)
			h.u64(uint64(r.offset))
			h.u64(r.value)
		}
	}

	// Memory.
	h.byte(0x03)
	m.mem.store.ForEach(func(line memory.Line, valid bool, data []uint64) {
		h.u64(uint64(line))
		h.bit(valid)
		for _, w := range data {
			h.u64(w)
		}
	})

	// The bus: in-flight operation plus per-source queued subsequences in
	// canonical source order (arbitration among sources is a choice the
	// explorer branches on; per-source FIFO order is hardware).
	permSrc := func(src int) int {
		if src < n {
			return perm[src]
		}
		return src // the memory module
	}
	h.byte(0x04)
	h.bit(m.bus.Busy())
	if p := m.bus.Inflight(); p != nil {
		h.u64(p.(*op).fp(perm))
	}
	type group struct {
		src int
		ops []*op
	}
	var groups []group
	idx := make(map[int]int)
	m.bus.ForEachQueued(func(src int, pkt bus.Packet) {
		cs := permSrc(src)
		gi, ok := idx[cs]
		if !ok {
			gi = len(groups)
			idx[cs] = gi
			groups = append(groups, group{src: cs})
		}
		groups[gi].ops = append(groups[gi].ops, pkt.(*op))
	})
	for i := range groups {
		min := i
		for j := i + 1; j < len(groups); j++ {
			if groups[j].src < groups[min].src {
				min = j
			}
		}
		groups[i], groups[min] = groups[min], groups[i]
	}
	for _, g := range groups {
		h.u64(uint64(g.src))
		h.u64(uint64(len(g.ops)))
		for _, o := range g.ops {
			h.u64(o.fp(perm))
		}
	}

	// Pending kernel events, as a multiset.
	var evs []uint64
	m.k.ForEachPending(func(at sim.Time, tag any) {
		var eh sbfnv = sbfnvOffset
		switch t := tag.(type) {
		case bus.GrantTag:
			eh.byte(0x11)
		case bus.DeliverTag:
			eh.byte(0x12)
			eh.u64(t.Pkt.(*op).fp(perm))
		default:
			if extraTag != nil {
				if fp, ok := extraTag(tag); ok {
					eh.byte(0x13)
					eh.u64(fp)
					break
				}
			}
			eh.byte(0x1f)
		}
		evs = append(evs, uint64(eh))
	})
	for i := range evs {
		min := i
		for j := i + 1; j < len(evs); j++ {
			if evs[j] < evs[min] {
				min = j
			}
		}
		evs[i], evs[min] = evs[min], evs[i]
	}
	h.byte(0x05)
	for _, e := range evs {
		h.u64(e)
	}

	return uint64(h)
}

// PacketFP fingerprints one bus operation under the identity relabeling,
// for the model checker's transition identities at arbitration choice
// points; ok is false for foreign packet types.
func (m *Machine) PacketFP(pkt bus.Packet) (uint64, bool) {
	o, isOp := pkt.(*op)
	if !isOp {
		return 0, false
	}
	if len(m.fpIdent) != len(m.procs) {
		m.fpIdent = make([]int, len(m.procs))
		for i := range m.fpIdent {
			m.fpIdent[i] = i
		}
	}
	return o.fp(m.fpIdent), true
}
