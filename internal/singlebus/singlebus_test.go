package singlebus

import (
	"fmt"
	"testing"

	"multicube/internal/sim"
)

func newM(t *testing.T, procs int) *Machine {
	t.Helper()
	m, err := New(Config{Processors: procs, BlockWords: 4})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func quiet(t *testing.T, m *Machine) {
	t.Helper()
	for _, e := range CheckInvariants(m) {
		t.Errorf("invariant: %v", e)
	}
}

func TestValidation(t *testing.T) {
	if _, err := New(Config{Processors: 0}); err == nil {
		t.Error("0 processors accepted")
	}
	m := newM(t, 4)
	if m.Processors() != 4 {
		t.Errorf("Processors() = %d", m.Processors())
	}
}

func TestReadMissFromMemory(t *testing.T) {
	m := newM(t, 2)
	m.SeedMemory(0, []uint64{1, 2, 3, 4})
	var got uint64
	m.Spawn(0, func(c *Ctx) { got = c.Load(2) })
	m.Run()
	if got != 3 {
		t.Fatalf("load = %d, want 3", got)
	}
	e, ok := m.Processor(0).Cache().Lookup(0)
	if !ok || e.State != Valid {
		t.Error("line not Valid after read miss")
	}
	quiet(t, m)
}

func TestWriteOnceStateProgression(t *testing.T) {
	// Valid → (first write) Reserved → (second write) Dirty.
	m := newM(t, 2)
	m.Spawn(0, func(c *Ctx) {
		c.Load(0)
		p := m.Processor(0)
		c.Store(0, 10)
		if e, _ := p.Cache().Lookup(0); e == nil || e.State != Reserved {
			t.Error("line not Reserved after first write")
		}
		c.Store(1, 20)
		if e, _ := p.Cache().Lookup(0); e == nil || e.State != Dirty {
			t.Error("line not Dirty after second write")
		}
	})
	m.Run()
	// The first write went through to memory.
	if m.mem.store.Peek(0)[0] != 10 {
		t.Error("write-through did not reach memory")
	}
	quiet(t, m)
}

func TestWriteThroughInvalidatesSharers(t *testing.T) {
	m := newM(t, 3)
	m.SeedMemory(0, []uint64{7})
	var sawOld, sawNew uint64
	m.Spawn(1, func(c *Ctx) { sawOld = c.Load(0) })
	m.Spawn(2, func(c *Ctx) { c.Load(0) })
	m.Spawn(0, func(c *Ctx) {
		c.Sleep(50 * sim.Microsecond)
		c.Load(0)
		c.Store(0, 99)
	})
	m.Run()
	if sawOld != 7 {
		t.Errorf("initial read = %d", sawOld)
	}
	if _, ok := m.Processor(1).Cache().Lookup(0); ok {
		t.Error("sharer 1 not invalidated by write-through")
	}
	m2 := m.Processor(1)
	_ = m2
	// A later read must see the new value.
	mm := m
	mm.Spawn(1, func(c *Ctx) { sawNew = c.Load(0) })
	mm.Run()
	if sawNew != 99 {
		t.Errorf("read after write = %d, want 99", sawNew)
	}
	quiet(t, m)
}

func TestDirtyCacheSuppliesData(t *testing.T) {
	m := newM(t, 2)
	var got uint64
	m.Spawn(0, func(c *Ctx) {
		c.Store(0, 1) // write miss → Dirty
		c.Store(0, 2) // still Dirty
	})
	m.Spawn(1, func(c *Ctx) {
		c.Sleep(100 * sim.Microsecond)
		got = c.Load(0)
	})
	m.Run()
	if got != 2 {
		t.Fatalf("read from dirty peer = %d, want 2", got)
	}
	// Supplying the data updated memory and downgraded the holder.
	if m.mem.store.Peek(0)[0] != 2 {
		t.Error("memory not updated by cache-supplied data")
	}
	e, _ := m.Processor(0).Cache().Lookup(0)
	if e == nil || e.State != Valid {
		t.Error("dirty holder not downgraded to Valid")
	}
	quiet(t, m)
}

func TestWriteMissInvalidatesAndDirties(t *testing.T) {
	m := newM(t, 3)
	m.SeedMemory(0, []uint64{5})
	m.Spawn(1, func(c *Ctx) { c.Load(0) })
	m.Spawn(0, func(c *Ctx) {
		c.Sleep(30 * sim.Microsecond)
		c.Store(0, 9)
	})
	m.Run()
	if _, ok := m.Processor(1).Cache().Lookup(0); ok {
		t.Error("sharer survived read-invalidate")
	}
	e, _ := m.Processor(0).Cache().Lookup(0)
	if e == nil || e.State != Dirty || e.Data[0] != 9 {
		t.Error("writer does not hold dirty line with new value")
	}
	quiet(t, m)
}

func TestDirtyVictimWrittenBack(t *testing.T) {
	m, err := New(Config{Processors: 2, BlockWords: 4, CacheLines: 2, CacheAssoc: 2})
	if err != nil {
		t.Fatal(err)
	}
	m.Spawn(0, func(c *Ctx) {
		c.Store(0, 11) // line 0 dirty (two stores: miss fill is dirty already)
		c.Store(4, 22) // line 1
		c.Load(8)      // line 2 evicts LRU (line 0)
	})
	m.Run()
	if m.mem.store.Peek(0)[0] != 11 {
		t.Error("dirty victim not written back")
	}
	quiet(t, m)
}

func TestSharedCounterCoherent(t *testing.T) {
	m := newM(t, 4)
	// Simple lock-free alternating counter: each processor increments its
	// own word, then reads everyone's and checks monotonicity.
	m.SeedMemory(0, make([]uint64, 4))
	for id := 0; id < 4; id++ {
		m.Spawn(id, func(c *Ctx) {
			for i := 0; i < 10; i++ {
				v := c.Load(Addr(c.ID()))
				c.Store(Addr(c.ID()), v+1)
			}
		})
	}
	m.Run()
	for id := 0; id < 4; id++ {
		if got := m.ReadCoherent(Addr(id)); got != 10 {
			t.Errorf("counter %d = %d, want 10", id, got)
		}
	}
	quiet(t, m)
}

func TestSingleBusDeterminism(t *testing.T) {
	run := func() (sim.Time, string) {
		m := newM(t, 4)
		for id := 0; id < 4; id++ {
			m.Spawn(id, func(c *Ctx) {
				for i := 0; i < 8; i++ {
					a := Addr((c.ID()*3 + i*5) % 16)
					if i%2 == 0 {
						c.Store(a, uint64(c.ID()+i))
					} else {
						c.Load(a)
					}
				}
			})
		}
		end := m.Run()
		fp := ""
		for a := Addr(0); a < 16; a++ {
			fp += fmt.Sprint(m.ReadCoherent(a), ",")
		}
		return end, fp
	}
	t1, f1 := run()
	t2, f2 := run()
	if t1 != t2 || f1 != f2 {
		t.Fatal("nondeterministic baseline runs")
	}
}

func TestTxnStats(t *testing.T) {
	m := newM(t, 2)
	m.Spawn(0, func(c *Ctx) {
		c.Load(0)
		c.Load(64)
	})
	m.Run()
	count, mean := m.TxnStats()
	if count != 2 || mean == 0 {
		t.Errorf("TxnStats = (%d, %v)", count, mean)
	}
}
