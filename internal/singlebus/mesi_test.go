package singlebus

import (
	"testing"

	"multicube/internal/sim"
)

func newMESI(t *testing.T, procs int) *Machine {
	t.Helper()
	m, err := New(Config{Processors: procs, BlockWords: 4, Protocol: ProtocolMESI})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMESIValidation(t *testing.T) {
	if _, err := New(Config{Processors: 1, Protocol: "firefly"}); err == nil {
		t.Error("unknown protocol accepted")
	}
	if _, err := New(Config{Processors: 1, Protocol: ProtocolMESI}); err != nil {
		t.Errorf("mesi rejected: %v", err)
	}
}

func TestMESIExclusiveOnLoneRead(t *testing.T) {
	// A read miss nobody else holds installs Exclusive (the Reserved
	// slot), not Shared.
	m := newMESI(t, 2)
	m.SeedMemory(0, []uint64{1, 2, 3, 4})
	var got uint64
	m.Spawn(0, func(c *Ctx) { got = c.Load(2) })
	m.Run()
	if got != 3 {
		t.Fatalf("load = %d, want 3", got)
	}
	if e, ok := m.Processor(0).Cache().Lookup(0); !ok || e.State != Reserved {
		t.Error("lone read miss did not install Exclusive")
	}
	quiet(t, m)
}

func TestMESISharedWhenHeldElsewhere(t *testing.T) {
	// The second reader sees the sharers wire and installs Shared; the
	// first holder falls from Exclusive to Shared on the same snoop.
	m := newMESI(t, 2)
	m.SeedMemory(0, []uint64{7})
	m.Spawn(0, func(c *Ctx) { c.Load(0) })
	m.Spawn(1, func(c *Ctx) {
		c.Sleep(50 * sim.Microsecond)
		c.Load(0)
	})
	m.Run()
	for p := 0; p < 2; p++ {
		if e, ok := m.Processor(p).Cache().Lookup(0); !ok || e.State != Valid {
			t.Errorf("processor %d not Shared after second read", p)
		}
	}
	quiet(t, m)
}

func TestMESISilentExclusiveUpgrade(t *testing.T) {
	// A store to an Exclusive line goes to Modified without any bus
	// transaction: memory must still hold the pre-store value.
	m := newMESI(t, 2)
	m.SeedMemory(0, []uint64{7})
	m.Spawn(0, func(c *Ctx) {
		c.Load(0)
		c.Store(0, 99)
	})
	m.Run()
	if e, ok := m.Processor(0).Cache().Lookup(0); !ok || e.State != Dirty {
		t.Error("store to Exclusive did not leave Modified")
	}
	if got := m.mem.store.Peek(0)[0]; got != 7 {
		t.Errorf("memory = %d after silent upgrade, want stale 7", got)
	}
	if got := m.ReadCoherent(0); got != 99 {
		t.Errorf("ReadCoherent = %d, want 99", got)
	}
	quiet(t, m)
}

func TestMESISharedUpgradeLeavesModified(t *testing.T) {
	// A store to a Shared line rides the write-once word transaction to
	// invalidate the other copy, but lands in Modified (MESI has no
	// written-exactly-once state).
	m := newMESI(t, 2)
	m.SeedMemory(0, []uint64{7})
	m.Spawn(0, func(c *Ctx) { c.Load(0) })
	m.Spawn(1, func(c *Ctx) {
		c.Sleep(50 * sim.Microsecond)
		c.Load(0)
		c.Store(0, 99)
	})
	m.Run()
	if e, ok := m.Processor(1).Cache().Lookup(0); !ok || e.State != Dirty {
		t.Error("upgrading store did not leave Modified")
	}
	if _, ok := m.Processor(0).Cache().Lookup(0); ok {
		t.Error("other sharer not invalidated by the upgrade")
	}
	quiet(t, m)
}

func TestMESIRemoteReadDowngradesModified(t *testing.T) {
	// A remote read of a Modified line is supplied by the owner, which
	// falls to Shared while the same transaction updates memory.
	m := newMESI(t, 2)
	m.Spawn(0, func(c *Ctx) { c.Store(0, 41) })
	m.Spawn(1, func(c *Ctx) {
		c.Sleep(50 * sim.Microsecond)
		if got := c.Load(0); got != 41 {
			t.Errorf("remote read = %d, want 41", got)
		}
	})
	m.Run()
	if e, ok := m.Processor(0).Cache().Lookup(0); !ok || e.State != Valid {
		t.Error("owner not Shared after remote read")
	}
	if e, ok := m.Processor(1).Cache().Lookup(0); !ok || e.State != Valid {
		t.Error("reader not Shared after supplied read")
	}
	if got := m.mem.store.Peek(0)[0]; got != 41 {
		t.Errorf("memory = %d after reflection, want 41", got)
	}
	quiet(t, m)
}

func TestMESIWriteOnceFingerprintUnchanged(t *testing.T) {
	// The sharers wire is hashed only when asserted, so a write-once
	// machine's fingerprints are identical to the pre-MESI encoding: two
	// write-once machines running the same program must agree, and the
	// wire must never be driven outside MESI mode.
	run := func(proto string) uint64 {
		m := MustNew(Config{Processors: 2, BlockWords: 4, Protocol: proto})
		m.SeedMemory(0, []uint64{7})
		m.Spawn(0, func(c *Ctx) { c.Load(0) })
		m.Run()
		return m.Fingerprint(nil, nil)
	}
	if run(ProtocolWriteOnce) != run(ProtocolWriteOnce) {
		t.Error("write-once fingerprint not reproducible")
	}
	// A lone read miss ends Valid under write-once but Exclusive under
	// MESI, so the two protocols' final states must not alias.
	if run(ProtocolWriteOnce) == run(ProtocolMESI) {
		t.Error("write-once and mesi final states alias")
	}
}
