// Package bus models the shared buses of the Multicube: broadcast media
// with arbitration, occupancy timing, and snooping delivery to every
// attached agent.
//
// A bus operation ("packet") is granted the bus, holds it for its
// occupancy time (an address-and-command operation is short; a data
// transfer holds the bus for the full block), and is then delivered to all
// attached agents. Delivery happens in two phases mirroring the hardware:
//
//  1. Probe: every agent observes the packet and may assert shared wires
//     on it. This models the special row-bus "modified line" — a wired-OR
//     signal supplied a fixed number of bus cycles after a request is
//     placed on the bus, by the (at most one) node whose modified line
//     table holds the requested line.
//  2. Snoop: every agent takes its protocol actions, knowing the final
//     state of the shared wires.
//
// Both phases run at the end of the occupancy interval, in deterministic
// attach order. Actions that model device latency (a snooping-cache or
// memory access before a reply) are scheduled by the agents themselves.
package bus

import (
	"fmt"

	"multicube/internal/sim"
)

// Packet is one bus operation. Implementations carry the protocol payload;
// the bus needs only the occupancy time.
type Packet interface {
	// Occupancy is how long the operation holds the bus.
	Occupancy() sim.Time
}

// Agent is a device attached to a bus: a snooping cache controller or a
// main memory module.
type Agent interface {
	// Probe lets the agent assert shared signal lines on the packet.
	// It must not issue bus requests or mutate protocol state.
	Probe(b *Bus, pkt Packet)
	// Snoop delivers the packet for protocol action.
	Snoop(b *Bus, pkt Packet)
}

// Arbitration selects among simultaneously waiting requesters.
type Arbitration int

const (
	// FIFO grants strictly in request order.
	FIFO Arbitration = iota
	// RoundRobin grants the next waiting agent after the last grantee,
	// cycling by attach index; requests from one agent stay ordered.
	RoundRobin
)

// Stats aggregates bus activity for utilization and latency reporting.
type Stats struct {
	Ops       uint64   // operations completed
	BusyTime  sim.Time // total time the bus was held
	WaitTime  sim.Time // total time operations waited for a grant
	MaxQueued int      // high-water mark of waiting operations
}

type pending struct {
	src      int
	pkt      Packet
	enqueued sim.Time
}

// Bus is one row or column bus.
type Bus struct {
	k      *sim.Kernel
	name   string
	arb    Arbitration
	agents []Agent

	fifo   []pending   // FIFO mode
	perSrc [][]pending // RoundRobin mode, indexed by attach index
	queued int
	busy   bool
	last   int // last granted attach index (RoundRobin)

	stats Stats
}

// New returns an idle bus using the given arbitration policy.
func New(k *sim.Kernel, name string, arb Arbitration) *Bus {
	return &Bus{k: k, name: name, arb: arb, last: -1}
}

// Name returns the diagnostic name.
func (b *Bus) Name() string { return b.name }

// Stats returns a snapshot of the counters.
func (b *Bus) Stats() Stats { return b.stats }

// Agents returns the number of attached agents.
func (b *Bus) Agents() int { return len(b.agents) }

// Attach connects an agent and returns its attach index, which is also its
// arbitration identity.
func (b *Bus) Attach(a Agent) int {
	b.agents = append(b.agents, a)
	b.perSrc = append(b.perSrc, nil)
	return len(b.agents) - 1
}

// Request enqueues a bus operation from the agent with attach index src.
// The operation is granted according to the arbitration policy, holds the
// bus for pkt.Occupancy(), and is then delivered to every agent.
func (b *Bus) Request(src int, pkt Packet) {
	if src < 0 || src >= len(b.agents) {
		panic(fmt.Sprintf("bus %s: request from unknown agent %d", b.name, src))
	}
	p := pending{src: src, pkt: pkt, enqueued: b.k.Now()}
	if b.arb == FIFO {
		b.fifo = append(b.fifo, p)
	} else {
		b.perSrc[src] = append(b.perSrc[src], p)
	}
	b.queued++
	if b.queued > b.stats.MaxQueued {
		b.stats.MaxQueued = b.queued
	}
	if !b.busy {
		b.grant()
	}
}

// next pops the operation to grant, per policy.
func (b *Bus) next() (pending, bool) {
	if b.queued == 0 {
		return pending{}, false
	}
	if b.arb == FIFO {
		p := b.fifo[0]
		b.fifo = b.fifo[1:]
		b.queued--
		return p, true
	}
	n := len(b.agents)
	for i := 1; i <= n; i++ {
		src := (b.last + i) % n
		if len(b.perSrc[src]) > 0 {
			p := b.perSrc[src][0]
			b.perSrc[src] = b.perSrc[src][1:]
			b.queued--
			b.last = src
			return p, true
		}
	}
	return pending{}, false
}

func (b *Bus) grant() {
	p, ok := b.next()
	if !ok {
		return
	}
	b.busy = true
	b.stats.WaitTime += b.k.Now() - p.enqueued
	occ := p.pkt.Occupancy()
	b.stats.BusyTime += occ
	b.k.After(occ, func() {
		b.stats.Ops++
		// Phase 1: shared signal lines settle.
		for _, a := range b.agents {
			a.Probe(b, p.pkt)
		}
		// Phase 2: protocol actions. Agents may issue new Requests here;
		// the bus is still formally held, so they queue behind us.
		for _, a := range b.agents {
			a.Snoop(b, p.pkt)
		}
		b.busy = false
		b.grant()
	})
}

// Utilization returns BusyTime as a fraction of elapsed, guarding against
// a zero-length run.
func (b *Bus) Utilization(elapsed sim.Time) float64 {
	if elapsed == 0 {
		return 0
	}
	return float64(b.stats.BusyTime) / float64(elapsed)
}
