// Package bus models the shared buses of the Multicube: broadcast media
// with arbitration, occupancy timing, and snooping delivery to every
// attached agent.
//
// A bus operation ("packet") is granted the bus, holds it for its
// occupancy time (an address-and-command operation is short; a data
// transfer holds the bus for the full block), and is then delivered to all
// attached agents. Delivery happens in two phases mirroring the hardware:
//
//  1. Probe: every agent observes the packet and may assert shared wires
//     on it. This models the special row-bus "modified line" — a wired-OR
//     signal supplied a fixed number of bus cycles after a request is
//     placed on the bus, by the (at most one) node whose modified line
//     table holds the requested line.
//  2. Snoop: every agent takes its protocol actions, knowing the final
//     state of the shared wires.
//
// Both phases run at the end of the occupancy interval, in deterministic
// attach order. Actions that model device latency (a snooping-cache or
// memory access before a reply) are scheduled by the agents themselves.
// The package participates in the explorer's determinism contract: no
// wall clock, no map-order dependence, no scheduling outside the chooser
// seam. multicube-vet enforces this (see internal/analysis).
//
//multicube:deterministic
package bus

import (
	"fmt"

	"multicube/internal/sim"
)

// Packet is one bus operation. Implementations carry the protocol payload;
// the bus needs only the occupancy time.
type Packet interface {
	// Occupancy is how long the operation holds the bus.
	Occupancy() sim.Time
}

// Agent is a device attached to a bus: a snooping cache controller or a
// main memory module.
type Agent interface {
	// Probe lets the agent assert shared signal lines on the packet.
	// It must not issue bus requests or mutate protocol state.
	Probe(b *Bus, pkt Packet)
	// Snoop delivers the packet for protocol action.
	Snoop(b *Bus, pkt Packet)
}

// Arbitration selects among simultaneously waiting requesters.
type Arbitration int

const (
	// FIFO grants strictly in request order.
	FIFO Arbitration = iota
	// RoundRobin grants the next waiting agent after the last grantee,
	// cycling by attach index; requests from one agent stay ordered.
	RoundRobin
	// Priority grants the waiting agent with the lowest attach index —
	// fixed priority by attach order, the head-of-line discipline of the
	// Nikolov & Lerato bus-arbitration study (arXiv:1004.3560). On a row
	// bus that favors low-numbered columns; on a column bus, low rows
	// ahead of the memory module.
	Priority
)

// ParseArbitration maps a flag spelling to a policy.
func ParseArbitration(s string) (Arbitration, error) {
	switch s {
	case "fcfs", "fifo":
		return FIFO, nil
	case "rr", "roundrobin":
		return RoundRobin, nil
	case "priority":
		return Priority, nil
	}
	return 0, fmt.Errorf("unknown arbitration %q (want fcfs, rr, or priority)", s)
}

// String renders the policy in its canonical flag spelling.
func (a Arbitration) String() string {
	switch a {
	case FIFO:
		return "fcfs"
	case RoundRobin:
		return "rr"
	case Priority:
		return "priority"
	}
	return fmt.Sprintf("Arbitration(%d)", int(a))
}

// Stats aggregates bus activity for utilization and latency reporting.
type Stats struct {
	Ops       uint64   // operations completed
	BusyTime  sim.Time // total time the bus was held
	WaitTime  sim.Time // total time operations waited for a grant
	MaxQueued int      // high-water mark of waiting operations
}

type pending struct {
	src      int
	pkt      Packet
	enqueued sim.Time
}

// GrantTag tags the deferred-grant kernel event of a bus (model-checking
// mode only): when it fires, the bus picks one queued request to grant.
type GrantTag struct{ B *Bus }

func (t GrantTag) String() string { return t.B.name + " grant" }

// DeliverTag tags the delivery event of a granted bus operation: when it
// fires, the operation's occupancy ends and every agent snoops it.
type DeliverTag struct {
	B   *Bus
	Pkt Packet
}

func (t DeliverTag) String() string { return fmt.Sprintf("%s deliver %v", t.B.name, t.Pkt) }

// Bus is one row or column bus.
type Bus struct {
	k      *sim.Kernel
	name   string
	arb    Arbitration
	agents []Agent

	//multicube:fpfield
	fifo []pending // FIFO mode
	//multicube:fpfield
	perSrc [][]pending // RoundRobin mode, indexed by attach index
	queued int
	//multicube:fpfield
	busy bool
	last int // last granted attach index (RoundRobin)

	// chooser, when set, arbitrates among all queued requests in place
	// of the configured policy; candidate 0 is the policy's own pick, so
	// a default chooser changes nothing.
	chooser sim.Chooser
	// deferGrants decouples enqueue from grant (model-checking mode): a
	// Request on an idle bus schedules a zero-delay tagged grant event
	// instead of granting inline, so requests enqueued "simultaneously"
	// all reach arbitration before any is granted.
	deferGrants  bool
	grantPending bool
	// inflight is the granted operation whose occupancy is running.
	//
	//multicube:fpfield
	inflight Packet

	// gen counts mutations of fingerprint-visible bus state (queues,
	// busy/inflight). Incremental fingerprint caches compare it against a
	// remembered value to skip rehashing an unchanged bus.
	//
	//multicube:gencounter
	gen uint64

	// scratch buffers reused by nextChosen, which runs once per grant
	// under a model checker and must not allocate.
	slotScratch []slot
	candScratch []sim.Candidate
	seenScratch []bool

	stats Stats
}

// New returns an idle bus using the given arbitration policy.
func New(k *sim.Kernel, name string, arb Arbitration) *Bus {
	return &Bus{k: k, name: name, arb: arb, last: -1}
}

// Name returns the diagnostic name.
func (b *Bus) Name() string { return b.name }

// Stats returns a snapshot of the counters.
func (b *Bus) Stats() Stats { return b.stats }

// Agents returns the number of attached agents.
func (b *Bus) Agents() int { return len(b.agents) }

// Attach connects an agent and returns its attach index, which is also its
// arbitration identity.
//
//multicube:fpexempt construction-time wiring, before any fingerprint exists
func (b *Bus) Attach(a Agent) int {
	b.agents = append(b.agents, a)
	b.perSrc = append(b.perSrc, nil)
	return len(b.agents) - 1
}

// SetChooser routes arbitration through ch (nil restores the configured
// policy). deferGrants additionally decouples enqueue from grant so that
// a model checker sees every queued request as a grant candidate.
func (b *Bus) SetChooser(ch sim.Chooser, deferGrants bool) {
	b.chooser = ch
	b.deferGrants = deferGrants
}

// Gen reports the mutation generation of the fingerprint-visible bus
// state. It changes whenever the queues or the busy/inflight pair may
// have changed.
func (b *Bus) Gen() uint64 { return b.gen }

// Busy reports whether an operation currently holds the bus.
func (b *Bus) Busy() bool { return b.busy }

// Inflight returns the operation holding the bus, or nil.
func (b *Bus) Inflight() Packet { return b.inflight }

// ForEachQueued visits every queued (not yet granted) operation in
// arbitration-queue order. Model checkers include the queues in state
// fingerprints.
func (b *Bus) ForEachQueued(fn func(src int, pkt Packet)) {
	for _, p := range b.fifo {
		fn(p.src, p.pkt)
	}
	for _, q := range b.perSrc {
		for _, p := range q {
			fn(p.src, p.pkt)
		}
	}
}

// Request enqueues a bus operation from the agent with attach index src.
// The operation is granted according to the arbitration policy, holds the
// bus for pkt.Occupancy(), and is then delivered to every agent.
func (b *Bus) Request(src int, pkt Packet) {
	if src < 0 || src >= len(b.agents) {
		panic(fmt.Sprintf("bus %s: request from unknown agent %d", b.name, src))
	}
	b.gen++
	p := pending{src: src, pkt: pkt, enqueued: b.k.Now()}
	if b.arb == FIFO {
		b.fifo = append(b.fifo, p)
	} else {
		b.perSrc[src] = append(b.perSrc[src], p)
	}
	b.queued++
	if b.queued > b.stats.MaxQueued {
		b.stats.MaxQueued = b.queued
	}
	if !b.busy {
		if b.deferGrants {
			b.scheduleGrant()
		} else {
			b.grant()
		}
	}
}

// scheduleGrant arranges arbitration as its own zero-delay kernel event
// (model-checking mode), so every request enqueued before the event fires
// participates, and the model checker can reorder the grant against other
// pending activity.
func (b *Bus) scheduleGrant() {
	if b.grantPending || b.queued == 0 {
		return
	}
	b.grantPending = true
	b.k.AfterTagged(0, GrantTag{b}, func() {
		b.grantPending = false
		if !b.busy {
			b.grant()
		}
	})
}

// next pops the operation to grant, per policy — or, with a chooser
// installed, the chooser's pick among the head request of every waiting
// source (per-source order is a hardware FIFO and is never violated).
//
//multicube:fpexempt called only from grant, which bumps
func (b *Bus) next() (pending, bool) {
	if b.queued == 0 {
		return pending{}, false
	}
	if b.chooser != nil && b.queued > 1 {
		return b.nextChosen(), true
	}
	if b.arb == FIFO {
		p := b.fifo[0]
		b.fifo = b.fifo[1:]
		b.queued--
		return p, true
	}
	// Priority shares this scan: its last stays -1, so the walk is
	// always ascending attach index from 0.
	n := len(b.agents)
	for i := 1; i <= n; i++ {
		src := (b.last + i) % n
		if len(b.perSrc[src]) > 0 {
			p := b.perSrc[src][0]
			b.perSrc[src] = b.perSrc[src][1:]
			b.queued--
			if b.arb == RoundRobin {
				b.last = src
			}
			return p, true
		}
	}
	return pending{}, false
}

// nextChosen asks the chooser to arbitrate. Candidates are the head
// request of each waiting source, in policy order, so choice 0 is the
// policy's own pick.
func (b *Bus) nextChosen() pending {
	slots := b.slotScratch[:0]
	cands := b.candScratch[:0]
	add := func(list *[]pending, idx int) {
		slots = append(slots, slot{list, idx})
		cands = append(cands, sim.Candidate{Tag: (*list)[idx].pkt})
	}
	if b.arb == FIFO {
		if len(b.seenScratch) < len(b.agents) {
			b.seenScratch = make([]bool, len(b.agents))
		}
		seen := b.seenScratch
		for i := range seen {
			seen[i] = false
		}
		for i := range b.fifo {
			if src := b.fifo[i].src; !seen[src] {
				seen[src] = true
				add(&b.fifo, i)
			}
		}
	} else {
		n := len(b.agents)
		for i := 1; i <= n; i++ {
			src := (b.last + i) % n
			if len(b.perSrc[src]) > 0 {
				add(&b.perSrc[src], 0)
			}
		}
	}
	idx := 0
	if len(slots) > 1 {
		idx = b.chooser.Choose(sim.ChoicePoint{Kind: "grant", Name: b.name}, cands)
		if idx < 0 || idx >= len(slots) {
			panic(fmt.Sprintf("bus %s: chooser picked %d of %d candidates", b.name, idx, len(slots)))
		}
	}
	s := slots[idx]
	b.slotScratch = slots
	b.candScratch = cands
	p := (*s.list)[s.idx]
	*s.list = append((*s.list)[:s.idx], (*s.list)[s.idx+1:]...)
	b.queued--
	if b.arb == RoundRobin {
		b.last = p.src
	}
	return p
}

// slot locates one arbitration candidate inside a queue.
type slot struct {
	list *[]pending
	idx  int
}

func (b *Bus) grant() {
	p, ok := b.next()
	if !ok {
		return
	}
	b.gen++
	b.busy = true
	b.inflight = p.pkt
	b.stats.WaitTime += b.k.Now() - p.enqueued
	occ := p.pkt.Occupancy()
	b.stats.BusyTime += occ
	b.k.AfterTagged(occ, DeliverTag{b, p.pkt}, func() {
		b.stats.Ops++
		// Phase 1: shared signal lines settle.
		for _, a := range b.agents {
			a.Probe(b, p.pkt)
		}
		// Phase 2: protocol actions. Agents may issue new Requests here;
		// the bus is still formally held, so they queue behind us.
		for _, a := range b.agents {
			a.Snoop(b, p.pkt)
		}
		b.gen++
		b.busy = false
		b.inflight = nil
		if b.deferGrants {
			b.scheduleGrant()
		} else {
			b.grant()
		}
	})
}

// Utilization returns BusyTime as a fraction of elapsed, guarding against
// a zero-length run.
func (b *Bus) Utilization(elapsed sim.Time) float64 {
	if elapsed == 0 {
		return 0
	}
	return float64(b.stats.BusyTime) / float64(elapsed)
}
