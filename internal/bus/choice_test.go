package bus

import (
	"testing"

	"multicube/internal/sim"
)

type tpkt struct {
	name string
	occ  sim.Time
}

func (p tpkt) Occupancy() sim.Time { return p.occ }
func (p tpkt) String() string      { return p.name }

type snoopSink struct{ order []string }

func (r *snoopSink) Probe(b *Bus, p Packet) {}
func (r *snoopSink) Snoop(b *Bus, p Packet) { r.order = append(r.order, p.(tpkt).name) }

// grantLast always grants the last candidate (the most recently waiting
// source).
type grantLast struct{ points int }

func (c *grantLast) Choose(cp sim.ChoicePoint, cands []sim.Candidate) int {
	if cp.Kind == "grant" {
		c.points++
		return len(cands) - 1
	}
	return 0
}

// deliver drives a bus with three same-instant requesters and returns the
// delivery order.
func deliver(t *testing.T, ch sim.Chooser, deferGrants bool) []string {
	t.Helper()
	k := sim.NewKernel()
	b := New(k, "row0", FIFO)
	rec := &snoopSink{}
	srcs := make([]int, 3)
	for i := range srcs {
		srcs[i] = b.Attach(rec)
	}
	b.SetChooser(ch, deferGrants)
	k.At(0, func() {
		for i, src := range srcs {
			b.Request(src, tpkt{name: string(rune('a' + i)), occ: 10})
		}
	})
	k.Run()
	// Every attached agent snoops each delivery; collapse the runs.
	var order []string
	for _, name := range rec.order {
		if len(order) == 0 || order[len(order)-1] != name {
			order = append(order, name)
		}
	}
	return order
}

func TestChooserArbitration(t *testing.T) {
	base := deliver(t, nil, false)
	if got := deliver(t, sim.DefaultChooser{}, false); !equal(got, base) {
		t.Fatalf("DefaultChooser order %v != policy order %v", got, base)
	}
	// Without deferral the first request grabs the idle bus before the
	// others enqueue; the chooser then arbitrates the remaining two.
	if got := deliver(t, &grantLast{}, false); !equal(got, []string{"a", "c", "b"}) {
		t.Fatalf("grant-last order = %v, want a,c,b", got)
	}
	// With deferred grants all three same-instant requests reach
	// arbitration, so even the first grant is a choice.
	if got := deliver(t, &grantLast{}, true); !equal(got, []string{"c", "b", "a"}) {
		t.Fatalf("deferred grant-last order = %v, want c,b,a", got)
	}
	if got := deliver(t, sim.DefaultChooser{}, true); !equal(got, base) {
		t.Fatalf("deferred DefaultChooser order %v != policy order %v", got, base)
	}
}

func TestPerSourceOrderPreserved(t *testing.T) {
	k := sim.NewKernel()
	b := New(k, "col0", FIFO)
	rec := &snoopSink{}
	s0 := b.Attach(rec)
	s1 := b.Attach(rec)
	b.SetChooser(&grantLast{}, true)
	k.At(0, func() {
		b.Request(s0, tpkt{name: "a1", occ: 10})
		b.Request(s0, tpkt{name: "a2", occ: 10})
		b.Request(s1, tpkt{name: "b1", occ: 10})
	})
	k.Run()
	// Only queue heads are candidates: a2 can never be granted before a1.
	for i, name := range rec.order {
		if name == "a2" {
			for _, prev := range rec.order[:i] {
				if prev == "a1" {
					return
				}
			}
			t.Fatalf("a2 delivered before a1: %v", rec.order)
		}
	}
}

func TestForEachQueuedAndInflight(t *testing.T) {
	k := sim.NewKernel()
	b := New(k, "row0", FIFO)
	rec := &snoopSink{}
	src := b.Attach(rec)
	k.At(0, func() {
		b.Request(src, tpkt{name: "x", occ: 10})
		b.Request(src, tpkt{name: "y", occ: 10})
	})
	k.RunUntil(5)
	if b.Inflight() == nil || b.Inflight().(tpkt).name != "x" {
		t.Fatalf("inflight = %v, want x", b.Inflight())
	}
	var queued []string
	b.ForEachQueued(func(src int, p Packet) { queued = append(queued, p.(tpkt).name) })
	if len(queued) != 1 || queued[0] != "y" {
		t.Fatalf("queued = %v, want [y]", queued)
	}
}

func equal(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
