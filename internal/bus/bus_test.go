package bus

import (
	"testing"

	"multicube/internal/sim"
)

type testPkt struct {
	id  int
	occ sim.Time
}

func (p testPkt) Occupancy() sim.Time { return p.occ }

// recorder is an agent that logs every snooped packet with its time.
type recorder struct {
	snoops []snooped
	probes int
}

type snooped struct {
	id int
	at sim.Time
}

func (r *recorder) Probe(b *Bus, pkt Packet) { r.probes++ }
func (r *recorder) Snoop(b *Bus, pkt Packet) {
	r.snoops = append(r.snoops, snooped{pkt.(testPkt).id, b.k.Now()})
}

func TestBroadcastReachesAllAgents(t *testing.T) {
	k := sim.NewKernel()
	b := New(k, "row0", FIFO)
	agents := []*recorder{{}, {}, {}}
	var ids []int
	for _, a := range agents {
		ids = append(ids, b.Attach(a))
	}
	if ids[0] != 0 || ids[2] != 2 {
		t.Fatalf("attach indices %v", ids)
	}
	b.Request(0, testPkt{id: 7, occ: 100})
	k.Run()
	for i, a := range agents {
		if len(a.snoops) != 1 || a.snoops[0].id != 7 {
			t.Errorf("agent %d snoops = %v", i, a.snoops)
		}
		if a.probes != 1 {
			t.Errorf("agent %d probes = %d, want 1", i, a.probes)
		}
	}
}

func TestDeliveryAtEndOfOccupancy(t *testing.T) {
	k := sim.NewKernel()
	b := New(k, "b", FIFO)
	r := &recorder{}
	b.Attach(r)
	b.Request(0, testPkt{id: 1, occ: 250})
	k.Run()
	if r.snoops[0].at != 250 {
		t.Fatalf("delivered at %v, want 250", r.snoops[0].at)
	}
}

func TestFIFOOrderAndSerialization(t *testing.T) {
	k := sim.NewKernel()
	b := New(k, "b", FIFO)
	r := &recorder{}
	b.Attach(r)
	b.Attach(&recorder{})
	// Two ops requested at time 0: they must serialize back to back.
	b.Request(0, testPkt{id: 1, occ: 100})
	b.Request(1, testPkt{id: 2, occ: 50})
	k.Run()
	if len(r.snoops) != 2 {
		t.Fatalf("snooped %d ops, want 2", len(r.snoops))
	}
	if r.snoops[0].id != 1 || r.snoops[0].at != 100 {
		t.Errorf("first = %+v, want id 1 at 100", r.snoops[0])
	}
	if r.snoops[1].id != 2 || r.snoops[1].at != 150 {
		t.Errorf("second = %+v, want id 2 at 150", r.snoops[1])
	}
	s := b.Stats()
	if s.Ops != 2 || s.BusyTime != 150 {
		t.Errorf("stats = %+v", s)
	}
	if s.WaitTime != 100 { // op 2 waited out op 1's occupancy
		t.Errorf("wait = %v, want 100", s.WaitTime)
	}
}

func TestRoundRobinFairness(t *testing.T) {
	k := sim.NewKernel()
	b := New(k, "b", RoundRobin)
	r := &recorder{}
	b.Attach(r) // agent 0
	b.Attach(&recorder{})
	b.Attach(&recorder{})
	// Agent 0 floods; agents 1 and 2 each want one op. Round-robin must
	// interleave rather than serve agent 0's backlog first.
	b.Request(0, testPkt{id: 10, occ: 10})
	b.Request(0, testPkt{id: 11, occ: 10})
	b.Request(0, testPkt{id: 12, occ: 10})
	b.Request(1, testPkt{id: 20, occ: 10})
	b.Request(2, testPkt{id: 30, occ: 10})
	k.Run()
	var order []int
	for _, s := range r.snoops {
		order = append(order, s.id)
	}
	want := []int{10, 20, 30, 11, 12}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSnoopMayIssueFollowUp(t *testing.T) {
	// An agent that reacts to a request by issuing a reply on the same
	// bus: the reply must queue behind the request and complete later.
	k := sim.NewKernel()
	b := New(k, "b", FIFO)
	r := &recorder{}
	responder := &respondingAgent{}
	responder.id = b.Attach(responder)
	b.Attach(r)
	responder.bus = b
	b.Request(responder.id, testPkt{id: 1, occ: 100})
	k.Run()
	if len(r.snoops) != 2 {
		t.Fatalf("snooped %d, want request+reply", len(r.snoops))
	}
	if r.snoops[1].id != 99 || r.snoops[1].at != 200 {
		t.Errorf("reply = %+v, want id 99 at 200", r.snoops[1])
	}
}

type respondingAgent struct {
	bus     *Bus
	id      int
	replied bool
}

func (a *respondingAgent) Probe(b *Bus, pkt Packet) {}
func (a *respondingAgent) Snoop(b *Bus, pkt Packet) {
	if pkt.(testPkt).id == 1 && !a.replied {
		a.replied = true
		a.bus.Request(a.id, testPkt{id: 99, occ: 100})
	}
}

// sharedWire models the modified-signal line: one agent asserts during
// Probe; all agents observe the final value during Snoop.
type wirePkt struct {
	occ      sim.Time
	modified bool
}

func (p *wirePkt) Occupancy() sim.Time { return p.occ }

type asserter struct{}

func (asserter) Probe(b *Bus, pkt Packet) { pkt.(*wirePkt).modified = true }
func (asserter) Snoop(b *Bus, pkt Packet) {}

type observer struct{ saw bool }

func (o *observer) Probe(b *Bus, pkt Packet) {}
func (o *observer) Snoop(b *Bus, pkt Packet) { o.saw = pkt.(*wirePkt).modified }

func TestProbePhasePrecedesSnoop(t *testing.T) {
	k := sim.NewKernel()
	b := New(k, "b", FIFO)
	o := &observer{} // attached first, still sees the wire asserted
	b.Attach(o)
	b.Attach(asserter{})
	b.Request(0, &wirePkt{occ: 50})
	k.Run()
	if !o.saw {
		t.Fatal("observer did not see wire asserted by later-attached agent")
	}
}

func TestRequestFromUnknownAgentPanics(t *testing.T) {
	k := sim.NewKernel()
	b := New(k, "b", FIFO)
	defer func() {
		if recover() == nil {
			t.Error("no panic for unknown agent")
		}
	}()
	b.Request(3, testPkt{occ: 1})
}

func TestUtilization(t *testing.T) {
	k := sim.NewKernel()
	b := New(k, "b", FIFO)
	b.Attach(&recorder{})
	b.Request(0, testPkt{id: 1, occ: 100})
	k.Run()
	k.RunUntil(400)
	if got := b.Utilization(k.Now()); got != 0.25 {
		t.Errorf("utilization = %g, want 0.25", got)
	}
	if b.Utilization(0) != 0 {
		t.Error("zero elapsed should give zero utilization")
	}
}

func TestMaxQueuedHighWater(t *testing.T) {
	k := sim.NewKernel()
	b := New(k, "b", FIFO)
	b.Attach(&recorder{})
	for i := 0; i < 5; i++ {
		b.Request(0, testPkt{id: i, occ: 10})
	}
	k.Run()
	// First request is granted immediately, so at most 4 waited at once...
	// but the high-water mark counts queued-before-grant too: the first
	// request is dequeued synchronously, leaving 4 queued after the fifth
	// arrives.
	if got := b.Stats().MaxQueued; got != 4 {
		t.Errorf("MaxQueued = %d, want 4", got)
	}
}
