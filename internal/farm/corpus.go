package farm

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"multicube/internal/farm/jobspec"
)

// Corpus is the persistent swarm regression set: every seed that ever
// produced a violation, with enough context to replay it forever.
// mc.SwarmScenario is a pure function of (seed, machine), so an entry
// IS its reproduction — the farm institutionalizes autonomously-found
// bugs the way PR 4's stale-shared-mp race was distilled by hand.
// Entries are one JSON file each, written atomically; a directory of
// them survives restarts and travels with the cache volume.
type Corpus struct {
	dir     string // "" = memory-only
	mu      sync.Mutex
	entries map[string]CorpusEntry
}

// CorpusEntry records one violating swarm seed.
type CorpusEntry struct {
	Seed      int64 `json:"seed"`
	SingleBus bool  `json:"single_bus"`
	// Kind and Msg describe the violation as first found.
	Kind string `json:"kind"`
	Msg  string `json:"msg"`
	// MaxStates is the exploration budget that found it; replays use
	// the same budget so the regression stays reachable.
	MaxStates int `json:"max_states"`
	// FoundBy is the fingerprint of the swarm job that caught it.
	FoundBy string `json:"found_by,omitempty"`
}

func (e *CorpusEntry) key() string {
	machine := "multicube"
	if e.SingleBus {
		machine = "singlebus"
	}
	return fmt.Sprintf("seed-%d-%s", e.Seed, machine)
}

// OpenCorpus loads the corpus at dir, creating it if missing; dir ""
// keeps the corpus in memory only.
func OpenCorpus(dir string) (*Corpus, error) {
	c := &Corpus{dir: dir, entries: make(map[string]CorpusEntry)}
	if dir == "" {
		return c, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("farm: corpus dir: %w", err)
	}
	files, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("farm: corpus scan: %w", err)
	}
	for _, f := range files {
		if f.IsDir() || !strings.HasSuffix(f.Name(), ".json") {
			continue
		}
		b, err := os.ReadFile(filepath.Join(dir, f.Name()))
		if err != nil {
			continue
		}
		var e CorpusEntry
		if json.Unmarshal(b, &e) != nil || e.MaxStates <= 0 {
			continue // corrupt entry: skip, don't fail startup
		}
		c.entries[e.key()] = e
	}
	return c, nil
}

// Add records a violating seed, returning false if it was already
// known. New entries are persisted atomically before Add returns.
func (c *Corpus) Add(e CorpusEntry) (bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := e.key()
	if _, dup := c.entries[key]; dup {
		return false, nil
	}
	if c.dir != "" {
		b, err := json.MarshalIndent(e, "", " ")
		if err != nil {
			return false, err
		}
		path := filepath.Join(c.dir, key+".json")
		tmp, err := os.CreateTemp(c.dir, key+".tmp*")
		if err != nil {
			return false, fmt.Errorf("farm: corpus add: %w", err)
		}
		if _, err := tmp.Write(append(b, '\n')); err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
			return false, fmt.Errorf("farm: corpus add: %w", err)
		}
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
			return false, fmt.Errorf("farm: corpus add: %w", err)
		}
		if err := tmp.Close(); err != nil {
			os.Remove(tmp.Name())
			return false, fmt.Errorf("farm: corpus add: %w", err)
		}
		if err := os.Rename(tmp.Name(), path); err != nil {
			os.Remove(tmp.Name())
			return false, fmt.Errorf("farm: corpus add: %w", err)
		}
	}
	c.entries[key] = e
	return true, nil
}

// Entries returns the corpus sorted by (seed, machine) — a stable order
// for listings and replay batches.
func (c *Corpus) Entries() []CorpusEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]CorpusEntry, 0, len(c.entries))
	for _, e := range c.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Seed != out[j].Seed {
			return out[i].Seed < out[j].Seed
		}
		return !out[i].SingleBus && out[j].SingleBus
	})
	return out
}

// Len reports the number of recorded seeds.
func (c *Corpus) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// ReplaySpecs lowers every entry into a single-seed swarm job with the
// budget that originally found the violation — the regression batch
// POST /corpus/replay submits.
func (c *Corpus) ReplaySpecs() []jobspec.Spec {
	entries := c.Entries()
	out := make([]jobspec.Spec, 0, len(entries))
	for _, e := range entries {
		machines := "multicube"
		if e.SingleBus {
			machines = "singlebus"
		}
		out = append(out, jobspec.Spec{
			Kind: jobspec.KindSwarm,
			Swarm: &jobspec.SwarmSpec{
				BaseSeed:  e.Seed,
				Count:     1,
				Machines:  machines,
				MaxStates: e.MaxStates,
			},
		})
	}
	return out
}
