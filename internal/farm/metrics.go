package farm

import (
	"sync/atomic"
	"time"
)

// counters is the server's hot-path instrumentation: everything the
// request and worker paths touch is an atomic, so metrics never contend
// with job execution.
type counters struct {
	submitted     atomic.Uint64
	completed     atomic.Uint64
	failed        atomic.Uint64
	canceled      atomic.Uint64
	dedupHits     atomic.Uint64
	cacheHitMem   atomic.Uint64
	cacheHitDisk  atomic.Uint64
	cacheMiss     atomic.Uint64
	rateLimited   atomic.Uint64
	queueRejected atomic.Uint64

	statesExplored  atomic.Uint64
	eventsSimulated atomic.Uint64
	busyNS          atomic.Int64
	busyWorkers     atomic.Int64

	mcResumed  atomic.Uint64
	mcHandoffs atomic.Uint64
}

// Metrics is the /metrics snapshot.
type Metrics struct {
	UptimeSeconds float64 `json:"uptime_seconds"`

	// Jobs by lifecycle.
	JobsSubmitted uint64         `json:"jobs_submitted"`
	JobsCompleted uint64         `json:"jobs_completed"`
	JobsFailed    uint64         `json:"jobs_failed"`
	JobsCanceled  uint64         `json:"jobs_canceled"`
	JobsByState   map[string]int `json:"jobs_by_state"`

	// Cache effectiveness: the farm's scaling lever.
	CacheHitsMemory uint64  `json:"cache_hits_memory"`
	CacheHitsDisk   uint64  `json:"cache_hits_disk"`
	CacheMisses     uint64  `json:"cache_misses"`
	CacheHitRatio   float64 `json:"cache_hit_ratio"`
	DedupHits       uint64  `json:"dedup_hits"`
	CacheMemEntries int     `json:"cache_mem_entries"`
	CacheDiskItems  int     `json:"cache_disk_entries"`
	// Disk-tier footprint and the bounded sweep's eviction count.
	CacheDiskBytes     int64  `json:"cache_disk_bytes"`
	CacheDiskEvictions uint64 `json:"cache_disk_evictions"`

	// Queue and pool pressure.
	QueueDepth        int     `json:"queue_depth"`
	QueueCap          int     `json:"queue_cap"`
	Workers           int     `json:"workers"`
	BusyWorkers       int     `json:"busy_workers"`
	WorkerUtilization float64 `json:"worker_utilization"`
	RateLimited       uint64  `json:"rate_limited"`
	QueueRejected     uint64  `json:"queue_rejected"`

	// Aggregate engine throughput across all executed jobs.
	StatesExplored  uint64  `json:"states_explored"`
	EventsSimulated uint64  `json:"events_simulated"`
	StatesPerSec    float64 `json:"states_per_sec"`

	// Checkpoint/resume and distributed-exploration activity.
	MCJobsResumed uint64 `json:"mc_jobs_resumed"`
	MCHandoffs    uint64 `json:"mc_handoffs"`

	CorpusSize int `json:"corpus_size"`
}

// snapshot assembles the exported view; jobsByState and queue/pool
// gauges come from the server, which owns that state.
func (c *counters) snapshot(start time.Time) Metrics {
	hits := c.cacheHitMem.Load() + c.cacheHitDisk.Load()
	lookups := hits + c.cacheMiss.Load()
	ratio := 0.0
	if lookups > 0 {
		ratio = float64(hits) / float64(lookups)
	}
	statesPerSec := 0.0
	if busy := c.busyNS.Load(); busy > 0 {
		statesPerSec = float64(c.statesExplored.Load()) / (float64(busy) / 1e9)
	}
	return Metrics{
		UptimeSeconds:   time.Since(start).Seconds(),
		JobsSubmitted:   c.submitted.Load(),
		JobsCompleted:   c.completed.Load(),
		JobsFailed:      c.failed.Load(),
		JobsCanceled:    c.canceled.Load(),
		CacheHitsMemory: c.cacheHitMem.Load(),
		CacheHitsDisk:   c.cacheHitDisk.Load(),
		CacheMisses:     c.cacheMiss.Load(),
		CacheHitRatio:   ratio,
		DedupHits:       c.dedupHits.Load(),
		RateLimited:     c.rateLimited.Load(),
		QueueRejected:   c.queueRejected.Load(),
		StatesExplored:  c.statesExplored.Load(),
		EventsSimulated: c.eventsSimulated.Load(),
		StatesPerSec:    statesPerSec,
		MCJobsResumed:   c.mcResumed.Load(),
		MCHandoffs:      c.mcHandoffs.Load(),
	}
}
