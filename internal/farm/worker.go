package farm

import (
	"context"
	"fmt"
	"os"
	"path/filepath"

	"multicube/internal/core"
	"multicube/internal/farm/jobspec"
	"multicube/internal/mc"
	"multicube/internal/memmodel"
	"multicube/internal/sim"
	"multicube/internal/workload"
)

// Progress is a point-in-time view of a running job, streamed to
// clients as NDJSON and folded into the server metrics. Fields are
// populated per kind: mc/swarm report explorer counters, sim reports
// reference/event counts, litmus and swarm report sub-cases done.
type Progress struct {
	// States and Frontier mirror mc.Progress for explorer-backed jobs.
	States   int `json:"states,omitempty"`
	Runs     int `json:"runs,omitempty"`
	Frontier int `json:"frontier,omitempty"`
	// References and Events count the timed machine's work.
	References uint64 `json:"references,omitempty"`
	Events     uint64 `json:"events,omitempty"`
	// Done and Total count sub-cases of batch jobs (litmus sweeps,
	// swarm seeds).
	Done  int `json:"done,omitempty"`
	Total int `json:"total,omitempty"`
}

// executor runs normalized specs. It is stateless; everything it needs
// arrives per call, so the worker pool shares one.
type executor struct {
	// mcWorkers is the explorer parallelism per mc job. The farm's
	// throughput lever is the worker pool, so this defaults to 1; raise
	// it on big machines serving few, huge explorations.
	mcWorkers int
	// mcDistParts splits each mc search across fingerprint-range
	// partitions (mc.Options.DistParts); like mcWorkers it never changes
	// a verdict, so it stays out of job identity.
	mcDistParts int
	// checkpointRoot, when non-empty, gives each mc job a checkpoint
	// directory keyed by its fingerprint, making killed jobs resumable
	// on resubmission. Checkpointing composes only with the sequential
	// pass, so it is skipped when mcWorkers or mcDistParts exceed 1.
	checkpointRoot string
	// mcCheckpointEvery overrides the checkpoint cadence (0 = explorer
	// default).
	mcCheckpointEvery int
}

// run executes spec (already normalized, fingerprinted fp) and returns
// the cacheable result. The context cancels cooperatively: partial work
// is marked with the "canceled" verdict and not cached by the caller.
// progress may be nil.
func (x *executor) run(ctx context.Context, spec *jobspec.Spec, fp string, progress func(Progress)) *jobspec.Result {
	res := &jobspec.Result{Schema: jobspec.SchemaVersion, Kind: spec.Kind, Fingerprint: fp}
	report := func(p Progress) {
		if progress != nil {
			progress(p)
		}
	}
	switch spec.Kind {
	case jobspec.KindMC:
		x.runMC(ctx, spec.MC, res, report)
	case jobspec.KindSim:
		x.runSim(ctx, spec.Sim, res, report)
	case jobspec.KindLitmus:
		x.runLitmus(ctx, spec.Litmus, res, report)
	case jobspec.KindSwarm:
		x.runSwarm(ctx, spec.Swarm, res, report)
	default:
		res.Verdict = "error"
		res.Error = fmt.Sprintf("farm: unknown job kind %q", spec.Kind)
	}
	return res
}

func (x *executor) runMC(ctx context.Context, spec *jobspec.MCSpec, res *jobspec.Result, report func(Progress)) {
	opts := spec.ExploreOptions()
	opts.Ctx = ctx
	opts.Workers = x.mcWorkers
	opts.DistParts = x.mcDistParts
	ckdir := ""
	if x.checkpointRoot != "" && x.mcWorkers <= 1 && x.mcDistParts <= 1 {
		// Per-job checkpoint directory under the job fingerprint, sharded
		// like the result cache. Resume is unconditional: a fresh job sees
		// an empty directory (ErrNoCheckpoint → fresh start), a resubmitted
		// killed job picks up where it stopped with an identical verdict.
		ckdir = filepath.Join(x.checkpointRoot, fpShard(res.Fingerprint), res.Fingerprint)
		opts.CheckpointDir = ckdir
		opts.CheckpointEvery = x.mcCheckpointEvery
		opts.Resume = true
	}
	opts.Progress = func(p mc.Progress) {
		report(Progress{States: p.States, Runs: p.Runs, Frontier: p.Frontier})
	}
	r, err := mc.Explore(*spec.Scenario, opts)
	if err != nil {
		res.Verdict = "error"
		res.Error = err.Error()
		return
	}
	if ckdir != "" && !r.Canceled {
		// The completed result supersedes the checkpoint (it will be
		// cached under the same fingerprint); canceled jobs keep theirs
		// so resubmission resumes.
		//multicube:atomicwrite-ok the cached result under the same fingerprint supersedes the checkpoint
		os.RemoveAll(ckdir)
	}
	res.MC = &jobspec.MCResult{Result: r}
	switch {
	case r.Violation != nil:
		res.Verdict = "violation"
	case r.Canceled:
		res.Verdict = "canceled"
	case r.SCVerdict == "undecided":
		res.Verdict = "undecided"
	default:
		res.Verdict = "ok"
	}
}

// fpShard mirrors the result cache's directory sharding for checkpoint
// roots: two-hex-digit prefix, so no directory grows unboundedly.
func fpShard(fp string) string {
	if len(fp) >= 2 {
		return fp[:2]
	}
	return "xx"
}

func (x *executor) runSim(ctx context.Context, spec *jobspec.SimSpec, res *jobspec.Result, report func(Progress)) {
	m, err := core.New(core.Config{
		N:          spec.N,
		BlockWords: spec.BlockWords,
		CacheLines: spec.CacheLines, CacheAssoc: spec.CacheAssoc,
		MLTEntries: spec.MLTEntries, MLTAssoc: spec.MLTAssoc,
		Snarf: spec.Snarf,
	})
	if err != nil {
		res.Verdict = "error"
		res.Error = err.Error()
		return
	}
	rep := workload.RunCtx(ctx, m, workload.GenConfig{
		Seed:        spec.Seed,
		Think:       sim.Time(spec.ThinkNS),
		Exponential: spec.Exponential == nil || *spec.Exponential,
		SharedLines: spec.SharedLines, PrivateLines: spec.PrivateLines,
		PShared: spec.PShared, PWrite: spec.PWrite,
		Requests: spec.Requests,
	}, func(refs, events uint64) {
		report(Progress{References: refs, Events: events})
	})
	sr := &jobspec.SimResult{
		References:      rep.References,
		BusTransactions: rep.BusTransactions,
		ElapsedSimNS:    int64(rep.Elapsed),
		Efficiency:      rep.Efficiency(),
		BusRatePerMS:    rep.BusRate(m.Processors()),
	}
	res.Sim = sr
	if rep.Canceled {
		res.Verdict = "canceled"
		return
	}
	for _, e := range m.CheckInvariants() {
		sr.Invariants = append(sr.Invariants, e.Error())
	}
	if len(sr.Invariants) > 0 {
		res.Verdict = "violation"
	} else {
		res.Verdict = "ok"
	}
}

func (x *executor) runLitmus(ctx context.Context, spec *jobspec.LitmusSpec, res *jobspec.Result, report func(Progress)) {
	tests := memmodel.LitmusTests()
	if spec.Test != "all" {
		l, ok := memmodel.LitmusByName(spec.Test)
		if !ok {
			res.Verdict = "error"
			res.Error = fmt.Sprintf("farm: unknown litmus test %q", spec.Test)
			return
		}
		tests = []memmodel.Litmus{l}
	}
	lr := &jobspec.LitmusResult{}
	res.Litmus = lr
	total := 0
	for _, l := range tests {
		placements := 1
		if l.Vars >= 2 {
			placements = 2
		}
		total += placements * spec.Seeds
	}
	undecided := false
	for _, l := range tests {
		for _, same := range []bool{false, true} {
			if same && l.Vars < 2 {
				continue
			}
			placement := "split-col"
			if same {
				placement = "same-col"
			}
			for s := 0; s < spec.Seeds; s++ {
				if ctx.Err() != nil {
					res.Verdict = "canceled"
					return
				}
				seed := spec.BaseSeed + uint64(s)
				rep, err := workload.RunLitmus(workload.LitmusConfig{
					Test: l.Name, N: spec.N, Rounds: spec.Rounds,
					Seed: seed, MaxJitter: sim.Time(spec.MaxJitterNS),
					SameColumn: same, SCNodes: spec.SCNodes,
				})
				if err != nil {
					res.Verdict = "error"
					res.Error = err.Error()
					return
				}
				lr.Runs++
				report(Progress{Done: lr.Runs, Total: total, Events: uint64(rep.History.Len())})
				switch rep.Check.Verdict {
				case memmodel.VerdictOK:
				case memmodel.VerdictUndecided:
					undecided = true
					lr.Failures = append(lr.Failures, jobspec.LitmusFailure{
						Test: l.Name, Placement: placement, Seed: seed,
						Verdict: rep.Check.Verdict.String(), Reason: rep.Check.Reason,
					})
				default:
					lr.Failures = append(lr.Failures, jobspec.LitmusFailure{
						Test: l.Name, Placement: placement, Seed: seed,
						Verdict: rep.Check.Verdict.String(), Reason: rep.Check.Reason,
					})
				}
			}
		}
	}
	switch {
	case len(lr.Failures) > 0 && !onlyUndecided(lr.Failures):
		res.Verdict = "violation"
	case undecided:
		res.Verdict = "undecided"
	default:
		res.Verdict = "ok"
	}
}

func onlyUndecided(fs []jobspec.LitmusFailure) bool {
	for _, f := range fs {
		if f.Verdict != memmodel.VerdictUndecided.String() {
			return false
		}
	}
	return true
}

func (x *executor) runSwarm(ctx context.Context, spec *jobspec.SwarmSpec, res *jobspec.Result, report func(Progress)) {
	sr := &jobspec.SwarmResult{}
	res.Swarm = sr
	var machines []bool // singleBus values to run
	switch spec.Machines {
	case "multicube":
		machines = []bool{false}
	case "singlebus":
		machines = []bool{true}
	default:
		machines = []bool{false, true}
	}
	total := spec.Count * len(machines)
	for i := 0; i < spec.Count; i++ {
		seed := spec.BaseSeed + int64(i)
		for _, singleBus := range machines {
			if ctx.Err() != nil {
				res.Verdict = "canceled"
				return
			}
			sc := mc.SwarmScenario(seed, singleBus)
			r, err := mc.Explore(sc, mc.Options{
				MaxStates: spec.MaxStates,
				Ctx:       ctx,
				Workers:   x.mcWorkers,
			})
			if err != nil {
				res.Verdict = "error"
				res.Error = err.Error()
				return
			}
			if r.Canceled {
				res.Verdict = "canceled"
				return
			}
			sr.Cases++
			sr.StatesTotal += r.States
			report(Progress{Done: sr.Cases, Total: total, States: sr.StatesTotal})
			if r.Violation != nil {
				sr.Violations = append(sr.Violations, jobspec.SwarmViolation{
					Seed: seed, SingleBus: singleBus,
					Kind: r.Violation.Kind, Msg: r.Violation.Msg,
					Choices: r.Violation.Choices, States: r.States,
				})
			}
		}
	}
	if len(sr.Violations) > 0 {
		res.Verdict = "violation"
	} else {
		res.Verdict = "ok"
	}
}
