package jobspec

import (
	"fmt"

	"multicube/internal/mc"
)

// Result is the cacheable outcome of one job. Everything in it is a
// deterministic function of the canonical spec for sim, litmus, and
// swarm jobs, and for every mc verdict; an mc Result's exploration
// statistics can additionally depend on the server's worker policy, so
// byte-identity across cache MISSES is only promised for the verdict
// fields, while cache hits always serve the stored bytes verbatim.
// Wall-clock timings live outside this type (in the server's response
// envelope), never inside the cached payload.
type Result struct {
	Schema      int    `json:"schema"`
	Kind        string `json:"kind"`
	Fingerprint string `json:"fingerprint"`
	// Verdict summarizes: "ok", "violation", "undecided", "canceled",
	// or "error".
	Verdict string `json:"verdict"`

	Sim    *SimResult    `json:"sim,omitempty"`
	MC     *MCResult     `json:"mc,omitempty"`
	Litmus *LitmusResult `json:"litmus,omitempty"`
	Swarm  *SwarmResult  `json:"swarm,omitempty"`

	// Error carries the failure of an "error" verdict (the job itself
	// was valid but execution failed).
	Error string `json:"error,omitempty"`
}

// SimResult reports a timed run: the workload report, the paper's
// derived metrics, and any invariant violations found at quiescence.
type SimResult struct {
	References      uint64   `json:"references"`
	BusTransactions uint64   `json:"bus_transactions"`
	ElapsedSimNS    int64    `json:"elapsed_sim_ns"`
	Efficiency      float64  `json:"efficiency"`
	BusRatePerMS    float64  `json:"bus_rate_per_ms"`
	Invariants      []string `json:"invariants,omitempty"`
}

// MCResult embeds the explorer's result (states, coverage, verdict,
// minimized counterexample).
type MCResult struct {
	mc.Result
}

// LitmusResult reports a timed-machine litmus sweep.
type LitmusResult struct {
	Runs     int             `json:"runs"`
	Failures []LitmusFailure `json:"failures,omitempty"`
}

// LitmusFailure is one non-OK SC check in a litmus sweep.
type LitmusFailure struct {
	Test      string `json:"test"`
	Placement string `json:"placement"`
	Seed      uint64 `json:"seed"`
	Verdict   string `json:"verdict"`
	Reason    string `json:"reason"`
}

// SwarmResult reports a swarm batch: totals plus every violation, each
// replayable from its seed alone.
type SwarmResult struct {
	Cases       int              `json:"cases"`
	StatesTotal int              `json:"states_total"`
	Violations  []SwarmViolation `json:"violations,omitempty"`
}

// SwarmViolation is one swarm catch; (Seed, SingleBus) fully identifies
// the scenario (mc.SwarmScenario is a pure function of them), which is
// what the corpus persists.
type SwarmViolation struct {
	Seed      int64  `json:"seed"`
	SingleBus bool   `json:"single_bus"`
	Kind      string `json:"kind"`
	Msg       string `json:"msg"`
	Choices   []int  `json:"choices,omitempty"`
	States    int    `json:"states"`
}

// Encode renders the result in the same canonical byte-stable form as
// specs, which is what the cache stores and every response serves.
func (r *Result) Encode() ([]byte, error) {
	if r.Schema == 0 {
		r.Schema = SchemaVersion
	}
	return CanonicalJSON(r)
}

// Validate rejects malformed results read back from disk.
func (r *Result) Validate() error {
	if r.Schema != SchemaVersion {
		return fmt.Errorf("jobspec: result schema %d (want %d)", r.Schema, SchemaVersion)
	}
	switch r.Kind {
	case KindSim, KindMC, KindLitmus, KindSwarm:
	default:
		return fmt.Errorf("jobspec: result kind %q unknown", r.Kind)
	}
	if r.Fingerprint == "" {
		return fmt.Errorf("jobspec: result without fingerprint")
	}
	if r.Verdict == "" {
		return fmt.Errorf("jobspec: result without verdict")
	}
	return nil
}
