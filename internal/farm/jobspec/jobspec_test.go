package jobspec

import (
	"bytes"
	"encoding/json"
	"testing"

	"multicube/internal/mc"
	"multicube/internal/topology"
)

func specs(t *testing.T) []Spec {
	t.Helper()
	inline := &mc.Scenario{
		Name: "inline-race",
		Procs: []mc.Proc{
			{At: topology.Coord{Row: 0, Col: 0}, Ops: []mc.ProcOp{{Kind: mc.OpWrite, Line: 0}, {Kind: mc.OpRead, Line: 0}}},
			{At: topology.Coord{Row: 1, Col: 1}, Ops: []mc.ProcOp{{Kind: mc.OpWrite, Line: 0}}},
		},
	}
	return []Spec{
		{Kind: KindSim, Sim: &SimSpec{N: 2, Seed: 1<<63 + 12345, PShared: 0.3, PWrite: 0.1, Requests: 40}},
		{Kind: KindMC, MC: &MCSpec{Preset: "sb-victim-race"}},
		{Kind: KindMC, MC: &MCSpec{Scenario: inline, Options: MCOptions{MaxStates: 5000}}},
		{Kind: KindLitmus, Litmus: &LitmusSpec{Test: "mp", Seeds: 2, Rounds: 2}},
		{Kind: KindSwarm, Swarm: &SwarmSpec{BaseSeed: 9000, Count: 4}},
	}
}

// TestCanonicalRoundTrip is the cache-key correctness foundation:
// encode → decode → re-encode must be byte-identical, and the decoded
// spec's fingerprint must equal the original's — across arbitrary JSON
// re-marshaling, i.e. across processes.
func TestCanonicalRoundTrip(t *testing.T) {
	for _, s := range specs(t) {
		c1, err := s.Canonical()
		if err != nil {
			t.Fatalf("%s: %v", s.Kind, err)
		}
		fp1, err := s.Fingerprint()
		if err != nil {
			t.Fatalf("%s: %v", s.Kind, err)
		}

		// Decode the canonical bytes as a wire client would and re-encode.
		var back Spec
		if err := json.Unmarshal(c1, &back); err != nil {
			t.Fatalf("%s: decoding canonical form: %v", s.Kind, err)
		}
		c2, err := back.Canonical()
		if err != nil {
			t.Fatalf("%s: re-canonicalizing: %v", s.Kind, err)
		}
		if !bytes.Equal(c1, c2) {
			t.Fatalf("%s: canonical encoding not a fixed point:\n first: %s\nsecond: %s", s.Kind, c1, c2)
		}
		fp2, err := back.Fingerprint()
		if err != nil {
			t.Fatalf("%s: %v", s.Kind, err)
		}
		if fp1 != fp2 {
			t.Fatalf("%s: fingerprint drifted across encode→decode: %s vs %s", s.Kind, fp1, fp2)
		}
	}
}

// TestDefaultsDoNotSplitIdentity: a spec with defaults omitted and one
// with them spelled out are the same job.
func TestDefaultsDoNotSplitIdentity(t *testing.T) {
	bare := Spec{Kind: KindSwarm, Swarm: &SwarmSpec{BaseSeed: 7}}
	full := Spec{Kind: KindSwarm, Swarm: &SwarmSpec{BaseSeed: 7, Count: 8, Machines: "both", MaxStates: 4000}}
	fp1, err := bare.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	fp2, err := full.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fp1 != fp2 {
		t.Fatalf("defaulted and explicit specs split identity: %s vs %s", fp1, fp2)
	}
}

// TestPresetExpansion: a preset job and the identical inline scenario
// canonicalize to the same fingerprint (presets are spellings, not
// identities).
func TestPresetExpansion(t *testing.T) {
	byName := Spec{Kind: KindMC, MC: &MCSpec{Preset: "sb-victim-race"}}
	sc, err := mc.Preset("sb-victim-race")
	if err != nil {
		t.Fatal(err)
	}
	inline := Spec{Kind: KindMC, MC: &MCSpec{Scenario: &sc}}
	fp1, err := byName.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	fp2, err := inline.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fp1 != fp2 {
		t.Fatalf("preset and inline scenario split identity: %s vs %s", fp1, fp2)
	}
}

// TestFloatAndSeedStability: shortest-round-trip floats and full-width
// 64-bit seeds survive canonicalization digit-exactly (no float64 trip
// for integers, no drift for fractions like 0.3 with no exact binary
// form).
func TestFloatAndSeedStability(t *testing.T) {
	s := Spec{Kind: KindSim, Sim: &SimSpec{
		N: 2, Seed: 18446744073709551615, PShared: 0.3, PWrite: 0.7, Requests: 10,
	}}
	c, err := s.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"seed":18446744073709551615`, `"p_shared":0.3`, `"p_write":0.7`} {
		if !bytes.Contains(c, []byte(want)) {
			t.Fatalf("canonical form lost %s:\n%s", want, c)
		}
	}
}

// TestCanonicalSortsKeys: the canonical encoder emits object keys
// sorted regardless of input order.
func TestCanonicalSortsKeys(t *testing.T) {
	got, err := CanonicalJSON(map[string]any{"zeta": 1, "alpha": map[string]any{"y": true, "x": "s"}})
	if err != nil {
		t.Fatal(err)
	}
	want := `{"alpha":{"x":"s","y":true},"zeta":1}`
	if string(got) != want {
		t.Fatalf("canonical JSON = %s, want %s", got, want)
	}
}

func TestNormalizeRejects(t *testing.T) {
	cases := []Spec{
		{Kind: "nope", Sim: &SimSpec{}},
		{Kind: KindMC},
		{Kind: KindMC, MC: &MCSpec{}},
		{Kind: KindMC, MC: &MCSpec{Preset: "no-such-preset"}},
		{Kind: KindMC, MC: &MCSpec{Preset: "read-race", Scenario: &mc.Scenario{}}},
		{Kind: KindSim, Sim: &SimSpec{N: 99}},
		{Kind: KindSim, Sim: &SimSpec{PShared: 1.5}},
		{Kind: KindLitmus, Litmus: &LitmusSpec{Test: "zzz"}},
		{Kind: KindSwarm, Swarm: &SwarmSpec{Machines: "abacus"}},
		{Kind: KindSwarm, Swarm: &SwarmSpec{Count: maxSwarmCount + 1}},
		{Kind: KindSim, Sim: &SimSpec{}, MC: &MCSpec{Preset: "read-race"}},
		{Schema: 99, Kind: KindSwarm, Swarm: &SwarmSpec{}},
	}
	for i, s := range cases {
		if _, err := s.Normalize(); err == nil {
			t.Errorf("case %d (%+v): Normalize accepted an invalid spec", i, s)
		}
	}
}

// TestResultEncodeStable: result payloads canonicalize to a fixed point
// too — the property the byte-identical cache guarantee rides on.
func TestResultEncodeStable(t *testing.T) {
	r := &Result{
		Kind:        KindMC,
		Fingerprint: "abc",
		Verdict:     "violation",
		MC: &MCResult{Result: mc.Result{
			Scenario: "x", States: 42, Runs: 7, Exhausted: true,
			Violation: &mc.Violation{Kind: "sc", Msg: "stale", Choices: []int{1, 0, 2}},
		}},
	}
	b1, err := r.Encode()
	if err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(b1, &back); err != nil {
		t.Fatal(err)
	}
	b2, err := back.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("result encoding not a fixed point:\n first: %s\nsecond: %s", b1, b2)
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
}
