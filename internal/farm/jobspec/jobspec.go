// Package jobspec defines the farm's job specifications and their
// canonical encoding. A Spec names one unit of work — a timed
// simulation, a model-checking exploration, a litmus sweep, or a swarm
// batch — as plain JSON. Normalize resolves it to canonical form
// (schema version stamped, presets expanded, defaults filled, execution
// hints stripped), Canonical renders that form as byte-stable JSON
// (sorted keys, digit-exact numbers), and Fingerprint hashes those
// bytes.
//
// The fingerprint is the farm's cache key, so its stability IS the
// cache's correctness argument: two specs that would run the same
// deterministic computation must canonicalize to identical bytes, in
// any process, on any platform, forever — and two specs that could
// diverge must not. Everything result-affecting (scenario structure,
// engine bounds, seeds) is inside the canonical form; everything
// result-neutral (worker counts, progress cadence) is stripped by
// Normalize. Encoding discipline: object keys are emitted sorted;
// numbers pass through json.Number so a 64-bit seed never takes a trip
// through float64; floats re-encode via Go's shortest-round-trip
// formatter, which is deterministic and parse-exact.
//
//multicube:deterministic
package jobspec

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"

	"multicube/internal/mc"
	"multicube/internal/memmodel"
)

// SchemaVersion is stamped into every canonical spec and result. Bump it
// whenever the canonical encoding or job semantics change incompatibly;
// old cache entries then simply stop matching instead of serving results
// computed under different rules.
//
// 2: mc.Scenario gained the Protocol field (single-bus snooper
// selection), changing the canonical mc-job encoding.
const SchemaVersion = 2

// Job kinds.
const (
	KindSim    = "sim"
	KindMC     = "mc"
	KindLitmus = "litmus"
	KindSwarm  = "swarm"
)

// Spec is one submitted job. Exactly one payload field matching Kind
// must be set.
type Spec struct {
	// Schema is the spec schema version; zero is normalized to
	// SchemaVersion, anything else must match it exactly.
	Schema int    `json:"schema,omitempty"`
	Kind   string `json:"kind"`

	Sim    *SimSpec    `json:"sim,omitempty"`
	MC     *MCSpec     `json:"mc,omitempty"`
	Litmus *LitmusSpec `json:"litmus,omitempty"`
	Swarm  *SwarmSpec  `json:"swarm,omitempty"`
}

// SimSpec runs the synthetic reference workload on a timed machine and
// reports the paper's efficiency/bus-rate metrics.
type SimSpec struct {
	// N is processors per bus (the machine is N×N); default 4.
	N int `json:"n,omitempty"`
	// BlockWords is the coherency block size; default 16 (the paper's).
	BlockWords int `json:"block_words,omitempty"`
	// CacheLines/CacheAssoc and MLTEntries/MLTAssoc bound the snooping
	// cache and modified line table; zero means unbounded.
	CacheLines int `json:"cache_lines,omitempty"`
	CacheAssoc int `json:"cache_assoc,omitempty"`
	MLTEntries int `json:"mlt_entries,omitempty"`
	MLTAssoc   int `json:"mlt_assoc,omitempty"`
	// Snarf enables the Section 3 snarf optimization.
	Snarf bool `json:"snarf,omitempty"`
	// Seed drives all workload randomness; identical seeds, identical runs.
	Seed uint64 `json:"seed,omitempty"`
	// ThinkNS is the mean think time in simulated nanoseconds; default 10000.
	ThinkNS int64 `json:"think_ns,omitempty"`
	// Exponential selects exponential think times; default true.
	Exponential *bool `json:"exponential,omitempty"`
	// SharedLines (default 64) and PrivateLines (default 16) size the
	// hot set and per-processor private region.
	SharedLines  int `json:"shared_lines,omitempty"`
	PrivateLines int `json:"private_lines,omitempty"`
	// PShared (default 0.5) and PWrite (default 0.3) steer the mix.
	PShared float64 `json:"p_shared,omitempty"`
	PWrite  float64 `json:"p_write,omitempty"`
	// Requests is references per processor; default 100.
	Requests int `json:"requests,omitempty"`
}

// MCSpec model-checks one bounded scenario: either a named preset or an
// inline scenario (exactly one must be set on submission; Normalize
// expands presets so canonical specs always carry the scenario inline).
type MCSpec struct {
	Preset   string       `json:"preset,omitempty"`
	Scenario *mc.Scenario `json:"scenario,omitempty"`
	Options  MCOptions    `json:"options"`
}

// MCOptions mirrors the result-affecting subset of mc.Options. Worker
// count deliberately has no field: it changes run statistics but never
// the verdict, so it is a server-side execution policy, not job
// identity. The same reasoning excludes the distribution partition
// count (DistParts) and the checkpoint/store placement: where the
// search spills, checkpoints, or hands off never changes what it
// concludes, so those knobs live in farm.Config, not here.
type MCOptions struct {
	MaxStates      int  `json:"max_states,omitempty"`
	MaxDepth       int  `json:"max_depth,omitempty"`
	DepthStep      int  `json:"depth_step,omitempty"`
	MaxStepsPerRun int  `json:"max_steps_per_run,omitempty"`
	MaxReissues    int  `json:"max_reissues,omitempty"`
	DisablePOR     bool `json:"disable_por,omitempty"`
	DisableSleep   bool `json:"disable_sleep,omitempty"`
	NoMinimize     bool `json:"no_minimize,omitempty"`
	SCNodes        int  `json:"sc_nodes,omitempty"`
}

// LitmusSpec sweeps one litmus test (or the whole suite) over jitter
// seeds on the timed machine, SC-checking every captured history.
type LitmusSpec struct {
	// Test names a memmodel litmus test; "all" (the default) runs the suite.
	Test string `json:"test,omitempty"`
	// N is the machine's grid dimension; default 2.
	N int `json:"n,omitempty"`
	// Seeds is jitter seeds per configuration (default 4); Rounds is
	// instances per run (default 4); BaseSeed offsets the sweep.
	Seeds    int    `json:"seeds,omitempty"`
	Rounds   int    `json:"rounds,omitempty"`
	BaseSeed uint64 `json:"base_seed,omitempty"`
	// MaxJitterNS bounds the random pre-operation delay; default 2000.
	MaxJitterNS int64 `json:"max_jitter_ns,omitempty"`
	// SCNodes caps each history's SC search (0 = memmodel default).
	SCNodes int `json:"sc_nodes,omitempty"`
}

// SwarmSpec explores a batch of seed-derived random scenarios
// (mc.SwarmScenario) and reports — and, on the server, persists to the
// corpus — every violation found.
type SwarmSpec struct {
	// BaseSeed is the first seed; Count (default 8) seeds are explored.
	BaseSeed int64 `json:"base_seed,omitempty"`
	Count    int   `json:"count,omitempty"`
	// Machines selects "both" (default), "multicube", or "singlebus".
	Machines string `json:"machines,omitempty"`
	// MaxStates is the per-seed exploration budget; default 4000.
	MaxStates int `json:"max_states,omitempty"`
}

// Sanity caps, protecting the farm from unbounded submissions. Generous
// relative to every preset and benchmark in the repo.
const (
	maxMCStates    = 5_000_000
	maxSimRequests = 1_000_000
	maxGridN       = 32
	maxSwarmCount  = 1024
	maxLitmusSeeds = 1024
)

// Normalize validates s and returns its canonical form: schema stamped,
// presets expanded inline, defaults made explicit, payloads of other
// kinds rejected. The receiver is not modified.
func (s *Spec) Normalize() (*Spec, error) {
	out := &Spec{Schema: SchemaVersion, Kind: s.Kind}
	if s.Schema != 0 && s.Schema != SchemaVersion {
		return nil, fmt.Errorf("jobspec: schema %d not supported (want %d)", s.Schema, SchemaVersion)
	}
	set := 0
	for _, p := range []bool{s.Sim != nil, s.MC != nil, s.Litmus != nil, s.Swarm != nil} {
		if p {
			set++
		}
	}
	if set != 1 {
		return nil, fmt.Errorf("jobspec: exactly one payload must be set (got %d)", set)
	}
	switch s.Kind {
	case KindSim:
		if s.Sim == nil {
			return nil, fmt.Errorf("jobspec: kind %q without sim payload", s.Kind)
		}
		v := *s.Sim
		if err := v.normalize(); err != nil {
			return nil, err
		}
		out.Sim = &v
	case KindMC:
		if s.MC == nil {
			return nil, fmt.Errorf("jobspec: kind %q without mc payload", s.Kind)
		}
		v, err := s.MC.normalize()
		if err != nil {
			return nil, err
		}
		out.MC = v
	case KindLitmus:
		if s.Litmus == nil {
			return nil, fmt.Errorf("jobspec: kind %q without litmus payload", s.Kind)
		}
		v := *s.Litmus
		if err := v.normalize(); err != nil {
			return nil, err
		}
		out.Litmus = &v
	case KindSwarm:
		if s.Swarm == nil {
			return nil, fmt.Errorf("jobspec: kind %q without swarm payload", s.Kind)
		}
		v := *s.Swarm
		if err := v.normalize(); err != nil {
			return nil, err
		}
		out.Swarm = &v
	default:
		return nil, fmt.Errorf("jobspec: unknown kind %q (want sim|mc|litmus|swarm)", s.Kind)
	}
	return out, nil
}

func (v *SimSpec) normalize() error {
	if v.N == 0 {
		v.N = 4
	}
	if v.N < 1 || v.N > maxGridN {
		return fmt.Errorf("jobspec: sim n=%d out of range [1,%d]", v.N, maxGridN)
	}
	if v.BlockWords == 0 {
		v.BlockWords = 16
	}
	if v.BlockWords < 2 || v.BlockWords > 1024 {
		return fmt.Errorf("jobspec: sim block_words=%d out of range [2,1024]", v.BlockWords)
	}
	if v.ThinkNS == 0 {
		v.ThinkNS = 10_000
	}
	if v.ThinkNS < 0 {
		return fmt.Errorf("jobspec: sim think_ns=%d negative", v.ThinkNS)
	}
	if v.Exponential == nil {
		t := true
		v.Exponential = &t
	}
	if v.SharedLines == 0 {
		v.SharedLines = 64
	}
	if v.PrivateLines == 0 {
		v.PrivateLines = 16
	}
	if v.PShared == 0 {
		v.PShared = 0.5
	}
	if v.PWrite == 0 {
		v.PWrite = 0.3
	}
	if v.PShared < 0 || v.PShared > 1 || v.PWrite < 0 || v.PWrite > 1 {
		return fmt.Errorf("jobspec: sim probabilities out of [0,1]: p_shared=%v p_write=%v", v.PShared, v.PWrite)
	}
	if v.Requests == 0 {
		v.Requests = 100
	}
	if v.Requests < 0 || v.Requests > maxSimRequests {
		return fmt.Errorf("jobspec: sim requests=%d out of range [0,%d]", v.Requests, maxSimRequests)
	}
	return nil
}

func (v *MCSpec) normalize() (*MCSpec, error) {
	out := &MCSpec{Options: v.Options}
	switch {
	case v.Preset != "" && v.Scenario != nil:
		return nil, fmt.Errorf("jobspec: mc job sets both preset and scenario")
	case v.Preset != "":
		sc, err := mc.Preset(v.Preset)
		if err != nil {
			return nil, fmt.Errorf("jobspec: %v", err)
		}
		out.Scenario = &sc
	case v.Scenario != nil:
		sc := *v.Scenario
		// Deep-copy the program so normalization never aliases the input.
		sc.Procs = append([]mc.Proc(nil), sc.Procs...)
		for i := range sc.Procs {
			sc.Procs[i].Ops = append([]mc.ProcOp(nil), sc.Procs[i].Ops...)
		}
		out.Scenario = &sc
	default:
		return nil, fmt.Errorf("jobspec: mc job needs a preset or an inline scenario")
	}
	out.Scenario.FillDefaults()
	if err := out.Scenario.Validate(); err != nil {
		return nil, fmt.Errorf("jobspec: %v", err)
	}
	o := &out.Options
	if o.MaxStates == 0 {
		o.MaxStates = 200_000
	}
	if o.MaxStates < 0 || o.MaxStates > maxMCStates {
		return nil, fmt.Errorf("jobspec: mc max_states=%d out of range [0,%d]", o.MaxStates, maxMCStates)
	}
	if o.MaxStepsPerRun == 0 {
		o.MaxStepsPerRun = 20_000
	}
	if o.MaxReissues == 0 {
		o.MaxReissues = 128
	}
	return out, nil
}

// ExploreOptions lowers the canonical options into mc.Options; the
// caller supplies the execution-policy knobs (workers, ctx, progress).
func (v *MCSpec) ExploreOptions() mc.Options {
	o := v.Options
	return mc.Options{
		MaxStates:      o.MaxStates,
		MaxDepth:       o.MaxDepth,
		DepthStep:      o.DepthStep,
		MaxStepsPerRun: o.MaxStepsPerRun,
		MaxReissues:    o.MaxReissues,
		DisablePOR:     o.DisablePOR,
		DisableSleep:   o.DisableSleep,
		NoMinimize:     o.NoMinimize,
		SCNodes:        o.SCNodes,
	}
}

func (v *LitmusSpec) normalize() error {
	if v.Test == "" {
		v.Test = "all"
	}
	if v.Test != "all" {
		if _, ok := memmodel.LitmusByName(v.Test); !ok {
			return fmt.Errorf("jobspec: unknown litmus test %q", v.Test)
		}
	}
	if v.N == 0 {
		v.N = 2
	}
	if v.N < 2 || v.N > maxGridN {
		return fmt.Errorf("jobspec: litmus n=%d out of range [2,%d]", v.N, maxGridN)
	}
	if v.Seeds == 0 {
		v.Seeds = 4
	}
	if v.Seeds < 1 || v.Seeds > maxLitmusSeeds {
		return fmt.Errorf("jobspec: litmus seeds=%d out of range [1,%d]", v.Seeds, maxLitmusSeeds)
	}
	if v.Rounds == 0 {
		v.Rounds = 4
	}
	if v.Rounds < 1 || v.Rounds > 64 {
		return fmt.Errorf("jobspec: litmus rounds=%d out of range [1,64]", v.Rounds)
	}
	if v.MaxJitterNS == 0 {
		v.MaxJitterNS = 2_000
	}
	if v.MaxJitterNS < 0 {
		return fmt.Errorf("jobspec: litmus max_jitter_ns=%d negative", v.MaxJitterNS)
	}
	return nil
}

func (v *SwarmSpec) normalize() error {
	if v.Count == 0 {
		v.Count = 8
	}
	if v.Count < 1 || v.Count > maxSwarmCount {
		return fmt.Errorf("jobspec: swarm count=%d out of range [1,%d]", v.Count, maxSwarmCount)
	}
	if v.Machines == "" {
		v.Machines = "both"
	}
	switch v.Machines {
	case "both", "multicube", "singlebus":
	default:
		return fmt.Errorf("jobspec: swarm machines=%q (want both|multicube|singlebus)", v.Machines)
	}
	if v.MaxStates == 0 {
		v.MaxStates = 4000
	}
	if v.MaxStates < 0 || v.MaxStates > maxMCStates {
		return fmt.Errorf("jobspec: swarm max_states=%d out of range [0,%d]", v.MaxStates, maxMCStates)
	}
	return nil
}

// Canonical returns the byte-stable canonical encoding of the
// normalized spec. Two calls — in this process or another — return
// identical bytes for any two specs that normalize to the same job.
func (s *Spec) Canonical() ([]byte, error) {
	n, err := s.Normalize()
	if err != nil {
		return nil, err
	}
	return CanonicalJSON(n)
}

// Fingerprint returns the job's identity: the hex SHA-256 of its
// canonical encoding. This is the farm's cache key.
func (s *Spec) Fingerprint() (string, error) {
	b, err := s.Canonical()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// CanonicalJSON marshals v with encoding/json and re-encodes the result
// with sorted object keys and digit-exact numbers (via json.Number, so
// 64-bit integers never round-trip through float64 and floats keep Go's
// shortest-round-trip form). The output is compact: no insignificant
// whitespace.
func CanonicalJSON(v any) ([]byte, error) {
	raw, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	var g any
	if err := dec.Decode(&g); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := writeCanonical(&buf, g); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func writeCanonical(buf *bytes.Buffer, v any) error {
	switch x := v.(type) {
	case nil:
		buf.WriteString("null")
	case bool:
		if x {
			buf.WriteString("true")
		} else {
			buf.WriteString("false")
		}
	case json.Number:
		buf.WriteString(x.String())
	case string:
		b, err := json.Marshal(x)
		if err != nil {
			return err
		}
		buf.Write(b)
	case []any:
		buf.WriteByte('[')
		for i, e := range x {
			if i > 0 {
				buf.WriteByte(',')
			}
			if err := writeCanonical(buf, e); err != nil {
				return err
			}
		}
		buf.WriteByte(']')
	case map[string]any:
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		buf.WriteByte('{')
		for i, k := range keys {
			if i > 0 {
				buf.WriteByte(',')
			}
			kb, err := json.Marshal(k)
			if err != nil {
				return err
			}
			buf.Write(kb)
			buf.WriteByte(':')
			if err := writeCanonical(buf, x[k]); err != nil {
				return err
			}
		}
		buf.WriteByte('}')
	default:
		return fmt.Errorf("jobspec: unencodable value %T in canonical form", v)
	}
	return nil
}
