package farm

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"multicube/internal/farm/jobspec"
	"multicube/internal/mc"
)

// mcSpec builds a normalized mc spec with its fingerprint.
func mcSpec(t *testing.T, body string) (*jobspec.Spec, string) {
	t.Helper()
	var raw jobspec.Spec
	if err := json.Unmarshal([]byte(body), &raw); err != nil {
		t.Fatal(err)
	}
	spec, err := raw.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	fp, err := spec.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	return spec, fp
}

// stripResume removes the fields a resumed run legitimately differs in;
// everything else must match an uninterrupted execution exactly.
func stripResume(r mc.Result) mc.Result {
	r.Resumed = false
	r.ResumeNote = ""
	r.Spills = 0
	r.DiskBytes = 0
	return r
}

// TestExecutorCheckpointResume drives the resumable-job path end to
// end: a canceled mc job leaves its checkpoint behind, the resubmitted
// identical job resumes from it (Resumed=true) to the byte-identical
// verdict and state count, and the checkpoint directory is deleted once
// the job completes.
func TestExecutorCheckpointResume(t *testing.T) {
	root := t.TempDir()
	x := executor{mcWorkers: 1, checkpointRoot: root, mcCheckpointEvery: 10}
	spec, fp := mcSpec(t, `{"kind":"mc","mc":{"preset":"read-race"}}`)
	ckdir := filepath.Join(root, fpShard(fp), fp)

	base, err := mc.Explore(*spec.MC.Scenario, spec.MC.ExploreOptions())
	if err != nil {
		t.Fatal(err)
	}

	// First attempt: cancel after 200 progress reports (one per
	// execution), well past many 10-execution checkpoint boundaries and
	// well before read-race's ~3300 executions finish.
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	res := x.run(ctx, spec, fp, func(Progress) {
		if calls++; calls == 200 {
			cancel()
		}
	})
	cancel()
	if res.Verdict != "canceled" {
		t.Fatalf("interrupted job verdict = %q, want canceled (after %d reports)", res.Verdict, calls)
	}
	if _, err := os.Stat(filepath.Join(ckdir, "MANIFEST.json")); err != nil {
		t.Fatalf("canceled job left no checkpoint: %v", err)
	}

	// Resubmission: same spec, fresh context. Must resume, finish, and
	// clean its checkpoint up.
	res2 := x.run(context.Background(), spec, fp, nil)
	if res2.Verdict != "ok" {
		t.Fatalf("resumed job verdict = %q (err %q), want ok", res2.Verdict, res2.Error)
	}
	if !res2.MC.Resumed {
		t.Fatal("resubmitted job did not resume from the checkpoint")
	}
	if !reflect.DeepEqual(stripResume(base), stripResume(res2.MC.Result)) {
		t.Fatalf("resumed farm job differs from direct run:\n  base:    %+v\n  resumed: %+v",
			base, res2.MC.Result)
	}
	if _, err := os.Stat(ckdir); !os.IsNotExist(err) {
		t.Fatalf("completed job left its checkpoint dir behind (stat err %v)", err)
	}
}

// TestExecutorCheckpointSkippedWhenParallel pins the guard: with
// explorer parallelism or distribution on, checkpointing is skipped
// (not an error) and jobs still complete.
func TestExecutorCheckpointSkippedWhenParallel(t *testing.T) {
	root := t.TempDir()
	spec, fp := mcSpec(t, `{"kind":"mc","mc":{"preset":"sb-writeonce-race"}}`)
	for _, x := range []executor{
		{mcWorkers: 2, checkpointRoot: root},
		{mcWorkers: 1, mcDistParts: 2, checkpointRoot: root},
	} {
		res := x.run(context.Background(), spec, fp, nil)
		if res.Verdict != "ok" {
			t.Fatalf("executor %+v: verdict = %q (err %q), want ok", x, res.Verdict, res.Error)
		}
		if res.MC.Resumed {
			t.Fatalf("executor %+v: parallel job claims a resume", x)
		}
	}
	if _, err := os.Stat(filepath.Join(root, fpShard(fp), fp)); !os.IsNotExist(err) {
		t.Fatal("parallel executor wrote a checkpoint directory")
	}
}

// TestExecutorDistParts pins that the farm's partition knob reaches the
// explorer: a distributed job reports cross-partition handoffs and the
// sequential verdict.
func TestExecutorDistParts(t *testing.T) {
	x := executor{mcWorkers: 1, mcDistParts: 3}
	spec, fp := mcSpec(t, `{"kind":"mc","mc":{"preset":"read-race"}}`)
	seq, err := mc.Explore(*spec.MC.Scenario, spec.MC.ExploreOptions())
	if err != nil {
		t.Fatal(err)
	}
	res := x.run(context.Background(), spec, fp, nil)
	if res.Verdict != "ok" {
		t.Fatalf("distributed job verdict = %q (err %q), want ok", res.Verdict, res.Error)
	}
	if res.MC.Handoffs == 0 {
		t.Fatal("distributed job reports no handoffs")
	}
	if res.MC.States != seq.States || res.MC.Exhausted != seq.Exhausted {
		t.Fatalf("distributed coverage differs: got states=%d exhausted=%v, want %d/%v",
			res.MC.States, res.MC.Exhausted, seq.States, seq.Exhausted)
	}
}

// TestServerSurfacesResumeMetrics checks the /metrics plumbing for the
// new gauges without requiring actual resumes: a fresh server reports
// the fields at zero and a distributed run bumps mc_handoffs.
func TestServerSurfacesResumeMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MCDistParts: 2})
	_, st := postJob(t, ts, `{"kind":"mc","mc":{"preset":"read-race"}}`)
	waitDone(t, ts, st.JobID)

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.MCHandoffs == 0 {
		t.Fatal("metrics report no handoffs after a distributed mc job")
	}
	if m.MCJobsResumed != 0 {
		t.Fatalf("mc_jobs_resumed = %d on a farm that never resumed", m.MCJobsResumed)
	}
}

// TestCacheDiskEvictionBySize fills a size-bounded disk tier and checks
// the least-recently-written entries are swept, the gauge tracks the
// survivors, and evicted fingerprints re-run (miss) on a cold cache.
func TestCacheDiskEvictionBySize(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	fps := []string{"aa01", "bb02", "cc03", "dd04"}
	entrySize := 0
	for i, fp := range fps {
		data := testResult(t, fp)
		entrySize = len(data)
		if err := c.Put(fp, data); err != nil {
			t.Fatal(err)
		}
		// Distinct, strictly increasing mtimes so LRW order is exact.
		when := time.Now().Add(time.Duration(i-len(fps)) * time.Hour)
		if err := os.Chtimes(c.path(fp), when, when); err != nil {
			t.Fatal(err)
		}
	}
	// Budget for two entries: the two oldest must go.
	c.SetDiskLimits(int64(2*entrySize), 0)
	c.evict(time.Now())

	bytes, evictions := c.DiskStats()
	if evictions != 2 {
		t.Fatalf("evictions = %d, want 2", evictions)
	}
	if bytes != int64(2*entrySize) {
		t.Fatalf("disk bytes = %d, want %d", bytes, 2*entrySize)
	}
	cold, err := NewCache(dir, 4) // fresh cache: no memory tier to mask disk state
	if err != nil {
		t.Fatal(err)
	}
	for _, fp := range fps[:2] {
		if _, _, ok := cold.Get(fp); ok {
			t.Fatalf("%s survived a sweep that should have evicted it", fp)
		}
	}
	for _, fp := range fps[2:] {
		if _, tier, ok := cold.Get(fp); !ok || tier != TierDisk {
			t.Fatalf("%s: ok=%v tier=%q, want disk hit", fp, ok, tier)
		}
	}
}

// TestCacheDiskEvictionByAge backdates entries past the age cap and
// checks the sweep expires exactly those.
func TestCacheDiskEvictionByAge(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	c.SetDiskLimits(0, time.Hour)
	for _, fp := range []string{"ee05", "ff06"} {
		if err := c.Put(fp, testResult(t, fp)); err != nil {
			t.Fatal(err)
		}
	}
	old := time.Now().Add(-2 * time.Hour)
	if err := os.Chtimes(c.path("ee05"), old, old); err != nil {
		t.Fatal(err)
	}
	c.evict(time.Now())
	if _, evictions := c.DiskStats(); evictions != 1 {
		t.Fatalf("evictions = %d, want 1 (only the backdated entry)", evictions)
	}
	cold, err := NewCache(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := cold.Get("ee05"); ok {
		t.Fatal("expired entry survived the age sweep")
	}
	if _, tier, ok := cold.Get("ff06"); !ok || tier != TierDisk {
		t.Fatalf("fresh entry: ok=%v tier=%q, want disk hit", ok, tier)
	}
}

// TestCacheEvictionLeavesMemoryTier pins that the disk sweep never
// touches the memory LRU: an evicted entry still serves from memory in
// the same process.
func TestCacheEvictionLeavesMemoryTier(t *testing.T) {
	c, err := NewCache(t.TempDir(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put("aa07", testResult(t, "aa07")); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-time.Hour)
	os.Chtimes(c.path("aa07"), old, old)
	c.SetDiskLimits(0, time.Minute)
	c.evict(time.Now())
	if _, tier, ok := c.Get("aa07"); !ok || tier != TierMem {
		t.Fatalf("ok=%v tier=%q, want a memory hit surviving the disk sweep", ok, tier)
	}
}
