package farm

import (
	"os"
	"path/filepath"
	"testing"

	"multicube/internal/farm/jobspec"
)

// testResult builds a valid canonical result payload for fingerprint fp.
func testResult(t *testing.T, fp string) []byte {
	t.Helper()
	r := jobspec.Result{
		Schema: jobspec.SchemaVersion, Kind: jobspec.KindMC,
		Fingerprint: fp, Verdict: "ok",
	}
	b, err := r.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestCacheMemoryTier(t *testing.T) {
	c, err := NewCache("", 2)
	if err != nil {
		t.Fatal(err)
	}
	c.Put("aa11", testResult(t, "aa11"))
	got, tier, ok := c.Get("aa11")
	if !ok || tier != TierMem {
		t.Fatalf("Get = ok=%v tier=%q, want memory hit", ok, tier)
	}
	if string(got) != string(testResult(t, "aa11")) {
		t.Fatal("payload mismatch")
	}
	if _, _, ok := c.Get("bb22"); ok {
		t.Fatal("unexpected hit for absent key")
	}
}

func TestCacheMemoryLRUEviction(t *testing.T) {
	c, err := NewCache("", 2)
	if err != nil {
		t.Fatal(err)
	}
	c.Put("aa", testResult(t, "aa"))
	c.Put("bb", testResult(t, "bb"))
	c.Get("aa") // refresh aa so bb is the LRU victim
	c.Put("cc", testResult(t, "cc"))
	if _, _, ok := c.Get("bb"); ok {
		t.Fatal("bb should have been evicted (memory-only cache)")
	}
	for _, fp := range []string{"aa", "cc"} {
		if _, _, ok := c.Get(fp); !ok {
			t.Fatalf("%s should have survived", fp)
		}
	}
}

func TestCacheDiskRecovery(t *testing.T) {
	dir := t.TempDir()
	c1, err := NewCache(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := testResult(t, "deadbeef")
	if err := c1.Put("deadbeef", want); err != nil {
		t.Fatal(err)
	}

	// A fresh cache over the same directory serves the entry from disk
	// and promotes it to memory.
	c2, err := NewCache(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	got, tier, ok := c2.Get("deadbeef")
	if !ok || tier != TierDisk {
		t.Fatalf("first Get = ok=%v tier=%q, want disk hit", ok, tier)
	}
	if string(got) != string(want) {
		t.Fatal("recovered payload differs from stored payload")
	}
	if _, tier, ok := c2.Get("deadbeef"); !ok || tier != TierMem {
		t.Fatalf("second Get = ok=%v tier=%q, want promoted memory hit", ok, tier)
	}
}

func TestCacheMemEvictionFallsBackToDisk(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	c.Put("aa", testResult(t, "aa"))
	c.Put("bb", testResult(t, "bb")) // evicts aa from memory
	if _, tier, ok := c.Get("aa"); !ok || tier != TierDisk {
		t.Fatalf("Get(aa) = ok=%v tier=%q, want disk hit after memory eviction", ok, tier)
	}
}

func TestCacheRejectsCorruptDiskEntry(t *testing.T) {
	dir := t.TempDir()
	c1, err := NewCache(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Put("cafe", testResult(t, "cafe")); err != nil {
		t.Fatal(err)
	}
	// Corrupt the file on disk behind the cache's back.
	path := filepath.Join(dir, "ca", "cafe.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	c2, err := NewCache(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := c2.Get("cafe"); ok {
		t.Fatal("corrupt entry served as a hit")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt entry not deleted")
	}
}

func TestCacheRejectsMismatchedFingerprint(t *testing.T) {
	dir := t.TempDir()
	c1, err := NewCache(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Store bytes whose embedded fingerprint disagrees with the key.
	if err := c1.Put("0011", testResult(t, "9999")); err != nil {
		t.Fatal(err)
	}
	c2, err := NewCache(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := c2.Get("0011"); ok {
		t.Fatal("entry with mismatched fingerprint served as a hit")
	}
}
