package farm

import (
	"os"
	"path/filepath"
	"testing"

	"multicube/internal/farm/jobspec"
)

func TestCorpusAddDedupPersist(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	e := CorpusEntry{Seed: 42, SingleBus: false, Kind: "coherence", Msg: "stale read", MaxStates: 4000}
	if added, err := c.Add(e); err != nil || !added {
		t.Fatalf("Add = %v, %v; want true, nil", added, err)
	}
	if added, _ := c.Add(e); added {
		t.Fatal("duplicate Add reported as new")
	}
	// Same seed, other machine: a distinct entry.
	e2 := e
	e2.SingleBus = true
	if added, _ := c.Add(e2); !added {
		t.Fatal("same seed on the other machine should be distinct")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}

	// Reload from disk.
	c2, err := OpenCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Len() != 2 {
		t.Fatalf("reloaded Len = %d, want 2", c2.Len())
	}
	got := c2.Entries()
	if got[0].SingleBus || !got[1].SingleBus {
		t.Fatalf("entries not sorted multicube-first: %+v", got)
	}
	if got[0].Msg != "stale read" || got[0].MaxStates != 4000 {
		t.Fatalf("entry fields lost on reload: %+v", got[0])
	}
}

func TestCorpusSkipsCorruptFiles(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Add(CorpusEntry{Seed: 7, Kind: "k", Msg: "m", MaxStates: 100}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "junk.json"), []byte("nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	c2, err := OpenCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Len() != 1 {
		t.Fatalf("Len = %d after corrupt file, want 1", c2.Len())
	}
}

func TestCorpusReplaySpecs(t *testing.T) {
	c, err := OpenCorpus("")
	if err != nil {
		t.Fatal(err)
	}
	c.Add(CorpusEntry{Seed: 5, SingleBus: true, Kind: "k", Msg: "m", MaxStates: 2500})
	specs := c.ReplaySpecs()
	if len(specs) != 1 {
		t.Fatalf("ReplaySpecs len = %d, want 1", len(specs))
	}
	sp, err := specs[0].Normalize()
	if err != nil {
		t.Fatalf("replay spec does not normalize: %v", err)
	}
	if sp.Kind != jobspec.KindSwarm || sp.Swarm.BaseSeed != 5 ||
		sp.Swarm.Count != 1 || sp.Swarm.Machines != "singlebus" || sp.Swarm.MaxStates != 2500 {
		t.Fatalf("replay spec fields wrong: %+v", sp.Swarm)
	}
	// Replay specs are stable cache keys: normalizing twice yields the
	// same fingerprint, so verified regressions hit the cache.
	fp1, err := sp.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	sp2, _ := specs[0].Normalize()
	fp2, _ := sp2.Fingerprint()
	if fp1 != fp2 {
		t.Fatal("replay fingerprint unstable")
	}
}
