package farm

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestConcurrentClientsExactlyOnceExecution is the -race stress for the
// farm's core promise: under a storm of duplicate submissions from many
// clients, each unique fingerprint executes exactly once, every
// accepted job reaches a terminal state, the hit accounting adds up,
// and shutdown is clean.
func TestConcurrentClientsExactlyOnceExecution(t *testing.T) {
	s, err := New(Config{
		Workers:    4,
		QueueDepth: 256, // deep enough that backpressure never triggers
		CacheDir:   t.TempDir(),
		RatePerSec: -1,
		JobTimeout: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// A small pool of unique cheap jobs; most submissions duplicate one.
	const uniq = 6
	specs := make([]string, uniq)
	for i := range specs {
		specs[i] = fmt.Sprintf(
			`{"kind":"swarm","swarm":{"base_seed":%d,"count":1,"machines":"multicube","max_states":1500}}`, 100+i)
	}

	const clients = 8
	const perClient = 30
	var (
		mu      sync.Mutex
		jobIDs  []string
		cached  int
		deduped int
		queued  int
	)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				spec := specs[(c+i)%uniq]
				resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(spec))
				if err != nil {
					t.Error(err)
					return
				}
				var st jobStatus
				json.NewDecoder(resp.Body).Decode(&st)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
					t.Errorf("submit = %d", resp.StatusCode)
					return
				}
				mu.Lock()
				switch {
				case st.Cached:
					cached++
				case st.Deduped:
					deduped++
				default:
					queued++
					jobIDs = append(jobIDs, st.JobID)
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()

	// Every accepted job must reach a terminal state: no losses.
	for _, id := range jobIDs {
		st := waitDone(t, ts, id)
		if st.Status != StateDone {
			t.Fatalf("job %s = %q, want done", id, st.Status)
		}
	}

	total := clients * perClient
	if cached+deduped+queued != total {
		t.Fatalf("accounting: %d cached + %d deduped + %d queued != %d submitted", cached, deduped, queued, total)
	}
	// Exactly-once: each unique fingerprint created exactly one job.
	// More would be a double run; fewer would mean a client was answered
	// from a cache no one filled.
	if queued != uniq {
		t.Fatalf("executions = %d, want exactly %d (one per unique fingerprint)", queued, uniq)
	}
	s.mu.Lock()
	nJobs := len(s.jobs)
	inflight := len(s.byFP)
	s.mu.Unlock()
	if nJobs != uniq {
		t.Fatalf("server tracked %d jobs, want %d", nJobs, uniq)
	}
	if inflight != 0 {
		t.Fatalf("%d fingerprints still marked in-flight after completion", inflight)
	}

	// Server-side counters must tell the same story.
	m := s.ctr.snapshot(s.start)
	if m.JobsSubmitted != uint64(total) || m.JobsCompleted != uniq {
		t.Fatalf("metrics: submitted=%d completed=%d, want %d/%d", m.JobsSubmitted, m.JobsCompleted, total, uniq)
	}
	if got := m.CacheHitsMemory + m.CacheHitsDisk + m.DedupHits; got != uint64(total-uniq) {
		t.Fatalf("metrics hits = %d, want %d", got, total-uniq)
	}
	if m.CacheMisses != uniq {
		t.Fatalf("metrics misses = %d, want %d", m.CacheMisses, uniq)
	}

	// Duplicate submissions of each unique spec now serve byte-identical
	// bytes from cache.
	for _, spec := range specs {
		var payloads [][]byte
		for i := 0; i < 2; i++ {
			resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(spec))
			if err != nil {
				t.Fatal(err)
			}
			var st jobStatus
			json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if !st.Cached {
				t.Fatalf("post-storm submit not cached: %+v", st)
			}
			payloads = append(payloads, st.Result)
		}
		if !bytes.Equal(payloads[0], payloads[1]) {
			t.Fatal("repeated cache hits disagree byte-wise")
		}
	}

	// Clean shutdown: nothing in flight, so the drain must be immediate
	// and error-free.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Fatalf("Close = %v", err)
	}
}
