package farm

import (
	"sync"
	"time"
)

// rateLimiter is a per-client token bucket: rate tokens/sec with a
// burst ceiling, keyed by client identity (the server uses the remote
// host). Buckets are created on first sight and pruned once the table
// grows past a bound, so an address-spraying client cannot balloon
// memory.
type rateLimiter struct {
	rate  float64
	burst float64

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newRateLimiter(rate float64, burst int) *rateLimiter {
	if burst < 1 {
		burst = 1
	}
	return &rateLimiter{rate: rate, burst: float64(burst), buckets: make(map[string]*bucket)}
}

// allow consumes one token for key at time now; false means the client
// is over its rate.
func (l *rateLimiter) allow(key string, now time.Time) bool {
	if l.rate <= 0 {
		return true // disabled
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	b, ok := l.buckets[key]
	if !ok {
		if len(l.buckets) >= 65536 {
			l.prune(now)
		}
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[key] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * l.rate
	if b.tokens > l.burst {
		b.tokens = l.burst
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// prune drops buckets idle long enough to have refilled completely
// (they carry no information a fresh bucket would not).
func (l *rateLimiter) prune(now time.Time) {
	idle := time.Duration(l.burst/l.rate*float64(time.Second)) + time.Second
	for k, b := range l.buckets {
		if now.Sub(b.last) > idle {
			delete(l.buckets, k)
		}
	}
}
