package farm

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"multicube/internal/farm/jobspec"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.CacheDir == "" {
		cfg.CacheDir = t.TempDir()
	}
	if cfg.RatePerSec == 0 {
		cfg.RatePerSec = -1 // off: tests hammer from one address
	}
	if cfg.JobTimeout == 0 {
		cfg.JobTimeout = time.Minute
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Close(ctx)
	})
	return s, ts
}

func postJob(t *testing.T, ts *httptest.Server, spec string) (int, jobStatus) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st jobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode, st
}

func waitDone(t *testing.T, ts *httptest.Server, id string) jobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st jobStatus
		json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		switch st.Status {
		case StateDone, StateFailed, StateCanceled:
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q", id, st.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

const mcJob = `{"kind":"mc","mc":{"preset":"sb-writeonce-race"}}`

// TestSubmitTwiceSecondIsCachedByteIdentical is the tentpole's
// acceptance path: the same mc job over HTTP twice — the first runs,
// the second is a cache hit serving byte-identical result bytes.
func TestSubmitTwiceSecondIsCachedByteIdentical(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	code, st := postJob(t, ts, mcJob)
	if code != http.StatusAccepted || st.Status != StateQueued {
		t.Fatalf("first submit = %d %q, want 202 queued", code, st.Status)
	}
	first := waitDone(t, ts, st.JobID)
	if first.Status != StateDone || first.Verdict != "ok" {
		t.Fatalf("first job = %q/%q, want done/ok (preset exhausts clean)", first.Status, first.Verdict)
	}
	if len(first.Result) == 0 {
		t.Fatal("first job carries no result payload")
	}

	code2, st2 := postJob(t, ts, mcJob)
	if code2 != http.StatusOK || !st2.Cached {
		t.Fatalf("second submit = %d cached=%v, want 200 cached", code2, st2.Cached)
	}
	if st2.CacheTier != TierMem {
		t.Fatalf("cache tier = %q, want memory", st2.CacheTier)
	}
	if !bytes.Equal(st2.Result, first.Result) {
		t.Fatalf("cached result not byte-identical:\nfirst:  %s\ncached: %s", first.Result, st2.Result)
	}
	if st2.Fingerprint != first.Fingerprint {
		t.Fatal("fingerprint mismatch between run and cache hit")
	}
}

// TestSpellingVariantsShareCache proves canonicalization is the cache
// key: a spec spelled with explicit defaults hits the cache entry of
// the minimal spelling.
func TestSpellingVariantsShareCache(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	_, st := postJob(t, ts, `{"kind":"swarm","swarm":{"base_seed":3,"count":1,"machines":"multicube","max_states":1500}}`)
	waitDone(t, ts, st.JobID)

	// Different key order, schema stated explicitly: same fingerprint.
	code, st2 := postJob(t, ts, fmt.Sprintf(
		`{"swarm":{"max_states":1500,"machines":"multicube","count":1,"base_seed":3},"schema":%d,"kind":"swarm"}`,
		jobspec.SchemaVersion))
	if code != http.StatusOK || !st2.Cached {
		t.Fatalf("variant spelling = %d cached=%v, want 200 cached", code, st2.Cached)
	}
}

func TestDiskTierSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := newTestServer(t, Config{Workers: 1, CacheDir: dir})
	_, st := postJob(t, ts1, mcJob)
	first := waitDone(t, ts1, st.JobID)
	ts1.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	s1.Close(ctx)
	cancel()

	_, ts2 := newTestServer(t, Config{Workers: 1, CacheDir: dir})
	code, st2 := postJob(t, ts2, mcJob)
	if code != http.StatusOK || !st2.Cached || st2.CacheTier != TierDisk {
		t.Fatalf("post-restart submit = %d cached=%v tier=%q, want 200 disk hit", code, st2.Cached, st2.CacheTier)
	}
	if !bytes.Equal(st2.Result, first.Result) {
		t.Fatal("disk-recovered result not byte-identical to original run")
	}
}

func TestStreamDeliversProgressAndResult(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	_, st := postJob(t, ts, `{"kind":"mc","mc":{"preset":"read-race"}}`)
	resp, err := http.Get(ts.URL + "/jobs/" + st.JobID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var sawProgress, sawResult bool
	for sc.Scan() {
		var frame struct {
			Type   string `json:"type"`
			Status string `json:"status"`
			Result json.RawMessage
		}
		if err := json.Unmarshal(sc.Bytes(), &frame); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		switch frame.Type {
		case "progress":
			sawProgress = true
		case "result":
			sawResult = true
			if frame.Status != StateDone {
				t.Fatalf("result frame status = %q", frame.Status)
			}
			if len(frame.Result) == 0 {
				t.Fatal("result frame has no payload")
			}
		default:
			t.Fatalf("unknown frame type %q", frame.Type)
		}
	}
	if !sawProgress || !sawResult {
		t.Fatalf("stream: progress=%v result=%v, want both", sawProgress, sawResult)
	}
}

func TestMetricsAndHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	_, st := postJob(t, ts, mcJob)
	waitDone(t, ts, st.JobID)
	postJob(t, ts, mcJob) // cache hit

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var m Metrics
	json.NewDecoder(resp.Body).Decode(&m)
	resp.Body.Close()
	if m.JobsSubmitted != 2 || m.JobsCompleted != 1 {
		t.Fatalf("metrics: submitted=%d completed=%d, want 2/1", m.JobsSubmitted, m.JobsCompleted)
	}
	if m.CacheHitsMemory != 1 || m.CacheMisses != 1 || m.CacheHitRatio != 0.5 {
		t.Fatalf("metrics cache: mem=%d miss=%d ratio=%v", m.CacheHitsMemory, m.CacheMisses, m.CacheHitRatio)
	}
	if m.StatesExplored == 0 {
		t.Fatal("metrics: states_explored not accounted")
	}
	if m.Workers != 1 || m.QueueCap == 0 {
		t.Fatalf("metrics gauges: workers=%d queue_cap=%d", m.Workers, m.QueueCap)
	}

	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, hr.Body)
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", hr.StatusCode)
	}
}

func TestRejectsInvalidSpecs(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	for _, body := range []string{
		`{`,
		`{"kind":"nope"}`,
		`{"kind":"mc"}`,
		`{"kind":"mc","mc":{"preset":"no-such-preset"}}`,
		`{"kind":"swarm","swarm":{"count":-1}}`,
	} {
		code, _ := postJob(t, ts, body)
		if code != http.StatusBadRequest {
			t.Errorf("submit %q = %d, want 400", body, code)
		}
	}
	// Over-limit body.
	big := `{"kind":"mc","mc":{"preset":"` + strings.Repeat("x", 2<<20) + `"}}`
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body = %d, want 413", resp.StatusCode)
	}
}

func TestRateLimitReturns429WithRetryAfter(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, RatePerSec: 1, RateBurst: 1})
	// Burst of 1: the first request spends the token, the second 429s.
	code, _ := postJob(t, ts, mcJob)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("first request = %d", code)
	}
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(mcJob))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
}

func TestQueueBackpressure(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	// Distinct slow-ish jobs; with one worker and one queue slot, at
	// least one of the later submissions must be rejected with 429.
	presets := []string{"readmod-race", "sync-race", "mlt-overflow-lock", "read-race"}
	var rejected bool
	for _, p := range presets {
		code, _ := postJob(t, ts, fmt.Sprintf(`{"kind":"mc","mc":{"preset":"%s"}}`, p))
		if code == http.StatusTooManyRequests {
			rejected = true
		}
	}
	if !rejected {
		t.Fatal("no submission hit queue backpressure")
	}
}

// TestGracefulDrainCancelsInFlight covers the SIGTERM path: Close with
// an expired budget cancels the running job promptly; the job is marked
// canceled — never lost, never cached.
func TestGracefulDrainCancelsInFlight(t *testing.T) {
	s, err := New(Config{Workers: 1, CacheDir: t.TempDir(), RatePerSec: -1, JobTimeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, st := postJob(t, ts, `{"kind":"mc","mc":{"preset":"readmod-race"}}`)
	// Wait for it to start running.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, _ := http.Get(ts.URL + "/jobs/" + st.JobID)
		var cur jobStatus
		json.NewDecoder(resp.Body).Decode(&cur)
		resp.Body.Close()
		if cur.Status == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never started: %q", cur.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	begin := time.Now()
	if err := s.Close(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Close = %v, want deadline exceeded (forced cancel)", err)
	}
	if elapsed := time.Since(begin); elapsed > 5*time.Second {
		t.Fatalf("drain took %v; cancellation not prompt", elapsed)
	}
	final := waitDone(t, ts, st.JobID)
	if final.Status != StateCanceled || final.Verdict != "canceled" {
		t.Fatalf("drained job = %q/%q, want canceled/canceled", final.Status, final.Verdict)
	}
	// Canceled partial work must not poison the cache.
	if _, _, ok := s.cache.Get(final.Fingerprint); ok {
		t.Fatal("canceled job was cached")
	}
	// Submissions after drain are refused.
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(mcJob))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain submit = %d, want 503", resp.StatusCode)
	}
}

func TestCorpusEndpointsRecordAndReplay(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	// Seed the corpus directly (finding a real violating swarm seed is
	// the fuzzer's job, not this test's) and replay through the API.
	s.corpus.Add(CorpusEntry{Seed: 11, SingleBus: false, Kind: "k", Msg: "m", MaxStates: 1500})

	resp, err := http.Get(ts.URL + "/corpus")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Entries []CorpusEntry `json:"entries"`
	}
	json.NewDecoder(resp.Body).Decode(&listing)
	resp.Body.Close()
	if len(listing.Entries) != 1 || listing.Entries[0].Seed != 11 {
		t.Fatalf("corpus listing = %+v", listing.Entries)
	}

	rr, err := http.Post(ts.URL+"/corpus/replay", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var replay struct {
		Submitted []jobStatus `json:"submitted"`
	}
	json.NewDecoder(rr.Body).Decode(&replay)
	rr.Body.Close()
	if rr.StatusCode != http.StatusOK || len(replay.Submitted) != 1 {
		t.Fatalf("replay = %d with %d jobs, want 200 with 1", rr.StatusCode, len(replay.Submitted))
	}
	st := replay.Submitted[0]
	if st.JobID != "" {
		waitDone(t, ts, st.JobID)
	}
	// A second replay of the now-verified regression is a cache hit.
	rr2, err := http.Post(ts.URL+"/corpus/replay", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(rr2.Body).Decode(&replay)
	rr2.Body.Close()
	if len(replay.Submitted) != 1 || !replay.Submitted[0].Cached {
		t.Fatalf("second replay not served from cache: %+v", replay.Submitted)
	}
}
