package farm

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"path/filepath"
	"sync"
	"time"

	"multicube/internal/farm/jobspec"
)

// Config parameterizes a Server. The zero value is a sensible
// single-machine deployment.
type Config struct {
	// Workers is the job worker pool size; default 4.
	Workers int
	// QueueDepth bounds queued (not yet running) jobs; past it,
	// submissions get 429 + Retry-After. Default 64.
	QueueDepth int
	// CacheDir is the on-disk result store; "" keeps results in memory
	// only. The swarm corpus lives under <CacheDir>/corpus unless
	// CorpusDir overrides it.
	CacheDir string
	// CacheMemEntries bounds the in-memory result tier; default 256.
	CacheMemEntries int
	// CorpusDir overrides the swarm-corpus directory.
	CorpusDir string
	// JobTimeout is the per-job execution ceiling; default 2m.
	JobTimeout time.Duration
	// MCWorkers is explorer parallelism per mc job; default 1 (the farm
	// parallelizes across jobs, not within them).
	MCWorkers int
	// MCDistParts splits each mc exploration across n fingerprint-range
	// partitions with cross-partition handoff (mc.Options.DistParts).
	// Like MCWorkers it is execution policy, not job identity: verdicts
	// are partition-count independent. Default 0 (off).
	MCDistParts int
	// MCCheckpointDir, when set, makes mc jobs resumable: each job
	// checkpoints its search under <dir>/<fp-prefix>/<fingerprint>, and a
	// resubmission of a killed or timed-out job (which is never cached)
	// resumes from the last checkpoint instead of starting over.
	// Checkpoints of completed jobs are deleted — the cached result
	// supersedes them. Requires MCWorkers <= 1 and MCDistParts <= 1;
	// otherwise checkpointing is silently skipped.
	MCCheckpointDir string
	// MCCheckpointEvery is the executions-between-checkpoints cadence
	// for resumable mc jobs; 0 uses the explorer default.
	MCCheckpointEvery int
	// CacheMaxDiskBytes bounds the disk result tier; past it, a sweep
	// evicts least-recently-written entries. 0 = unbounded.
	CacheMaxDiskBytes int64
	// CacheMaxAge expires disk-tier entries by age. 0 = no expiry.
	CacheMaxAge time.Duration
	// RatePerSec and RateBurst are the per-client token bucket; rate 0
	// disables limiting. Defaults: 50/s, burst 100.
	RatePerSec float64
	RateBurst  int
	// MaxBodyBytes bounds a submission body; default 1MiB.
	MaxBodyBytes int64
}

func (c *Config) fillDefaults() {
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.CacheMemEntries == 0 {
		c.CacheMemEntries = 256
	}
	if c.JobTimeout == 0 {
		c.JobTimeout = 2 * time.Minute
	}
	if c.MCWorkers == 0 {
		c.MCWorkers = 1
	}
	if c.RatePerSec == 0 {
		c.RatePerSec = 50
	}
	if c.RateBurst == 0 {
		c.RateBurst = 100
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.CorpusDir == "" && c.CacheDir != "" {
		c.CorpusDir = filepath.Join(c.CacheDir, "corpus")
	}
}

// Job lifecycle states.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// job is one tracked execution.
type job struct {
	id   string
	fp   string
	spec *jobspec.Spec

	mu      sync.Mutex
	state   string
	prog    Progress
	result  []byte // canonical result bytes, set before done closes
	verdict string
	errMsg  string
	lastObs uint64 // last states+events total folded into server counters
	done    chan struct{}
}

func (j *job) snapshotLocked() jobStatus {
	// Copy the progress struct: the worker keeps mutating j.prog, and
	// encoders read the snapshot after the job lock is released.
	prog := j.prog
	st := jobStatus{
		JobID:       j.id,
		Fingerprint: j.fp,
		Status:      j.state,
		Verdict:     j.verdict,
		Error:       j.errMsg,
		Progress:    &prog,
	}
	if j.result != nil {
		st.Result = json.RawMessage(j.result)
	}
	return st
}

// jobStatus is the wire form of a job (submission responses, status
// polls, stream frames).
type jobStatus struct {
	JobID       string          `json:"job_id,omitempty"`
	Fingerprint string          `json:"fingerprint"`
	Status      string          `json:"status"`
	Cached      bool            `json:"cached,omitempty"`
	CacheTier   string          `json:"cache_tier,omitempty"`
	Deduped     bool            `json:"deduped,omitempty"`
	Verdict     string          `json:"verdict,omitempty"`
	Error       string          `json:"error,omitempty"`
	Progress    *Progress       `json:"progress,omitempty"`
	Result      json.RawMessage `json:"result,omitempty"`
}

// Server is the farm: pool, queue, cache, corpus, metrics.
type Server struct {
	cfg     Config
	cache   *Cache
	corpus  *Corpus
	limiter *rateLimiter
	ctr     counters
	start   time.Time
	exec    executor

	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu     sync.Mutex
	closed bool
	jobs   map[string]*job
	byFP   map[string]*job // queued/running jobs, the single-flight index
	queue  chan *job
	nextID uint64

	wg sync.WaitGroup
}

// New builds and starts a server (its worker pool runs immediately;
// attach Handler to an http.Server to serve it).
func New(cfg Config) (*Server, error) {
	cfg.fillDefaults()
	cache, err := NewCache(cfg.CacheDir, cfg.CacheMemEntries)
	if err != nil {
		return nil, err
	}
	cache.SetDiskLimits(cfg.CacheMaxDiskBytes, cfg.CacheMaxAge)
	corpus, err := OpenCorpus(cfg.CorpusDir)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		cache:      cache,
		corpus:     corpus,
		limiter:    newRateLimiter(cfg.RatePerSec, cfg.RateBurst),
		start:      time.Now(),
		exec: executor{
			mcWorkers:         cfg.MCWorkers,
			mcDistParts:       cfg.MCDistParts,
			checkpointRoot:    cfg.MCCheckpointDir,
			mcCheckpointEvery: cfg.MCCheckpointEvery,
		},
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       make(map[string]*job),
		byFP:       make(map[string]*job),
		queue:      make(chan *job, cfg.QueueDepth),
	}
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s, nil
}

// Close drains the farm: no new submissions are accepted, every job
// already accepted runs to completion (or is promptly canceled once ctx
// expires), and the worker pool exits. Safe to call once.
func (s *Server) Close(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("farm: already closed")
	}
	s.closed = true
	s.mu.Unlock()
	close(s.queue)

	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		// Deadline passed: cancel in-flight jobs (they return within one
		// bounded run and are marked canceled, not lost) and wait.
		s.baseCancel()
		<-drained
		return ctx.Err()
	}
}

// worker drains the queue until Close.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

func (s *Server) runJob(j *job) {
	s.ctr.busyWorkers.Add(1)
	defer s.ctr.busyWorkers.Add(-1)
	j.mu.Lock()
	j.state = StateRunning
	j.mu.Unlock()

	ctx, cancel := context.WithTimeout(s.baseCtx, s.cfg.JobTimeout)
	defer cancel()
	begin := time.Now()
	res := s.exec.run(ctx, j.spec, j.fp, func(p Progress) {
		j.mu.Lock()
		j.prog = p
		// Fold throughput deltas into the farm-wide counters: states and
		// events are cumulative per job, so publish only the increment.
		obs := uint64(p.States) + p.Events
		if obs > j.lastObs {
			d := obs - j.lastObs
			j.lastObs = obs
			if p.States > 0 {
				s.ctr.statesExplored.Add(d)
			} else {
				s.ctr.eventsSimulated.Add(d)
			}
		}
		j.mu.Unlock()
	})
	s.ctr.busyNS.Add(int64(time.Since(begin)))

	if res.MC != nil {
		if res.MC.Resumed {
			s.ctr.mcResumed.Add(1)
		}
		s.ctr.mcHandoffs.Add(uint64(res.MC.Handoffs))
	}

	// Persist swarm catches before publishing the result, so a client
	// that sees the violation can immediately replay the corpus.
	if res.Swarm != nil {
		for _, v := range res.Swarm.Violations {
			s.corpus.Add(CorpusEntry{
				Seed: v.Seed, SingleBus: v.SingleBus,
				Kind: v.Kind, Msg: v.Msg,
				MaxStates: j.spec.Swarm.MaxStates,
				FoundBy:   j.fp,
			})
		}
	}

	final := StateDone
	switch res.Verdict {
	case "canceled":
		final = StateCanceled
		s.ctr.canceled.Add(1)
	case "error":
		final = StateFailed
		s.ctr.failed.Add(1)
	default:
		s.ctr.completed.Add(1)
	}

	var data []byte
	if final == StateDone {
		b, err := res.Encode()
		if err != nil {
			final = StateFailed
			res.Verdict = "error"
			res.Error = fmt.Sprintf("farm: encoding result: %v", err)
		} else {
			data = b
			// Only completed results are cacheable: canceled and failed
			// runs are not a function of the spec alone.
			s.cache.Put(j.fp, data)
		}
	}

	s.mu.Lock()
	if s.byFP[j.fp] == j {
		delete(s.byFP, j.fp)
	}
	s.mu.Unlock()

	j.mu.Lock()
	j.state = final
	j.verdict = res.Verdict
	j.errMsg = res.Error
	if data != nil {
		j.result = data
	} else if b, err := res.Encode(); err == nil {
		// Non-cacheable outcomes still return their payload to pollers.
		j.result = b
	}
	j.mu.Unlock()
	close(j.done)
}

// Handler returns the farm's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /corpus", s.handleCorpus)
	mux.HandleFunc("POST /corpus/replay", s.handleCorpusReplay)
	return mux
}

func clientKey(r *http.Request) string {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(v)
}

type apiError struct {
	Error string `json:"error"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if !s.limiter.allow(clientKey(r), time.Now()) {
		s.ctr.rateLimited.Add(1)
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, apiError{Error: "rate limit exceeded"})
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, s.cfg.MaxBodyBytes+1))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "reading body: " + err.Error()})
		return
	}
	if int64(len(body)) > s.cfg.MaxBodyBytes {
		writeJSON(w, http.StatusRequestEntityTooLarge, apiError{Error: "body over limit"})
		return
	}
	var raw jobspec.Spec
	if err := json.Unmarshal(body, &raw); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "decoding spec: " + err.Error()})
		return
	}
	spec, err := raw.Normalize()
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	fp, err := spec.Fingerprint()
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	s.ctr.submitted.Add(1)

	s.mu.Lock()
	// Single-flight: a queued or running job with this fingerprint
	// absorbs the duplicate — thousands of identical submissions cost
	// one execution.
	if inflight, ok := s.byFP[fp]; ok {
		s.mu.Unlock()
		s.ctr.dedupHits.Add(1)
		inflight.mu.Lock()
		st := inflight.snapshotLocked()
		inflight.mu.Unlock()
		st.Deduped = true
		st.Result = nil // attachers poll or stream; the body stays small
		writeJSON(w, http.StatusAccepted, st)
		return
	}
	// Cache: a completed result under this fingerprint is served
	// instantly, byte-identical to the run that produced it.
	if data, tier, ok := s.cache.Get(fp); ok {
		s.mu.Unlock()
		if tier == TierMem {
			s.ctr.cacheHitMem.Add(1)
		} else {
			s.ctr.cacheHitDisk.Add(1)
		}
		writeJSON(w, http.StatusOK, jobStatus{
			Fingerprint: fp, Status: StateDone,
			Cached: true, CacheTier: tier,
			Result: json.RawMessage(data),
		})
		return
	}
	s.ctr.cacheMiss.Add(1)
	if s.closed {
		s.mu.Unlock()
		writeJSON(w, http.StatusServiceUnavailable, apiError{Error: "server draining"})
		return
	}
	s.nextID++
	j := &job{
		id:    fmt.Sprintf("j%d", s.nextID),
		fp:    fp,
		spec:  spec,
		state: StateQueued,
		done:  make(chan struct{}),
	}
	select {
	case s.queue <- j:
	default:
		// Backpressure: the queue is full. 429 with a hint scaled to how
		// long a queue drain plausibly takes.
		s.mu.Unlock()
		s.ctr.queueRejected.Add(1)
		w.Header().Set("Retry-After", "2")
		writeJSON(w, http.StatusTooManyRequests, apiError{Error: "queue full"})
		return
	}
	s.jobs[j.id] = j
	s.byFP[fp] = j
	s.mu.Unlock()

	writeJSON(w, http.StatusAccepted, jobStatus{
		JobID: j.id, Fingerprint: fp, Status: StateQueued,
	})
}

func (s *Server) lookup(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeJSON(w, http.StatusNotFound, apiError{Error: "no such job"})
		return
	}
	j.mu.Lock()
	st := j.snapshotLocked()
	j.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

// streamFrame is one NDJSON line of a progress stream.
type streamFrame struct {
	Type string `json:"type"` // "progress" | "result"
	jobStatus
}

func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeJSON(w, http.StatusNotFound, apiError{Error: "no such job"})
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	emitProgress := func() {
		j.mu.Lock()
		st := j.snapshotLocked()
		j.mu.Unlock()
		st.Result = nil
		enc.Encode(streamFrame{Type: "progress", jobStatus: st})
		if flusher != nil {
			flusher.Flush()
		}
	}
	emitProgress()
	tick := time.NewTicker(100 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-j.done:
			j.mu.Lock()
			st := j.snapshotLocked()
			j.mu.Unlock()
			enc.Encode(streamFrame{Type: "result", jobStatus: st})
			if flusher != nil {
				flusher.Flush()
			}
			return
		case <-tick.C:
			emitProgress()
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := s.ctr.snapshot(s.start)
	s.mu.Lock()
	m.JobsByState = make(map[string]int)
	for _, j := range s.jobs {
		j.mu.Lock()
		m.JobsByState[j.state]++
		j.mu.Unlock()
	}
	m.QueueDepth = len(s.queue)
	m.QueueCap = s.cfg.QueueDepth
	s.mu.Unlock()
	m.Workers = s.cfg.Workers
	m.BusyWorkers = int(s.ctr.busyWorkers.Load())
	if m.Workers > 0 {
		m.WorkerUtilization = float64(m.BusyWorkers) / float64(m.Workers)
	}
	m.CacheMemEntries, m.CacheDiskItems = s.cache.Stats()
	m.CacheDiskBytes, m.CacheDiskEvictions = s.cache.DiskStats()
	m.CorpusSize = s.corpus.Len()
	writeJSON(w, http.StatusOK, m)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleCorpus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Entries []CorpusEntry `json:"entries"`
	}{Entries: s.corpus.Entries()})
}

// handleCorpusReplay resubmits every corpus entry as a single-seed
// swarm regression job through the normal submission path (dedup and
// cache apply: an already-verified regression is a cache hit).
func (s *Server) handleCorpusReplay(w http.ResponseWriter, r *http.Request) {
	if !s.limiter.allow(clientKey(r), time.Now()) {
		s.ctr.rateLimited.Add(1)
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, apiError{Error: "rate limit exceeded"})
		return
	}
	specs := s.corpus.ReplaySpecs()
	out := struct {
		Submitted []jobStatus `json:"submitted"`
	}{Submitted: []jobStatus{}}
	for i := range specs {
		st, code := s.submitSpec(&specs[i])
		if code >= 500 || code == http.StatusTooManyRequests {
			writeJSON(w, code, apiError{Error: "replay interrupted: " + st.Error})
			return
		}
		out.Submitted = append(out.Submitted, st)
	}
	writeJSON(w, http.StatusOK, out)
}

// submitSpec is the internal submission path shared by replay: same
// cache/dedup/queue semantics as handleSubmit, minus HTTP decoding.
func (s *Server) submitSpec(raw *jobspec.Spec) (jobStatus, int) {
	spec, err := raw.Normalize()
	if err != nil {
		return jobStatus{Error: err.Error()}, http.StatusBadRequest
	}
	fp, err := spec.Fingerprint()
	if err != nil {
		return jobStatus{Error: err.Error()}, http.StatusBadRequest
	}
	s.ctr.submitted.Add(1)
	s.mu.Lock()
	if inflight, ok := s.byFP[fp]; ok {
		s.mu.Unlock()
		s.ctr.dedupHits.Add(1)
		inflight.mu.Lock()
		st := inflight.snapshotLocked()
		inflight.mu.Unlock()
		st.Deduped = true
		st.Result = nil
		return st, http.StatusAccepted
	}
	if data, tier, ok := s.cache.Get(fp); ok {
		s.mu.Unlock()
		if tier == TierMem {
			s.ctr.cacheHitMem.Add(1)
		} else {
			s.ctr.cacheHitDisk.Add(1)
		}
		return jobStatus{
			Fingerprint: fp, Status: StateDone, Cached: true, CacheTier: tier,
			Result: json.RawMessage(data),
		}, http.StatusOK
	}
	s.ctr.cacheMiss.Add(1)
	if s.closed {
		s.mu.Unlock()
		return jobStatus{Error: "server draining"}, http.StatusServiceUnavailable
	}
	s.nextID++
	j := &job{
		id:    fmt.Sprintf("j%d", s.nextID),
		fp:    fp,
		spec:  spec,
		state: StateQueued,
		done:  make(chan struct{}),
	}
	select {
	case s.queue <- j:
	default:
		s.mu.Unlock()
		s.ctr.queueRejected.Add(1)
		return jobStatus{Error: "queue full"}, http.StatusTooManyRequests
	}
	s.jobs[j.id] = j
	s.byFP[fp] = j
	s.mu.Unlock()
	return jobStatus{JobID: j.id, Fingerprint: fp, Status: StateQueued}, http.StatusAccepted
}
