// Package farm is the multicube simulation-job server: it accepts sim,
// mc, litmus, and swarm jobs as JSON (internal/farm/jobspec), fans them
// out across a bounded worker pool with per-job contexts, and — the
// scaling lever — caches every result under its canonical scenario
// fingerprint, so identical jobs from any number of clients cost one
// execution. The repo-wide determinism discipline (multicube-vet's
// fingerprint and no-wall-clock passes) is what makes the cache sound:
// a job's result is a pure function of its canonical spec, so the
// fingerprint really is an identity, not a heuristic.
//
// The package splits into the deterministic spec/result encoding
// (subpackage jobspec, vet-enforced) and this server runtime, which
// legitimately uses the wall clock and goroutines and is therefore
// deliberately NOT marked //multicube:deterministic. The disk tiers
// (result cache, corpus, job checkpoints) are durable state, so the
// package IS marked for multicube-vet's atomicwrite pass: writers must
// use temp+sync+rename, deletes must name their retention rule.
//
//multicube:durable
package farm

import (
	"container/list"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"multicube/internal/farm/jobspec"
)

// Cache is the two-tier result store: an in-memory LRU over canonical
// result bytes in front of an optional on-disk store. Disk writes are
// atomic (temp file + rename into place), so a crash mid-write leaves
// either the old entry or none — never a torn one — and a restarted
// server recovers every completed result by fingerprint.
// The disk tier is optionally bounded (SetDiskLimits): when the stored
// bytes exceed the budget, or entries outlive the age cap, a sweep
// deletes least-recently-written entries first. Deletion is a plain
// unlink — atomic on POSIX — so a concurrent Get either reads the full
// entry or misses and re-runs the job; nothing is ever half-deleted.
type Cache struct {
	dir     string // "" = memory-only
	maxMem  int
	mu      sync.Mutex
	lru     *list.List               // front = most recently used
	byFP    map[string]*list.Element // fingerprint → LRU element
	onDisk  int                      // entries recovered or written this process
	scanned bool

	maxDiskBytes int64         // 0 = unbounded
	maxAge       time.Duration // 0 = no age cap
	diskBytes    int64         // bytes currently stored on disk
	evictions    uint64        // entries deleted by the sweep
	lastSweep    time.Time

	sweepMu sync.Mutex // serializes evict walks; mu stays hot-path only
}

type cacheEntry struct {
	fp   string
	data []byte
}

// Cache tiers reported by Get.
const (
	TierMem  = "memory"
	TierDisk = "disk"
)

// NewCache opens a cache holding up to maxMem results in memory
// (default 256) backed by dir ("" disables the disk tier). Existing
// entries under dir are counted — recovery is otherwise lazy, by
// fingerprint on first Get — and abandoned temp files from a previous
// crash are swept.
func NewCache(dir string, maxMem int) (*Cache, error) {
	if maxMem <= 0 {
		maxMem = 256
	}
	c := &Cache{dir: dir, maxMem: maxMem, lru: list.New(), byFP: make(map[string]*list.Element)}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("farm: cache dir: %w", err)
		}
		n, bytes, err := c.sweep()
		if err != nil {
			return nil, err
		}
		c.onDisk = n
		c.diskBytes = bytes
		c.scanned = true
	}
	return c, nil
}

// SetDiskLimits bounds the disk tier: maxBytes caps the total stored
// bytes (0 = unbounded), maxAge caps entry lifetime since last write
// (0 = no cap). Enforcement is a least-recently-written sweep run after
// writes; it never touches the memory tier.
func (c *Cache) SetDiskLimits(maxBytes int64, maxAge time.Duration) {
	c.mu.Lock()
	c.maxDiskBytes = maxBytes
	c.maxAge = maxAge
	c.mu.Unlock()
}

// sweep counts recoverable entries and their bytes, deleting temp
// droppings.
func (c *Cache) sweep() (int, int64, error) {
	n, bytes := 0, int64(0)
	err := filepath.WalkDir(c.dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		switch {
		case strings.HasSuffix(d.Name(), ".json"):
			n++
			if fi, err := d.Info(); err == nil {
				bytes += fi.Size()
			}
		case strings.Contains(d.Name(), ".tmp"):
			//multicube:atomicwrite-ok temp droppings from writers killed mid-Put; never renamed, so never durable
			os.Remove(path)
		}
		return nil
	})
	if err != nil {
		return 0, 0, fmt.Errorf("farm: cache recovery scan: %w", err)
	}
	return n, bytes, nil
}

// path shards entries by fingerprint prefix so no directory grows
// unboundedly.
func (c *Cache) path(fp string) string {
	shard := "xx"
	if len(fp) >= 2 {
		shard = fp[:2]
	}
	return filepath.Join(c.dir, shard, fp+".json")
}

// Get returns the stored canonical result bytes for fp and the tier
// that served them (TierMem or TierDisk), or ok=false on a miss. A disk
// hit is validated and promoted into the memory tier; a corrupt disk
// entry is deleted and reported as a miss (the job simply re-runs).
func (c *Cache) Get(fp string) (data []byte, tier string, ok bool) {
	c.mu.Lock()
	if el, hit := c.byFP[fp]; hit {
		c.lru.MoveToFront(el)
		data = el.Value.(*cacheEntry).data
		c.mu.Unlock()
		return data, TierMem, true
	}
	c.mu.Unlock()
	if c.dir == "" {
		return nil, "", false
	}
	b, err := os.ReadFile(c.path(fp))
	if err != nil {
		return nil, "", false
	}
	var r jobspec.Result
	if err := json.Unmarshal(b, &r); err != nil || r.Validate() != nil || r.Fingerprint != fp {
		//multicube:atomicwrite-ok corrupt entry: cache loss only costs a re-run, and keeping it would re-fail every Get
		if os.Remove(c.path(fp)) == nil {
			c.mu.Lock()
			c.onDisk--
			c.diskBytes -= int64(len(b))
			c.mu.Unlock()
		}
		return nil, "", false
	}
	c.insertMem(fp, b)
	return b, TierDisk, true
}

// Put stores the canonical result bytes under fp in both tiers. The
// disk write is atomic: a same-directory temp file renamed into place.
func (c *Cache) Put(fp string, data []byte) error {
	c.insertMem(fp, data)
	if c.dir == "" {
		return nil
	}
	path := c.path(fp)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("farm: cache put: %w", err)
	}
	var overwritten int64 // bytes replaced if this fp already has a disk entry
	if fi, err := os.Stat(path); err == nil {
		overwritten = fi.Size()
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), fp+".tmp*")
	if err != nil {
		return fmt.Errorf("farm: cache put: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("farm: cache put: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("farm: cache put: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("farm: cache put: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("farm: cache put: %w", err)
	}
	c.mu.Lock()
	if overwritten == 0 {
		c.onDisk++
	}
	c.diskBytes += int64(len(data)) - overwritten
	needSweep := c.needSweepLocked(time.Now())
	c.mu.Unlock()
	if needSweep {
		c.evict(time.Now())
	}
	return nil
}

// needSweepLocked decides whether a sweep is due: always when over the
// byte budget, and at most every maxAge/4 (floor 1s) when an age cap is
// set, so idle caches still expire without a timer goroutine.
func (c *Cache) needSweepLocked(now time.Time) bool {
	if c.maxDiskBytes > 0 && c.diskBytes > c.maxDiskBytes {
		return true
	}
	if c.maxAge > 0 {
		period := c.maxAge / 4
		if period < time.Second {
			period = time.Second
		}
		return now.Sub(c.lastSweep) >= period
	}
	return false
}

// evict walks the disk tier and deletes entries until both limits hold:
// first everything past the age cap, then least-recently-written first
// until the byte budget is met. The walk recomputes the byte gauge from
// the filesystem, so the counter self-heals after external deletions.
func (c *Cache) evict(now time.Time) {
	c.sweepMu.Lock()
	defer c.sweepMu.Unlock()
	c.mu.Lock()
	maxBytes, maxAge := c.maxDiskBytes, c.maxAge
	c.lastSweep = now
	c.mu.Unlock()

	type entry struct {
		path  string
		size  int64
		mtime time.Time
	}
	var entries []entry
	total := int64(0)
	filepath.WalkDir(c.dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(d.Name(), ".json") {
			return nil
		}
		fi, err := d.Info()
		if err != nil {
			return nil
		}
		entries = append(entries, entry{path: path, size: fi.Size(), mtime: fi.ModTime()})
		total += fi.Size()
		return nil
	})
	sort.Slice(entries, func(i, j int) bool { return entries[i].mtime.Before(entries[j].mtime) })

	removed, removedBytes := 0, int64(0)
	for _, e := range entries {
		expired := maxAge > 0 && now.Sub(e.mtime) > maxAge
		overBudget := maxBytes > 0 && total-removedBytes > maxBytes
		if !expired && !overBudget {
			// Sorted oldest-first: every later entry is newer (not expired)
			// and the running total only shrinks (not over budget). Done.
			break
		}
		//multicube:atomicwrite-ok LRU/age eviction: a cache entry's loss only costs recomputation
		if os.Remove(e.path) == nil {
			removed++
			removedBytes += e.size
		}
	}
	c.mu.Lock()
	c.onDisk -= removed
	c.diskBytes = total - removedBytes
	c.evictions += uint64(removed)
	c.mu.Unlock()
}

// DiskStats reports the disk tier's current byte footprint and the
// number of entries the bounded sweep has evicted.
func (c *Cache) DiskStats() (bytes int64, evictions uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.diskBytes, c.evictions
}

func (c *Cache) insertMem(fp string, data []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byFP[fp]; ok {
		c.lru.MoveToFront(el)
		el.Value.(*cacheEntry).data = data
		return
	}
	c.byFP[fp] = c.lru.PushFront(&cacheEntry{fp: fp, data: data})
	for c.lru.Len() > c.maxMem {
		last := c.lru.Back()
		c.lru.Remove(last)
		delete(c.byFP, last.Value.(*cacheEntry).fp)
	}
}

// Stats reports the memory-tier entry count and the on-disk entry count
// (recovered at startup plus written since).
func (c *Cache) Stats() (mem, disk int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len(), c.onDisk
}
