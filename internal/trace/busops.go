package trace

import (
	"bufio"
	"fmt"
	"io"
)

// BusOp is one annotated bus operation, as issued onto a row or column
// bus. The model checker renders counterexamples with these; the fields
// are plain strings so the log is independent of the protocol packages.
type BusOp struct {
	// Step is the kernel step count when the operation was issued.
	Step int
	// Bus names the bus the operation was placed on ("row0", "col1").
	Bus string
	// Issuer names the issuing agent ("(0,1)" for a node, "mem0" for a
	// memory module).
	Issuer string
	// Op is the operation's rendered form.
	Op string
}

// BusOpLog collects bus operations in issue order.
type BusOpLog struct {
	Ops []BusOp
}

// Append adds one operation.
func (l *BusOpLog) Append(step int, bus, issuer, op string) {
	l.Ops = append(l.Ops, BusOp{Step: step, Bus: bus, Issuer: issuer, Op: op})
}

// Len returns the operation count.
func (l *BusOpLog) Len() int { return len(l.Ops) }

// WriteText renders the log as aligned columns, one operation per line.
func (l *BusOpLog) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, o := range l.Ops {
		if _, err := fmt.Fprintf(bw, "%5d  %-6s %-8s %s\n", o.Step, o.Bus, o.Issuer, o.Op); err != nil {
			return err
		}
	}
	return bw.Flush()
}
