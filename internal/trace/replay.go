package trace

import (
	"fmt"
	"sort"

	"multicube/internal/core"
	"multicube/internal/sim"
)

// Replay runs the trace on machine m: each processor executes its
// subsequence in order, with think time between references, and the
// machine drains. Processor ids in the trace must be < m.Processors().
func Replay(m *core.Machine, t *Trace, think sim.Time) error {
	procs := m.Processors()
	for _, r := range t.Records {
		if r.Proc < 0 || r.Proc >= procs {
			return fmt.Errorf("trace: record references processor %d of %d", r.Proc, procs)
		}
	}
	per := t.PerProc()
	ids := make([]int, 0, len(per))
	for proc := range per {
		ids = append(ids, proc)
	}
	sort.Ints(ids)
	for _, proc := range ids {
		recs := per[proc]
		m.Spawn(proc, func(c *core.Ctx) {
			for _, r := range recs {
				if think > 0 {
					c.Sleep(think)
				}
				if r.Kind == Write {
					c.Store(core.Addr(r.Addr), r.Addr) // value: the address, for checkability
				} else {
					c.Load(core.Addr(r.Addr))
				}
			}
		})
	}
	m.Run()
	return nil
}

// Capture builds a trace from a deterministic random workload with the
// same shape as workload.GenConfig, without running a machine — a quick
// way to produce replayable inputs.
func Capture(procs, requestsPerProc, privateLines, sharedLines, blockWords int, pShared, pWrite float64, seed uint64) *Trace {
	t := &Trace{}
	states := make([]uint64, procs)
	for p := range states {
		states[p] = seed ^ (uint64(p)+1)*0x9e3779b97f4a7c15
	}
	next := func(p int) uint64 {
		states[p] += 0x9e3779b97f4a7c15
		z := states[p]
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	frac := func(v uint64) float64 { return float64(v>>11) / (1 << 53) }
	sharedBase := uint64(procs * privateLines * blockWords)
	for i := 0; i < requestsPerProc; i++ {
		for p := 0; p < procs; p++ {
			var addr uint64
			if frac(next(p)) < pShared {
				addr = sharedBase + next(p)%uint64(sharedLines)*uint64(blockWords) + next(p)%uint64(blockWords)
			} else {
				addr = uint64(p*privateLines*blockWords) + next(p)%uint64(privateLines)*uint64(blockWords) + next(p)%uint64(blockWords)
			}
			kind := Read
			if frac(next(p)) < pWrite {
				kind = Write
			}
			t.Append(p, kind, addr)
		}
	}
	return t
}
