package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"multicube/internal/core"
	"multicube/internal/sim"
)

func sample() *Trace {
	t := &Trace{}
	t.Append(0, Read, 100)
	t.Append(1, Write, 200)
	t.Append(0, Write, 104)
	t.Append(2, Read, 0)
	return t
}

func equal(a, b *Trace) bool {
	if len(a.Records) != len(b.Records) {
		return false
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			return false
		}
	}
	return true
}

func TestTextRoundTrip(t *testing.T) {
	tr := sample()
	var buf bytes.Buffer
	if err := tr.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !equal(tr, got) {
		t.Fatalf("round trip mismatch:\n%v\nvs\n%v", tr.Records, got.Records)
	}
}

func TestTextParsing(t *testing.T) {
	in := "# comment\n0 R 5\n\n1 w 9\n"
	tr, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 2 || tr.Records[1].Kind != Write {
		t.Fatalf("parsed %v", tr.Records)
	}
	for _, bad := range []string{"x R 5", "0 Q 5", "0 R x", "0 R"} {
		if _, err := ReadText(strings.NewReader(bad)); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	tr := sample()
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !equal(tr, got) {
		t.Fatalf("round trip mismatch")
	}
	// Corrupt magic.
	raw := buf.Bytes()
	if _, err := ReadBinary(bytes.NewReader([]byte("XXXX"))); err == nil {
		t.Error("bad magic accepted")
	}
	_ = raw
}

func TestPropertyBinaryRoundTrip(t *testing.T) {
	f := func(procs []uint8, kinds []bool, addrs []uint32) bool {
		tr := &Trace{}
		n := len(procs)
		if len(kinds) < n {
			n = len(kinds)
		}
		if len(addrs) < n {
			n = len(addrs)
		}
		for i := 0; i < n; i++ {
			k := Read
			if kinds[i] {
				k = Write
			}
			tr.Append(int(procs[i]), k, uint64(addrs[i]))
		}
		var buf bytes.Buffer
		if err := tr.WriteBinary(&buf); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		return err == nil && equal(tr, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBinarySmallerThanText(t *testing.T) {
	tr := Capture(4, 200, 8, 32, 16, 0.5, 0.3, 1)
	var tb, bb bytes.Buffer
	if err := tr.WriteText(&tb); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteBinary(&bb); err != nil {
		t.Fatal(err)
	}
	if bb.Len() >= tb.Len() {
		t.Errorf("binary (%d) not smaller than text (%d)", bb.Len(), tb.Len())
	}
}

func TestPerProcPreservesOrder(t *testing.T) {
	tr := sample()
	per := tr.PerProc()
	if len(per[0]) != 2 || per[0][0].Addr != 100 || per[0][1].Addr != 104 {
		t.Fatalf("per-proc split wrong: %v", per[0])
	}
}

func TestCaptureDeterministic(t *testing.T) {
	a := Capture(3, 50, 4, 16, 8, 0.5, 0.3, 42)
	b := Capture(3, 50, 4, 16, 8, 0.5, 0.3, 42)
	if !equal(a, b) {
		t.Fatal("captures with same seed differ")
	}
	c := Capture(3, 50, 4, 16, 8, 0.5, 0.3, 43)
	if equal(a, c) {
		t.Fatal("captures with different seeds identical")
	}
}

func TestReplayOnMachine(t *testing.T) {
	m := core.MustNew(core.Config{N: 2, BlockWords: 8})
	tr := Capture(4, 30, 4, 8, 8, 0.6, 0.4, 7)
	if err := Replay(m, tr, 1*sim.Microsecond); err != nil {
		t.Fatal(err)
	}
	for _, err := range m.CheckInvariants() {
		t.Errorf("invariant: %v", err)
	}
	mt := m.Metrics()
	if mt.Loads+mt.Stores != uint64(tr.Len()) {
		t.Errorf("replayed %d references, trace has %d", mt.Loads+mt.Stores, tr.Len())
	}
}

func TestReplayRejectsOutOfRangeProc(t *testing.T) {
	m := core.MustNew(core.Config{N: 2, BlockWords: 8})
	tr := &Trace{}
	tr.Append(99, Read, 0)
	if err := Replay(m, tr, 0); err == nil {
		t.Fatal("out-of-range processor accepted")
	}
}

func TestReplayDeterminism(t *testing.T) {
	run := func() sim.Time {
		m := core.MustNew(core.Config{N: 2, BlockWords: 8})
		tr := Capture(4, 40, 4, 8, 8, 0.7, 0.5, 11)
		if err := Replay(m, tr, 500*sim.Nanosecond); err != nil {
			t.Fatal(err)
		}
		return m.Kernel().Now()
	}
	if run() != run() {
		t.Fatal("replay nondeterministic")
	}
}
