// Package trace records and replays memory reference traces. The paper's
// evaluation lamented that "very little data has been published on the
// memory reference behavior of parallel programs"; the trace format lets
// any workload this repository generates be captured once and replayed
// against different machine configurations (block sizes, cache sizes,
// arbitration policies) for controlled comparisons.
//
// Two codecs are provided: a line-oriented text form ("p R|W addr") for
// inspection, and a compact binary form (varint-delta encoded) for bulk
// traces.
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// OpKind distinguishes reads and writes.
type OpKind uint8

const (
	Read OpKind = iota
	Write
)

func (k OpKind) String() string {
	if k == Read {
		return "R"
	}
	return "W"
}

// Record is one memory reference.
type Record struct {
	Proc int
	Kind OpKind
	Addr uint64
}

// Trace is an in-memory reference stream in global issue order.
type Trace struct {
	Records []Record
}

// Append adds a record.
func (t *Trace) Append(proc int, kind OpKind, addr uint64) {
	t.Records = append(t.Records, Record{Proc: proc, Kind: kind, Addr: addr})
}

// Len returns the record count.
func (t *Trace) Len() int { return len(t.Records) }

// PerProc splits the trace into per-processor subsequences, preserving
// order within each processor.
func (t *Trace) PerProc() map[int][]Record {
	out := make(map[int][]Record)
	for _, r := range t.Records {
		out[r.Proc] = append(out[r.Proc], r)
	}
	return out
}

// WriteText encodes the trace as one "proc kind addr" line per record.
func (t *Trace) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, r := range t.Records {
		if _, err := fmt.Fprintf(bw, "%d %s %d\n", r.Proc, r.Kind, r.Addr); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadText decodes the text form.
func ReadText(r io.Reader) (*Trace, error) {
	t := &Trace{}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("trace: line %d: want 'proc kind addr', got %q", lineNo, line)
		}
		proc, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad proc: %v", lineNo, err)
		}
		var kind OpKind
		switch fields[1] {
		case "R", "r":
			kind = Read
		case "W", "w":
			kind = Write
		default:
			return nil, fmt.Errorf("trace: line %d: bad kind %q", lineNo, fields[1])
		}
		addr, err := strconv.ParseUint(fields[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad addr: %v", lineNo, err)
		}
		t.Append(proc, kind, addr)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return t, nil
}

// binaryMagic guards the binary codec.
var binaryMagic = [4]byte{'M', 'C', 'T', '1'}

// WriteBinary encodes the trace compactly: a magic header, the record
// count, then per record a varint proc, one kind byte, and a zigzag
// varint address delta from the previous address of that processor.
func (t *Trace) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	put := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := put(uint64(len(t.Records))); err != nil {
		return err
	}
	last := make(map[int]uint64)
	for _, r := range t.Records {
		if err := put(uint64(r.Proc)); err != nil {
			return err
		}
		if err := bw.WriteByte(byte(r.Kind)); err != nil {
			return err
		}
		delta := int64(r.Addr) - int64(last[r.Proc])
		if err := put(zigzag(delta)); err != nil {
			return err
		}
		last[r.Proc] = r.Addr
	}
	return bw.Flush()
}

// ReadBinary decodes the binary form.
func ReadBinary(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic[:])
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading count: %w", err)
	}
	// Cap the preallocation: count is untrusted input, and a malformed
	// header must not drive a giant allocation. Real records still
	// accumulate past the cap by appending.
	prealloc := count
	if prealloc > 1<<16 {
		prealloc = 1 << 16
	}
	t := &Trace{Records: make([]Record, 0, prealloc)}
	last := make(map[int]uint64)
	for i := uint64(0); i < count; i++ {
		proc, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: record %d proc: %w", i, err)
		}
		kindByte, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("trace: record %d kind: %w", i, err)
		}
		if kindByte > 1 {
			return nil, fmt.Errorf("trace: record %d: bad kind %d", i, kindByte)
		}
		zz, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: record %d addr: %w", i, err)
		}
		addr := uint64(int64(last[int(proc)]) + unzigzag(zz))
		last[int(proc)] = addr
		t.Records = append(t.Records, Record{Proc: int(proc), Kind: OpKind(kindByte), Addr: addr})
	}
	return t, nil
}

func zigzag(v int64) uint64   { return uint64((v << 1) ^ (v >> 63)) }
func unzigzag(v uint64) int64 { return int64(v>>1) ^ -int64(v&1) }
