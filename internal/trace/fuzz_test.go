package trace

import (
	"bytes"
	"testing"
)

// FuzzTraceRoundTrip exercises both codecs: arbitrary record streams
// must survive a binary encode/decode round trip bit-exactly, and
// arbitrary (mostly malformed) input bytes must never panic either
// decoder.
func FuzzTraceRoundTrip(f *testing.F) {
	f.Add([]byte{}, uint8(0))
	f.Add([]byte{'M', 'C', 'T', '1', 0}, uint8(1))
	f.Add([]byte("0 R 16\n1 W 4096\n"), uint8(2))
	f.Add([]byte{'M', 'C', 'T', '1', 255, 255, 255, 255, 255, 255, 255, 255, 255, 1}, uint8(3))
	f.Add([]byte("9999999999999999999999 R 1\n"), uint8(4))

	f.Fuzz(func(t *testing.T, data []byte, salt uint8) {
		// 1. Malformed input must error or succeed, never panic.
		if tr, err := ReadBinary(bytes.NewReader(data)); err == nil {
			// Whatever decoded must re-encode and decode to itself.
			var buf bytes.Buffer
			if err := tr.WriteBinary(&buf); err != nil {
				t.Fatalf("re-encode of decoded trace failed: %v", err)
			}
			back, err := ReadBinary(&buf)
			if err != nil {
				t.Fatalf("re-decode failed: %v", err)
			}
			if len(back.Records) != len(tr.Records) {
				t.Fatalf("round trip changed record count: %d vs %d", len(tr.Records), len(back.Records))
			}
		}
		if tr, err := ReadText(bytes.NewReader(data)); err == nil {
			var buf bytes.Buffer
			if err := tr.WriteText(&buf); err != nil {
				t.Fatalf("text re-encode failed: %v", err)
			}
			back, err := ReadText(&buf)
			if err != nil {
				t.Fatalf("text re-decode failed: %v", err)
			}
			if len(back.Records) != len(tr.Records) {
				t.Fatalf("text round trip changed record count: %d vs %d", len(tr.Records), len(back.Records))
			}
		}

		// 2. A synthetic trace derived from the fuzz input must round-trip
		// bit-exactly through the binary codec.
		syn := &Trace{}
		for i, b := range data {
			if i >= 64 {
				break
			}
			kind := Read
			if b&1 == 1 {
				kind = Write
			}
			syn.Append(int(b>>4), kind, uint64(b)*uint64(salt+1)<<(uint(i)%32))
		}
		var buf bytes.Buffer
		if err := syn.WriteBinary(&buf); err != nil {
			t.Fatalf("encode: %v", err)
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("decode of just-encoded trace: %v", err)
		}
		if len(got.Records) != len(syn.Records) {
			t.Fatalf("record count: got %d want %d", len(got.Records), len(syn.Records))
		}
		for i := range syn.Records {
			if got.Records[i] != syn.Records[i] {
				t.Fatalf("record %d: got %+v want %+v", i, got.Records[i], syn.Records[i])
			}
		}
	})
}
