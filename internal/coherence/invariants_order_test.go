package coherence

import (
	"fmt"
	"strings"
	"testing"

	"multicube/internal/cache"
	"multicube/internal/sim"
	"multicube/internal/topology"
)

// TestCheckInvariantsDeterministicOrder guards the determinism fix in
// CheckInvariants: violation lines are visited in sorted order, so with
// many corrupted lines the error list is identical run to run and
// ascending by line — not subject to map iteration order, which tests
// and counterexample reports comparing the list textually would see.
func TestCheckInvariantsDeterministicOrder(t *testing.T) {
	build := func() *System {
		s := MustNewSystem(sim.NewKernel(), Config{N: 2, BlockWords: 2})
		for l := 0; l < 8; l++ {
			s.Node(topology.Coord{Row: 0, Col: 0}).Cache().Insert(cache.Line(l), Modified, nil)
			s.Node(topology.Coord{Row: 1, Col: 1}).Cache().Insert(cache.Line(l), Modified, nil)
		}
		return s
	}
	render := func(errs []error) string {
		var b strings.Builder
		for _, e := range errs {
			b.WriteString(e.Error())
			b.WriteByte('\n')
		}
		return b.String()
	}

	want := render(CheckInvariants(build()))
	if want == "" {
		t.Fatal("doubly-held modified lines produced no invariant errors")
	}
	for i := 0; i < 30; i++ {
		if got := render(CheckInvariants(build())); got != want {
			t.Fatalf("run %d error list differs:\n--- got ---\n%s--- want ---\n%s", i, got, want)
		}
	}

	prev := -1
	seen := 0
	for _, line := range strings.Split(want, "\n") {
		var l, n int
		if _, err := fmt.Sscanf(line, "line %d modified in %d caches", &l, &n); err != nil {
			continue
		}
		seen++
		if l <= prev {
			t.Fatalf("multiple-holder errors not ascending by line:\n%s", want)
		}
		prev = l
	}
	if seen != 8 {
		t.Fatalf("expected 8 multiple-holder errors, found %d:\n%s", seen, want)
	}
}
