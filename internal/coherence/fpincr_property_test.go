package coherence

import (
	"testing"
)

// The incremental FPCache must satisfy the same row-permutation
// invariance as System.Fingerprint: relabeling the rows of a machine
// maps component-hashed fingerprints onto each other under the matching
// permutation. The hash values deliberately differ from Fingerprint's —
// only the induced equivalence partition matters to the model checker —
// so these tests compare FPCache against FPCache, never against the
// legacy byte-level hashes.

// fpcFP computes the FPCache fingerprint of s under perm (physical row
// -> canonical row; nil is identity).
func fpcFP(s *System, perm []int) uint64 {
	n := s.cfg.N
	if perm == nil {
		perm = make([]int, n)
		for i := range perm {
			perm[i] = i
		}
	}
	inv := make([]int, n)
	for phys, canon := range perm {
		inv[canon] = phys
	}
	f := NewFPCache(s)
	f.BeginPoint(nil)
	return f.FP(perm, inv)
}

// TestFPCacheRowPermutationInvariant mirrors
// TestFingerprintRowPermutationInvariant on the incremental path.
func TestFPCacheRowPermutationInvariant(t *testing.T) {
	cases := []struct {
		name   string
		n      int
		script []fpOp
	}{
		{"two-writers", 2, []fpOp{{'w', 0, 0, 0}, {'w', 1, 1, 0}}},
		{"cross-column", 2, []fpOp{{'w', 0, 0, 1}, {'r', 1, 0, 1}, {'w', 1, 1, 2}}},
		{"mlt-churn", 2, []fpOp{{'w', 0, 0, 0}, {'w', 0, 0, 2}, {'w', 0, 0, 4}, {'r', 1, 1, 0}}},
		{"lock-and-data", 2, []fpOp{{'t', 0, 0, 0}, {'w', 1, 0, 2}, {'b', 1, 0, 2}}},
		{"alloc", 2, []fpOp{{'a', 0, 1, 3}, {'r', 1, 0, 3}}},
		{"three-rows", 3, []fpOp{{'w', 0, 0, 0}, {'r', 1, 2, 0}, {'w', 2, 1, 4}}},
	}
	perms2 := [][]int{{0, 1}, {1, 0}}
	perms3 := [][]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
	for _, tc := range cases {
		perms := perms2
		if tc.n == 3 {
			perms = perms3
		}
		for _, steps := range []int{-1, 0, 3, 9} {
			base := buildState(t, tc.n, tc.script, nil, steps)
			want := fpcFP(base, nil)
			for _, rowMap := range perms {
				relabeled := buildState(t, tc.n, tc.script, rowMap, steps)
				if got := fpcFP(relabeled, invert(rowMap)); got != want {
					t.Errorf("%s (steps=%d): rows relabeled by %v FPCache fingerprint %#x, want %#x",
						tc.name, steps, rowMap, got, want)
				}
			}
		}
	}
}

// TestFPCacheIncrementalStability checks the incremental refresh: a
// cache that has been BeginPoint'd before further mutations must, after
// another BeginPoint, produce exactly what a fresh cache computes from
// scratch on the same machine.
func TestFPCacheIncrementalStability(t *testing.T) {
	rng := newScriptRand(0xfeedface)
	iters := 30
	if testing.Short() {
		iters = 8
	}
	for i := 0; i < iters; i++ {
		script := randomScript(rng, 2, 5)
		k, s := buildStateSystem(t, 2, script)
		f := NewFPCache(s)
		perm := []int{0, 1}
		inv := []int{0, 1}
		for step := 0; k.Pending() > 0 && step < 30; step++ {
			k.Step()
			f.BeginPoint(nil)
			got := f.FP(perm, inv)
			fresh := NewFPCache(s)
			fresh.BeginPoint(nil)
			if want := fresh.FP(perm, inv); got != want {
				t.Fatalf("iter %d step %d (script %+v): incremental %#x, fresh %#x",
					i, step, script, got, want)
			}
		}
	}
}

// buildStateSystem is buildState without running the kernel, returning
// it so the caller can interleave stepping with fingerprinting.
func buildStateSystem(t testing.TB, n int, script []fpOp) (kern interface {
	Pending() int
	Step() bool
}, s *System) {
	t.Helper()
	sys := buildState(t, n, script, nil, 0)
	return sys.Kernel(), sys
}

// TestFPCacheRandomizedRowInvariance drives seeded random scripts
// through the FPCache permutation property at random interruption
// depths.
func TestFPCacheRandomizedRowInvariance(t *testing.T) {
	rng := newScriptRand(0x5eed2)
	iters := 40
	if testing.Short() {
		iters = 10
	}
	for i := 0; i < iters; i++ {
		script := randomScript(rng, 2, 5)
		steps := int(rng.next() % 12)
		if steps == 11 {
			steps = -1
		}
		base := buildState(t, 2, script, nil, steps)
		relabeled := buildState(t, 2, script, []int{1, 0}, steps)
		if got, want := fpcFP(relabeled, []int{1, 0}), fpcFP(base, nil); got != want {
			t.Fatalf("iter %d (steps=%d, script %+v): swapped FPCache fingerprint %#x, want %#x",
				i, steps, script, got, want)
		}
	}
}

// FuzzFPCacheRowSwap extends FuzzFingerprintRowSwap to the incremental
// path: any script, interrupted at any depth, must FPCache-fingerprint
// identically after a row swap.
func FuzzFPCacheRowSwap(f *testing.F) {
	f.Add([]byte{0xff, 1, 0, 0})
	f.Add([]byte{4, 1, 0, 0, 0, 3, 2, 5, 1, 1})
	f.Add([]byte{0, 5, 2, 4, 2, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 || len(data) > 64 {
			t.Skip()
		}
		steps := int(data[0])
		if data[0] == 0xff {
			steps = -1
		}
		kinds := []byte{'r', 'w', 'a', 'b', 't'}
		var script []fpOp
		for i := 1; i+2 < len(data); i += 3 {
			script = append(script, fpOp{
				kind: kinds[int(data[i])%len(kinds)],
				row:  int(data[i+1]) % 2,
				col:  int(data[i+1]/2) % 2,
				line: uint64(data[i+2]) % 8,
			})
		}
		if len(script) == 0 {
			t.Skip()
		}
		base := buildState(t, 2, script, nil, steps)
		relabeled := buildState(t, 2, script, []int{1, 0}, steps)
		if got, want := fpcFP(relabeled, []int{1, 0}), fpcFP(base, nil); got != want {
			t.Fatalf("row swap changed FPCache fingerprint: %#x vs %#x (script %+v, steps %d)",
				got, want, script, steps)
		}
	})
}
