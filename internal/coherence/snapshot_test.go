package coherence

import (
	"testing"

	"multicube/internal/cache"
	"multicube/internal/sim"
	"multicube/internal/topology"
)

func fpSystem(t *testing.T) (*sim.Kernel, *System) {
	t.Helper()
	k := sim.NewKernel()
	s := MustNewSystem(k, Config{N: 2, BlockWords: 2})
	return k, s
}

func TestFingerprintDeterministic(t *testing.T) {
	_, s := fpSystem(t)
	a := s.Fingerprint(nil, nil)
	b := s.Fingerprint(nil, nil)
	if a != b {
		t.Fatalf("fingerprint not deterministic: %#x vs %#x", a, b)
	}
}

func TestFingerprintSeesState(t *testing.T) {
	k, s := fpSystem(t)
	base := s.Fingerprint(nil, nil)

	done := false
	s.Node(topology.Coord{Row: 0, Col: 0}).Write(5, func(Result) { done = true })
	mid := s.Fingerprint(nil, nil)
	if mid == base {
		t.Fatalf("fingerprint unchanged with a transaction in flight")
	}
	k.Run()
	if !done {
		t.Fatalf("write transaction never completed")
	}
	end := s.Fingerprint(nil, nil)
	if end == base || end == mid {
		t.Fatalf("fingerprint unchanged after line 5 became modified (base=%#x mid=%#x end=%#x)", base, mid, end)
	}
}

// TestFingerprintRowSymmetry builds two machines whose states are row
// relabelings of each other and checks the relabeling maps one
// fingerprint to the other.
func TestFingerprintRowSymmetry(t *testing.T) {
	build := func(row int) *System {
		k := sim.NewKernel()
		s := MustNewSystem(k, Config{N: 2, BlockWords: 2})
		s.Node(topology.Coord{Row: row, Col: 1}).Write(7, func(Result) {})
		k.Run()
		return s
	}
	s0 := build(0)
	s1 := build(1)

	ident := []int{0, 1}
	swap := []int{1, 0}
	if got, want := s1.Fingerprint(swap, nil), s0.Fingerprint(ident, nil); got != want {
		t.Fatalf("swapped fingerprint of row-1 writer = %#x, want row-0 writer identity fingerprint %#x", got, want)
	}
	if s0.Fingerprint(ident, nil) == s1.Fingerprint(ident, nil) {
		t.Fatalf("identity fingerprints of distinct states collide")
	}
}

func TestFingerprintDistinguishesCacheState(t *testing.T) {
	_, s := fpSystem(t)
	nd := s.Node(topology.Coord{Row: 0, Col: 0})
	base := s.Fingerprint(nil, nil)
	nd.Cache().Insert(3, Shared, []uint64{1, 2})
	withShared := s.Fingerprint(nil, nil)
	if withShared == base {
		t.Fatalf("fingerprint blind to cache contents")
	}
	e, _ := nd.Cache().Lookup(cache.Line(3))
	e.State = Modified
	if s.Fingerprint(nil, nil) == withShared {
		t.Fatalf("fingerprint blind to line state")
	}
}
