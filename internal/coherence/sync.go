package coherence

import (
	"fmt"

	"multicube/internal/cache"
)

// This file implements the synchronization extensions of Section 4: the
// remote test-and-set transaction (a variant of READ-MOD that returns a
// succeed/fail value, moving the line only on success) and the SYNC
// transaction that builds a distributed FIFO queue of lock waiters using
// deliberately inconsistent copies of the lock line — one link word per
// copy — so that contended locks generate almost no bus traffic.

// serveTASFromModified executes a remote test-and-set at the cache
// holding the modified line. On success the line moves to the requester
// (like a READMOD); on failure only the notification of failure is
// returned and the line remains here.
//
//multicube:fpexempt dispatched under snoopRow/snoopCol, which bump
func (n *Node) serveTASFromModified(op *Op, e *cache.Entry) {
	if e.Data[LockWord] == 0 {
		e.Data[LockWord] = 1 // the set happens at the executor
		data := append([]uint64(nil), e.Data...)
		n.l2.Invalidate(op.Line)
		n.notifyInvalidate(op.Line)
		n.sendOwnership(op, data)
		return
	}
	n.replyFail(op)
	n.restoreTableEntry(op)
}

// serveSyncAtHolder handles a SYNC join arriving at the current queue
// tail — "the node with the copy at the end of the queue (or the modified
// copy, if there is no queue) receives the request".
//
//multicube:fpexempt dispatched under snoopRow/snoopCol, which bump
func (n *Node) serveSyncAtHolder(op *Op, e *cache.Entry) {
	if e.State == Modified && e.Data[LockWord] == 0 {
		// Lock free, no queue: hand the line over immediately with the
		// lock taken for the requester.
		data := append([]uint64(nil), e.Data...)
		data[LockWord] = 1
		data[LinkWord] = 0
		n.l2.Invalidate(op.Line)
		n.notifyInvalidate(op.Line)
		n.sendOwnership(op, data)
		return
	}
	// Lock held (or we are a reserved waiter ourselves): enter the id of
	// the requesting node into the designated word of the line. We are
	// the tail, so our link word must be free.
	if e.Data[LinkWord] != 0 {
		panic(fmt.Sprintf("coherence: node %v is SYNC tail for line %d but has successor %d",
			n.id, op.Line, e.Data[LinkWord]))
	}
	e.Data[LinkWord] = n.sys.encodeNode(op.Origin)
	// A queue now exists through this copy: pin it (a head that acquired
	// through plain test-and-set would otherwise be victimizable).
	e.Pinned = true
	// Tell the requester it joined; it becomes the new tail and moves
	// the modified line table entry to its own column.
	n.routeNotification(op, QUEUED)
}

// replyFail sends the failure notification of a test-and-set (or a SYNC
// that found the lock word set in memory) back to the requester.
func (n *Node) replyFail(op *Op) {
	n.routeNotification(op, FAIL)
}

// routeNotification sends an address-only REPLY|kind to op.Origin using
// the cheapest route: directly on a shared bus, or via the controller at
// the intersection of my row and the origin's column.
func (n *Node) routeNotification(op *Op, kind Flags) {
	lat := n.sys.cfg.Timing.CacheLatency
	reply := n.sys.addrOp(op.Txn, REPLY|kind, op.Origin, op.Line, op.trace)
	switch {
	case n.id.Row == op.Origin.Row:
		n.issueRowAfter(lat, reply)
	case n.id.Col == op.Origin.Col:
		n.issueColAfter(lat, reply)
	default:
		n.issueRowAfter(lat, reply)
	}
}

func (n *Node) rowReplyFail(op *Op) {
	if op.Origin == n.id {
		n.failPending(op)
		return
	}
	if n.id.Col == op.Origin.Col {
		n.issueColAfter(n.sys.cfg.Timing.ForwardLatency,
			n.sys.addrOp(op.Txn, REPLY|FAIL, op.Origin, op.Line, op.trace))
	}
}

func (n *Node) colReplyFail(op *Op) {
	if op.Origin == n.id {
		n.failPending(op)
		return
	}
	if n.id.Row == op.Origin.Row {
		n.issueRowAfter(n.sys.cfg.Timing.ForwardLatency,
			n.sys.addrOp(op.Txn, REPLY|FAIL, op.Origin, op.Line, op.trace))
	}
}

// failPending completes an outstanding TAS with failure, or an
// outstanding SYNC with the fall-back-to-spinning result (cleaning up the
// reserved copy allocated at join time).
//
//multicube:fpexempt dispatched under snoopRow/snoopCol, which bump
func (n *Node) failPending(op *Op) {
	if !n.matchesPending(op) {
		n.shard.strays++
		return
	}
	res := Result{}
	if op.Txn == SYNC {
		if e := n.l2.Probe(op.Line); e != nil && e.State == Reserved {
			e.Pinned = false
			n.l2.Drop(op.Line)
			// The processor cache may still hold the line from before the
			// reserved copy overwrote it (a prior shared read); dropping
			// only the snooping copy would break multilevel inclusion.
			// purgeUpper, not notifyInvalidate: the entry is gone, so the
			// snarf staleness stamp is unreachable and stamping it would
			// shift fingerprints.
			n.purgeUpper(op.Line)
		}
		res.MustSpin = true
	}
	n.complete(op, res)
}

func (n *Node) rowReplyQueued(op *Op) {
	if op.Origin == n.id {
		n.syncQueued(op)
		return
	}
	if n.id.Col == op.Origin.Col {
		n.issueColAfter(n.sys.cfg.Timing.ForwardLatency,
			n.sys.addrOp(SYNC, REPLY|QUEUED, op.Origin, op.Line, op.trace))
	}
}

func (n *Node) colReplyQueued(op *Op) {
	if op.Origin == n.id {
		n.syncQueued(op)
	}
}

// syncQueued records that our SYNC join was accepted: we are the new
// tail, so "the entry in the modified line table is moved to the column
// of the new tail of the queue" — the REQUEST|REMOVE deleted it from the
// old tail's column; we insert it into ours. The acquire itself stays
// pending until the XFER handoff arrives.
//
//multicube:fpexempt dispatched under snoopRow/snoopCol, which bump
func (n *Node) syncQueued(op *Op) {
	if !n.matchesPending(op) {
		// A fast XFER can overtake the (cache-latency-delayed) QUEUED
		// notification; by the time it arrives the acquire already
		// completed. Benign: the handoff path inserted the table entry.
		return
	}
	if n.pend.queued {
		return
	}
	n.pend.queued = true
	n.issueCol(n.sys.addrOp(SYNC, INSERT, n.id, op.Line, op.trace))
}

// rowXfer and colXfer route a lock handoff to the specific queue member
// named in op.Target.
func (n *Node) rowXfer(op *Op) {
	if op.Target == n.id {
		n.consumeXfer(op)
		return
	}
	if n.id.Col == op.Target.Col {
		fwd := n.dataOp(SYNC, XFER, op.Origin, op.Line, op.Data, op.trace)
		fwd.Target = op.Target
		n.issueColAfter(n.sys.cfg.Timing.ForwardLatency, fwd)
	}
}

func (n *Node) colXfer(op *Op) {
	if op.Target == n.id {
		n.consumeXfer(op)
	}
}

// consumeXfer receives a forwarded lock line: the reserved copy becomes
// modified, keeping its own link word (which may already name our
// successor), and the waiting acquire completes holding the lock.
//
//multicube:fpexempt dispatched under snoopRow/snoopCol, which bump
func (n *Node) consumeXfer(op *Op) {
	e := n.l2.Probe(op.Line)
	if e == nil || e.State != Reserved {
		panic(fmt.Sprintf("coherence: node %v received XFER for line %d without reserved copy", n.id, op.Line))
	}
	myLink := e.Data[LinkWord]
	copy(e.Data, op.Data)
	e.Data[LinkWord] = myLink
	e.State = Modified
	// Stay pinned: a victimized lock line would strand the queue behind
	// us (the degenerate purge case Section 4 warns about).
	if !n.matchesPending(op) {
		panic(fmt.Sprintf("coherence: node %v received XFER for line %d with no waiting acquire", n.id, op.Line))
	}
	if !n.pend.queued {
		// The XFER overtook our QUEUED notification: the modified line
		// table entry for our column has not been inserted yet. Do it
		// now — we are the holder.
		n.issueCol(n.sys.addrOp(SYNC, INSERT, n.id, op.Line, op.trace))
	}
	n.complete(op, Result{Acquired: true})
}

// SyncAcquire joins the distributed queue for line (Section 4): allocate
// space in the local cache marked reserved, clear the designated word,
// and initiate a SYNC transaction. done fires with Acquired when the lock
// line arrives (immediately, or via a handoff after queueing), or with
// MustSpin when the caller should fall back to spinning test-and-set.
func (n *Node) SyncAcquire(line cache.Line, done func(Result)) {
	n.gen++
	if e, ok := n.l2.Lookup(line); ok {
		switch e.State {
		case Modified:
			if e.Data[LockWord] == 0 {
				e.Data[LockWord] = 1
				e.Pinned = true // sync-active: must not be victimized
				done(Result{Acquired: true})
				return
			}
			// We already hold the line with the lock taken (another
			// process on this node): fall back to local spinning.
			done(Result{MustSpin: true})
			return
		case Reserved:
			// Already queued from this node.
			done(Result{MustSpin: true})
			return
		}
	}
	n.beginPending(SYNC, 0, line, done)
	//multicube:fpexempt continuation of SyncAcquire, which bumped at entry
	issue := func() {
		e := n.writeLine(line, Reserved, nil)
		e.Pinned = true
		n.issueRow(n.sys.addrOp(SYNC, REQUEST, n.id, line, n.pend.trace))
	}
	v := n.l2.SelectVictim(line)
	if v != nil && v.State == Modified {
		victim := v.Line
		wbTrace := &TxnTrace{Txn: WRITEBACK, Line: victim, Started: n.k.Now()}
		//multicube:fpexempt continuation of SyncAcquire, which bumped at entry
		n.startWriteback(victim, wbTrace, func() {
			n.l2.Invalidate(victim)
			n.notifyInvalidate(victim)
			n.recordCompletion(wbTrace)
			issue()
		})
		return
	}
	issue()
}

// SyncRelease releases a lock line acquired through SyncAcquire: if a
// waiter is queued in our link word, the line is forwarded directly to
// it; otherwise the lock word is cleared and the line stays cached
// modified. It returns false when the line is no longer held modified
// (the scheme degenerated); the caller must then release in software with
// an ordinary write.
func (n *Node) SyncRelease(line cache.Line) bool {
	n.gen++
	e, ok := n.l2.Lookup(line)
	if !ok || e.State != Modified {
		return false
	}
	next, queued := n.sys.decodeNode(e.Data[LinkWord])
	if !queued {
		e.Data[LockWord] = 0
		e.Pinned = false // free and unqueued: safe to victimize again
		return true
	}
	data := append([]uint64(nil), e.Data...)
	data[LockWord] = 1 // the receiver acquires by transfer
	data[LinkWord] = 0 // the receiver keeps its own link word
	n.l2.Invalidate(line)
	n.notifyInvalidate(line)
	op := n.dataOp(SYNC, XFER, n.id, line, data, nil)
	op.Target = next
	if next.Col == n.id.Col {
		n.issueCol(op)
	} else {
		n.issueRow(op)
	}
	return true
}
