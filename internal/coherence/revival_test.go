package coherence

import (
	"testing"

	"multicube/internal/cache"
	"multicube/internal/mlt"
	"multicube/internal/topology"
)

// These tests pin the two request-integrity mechanisms of DESIGN.md §5.6d:
// the claim on the row-bus modified signal (at most one controller
// forwards a request, even with transiently duplicated table entries) and
// the revival of a request whose REMOVE succeeded on a column where no
// controller could answer.

func TestDuplicateTableEntriesForwardOnce(t *testing.T) {
	k, s := testSystem(t, 4)
	line := cache.Line(2)
	holder := s.Node(at(0, 1))
	do(t, k, func(done func(Result)) { holder.Write(line, done) })
	holder.CacheEntry(line).Data[0] = 5

	// Manufacture the transient inconsistency: a stale duplicate entry in
	// a second column (as exists for an instant while a stale entry's
	// REMOVE is in flight).
	for r := 0; r < 4; r++ {
		s.Node(at(r, 3)).Table().Insert(mlt.Line(line))
	}

	forwards := 0
	s.OpLog = func(dim Dim, issuer topology.Coord, op *Op) {
		if op.Line == line && dim == Col && op.Flags.Has(REQUEST|REMOVE) {
			forwards++
		}
	}
	reader := s.Node(at(2, 2))
	completed := false
	reader.Read(line, func(Result) { completed = true })
	k.Run()
	if !completed {
		t.Fatal("read did not complete")
	}
	// The first request must have been forwarded exactly once despite two
	// asserting columns; the stale entry is cleaned up by whichever
	// request's REMOVE reaches column 3 (possibly a revival retry), so
	// total forwards stay small and bounded.
	if forwards == 0 || forwards > 3 {
		t.Errorf("saw %d column forwards, want 1..3", forwards)
	}
	if e, ok := reader.Cache().Lookup(line); !ok || e.Data[0] != 5 {
		t.Error("reader did not get the data")
	}
	s.OpLog = nil
	// The stale entries must be gone (consumed by a REMOVE) or the oracle
	// will flag them.
	for r := 0; r < 4; r++ {
		s.Node(at(r, 3)).Table().Remove(mlt.Line(line))
	}
	checkQuiet(t, s)
}

func TestRevivalOfUnanswerableRequest(t *testing.T) {
	// A request routed to a column whose table says "modified here" but
	// where no controller can answer: plant an entry with no holder at
	// all. The row-match controller must restore the entry and
	// retransmit; the retransmission cleans up via the home column and
	// memory (which is valid), serving the request.
	k, s := testSystem(t, 4)
	line := cache.Line(1)
	s.MemoryAt(1).Store().Write(1, []uint64{9, 9, 9, 9})

	for r := 0; r < 4; r++ {
		s.Node(at(r, 3)).Table().Insert(mlt.Line(line)) // bogus entry, no holder
	}
	reader := s.Node(at(2, 0))
	completed := false
	reader.Read(line, func(Result) { completed = true })
	k.Run()
	if !completed {
		t.Fatal("request died on the unanswerable column")
	}
	if e, ok := reader.Cache().Lookup(line); !ok || e.Data[0] != 9 {
		t.Error("revived request returned wrong data")
	}
	if s.Node(at(2, 3)).Stats().Reissues == 0 {
		t.Error("row-match controller never revived the request")
	}
	// The bogus entries were restored by the revival and must be cleared
	// before the oracle runs (they reference no modified copy).
	for r := 0; r < 4; r++ {
		s.Node(at(r, 3)).Table().Remove(mlt.Line(line))
	}
	checkQuiet(t, s)
}

func TestHeadWithQueuedSuccessorStaysSilent(t *testing.T) {
	// A lock head with a queued successor must not answer a TAS routed to
	// its column; the request is revived and eventually fails at the
	// admitted tail.
	k, s := testSystem(t, 4)
	line := cache.Line(0)
	head := s.Node(at(0, 0))
	do(t, k, func(done func(Result)) { head.SyncAcquire(line, done) })
	waiter := s.Node(at(1, 1))
	waiter.SyncAcquire(line, func(r Result) {
		if !r.Acquired {
			t.Errorf("waiter acquire: %+v", r)
		}
	})
	k.Run() // waiter is now the admitted queue tail

	taker := s.Node(at(3, 3))
	res := do(t, k, func(done func(Result)) { taker.TestAndSet(line, done) })
	if res.Acquired {
		t.Fatal("TAS succeeded against a held, queued lock")
	}
	// Head must still hold the line with its successor intact.
	e, ok := head.Cache().Lookup(line)
	if !ok || e.State != Modified || e.Data[LinkWord] == 0 {
		t.Fatal("head lost its queue state")
	}
	// Drain the queue.
	if !head.SyncRelease(line) {
		t.Fatal("head release degenerated")
	}
	k.Run()
	if !waiter.SyncRelease(line) {
		t.Fatal("waiter release degenerated")
	}
	k.Run()
	checkQuiet(t, s)
}
