package coherence

import (
	"strings"
	"testing"

	"multicube/internal/cache"
	"multicube/internal/sim"
)

func TestBounceOffReservedTail(t *testing.T) {
	// A plain READ routed to a column whose only copy is an admitted
	// queue tail's reserved placeholder: the data is at the head in a
	// different column, so the tail bounces the request, which keeps
	// retrying until the queue drains and a modified copy exists.
	k, s := testSystem(t, 4)
	line := cache.Line(0)
	head := s.Node(at(0, 1))
	do(t, k, func(done func(Result)) { head.SyncAcquire(line, done) })
	tail := s.Node(at(2, 2))
	tail.SyncAcquire(line, func(r Result) {
		if !r.Acquired {
			t.Errorf("tail acquire: %+v", r)
		}
	})
	k.Run() // tail admitted; MLT points at column 2

	readerDone := false
	reader := s.Node(at(3, 0))
	reader.Read(line, func(Result) { readerDone = true })
	// Let the read bounce for a while before the queue drains.
	k.RunFor(50 * sim.Microsecond)
	if readerDone {
		t.Fatal("read completed while the line was queue-reserved")
	}
	if tail.Stats().Deferred == 0 {
		t.Error("reserved tail never bounced the read")
	}
	// Drain: head hands off to tail; tail releases; the read then serves.
	if !head.SyncRelease(line) {
		t.Fatal("head release degenerated")
	}
	k.Run()
	// The bounced READ races the handoff: the moment the tail holds the
	// line modified, the retry serves — downgrading the lock line to
	// shared while the tail still logically holds the lock. Release then
	// degenerates exactly as Section 4 describes, and the tail clears
	// the lock word in software.
	if !tail.SyncRelease(line) {
		done := false
		tail.Write(line, func(Result) {
			tail.CacheEntry(line).Data[LockWord] = 0
			done = true
		})
		k.Run()
		if !done {
			t.Fatal("software release never completed")
		}
	} else {
		k.Run()
	}
	if !readerDone {
		t.Fatal("read never completed after the queue drained")
	}
	checkQuiet(t, s)
}

func TestAllocateUpgradeFromShared(t *testing.T) {
	k, s := testSystem(t, 4)
	line := cache.Line(2)
	s.MemoryAt(2).Store().Write(2, []uint64{9, 9, 9, 9})
	nd := s.Node(at(1, 1))
	do(t, k, func(done func(Result)) { nd.Read(line, done) }) // shared copy
	do(t, k, func(done func(Result)) { nd.Allocate(line, done) })
	e, ok := nd.Cache().Lookup(line)
	if !ok || e.State != Modified || e.Data[0] != 0 {
		t.Fatal("allocate upgrade failed")
	}
	// Allocate on an already-modified line completes locally.
	before := k.Executed()
	do(t, k, func(done func(Result)) { nd.Allocate(line, done) })
	if k.Executed() != before {
		t.Error("local allocate used events")
	}
	checkQuiet(t, s)
}

func TestStringersAndAccessors(t *testing.T) {
	if READ.String() != "READ" || Txn(99).String() == "" {
		t.Error("Txn.String")
	}
	f := REQUEST | REMOVE
	if !strings.Contains(f.String(), "REQUEST") || !strings.Contains(f.String(), "REMOVE") {
		t.Errorf("Flags.String = %q", f.String())
	}
	if Flags(0).String() != "0" {
		t.Errorf("zero flags = %q", Flags(0).String())
	}
	if Row.String() != "ROW" || Col.String() != "COLUMN" {
		t.Error("Dim.String")
	}
	if StateName(Shared) != "shared" || StateName(cache.State(9)) == "" {
		t.Error("StateName")
	}
	var st TxnStats
	if st.MeanLatency() != 0 || st.MeanOps() != 0 {
		t.Error("zero TxnStats means")
	}
	st = TxnStats{Count: 2, TotalLatency: 10, RowOps: 3, ColOps: 1}
	if st.MeanLatency() != 5 || st.MeanOps() != 2 {
		t.Error("TxnStats means")
	}
	k, s := testSystem(t, 2)
	_ = k
	nd := s.Node(at(0, 1))
	if nd.ID() != at(0, 1) || nd.Busy() {
		t.Error("node accessors")
	}
	if s.MemoryAt(1).Column() != 1 {
		t.Error("memory column")
	}
	op := s.addrOp(READ, REQUEST, at(0, 0), 1, nil)
	if op.Trace() != nil || !strings.Contains(op.String(), "READ") {
		t.Error("op accessors")
	}
	if MustNewSystem(sim.NewKernel(), Config{N: 2, BlockWords: 4}) == nil {
		t.Error("MustNewSystem")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNewSystem with bad config did not panic")
		}
	}()
	MustNewSystem(sim.NewKernel(), Config{N: 0})
}
