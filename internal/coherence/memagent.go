package coherence

import (
	"fmt"

	"multicube/internal/cache"
	"multicube/internal/memory"
	"multicube/internal/sim"
	"multicube/internal/topology"
)

// Memory is the main-memory module on one column bus. It executes the
// lines of the formal protocol marked with '*': supplying unmodified
// data, reissuing requests whose line is marked invalid (the tag-bit
// robustness of Section 3), initiating the purge broadcast for READMODs
// to unmodified data, and accepting memory updates.
type Memory struct {
	sys    *System
	col    int
	store  *memory.Store
	busIdx int
	// k is the kernel this module schedules on (its column's partition
	// kernel in parallel mode); shard the matching accounting shard.
	k     *sim.Kernel
	shard *sysShard

	// gen counts mutations of fingerprint-visible memory state; every
	// store mutation happens inside snoop, which bumps it.
	//
	//multicube:gencounter
	gen uint64
}

// dataOp and replyOp build payload-carrying operations stamped with this
// module's clock.
func (m *Memory) dataOp(txn Txn, flags Flags, origin topology.Coord, line cache.Line, data []uint64, trace *TxnTrace) *Op {
	return m.sys.dataOpAt(m.k.Now(), txn, flags, origin, line, data, trace)
}

func (m *Memory) replyOp(txn Txn, flags Flags, origin topology.Coord, line cache.Line, data []uint64, trace *TxnTrace) *Op {
	return m.sys.replyOpAt(m.k.Now(), txn, flags, origin, line, data, trace)
}

// Store exposes the underlying storage for seeding and invariant checks.
func (m *Memory) Store() *memory.Store { return m.store }

// Column returns the column bus this module is attached to.
func (m *Memory) Column() int { return m.col }

func (m *Memory) issueAfter(d sim.Time, op *Op) {
	if op.trace != nil {
		op.trace.ColOps++
	}
	if m.sys.OpLog != nil {
		m.sys.OpLog(Col, topology.Coord{Row: -1, Col: m.col}, op)
	}
	if d == 0 {
		m.sys.cols[m.col].Request(m.busIdx, op)
		return
	}
	tag := EnqueueTag{Issuer: topology.Coord{Row: -1, Col: m.col}, Dim: Col, Op: op, bus: m.sys.cols[m.col]}
	m.k.AfterTagged(d, tag, func() { m.sys.cols[m.col].Request(m.busIdx, op) })
}

func (m *Memory) snoop(op *Op) {
	m.gen++
	switch {
	case op.Flags.Has(REQUEST | MEMORY):
		m.handleRequest(op)
	case op.Flags.Has(REPLY | UPDATE | MEMORY):
		/* READ (COLUMN, REPLY, UPDATE, MEMORY):
		 * write memory line and mark line valid */
		m.checkHome(op)
		m.store.Write(memory.Line(op.Line), op.Data)
	case op.Flags.Has(UPDATE|MEMORY) && !op.Flags.Has(REPLY):
		/* WRITEBACK (COLUMN, UPDATE, MEMORY):
		 * write memory line and mark line valid */
		m.checkHome(op)
		m.store.Write(memory.Line(op.Line), op.Data)
	}
}

func (m *Memory) checkHome(op *Op) {
	if m.sys.homeColumn(op.Line) != m.col {
		panic(fmt.Sprintf("coherence: memory on column %d received op %v for home column %d",
			m.col, op, m.sys.homeColumn(op.Line)))
	}
}

/*
column bus request for unmodified data; memory supplies the desired

	data if the line is valid, else it reissues the request
*/
//multicube:fpexempt dispatched under snoop, which bumps
func (m *Memory) handleRequest(op *Op) {
	m.checkHome(op)
	line := memory.Line(op.Line)
	lat := m.sys.cfg.Timing.MemoryLatency
	if !m.store.Valid(line) {
		// The modified line tables were in an inconsistent state when
		// this request was routed here; retransmit it as a request for
		// modified data.
		m.store.CountReissue()
		flags := REQUEST | REMOVE | (op.Flags & ALLOC)
		m.issueAfter(lat, m.sys.addrOp(op.Txn, flags, op.Origin, op.Line, op.trace))
		return
	}
	switch op.Txn {
	case READ:
		data := m.store.Read(line)
		m.issueAfter(lat, m.dataOp(READ, REPLY|NOPURGE, op.Origin, op.Line, data, op.trace))
	case READMOD:
		var data []uint64
		if !op.Flags.Has(ALLOC) {
			data = m.store.Read(line)
		}
		m.store.Invalidate(line)
		m.issueAfter(lat, m.replyOp(READMOD, REPLY|PURGE|(op.Flags&ALLOC), op.Origin, op.Line, data, op.trace))
	case TAS, SYNC:
		// The test-and-set executes in memory when the line is
		// unmodified. Success moves the line (with the lock taken) to
		// the requester exactly as a READMOD; failure returns only the
		// notification and memory keeps the line.
		data := m.store.Read(line)
		if data[LockWord] != 0 {
			m.issueAfter(lat, m.sys.addrOp(op.Txn, REPLY|FAIL, op.Origin, op.Line, op.trace))
			return
		}
		data[LockWord] = 1
		m.store.Invalidate(line)
		m.issueAfter(lat, m.dataOp(op.Txn, REPLY|PURGE, op.Origin, op.Line, data, op.trace))
	default:
		panic(fmt.Sprintf("coherence: memory received request with transaction %v", op.Txn))
	}
}
