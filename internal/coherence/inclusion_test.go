package coherence

import (
	"strings"
	"testing"

	"multicube/internal/cache"
)

// TestInclusionInvariant exercises invariant 6: a registered upper-level
// cache view must stay a subset of its node's snooping cache.
func TestInclusionInvariant(t *testing.T) {
	k, s := testSystem(t, 2)

	var l1 []cache.Line
	s.RegisterInclusion("test L1", at(0, 0), func() []cache.Line { return l1 })

	if errs := CheckInvariants(s); len(errs) != 0 {
		t.Fatalf("empty view: unexpected violations %v", errs)
	}

	// A line the snooping cache has never seen: inclusion is violated.
	l1 = []cache.Line{7}
	errs := CheckInvariants(s)
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), "inclusion violated") {
		t.Fatalf("missing line 7: got %v, want one inclusion violation", errs)
	}

	// Once the snooping cache holds the line, the same view is legal.
	do(t, k, func(done func(Result)) { s.Node(at(0, 0)).Read(7, done) })
	checkQuiet(t, s)
}

// TestInclusionViewOrdering pins the deterministic error ordering:
// registration order, then the view's own line order.
func TestInclusionViewOrdering(t *testing.T) {
	_, s := testSystem(t, 2)
	s.RegisterInclusion("view A", at(0, 0), func() []cache.Line { return []cache.Line{3, 5} })
	s.RegisterInclusion("view B", at(1, 1), func() []cache.Line { return []cache.Line{2} })
	errs := CheckInvariants(s)
	if len(errs) != 3 {
		t.Fatalf("got %d violations, want 3: %v", len(errs), errs)
	}
	for i, want := range []string{"view A: L1 line 3", "view A: L1 line 5", "view B: L1 line 2"} {
		if !strings.Contains(errs[i].Error(), want) {
			t.Errorf("errs[%d] = %v, want prefix %q", i, errs[i], want)
		}
	}
}
