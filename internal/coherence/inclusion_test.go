package coherence

import (
	"sort"
	"strings"
	"testing"

	"multicube/internal/cache"
	"multicube/internal/memory"
)

// TestInclusionInvariant exercises invariant 6: a registered upper-level
// cache view must stay a subset of its node's snooping cache.
func TestInclusionInvariant(t *testing.T) {
	k, s := testSystem(t, 2)

	var l1 []cache.Line
	s.RegisterInclusion("test L1", at(0, 0), func() []cache.Line { return l1 })

	if errs := CheckInvariants(s); len(errs) != 0 {
		t.Fatalf("empty view: unexpected violations %v", errs)
	}

	// A line the snooping cache has never seen: inclusion is violated.
	l1 = []cache.Line{7}
	errs := CheckInvariants(s)
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), "inclusion violated") {
		t.Fatalf("missing line 7: got %v, want one inclusion violation", errs)
	}

	// Once the snooping cache holds the line, the same view is legal.
	do(t, k, func(done func(Result)) { s.Node(at(0, 0)).Read(7, done) })
	checkQuiet(t, s)
}

// TestInclusionViewOrdering pins the deterministic error ordering:
// registration order, then the view's own line order.
func TestInclusionViewOrdering(t *testing.T) {
	_, s := testSystem(t, 2)
	s.RegisterInclusion("view A", at(0, 0), func() []cache.Line { return []cache.Line{3, 5} })
	s.RegisterInclusion("view B", at(1, 1), func() []cache.Line { return []cache.Line{2} })
	errs := CheckInvariants(s)
	if len(errs) != 3 {
		t.Fatalf("got %d violations, want 3: %v", len(errs), errs)
	}
	for i, want := range []string{"view A: L1 line 3", "view A: L1 line 5", "view B: L1 line 2"} {
		if !strings.Contains(errs[i].Error(), want) {
			t.Errorf("errs[%d] = %v, want prefix %q", i, errs[i], want)
		}
	}
}

// testL1 is a minimal upper-level view for inclusion checks: the machine
// layer's processor cache reduced to the line set invariant 6 inspects.
type testL1 struct {
	held map[cache.Line]bool
}

func (l *testL1) purge(line cache.Line) { delete(l.held, line) }

func (l *testL1) lines() []cache.Line {
	out := make([]cache.Line, 0, len(l.held))
	for line := range l.held {
		out = append(out, line)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TestSyncFailPurgesUpperLevel is the regression test for the defect the
// vet inclusion pass surfaced in failPending: a SYNC that degenerates
// (lock word set in memory) drops the reserved snooping-cache copy — and
// must also purge the upper level, which can still hold the line from a
// shared read that preceded the acquire. Before the fix the L1 view kept
// the line after the Drop and invariant 6 reported "inclusion violated"
// at quiescence.
func TestSyncFailPurgesUpperLevel(t *testing.T) {
	k, s := testSystem(t, 4)
	line := cache.Line(2)
	// Lock word set but the line unmodified (a holder wrote it back):
	// the SYNC join degenerates to MustSpin.
	s.MemoryAt(2).Store().Write(memory.Line(line), []uint64{1, 0, 0, 0})

	nd := s.Node(at(0, 0))
	l1 := &testL1{held: make(map[cache.Line]bool)}
	nd.OnInvalidate = l1.purge
	s.RegisterInclusion("test L1", at(0, 0), l1.lines)

	// A plain read caches the line shared in L2 and fills the L1 in
	// front of it, exactly as the machine layer does on load completion.
	do(t, k, func(done func(Result)) { nd.Read(line, done) })
	l1.held[line] = true

	// The acquire overwrites the shared copy with a reserved one, the
	// join fails against the held memory lock, and failPending drops the
	// reserved copy. The drop must reach the upper level too.
	res := do(t, k, func(done func(Result)) { nd.SyncAcquire(line, done) })
	if res.Acquired || !res.MustSpin {
		t.Fatalf("sync against held memory lock: %+v", res)
	}
	if _, ok := nd.Cache().Lookup(line); ok {
		t.Error("snooping cache kept the line after the failed SYNC")
	}
	if l1.held[line] {
		t.Error("upper level kept the line the snooping cache dropped (inclusion violated)")
	}
	// Invariant 6 agrees at quiescence; before the fix this reported
	// "L1 line 2 not in snooping cache".
	checkQuiet(t, s)
}
