// Package coherence implements the Wisconsin Multicube cache consistency
// protocol of Section 3 and Appendix A, plus the synchronization
// transactions of Section 4 (remote test-and-set and the SYNC distributed
// queue), over the grid of buses.
//
// The implementation mirrors the paper's formal description: each unique
// combination of transaction type and operation parameters is a separate
// handler, nodes are memoryless (no per-operation state beyond their own
// outstanding processor request), and all queues are FIFO. Lines marked
// with the paper's '*' — those executed by the memory unit — live on the
// Memory agent.
package coherence

import (
	"fmt"
	"strings"

	"multicube/internal/cache"
	"multicube/internal/sim"
	"multicube/internal/topology"
)

// Txn is a transaction type. READ results from a read miss, READMOD from
// a write miss, WRITEBACK from the replacement of a modified line.
// ALLOCATE is the READMOD variant of Section 3 that returns an
// acknowledgement instead of data; TAS and SYNC are the synchronization
// transactions of Section 4.
type Txn uint8

const (
	READ Txn = iota
	READMOD
	WRITEBACK
	TAS
	SYNC
)

var txnNames = [...]string{"READ", "READMOD", "WRITEBACK", "TAS", "SYNC"}

func (t Txn) String() string {
	if int(t) < len(txnNames) {
		return txnNames[t]
	}
	return fmt.Sprintf("Txn(%d)", uint8(t))
}

// Flags are the bus operation parameters of Appendix A, plus the
// extensions needed by ALLOCATE, TAS and SYNC.
type Flags uint16

const (
	// REQUEST marks a request for a line.
	REQUEST Flags = 1 << iota
	// REPLY marks a reply containing the line or an acknowledge.
	REPLY
	// INSERT inserts an entry into the modified line tables of a column.
	INSERT
	// REMOVE removes an entry from the modified line tables of a column.
	REMOVE
	// UPDATE marks an operation requiring a memory update.
	UPDATE
	// PURGE marks an operation requiring a line purge.
	PURGE
	// NOPURGE indicates no purge is needed (column bus reply to READ).
	NOPURGE
	// MEMORY marks an operation destined for memory.
	MEMORY
	// ALLOC marks the ALLOCATE variant of a READMOD: the reply is an
	// acknowledgement rather than data.
	ALLOC
	// FAIL marks a failed test-and-set reply (notification only; the
	// line stays where it is).
	FAIL
	// XFER marks a SYNC lock handoff: the line is forwarded directly to
	// the node at the head of the distributed queue.
	XFER
	// QUEUED marks a SYNC reply telling the requester it has joined the
	// queue and should wait for an XFER.
	QUEUED
)

var flagNames = []struct {
	f    Flags
	name string
}{
	{REQUEST, "REQUEST"}, {REPLY, "REPLY"}, {INSERT, "INSERT"},
	{REMOVE, "REMOVE"}, {UPDATE, "UPDATE"}, {PURGE, "PURGE"},
	{NOPURGE, "NOPURGE"}, {MEMORY, "MEMORY"}, {ALLOC, "ALLOC"},
	{FAIL, "FAIL"}, {XFER, "XFER"}, {QUEUED, "QUEUED"},
}

func (f Flags) String() string {
	var parts []string
	for _, fn := range flagNames {
		if f&fn.f != 0 {
			parts = append(parts, fn.name)
		}
	}
	if len(parts) == 0 {
		return "0"
	}
	return strings.Join(parts, "|")
}

// Has reports whether all of the given flags are set.
func (f Flags) Has(want Flags) bool { return f&want == want }

// Dim says which kind of bus an operation travels on.
type Dim uint8

const (
	Row Dim = iota
	Col
)

func (d Dim) String() string {
	if d == Row {
		return "ROW"
	}
	return "COLUMN"
}

// TxnTrace accumulates per-transaction bus-operation counts; every
// operation derived from the original request shares the originator's
// trace. The ops experiment (Section 3/6 claims) reads these.
type TxnTrace struct {
	Txn     Txn
	Line    cache.Line
	RowOps  int
	ColOps  int
	Started sim.Time
}

// Ops returns the total bus operations attributed to the transaction.
func (t *TxnTrace) Ops() int { return t.RowOps + t.ColOps }

// Op is one bus operation: up to four fields on the real bus (type,
// originating node id for routing replies, line address, and possibly the
// line contents), plus simulation bookkeeping.
type Op struct {
	Txn    Txn
	Flags  Flags
	Origin topology.Coord
	Line   cache.Line
	// Data is the line contents for data-carrying operations, nil for
	// address-and-command operations.
	Data []uint64
	// Target addresses a SYNC XFER handoff, which is destined for a
	// specific queue member rather than the operation's originator.
	Target topology.Coord

	// modified is the wired-OR row-bus "modified line" signal, supplied
	// during the Probe phase by the (at most one) node whose modified
	// line table holds the line.
	modified bool
	// claimed/claimant arbitrate the forward when more than one node's
	// table transiently holds the line (entries can be duplicated across
	// columns for an instant while a stale entry awaits its REMOVE):
	// exactly one node — the first prober, matching a hardware priority
	// chain — forwards the request onto its column.
	claimed  bool
	claimant topology.Coord
	// suppressed records a SuppressSignal fault-injection decision made
	// at probe time, so the probe and snoop phases of the same operation
	// fail consistently (a real dead controller is dead for both).
	suppressed bool
	// holderPresent is a wired-OR column-bus signal asserted by a node
	// holding the line in modified mode. A SYNC queue can place the
	// queue head (modified) and the queue tail (reserved) in the same
	// column; the signal lets the reserved tail defer to the data holder
	// for READ and READMOD requests instead of bouncing them.
	holderPresent bool
	// willServe is a wired-OR column-bus signal asserted during the
	// probe phase by a node that will respond to this REQUEST|REMOVE.
	// If no node asserts it, the request would die with the table entry
	// already removed (e.g. the queue tail's admission is still in
	// flight, or the entry went stale); the controller on the
	// originator's row then restores the entry and retransmits — the
	// same revival idiom the protocol uses for lost races.
	willServe bool

	occ   sim.Time
	trace *TxnTrace
	// born is when the data payload was captured from its authoritative
	// source (a cache or memory). Forwarded replies inherit it, so a
	// snooping controller can refuse to snarf data older than its last
	// invalidation of the line.
	born sim.Time

	// fpIdent memoizes the transition-identity hash (opIdentFP) and
	// fpBase the row-independent part of the operation's fingerprint
	// hash (FPCache). Every fingerprint-visible field above is immutable
	// once the op becomes visible to a fingerprint (the probe wires are
	// rebuilt per delivery and are not hashed), so the memos never go
	// stale. fpSnarfCP/fpSnarfBits memoize the snarf eligibility bit
	// matrix for a single choice point.
	fpIdent     uint64
	fpIdentOK   bool
	fpBase      uint64
	fpBaseOK    bool
	fpSnarfCP   uint64
	fpSnarfBits uint64
}

// Occupancy implements bus.Packet.
func (o *Op) Occupancy() sim.Time { return o.occ }

// Trace returns the transaction trace the operation belongs to (may be
// nil for untraced operations such as overflow writebacks).
func (o *Op) Trace() *TxnTrace { return o.trace }

func (o *Op) String() string {
	d := "addr"
	if o.Data != nil {
		d = "data"
	}
	return fmt.Sprintf("%v(%v) line=%d origin=%v %s", o.Txn, o.Flags, o.Line, o.Origin, d)
}
