package coherence

import (
	"fmt"

	"multicube/internal/bus"
	"multicube/internal/cache"
	"multicube/internal/memory"
	"multicube/internal/mlt"
	"multicube/internal/sim"
	"multicube/internal/topology"
)

// Snooping-cache line modes (Section 3): with respect to a particular
// cache, a line is shared (global state unmodified), modified (global
// state modified, present only in this cache), or invalid. Reserved is the
// additional mode of Section 4: space allocated for a SYNC queue handoff
// that has not arrived yet.
const (
	Invalid              = cache.Invalid
	Shared   cache.State = 1
	Modified cache.State = 2
	Reserved cache.State = 3
)

// StateName renders a line mode for diagnostics.
func StateName(s cache.State) string {
	switch s {
	case Invalid:
		return "invalid"
	case Shared:
		return "shared"
	case Modified:
		return "modified"
	case Reserved:
		return "reserved"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// Word roles within a line used by the synchronization transactions.
const (
	// LockWord is the designated test-and-set word.
	LockWord = 0
	// LinkWord holds the id of the next queue member in the SYNC
	// distributed queue ("occupying a single word in different copies of
	// the line").
	LinkWord = 1
)

// Timing holds the temporal parameters of the machine, defaulted to the
// figures the paper's evaluation uses.
type Timing struct {
	// WordTime is the bus transfer time per word (paper: 1 bus word
	// every 50 ns).
	WordTime sim.Time
	// AddrWords is the bus occupancy, in word times, of an
	// address-and-command operation.
	AddrWords int
	// CacheLatency is the snooping-cache access time before a controller
	// can supply data (paper: 750 ns).
	CacheLatency sim.Time
	// MemoryLatency is the main memory access time (paper: 750 ns).
	MemoryLatency sim.Time
	// ForwardLatency is the controller overhead to relay an operation
	// from one bus to the other.
	ForwardLatency sim.Time
}

// DefaultTiming returns the constants from Figure 2's caption.
func DefaultTiming() Timing {
	return Timing{
		WordTime:       50 * sim.Nanosecond,
		AddrWords:      1,
		CacheLatency:   750 * sim.Nanosecond,
		MemoryLatency:  750 * sim.Nanosecond,
		ForwardLatency: 0,
	}
}

// Config describes one Wisconsin Multicube machine.
type Config struct {
	// N is the number of processors per bus; the machine has N×N nodes.
	N int
	// BlockWords is the coherency (and transfer) block size in bus words.
	BlockWords int
	// CacheLines and CacheAssoc size each snooping cache; zero lines
	// means unbounded (the paper's "very large" DRAM cache).
	CacheLines int
	CacheAssoc int
	// MLTEntries and MLTAssoc size each modified line table; zero
	// entries means unbounded.
	MLTEntries int
	MLTAssoc   int
	// Timing defaults to DefaultTiming when zero.
	Timing Timing
	// Arbitration selects the bus arbitration policy.
	Arbitration bus.Arbitration
	// Snarf enables acquiring a recently-held invalid line in shared
	// mode as it passes by on a bus (Section 3).
	Snarf bool
	// ColKernels, when set (parallel mode), assigns column c's bus,
	// memory module and nodes to ColKernels[c] instead of the system
	// kernel; row buses stay on the system (global) kernel. Par must be
	// the runner coordinating those kernels: controllers consult it to
	// defer row-bus requests issued inside parallel windows.
	ColKernels []*sim.Kernel
	Par        *sim.Runner
}

func (c *Config) fillDefaults() {
	if c.BlockWords == 0 {
		c.BlockWords = 16
	}
	if c.Timing == (Timing{}) {
		c.Timing = DefaultTiming()
	}
	if c.Timing.AddrWords == 0 {
		c.Timing.AddrWords = 1
	}
}

func (c *Config) validate() error {
	if c.N < 2 {
		return fmt.Errorf("coherence: N = %d, need at least 2 processors per bus", c.N)
	}
	if c.BlockWords < 2 {
		return fmt.Errorf("coherence: block size %d words, need at least 2 (lock and link words)", c.BlockWords)
	}
	if c.Timing.WordTime == 0 {
		return fmt.Errorf("coherence: zero word time")
	}
	if (c.ColKernels == nil) != (c.Par == nil) {
		return fmt.Errorf("coherence: ColKernels and Par must be set together")
	}
	if c.ColKernels != nil && len(c.ColKernels) != c.N {
		return fmt.Errorf("coherence: %d column kernels for N = %d", len(c.ColKernels), c.N)
	}
	return nil
}

// TxnStats aggregates completed transactions of one type.
type TxnStats struct {
	Count        uint64
	TotalLatency sim.Time
	RowOps       uint64
	ColOps       uint64
}

// MeanLatency returns the average issue-to-completion latency.
func (s TxnStats) MeanLatency() sim.Time {
	if s.Count == 0 {
		return 0
	}
	return s.TotalLatency / sim.Time(s.Count)
}

// MeanOps returns the average bus operations per transaction.
func (s TxnStats) MeanOps() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.RowOps+s.ColOps) / float64(s.Count)
}

// System is one assembled machine: the grid of nodes, the row and column
// buses, and the per-column memory modules.
type System struct {
	k    *sim.Kernel
	grid topology.Grid
	cfg  Config
	// par is non-nil in parallel mode; issueRow consults it to defer
	// cross-partition sends during windows.
	par *sim.Runner

	rows  []*bus.Bus
	cols  []*bus.Bus
	nodes [][]*Node // [row][col]
	mems  []*Memory // per column

	// shards hold transaction accounting: one shard in sequential mode,
	// one per column in parallel mode so partition events never touch a
	// neighbor's counters. Stats and StrayReplies merge them.
	shards []*sysShard

	// OpLog, when set, observes every bus operation as it is issued;
	// tests use it for protocol traces.
	OpLog func(dim Dim, issuer topology.Coord, op *Op)

	// Fault, when set, is consulted before every controller-issued bus
	// operation; returning true DROPS the operation. It exists to test
	// the protocol's robustness claim: "a controller can, on occasion,
	// simply discard such requests without breaking the protocol" —
	// the memory valid bit re-drives dropped work.
	Fault func(dim Dim, issuer topology.Coord, op *Op) bool

	// SuppressSignal, when set, makes a controller fail to respond to a
	// row request entirely — neither asserting the modified signal nor
	// forwarding onto its column. This is the precise failure Section 3
	// analyzes: the request is then routed (incorrectly) onto the home
	// column, retransmitted by main memory because the line is invalid
	// there, and forwarded back onto the originator's row as if it were
	// an original request.
	SuppressSignal func(n topology.Coord, op *Op) bool

	// DisableStaleReplyPoisoning is a test hook that switches off the
	// stale in-flight reply defense of DESIGN.md §5.6a: an invalidating
	// broadcast passing the requester's row no longer poisons its
	// outstanding READ. The model checker uses it to demonstrate that
	// exhaustive exploration finds the stale-sharer states the defense
	// exists to prevent. Never set it outside tests and checker demos.
	DisableStaleReplyPoisoning bool

	// Observer, when set, receives one SnoopEvent per delivered bus
	// operation at a controller: the pre/post line views, the probe wire
	// signals, and the bus operations the handler scheduled in response.
	// Like OpLog it is a passive test hook — installing it never changes
	// protocol behavior or fingerprints. internal/protocol's conformance
	// harness is its consumer.
	Observer func(SnoopEvent)

	// obsSink, while a snoop dispatch is being observed, collects the
	// action intents the handler issues; nil outside a snoop window.
	//
	//multicube:fpexempt observation plumbing, invisible to fingerprints
	obsSink *[]ActionIntent

	// inclusions holds the registered upper-level cache views whose
	// containment in a node's snooping cache CheckInvariants enforces.
	inclusions []inclusionView

	dropped uint64

	// fpIdent/fpInv are reusable Fingerprint scratch: the cached identity
	// permutation and the inverse-permutation buffer (rows); fpCInv is
	// the column counterpart. A System is bound to one kernel and is not
	// fingerprinted concurrently.
	fpIdent, fpInv, fpCInv []int
}

// EnqueueTag tags a device-latency kernel event whose only effect, when
// it fires, is to enqueue Op on a bus (plus fault-injection accounting).
// Model checkers treat these events as commuting with everything except
// a pending arbitration on the same bus.
type EnqueueTag struct {
	// Issuer is the issuing controller, or {Row: -1, Col: c} for the
	// memory module on column c.
	Issuer topology.Coord
	Dim    Dim
	Op     *Op
	bus    *bus.Bus
}

// TargetBus returns the bus the event will enqueue on.
func (t EnqueueTag) TargetBus() *bus.Bus { return t.bus }

func (t EnqueueTag) String() string {
	return fmt.Sprintf("enqueue %v %v by %v", t.Dim, t.Op, t.Issuer)
}

// DroppedOps counts operations discarded by the fault injector.
func (s *System) DroppedOps() uint64 { return s.dropped }

// NewSystem builds a machine on the given kernel.
func NewSystem(k *sim.Kernel, cfg Config) (*System, error) {
	cfg.fillDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	grid, err := topology.NewGrid(cfg.N)
	if err != nil {
		return nil, err
	}
	s := &System{k: k, grid: grid, cfg: cfg, par: cfg.Par}
	n := cfg.N
	nshards := 1
	if cfg.ColKernels != nil {
		nshards = n
	}
	s.shards = make([]*sysShard, nshards)
	for i := range s.shards {
		s.shards[i] = &sysShard{txnStats: make(map[Txn]*TxnStats)}
	}
	s.rows = make([]*bus.Bus, n)
	s.cols = make([]*bus.Bus, n)
	for i := 0; i < n; i++ {
		s.rows[i] = bus.New(k, fmt.Sprintf("row%d", i), cfg.Arbitration)
		s.cols[i] = bus.New(s.colKernel(i), fmt.Sprintf("col%d", i), cfg.Arbitration)
	}
	s.nodes = make([][]*Node, n)
	for r := 0; r < n; r++ {
		s.nodes[r] = make([]*Node, n)
		for c := 0; c < n; c++ {
			nd, err := newNode(s, topology.Coord{Row: r, Col: c})
			if err != nil {
				return nil, err
			}
			s.nodes[r][c] = nd
		}
	}
	// Attach in deterministic order: nodes row-major on their buses,
	// memory last on each column.
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			nd := s.nodes[r][c]
			nd.rowIdx = s.rows[r].Attach(rowAgent{nd})
			nd.colIdx = s.cols[c].Attach(colAgent{nd})
		}
	}
	s.mems = make([]*Memory, n)
	for c := 0; c < n; c++ {
		st, err := memory.NewStore(cfg.BlockWords)
		if err != nil {
			return nil, err
		}
		m := &Memory{sys: s, col: c, store: st, k: s.colKernel(c), shard: s.colShard(c)}
		m.busIdx = s.cols[c].Attach(memAgent{m})
		s.mems[c] = m
	}
	return s, nil
}

// MustNewSystem is NewSystem but panics on error.
func MustNewSystem(k *sim.Kernel, cfg Config) *System {
	s, err := NewSystem(k, cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Kernel returns the simulation kernel (the global kernel in parallel
// mode).
func (s *System) Kernel() *sim.Kernel { return s.k }

// colKernel returns the kernel owning column c's bus, memory and nodes.
func (s *System) colKernel(c int) *sim.Kernel {
	if s.cfg.ColKernels != nil {
		return s.cfg.ColKernels[c]
	}
	return s.k
}

// colShard returns the accounting shard for column c.
func (s *System) colShard(c int) *sysShard {
	if len(s.shards) == 1 {
		return s.shards[0]
	}
	return s.shards[c]
}

// SetChooser routes every scheduling tie-break — kernel event order among
// equal-time events and bus arbitration among queued requesters — through
// ch. A DefaultChooser (or nil) reproduces the historical schedules
// bit-for-bit; the machine stays a timed discrete-event simulation.
func (s *System) SetChooser(ch sim.Chooser) {
	s.k.SetChooser(ch, false)
	for _, b := range s.rows {
		b.SetChooser(ch, false)
	}
	for _, b := range s.cols {
		b.SetChooser(ch, false)
	}
}

// EnableModelChecking puts the machine in exhaustive-exploration mode:
// every pending kernel event is a dispatch candidate (the untimed
// interpretation, where any message may take arbitrarily long), and bus
// grants are deferred so all queued requests reach arbitration. The
// chooser then decides every ordering. Used by internal/mc.
func (s *System) EnableModelChecking(ch sim.Chooser) {
	s.k.SetChooser(ch, true)
	for _, b := range s.rows {
		b.SetChooser(ch, true)
	}
	for _, b := range s.cols {
		b.SetChooser(ch, true)
	}
}

// Config returns the machine configuration (with defaults filled).
func (s *System) Config() Config { return s.cfg }

// Grid returns the machine's topology.
func (s *System) Grid() topology.Grid { return s.grid }

// Node returns the controller at coordinate c.
func (s *System) Node(c topology.Coord) *Node { return s.nodes[c.Row][c.Col] }

// NodeByID returns the controller with the given linearized id.
func (s *System) NodeByID(id topology.NodeID) *Node {
	return s.Node(s.grid.Coord(id))
}

// MemoryAt returns the memory module on column c.
func (s *System) MemoryAt(c int) *Memory { return s.mems[c] }

// RowBus and ColBus expose the buses for metrics.
func (s *System) RowBus(i int) *bus.Bus { return s.rows[i] }
func (s *System) ColBus(i int) *bus.Bus { return s.cols[i] }

// Stats returns the per-transaction aggregates keyed by type, merged
// across shards (integer sums, so sequential and parallel runs of the
// same machine agree byte for byte).
func (s *System) Stats() map[Txn]TxnStats {
	out := make(map[Txn]TxnStats, len(s.shards[0].txnStats))
	for _, sh := range s.shards {
		//multicube:detrange-ok map-to-map merge of commutative sums
		for t, st := range sh.txnStats {
			agg := out[t]
			agg.Count += st.Count
			agg.TotalLatency += st.TotalLatency
			agg.RowOps += st.RowOps
			agg.ColOps += st.ColOps
			out[t] = agg
		}
	}
	return out
}

// StrayReplies counts replies that arrived with no matching outstanding
// request; always zero in a correct run.
func (s *System) StrayReplies() uint64 {
	var n uint64
	for _, sh := range s.shards {
		n += sh.strays
	}
	return n
}

// homeColumn maps a line to its home column.
func (s *System) homeColumn(line cache.Line) int {
	return s.grid.HomeColumn(topology.LineID(line))
}

// encodeNode packs a node id into a link word (0 means none).
func (s *System) encodeNode(c topology.Coord) uint64 {
	return uint64(s.grid.ID(c)) + 1
}

// decodeNode unpacks a link word; ok is false for the zero (none) value.
func (s *System) decodeNode(w uint64) (topology.Coord, bool) {
	if w == 0 {
		return topology.Coord{}, false
	}
	return s.grid.Coord(topology.NodeID(w - 1)), true
}

// addrOccupancy and dataOccupancy compute bus hold times.
func (s *System) addrOccupancy() sim.Time {
	return sim.Time(s.cfg.Timing.AddrWords) * s.cfg.Timing.WordTime
}

func (s *System) dataOccupancy() sim.Time {
	return sim.Time(s.cfg.Timing.AddrWords+s.cfg.BlockWords) * s.cfg.Timing.WordTime
}

// addrOp builds an address-and-command operation.
func (s *System) addrOp(txn Txn, flags Flags, origin topology.Coord, line cache.Line, trace *TxnTrace) *Op {
	return &Op{Txn: txn, Flags: flags, Origin: origin, Line: line, occ: s.addrOccupancy(), trace: trace}
}

// replyOpAt builds a data reply, or an address-only acknowledgement when
// data is nil (the ALLOCATE variant).
func (s *System) replyOpAt(born sim.Time, txn Txn, flags Flags, origin topology.Coord, line cache.Line, data []uint64, trace *TxnTrace) *Op {
	if data == nil {
		return s.addrOp(txn, flags, origin, line, trace)
	}
	return s.dataOpAt(born, txn, flags, origin, line, data, trace)
}

// dataOpAt builds a data-carrying operation with an explicit payload
// birth time; data is copied. Issuers pass their own kernel's clock —
// in parallel mode the system kernel's clock lags the partitions', so
// the system must never read it for timestamps.
func (s *System) dataOpAt(born sim.Time, txn Txn, flags Flags, origin topology.Coord, line cache.Line, data []uint64, trace *TxnTrace) *Op {
	buf := make([]uint64, s.cfg.BlockWords)
	copy(buf, data)
	return &Op{Txn: txn, Flags: flags, Origin: origin, Line: line, Data: buf, occ: s.dataOccupancy(), trace: trace, born: born}
}

// forwardOp rebuilds a data reply for the next bus hop, preserving the
// payload's birth time.
func (s *System) forwardOp(src *Op, flags Flags, trace *TxnTrace) *Op {
	return s.dataOpAt(src.born, src.Txn, flags, src.Origin, src.Line, src.Data, trace)
}

// sysShard is one partition's slice of the transaction accounting.
type sysShard struct {
	txnStats map[Txn]*TxnStats
	strays   uint64
}

func (sh *sysShard) recordCompletion(now sim.Time, tr *TxnTrace) {
	if tr == nil {
		return
	}
	st := sh.txnStats[tr.Txn]
	if st == nil {
		st = &TxnStats{}
		sh.txnStats[tr.Txn] = st
	}
	st.Count++
	st.TotalLatency += now - tr.Started
	st.RowOps += uint64(tr.RowOps)
	st.ColOps += uint64(tr.ColOps)
}

// rowAgent and colAgent adapt a node to its two buses.
type rowAgent struct{ n *Node }

func (a rowAgent) Probe(b *bus.Bus, pkt bus.Packet) { a.n.probeRow(pkt.(*Op)) }
func (a rowAgent) Snoop(b *bus.Bus, pkt bus.Packet) {
	op := pkt.(*Op)
	if a.n.sys.Observer != nil {
		a.n.observeSnoop(Row, op, func() { a.n.snoopRow(op) })
		return
	}
	a.n.snoopRow(op)
}

type colAgent struct{ n *Node }

func (a colAgent) Probe(b *bus.Bus, pkt bus.Packet) { a.n.probeCol(pkt.(*Op)) }
func (a colAgent) Snoop(b *bus.Bus, pkt bus.Packet) {
	op := pkt.(*Op)
	if a.n.sys.Observer != nil {
		a.n.observeSnoop(Col, op, func() { a.n.snoopCol(op) })
		return
	}
	a.n.snoopCol(op)
}

type memAgent struct{ m *Memory }

func (a memAgent) Probe(b *bus.Bus, pkt bus.Packet) {}
func (a memAgent) Snoop(b *bus.Bus, pkt bus.Packet) { a.m.snoop(pkt.(*Op)) }

// Interface checks.
var (
	_ bus.Agent = rowAgent{}
	_ bus.Agent = colAgent{}
	_ bus.Agent = memAgent{}
	_ mlt.Line  = 0 // mlt and cache line types stay convertible
)
