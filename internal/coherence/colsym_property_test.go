package coherence

import "testing"

// Property tests for the conditional column symmetry (FingerprintRC and
// FPCache.FPRC): relabeling the columns of a machine maps fingerprints
// onto each other under the matching permutation, PROVIDED the
// relabeling fixes the home column of every line in play. All scripts
// here run on a 3×3 grid and touch only lines 0 and 3 — both homed on
// column 0 — so every permutation of columns {1, 2} is admissible.

// colMaps3 are the column relabelings of a 3-wide grid that fix column
// 0 (the home column of every line the scripts use).
var colMaps3 = [][]int{{0, 1, 2}, {0, 2, 1}}

// rowMaps3 are all row relabelings of a 3-tall grid.
var rowMaps3 = [][]int{
	{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0},
}

// colScripts exercise the column-coupled state: cross-column sharing,
// MLT entries on relabeled columns, locks, and writebacks — all on
// home-column-0 lines, issued from nodes spread over all three columns.
var colScripts = []struct {
	name   string
	script []fpOp
}{
	{"two-cols-one-line", []fpOp{{'w', 0, 1, 0}, {'r', 1, 2, 0}}},
	{"home-and-free", []fpOp{{'w', 0, 0, 0}, {'w', 1, 1, 3}, {'r', 2, 2, 0}}},
	{"mlt-on-free-col", []fpOp{{'w', 0, 1, 0}, {'w', 0, 1, 3}, {'b', 0, 1, 0}}},
	{"lock-across-cols", []fpOp{{'t', 0, 2, 0}, {'w', 1, 1, 3}}},
	{"alloc-free-col", []fpOp{{'a', 0, 2, 3}, {'r', 1, 1, 3}, {'w', 2, 0, 0}}},
}

// fpcRC computes the FPCache fingerprint of s under the (row, column)
// relabeling pair (nil means identity for either).
func fpcRC(s *System, perm, cperm []int) uint64 {
	n := s.cfg.N
	ident := make([]int, n)
	for i := range ident {
		ident[i] = i
	}
	if perm == nil {
		perm = ident
	}
	if cperm == nil {
		cperm = ident
	}
	inv := make([]int, n)
	cinv := make([]int, n)
	for phys, canon := range perm {
		inv[canon] = phys
	}
	for phys, canon := range cperm {
		cinv[canon] = phys
	}
	f := NewFPCache(s)
	f.BeginPoint(nil)
	return f.FPRC(perm, inv, cperm, cinv)
}

// TestFingerprintRowColPermutationInvariant builds each scripted state
// once as written and once under every (row relabeling × admissible
// column relabeling) pair, at several kernel depths, and checks
// FingerprintRC maps each relabeled state back onto the base.
func TestFingerprintRowColPermutationInvariant(t *testing.T) {
	for _, tc := range colScripts {
		for _, steps := range []int{-1, 0, 3, 9} {
			base := buildState(t, 3, tc.script, nil, steps)
			want := base.FingerprintRC(nil, nil, nil)
			if got := base.Fingerprint(nil, nil); got != want {
				t.Fatalf("%s: identity FingerprintRC %#x differs from Fingerprint %#x", tc.name, want, got)
			}
			for _, rowMap := range rowMaps3 {
				for _, colMap := range colMaps3 {
					relabeled := buildStateRC(t, 3, tc.script, rowMap, colMap, steps)
					if got := relabeled.FingerprintRC(invert(rowMap), invert(colMap), nil); got != want {
						t.Errorf("%s (steps=%d): rows %v cols %v fingerprint %#x, want %#x",
							tc.name, steps, rowMap, colMap, got, want)
					}
				}
			}
		}
	}
}

// TestFPCacheRowColPermutationInvariant mirrors the invariance property
// on the incremental path (FPRC), including the packed-snarf column
// permute that only runs when cperm is not the identity.
func TestFPCacheRowColPermutationInvariant(t *testing.T) {
	for _, tc := range colScripts {
		for _, steps := range []int{-1, 0, 3, 9} {
			base := buildState(t, 3, tc.script, nil, steps)
			want := fpcRC(base, nil, nil)
			for _, rowMap := range rowMaps3 {
				for _, colMap := range colMaps3 {
					relabeled := buildStateRC(t, 3, tc.script, rowMap, colMap, steps)
					if got := fpcRC(relabeled, invert(rowMap), invert(colMap)); got != want {
						t.Errorf("%s (steps=%d): rows %v cols %v FPCache fingerprint %#x, want %#x",
							tc.name, steps, rowMap, colMap, got, want)
					}
				}
			}
		}
	}
}

// TestFingerprintRCCanonicalizesFreeColumns pins the payoff: two states
// differing only in WHICH free column a node used share one canonical
// fingerprint once minimized over admissible column relabelings, while
// states differing in home-column content stay distinct.
func TestFingerprintRCCanonicalizesFreeColumns(t *testing.T) {
	canonical := func(s *System) uint64 {
		best := ^uint64(0)
		for _, rowMap := range rowMaps3 {
			for _, colMap := range colMaps3 {
				if fp := s.FingerprintRC(rowMap, colMap, nil); fp < best {
					best = fp
				}
			}
		}
		return best
	}
	onCol1 := buildState(t, 3, []fpOp{{'w', 0, 1, 0}}, nil, -1)
	onCol2 := buildState(t, 3, []fpOp{{'w', 0, 2, 0}}, nil, -1)
	if a, b := canonical(onCol1), canonical(onCol2); a != b {
		t.Errorf("same write from symmetric free columns canonicalizes apart: %#x vs %#x", a, b)
	}
	line0 := buildState(t, 3, []fpOp{{'w', 0, 1, 0}}, nil, -1)
	line3 := buildState(t, 3, []fpOp{{'w', 0, 1, 3}}, nil, -1)
	if a, b := canonical(line0), canonical(line3); a == b {
		t.Errorf("writes to distinct lines share canonical fingerprint %#x", a)
	}
}

// TestFPCacheRandomizedRowColInvariance drives seeded random
// home-column-0 scripts through the combined relabeling property at
// random interruption depths, on both fingerprint paths.
func TestFPCacheRandomizedRowColInvariance(t *testing.T) {
	rng := newScriptRand(0xc01c01)
	iters := 40
	if testing.Short() {
		iters = 10
	}
	for i := 0; i < iters; i++ {
		script := randomHomeColScript(rng, 3, 5)
		steps := int(rng.next() % 12)
		if steps == 11 {
			steps = -1
		}
		rowMap := rowMaps3[rng.next()%uint64(len(rowMaps3))]
		colMap := colMaps3[rng.next()%uint64(len(colMaps3))]
		base := buildState(t, 3, script, nil, steps)
		relabeled := buildStateRC(t, 3, script, rowMap, colMap, steps)
		perm, cperm := invert(rowMap), invert(colMap)
		if got, want := relabeled.FingerprintRC(perm, cperm, nil), base.FingerprintRC(nil, nil, nil); got != want {
			t.Fatalf("iter %d (steps=%d, rows %v cols %v, script %+v): legacy %#x, want %#x",
				i, steps, rowMap, colMap, script, got, want)
		}
		if got, want := fpcRC(relabeled, perm, cperm), fpcRC(base, nil, nil); got != want {
			t.Fatalf("iter %d (steps=%d, rows %v cols %v, script %+v): FPCache %#x, want %#x",
				i, steps, rowMap, colMap, script, got, want)
		}
	}
}

// randomHomeColScript is randomScript restricted to lines homed on
// column 0 of an n-wide grid (lines 0 and n).
func randomHomeColScript(r *scriptRand, n, maxOps int) []fpOp {
	kinds := []byte{'r', 'w', 'w', 'a', 'b', 't'}
	ops := 1 + int(r.next()%uint64(maxOps))
	script := make([]fpOp, ops)
	for i := range script {
		script[i] = fpOp{
			kind: kinds[r.next()%uint64(len(kinds))],
			row:  int(r.next() % uint64(n)),
			col:  int(r.next() % uint64(n)),
			line: uint64(n) * (r.next() % 2),
		}
	}
	return script
}

// FuzzFingerprintRowColSwap fuzzes the combined relabeling: any
// home-column-0 script on the 3×3 grid, interrupted at any depth, must
// fingerprint identically (on both paths) after any row relabeling
// combined with the free-column swap.
func FuzzFingerprintRowColSwap(f *testing.F) {
	f.Add([]byte{0xff, 2, 1, 0, 0})
	f.Add([]byte{4, 0, 1, 4, 1, 3, 7, 0})
	f.Add([]byte{0, 5, 5, 2, 1, 0, 8, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 5 || len(data) > 64 {
			t.Skip()
		}
		steps := int(data[0])
		if data[0] == 0xff {
			steps = -1
		}
		rowMap := rowMaps3[int(data[1])%len(rowMaps3)]
		colMap := colMaps3[1] // the non-identity relabeling
		kinds := []byte{'r', 'w', 'a', 'b', 't'}
		var script []fpOp
		for i := 2; i+2 < len(data); i += 3 {
			script = append(script, fpOp{
				kind: kinds[int(data[i])%len(kinds)],
				row:  int(data[i+1]) % 3,
				col:  int(data[i+1]/3) % 3,
				line: 3 * (uint64(data[i+2]) % 2),
			})
		}
		if len(script) == 0 {
			t.Skip()
		}
		base := buildState(t, 3, script, nil, steps)
		relabeled := buildStateRC(t, 3, script, rowMap, colMap, steps)
		perm, cperm := invert(rowMap), invert(colMap)
		if got, want := relabeled.FingerprintRC(perm, cperm, nil), base.FingerprintRC(nil, nil, nil); got != want {
			t.Fatalf("relabeling changed fingerprint: %#x vs %#x (rows %v, script %+v, steps %d)",
				got, want, rowMap, script, steps)
		}
		if got, want := fpcRC(relabeled, perm, cperm), fpcRC(base, nil, nil); got != want {
			t.Fatalf("relabeling changed FPCache fingerprint: %#x vs %#x (rows %v, script %+v, steps %d)",
				got, want, rowMap, script, steps)
		}
	})
}
