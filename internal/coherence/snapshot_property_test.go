package coherence

import (
	"testing"

	"multicube/internal/bus"
	"multicube/internal/cache"
	"multicube/internal/sim"
	"multicube/internal/topology"
)

// Property tests for the canonical fingerprint: relabeling the rows of a
// machine (the only symmetry of the grid — columns own distinct memory
// modules and are NOT interchangeable) must map fingerprints exactly,
// and structurally different states must not collide. These are the two
// halves the model checker's visited-state table depends on: the first
// is soundness of canonicalization (isomorphic states dedup), the second
// is its usefulness (distinct states don't).

// fpOp is one scripted protocol operation for building a state.
type fpOp struct {
	kind byte // 'r' read, 'w' write, 'a' allocate, 'b' write-back, 't' test-and-set
	row  int
	col  int
	line uint64
}

// canonChooser breaks every scheduling tie by the candidate's canonical
// (row-permuted) content key. The default tie-break is physical
// scheduling order, which is NOT symmetric under row relabeling — two
// equal-time purge deliveries fire in row order, so a machine and its
// relabeling would drift into genuinely different interleavings and the
// mid-flight invariance property would be vacuously false. With the same
// canonical policy installed on both machines they traverse isomorphic
// executions step for step.
type canonChooser struct {
	s     *System
	perm  []int // physical row -> canonical row; nil is identity
	cperm []int // physical col -> canonical col; nil is identity
}

func (c *canonChooser) permRow(r int) int {
	if r < 0 || c.perm == nil {
		return r
	}
	return c.perm[r]
}

func (c *canonChooser) permCol(col int) int {
	if col < 0 || c.cperm == nil {
		return col
	}
	return c.cperm[col]
}

func (c *canonChooser) key(tag any) uint64 {
	h := fnvOffset
	hashOp := func(op *Op) {
		h.byte(byte(op.Txn))
		h.u64(uint64(op.Flags))
		h.u64(uint64(op.Line))
		h.u64(uint64(int64(c.permRow(op.Origin.Row))))
		h.u64(uint64(int64(c.permCol(op.Origin.Col))))
		if op.Flags&XFER != 0 {
			h.u64(uint64(int64(c.permRow(op.Target.Row))))
			h.u64(uint64(int64(c.permCol(op.Target.Col))))
		}
		h.bit(op.Data != nil)
		for _, w := range op.Data {
			h.u64(w)
		}
	}
	hashBus := func(b *bus.Bus) {
		idx := c.s.busIndex(b)
		switch n := c.s.cfg.N; {
		case idx >= 0 && idx < n:
			idx = c.permRow(idx) // row buses permute with their rows
		case idx >= n && idx < 2*n:
			idx = n + c.permCol(idx-n) // column buses with their columns
		}
		h.u64(uint64(int64(idx)))
	}
	switch t := tag.(type) {
	case EnqueueTag:
		h.byte(0x10)
		h.u64(uint64(int64(c.permRow(t.Issuer.Row))))
		h.u64(uint64(int64(c.permCol(t.Issuer.Col))))
		h.byte(byte(t.Dim))
		hashBus(t.TargetBus())
		hashOp(t.Op)
	case bus.GrantTag:
		h.byte(0x11)
		hashBus(t.B)
	case bus.DeliverTag:
		h.byte(0x12)
		hashBus(t.B)
		if op, ok := t.Pkt.(*Op); ok {
			hashOp(op)
		}
	case *Op: // a queued packet at a bus "grant" choice point
		h.byte(0x13)
		hashOp(t)
	default:
		h.byte(0x1f)
	}
	return uint64(h)
}

func (c *canonChooser) Choose(cp sim.ChoicePoint, cands []sim.Candidate) int {
	best, bestKey := 0, c.key(cands[0].Tag)
	for i := 1; i < len(cands); i++ {
		if k := c.key(cands[i].Tag); k < bestKey {
			best, bestKey = i, k
		}
	}
	return best
}

// buildState applies the script with each op's row passed through rowMap
// (identity when nil), runs the kernel for the given number of steps
// (-1 drains it), and returns the system. A node allows only one
// outstanding transaction, so each node's ops are chained through
// completion callbacks, exactly as the model checker drives programs.
func buildState(t testing.TB, n int, script []fpOp, rowMap []int, steps int) *System {
	return buildStateRC(t, n, script, rowMap, nil, steps)
}

// buildStateRC is buildState with an additional column relabeling
// colMap applied to each op's column. Scripts passed with a non-nil
// colMap must keep every line's home column a fixed point of colMap —
// the precondition of the column symmetry itself.
func buildStateRC(t testing.TB, n int, script []fpOp, rowMap, colMap []int, steps int) *System {
	t.Helper()
	k := sim.NewKernel()
	s := MustNewSystem(k, Config{N: n, BlockWords: 2, MLTEntries: 2, MLTAssoc: 1})
	var perm, cperm []int
	if rowMap != nil {
		perm = invert(rowMap)
	}
	if colMap != nil {
		cperm = invert(colMap)
	}
	s.SetChooser(&canonChooser{s: s, perm: perm, cperm: cperm})
	queues := make(map[topology.Coord][]fpOp)
	var order []topology.Coord
	for _, o := range script {
		row, col := o.row, o.col
		if rowMap != nil {
			row = rowMap[row]
		}
		if colMap != nil {
			col = colMap[col]
		}
		at := topology.Coord{Row: row, Col: col}
		if _, ok := queues[at]; !ok {
			order = append(order, at)
		}
		queues[at] = append(queues[at], o)
	}
	seq := uint64(0) // issue-order write values; identical across relabelings
	var issue func(at topology.Coord)
	issue = func(at topology.Coord) {
		q := queues[at]
		if len(q) == 0 {
			return
		}
		o := q[0]
		queues[at] = q[1:]
		nd := s.Node(at)
		line := cache.Line(o.line)
		next := func(Result) { issue(at) }
		switch o.kind {
		case 'r':
			nd.Read(line, next)
		case 'w':
			seq++
			v := 1000 + seq
			nd.Write(line, func(Result) {
				// The protocol layer only obtains the line modified;
				// the word store goes through the cache entry, as the
				// machine layer does after Write completes.
				if e := nd.CacheEntry(line); e != nil && len(e.Data) > 1 {
					e.Data[1] = v
				}
				issue(at)
			})
		case 'a':
			nd.Allocate(line, next)
		case 'b':
			nd.WriteBack(line, next)
		case 't':
			nd.TestAndSet(line, next)
		}
	}
	for _, at := range order {
		issue(at)
	}
	if steps < 0 {
		// Bounded drain: the canonical tie-break is an unfair schedule,
		// and an unfair schedule can livelock a retry loop (exactly the
		// executions the model checker bounds with per-run step budgets).
		// Isomorphism is preserved as long as both machines run the same
		// number of steps, drained or not.
		steps = 20000
	}
	for i := 0; i < steps && k.Pending() > 0; i++ {
		k.Step()
	}
	return s
}

// invert returns the permutation mapping physical row to canonical row
// given the row relabeling used at construction.
func invert(rowMap []int) []int {
	inv := make([]int, len(rowMap))
	for canon, phys := range rowMap {
		inv[phys] = canon
	}
	return inv
}

// TestFingerprintRowPermutationInvariant builds each scripted state
// twice — once as written and once with rows relabeled — at several
// kernel depths (quiescent AND mid-transaction), and checks the
// relabeling maps one fingerprint onto the other under every
// permutation of every grid size.
func TestFingerprintRowPermutationInvariant(t *testing.T) {
	cases := []struct {
		name   string
		n      int
		script []fpOp
	}{
		{"two-writers", 2, []fpOp{{'w', 0, 0, 0}, {'w', 1, 1, 0}}},
		{"cross-column", 2, []fpOp{{'w', 0, 0, 1}, {'r', 1, 0, 1}, {'w', 1, 1, 2}}},
		{"mlt-churn", 2, []fpOp{{'w', 0, 0, 0}, {'w', 0, 0, 2}, {'w', 0, 0, 4}, {'r', 1, 1, 0}}},
		{"lock-and-data", 2, []fpOp{{'t', 0, 0, 0}, {'w', 1, 0, 2}, {'b', 1, 0, 2}}},
		{"alloc", 2, []fpOp{{'a', 0, 1, 3}, {'r', 1, 0, 3}}},
		{"three-rows", 3, []fpOp{{'w', 0, 0, 0}, {'r', 1, 2, 0}, {'w', 2, 1, 4}}},
	}
	perms2 := [][]int{{0, 1}, {1, 0}}
	perms3 := [][]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
	for _, tc := range cases {
		perms := perms2
		if tc.n == 3 {
			perms = perms3
		}
		for _, steps := range []int{-1, 0, 3, 9} {
			base := buildState(t, tc.n, tc.script, nil, steps)
			want := base.Fingerprint(nil, nil)
			for _, rowMap := range perms {
				relabeled := buildState(t, tc.n, tc.script, rowMap, steps)
				if got := relabeled.Fingerprint(invert(rowMap), nil); got != want {
					t.Errorf("%s (steps=%d): rows relabeled by %v fingerprint %#x, want %#x",
						tc.name, steps, rowMap, got, want)
				}
			}
		}
	}
}

// TestFingerprintDistinguishesStates pits structurally different states
// against each other — including pairs chosen to be confusable (same
// multiset of operations at different coordinates or lines) — and
// requires distinct canonical fingerprints. Canonical means the minimum
// over all row relabelings, exactly as the model checker computes it.
func TestFingerprintDistinguishesStates(t *testing.T) {
	canonical := func(s *System, n int) uint64 {
		perms := [][]int{{0, 1}}
		if n == 2 {
			perms = [][]int{{0, 1}, {1, 0}}
		}
		best := ^uint64(0)
		for _, p := range perms {
			if fp := s.Fingerprint(p, nil); fp < best {
				best = fp
			}
		}
		return best
	}
	states := []struct {
		name   string
		script []fpOp
	}{
		{"empty", nil},
		{"one-write", []fpOp{{'w', 0, 0, 0}}},
		{"one-write-other-line", []fpOp{{'w', 0, 0, 2}}},
		{"one-write-other-column", []fpOp{{'w', 0, 1, 0}}}, // columns are NOT symmetric
		{"one-read", []fpOp{{'r', 0, 0, 0}}},
		{"two-writes-same-row", []fpOp{{'w', 0, 0, 0}, {'w', 0, 1, 1}}},
		{"two-writes-same-col", []fpOp{{'w', 0, 0, 0}, {'w', 1, 0, 1}}},
		{"write-then-writeback", []fpOp{{'w', 0, 0, 0}, {'b', 0, 0, 0}}},
		{"tas-held", []fpOp{{'t', 0, 0, 0}}},
	}
	seen := make(map[uint64]string)
	for _, st := range states {
		s := buildState(t, 2, st.script, nil, -1)
		fp := canonical(s, 2)
		if prev, ok := seen[fp]; ok {
			t.Errorf("states %q and %q share canonical fingerprint %#x", prev, st.name, fp)
		}
		seen[fp] = st.name
	}
}

// TestFingerprintRandomizedRowInvariance drives seeded random scripts
// through the permutation property at random interruption depths — the
// randomized half of the table-driven test above.
func TestFingerprintRandomizedRowInvariance(t *testing.T) {
	rng := newScriptRand(0x5eed)
	iters := 40
	if testing.Short() {
		iters = 10
	}
	for i := 0; i < iters; i++ {
		script := randomScript(rng, 2, 5)
		steps := int(rng.next() % 12)
		if steps == 11 {
			steps = -1
		}
		base := buildState(t, 2, script, nil, steps)
		relabeled := buildState(t, 2, script, []int{1, 0}, steps)
		if got, want := relabeled.Fingerprint([]int{1, 0}, nil), base.Fingerprint(nil, nil); got != want {
			t.Fatalf("iter %d (steps=%d, script %+v): swapped fingerprint %#x, want %#x",
				i, steps, script, got, want)
		}
	}
}

// scriptRand is a tiny splitmix64 so the property and fuzz code share a
// deterministic script generator without importing math/rand.
type scriptRand struct{ s uint64 }

func newScriptRand(seed uint64) *scriptRand { return &scriptRand{s: seed} }

func (r *scriptRand) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func randomScript(r *scriptRand, n, maxOps int) []fpOp {
	kinds := []byte{'r', 'w', 'w', 'a', 'b', 't'}
	ops := 1 + int(r.next()%uint64(maxOps))
	script := make([]fpOp, ops)
	for i := range script {
		script[i] = fpOp{
			kind: kinds[r.next()%uint64(len(kinds))],
			row:  int(r.next() % uint64(n)),
			col:  int(r.next() % uint64(n)),
			line: r.next() % 6,
		}
	}
	return script
}

// FuzzFingerprintRowSwap fuzzes the row-permutation invariant: any
// operation script, interrupted at any depth, must fingerprint
// identically after a row swap. Script bytes are consumed three per
// operation (kind, coordinate, line); the first byte picks the
// interruption depth.
func FuzzFingerprintRowSwap(f *testing.F) {
	f.Add([]byte{0xff, 1, 0, 0})
	f.Add([]byte{4, 1, 0, 0, 0, 3, 2, 5, 1, 1})
	f.Add([]byte{0, 5, 2, 4, 2, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 || len(data) > 64 {
			t.Skip()
		}
		steps := int(data[0])
		if data[0] == 0xff {
			steps = -1 // drain
		}
		kinds := []byte{'r', 'w', 'a', 'b', 't'}
		var script []fpOp
		for i := 1; i+2 < len(data); i += 3 {
			script = append(script, fpOp{
				kind: kinds[int(data[i])%len(kinds)],
				row:  int(data[i+1]) % 2,
				col:  int(data[i+1]/2) % 2,
				line: uint64(data[i+2]) % 8,
			})
		}
		if len(script) == 0 {
			t.Skip()
		}
		base := buildState(t, 2, script, nil, steps)
		relabeled := buildState(t, 2, script, []int{1, 0}, steps)
		if got, want := relabeled.Fingerprint([]int{1, 0}, nil), base.Fingerprint(nil, nil); got != want {
			t.Fatalf("row swap changed fingerprint: %#x vs %#x (script %+v, steps %d)",
				got, want, script, steps)
		}
	})
}
